// Focused query: Analysis 1 from the paper's introduction, end-to-end.
//
// "Generate a list of universities that Stanford researchers working on
// 'Mobile networking' refer to and collaborate with" — resolve the page
// set through the text index, weight by PageRank, and navigate the Web
// graph. The same query runs against the S-Node representation and the
// uncompressed-files baseline so the navigation-time gap is visible.
//
//	go run ./examples/focusedquery
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/store"
	"snode/internal/synth"
)

func main() {
	crawl, err := synth.Generate(synth.DefaultConfig(20000))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "focusedquery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Build a repository holding two representations of the same graph:
	// S-Node and plain uncompressed files laid out in crawl order (as a
	// real repository's page store would be).
	opt := repo.DefaultOptions(dir)
	opt.Schemes = []string{repo.SchemeSNode, repo.SchemeFiles}
	opt.CacheBudget = 256 << 10
	opt.Layout = crawl.Order
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	for _, scheme := range []string{repo.SchemeFiles, repo.SchemeSNode} {
		// Cold caches for a fair comparison.
		for _, s := range []store.LinkStore{r.Fwd[scheme], r.Rev[scheme]} {
			if cr, ok := s.(store.CacheResetter); ok {
				cr.ResetCache(opt.CacheBudget)
			}
		}
		e, err := query.New(r, scheme)
		if err != nil {
			log.Fatal(err)
		}
		res, err := e.Run(context.Background(), query.Q1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", scheme)
		fmt.Printf("navigation: %v (cpu %v + modeled 2002-disk %v; %d seeks)\n",
			res.Nav.Total().Round(10*time.Microsecond),
			res.Nav.CPU.Round(10*time.Microsecond),
			res.Nav.IO.Round(10*time.Microsecond),
			res.Nav.Seeks)
		for i, row := range res.Rows {
			if i == 5 {
				break
			}
			fmt.Printf("  %.3f  %s\n", row.Value, row.Key)
		}
		fmt.Println()
	}
	fmt.Println("Both schemes return identical rankings; the S-Node two-level")
	fmt.Println("layout answers from a handful of small superedge graphs while")
	fmt.Println("the flat store pays a disk seek per crawl-order page record.")
}
