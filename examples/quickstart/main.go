// Quickstart: generate a small synthetic Web crawl, build an S-Node
// representation, and ask it a question.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"snode/internal/iosim"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

func main() {
	// 1. A corpus: 5000 pages of synthetic Web, with domains, URLs,
	// topical text, and a hyperlink graph exhibiting the locality and
	// link-copying structure of real crawls.
	crawl, err := synth.Generate(synth.DefaultConfig(5000))
	if err != nil {
		log.Fatal(err)
	}
	g := crawl.Corpus.Graph
	fmt.Printf("corpus: %d pages, %d links (avg out-degree %.1f)\n",
		g.NumPages(), g.NumEdges(), g.AvgOutDegree())

	// 2. Build the S-Node representation: iterative partition
	// refinement, reference-encoded intranode/superedge graphs, and the
	// in-memory supernode graph + indexes.
	dir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	stats, err := snode.Build(crawl.Corpus, snode.DefaultConfig(), dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s-node: %d supernodes, %d superedges, %.2f bits/link\n",
		stats.Supernodes, stats.Superedges,
		float64(stats.SizeBytes()*8)/float64(g.NumEdges()))

	// 3. Open it and navigate: who does the first stanford.edu page
	// link to, restricted to .edu targets? The filter lets the
	// representation skip every irrelevant superedge graph on disk.
	rep, err := snode.Open(dir, 8<<20, iosim.Model2002())
	if err != nil {
		log.Fatal(err)
	}
	defer rep.Close()

	var stanford webgraph.PageID = -1
	for pid, pm := range crawl.Corpus.Pages {
		if pm.Domain == "stanford.edu" {
			stanford = webgraph.PageID(pid)
			break
		}
	}
	if stanford < 0 {
		log.Fatal("no stanford.edu pages in corpus")
	}
	eduFilter := &store.Filter{Domains: map[string]bool{
		"berkeley.edu": true, "mit.edu": true, "caltech.edu": true,
	}}
	targets, err := rep.OutFiltered(stanford, eduFilter, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s links to %d pages at other universities:\n",
		crawl.Corpus.Pages[stanford].URL, len(targets))
	for _, t := range targets {
		fmt.Println("  ->", crawl.Corpus.Pages[t].URL)
	}
	ext := rep.StatsExt()
	fmt.Printf("\n(loaded %d graphs, %d disk seeks, %d bytes — the supernode graph\n"+
		" routed the lookup straight to the relevant superedge graphs)\n",
		ext.Cache.Loads, ext.IO.Seeks, ext.IO.BytesRead)
}
