// Mining: the paper's "global access" mode. The S-Node compression is
// what lets a large Web graph live entirely in memory, so whole-graph
// computations (strongly connected components, PageRank) can use simple
// main-memory algorithms instead of external-memory ones (§1.2).
//
//	go run ./examples/mining
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"snode/internal/iosim"
	"snode/internal/mining"
	"snode/internal/pagerank"
	"snode/internal/snode"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

func main() {
	crawl, err := synth.Generate(synth.DefaultConfig(30000))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "mining-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	stats, err := snode.Build(crawl.Corpus, snode.DefaultConfig(), dir)
	if err != nil {
		log.Fatal(err)
	}
	raw := crawl.Corpus.Graph.NumEdges() * 4 // 32-bit adjacency entries
	fmt.Printf("graph: %d pages, %d links\n", crawl.Corpus.Graph.NumPages(),
		crawl.Corpus.Graph.NumEdges())
	fmt.Printf("s-node representation: %d bytes (%.1fx smaller than raw adjacency)\n",
		stats.SizeBytes(), float64(raw)/float64(stats.SizeBytes()))

	// Global access: decode the whole graph back into memory and mine.
	rep, err := snode.Open(dir, 1<<30, iosim.Model2002())
	if err != nil {
		log.Fatal(err)
	}
	defer rep.Close()
	g, err := rep.DecodeAll()
	if err != nil {
		log.Fatal(err)
	}

	// Bow-tie structure (Broder et al.): the giant SCC and its IN/OUT
	// regions.
	_, nComp := webgraph.SCC(g)
	bt := mining.BowTieDecompose(g)
	fmt.Printf("\nbow-tie structure (%d SCCs total):\n", nComp)
	fmt.Printf("  SCC core %6d pages (%.1f%%)\n  IN       %6d\n  OUT      %6d\n  other    %6d\n",
		bt.SCC, 100*float64(bt.SCC)/float64(g.NumPages()), bt.In, bt.Out, bt.Rest)

	// Diameter estimate by BFS sampling.
	fmt.Printf("\nestimated directed diameter (BFS sample): %d hops\n",
		mining.EstimateDiameter(g, 20, 7))

	// Community trawling (Kumar et al.): (3,3) bipartite cores.
	cores := mining.TrawlCores(g, 3, 3, 5)
	fmt.Printf("\ntrawled (3,3) bipartite cores: %d found; first cores:\n", len(cores))
	for i, core := range cores {
		if i == 3 {
			break
		}
		fmt.Printf("  core %d: %d fans -> %s ...\n", i, len(core.Fans),
			crawl.Corpus.Pages[core.Centers[0]].URL)
	}

	// PageRank over the decoded graph; report the top pages.
	rank := pagerank.Compute(g, pagerank.DefaultConfig())
	type pr struct {
		p webgraph.PageID
		r float64
	}
	var top []pr
	for p, v := range rank {
		top = append(top, pr{webgraph.PageID(p), v})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].r != top[j].r {
			return top[i].r > top[j].r
		}
		return top[i].p < top[j].p
	})
	fmt.Println("\ntop pages by PageRank:")
	for _, t := range top[:8] {
		fmt.Printf("  %.5f  %s\n", t.r, crawl.Corpus.Pages[t.p].URL)
	}

	// Sanity: the decoded graph is exactly the source graph.
	if !g.Equal(crawl.Corpus.Graph) {
		log.Fatal("decoded graph differs from source")
	}
	fmt.Println("\ndecoded graph verified identical to the source corpus")
}
