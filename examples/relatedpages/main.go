// Related pages: find authoritative pages on a topic, the way the
// paper's Query 3 sets up Kleinberg's HITS — declaratively.
//
// The webql plan (the declarative layer the paper lists as missing
// infrastructure) resolves the topic's base set; HITS over the induced
// subgraph separates hubs from authorities; results print with their
// PageRank for comparison.
//
//	go run ./examples/relatedpages
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"snode/internal/mining"
	"snode/internal/pagerank"
	"snode/internal/repo"
	"snode/internal/synth"
	"snode/internal/webgraph"
	"snode/internal/webql"
)

func main() {
	crawl, err := synth.Generate(synth.DefaultConfig(20000))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "relatedpages-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	opt := repo.DefaultOptions(dir)
	opt.Schemes = []string{repo.SchemeSNode}
	opt.Layout = crawl.Order
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	topic := synth.PhraseQuantumCryptography
	fmt.Printf("topic: %q\n\n", topic)

	// Declarative: which domains do the topic's top pages cite?
	rows, err := webql.NewPlan(r).
		Pages(webql.Phrase(topic), webql.TopByPageRank(50)).
		WeightBy(webql.PageRankWeight).
		Out(webql.AnyTarget()).
		GroupByDomain(webql.SumSourceWeights).
		Top(5).
		Run(repo.SchemeSNode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("domains the topic's top pages cite (webql plan):")
	for _, row := range rows {
		fmt.Printf("  %8.4f  %s\n", row.Score, row.Key)
	}

	// HITS over the Kleinberg base set: roots ∪ out-neighbours.
	roots := pagerank.TopK(r.PageRank, r.Text.Lookup(topic), 50)
	base := map[webgraph.PageID]bool{}
	for _, p := range roots {
		base[p] = true
	}
	var buf []webgraph.PageID
	for _, p := range roots {
		buf, err = r.Fwd[repo.SchemeSNode].Out(p, buf[:0])
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range buf {
			base[t] = true
		}
	}
	var basePages []webgraph.PageID
	for p := range base {
		basePages = append(basePages, p)
	}
	sort.Slice(basePages, func(i, j int) bool { return basePages[i] < basePages[j] })
	res := mining.HITS(crawl.Corpus.Graph, basePages, 50)

	type scored struct {
		p webgraph.PageID
		v float64
	}
	top := func(vals []float64) []scored {
		out := make([]scored, len(res.Pages))
		for i, p := range res.Pages {
			out[i] = scored{p, vals[i]}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].v != out[j].v {
				return out[i].v > out[j].v
			}
			return out[i].p < out[j].p
		})
		return out[:5]
	}
	fmt.Printf("\nHITS over the %d-page base set:\n", len(basePages))
	fmt.Println("top authorities:")
	for _, s := range top(res.Authority) {
		fmt.Printf("  %7.4f  (pagerank %6.4f)  %s\n",
			s.v, r.PageRank[s.p], crawl.Corpus.Pages[s.p].URL)
	}
	fmt.Println("top hubs:")
	for _, s := range top(res.Hub) {
		fmt.Printf("  %7.4f  %s\n", s.v, crawl.Corpus.Pages[s.p].URL)
	}
}
