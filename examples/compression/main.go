// Compression report: build all five representations of one corpus and
// compare their sizes — the Table 1 comparison as a library user would
// run it, plus the S-Node internal breakdown.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"log"
	"os"

	"snode/internal/repo"
	"snode/internal/store"
	"snode/internal/synth"
)

func main() {
	crawl, err := synth.Generate(synth.DefaultConfig(25000))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "compression-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opt := repo.DefaultOptions(dir)
	opt.Transpose = false
	opt.Layout = crawl.Order
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()

	edges := crawl.Corpus.Graph.NumEdges()
	fmt.Printf("corpus: %d pages, %d links\n\n", crawl.Corpus.Graph.NumPages(), edges)
	fmt.Printf("%-10s %14s %12s %10s\n", "scheme", "bytes", "bits/link", "vs files")
	var filesSize int64
	if sized, ok := r.Fwd[repo.SchemeFiles].(store.Sized); ok {
		filesSize = sized.SizeBytes()
	}
	for _, name := range repo.AllSchemes() {
		s := r.Fwd[name]
		sized, ok := s.(store.Sized)
		if !ok {
			continue
		}
		ratio := float64(filesSize) / float64(sized.SizeBytes())
		fmt.Printf("%-10s %14d %12.2f %9.1fx\n",
			name, sized.SizeBytes(), store.BitsPerEdge(sized, edges), ratio)
	}

	st := r.SNodeStats
	fmt.Printf("\nS-Node breakdown:\n")
	fmt.Printf("  supernodes             %12d\n", st.Supernodes)
	fmt.Printf("  superedges             %12d (%d positive, %d negative graphs)\n",
		st.Superedges, st.PositiveSuperedges, st.NegativeSuperedges)
	fmt.Printf("  index files            %12d bytes\n", st.IndexFileBytes)
	fmt.Printf("  supernode graph        %12d bytes (Huffman + pointers)\n", st.SupernodeGraphBytes)
	fmt.Printf("  page-ID index          %12d bytes\n", st.PageIDIndexBytes)
	fmt.Printf("  domain index           %12d bytes\n", st.DomainIndexBytes)
	fmt.Printf("  partition              %d URL splits, %d clustered splits, built in %v\n",
		st.URLSplits, st.ClusteredSplits, st.BuildTime)
}
