// Command snserve demonstrates the concurrent query-serving path: it
// builds an S-Node repository over a synthetic crawl, then serves a
// fixed mixed Query 1-6 workload from increasing numbers of goroutines
// against the one shared representation, reporting queries/second per
// level together with the buffer manager's counters (hits, misses,
// loads, and singleflight-coalesced decodes).
//
//	snserve -pages 50000 -goroutines 1,4,16 -rounds 4 -pace 1.0
//
// With -pace > 0, every disk read stalls its calling goroutine for the
// read's modeled 2002-disk cost times the scale, so the throughput
// curve shows real I/O overlap rather than CPU-only parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"snode/internal/iosim"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
)

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad goroutine count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	pages := flag.Int("pages", 50000, "corpus size in pages")
	levels := flag.String("goroutines", "1,4,16", "comma-separated goroutine counts")
	rounds := flag.Int("rounds", 4, "repetitions of the six-query mix per level")
	budget := flag.Int64("budget", 1<<20, "buffer-manager budget in bytes")
	pace := flag.Float64("pace", 1.0, "disk-stall scale (0 disables pacing)")
	seed := flag.Uint64("seed", 20030226, "crawl generator seed")
	workspace := flag.String("workspace", "", "build directory (default: temp)")
	flag.Parse()

	if err := serve(*pages, *levels, *rounds, *budget, *pace, *seed, *workspace); err != nil {
		fmt.Fprintf(os.Stderr, "snserve: %v\n", err)
		os.Exit(1)
	}
}

func serve(pages int, levelSpec string, rounds int, budget int64, pace float64, seed uint64, workspace string) error {
	levels, err := parseLevels(levelSpec)
	if err != nil {
		return err
	}
	ws := workspace
	if ws == "" {
		dir, err := os.MkdirTemp("", "snserve-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		ws = dir
	}

	cfg := synth.DefaultConfig(pages)
	cfg.Seed = seed
	fmt.Printf("generating %d-page crawl (seed %d)...\n", pages, seed)
	crawl, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Println("building S-Node repository...")
	opt := repo.DefaultOptions(filepath.Join(ws, "repo"))
	opt.Schemes = []string{repo.SchemeSNode}
	opt.CacheBudget = budget
	opt.Model = iosim.Model2002()
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		return err
	}
	defer r.Close()
	e, err := query.New(r, repo.SchemeSNode)
	if err != nil {
		return err
	}

	stores := []store.LinkStore{r.Fwd[repo.SchemeSNode], r.Rev[repo.SchemeSNode]}
	for _, s := range stores {
		if p, ok := s.(store.Pacer); ok {
			p.SetPace(pace)
		}
	}

	var jobs []query.ID
	for i := 0; i < rounds; i++ {
		jobs = append(jobs, query.All()...)
	}

	fmt.Printf("\nserving %d queries per level (%d KB buffer, pace x%.2f)\n",
		len(jobs), budget>>10, pace)
	fmt.Printf("%11s %12s %10s %9s | %9s %9s %7s %10s\n",
		"goroutines", "elapsed", "qps", "speedup", "hits", "misses", "loads", "coalesced")
	var baseQPS float64
	for _, g := range levels {
		for _, s := range stores {
			if cr, ok := s.(store.CacheResetter); ok {
				cr.ResetCache(budget)
			}
		}
		start := time.Now()
		if _, err := e.RunParallel(jobs, g); err != nil {
			return fmt.Errorf("level %d: %w", g, err)
		}
		elapsed := time.Since(start)
		qps := float64(len(jobs)) / elapsed.Seconds()
		if baseQPS == 0 {
			baseQPS = qps
		}
		var cs snode.CacheStats
		for _, s := range stores {
			if sn, ok := s.(*snode.Representation); ok {
				c := sn.StatsExt().Cache
				cs.Hits += c.Hits
				cs.Misses += c.Misses
				cs.Loads += c.Loads
				cs.Coalesced += c.Coalesced
			}
		}
		fmt.Printf("%11d %12v %10.1f %8.2fx | %9d %9d %7d %10d\n",
			g, elapsed.Round(time.Millisecond), qps, qps/baseQPS,
			cs.Hits, cs.Misses, cs.Loads, cs.Coalesced)
	}
	return nil
}
