// Command snserve demonstrates the concurrent query-serving path: it
// builds an S-Node repository over a synthetic crawl, then serves a
// fixed mixed Query 1-6 workload from increasing numbers of goroutines
// against the one shared representation, reporting queries/second per
// level together with the buffer manager's counters (hits, misses,
// loads, and singleflight-coalesced decodes) read as deltas from the
// metrics registry.
//
//	snserve -pages 50000 -goroutines 1,4,16 -rounds 4 -pace 1.0
//
// With -pace > 0, every disk read stalls its calling goroutine for the
// read's modeled 2002-disk cost times the scale, so the throughput
// curve shows real I/O overlap rather than CPU-only parallelism.
//
// With -listen, snserve exposes the serving path's observability
// surface over HTTP while the levels run:
//
//	/metrics      text exposition: per-query latency histograms with
//	              p50/p95/p99, cache hit/miss/load/coalesce/eviction
//	              counters, decoded-bytes gauges, iosim seek/transfer/
//	              stall accounting, worker occupancy
//	/debug/vars   the same snapshot as expvar JSON
//	/debug/pprof  the standard net/http/pprof profiles
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
)

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad goroutine count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// options are the validated serving parameters.
type options struct {
	pages     int
	levels    []int
	rounds    int
	budget    int64
	pace      float64
	seed      uint64
	workspace string
	listen    string
}

// validate rejects flag combinations that would previously slip
// through and fail obscurely downstream (a zero-query workload divides
// through a zero base QPS; a non-positive budget floors every cache
// shard; a negative pace is meaningless).
func validate(o *options) error {
	if o.pages < 1 {
		return fmt.Errorf("-pages must be >= 1 (got %d)", o.pages)
	}
	if o.rounds < 1 {
		return fmt.Errorf("-rounds must be >= 1 (got %d): a level must serve at least one six-query mix", o.rounds)
	}
	if o.budget <= 0 {
		return fmt.Errorf("-budget must be positive bytes (got %d)", o.budget)
	}
	if o.pace < 0 {
		return fmt.Errorf("-pace must be >= 0 (got %g)", o.pace)
	}
	return nil
}

func main() {
	o := &options{}
	flag.IntVar(&o.pages, "pages", 50000, "corpus size in pages")
	levels := flag.String("goroutines", "1,4,16", "comma-separated goroutine counts")
	flag.IntVar(&o.rounds, "rounds", 4, "repetitions of the six-query mix per level")
	flag.Int64Var(&o.budget, "budget", 1<<20, "buffer-manager budget in bytes")
	flag.Float64Var(&o.pace, "pace", 1.0, "disk-stall scale (0 disables pacing)")
	flag.Uint64Var(&o.seed, "seed", 20030226, "crawl generator seed")
	flag.StringVar(&o.workspace, "workspace", "", "build directory (default: temp)")
	flag.StringVar(&o.listen, "listen", "", "serve /metrics, /debug/vars, /debug/pprof on this address (e.g. :8080; empty disables)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "snserve: %v\n", err)
		os.Exit(1)
	}
	var err error
	if o.levels, err = parseLevels(*levels); err != nil {
		fail(err)
	}
	if err := validate(o); err != nil {
		fail(err)
	}
	if err := serve(o); err != nil {
		fail(err)
	}
}

// startHTTP binds the observability endpoint and serves it in the
// background, returning the bound address (resolving :0).
func startHTTP(addr string, reg *metrics.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("-listen %s: %w", addr, err)
	}
	expvar.Publish("snode", expvar.Func(func() any { return reg.Snapshot() }))
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

// cacheDelta sums a cache counter's per-level movement over the fwd and
// rev representations from two registry snapshots.
func cacheDelta(prev, cur metrics.Snapshot, counter string) int64 {
	var d int64
	for _, prefix := range []string{"snode_fwd_", "snode_rev_"} {
		name := prefix + counter
		d += cur.Counters[name] - prev.Counters[name]
	}
	return d
}

func serve(o *options) error {
	ws := o.workspace
	if ws == "" {
		dir, err := os.MkdirTemp("", "snserve-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		ws = dir
	}

	cfg := synth.DefaultConfig(o.pages)
	cfg.Seed = o.seed
	fmt.Printf("generating %d-page crawl (seed %d)...\n", o.pages, o.seed)
	crawl, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Println("building S-Node repository...")
	opt := repo.DefaultOptions(filepath.Join(ws, "repo"))
	opt.Schemes = []string{repo.SchemeSNode}
	opt.CacheBudget = o.budget
	opt.Model = iosim.Model2002()
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		return err
	}
	defer r.Close()
	e, err := query.New(r, repo.SchemeSNode)
	if err != nil {
		return err
	}

	// Wire the whole serving path into one registry: per-query latency
	// histograms and stage timings (engine), cache and I/O counters per
	// direction (representations), worker occupancy (pool).
	reg := metrics.NewRegistry()
	e.SetMetrics(reg)
	stores := []store.LinkStore{r.Fwd[repo.SchemeSNode], r.Rev[repo.SchemeSNode]}
	prefixes := []string{"snode_fwd", "snode_rev"}
	for i, s := range stores {
		if sn, ok := s.(*snode.Representation); ok {
			sn.RegisterMetrics(reg, prefixes[i])
		}
		if p, ok := s.(store.Pacer); ok {
			p.SetPace(o.pace)
		}
	}
	if o.listen != "" {
		addr, err := startHTTP(o.listen, reg)
		if err != nil {
			return err
		}
		fmt.Printf("metrics on http://%s/metrics (also /debug/vars, /debug/pprof)\n", addr)
	}

	var jobs []query.ID
	for i := 0; i < o.rounds; i++ {
		jobs = append(jobs, query.All()...)
	}

	fmt.Printf("\nserving %d queries per level (%d KB buffer, pace x%.2f)\n",
		len(jobs), o.budget>>10, o.pace)
	fmt.Printf("%11s %12s %10s %9s | %9s %9s %7s %10s\n",
		"goroutines", "elapsed", "qps", "speedup", "hits", "misses", "loads", "coalesced")
	var baseQPS float64
	for _, g := range o.levels {
		for _, s := range stores {
			if cr, ok := s.(store.CacheResetter); ok {
				cr.ResetCache(o.budget)
			}
		}
		prev := reg.Snapshot()
		start := time.Now()
		if _, err := e.RunParallel(jobs, g); err != nil {
			return fmt.Errorf("level %d: %w", g, err)
		}
		elapsed := time.Since(start)
		qps := float64(len(jobs)) / elapsed.Seconds()
		speedup := 1.0
		if baseQPS == 0 {
			baseQPS = qps
		} else if baseQPS > 0 {
			speedup = qps / baseQPS
		}
		cur := reg.Snapshot()
		fmt.Printf("%11d %12v %10.1f %8.2fx | %9d %9d %7d %10d\n",
			g, elapsed.Round(time.Millisecond), qps, speedup,
			cacheDelta(prev, cur, "cache_hits"),
			cacheDelta(prev, cur, "cache_misses"),
			cacheDelta(prev, cur, "cache_loads"),
			cacheDelta(prev, cur, "cache_coalesced"))
	}

	// Latency summary across all levels, from the per-query histograms.
	snap := reg.Snapshot()
	fmt.Printf("\nper-query latency across all levels (wall time per execution)\n")
	fmt.Printf("%6s %8s %10s %10s %10s\n", "query", "count", "p50", "p95", "p99")
	for _, q := range query.All() {
		h, ok := snap.Histograms[fmt.Sprintf("query_latency_q%d", q)]
		if !ok {
			continue
		}
		fmt.Printf("%6s %8d %10v %10v %10v\n",
			fmt.Sprintf("Q%d", q), h.Count,
			time.Duration(h.P50()).Round(10*time.Microsecond),
			time.Duration(h.P95()).Round(10*time.Microsecond),
			time.Duration(h.P99()).Round(10*time.Microsecond))
	}
	if o.listen != "" {
		fmt.Println("\nserving complete; metrics endpoint stays up until interrupted (ctrl-C to exit)")
		select {}
	}
	return nil
}
