// Command snserve demonstrates the concurrent query-serving path: it
// builds an S-Node repository over a synthetic crawl, then serves a
// fixed mixed Query 1-6 workload from increasing numbers of goroutines
// against the one shared representation, reporting queries/second per
// level together with the buffer manager's counters (hits, misses,
// loads, and singleflight-coalesced decodes) read as deltas from the
// metrics registry.
//
//	snserve -pages 50000 -goroutines 1,4,16 -rounds 4 -pace 1.0
//
// With -pace > 0, every disk read stalls its calling goroutine for the
// read's modeled 2002-disk cost times the scale, so the throughput
// curve shows real I/O overlap rather than CPU-only parallelism.
//
// With -listen, snserve exposes the query endpoints and the serving
// path's observability surface over HTTP while the levels run:
//
//	/out           ?page=N (+ optional &deadline_ms=D): one page's
//	               out-adjacency — the navigation class
//	/query         ?q=1..6 (+ optional &deadline_ms=D): one Table 3
//	               analysis — the mining class
//	/metrics       text exposition: per-query latency histograms with
//	               p50/p95/p99 and tail-bucket trace-ID exemplars, cache
//	               hit/miss/load/coalesce/eviction counters,
//	               decoded-bytes gauges, iosim seek/transfer/stall
//	               accounting, worker occupancy
//	/metrics.json  the same registry as a JSON snapshot — the mergeable
//	               scrape format snrouter's /cluster/metrics federates
//	/debug/vars    the same snapshot as expvar JSON
//	/debug/pprof   the standard net/http/pprof profiles
//	/debug/traces  the slow-query log: retained execution traces as JSON
//	               summaries; ?id=N for one trace's span tree
//	               (&format=chrome for chrome://tracing, &format=text
//	               for a rendered tree)
//
// The query endpoints sit behind an admission layer (internal/
// admission): -max-concurrent execution slots, a bounded -max-queue
// wait queue per class with nav prioritized over mining, and load
// shedding — arrivals past a full queue, or whose deadline cannot be
// met, are answered 429 with a Retry-After hint instead of queueing
// unboundedly. -deadline applies a default request deadline (clients
// override with ?deadline_ms, clamped), and the deadline propagates
// through the engine into the paced reader, so a dead request stops
// consuming the stack. -hedge-after arms hedged reads on the S-Node
// stores: a request stuck behind another's in-flight decode that long
// launches its own read and takes whichever lands first. /metrics
// gains the admission_* counters and queue-depth gauges plus the
// serve_latency_{nav,mining} histograms.
//
// Sampled requests (-trace-every, default 1 in 64) carry a trace down
// through the engine, cache, and I/O simulator; the slowest per query
// class are retained and linked from the latency histograms' tail
// buckets.
//
// With -live, the S-Node representations are wrapped in delta overlays
// (internal/delta) with a background compactor per direction, and the
// server accepts link mutations while serving:
//
//	/update        POST a JSON array of {"src":N,"dst":M,"op":"add"|
//	               "remove"}; each mutation is applied to the forward
//	               overlay and mirrored into the reverse one
//	/healthz       readiness: 200 {"status":"ready"} while serving,
//	               503 {"status":"draining"} once shutdown has begun
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener stops
// accepting, in-flight requests drain under the -drain deadline, the
// compactors stop, and the delta memtables are sealed to disk before
// exit.
//
// With -shard-root and -shard-id, snserve instead serves ONE shard of
// a partition built by `snbuild -shards K`: it opens the shard's
// S-Node stores plus boundary overlays under the global ID space,
// restricts the mining engine to the pages the shard owns, and
// answers /query?partial=1 with untruncated group-tagged partial rows
// for the router (snrouter) to merge. /out answers with intra-shard
// edges only — the router appends the cross-shard rest from its
// resident boundary stores. Responses carry X-SNode-Shard and
// X-SNode-Shard-Version headers so the router can detect build/serve
// version skew. A shard replica honors the router's X-SNode-Trace
// propagation header: a parent-sampled request is force-traced even
// with -trace-every 0, answered with X-SNode-Trace-Id so the router
// can fetch the completed span subtree from /debug/traces and stitch
// it into the distributed trace. Shard mode requires -listen and
// ignores the workload flags (-pages, -goroutines, -rounds, -live).
//
//	snserve -shard-root ./shards -shard-id 0 -listen :8081
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"snode/internal/delta"
	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/serve"
	"snode/internal/shard"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/trace"
	"snode/internal/webgraph"
)

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad goroutine count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// options are the validated serving parameters.
type options struct {
	pages      int
	levels     []int
	rounds     int
	budget     int64
	pace       float64
	seed       uint64
	workspace  string
	listen     string
	traceEvery int
	traceSlow  int
	live       bool
	drain      time.Duration

	maxConcurrent int
	maxQueue      int
	deadline      time.Duration
	hedgeAfter    time.Duration

	shardRoot string
	shardID   int
}

// validate rejects flag combinations that would previously slip
// through and fail obscurely downstream (a zero-query workload divides
// through a zero base QPS; a non-positive budget floors every cache
// shard; a negative pace is meaningless).
func validate(o *options) error {
	if o.pages < 1 {
		return fmt.Errorf("-pages must be >= 1 (got %d)", o.pages)
	}
	if o.rounds < 1 {
		return fmt.Errorf("-rounds must be >= 1 (got %d): a level must serve at least one six-query mix", o.rounds)
	}
	if o.budget <= 0 {
		return fmt.Errorf("-budget must be positive bytes (got %d)", o.budget)
	}
	if o.pace < 0 {
		return fmt.Errorf("-pace must be >= 0 (got %g)", o.pace)
	}
	if o.traceEvery < 0 {
		return fmt.Errorf("-trace-every must be >= 0 (got %d; 0 disables tracing)", o.traceEvery)
	}
	if o.traceSlow < 1 {
		return fmt.Errorf("-trace-slow must be >= 1 (got %d)", o.traceSlow)
	}
	if o.drain <= 0 {
		return fmt.Errorf("-drain must be a positive duration (got %v)", o.drain)
	}
	if o.maxConcurrent < 0 {
		return fmt.Errorf("-max-concurrent must be >= 0 (got %d; 0 selects GOMAXPROCS)", o.maxConcurrent)
	}
	if o.maxQueue < 1 {
		return fmt.Errorf("-max-queue must be >= 1 (got %d): the admission queue needs at least one seat", o.maxQueue)
	}
	if o.deadline < 0 {
		return fmt.Errorf("-deadline must be >= 0 (got %v; 0 means no default deadline)", o.deadline)
	}
	if o.hedgeAfter < 0 {
		return fmt.Errorf("-hedge-after must be >= 0 (got %v; 0 disables hedging)", o.hedgeAfter)
	}
	if o.shardRoot != "" {
		if o.shardID < 0 {
			return fmt.Errorf("-shard-id must be >= 0 (got %d)", o.shardID)
		}
		if o.listen == "" {
			return fmt.Errorf("-shard-root requires -listen: a shard replica exists to be routed to")
		}
		if o.live {
			return fmt.Errorf("-live is not supported in shard mode (updates would bypass the partition)")
		}
	} else if o.shardID != -1 {
		return fmt.Errorf("-shard-id requires -shard-root")
	}
	return nil
}

func main() {
	o := &options{}
	flag.IntVar(&o.pages, "pages", 50000, "corpus size in pages")
	levels := flag.String("goroutines", "1,4,16", "comma-separated goroutine counts")
	flag.IntVar(&o.rounds, "rounds", 4, "repetitions of the six-query mix per level")
	flag.Int64Var(&o.budget, "budget", 1<<20, "buffer-manager budget in bytes")
	flag.Float64Var(&o.pace, "pace", 1.0, "disk-stall scale (0 disables pacing)")
	flag.Uint64Var(&o.seed, "seed", 20030226, "crawl generator seed")
	flag.StringVar(&o.workspace, "workspace", "", "build directory (default: temp)")
	flag.StringVar(&o.listen, "listen", "", "serve /metrics, /debug/vars, /debug/pprof, /debug/traces on this address (e.g. :8080; empty disables)")
	flag.IntVar(&o.traceEvery, "trace-every", 64, "trace 1 in N queries (0 disables tracing)")
	flag.IntVar(&o.traceSlow, "trace-slow", 4, "retain the N slowest traces per query class")
	flag.BoolVar(&o.live, "live", false, "wrap the representations in delta overlays and accept POST /update mutations while serving")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	flag.IntVar(&o.maxConcurrent, "max-concurrent", 0, "admission slots for /out and /query (0 = GOMAXPROCS)")
	flag.IntVar(&o.maxQueue, "max-queue", 64, "bounded admission queue per request class; arrivals past it are shed with 429")
	flag.DurationVar(&o.deadline, "deadline", 0, "default deadline for /out and /query requests (0 = none; ?deadline_ms overrides)")
	flag.DurationVar(&o.hedgeAfter, "hedge-after", 0, "hedge a coalesced cache-miss wait after this long (0 disables hedged reads)")
	flag.StringVar(&o.shardRoot, "shard-root", "", "serve one shard of a partition built by snbuild -shards (directory holding manifest.json)")
	flag.IntVar(&o.shardID, "shard-id", -1, "which shard of -shard-root to serve")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "snserve: %v\n", err)
		os.Exit(1)
	}
	var err error
	if o.levels, err = parseLevels(*levels); err != nil {
		fail(err)
	}
	if err := validate(o); err != nil {
		fail(err)
	}
	if o.shardRoot != "" {
		if err := runShard(o); err != nil {
			fail(err)
		}
		return
	}
	if err := runServe(o); err != nil {
		fail(err)
	}
}

// runShard serves one shard of a pre-built partition: the mining
// engine reads the boundary-merged repository restricted to owned
// pages (partial queries for the router to merge), the navigation
// engine reads the bare intra-shard stores, and every response is
// stamped with the shard's identity and manifest version.
func runShard(o *options) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	sh, err := shard.OpenServing(o.shardRoot, o.shardID, o.budget, iosim.Model2002())
	if err != nil {
		return err
	}
	defer sh.Close()
	m := sh.Manifest

	e, err := query.New(sh.Repo, repo.SchemeSNode)
	if err != nil {
		return err
	}
	e.SetOwner(sh.Owns)
	nav, err := query.New(sh.NavRepo, repo.SchemeSNode)
	if err != nil {
		return err
	}

	reg := metrics.NewRegistry()
	e.SetMetrics(reg)
	// A shard replica always carries a tracer, even with -trace-every 0
	// (local sampling disabled): the router's sampled bit force-traces
	// individual requests through StartLinked regardless of the local
	// rotation, and /debug/traces is where the router fetches the
	// completed subtree to stitch.
	tracer := trace.New(trace.Config{SampleEvery: o.traceEvery, SlowPerClass: o.traceSlow})
	e.SetTracer(tracer)
	prefixes := []string{"snode_fwd", "snode_rev"}
	for i, s := range []store.LinkStore{sh.NavRepo.Fwd[repo.SchemeSNode], sh.NavRepo.Rev[repo.SchemeSNode]} {
		if sn, ok := s.(*snode.Representation); ok {
			sn.RegisterMetrics(reg, prefixes[i])
		}
		if p, ok := s.(store.Pacer); ok {
			p.SetPace(o.pace)
		}
		if o.hedgeAfter > 0 {
			if hd, ok := s.(store.Hedger); ok {
				hd.SetHedge(o.hedgeAfter)
			}
		}
	}

	qs, err := serve.New(serve.Config{
		Engine:          e,
		NavEngine:       nav,
		Shard:           &serve.ShardInfo{ID: sh.ID, Count: m.NumShards, Version: m.Version},
		MaxConcurrent:   o.maxConcurrent,
		MaxQueue:        o.maxQueue,
		DefaultDeadline: o.deadline,
		Registry:        reg,
		Tracer:          tracer,
	})
	if err != nil {
		return err
	}
	state := &liveState{}
	srv, addr, err := startHTTP(o.listen, buildMux(reg, tracer, state, qs))
	if err != nil {
		return err
	}
	fmt.Printf("shard %d/%d (manifest %s): %d owned pages, %d intra edges, boundary %d fwd / %d rev\n",
		sh.ID, m.NumShards, m.Version, m.Shards[sh.ID].Pages, m.Shards[sh.ID].IntraEdges,
		m.Shards[sh.ID].BoundaryFwdEdges, m.Shards[sh.ID].BoundaryRevEdges)
	fmt.Printf("partial queries on http://%s/query?partial=1, intra-shard /out (admission: %d slots, queue %d/class)\n",
		addr, qs.Admission().MaxConcurrent(), o.maxQueue)
	<-ctx.Done()
	return shutdown(o, state, srv, nil)
}

// liveState is the serving process's mutable state: the delta overlays
// when -live is set, and the readiness flag /healthz reports. draining
// flips once, when shutdown begins.
type liveState struct {
	fwd, rev *delta.Overlay // nil without -live
	draining atomic.Bool
}

// handleHealth reports ready (200) or draining (503) as JSON.
func (s *liveState) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status := "ready"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q}\n", status)
}

// updateOp is one mutation in a POST /update body.
type updateOp struct {
	Src int32  `json:"src"`
	Dst int32  `json:"dst"`
	Op  string `json:"op"` // "add" or "remove"
}

// handleUpdate applies a JSON array of link mutations to the forward
// overlay and mirrors it into the reverse one, so both navigation
// directions stay consistent (the transposed edge set).
func (s *liveState) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.fwd == nil {
		http.Error(w, "server not started with -live", http.StatusServiceUnavailable)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var ops []updateOp
	if err := json.NewDecoder(r.Body).Decode(&ops); err != nil {
		http.Error(w, fmt.Sprintf("bad body: %v", err), http.StatusBadRequest)
		return
	}
	fwd := make([]delta.Mutation, 0, len(ops))
	rev := make([]delta.Mutation, 0, len(ops))
	for i, op := range ops {
		var kind delta.Op
		switch op.Op {
		case "add":
			kind = delta.OpAdd
		case "remove":
			kind = delta.OpRemove
		default:
			http.Error(w, fmt.Sprintf("op %d: unknown kind %q", i, op.Op), http.StatusBadRequest)
			return
		}
		fwd = append(fwd, delta.Mutation{Src: webgraph.PageID(op.Src), Dst: webgraph.PageID(op.Dst), Op: kind})
		rev = append(rev, delta.Mutation{Src: webgraph.PageID(op.Dst), Dst: webgraph.PageID(op.Src), Op: kind})
	}
	ctx := r.Context()
	if err := s.fwd.Apply(ctx, fwd); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.rev.Apply(ctx, rev); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"applied": len(fwd),
		"delta":   s.fwd.DeltaStatsNow(),
	})
}

// buildMux assembles the HTTP surface. tracer may be nil (tracing
// disabled), in which case /debug/traces serves an empty list; qs may
// be nil (no query endpoints).
func buildMux(reg *metrics.Registry, tracer *trace.Tracer, state *liveState, qs *serve.Server) *http.ServeMux {
	expvar.Publish("snode", expvar.Func(func() any { return reg.Snapshot() }))
	mux := http.NewServeMux()
	if qs != nil {
		qs.Register(mux)
	}
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/metrics.json", reg.JSONHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/traces", trace.Handler(tracer))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", state.handleHealth)
	mux.HandleFunc("/update", state.handleUpdate)
	return mux
}

// startHTTP binds the endpoint and serves mux in the background,
// returning the server (for Shutdown) and the bound address
// (resolving :0).
func startHTTP(addr string, mux *http.ServeMux) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("-listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "snserve: http: %v\n", err)
		}
	}()
	return srv, ln.Addr().String(), nil
}

// cacheDelta sums a cache counter's per-level movement over the fwd and
// rev representations from two registry snapshots.
func cacheDelta(prev, cur metrics.Snapshot, counter string) int64 {
	var d int64
	for _, prefix := range []string{"snode_fwd_", "snode_rev_"} {
		name := prefix + counter
		d += cur.Counters[name] - prev.Counters[name]
	}
	return d
}

func runServe(o *options) error {
	// SIGINT/SIGTERM cancels this context; everything downstream —
	// query levels, compactors, the HTTP drain — hangs off it.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ws := o.workspace
	if ws == "" {
		dir, err := os.MkdirTemp("", "snserve-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		ws = dir
	}

	cfg := synth.DefaultConfig(o.pages)
	cfg.Seed = o.seed
	fmt.Printf("generating %d-page crawl (seed %d)...\n", o.pages, o.seed)
	crawl, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Println("building S-Node repository...")
	opt := repo.DefaultOptions(filepath.Join(ws, "repo"))
	opt.Schemes = []string{repo.SchemeSNode}
	opt.CacheBudget = o.budget
	opt.Model = iosim.Model2002()
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		return err
	}
	defer r.Close()

	// With -live, layer delta overlays over both directions and serve
	// queries through them; a background compactor per direction seals
	// and merges while traffic runs. Without -live the engine reads the
	// bare representations.
	state := &liveState{}
	serveRepo := r
	var compactors []*delta.Compactor
	if o.live {
		mk := func(base store.LinkStore, name string) (*delta.Overlay, error) {
			return delta.NewOverlay(base, delta.Config{
				Pages: crawl.Corpus.Pages,
				Dir:   filepath.Join(ws, "delta."+name),
				Model: opt.Model,
			})
		}
		if state.fwd, err = mk(r.Fwd[repo.SchemeSNode], "fwd"); err != nil {
			return err
		}
		defer state.fwd.Close()
		if state.rev, err = mk(r.Rev[repo.SchemeSNode], "rev"); err != nil {
			return err
		}
		defer state.rev.Close()
		serveRepo = &repo.Repository{
			Corpus:   r.Corpus,
			Text:     r.Text,
			PageRank: r.PageRank,
			Domains:  r.Domains,
			Model:    r.Model,
			Fwd:      map[string]store.LinkStore{repo.SchemeSNode: state.fwd},
			Rev:      map[string]store.LinkStore{repo.SchemeSNode: state.rev},
		}
		for _, ov := range []*delta.Overlay{state.fwd, state.rev} {
			compactors = append(compactors, delta.StartCompactor(ctx, ov, delta.CompactorConfig{
				OnError: func(err error) {
					fmt.Fprintf(os.Stderr, "snserve: compactor: %v\n", err)
				},
			}))
		}
		fmt.Println("live updates enabled: POST /update, delta overlays compacting in background")
	}
	e, err := query.New(serveRepo, repo.SchemeSNode)
	if err != nil {
		return err
	}

	// Wire the whole serving path into one registry: per-query latency
	// histograms and stage timings (engine), cache and I/O counters per
	// direction (representations), worker occupancy (pool). The tracer
	// samples 1 in -trace-every requests into span trees whose slowest
	// representatives are retained per query class.
	reg := metrics.NewRegistry()
	e.SetMetrics(reg)
	var tracer *trace.Tracer
	if o.traceEvery > 0 {
		tracer = trace.New(trace.Config{SampleEvery: o.traceEvery, SlowPerClass: o.traceSlow})
		e.SetTracer(tracer)
	}
	prefixes := []string{"snode_fwd", "snode_rev"}
	for i, s := range []store.LinkStore{r.Fwd[repo.SchemeSNode], r.Rev[repo.SchemeSNode]} {
		if sn, ok := s.(*snode.Representation); ok {
			sn.RegisterMetrics(reg, prefixes[i])
		}
	}
	// Pace (and later reset) the stores the engine actually reads: the
	// overlays when live — they forward to the base and also pace their
	// own segment reads — or the bare representations otherwise.
	stores := []store.LinkStore{serveRepo.Fwd[repo.SchemeSNode], serveRepo.Rev[repo.SchemeSNode]}
	for _, s := range stores {
		if p, ok := s.(store.Pacer); ok {
			p.SetPace(o.pace)
		}
	}
	if o.live {
		state.fwd.RegisterMetrics(reg, "delta_fwd")
		state.rev.RegisterMetrics(reg, "delta_rev")
	}
	// Hedged reads are a property of the S-Node buffer manager, so they
	// arm on the base representations (the overlays forward to them).
	if o.hedgeAfter > 0 {
		for _, s := range []store.LinkStore{r.Fwd[repo.SchemeSNode], r.Rev[repo.SchemeSNode]} {
			if hd, ok := s.(store.Hedger); ok {
				hd.SetHedge(o.hedgeAfter)
			}
		}
	}
	var srv *http.Server
	if o.listen != "" {
		// The query endpoints share the workload engine (a Shared copy)
		// behind the admission controller.
		qs, err := serve.New(serve.Config{
			Engine:          e,
			MaxConcurrent:   o.maxConcurrent,
			MaxQueue:        o.maxQueue,
			DefaultDeadline: o.deadline,
			Registry:        reg,
			Tracer:          tracer,
		})
		if err != nil {
			return err
		}
		var addr string
		srv, addr, err = startHTTP(o.listen, buildMux(reg, tracer, state, qs))
		if err != nil {
			return err
		}
		fmt.Printf("queries on http://%s/out and /query (admission: %d slots, queue %d/class)\n",
			addr, qs.Admission().MaxConcurrent(), o.maxQueue)
		fmt.Printf("metrics on http://%s/metrics (also /healthz, /debug/vars, /debug/pprof, /debug/traces)\n", addr)
	}

	var jobs []query.ID
	for i := 0; i < o.rounds; i++ {
		jobs = append(jobs, query.All()...)
	}

	fmt.Printf("\nserving %d queries per level (%d KB buffer, pace x%.2f)\n",
		len(jobs), o.budget>>10, o.pace)
	fmt.Printf("%11s %12s %10s %9s | %9s %9s %7s %10s\n",
		"goroutines", "elapsed", "qps", "speedup", "hits", "misses", "loads", "coalesced")
	var baseQPS float64
	for _, g := range o.levels {
		for _, s := range stores {
			if cr, ok := s.(store.CacheResetter); ok {
				cr.ResetCache(o.budget)
			}
		}
		prev := reg.Snapshot()
		start := time.Now()
		if _, err := e.RunParallel(ctx, jobs, g); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Println("\ninterrupted; shutting down")
				break
			}
			return fmt.Errorf("level %d: %w", g, err)
		}
		elapsed := time.Since(start)
		qps := float64(len(jobs)) / elapsed.Seconds()
		speedup := 1.0
		if baseQPS == 0 {
			baseQPS = qps
		} else if baseQPS > 0 {
			speedup = qps / baseQPS
		}
		cur := reg.Snapshot()
		fmt.Printf("%11d %12v %10.1f %8.2fx | %9d %9d %7d %10d\n",
			g, elapsed.Round(time.Millisecond), qps, speedup,
			cacheDelta(prev, cur, "cache_hits"),
			cacheDelta(prev, cur, "cache_misses"),
			cacheDelta(prev, cur, "cache_loads"),
			cacheDelta(prev, cur, "cache_coalesced"))
	}

	// Latency summary across all levels, from the per-query histograms.
	// The exemplar column links each query's latency tail to a retained
	// trace: the /debug/traces?id=N span tree explains where that
	// execution's time went.
	snap := reg.Snapshot()
	fmt.Printf("\nper-query latency across all levels (wall time per execution)\n")
	fmt.Printf("%6s %8s %10s %10s %10s %14s\n", "query", "count", "p50", "p95", "p99", "tail trace")
	for _, q := range query.All() {
		name := fmt.Sprintf("query_latency_q%d", q)
		h, ok := snap.Histograms[name]
		if !ok {
			continue
		}
		exemplar := "-"
		if _, id := h.TailExemplar(); id != 0 {
			exemplar = fmt.Sprintf("id=%d", id)
		}
		fmt.Printf("%6s %8d %10v %10v %10v %14s\n",
			fmt.Sprintf("Q%d", q), h.Count,
			time.Duration(h.P50()).Round(10*time.Microsecond),
			time.Duration(h.P95()).Round(10*time.Microsecond),
			time.Duration(h.P99()).Round(10*time.Microsecond),
			exemplar)
	}
	if tracer != nil {
		if traces := tracer.Traces(); len(traces) > 0 {
			fmt.Printf("\nslow-query log: %d retained trace(s)\n", len(traces))
			for i, t := range traces {
				if i >= 6 {
					fmt.Printf("  ... (%d more)\n", len(traces)-i)
					break
				}
				s := t.Summary()
				fmt.Printf("  id=%-6d class=%-3s total=%-12v spans=%-4d seeks=%-4d decodes=%d\n",
					s.ID, s.Class, time.Duration(s.TotalNs).Round(10*time.Microsecond),
					s.Spans, s.Seeks, s.Decodes)
			}
			fmt.Println("  (inspect with /debug/traces?id=N, or &format=chrome for chrome://tracing)")
		}
	}
	if o.listen != "" && ctx.Err() == nil {
		fmt.Println("\nserving complete; endpoints stay up until SIGINT/SIGTERM")
		<-ctx.Done()
	}
	return shutdown(o, state, srv, compactors)
}

// shutdown drains the server and persists the live state: /healthz
// flips to draining, the listener stops accepting and in-flight
// requests finish under the -drain deadline, the compactors stop, and
// the delta memtables are sealed to disk so no accepted mutation is
// lost at exit.
func shutdown(o *options, state *liveState, srv *http.Server, compactors []*delta.Compactor) error {
	state.draining.Store(true)
	if srv != nil {
		fmt.Printf("draining in-flight requests (deadline %v)...\n", o.drain)
		dctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "snserve: drain deadline exceeded, closing: %v\n", err)
			srv.Close()
		}
	}
	for _, c := range compactors {
		c.Stop()
	}
	if state.fwd != nil {
		fmt.Println("sealing delta memtables...")
		for _, ov := range []*delta.Overlay{state.fwd, state.rev} {
			if err := ov.Seal(context.Background()); err != nil {
				return fmt.Errorf("seal: %w", err)
			}
		}
		ds := state.fwd.DeltaStatsNow()
		fmt.Printf("delta state at exit: %d applied ops in %d segment(s)\n",
			ds.AppliedOps, ds.Segments)
	}
	return nil
}
