// Command snserve demonstrates the concurrent query-serving path: it
// builds an S-Node repository over a synthetic crawl, then serves a
// fixed mixed Query 1-6 workload from increasing numbers of goroutines
// against the one shared representation, reporting queries/second per
// level together with the buffer manager's counters (hits, misses,
// loads, and singleflight-coalesced decodes) read as deltas from the
// metrics registry.
//
//	snserve -pages 50000 -goroutines 1,4,16 -rounds 4 -pace 1.0
//
// With -pace > 0, every disk read stalls its calling goroutine for the
// read's modeled 2002-disk cost times the scale, so the throughput
// curve shows real I/O overlap rather than CPU-only parallelism.
//
// With -listen, snserve exposes the serving path's observability
// surface over HTTP while the levels run:
//
//	/metrics       text exposition: per-query latency histograms with
//	               p50/p95/p99 and tail-bucket trace-ID exemplars, cache
//	               hit/miss/load/coalesce/eviction counters,
//	               decoded-bytes gauges, iosim seek/transfer/stall
//	               accounting, worker occupancy
//	/debug/vars    the same snapshot as expvar JSON
//	/debug/pprof   the standard net/http/pprof profiles
//	/debug/traces  the slow-query log: retained execution traces as JSON
//	               summaries; ?id=N for one trace's span tree
//	               (&format=chrome for chrome://tracing, &format=text
//	               for a rendered tree)
//
// Sampled requests (-trace-every, default 1 in 64) carry a trace down
// through the engine, cache, and I/O simulator; the slowest per query
// class are retained and linked from the latency histograms' tail
// buckets.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/trace"
)

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad goroutine count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// options are the validated serving parameters.
type options struct {
	pages      int
	levels     []int
	rounds     int
	budget     int64
	pace       float64
	seed       uint64
	workspace  string
	listen     string
	traceEvery int
	traceSlow  int
}

// validate rejects flag combinations that would previously slip
// through and fail obscurely downstream (a zero-query workload divides
// through a zero base QPS; a non-positive budget floors every cache
// shard; a negative pace is meaningless).
func validate(o *options) error {
	if o.pages < 1 {
		return fmt.Errorf("-pages must be >= 1 (got %d)", o.pages)
	}
	if o.rounds < 1 {
		return fmt.Errorf("-rounds must be >= 1 (got %d): a level must serve at least one six-query mix", o.rounds)
	}
	if o.budget <= 0 {
		return fmt.Errorf("-budget must be positive bytes (got %d)", o.budget)
	}
	if o.pace < 0 {
		return fmt.Errorf("-pace must be >= 0 (got %g)", o.pace)
	}
	if o.traceEvery < 0 {
		return fmt.Errorf("-trace-every must be >= 0 (got %d; 0 disables tracing)", o.traceEvery)
	}
	if o.traceSlow < 1 {
		return fmt.Errorf("-trace-slow must be >= 1 (got %d)", o.traceSlow)
	}
	return nil
}

func main() {
	o := &options{}
	flag.IntVar(&o.pages, "pages", 50000, "corpus size in pages")
	levels := flag.String("goroutines", "1,4,16", "comma-separated goroutine counts")
	flag.IntVar(&o.rounds, "rounds", 4, "repetitions of the six-query mix per level")
	flag.Int64Var(&o.budget, "budget", 1<<20, "buffer-manager budget in bytes")
	flag.Float64Var(&o.pace, "pace", 1.0, "disk-stall scale (0 disables pacing)")
	flag.Uint64Var(&o.seed, "seed", 20030226, "crawl generator seed")
	flag.StringVar(&o.workspace, "workspace", "", "build directory (default: temp)")
	flag.StringVar(&o.listen, "listen", "", "serve /metrics, /debug/vars, /debug/pprof, /debug/traces on this address (e.g. :8080; empty disables)")
	flag.IntVar(&o.traceEvery, "trace-every", 64, "trace 1 in N queries (0 disables tracing)")
	flag.IntVar(&o.traceSlow, "trace-slow", 4, "retain the N slowest traces per query class")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "snserve: %v\n", err)
		os.Exit(1)
	}
	var err error
	if o.levels, err = parseLevels(*levels); err != nil {
		fail(err)
	}
	if err := validate(o); err != nil {
		fail(err)
	}
	if err := serve(o); err != nil {
		fail(err)
	}
}

// startHTTP binds the observability endpoint and serves it in the
// background, returning the bound address (resolving :0). tracer may
// be nil (tracing disabled), in which case /debug/traces serves an
// empty list.
func startHTTP(addr string, reg *metrics.Registry, tracer *trace.Tracer) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("-listen %s: %w", addr, err)
	}
	expvar.Publish("snode", expvar.Func(func() any { return reg.Snapshot() }))
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/traces", trace.Handler(tracer))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

// cacheDelta sums a cache counter's per-level movement over the fwd and
// rev representations from two registry snapshots.
func cacheDelta(prev, cur metrics.Snapshot, counter string) int64 {
	var d int64
	for _, prefix := range []string{"snode_fwd_", "snode_rev_"} {
		name := prefix + counter
		d += cur.Counters[name] - prev.Counters[name]
	}
	return d
}

func serve(o *options) error {
	ws := o.workspace
	if ws == "" {
		dir, err := os.MkdirTemp("", "snserve-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		ws = dir
	}

	cfg := synth.DefaultConfig(o.pages)
	cfg.Seed = o.seed
	fmt.Printf("generating %d-page crawl (seed %d)...\n", o.pages, o.seed)
	crawl, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Println("building S-Node repository...")
	opt := repo.DefaultOptions(filepath.Join(ws, "repo"))
	opt.Schemes = []string{repo.SchemeSNode}
	opt.CacheBudget = o.budget
	opt.Model = iosim.Model2002()
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		return err
	}
	defer r.Close()
	e, err := query.New(r, repo.SchemeSNode)
	if err != nil {
		return err
	}

	// Wire the whole serving path into one registry: per-query latency
	// histograms and stage timings (engine), cache and I/O counters per
	// direction (representations), worker occupancy (pool). The tracer
	// samples 1 in -trace-every requests into span trees whose slowest
	// representatives are retained per query class.
	reg := metrics.NewRegistry()
	e.SetMetrics(reg)
	var tracer *trace.Tracer
	if o.traceEvery > 0 {
		tracer = trace.New(trace.Config{SampleEvery: o.traceEvery, SlowPerClass: o.traceSlow})
		e.SetTracer(tracer)
	}
	stores := []store.LinkStore{r.Fwd[repo.SchemeSNode], r.Rev[repo.SchemeSNode]}
	prefixes := []string{"snode_fwd", "snode_rev"}
	for i, s := range stores {
		if sn, ok := s.(*snode.Representation); ok {
			sn.RegisterMetrics(reg, prefixes[i])
		}
		if p, ok := s.(store.Pacer); ok {
			p.SetPace(o.pace)
		}
	}
	if o.listen != "" {
		addr, err := startHTTP(o.listen, reg, tracer)
		if err != nil {
			return err
		}
		fmt.Printf("metrics on http://%s/metrics (also /debug/vars, /debug/pprof, /debug/traces)\n", addr)
	}

	var jobs []query.ID
	for i := 0; i < o.rounds; i++ {
		jobs = append(jobs, query.All()...)
	}

	fmt.Printf("\nserving %d queries per level (%d KB buffer, pace x%.2f)\n",
		len(jobs), o.budget>>10, o.pace)
	fmt.Printf("%11s %12s %10s %9s | %9s %9s %7s %10s\n",
		"goroutines", "elapsed", "qps", "speedup", "hits", "misses", "loads", "coalesced")
	var baseQPS float64
	for _, g := range o.levels {
		for _, s := range stores {
			if cr, ok := s.(store.CacheResetter); ok {
				cr.ResetCache(o.budget)
			}
		}
		prev := reg.Snapshot()
		start := time.Now()
		if _, err := e.RunParallel(context.Background(), jobs, g); err != nil {
			return fmt.Errorf("level %d: %w", g, err)
		}
		elapsed := time.Since(start)
		qps := float64(len(jobs)) / elapsed.Seconds()
		speedup := 1.0
		if baseQPS == 0 {
			baseQPS = qps
		} else if baseQPS > 0 {
			speedup = qps / baseQPS
		}
		cur := reg.Snapshot()
		fmt.Printf("%11d %12v %10.1f %8.2fx | %9d %9d %7d %10d\n",
			g, elapsed.Round(time.Millisecond), qps, speedup,
			cacheDelta(prev, cur, "cache_hits"),
			cacheDelta(prev, cur, "cache_misses"),
			cacheDelta(prev, cur, "cache_loads"),
			cacheDelta(prev, cur, "cache_coalesced"))
	}

	// Latency summary across all levels, from the per-query histograms.
	// The exemplar column links each query's latency tail to a retained
	// trace: the /debug/traces?id=N span tree explains where that
	// execution's time went.
	snap := reg.Snapshot()
	fmt.Printf("\nper-query latency across all levels (wall time per execution)\n")
	fmt.Printf("%6s %8s %10s %10s %10s %14s\n", "query", "count", "p50", "p95", "p99", "tail trace")
	for _, q := range query.All() {
		name := fmt.Sprintf("query_latency_q%d", q)
		h, ok := snap.Histograms[name]
		if !ok {
			continue
		}
		exemplar := "-"
		if _, id := h.TailExemplar(); id != 0 {
			exemplar = fmt.Sprintf("id=%d", id)
		}
		fmt.Printf("%6s %8d %10v %10v %10v %14s\n",
			fmt.Sprintf("Q%d", q), h.Count,
			time.Duration(h.P50()).Round(10*time.Microsecond),
			time.Duration(h.P95()).Round(10*time.Microsecond),
			time.Duration(h.P99()).Round(10*time.Microsecond),
			exemplar)
	}
	if tracer != nil {
		if traces := tracer.Traces(); len(traces) > 0 {
			fmt.Printf("\nslow-query log: %d retained trace(s)\n", len(traces))
			for i, t := range traces {
				if i >= 6 {
					fmt.Printf("  ... (%d more)\n", len(traces)-i)
					break
				}
				s := t.Summary()
				fmt.Printf("  id=%-6d class=%-3s total=%-12v spans=%-4d seeks=%-4d decodes=%d\n",
					s.ID, s.Class, time.Duration(s.TotalNs).Round(10*time.Microsecond),
					s.Spans, s.Seeks, s.Decodes)
			}
			fmt.Println("  (inspect with /debug/traces?id=N, or &format=chrome for chrome://tracing)")
		}
	}
	if o.listen != "" {
		fmt.Println("\nserving complete; metrics endpoint stays up until interrupted (ctrl-C to exit)")
		select {}
	}
	return nil
}
