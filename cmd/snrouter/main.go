// Command snrouter is the scatter-gather front of the distributed
// serving tier. It loads a shard manifest (written by snbuild -shards)
// plus the forward boundary stores, and routes the serving endpoints
// across the shard replicas:
//
//	/out      ?page=N: routed to the ONE shard owning the page, with
//	          the page's cross-shard targets appended from the
//	          router-resident boundary store
//	/query    ?q=1..6: scattered as ?partial=1 to EVERY shard, merged
//	          with the query's merge class into single-node rows
//	/healthz  readiness
//
// plus the fleet observability surface:
//
//	/metrics          router_* counters (requests per class, failovers,
//	                  fan-out errors, sheds per class, ejections,
//	                  re-admissions, version skew, stitched traces) and
//	                  the per-class end-to-end latency histograms whose
//	                  tail buckets carry stitched-trace exemplars
//	/metrics.json     the same registry as a mergeable JSON snapshot
//	/cluster/metrics  fleet federation: every replica's /metrics.json
//	                  scraped live, merged per shard and cluster-wide
//	                  (bucket-wise histogram merge); replicas that stop
//	                  answering are reported from the scrape cache with
//	                  a staleness mark and age
//	/slo              the SLO scoreboard: rolling-window availability
//	                  and p99 objectives per request class with
//	                  error-budget burn rates (see -slo-* flags)
//	/debug/traces     sampled routed requests as DISTRIBUTED traces:
//	                  the router's fanout/merge spans with every
//	                  shard's force-traced span subtree stitched in
//	                  (?id=N&format=chrome renders per-shard process
//	                  lanes in chrome://tracing)
//	/debug/vars       the registry snapshot as expvar JSON
//	/debug/pprof      the standard net/http/pprof profiles
//
// Replicas are named per shard:
//
//	snrouter -root /data/shards \
//	  -replicas "http://s0a:8080,http://s0b:8080;http://s1a:8080"
//
// Groups are ';'-separated in shard order; URLs within a group are
// ','-separated. A replica is ejected after -eject-after consecutive
// failures, re-probed every -probe-interval via /healthz, and healed
// immediately by any in-band success. A 429 from a shard is relayed —
// aggregated across legs as the maximum Retry-After — rather than
// failed over, and a replica serving a different manifest version than
// the router's is treated as down (version skew).
//
// Sampled requests (-trace-every) propagate the X-SNode-Trace header
// to every fan-out leg so shards force-trace them regardless of their
// own sampling; unsampled requests carry no header and pay no
// allocation for the machinery.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"snode/internal/metrics"
	"snode/internal/router"
	"snode/internal/shard"
	"snode/internal/trace"
)

// parseReplicas splits a ';'-separated list of ','-separated URL
// groups into per-shard replica lists.
func parseReplicas(spec string) ([][]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-replicas is required")
	}
	var out [][]string
	for i, group := range strings.Split(spec, ";") {
		var urls []string
		for _, u := range strings.Split(group, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("shard %d: replica %q is not an http(s) URL", i, u)
			}
			urls = append(urls, strings.TrimRight(u, "/"))
		}
		if len(urls) == 0 {
			return nil, fmt.Errorf("shard %d: empty replica group", i)
		}
		out = append(out, urls)
	}
	return out, nil
}

// options are the validated router parameters.
type options struct {
	root          string
	reps          [][]string
	listen        string
	shardTimeout  time.Duration
	ejectAfter    int
	probeInterval time.Duration
	traceEvery    int
	traceSlow     int
	slo           router.SLOConfig
}

func main() {
	o := &options{}
	root := flag.String("root", "", "shard root directory (holds manifest.json; required)")
	replicas := flag.String("replicas", "", "per-shard replica URLs: groups ';'-separated in shard order, URLs ','-separated within a group (required)")
	flag.StringVar(&o.listen, "listen", ":8080", "address to serve the routed endpoints and observability surface on")
	flag.DurationVar(&o.shardTimeout, "shard-timeout", 5*time.Second, "per-leg deadline for each shard request")
	flag.IntVar(&o.ejectAfter, "eject-after", 3, "consecutive failures that eject a replica from selection")
	flag.DurationVar(&o.probeInterval, "probe-interval", 500*time.Millisecond, "ejected-replica health-probe period")
	flag.IntVar(&o.traceEvery, "trace-every", 64, "trace 1 in N routed requests as stitched distributed traces (0 disables tracing)")
	flag.IntVar(&o.traceSlow, "trace-slow", 4, "retain the N slowest traces per request class")
	flag.DurationVar(&o.slo.Window, "slo-window", time.Minute, "rolling evaluation window for the /slo scoreboard")
	flag.Float64Var(&o.slo.Availability, "slo-availability", 0.999, "per-class availability target in (0,1)")
	flag.DurationVar(&o.slo.NavP99, "slo-nav-p99", 150*time.Millisecond, "nav-class p99 latency target")
	flag.DurationVar(&o.slo.MiningP99, "slo-mining-p99", time.Second, "mining-class p99 latency target")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "snrouter: %v\n", err)
		os.Exit(1)
	}
	if *root == "" {
		fail(fmt.Errorf("-root is required"))
	}
	o.root = *root
	reps, err := parseReplicas(*replicas)
	if err != nil {
		fail(err)
	}
	o.reps = reps
	if o.shardTimeout <= 0 {
		fail(fmt.Errorf("-shard-timeout must be positive (got %v)", o.shardTimeout))
	}
	if o.ejectAfter < 1 {
		fail(fmt.Errorf("-eject-after must be >= 1 (got %d)", o.ejectAfter))
	}
	if o.slo.Availability <= 0 || o.slo.Availability >= 1 {
		fail(fmt.Errorf("-slo-availability must be in (0,1) exclusive (got %g)", o.slo.Availability))
	}
	if err := run(o); err != nil {
		fail(err)
	}
}

func run(o *options) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	m, err := shard.LoadManifest(o.root)
	if err != nil {
		return err
	}
	if len(o.reps) != m.NumShards {
		return fmt.Errorf("-replicas names %d shard group(s), manifest has %d shards", len(o.reps), m.NumShards)
	}
	bs, err := shard.LoadFwdBoundaries(o.root, m)
	if err != nil {
		return err
	}
	boundaryEdges := int64(0)
	for _, b := range bs {
		boundaryEdges += b.NumEdges()
	}

	reg := metrics.NewRegistry()
	var tracer *trace.Tracer
	if o.traceEvery > 0 {
		tracer = trace.New(trace.Config{SampleEvery: o.traceEvery, SlowPerClass: o.traceSlow})
	}
	r, err := router.New(router.Config{
		Manifest:      m,
		Boundaries:    bs,
		Replicas:      o.reps,
		ShardTimeout:  o.shardTimeout,
		EjectAfter:    o.ejectAfter,
		ProbeInterval: o.probeInterval,
		Registry:      reg,
		Tracer:        tracer,
		SLO:           o.slo,
	})
	if err != nil {
		return err
	}
	defer r.Close()

	// Register mounts the routed endpoints plus /metrics, /metrics.json,
	// /cluster/metrics, /slo, and /debug/traces; the process-level debug
	// surface (expvar, pprof) mounts alongside.
	mux := http.NewServeMux()
	r.Register(mux)
	expvar.Publish("snrouter", expvar.Func(func() any { return reg.Snapshot() }))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return fmt.Errorf("-listen %s: %w", o.listen, err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "snrouter: http: %v\n", err)
		}
	}()

	fmt.Printf("manifest %s: %d pages, %d shards, %d cross-shard edges resident\n",
		m.Version, m.NumPages, m.NumShards, boundaryEdges)
	for s, urls := range o.reps {
		fmt.Printf("  shard %d (%d pages): %s\n", s, m.Shards[s].Pages, strings.Join(urls, ", "))
	}
	fmt.Printf("routing on http://%s/out and /query (leg timeout %v, eject after %d, probe every %v)\n",
		ln.Addr(), o.shardTimeout, o.ejectAfter, o.probeInterval)
	fmt.Printf("observability: /metrics /metrics.json /cluster/metrics /slo /debug/traces /debug/vars /debug/pprof\n")
	fmt.Printf("slo: availability %.4f, nav p99 %v, mining p99 %v over %v windows\n",
		o.slo.Availability, o.slo.NavP99, o.slo.MiningP99, o.slo.Window)

	<-ctx.Done()
	fmt.Println("shutting down")
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		srv.Close()
	}
	return nil
}
