// Command snrouter is the scatter-gather front of the distributed
// serving tier. It loads a shard manifest (written by snbuild -shards)
// plus the forward boundary stores, and routes the serving endpoints
// across the shard replicas:
//
//	/out      ?page=N: routed to the ONE shard owning the page, with
//	          the page's cross-shard targets appended from the
//	          router-resident boundary store
//	/query    ?q=1..6: scattered as ?partial=1 to EVERY shard, merged
//	          with the query's merge class into single-node rows
//	/healthz  readiness
//	/metrics  router_* counters (requests per class, failovers,
//	          fan-out errors, sheds, ejections, re-admissions,
//	          version skew)
//
// Replicas are named per shard:
//
//	snrouter -root /data/shards \
//	  -replicas "http://s0a:8080,http://s0b:8080;http://s1a:8080"
//
// Groups are ';'-separated in shard order; URLs within a group are
// ','-separated. A replica is ejected after -eject-after consecutive
// failures, re-probed every -probe-interval via /healthz, and healed
// immediately by any in-band success. A 429 from a shard is relayed —
// aggregated across legs as the maximum Retry-After — rather than
// failed over, and a replica serving a different manifest version than
// the router's is treated as down (version skew).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"snode/internal/metrics"
	"snode/internal/router"
	"snode/internal/shard"
	"snode/internal/trace"
)

// parseReplicas splits a ';'-separated list of ','-separated URL
// groups into per-shard replica lists.
func parseReplicas(spec string) ([][]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-replicas is required")
	}
	var out [][]string
	for i, group := range strings.Split(spec, ";") {
		var urls []string
		for _, u := range strings.Split(group, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("shard %d: replica %q is not an http(s) URL", i, u)
			}
			urls = append(urls, strings.TrimRight(u, "/"))
		}
		if len(urls) == 0 {
			return nil, fmt.Errorf("shard %d: empty replica group", i)
		}
		out = append(out, urls)
	}
	return out, nil
}

func main() {
	root := flag.String("root", "", "shard root directory (holds manifest.json; required)")
	replicas := flag.String("replicas", "", "per-shard replica URLs: groups ';'-separated in shard order, URLs ','-separated within a group (required)")
	listen := flag.String("listen", ":8080", "address to serve /out, /query, /healthz, /metrics on")
	shardTimeout := flag.Duration("shard-timeout", 5*time.Second, "per-leg deadline for each shard request")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failures that eject a replica from selection")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "ejected-replica health-probe period")
	traceEvery := flag.Int("trace-every", 64, "trace 1 in N routed requests (0 disables tracing)")
	traceSlow := flag.Int("trace-slow", 4, "retain the N slowest traces per request class")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "snrouter: %v\n", err)
		os.Exit(1)
	}
	if *root == "" {
		fail(fmt.Errorf("-root is required"))
	}
	reps, err := parseReplicas(*replicas)
	if err != nil {
		fail(err)
	}
	if *shardTimeout <= 0 {
		fail(fmt.Errorf("-shard-timeout must be positive (got %v)", *shardTimeout))
	}
	if *ejectAfter < 1 {
		fail(fmt.Errorf("-eject-after must be >= 1 (got %d)", *ejectAfter))
	}
	if err := run(*root, reps, *listen, *shardTimeout, *ejectAfter, *probeInterval, *traceEvery, *traceSlow); err != nil {
		fail(err)
	}
}

func run(root string, reps [][]string, listen string, shardTimeout time.Duration, ejectAfter int, probeInterval time.Duration, traceEvery, traceSlow int) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	m, err := shard.LoadManifest(root)
	if err != nil {
		return err
	}
	if len(reps) != m.NumShards {
		return fmt.Errorf("-replicas names %d shard group(s), manifest has %d shards", len(reps), m.NumShards)
	}
	bs, err := shard.LoadFwdBoundaries(root, m)
	if err != nil {
		return err
	}
	boundaryEdges := int64(0)
	for _, b := range bs {
		boundaryEdges += b.NumEdges()
	}

	reg := metrics.NewRegistry()
	var tracer *trace.Tracer
	if traceEvery > 0 {
		tracer = trace.New(trace.Config{SampleEvery: traceEvery, SlowPerClass: traceSlow})
	}
	r, err := router.New(router.Config{
		Manifest:      m,
		Boundaries:    bs,
		Replicas:      reps,
		ShardTimeout:  shardTimeout,
		EjectAfter:    ejectAfter,
		ProbeInterval: probeInterval,
		Registry:      reg,
		Tracer:        tracer,
	})
	if err != nil {
		return err
	}
	defer r.Close()

	mux := http.NewServeMux()
	r.Register(mux)
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", trace.Handler(tracer))

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return fmt.Errorf("-listen %s: %w", listen, err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "snrouter: http: %v\n", err)
		}
	}()

	fmt.Printf("manifest %s: %d pages, %d shards, %d cross-shard edges resident\n",
		m.Version, m.NumPages, m.NumShards, boundaryEdges)
	for s, urls := range reps {
		fmt.Printf("  shard %d (%d pages): %s\n", s, m.Shards[s].Pages, strings.Join(urls, ", "))
	}
	fmt.Printf("routing on http://%s/out and /query (leg timeout %v, eject after %d, probe every %v)\n",
		ln.Addr(), shardTimeout, ejectAfter, probeInterval)

	<-ctx.Done()
	fmt.Println("shutting down")
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		srv.Close()
	}
	return nil
}
