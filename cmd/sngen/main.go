// Command sngen generates a synthetic Web crawl and writes it to disk
// as a corpus file (corpus.bin holding pages, terms, links, and crawl
// order) that snbuild and snquery consume.
//
//	sngen -pages 100000 -out ./crawl
//
// With -format edgelist it instead exports the crawl the way public
// datasets ship: a SNAP-style edge list (optionally gzipped) plus a
// URL-table sidecar and sha256 manifest, which `snbuild -ingest`
// reads back — the self-contained round-trip oracle for the real-graph
// ingestion path.
//
//	sngen -pages 100000 -format edgelist -gzip -out ./dataset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"snode/internal/corpusio"
	"snode/internal/ingest"
	"snode/internal/synth"
)

// options are the validated command-line inputs.
type options struct {
	pages  int
	seed   uint64
	out    string
	format string
	gzip   bool
}

// usageError prints the problem in flag-package style (message plus
// defaults) and exits 2, the conventional usage-error status.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sngen: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// parseFlags validates every flag before generation starts, matching
// the snbuild/snquery convention.
func parseFlags() options {
	var o options
	flag.IntVar(&o.pages, "pages", 50000, "number of pages (> 0)")
	flag.Uint64Var(&o.seed, "seed", 20030226, "generator seed")
	flag.StringVar(&o.out, "out", "crawl", "output directory")
	flag.StringVar(&o.format, "format", "corpus", "output format: corpus (corpus.bin for snbuild -crawl) or edgelist (SNAP edge list + url table + manifest for snbuild -ingest)")
	flag.BoolVar(&o.gzip, "gzip", false, "gzip the exported edge list (edgelist format only)")
	flag.Parse()

	if flag.NArg() > 0 {
		usageError("unexpected argument %q (all inputs are flags)", flag.Arg(0))
	}
	if o.pages <= 0 {
		usageError("-pages must be positive, got %d", o.pages)
	}
	if o.out == "" {
		usageError("-out directory must not be empty")
	}
	if o.format != "corpus" && o.format != "edgelist" {
		usageError("unknown -format %q (one of: corpus, edgelist)", o.format)
	}
	if o.gzip && o.format != "edgelist" {
		usageError("-gzip only applies to -format edgelist")
	}
	return o
}

func main() {
	o := parseFlags()

	cfg := synth.DefaultConfig(o.pages)
	cfg.Seed = o.seed
	crawl, err := synth.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sngen:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(o.out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "sngen:", err)
		os.Exit(1)
	}
	g := crawl.Corpus.Graph
	if o.format == "edgelist" {
		res, err := ingest.Export(crawl.Corpus, o.out, ingest.ExportOptions{Gzip: o.gzip})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sngen:", err)
			os.Exit(1)
		}
		fmt.Printf("exported %d pages, %d links as %s (+ %s, %s)\n",
			res.Nodes, res.Edges, res.GraphPath,
			filepath.Base(res.URLTablePath), filepath.Base(res.ManifestPath))
		fmt.Printf("ingest with: snbuild -ingest %s -out ./repo\n", res.GraphPath)
		return
	}
	if err := corpusio.Write(crawl, filepath.Join(o.out, "corpus.bin")); err != nil {
		fmt.Fprintln(os.Stderr, "sngen:", err)
		os.Exit(1)
	}
	fmt.Printf("generated %d pages, %d links (avg out-degree %.1f) into %s\n",
		g.NumPages(), g.NumEdges(), g.AvgOutDegree(), o.out)
}
