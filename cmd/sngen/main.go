// Command sngen generates a synthetic Web crawl and writes it to disk
// as a corpus file (corpus.bin holding pages, terms, links, and crawl
// order) that snbuild and snquery consume.
//
//	sngen -pages 100000 -out ./crawl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"snode/internal/corpusio"
	"snode/internal/synth"
)

// options are the validated command-line inputs.
type options struct {
	pages int
	seed  uint64
	out   string
}

// usageError prints the problem in flag-package style (message plus
// defaults) and exits 2, the conventional usage-error status.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sngen: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// parseFlags validates every flag before generation starts, matching
// the snbuild/snquery convention.
func parseFlags() options {
	var o options
	flag.IntVar(&o.pages, "pages", 50000, "number of pages (> 0)")
	flag.Uint64Var(&o.seed, "seed", 20030226, "generator seed")
	flag.StringVar(&o.out, "out", "crawl", "output directory")
	flag.Parse()

	if flag.NArg() > 0 {
		usageError("unexpected argument %q (all inputs are flags)", flag.Arg(0))
	}
	if o.pages <= 0 {
		usageError("-pages must be positive, got %d", o.pages)
	}
	if o.out == "" {
		usageError("-out directory must not be empty")
	}
	return o
}

func main() {
	o := parseFlags()

	cfg := synth.DefaultConfig(o.pages)
	cfg.Seed = o.seed
	crawl, err := synth.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sngen:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(o.out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "sngen:", err)
		os.Exit(1)
	}
	if err := corpusio.Write(crawl, filepath.Join(o.out, "corpus.bin")); err != nil {
		fmt.Fprintln(os.Stderr, "sngen:", err)
		os.Exit(1)
	}
	g := crawl.Corpus.Graph
	fmt.Printf("generated %d pages, %d links (avg out-degree %.1f) into %s\n",
		g.NumPages(), g.NumEdges(), g.AvgOutDegree(), o.out)
}
