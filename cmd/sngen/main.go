// Command sngen generates a synthetic Web crawl and writes it to disk
// as a corpus file (corpus.bin holding pages, terms, links, and crawl
// order) that snbuild and snquery consume.
//
//	sngen -pages 100000 -out ./crawl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"snode/internal/corpusio"
	"snode/internal/synth"
)

func main() {
	pages := flag.Int("pages", 50000, "number of pages")
	seed := flag.Uint64("seed", 20030226, "generator seed")
	out := flag.String("out", "crawl", "output directory")
	flag.Parse()

	cfg := synth.DefaultConfig(*pages)
	cfg.Seed = *seed
	crawl, err := synth.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sngen:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "sngen:", err)
		os.Exit(1)
	}
	if err := corpusio.Write(crawl, filepath.Join(*out, "corpus.bin")); err != nil {
		fmt.Fprintln(os.Stderr, "sngen:", err)
		os.Exit(1)
	}
	g := crawl.Corpus.Graph
	fmt.Printf("generated %d pages, %d links (avg out-degree %.1f) into %s\n",
		g.NumPages(), g.NumEdges(), g.AvgOutDegree(), *out)
}
