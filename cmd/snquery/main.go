// Command snquery runs the paper's six complex queries (Table 3)
// against a crawl, building the requested representation on the fly,
// and reports results with navigation-time breakdowns.
//
//	snquery -crawl ./crawl -scheme snode -query all
//	snquery -crawl ./crawl -scheme files -query 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"snode/internal/corpusio"
	"snode/internal/query"
	"snode/internal/repo"
)

func main() {
	crawlDir := flag.String("crawl", "crawl", "directory written by sngen")
	scheme := flag.String("scheme", repo.SchemeSNode, "representation to query")
	queryID := flag.String("query", "all", "1..6 or all")
	budget := flag.Int64("budget", 4<<20, "cache budget (bytes)")
	rows := flag.Int("rows", 10, "result rows to print per query")
	flag.Parse()

	crawl, err := corpusio.Read(filepath.Join(*crawlDir, "corpus.bin"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "snquery:", err)
		os.Exit(1)
	}
	ws, err := os.MkdirTemp("", "snquery-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "snquery:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(ws)

	opt := repo.DefaultOptions(ws)
	opt.Schemes = []string{*scheme}
	opt.CacheBudget = *budget
	opt.Layout = crawl.Order
	fmt.Fprintf(os.Stderr, "building %s representation...\n", *scheme)
	start := time.Now()
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snquery:", err)
		os.Exit(1)
	}
	defer r.Close()
	fmt.Fprintf(os.Stderr, "built in %v\n\n", time.Since(start).Round(time.Millisecond))

	e, err := query.New(r, *scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snquery:", err)
		os.Exit(1)
	}
	var queries []query.ID
	if *queryID == "all" {
		queries = query.All()
	} else {
		qi, err := strconv.Atoi(*queryID)
		if err != nil || qi < 1 || qi > 6 {
			fmt.Fprintln(os.Stderr, "snquery: -query must be 1..6 or all")
			os.Exit(1)
		}
		queries = []query.ID{query.ID(qi)}
	}
	for _, q := range queries {
		res, err := e.Run(q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snquery: query %d: %v\n", q, err)
			os.Exit(1)
		}
		fmt.Printf("Q%d — %s\n", q, q.Description())
		fmt.Printf("  navigation: %v (cpu %v + modeled disk %v), %d seeks, %d bytes, %d loads\n",
			res.Nav.Total().Round(10*time.Microsecond),
			res.Nav.CPU.Round(10*time.Microsecond),
			res.Nav.IO.Round(10*time.Microsecond),
			res.Nav.Seeks, res.Nav.BytesRead, res.Nav.GraphsLoaded)
		for i, row := range res.Rows {
			if i >= *rows {
				fmt.Printf("  ... (%d more rows)\n", len(res.Rows)-i)
				break
			}
			fmt.Printf("  %10.3f  %s\n", row.Value, row.Key)
		}
		fmt.Println()
	}
}
