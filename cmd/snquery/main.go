// Command snquery runs the paper's six complex queries (Table 3)
// against a crawl, building the requested representation on the fly,
// and reports results with navigation-time breakdowns.
//
//	snquery -crawl ./crawl -scheme snode -query all
//	snquery -crawl ./crawl -scheme files -query 1
//	snquery -crawl ./crawl -query 2 -trace -trace-out q2.trace.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"snode/internal/corpusio"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/trace"
)

// options are the validated command-line inputs.
type options struct {
	crawlDir string
	scheme   string
	queryID  string
	budget   int64
	rows     int
	traceOn  bool
	traceOut string

	queries []query.ID
}

// usageError prints the problem in flag-package style (message plus
// defaults) and exits 2, the conventional usage-error status.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snquery: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// parseFlags validates every flag before any expensive work: unknown
// schemes, malformed query selectors, nonsensical budgets, and missing
// crawl directories all fail fast with a usage-style message instead
// of surfacing as a build error minutes later.
func parseFlags() options {
	var o options
	flag.StringVar(&o.crawlDir, "crawl", "crawl", "directory written by sngen")
	flag.StringVar(&o.scheme, "scheme", repo.SchemeSNode, "representation to query (one of: "+strings.Join(repo.AllSchemes(), ", ")+")")
	flag.StringVar(&o.queryID, "query", "all", "1..6 or all")
	flag.Int64Var(&o.budget, "budget", 4<<20, "cache budget (bytes, > 0)")
	flag.IntVar(&o.rows, "rows", 10, "result rows to print per query (>= 0)")
	flag.BoolVar(&o.traceOn, "trace", false, "trace every query: print its span tree after the results")
	flag.StringVar(&o.traceOut, "trace-out", "", "with -trace: also write the traces as Chrome trace_event JSON (chrome://tracing) to this file")
	flag.Parse()

	if flag.NArg() > 0 {
		usageError("unexpected argument %q (all inputs are flags)", flag.Arg(0))
	}
	valid := false
	for _, s := range repo.AllSchemes() {
		if s == o.scheme {
			valid = true
			break
		}
	}
	if !valid {
		usageError("unknown -scheme %q (valid: %s)", o.scheme, strings.Join(repo.AllSchemes(), ", "))
	}
	if o.budget <= 0 {
		usageError("-budget must be positive, got %d", o.budget)
	}
	if o.rows < 0 {
		usageError("-rows must be >= 0, got %d", o.rows)
	}
	if o.traceOut != "" && !o.traceOn {
		usageError("-trace-out requires -trace")
	}
	if o.queryID == "all" {
		o.queries = query.All()
	} else {
		qi, err := strconv.Atoi(o.queryID)
		if err != nil || qi < 1 || qi > 6 {
			usageError("-query must be 1..6 or all, got %q", o.queryID)
		}
		o.queries = []query.ID{query.ID(qi)}
	}
	if fi, err := os.Stat(o.crawlDir); err != nil || !fi.IsDir() {
		usageError("-crawl directory %q does not exist (generate one with sngen)", o.crawlDir)
	}
	return o
}

func main() {
	o := parseFlags()

	crawl, err := corpusio.Read(filepath.Join(o.crawlDir, "corpus.bin"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "snquery:", err)
		os.Exit(1)
	}
	ws, err := os.MkdirTemp("", "snquery-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "snquery:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(ws)

	opt := repo.DefaultOptions(ws)
	opt.Schemes = []string{o.scheme}
	opt.CacheBudget = o.budget
	opt.Layout = crawl.Order
	fmt.Fprintf(os.Stderr, "building %s representation...\n", o.scheme)
	start := time.Now()
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snquery:", err)
		os.Exit(1)
	}
	defer r.Close()
	fmt.Fprintf(os.Stderr, "built in %v\n\n", time.Since(start).Round(time.Millisecond))

	e, err := query.New(r, o.scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snquery:", err)
		os.Exit(1)
	}
	if o.traceOn {
		// SampleEvery 1: trace every execution for interactive use.
		e.SetTracer(trace.New(trace.Config{SampleEvery: 1}))
	}
	var traced []*trace.Trace
	for _, q := range o.queries {
		res, err := e.Run(context.Background(), q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "snquery: query %d: %v\n", q, err)
			os.Exit(1)
		}
		fmt.Printf("Q%d — %s\n", q, q.Description())
		fmt.Printf("  navigation: %v (cpu %v + modeled disk %v), %d seeks, %d bytes, %d loads\n",
			res.Nav.Total().Round(10*time.Microsecond),
			res.Nav.CPU.Round(10*time.Microsecond),
			res.Nav.IO.Round(10*time.Microsecond),
			res.Nav.Seeks, res.Nav.BytesRead, res.Nav.GraphsLoaded)
		for i, row := range res.Rows {
			if i >= o.rows {
				fmt.Printf("  ... (%d more rows)\n", len(res.Rows)-i)
				break
			}
			fmt.Printf("  %10.3f  %s\n", row.Value, row.Key)
		}
		if res.Trace != nil {
			fmt.Println()
			res.Trace.Render(os.Stdout)
			traced = append(traced, res.Trace)
		}
		fmt.Println()
	}
	if o.traceOut != "" && len(traced) > 0 {
		f, err := os.Create(o.traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "snquery:", err)
			os.Exit(1)
		}
		if err := trace.WriteChromeTrace(f, traced...); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "snquery:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace(s) to %s (load in chrome://tracing)\n", len(traced), o.traceOut)
	}
}
