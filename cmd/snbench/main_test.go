package main

import (
	"strings"
	"testing"
)

// TestAllCoversEveryRegisteredExperiment pins the property the
// registry exists for: -experiment all runs every registered
// experiment, so nothing (build, update, load, ...) can silently fall
// out of the full sweep when a new experiment is added.
func TestAllCoversEveryRegisteredExperiment(t *testing.T) {
	specs := experiments()
	if len(specs) == 0 {
		t.Fatal("empty experiment registry")
	}
	all, err := selectSpecs("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(specs) {
		t.Fatalf("-experiment all selects %d of %d registered experiments", len(all), len(specs))
	}
	for i, s := range all {
		if s.name != specs[i].name {
			t.Fatalf("all[%d] = %q, registry[%d] = %q: order diverged", i, s.name, i, specs[i].name)
		}
	}
}

// TestRegistryEntriesAreWellFormed: unique selectable names, non-nil
// runners, and every historical -experiment value still resolves.
func TestRegistryEntriesAreWellFormed(t *testing.T) {
	seen := map[string]bool{"all": true}
	for _, s := range experiments() {
		if s.name == "" || s.run == nil || s.desc == "" {
			t.Fatalf("malformed registry entry %+v", s)
		}
		for _, n := range append([]string{s.name}, s.aliases...) {
			if seen[n] {
				t.Fatalf("experiment name %q registered twice", n)
			}
			seen[n] = true
		}
	}
	for _, want := range []string{
		"fig9", "fig10", "table1", "table2", "fig11", "fig12",
		"concurrency", "build", "update", "load", "shard", "obs",
		"codecs", "ingest", "ablation",
	} {
		if !seen[want] {
			t.Errorf("experiment %q is not selectable", want)
		}
		got, err := selectSpecs(want)
		if err != nil || len(got) != 1 {
			t.Errorf("selectSpecs(%q): %d specs, err %v", want, len(got), err)
		}
	}
}

// TestSelectSpecsRejectsUnknown: a typo fails fast with the selectable
// names, instead of silently running nothing.
func TestSelectSpecsRejectsUnknown(t *testing.T) {
	_, err := selectSpecs("figg9")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "load") || !strings.Contains(err.Error(), "all") {
		t.Fatalf("error does not list selectable experiments: %v", err)
	}
	if !strings.Contains(flagUsageNames(), "load") {
		t.Fatalf("-experiment usage %q omits load", flagUsageNames())
	}
}

// flagUsageNames is what the -experiment flag's usage string is built
// from.
func flagUsageNames() string {
	return strings.Join(experimentNames(), ", ")
}
