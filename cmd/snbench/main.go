// Command snbench regenerates the paper's evaluation tables and
// figures (§4) over the synthetic corpus:
//
//	snbench -experiment all
//	snbench -experiment fig9      # + fig10 (scalability)
//	snbench -experiment table1    # compression
//	snbench -experiment table2    # in-memory access times
//	snbench -experiment fig11     # query navigation times
//	snbench -experiment fig12     # buffer-size sweep
//	snbench -experiment ablation  # §3 design-choice studies
//	snbench -experiment concurrency  # serving throughput vs goroutines
//	snbench -experiment build        # build wall time vs workers
//	snbench -experiment update       # serving latency vs delta depth
//	snbench -experiment load         # open-loop latency vs offered load
//	snbench -experiment shard        # distributed serving QPS vs shard count
//	snbench -experiment obs          # fleet observability plane end to end
//	snbench -experiment ingest       # external-memory ingestion scaling curve
//
// -quick runs a reduced scale for smoke testing.
//
// Experiments live in one registry; -experiment all runs every entry
// in order, so a new experiment registered there is automatically part
// of the full sweep (cmd/snbench's tests pin this).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"snode/internal/bench"
	"snode/internal/metrics"
	"snode/internal/trace"
)

// runFlags carries the parsed command line into the experiment
// runners.
type runFlags struct {
	cfg       bench.Config
	csvDir    string
	buildOut  string
	updateOut string
	loadOut   string
	shardOut  string
	obsOut    string
	codecOut  string
	ingestOut string
}

// experimentSpec is one registry entry. name is the canonical
// -experiment value; aliases also select it (fig9 and fig10 are one
// run).
type experimentSpec struct {
	name    string
	aliases []string
	desc    string
	run     func(*runFlags) error
}

// experiments is the registry -experiment selects from; "all" runs
// every entry in this order.
func experiments() []experimentSpec {
	return []experimentSpec{
		{name: "fig9", aliases: []string{"fig10"}, desc: "supernode/superedge scalability", run: runScalability},
		{name: "table1", desc: "bits/edge compression comparison", run: runCompression},
		{name: "table2", desc: "in-memory access times", run: runAccess},
		{name: "fig11", desc: "per-query navigation time", run: runQueries},
		{name: "fig12", desc: "navigation time vs buffer size", run: runBufferSweep},
		{name: "concurrency", desc: "serving throughput vs goroutines", run: runConcurrency},
		{name: "build", desc: "build wall time vs workers", run: runBuildScaling},
		{name: "update", desc: "serving latency vs delta depth", run: runUpdate},
		{name: "load", desc: "open-loop latency vs offered load", run: runLoad},
		{name: "shard", desc: "distributed serving QPS vs shard count", run: runShard},
		{name: "obs", desc: "fleet observability plane end to end", run: runObs},
		{name: "codecs", desc: "supernode codec bake-off grid", run: runCodecs},
		{name: "ingest", desc: "external-memory ingestion scaling curve", run: runIngest},
		{name: "ablation", desc: "§3 design-choice studies", run: runAblation},
	}
}

// experimentNames lists every selectable -experiment value.
func experimentNames() []string {
	names := []string{"all"}
	for _, s := range experiments() {
		names = append(names, s.name)
		names = append(names, s.aliases...)
	}
	return names
}

// selectSpecs resolves an -experiment value against the registry.
func selectSpecs(name string) ([]experimentSpec, error) {
	all := experiments()
	if name == "all" {
		return all, nil
	}
	for _, s := range all {
		if s.name == name {
			return []experimentSpec{s}, nil
		}
		for _, a := range s.aliases {
			if a == name {
				return []experimentSpec{s}, nil
			}
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (one of: %s)", name, strings.Join(experimentNames(), ", "))
}

func runScalability(rf *runFlags) error {
	rows, err := bench.Scalability(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderScalability(rf.cfg, rows)
	if rf.csvDir != "" {
		return bench.ScalabilityCSV(rf.csvDir, rows)
	}
	return nil
}

func runCompression(rf *runFlags) error {
	rows, err := bench.Compression(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderCompression(rf.cfg, rows)
	if rf.csvDir != "" {
		return bench.CompressionCSV(rf.csvDir, rows)
	}
	return nil
}

func runAccess(rf *runFlags) error {
	rows, err := bench.Access(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderAccess(rf.cfg, rows)
	if rf.csvDir != "" {
		return bench.AccessCSV(rf.csvDir, rows)
	}
	return nil
}

func runQueries(rf *runFlags) error {
	res, err := bench.Queries(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderQueries(rf.cfg, res)
	if rf.csvDir != "" {
		return bench.QueriesCSV(rf.csvDir, res)
	}
	return nil
}

func runBufferSweep(rf *runFlags) error {
	rows, err := bench.BufferSweep(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderBufferSweep(rf.cfg, rows)
	if rf.csvDir != "" {
		return bench.BufferSweepCSV(rf.csvDir, rows)
	}
	return nil
}

func runConcurrency(rf *runFlags) error {
	rows, err := bench.Concurrency(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderConcurrency(rf.cfg, rows)
	if rf.csvDir != "" {
		return bench.ConcurrencyCSV(rf.csvDir, rows)
	}
	return nil
}

func runBuildScaling(rf *runFlags) error {
	rows, err := bench.BuildScaling(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderBuildScaling(rf.cfg, rows)
	if rf.buildOut != "" {
		if err := bench.BuildScalingJSON(rf.buildOut, rf.cfg, rows); err != nil {
			return err
		}
		fmt.Printf("build-scaling rows written to %s\n", rf.buildOut)
	}
	if rf.csvDir != "" {
		return bench.BuildScalingCSV(rf.csvDir, rows)
	}
	return nil
}

func runUpdate(rf *runFlags) error {
	rows, err := bench.Update(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderUpdate(rf.cfg, rows)
	if rf.updateOut != "" {
		if err := bench.UpdateJSON(rf.updateOut, rf.cfg, rows); err != nil {
			return err
		}
		fmt.Printf("serving-under-churn rows written to %s\n", rf.updateOut)
	}
	if rf.csvDir != "" {
		return bench.UpdateCSV(rf.csvDir, rows)
	}
	return nil
}

func runLoad(rf *runFlags) error {
	rep, err := bench.Load(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderLoad(rf.cfg, rep)
	if rf.loadOut != "" {
		if err := bench.LoadJSON(rf.loadOut, rf.cfg, rep); err != nil {
			return err
		}
		fmt.Printf("load rows written to %s\n", rf.loadOut)
	}
	return nil
}

func runShard(rf *runFlags) error {
	rep, err := bench.Shard(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderShard(rf.cfg, rep)
	if rf.shardOut != "" {
		if err := bench.ShardJSON(rf.shardOut, rf.cfg, rep); err != nil {
			return err
		}
		fmt.Printf("shard-scaling rows written to %s\n", rf.shardOut)
	}
	return nil
}

func runObs(rf *runFlags) error {
	rep, err := bench.Obs(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderObs(rf.cfg, rep)
	if rf.obsOut != "" {
		if err := bench.ObsJSON(rf.obsOut, rf.cfg, rep); err != nil {
			return err
		}
		fmt.Printf("observability report written to %s\n", rf.obsOut)
	}
	return nil
}

func runCodecs(rf *runFlags) error {
	rep, err := bench.Codecs(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderCodecs(rf.cfg, rep)
	if rf.codecOut != "" {
		if err := bench.CodecsJSON(rf.codecOut, rf.cfg, rep); err != nil {
			return err
		}
		fmt.Printf("codec bake-off grid written to %s\n", rf.codecOut)
	}
	return nil
}

func runIngest(rf *runFlags) error {
	res, err := bench.Ingestion(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderIngestion(rf.cfg, res)
	if rf.ingestOut != "" {
		if err := bench.IngestionJSON(rf.ingestOut, rf.cfg, res); err != nil {
			return err
		}
		fmt.Printf("ingestion scaling curve written to %s\n", rf.ingestOut)
	}
	return nil
}

func runAblation(rf *runFlags) error {
	rows, err := bench.Ablations(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderAblations(rf.cfg, rows)
	ex, err := bench.ExactReference(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderExactReference(rf.cfg, ex)
	dm, err := bench.DiskModelSweep(rf.cfg)
	if err != nil {
		return err
	}
	bench.RenderDiskModelSweep(rf.cfg, dm)
	if rf.csvDir != "" {
		return bench.AblationsCSV(rf.csvDir, rows)
	}
	return nil
}

func main() {
	experiment := flag.String("experiment", "all",
		"one of: "+strings.Join(experimentNames(), ", "))
	quick := flag.Bool("quick", false, "reduced scale")
	seed := flag.Uint64("seed", 0, "override corpus seed")
	workspace := flag.String("workspace", "", "build directory (default: temp)")
	csvDir := flag.String("csv", "", "also write results as CSV files into this directory")
	pace := flag.Float64("pace", 0, "disk-stall scale for the concurrency, build, update, and load experiments (0 = full modeled time)")
	buildOut := flag.String("build-out", "", "write the build-scaling rows as JSON to this file after the run")
	updateOut := flag.String("update-out", "", "write the serving-under-churn rows as JSON to this file after the run")
	loadOut := flag.String("load-out", "", "write the open-loop load rows as JSON to this file after the run")
	shardOut := flag.String("shard-out", "", "write the shard-scaling rows as JSON to this file after the run")
	obsOut := flag.String("obs-out", "", "write the fleet-observability report as JSON to this file after the run")
	codecOut := flag.String("codec-out", "", "write the codec bake-off grid as JSON to this file after the run")
	ingestOut := flag.String("ingest-out", "", "write the ingestion scaling curve as JSON to this file after the run")
	metricsOut := flag.String("metrics-out", "", "write the serving-path metrics registry as JSON to this file after the run")
	traceEvery := flag.Int("trace", 0, "trace 1 in N query executions and print the slow-query log after the run (0 disables)")
	traceOut := flag.String("trace-out", "", "with -trace: write retained traces as Chrome trace_event JSON to this file")
	flag.Parse()

	cfg := bench.Default()
	if *quick {
		cfg = bench.Quick()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workspace = *workspace
	cfg.Pace = *pace
	if *metricsOut != "" {
		cfg.Metrics = metrics.NewRegistry()
	}
	if *traceOut != "" && *traceEvery <= 0 {
		fmt.Fprintln(os.Stderr, "snbench: -trace-out requires -trace N (N > 0)")
		os.Exit(2)
	}
	if *traceEvery > 0 {
		cfg.Tracer = trace.New(trace.Config{SampleEvery: *traceEvery})
	}

	specs, err := selectSpecs(*experiment)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snbench: %v\n", err)
		os.Exit(2)
	}
	rf := &runFlags{
		cfg:       cfg,
		csvDir:    *csvDir,
		buildOut:  *buildOut,
		updateOut: *updateOut,
		loadOut:   *loadOut,
		shardOut:  *shardOut,
		obsOut:    *obsOut,
		codecOut:  *codecOut,
		ingestOut: *ingestOut,
	}
	for _, spec := range specs {
		name := spec.name
		if len(spec.aliases) > 0 {
			name = name + "/" + strings.Join(spec.aliases, "/")
		}
		start := time.Now()
		if err := spec.run(rf); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *metricsOut != "" {
		if err := bench.MetricsJSON(*metricsOut, cfg.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: -metrics-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}

	if cfg.Tracer != nil {
		traces := cfg.Tracer.Traces()
		fmt.Printf("slow-query log: %d retained trace(s)\n", len(traces))
		for i, t := range traces {
			if i >= 8 {
				fmt.Printf("... (%d more)\n", len(traces)-i)
				break
			}
			s := t.Summary()
			fmt.Printf("id=%-6d class=%-3s total=%-12v spans=%-4d seeks=%-4d decodes=%d\n",
				s.ID, s.Class, time.Duration(s.TotalNs).Round(10*time.Microsecond),
				s.Spans, s.Seeks, s.Decodes)
		}
		if *traceOut != "" && len(traces) > 0 {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "snbench: -trace-out: %v\n", err)
				os.Exit(1)
			}
			if err := trace.WriteChromeTrace(f, traces...); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "snbench: -trace-out: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("traces written to %s (load in chrome://tracing)\n", *traceOut)
		}
	}
}
