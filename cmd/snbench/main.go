// Command snbench regenerates the paper's evaluation tables and
// figures (§4) over the synthetic corpus:
//
//	snbench -experiment all
//	snbench -experiment fig9      # + fig10 (scalability)
//	snbench -experiment table1    # compression
//	snbench -experiment table2    # in-memory access times
//	snbench -experiment fig11     # query navigation times
//	snbench -experiment fig12     # buffer-size sweep
//	snbench -experiment ablation  # §3 design-choice studies
//	snbench -experiment concurrency  # serving throughput vs goroutines
//	snbench -experiment build        # build wall time vs workers
//	snbench -experiment update       # serving latency vs delta depth
//
// -quick runs a reduced scale for smoke testing.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"snode/internal/bench"
	"snode/internal/metrics"
	"snode/internal/trace"
)

func main() {
	experiment := flag.String("experiment", "all",
		"one of: all, fig9, fig10, table1, table2, fig11, fig12, ablation, concurrency, build, update")
	quick := flag.Bool("quick", false, "reduced scale")
	seed := flag.Uint64("seed", 0, "override corpus seed")
	workspace := flag.String("workspace", "", "build directory (default: temp)")
	csvDir := flag.String("csv", "", "also write results as CSV files into this directory")
	pace := flag.Float64("pace", 0, "disk-stall scale for the concurrency and build experiments (0 = full modeled time)")
	buildOut := flag.String("build-out", "", "write the build-scaling rows as JSON to this file after the run")
	updateOut := flag.String("update-out", "", "write the serving-under-churn rows as JSON to this file after the run")
	metricsOut := flag.String("metrics-out", "", "write the serving-path metrics registry as JSON to this file after the run")
	traceEvery := flag.Int("trace", 0, "trace 1 in N query executions and print the slow-query log after the run (0 disables)")
	traceOut := flag.String("trace-out", "", "with -trace: write retained traces as Chrome trace_event JSON to this file")
	flag.Parse()

	cfg := bench.Default()
	if *quick {
		cfg = bench.Quick()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workspace = *workspace
	if *metricsOut != "" {
		cfg.Metrics = metrics.NewRegistry()
	}
	if *traceOut != "" && *traceEvery <= 0 {
		fmt.Fprintln(os.Stderr, "snbench: -trace-out requires -trace N (N > 0)")
		os.Exit(2)
	}
	if *traceEvery > 0 {
		cfg.Tracer = trace.New(trace.Config{SampleEvery: *traceEvery})
	}

	run := func(name string, fn func() error) {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(names ...string) bool {
		if *experiment == "all" {
			return true
		}
		for _, n := range names {
			if n == *experiment {
				return true
			}
		}
		return false
	}

	if want("fig9", "fig10") {
		run("fig9/fig10", func() error {
			rows, err := bench.Scalability(cfg)
			if err != nil {
				return err
			}
			bench.RenderScalability(cfg, rows)
			if *csvDir != "" {
				return bench.ScalabilityCSV(*csvDir, rows)
			}
			return nil
		})
	}
	if want("table1") {
		run("table1", func() error {
			rows, err := bench.Compression(cfg)
			if err != nil {
				return err
			}
			bench.RenderCompression(cfg, rows)
			if *csvDir != "" {
				return bench.CompressionCSV(*csvDir, rows)
			}
			return nil
		})
	}
	if want("table2") {
		run("table2", func() error {
			rows, err := bench.Access(cfg)
			if err != nil {
				return err
			}
			bench.RenderAccess(cfg, rows)
			if *csvDir != "" {
				return bench.AccessCSV(*csvDir, rows)
			}
			return nil
		})
	}
	if want("fig11") {
		run("fig11", func() error {
			res, err := bench.Queries(cfg)
			if err != nil {
				return err
			}
			bench.RenderQueries(cfg, res)
			if *csvDir != "" {
				return bench.QueriesCSV(*csvDir, res)
			}
			return nil
		})
	}
	if want("fig12") {
		run("fig12", func() error {
			rows, err := bench.BufferSweep(cfg)
			if err != nil {
				return err
			}
			bench.RenderBufferSweep(cfg, rows)
			if *csvDir != "" {
				return bench.BufferSweepCSV(*csvDir, rows)
			}
			return nil
		})
	}
	if want("concurrency") {
		run("concurrency", func() error {
			cfg.Pace = *pace
			rows, err := bench.Concurrency(cfg)
			if err != nil {
				return err
			}
			bench.RenderConcurrency(cfg, rows)
			if *csvDir != "" {
				return bench.ConcurrencyCSV(*csvDir, rows)
			}
			return nil
		})
	}
	if want("build") {
		run("build", func() error {
			cfg.Pace = *pace
			rows, err := bench.BuildScaling(cfg)
			if err != nil {
				return err
			}
			bench.RenderBuildScaling(cfg, rows)
			if *buildOut != "" {
				if err := bench.BuildScalingJSON(*buildOut, cfg, rows); err != nil {
					return err
				}
				fmt.Printf("build-scaling rows written to %s\n", *buildOut)
			}
			if *csvDir != "" {
				return bench.BuildScalingCSV(*csvDir, rows)
			}
			return nil
		})
	}
	if want("update") {
		run("update", func() error {
			cfg.Pace = *pace
			rows, err := bench.Update(cfg)
			if err != nil {
				return err
			}
			bench.RenderUpdate(cfg, rows)
			if *updateOut != "" {
				if err := bench.UpdateJSON(*updateOut, cfg, rows); err != nil {
					return err
				}
				fmt.Printf("serving-under-churn rows written to %s\n", *updateOut)
			}
			if *csvDir != "" {
				return bench.UpdateCSV(*csvDir, rows)
			}
			return nil
		})
	}
	if want("ablation") {
		run("ablation", func() error {
			rows, err := bench.Ablations(cfg)
			if err != nil {
				return err
			}
			bench.RenderAblations(cfg, rows)
			ex, err := bench.ExactReference(cfg)
			if err != nil {
				return err
			}
			bench.RenderExactReference(cfg, ex)
			dm, err := bench.DiskModelSweep(cfg)
			if err != nil {
				return err
			}
			bench.RenderDiskModelSweep(cfg, dm)
			if *csvDir != "" {
				return bench.AblationsCSV(*csvDir, rows)
			}
			return nil
		})
	}

	if *metricsOut != "" {
		if err := bench.MetricsJSON(*metricsOut, cfg.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "snbench: -metrics-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}

	if cfg.Tracer != nil {
		traces := cfg.Tracer.Traces()
		fmt.Printf("slow-query log: %d retained trace(s)\n", len(traces))
		for i, t := range traces {
			if i >= 8 {
				fmt.Printf("... (%d more)\n", len(traces)-i)
				break
			}
			s := t.Summary()
			fmt.Printf("id=%-6d class=%-3s total=%-12v spans=%-4d seeks=%-4d decodes=%d\n",
				s.ID, s.Class, time.Duration(s.TotalNs).Round(10*time.Microsecond),
				s.Spans, s.Seeks, s.Decodes)
		}
		if *traceOut != "" && len(traces) > 0 {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "snbench: -trace-out: %v\n", err)
				os.Exit(1)
			}
			if err := trace.WriteChromeTrace(f, traces...); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "snbench: -trace-out: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("traces written to %s (load in chrome://tracing)\n", *traceOut)
		}
	}
}
