// Command snbuild builds one or all graph representations from a crawl
// written by sngen and prints size statistics.
//
//	snbuild -crawl ./crawl -out ./repo -scheme snode
//	snbuild -crawl ./crawl -out ./repo -scheme all -workers 8 -progress
//
// With -shards K (K > 0), snbuild instead emits a K-way domain
// partition for the distributed serving tier (internal/shard): a
// versioned manifest, replicated global metadata and PageRank, and per
// shard an S-Node store over its intra-shard edges plus boundary
// stores for the cross-shard rest. Serve each shard with
// `snserve -shard-root OUT -shard-id I` and front them with snrouter.
//
//	snbuild -crawl ./crawl -out ./shards -shards 4
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"snode/internal/corpusio"
	"snode/internal/metrics"
	"snode/internal/repo"
	"snode/internal/shard"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
)

// options are the validated command-line inputs.
type options struct {
	crawlDir  string
	out       string
	scheme    string
	budget    int64
	workers   int
	transpose bool
	verify    bool
	progress  bool
	shards    int
	codec     string
}

// usageError prints the problem in flag-package style (message plus
// defaults) and exits 2, the conventional usage-error status.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snbuild: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// parseFlags validates every flag before any expensive work: unknown
// schemes, nonsensical budgets or worker counts, and missing crawl
// directories all fail fast with a usage-style message instead of
// surfacing as a build error minutes later.
func parseFlags() options {
	var o options
	flag.StringVar(&o.crawlDir, "crawl", "crawl", "directory written by sngen")
	flag.StringVar(&o.out, "out", "repo", "output workspace")
	flag.StringVar(&o.scheme, "scheme", "all", "one of: "+strings.Join(repo.AllSchemes(), ", ")+", or all")
	flag.Int64Var(&o.budget, "budget", 16<<20, "per-representation cache budget (bytes, > 0)")
	flag.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0), "build parallelism for partition refinement and supernode encoding (> 0; output is identical for every value)")
	flag.BoolVar(&o.transpose, "transpose", true, "also build WGT representations")
	flag.BoolVar(&o.verify, "verify", false, "verify the S-Node representation after building")
	flag.BoolVar(&o.progress, "progress", false, "print a periodic build-progress line (elements split / supernodes encoded) to stderr")
	flag.IntVar(&o.shards, "shards", 0, "emit a K-way domain partition for the distributed serving tier instead of a single repository (0 disables)")
	flag.StringVar(&o.codec, "codec", snode.CodecPaper, "supernode payload codec: "+strings.Join(snode.CodecNames(), ", ")+" (auto = per-supernode bake-off; output then depends on machine timing)")
	flag.Parse()

	if flag.NArg() > 0 {
		usageError("unexpected argument %q (all inputs are flags)", flag.Arg(0))
	}
	if o.scheme != "all" {
		valid := false
		for _, s := range repo.AllSchemes() {
			if s == o.scheme {
				valid = true
				break
			}
		}
		if !valid {
			usageError("unknown -scheme %q (valid: %s, all)", o.scheme, strings.Join(repo.AllSchemes(), ", "))
		}
	}
	if o.budget <= 0 {
		usageError("-budget must be positive, got %d", o.budget)
	}
	if o.workers <= 0 {
		usageError("-workers must be positive, got %d", o.workers)
	}
	if o.shards < 0 {
		usageError("-shards must be >= 0, got %d", o.shards)
	}
	codecOK := false
	for _, n := range snode.CodecNames() {
		if o.codec == n {
			codecOK = true
			break
		}
	}
	if !codecOK {
		usageError("unknown -codec %q (one of: %s)", o.codec, strings.Join(snode.CodecNames(), ", "))
	}
	if fi, err := os.Stat(o.crawlDir); err != nil || !fi.IsDir() {
		usageError("-crawl directory %q does not exist (generate one with sngen)", o.crawlDir)
	}
	return o
}

// buildShards emits the K-way partition and prints its shape: per
// shard the page count, intra-edge count, and the boundary split.
func buildShards(crawl *synth.Crawl, o options, cfg snode.Config) {
	start := time.Now()
	m, err := shard.Build(crawl, o.shards, o.out, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snbuild:", err)
		os.Exit(1)
	}
	total := crawl.Corpus.Graph.NumEdges()
	var intra, boundary int64
	fmt.Printf("%-8s %10s %12s %14s %14s\n", "shard", "pages", "intra-edges", "boundary-fwd", "boundary-rev")
	for i, e := range m.Shards {
		fmt.Printf("%-8d %10d %12d %14d %14d\n", i, e.Pages, e.IntraEdges, e.BoundaryFwdEdges, e.BoundaryRevEdges)
		intra += e.IntraEdges
		boundary += e.BoundaryFwdEdges
	}
	fmt.Printf("\nmanifest %s: %d pages, %d shards; %d/%d edges intra-shard (%.1f%%), built in %v\n",
		m.Version, m.NumPages, m.NumShards, intra, total,
		100*float64(intra)/float64(total), time.Since(start).Round(time.Millisecond))
	fmt.Printf("serve with: snserve -shard-root %s -shard-id I -listen :PORT, fronted by snrouter -root %s\n", o.out, o.out)
}

// reportProgress prints one stderr line per tick from the build_*
// instruments the refine and encode stages update as they go.
func reportProgress(reg *metrics.Registry, stop <-chan struct{}) {
	split := reg.Counter("build_elements_split")
	elements := reg.Gauge("build_elements")
	encoded := reg.Counter("build_supernodes_encoded")
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	start := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			fmt.Fprintf(os.Stderr, "snbuild: %6.1fs  elements split %d (live %d), supernodes encoded %d\n",
				time.Since(start).Seconds(), split.Value(), elements.Value(), encoded.Value())
		}
	}
}

func main() {
	o := parseFlags()

	crawl, err := corpusio.Read(filepath.Join(o.crawlDir, "corpus.bin"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "snbuild:", err)
		os.Exit(1)
	}
	opt := repo.DefaultOptions(o.out)
	opt.CacheBudget = o.budget
	opt.Transpose = o.transpose
	opt.Layout = crawl.Order
	opt.SNode.BuildWorkers = o.workers
	opt.SNode.Codec = o.codec
	if o.scheme != "all" {
		opt.Schemes = []string{o.scheme}
	}
	reg := metrics.NewRegistry()
	opt.SNode.Metrics = reg
	if o.progress {
		stop := make(chan struct{})
		go reportProgress(reg, stop)
		defer close(stop)
	}
	if o.shards > 0 {
		buildShards(crawl, o, opt.SNode)
		return
	}
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snbuild:", err)
		os.Exit(1)
	}
	defer r.Close()

	edges := crawl.Corpus.Graph.NumEdges()
	fmt.Printf("%-10s %14s %12s\n", "scheme", "size(bytes)", "bits/edge")
	for _, name := range repo.AllSchemes() {
		s, ok := r.Fwd[name]
		if !ok {
			continue
		}
		sized, ok := s.(store.Sized)
		if !ok {
			continue
		}
		fmt.Printf("%-10s %14d %12.2f\n", name, sized.SizeBytes(),
			store.BitsPerEdge(sized, edges))
	}
	if o.verify {
		if sn, ok := r.Fwd[repo.SchemeSNode].(*snode.Representation); ok {
			if err := sn.Verify(); err != nil {
				fmt.Fprintln(os.Stderr, "snbuild: verify:", err)
				os.Exit(1)
			}
			fmt.Println("\nS-Node representation verified: every graph decodes and totals match")
		}
	}
	if st := r.SNodeStats; st != nil {
		fmt.Printf("\nS-Node: %d supernodes, %d superedges (%d positive, %d negative)\n",
			st.Supernodes, st.Superedges, st.PositiveSuperedges, st.NegativeSuperedges)
		fmt.Printf("        supernode graph %d bytes, index files %d bytes, built in %v with %d workers\n",
			st.SupernodeGraphBytes, st.IndexFileBytes, st.BuildTime, o.workers)
		fmt.Printf("        partition: %d URL splits, %d clustered splits\n",
			st.URLSplits, st.ClusteredSplits)
	}
}
