// Command snbuild builds one or all graph representations from a crawl
// written by sngen and prints size statistics.
//
//	snbuild -crawl ./crawl -out ./repo -scheme snode
//	snbuild -crawl ./crawl -out ./repo -scheme all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"snode/internal/corpusio"
	"snode/internal/repo"
	"snode/internal/snode"
	"snode/internal/store"
)

func main() {
	crawlDir := flag.String("crawl", "crawl", "directory written by sngen")
	out := flag.String("out", "repo", "output workspace")
	scheme := flag.String("scheme", "all", "snode, huffman, link3, db, files, or all")
	budget := flag.Int64("budget", 16<<20, "per-representation cache budget (bytes)")
	transpose := flag.Bool("transpose", true, "also build WGT representations")
	verify := flag.Bool("verify", false, "verify the S-Node representation after building")
	flag.Parse()

	crawl, err := corpusio.Read(filepath.Join(*crawlDir, "corpus.bin"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "snbuild:", err)
		os.Exit(1)
	}
	opt := repo.DefaultOptions(*out)
	opt.CacheBudget = *budget
	opt.Transpose = *transpose
	opt.Layout = crawl.Order
	if *scheme != "all" {
		opt.Schemes = []string{*scheme}
	}
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snbuild:", err)
		os.Exit(1)
	}
	defer r.Close()

	edges := crawl.Corpus.Graph.NumEdges()
	fmt.Printf("%-10s %14s %12s\n", "scheme", "size(bytes)", "bits/edge")
	for _, name := range repo.AllSchemes() {
		s, ok := r.Fwd[name]
		if !ok {
			continue
		}
		sized, ok := s.(store.Sized)
		if !ok {
			continue
		}
		fmt.Printf("%-10s %14d %12.2f\n", name, sized.SizeBytes(),
			store.BitsPerEdge(sized, edges))
	}
	if *verify {
		if sn, ok := r.Fwd[repo.SchemeSNode].(*snode.Representation); ok {
			if err := sn.Verify(); err != nil {
				fmt.Fprintln(os.Stderr, "snbuild: verify:", err)
				os.Exit(1)
			}
			fmt.Println("\nS-Node representation verified: every graph decodes and totals match")
		}
	}
	if st := r.SNodeStats; st != nil {
		fmt.Printf("\nS-Node: %d supernodes, %d superedges (%d positive, %d negative)\n",
			st.Supernodes, st.Superedges, st.PositiveSuperedges, st.NegativeSuperedges)
		fmt.Printf("        supernode graph %d bytes, index files %d bytes, built in %v\n",
			st.SupernodeGraphBytes, st.IndexFileBytes, st.BuildTime)
		fmt.Printf("        partition: %d URL splits, %d clustered splits\n",
			st.URLSplits, st.ClusteredSplits)
	}
}
