// Command snbuild builds one or all graph representations from a crawl
// written by sngen and prints size statistics.
//
//	snbuild -crawl ./crawl -out ./repo -scheme snode
//	snbuild -crawl ./crawl -out ./repo -scheme all -workers 8 -progress
//
// With -shards K (K > 0), snbuild instead emits a K-way domain
// partition for the distributed serving tier (internal/shard): a
// versioned manifest, replicated global metadata and PageRank, and per
// shard an S-Node store over its intra-shard edges plus boundary
// stores for the cross-shard rest. Serve each shard with
// `snserve -shard-root OUT -shard-id I` and front them with snrouter.
//
//	snbuild -crawl ./crawl -out ./shards -shards 4
//
// Instead of a corpus.bin crawl, snbuild can ingest a real edge-list
// dataset (SNAP or GraphChallenge TSV, gzip-transparent, with checksum
// and URL-table sidecars picked up automatically) or synthesize a
// crawl inline with -pages. With -max-heap-mb the ingestion edge
// buffer and the partition refiner's round state both spill to disk in
// sorted runs, so million-page corpora build under a bounded heap:
//
//	snbuild -ingest ./web-Google.txt.gz -format snap -max-heap-mb 256 -out ./repo
//	snbuild -pages 50000 -out ./repo -scheme snode
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"snode/internal/corpusio"
	"snode/internal/ingest"
	"snode/internal/metrics"
	"snode/internal/repo"
	"snode/internal/shard"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
)

// options are the validated command-line inputs.
type options struct {
	crawlDir  string
	out       string
	scheme    string
	budget    int64
	workers   int
	transpose bool
	verify    bool
	progress  bool
	shards    int
	codec     string
	ingest    string
	format    string
	maxHeapMB int
	pages     int
	seed      uint64
}

// usageError prints the problem in flag-package style (message plus
// defaults) and exits 2, the conventional usage-error status.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "snbuild: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// parseFlags validates every flag before any expensive work: unknown
// schemes, nonsensical budgets or worker counts, and missing crawl
// directories all fail fast with a usage-style message instead of
// surfacing as a build error minutes later.
func parseFlags() options {
	var o options
	flag.StringVar(&o.crawlDir, "crawl", "crawl", "directory written by sngen")
	flag.StringVar(&o.out, "out", "repo", "output workspace")
	flag.StringVar(&o.scheme, "scheme", "all", "one of: "+strings.Join(repo.AllSchemes(), ", ")+", or all")
	flag.Int64Var(&o.budget, "budget", 16<<20, "per-representation cache budget (bytes, > 0)")
	flag.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0), "build parallelism for partition refinement and supernode encoding (> 0; output is identical for every value)")
	flag.BoolVar(&o.transpose, "transpose", true, "also build WGT representations")
	flag.BoolVar(&o.verify, "verify", false, "verify the S-Node representation after building")
	flag.BoolVar(&o.progress, "progress", false, "print a periodic build-progress line (elements split / supernodes encoded) to stderr")
	flag.IntVar(&o.shards, "shards", 0, "emit a K-way domain partition for the distributed serving tier instead of a single repository (0 disables)")
	flag.StringVar(&o.codec, "codec", snode.CodecPaper, "supernode payload codec: "+strings.Join(snode.CodecNames(), ", ")+" (auto = per-supernode bake-off; output then depends on machine timing)")
	flag.StringVar(&o.ingest, "ingest", "", "ingest a real edge-list dataset at this path instead of reading -crawl (urls.tsv / manifest.sha256 sidecars are picked up from the same directory)")
	flag.StringVar(&o.format, "format", ingest.FormatSNAP, "edge-list format for -ingest: "+strings.Join(ingest.Formats(), ", "))
	flag.IntVar(&o.maxHeapMB, "max-heap-mb", 0, "bounded-heap build: spill the ingestion edge buffer and the refiner's round state to disk past this budget (0 = fully in memory; requires -ingest)")
	flag.IntVar(&o.pages, "pages", 0, "synthesize a crawl of this many pages inline instead of reading -crawl (0 disables)")
	flag.Uint64Var(&o.seed, "seed", 20030226, "generator seed for -pages")
	flag.Parse()

	if flag.NArg() > 0 {
		usageError("unexpected argument %q (all inputs are flags)", flag.Arg(0))
	}
	// The corpus source flags are mutually exclusive: -ingest and
	// -pages each replace -crawl, so combining them (or either with an
	// explicit -crawl) leaves no way to honour both.
	crawlSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "crawl" {
			crawlSet = true
		}
	})
	if o.ingest != "" && o.pages > 0 {
		usageError("-ingest and -pages are contradictory: the first reads a real dataset, the second synthesizes one (pick one corpus source)")
	}
	if crawlSet && o.ingest != "" {
		usageError("-crawl and -ingest are contradictory (pick one corpus source)")
	}
	if crawlSet && o.pages > 0 {
		usageError("-crawl and -pages are contradictory (pick one corpus source)")
	}
	if o.ingest == "" {
		if o.maxHeapMB != 0 {
			usageError("-max-heap-mb requires -ingest (the in-memory crawl formats have no spill path)")
		}
		formatSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "format" {
				formatSet = true
			}
		})
		if formatSet {
			usageError("-format requires -ingest")
		}
	} else {
		formatOK := false
		for _, f := range ingest.Formats() {
			if o.format == f {
				formatOK = true
			}
		}
		if !formatOK {
			usageError("unknown -format %q (one of: %s)", o.format, strings.Join(ingest.Formats(), ", "))
		}
		if o.maxHeapMB < 0 {
			usageError("-max-heap-mb must be >= 0, got %d", o.maxHeapMB)
		}
		if _, err := os.Stat(o.ingest); err != nil {
			usageError("-ingest dataset %q does not exist", o.ingest)
		}
	}
	if o.pages < 0 {
		usageError("-pages must be >= 0, got %d", o.pages)
	}
	if o.scheme != "all" {
		valid := false
		for _, s := range repo.AllSchemes() {
			if s == o.scheme {
				valid = true
				break
			}
		}
		if !valid {
			usageError("unknown -scheme %q (valid: %s, all)", o.scheme, strings.Join(repo.AllSchemes(), ", "))
		}
	}
	if o.budget <= 0 {
		usageError("-budget must be positive, got %d", o.budget)
	}
	if o.workers <= 0 {
		usageError("-workers must be positive, got %d", o.workers)
	}
	if o.shards < 0 {
		usageError("-shards must be >= 0, got %d", o.shards)
	}
	codecOK := false
	for _, n := range snode.CodecNames() {
		if o.codec == n {
			codecOK = true
			break
		}
	}
	if !codecOK {
		usageError("unknown -codec %q (one of: %s)", o.codec, strings.Join(snode.CodecNames(), ", "))
	}
	if o.ingest == "" && o.pages == 0 {
		if fi, err := os.Stat(o.crawlDir); err != nil || !fi.IsDir() {
			usageError("-crawl directory %q does not exist (generate one with sngen)", o.crawlDir)
		}
	}
	return o
}

// buildShards emits the K-way partition and prints its shape: per
// shard the page count, intra-edge count, and the boundary split.
func buildShards(crawl *synth.Crawl, o options, cfg snode.Config) {
	start := time.Now()
	m, err := shard.Build(crawl, o.shards, o.out, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snbuild:", err)
		os.Exit(1)
	}
	total := crawl.Corpus.Graph.NumEdges()
	var intra, boundary int64
	fmt.Printf("%-8s %10s %12s %14s %14s\n", "shard", "pages", "intra-edges", "boundary-fwd", "boundary-rev")
	for i, e := range m.Shards {
		fmt.Printf("%-8d %10d %12d %14d %14d\n", i, e.Pages, e.IntraEdges, e.BoundaryFwdEdges, e.BoundaryRevEdges)
		intra += e.IntraEdges
		boundary += e.BoundaryFwdEdges
	}
	fmt.Printf("\nmanifest %s: %d pages, %d shards; %d/%d edges intra-shard (%.1f%%), built in %v\n",
		m.Version, m.NumPages, m.NumShards, intra, total,
		100*float64(intra)/float64(total), time.Since(start).Round(time.Millisecond))
	fmt.Printf("serve with: snserve -shard-root %s -shard-id I -listen :PORT, fronted by snrouter -root %s\n", o.out, o.out)
}

// reportProgress prints one stderr line per tick from the build_*
// instruments the refine and encode stages update as they go.
func reportProgress(reg *metrics.Registry, stop <-chan struct{}) {
	split := reg.Counter("build_elements_split")
	elements := reg.Gauge("build_elements")
	encoded := reg.Counter("build_supernodes_encoded")
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	start := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			fmt.Fprintf(os.Stderr, "snbuild: %6.1fs  elements split %d (live %d), supernodes encoded %d\n",
				time.Since(start).Seconds(), split.Value(), elements.Value(), encoded.Value())
		}
	}
}

// loadCrawl resolves the corpus source: a real dataset via -ingest, an
// inline synthetic crawl via -pages, or the default corpus.bin crawl
// directory.
func loadCrawl(o options, reg *metrics.Registry) (*synth.Crawl, error) {
	switch {
	case o.ingest != "":
		start := time.Now()
		crawl, st, err := ingest.Ingest(context.Background(), o.ingest, ingest.Options{
			Format:    o.format,
			MaxHeapMB: o.maxHeapMB,
			Metrics:   reg,
		})
		if err != nil {
			return nil, err
		}
		verified := "no manifest"
		if st.ChecksumVerified {
			verified = "checksum verified"
		}
		meta := "url table"
		if st.SynthesizedMeta {
			meta = "synthesized urls"
		}
		fmt.Printf("ingested %d pages, %d edges from %s in %v (%s, %s, %d dup edges, %d self-loops, %d runs spilled / %d bytes)\n",
			st.Nodes, st.Edges, o.ingest, time.Since(start).Round(time.Millisecond),
			verified, meta, st.DupEdges, st.SelfLoops, st.Runs, st.SpillBytes)
		return crawl, nil
	case o.pages > 0:
		cfg := synth.DefaultConfig(o.pages)
		cfg.Seed = o.seed
		return synth.Generate(cfg)
	default:
		return corpusio.Read(filepath.Join(o.crawlDir, "corpus.bin"))
	}
}

func main() {
	o := parseFlags()

	reg := metrics.NewRegistry()
	crawl, err := loadCrawl(o, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snbuild:", err)
		os.Exit(1)
	}
	opt := repo.DefaultOptions(o.out)
	opt.CacheBudget = o.budget
	opt.Transpose = o.transpose
	opt.Layout = crawl.Order
	opt.SNode.BuildWorkers = o.workers
	opt.SNode.Codec = o.codec
	if o.scheme != "all" {
		opt.Schemes = []string{o.scheme}
	}
	opt.SNode.Metrics = reg
	if o.maxHeapMB > 0 {
		// Bounded-heap build: partition refinement rounds spill to a
		// scratch directory alongside the ingestion runs.
		spillDir, err := os.MkdirTemp("", "snbuild-spill-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "snbuild:", err)
			os.Exit(1)
		}
		defer os.RemoveAll(spillDir)
		opt.SNode.Partition.SpillDir = spillDir
	}
	if o.progress {
		stop := make(chan struct{})
		go reportProgress(reg, stop)
		defer close(stop)
	}
	if o.shards > 0 {
		buildShards(crawl, o, opt.SNode)
		return
	}
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snbuild:", err)
		os.Exit(1)
	}
	defer r.Close()

	edges := crawl.Corpus.Graph.NumEdges()
	fmt.Printf("%-10s %14s %12s\n", "scheme", "size(bytes)", "bits/edge")
	for _, name := range repo.AllSchemes() {
		s, ok := r.Fwd[name]
		if !ok {
			continue
		}
		sized, ok := s.(store.Sized)
		if !ok {
			continue
		}
		fmt.Printf("%-10s %14d %12.2f\n", name, sized.SizeBytes(),
			store.BitsPerEdge(sized, edges))
	}
	if o.verify {
		if sn, ok := r.Fwd[repo.SchemeSNode].(*snode.Representation); ok {
			if err := sn.Verify(); err != nil {
				fmt.Fprintln(os.Stderr, "snbuild: verify:", err)
				os.Exit(1)
			}
			fmt.Println("\nS-Node representation verified: every graph decodes and totals match")
		}
	}
	if st := r.SNodeStats; st != nil {
		fmt.Printf("\nS-Node: %d supernodes, %d superedges (%d positive, %d negative)\n",
			st.Supernodes, st.Superedges, st.PositiveSuperedges, st.NegativeSuperedges)
		fmt.Printf("        supernode graph %d bytes, index files %d bytes, built in %v with %d workers\n",
			st.SupernodeGraphBytes, st.IndexFileBytes, st.BuildTime, o.workers)
		fmt.Printf("        partition: %d URL splits, %d clustered splits\n",
			st.URLSplits, st.ClusteredSplits)
	}
}
