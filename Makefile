# Standard development targets. `make check` is the tier-1 verify:
# build + vet + plain tests + race-hardened tests.

GO ?= go

.PHONY: build vet test test-race check bench clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency suite (sharded cache, singleflight decode dedup,
# parallel query engine, 32-goroutine stress) under the race detector.
test-race:
	$(GO) test -race ./...

check: build vet test test-race

bench:
	$(GO) test -bench=. -benchmem

clean:
	$(GO) clean ./...
