# Standard development targets. `make check` is the tier-1 verify:
# build + vet + plain tests + race-hardened tests + the tracing
# no-overhead guard.

GO ?= go

.PHONY: build vet test test-race check-overhead test-determinism check bench bench-json bench-build clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency suite (sharded cache, singleflight decode dedup,
# parallel query engine, 32-goroutine stress) under the race detector.
test-race:
	$(GO) test -race ./...

# Guard the untraced serving path: an engine with an attached-but-never-
# sampling tracer must add zero allocations per query, and the trace
# primitives themselves must be allocation-free when the context carries
# no trace. Run with -count=1 so the guard always executes.
check-overhead:
	$(GO) test -count=1 -run 'TestUntracedTracingAddsNoAllocs' ./internal/query
	$(GO) test -count=1 -run 'TestUntracedPrimitivesZeroAlloc' ./internal/trace

# Build determinism: the parallel refiner and streaming assembly must
# produce byte-identical partitions and artifacts at every worker
# count, window size, and GOMAXPROCS. Run with -count=1 so the guard
# always executes.
test-determinism:
	$(GO) test -count=1 -run 'TestBuildDeterministic|TestRefineWorkerCountInvariant' ./internal/snode ./internal/partition

check: build vet test test-race check-overhead test-determinism

bench:
	$(GO) test -bench=. -benchmem

# Benchmark trajectory artifact: the concurrency experiment's metrics
# registry (histograms, cache/io counters, worker occupancy) as JSON,
# committed per PR so serving-path regressions show up in review.
bench-json:
	$(GO) run ./cmd/snbench -experiment concurrency -quick -trace 8 -metrics-out BENCH_PR3.json

# Build-scaling artifact: wall time at 1/2/4/8 workers (refine, encode,
# total, peak heap) with paced repository scans, committed per PR so
# build-path regressions show up in review. Artifacts must hash
# identical at every width (the "identical" column).
bench-build:
	$(GO) run ./cmd/snbench -experiment build -pace 0.25 -build-out BENCH_PR4.json

clean:
	$(GO) clean ./...
