# Standard development targets. `make check` is the tier-1 verify:
# build + vet + plain tests + race-hardened tests + the tracing
# no-overhead guard.

GO ?= go

.PHONY: build vet test test-race check-overhead test-determinism test-delta-race test-load test-shard test-obs test-codec test-ingest check bench bench-json bench-build bench-update bench-load bench-shard bench-obs bench-codec bench-ingest clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency suite (sharded cache, singleflight decode dedup,
# parallel query engine, 32-goroutine stress) under the race detector.
test-race:
	$(GO) test -race ./...

# Guard the untraced serving path: an engine with an attached-but-never-
# sampling tracer must add zero allocations per query, and the trace
# primitives themselves must be allocation-free when the context carries
# no trace. The cross-process guards extend this across the tier: an
# unsampled routed request must emit no X-SNode-Trace header and pay
# zero allocations for the propagation machinery at the router, the
# shard server, and the header codec. Run with -count=1 so the guard
# always executes.
check-overhead:
	$(GO) test -count=1 -run 'TestUntracedTracingAddsNoAllocs' ./internal/query
	$(GO) test -count=1 -run 'TestUntracedPrimitivesZeroAlloc' ./internal/trace
	$(GO) test -count=1 -run 'TestCrossProcessUntracedZeroAlloc' ./internal/trace ./internal/serve ./internal/router
	$(GO) test -count=1 -run 'TestDecodeHotPathAllocs' ./internal/snode

# Build determinism: the parallel refiner and streaming assembly must
# produce byte-identical partitions and artifacts at every worker
# count, window size, and GOMAXPROCS. Run with -count=1 so the guard
# always executes.
test-determinism:
	$(GO) test -count=1 -run 'TestBuildDeterministic|TestRefineWorkerCountInvariant' ./internal/snode ./internal/partition

# Live-update race suite: concurrent mutators, readers, page adds, and
# the background compactor (seal / size-tiered merge / fold-back all
# firing) over one delta overlay, under the race detector. Run with
# -count=1 so the storm always executes.
test-delta-race:
	$(GO) test -race -count=1 -run 'TestChaosReadersWritersCompactor' ./internal/delta

# Fast load-path gate: the full open-loop pipeline — capacity probe,
# Poisson and bursty traces, admission shedding at 2x capacity, knee
# summary, artifact writer — at tiny scale and short windows. Run with
# -count=1 so the gate always executes.
test-load:
	$(GO) test -count=1 -run 'TestLoadSmoke' ./internal/bench
	$(GO) test -count=1 -run 'TestAllCoversEveryRegisteredExperiment' ./cmd/snbench

# Distributed-serving gate, under the race detector: the golden
# equivalence tests (partial queries merged across K shards ==
# single-node rows, in-process and through the HTTP router, cross-shard
# /out included) plus the failure drills — replica ejection, probe
# re-admission, kill-one-replica failover, version-skew rejection. Run
# with -count=1 so the gate always executes.
test-shard:
	$(GO) test -race -count=1 ./internal/shard ./internal/router

# Observability gate: the distributed-trace golden test (a sampled
# /query at K=2 stitches one trace with both shard subtrees), the
# federation invariant (cluster merge == sum of per-replica scrapes,
# stale replicas retained), the SLO scoreboard's burn-rate reaction to
# an outage, histogram merge algebra (bucket sums, exemplar retention,
# typed bounds-mismatch errors), and sampled-bit propagation across
# differing SampleEvery settings. Run with -count=1 so the gate always
# executes.
test-obs:
	$(GO) test -count=1 -run 'TestDistributedTraceStitching|TestClusterMetricsInvariant|TestSLOScoreboard' ./internal/router
	$(GO) test -count=1 -run 'TestRemoteSampledBit|TestForcedSampling|TestStartLinked|TestHeaderRoundTrip' ./internal/serve ./internal/trace
	$(GO) test -count=1 ./internal/slo ./internal/metrics

# Codec gate: encode→decode identity for every registered codec over
# every payload kind (fuzz seed corpora included), cross-codec build
# equivalence (row-identical adjacency under paper/lz/log/auto, codec
# IDs recorded and dispatched), the v1-artifact compatibility and
# future-version rejection suite, hostile-input decode over flipped
# payload bytes, codec flow through sharded builds, and the snbench
# registry check that `-experiment codecs` resolves. Run with -count=1
# so the gate always executes.
test-codec:
	$(GO) test -count=1 -run 'TestCodec|FuzzCodecRoundTrip|FuzzDecodeHostile|TestCorruptIndexAllCodecs|TestMeasureDecode|TestLegacyMetaV1ServesAsPaper|TestUnknown' ./internal/snode
	$(GO) test -count=1 -run 'TestCodecQueryEquivalence' ./internal/query
	$(GO) test -count=1 -run 'TestShardBuildCarriesCodec' ./internal/shard
	$(GO) test -count=1 -run 'TestRegistryEntriesAreWellFormed' ./cmd/snbench

# Ingestion gate: the hostile-input parser table (comments, CRLF,
# duplicate edges, self-loops, sparse 64-bit IDs, truncated gzip,
# checksum mismatch), the URL-table universe semantics, the
# spill-vs-in-memory graph equivalence, the golden end-to-end oracle
# (synth -> export -> ingest -> build byte-identical to the direct
# build at every worker count, heap budget and refinement spill rounds
# engaged), the committed-fixture format pin, the partition spill-round
# bit-identity suite, and the snbench registry check that
# `-experiment all` includes `ingest`. Run with -count=1 so the gate
# always executes.
test-ingest:
	$(GO) test -count=1 ./internal/ingest
	$(GO) test -count=1 -run 'TestRefineSpill|TestEncodeDecodeGroups|TestDecodeGroupsCorrupt|TestRoundSpill' ./internal/partition
	$(GO) test -count=1 -run 'TestSpill' ./internal/iosim
	$(GO) test -count=1 -run 'TestAllCoversEveryRegisteredExperiment' ./cmd/snbench

check: build vet test test-race check-overhead test-determinism test-delta-race test-load test-shard test-obs test-codec test-ingest

bench:
	$(GO) test -bench=. -benchmem

# Benchmark trajectory artifact: the concurrency experiment's metrics
# registry (histograms, cache/io counters, worker occupancy) as JSON,
# committed per PR so serving-path regressions show up in review.
bench-json:
	$(GO) run ./cmd/snbench -experiment concurrency -quick -trace 8 -metrics-out BENCH_PR3.json

# Build-scaling artifact: wall time at 1/2/4/8 workers (refine, encode,
# total, peak heap) with paced repository scans, committed per PR so
# build-path regressions show up in review. Artifacts must hash
# identical at every width (the "identical" column).
bench-build:
	$(GO) run ./cmd/snbench -experiment build -pace 0.25 -build-out BENCH_PR4.json

# Serving-under-churn artifact: the six-query mix timed against the
# bare base store, the empty overlay (pass-through regression check),
# a hot memtable, sealed segments, the compacted stack, and the
# post-fold-back state, committed per PR so update-path regressions
# show up in review.
bench-update:
	$(GO) run ./cmd/snbench -experiment update -quick -pace 0.25 -update-out BENCH_PR5.json

# Open-loop load artifact: the latency-vs-offered-load curve through
# the saturation knee (closed-loop capacity probe, then Poisson and
# bursty sweeps at fixed fractions of capacity), committed per PR so
# admission/shedding regressions show up in review. The summary block
# pins the invariant: at 2x the knee the server sheds (shed > 0,
# bounded queues) and admitted-request p99 stays within 2x of at-knee
# p99.
bench-load:
	$(GO) run ./cmd/snbench -experiment load -quick -load-out BENCH_PR6.json

# Shard-scaling artifact: the same closed-loop mixed workload against a
# single-node server and against the scatter-gather router at K=1/2/4
# shards (QPS, per-class p50/p99, speedup vs single-node), committed
# per PR so distributed-serving regressions show up in review. Full
# modeled pacing keeps the tier I/O-bound, so the speedup column
# measures shard parallelism rather than the host's core count (the
# provenance block records both).
bench-shard:
	$(GO) run ./cmd/snbench -experiment shard -quick -shard-out BENCH_PR7.json

# Fleet-observability artifact: a K=2 routed tier with per-replica
# registries and router-forced tracing, driven through a healthy phase
# and an overload phase. The report pins the PR's invariants: the SLO
# burn rate reacts (healthy ~0x, overload >1x), the cluster merge
# equals the per-replica scrape sums, a killed replica's counters stay
# visible with a staleness mark, and a latency-tail exemplar resolves
# to a stitched distributed trace with both shard subtrees.
bench-obs:
	$(GO) run ./cmd/snbench -experiment obs -quick -obs-out BENCH_PR8.json

# Codec bake-off artifact: the same crawl built under every codec
# setting (paper, lz, log, and the per-supernode auto bake-off), scored
# on payload bits/edge, pure-CPU decode ns/edge per (codec, kind)
# class, and cold-cache /out p50/p99 at three cache budgets. The
# summary pins the PR's gates: a non-paper codec wins decode ns/edge
# for at least one class within a 1.1x size leash, and the auto
# artifact's default-budget p99 does not regress against paper.
bench-codec:
	$(GO) run ./cmd/snbench -experiment codecs -quick -codec-out BENCH_PR9.json

# Ingestion scaling artifact: the 100k/300k/1M-page curve through the
# full external-memory pipeline — synth corpus exported as a SNAP edge
# list (+ URL table + sha256 manifest), re-ingested under the 32 MB
# heap budget (sorted runs, k-way merge), built with refinement spill
# rounds on — vs the direct in-memory build of the same corpus at each
# size. The summary pins the PR's gates: the largest size spills and
# its transient ingest state respects the budget, every S-Node artifact
# hashes identical to the direct build, and the six queries return
# identical rows. Full scale (no -quick): the 1M-page point is the
# acceptance criterion.
bench-ingest:
	$(GO) run ./cmd/snbench -experiment ingest -ingest-out BENCH_PR10.json

clean:
	$(GO) clean ./...
