// Package mining implements the whole-graph analyses the paper cites as
// the "global access" workloads an in-memory Web graph enables (§1.2):
// HITS hubs/authorities (Kleinberg [25], used by Query 3's base set),
// community trawling (Kumar et al. [15]), bow-tie structure (Broder et
// al. [8]), and BFS-sample diameter estimation. All run over a decoded
// in-memory CSR graph — which is precisely what the S-Node compression
// makes possible at repository scale.
package mining

import (
	"math"
	"sort"

	"snode/internal/randutil"
	"snode/internal/webgraph"
)

// HITSResult holds hub and authority scores over a base set.
type HITSResult struct {
	// Pages lists the base set; Hub and Authority are parallel.
	Pages     []webgraph.PageID
	Hub       []float64
	Authority []float64
}

// HITS runs Kleinberg's algorithm on the subgraph induced by base,
// iterating until convergence or maxIter. Scores are L2-normalized.
func HITS(g *webgraph.Graph, base []webgraph.PageID, maxIter int) *HITSResult {
	if maxIter <= 0 {
		maxIter = 50
	}
	idx := make(map[webgraph.PageID]int, len(base))
	pages := append([]webgraph.PageID(nil), base...)
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	// Deduplicate.
	k := 0
	for i := range pages {
		if i == 0 || pages[i] != pages[i-1] {
			pages[k] = pages[i]
			k++
		}
	}
	pages = pages[:k]
	for i, p := range pages {
		idx[p] = i
	}
	// Induced adjacency.
	adj := make([][]int32, len(pages))
	for i, p := range pages {
		for _, q := range g.Out(p) {
			if j, ok := idx[q]; ok {
				adj[i] = append(adj[i], int32(j))
			}
		}
	}
	n := len(pages)
	hub := make([]float64, n)
	auth := make([]float64, n)
	for i := range hub {
		hub[i] = 1
	}
	for it := 0; it < maxIter; it++ {
		// auth = A^T hub
		for i := range auth {
			auth[i] = 0
		}
		for i := range adj {
			for _, j := range adj[i] {
				auth[j] += hub[i]
			}
		}
		normalize(auth)
		// hub = A auth
		prev := append([]float64(nil), hub...)
		for i := range adj {
			var s float64
			for _, j := range adj[i] {
				s += auth[j]
			}
			hub[i] = s
		}
		normalize(hub)
		if l1Delta(prev, hub) < 1e-9 {
			break
		}
	}
	return &HITSResult{Pages: pages, Hub: hub, Authority: auth}
}

func normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range v {
		v[i] *= inv
	}
}

func l1Delta(a, b []float64) float64 {
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// Core is a trawled (s, t) bipartite core: Fans each link to every
// Center.
type Core struct {
	Fans    []webgraph.PageID
	Centers []webgraph.PageID
}

// TrawlCores finds (s, t) bipartite cores by Kumar et al.'s iterative
// pruning: repeatedly discard pages whose out-degree (< t) or in-degree
// (< s) disqualifies them, then enumerate cores among the survivors.
// maxCores bounds the output. Fans' intra-core duplicates are removed;
// a page may appear in several cores.
func TrawlCores(g *webgraph.Graph, s, t, maxCores int) []Core {
	if s < 2 || t < 2 {
		return nil
	}
	n := g.NumPages()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	outDeg := make([]int32, n)
	inDeg := g.InDegrees()
	for p := 0; p < n; p++ {
		outDeg[p] = int32(g.OutDegree(webgraph.PageID(p)))
	}
	tr := g.Transpose()

	// Iterative pruning to the (s, t)-core candidate set.
	queue := make([]webgraph.PageID, 0, n)
	for p := 0; p < n; p++ {
		if outDeg[p] < int32(t) && inDeg[p] < int32(s) {
			queue = append(queue, webgraph.PageID(p))
			alive[p] = false
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, q := range g.Out(v) {
			if alive[q] {
				inDeg[q]--
				if outDeg[q] < int32(t) && inDeg[q] < int32(s) {
					alive[q] = false
					queue = append(queue, q)
				}
			}
		}
		for _, q := range tr.Out(v) {
			if alive[q] {
				outDeg[q]--
				if outDeg[q] < int32(t) && inDeg[q] < int32(s) {
					alive[q] = false
					queue = append(queue, q)
				}
			}
		}
	}

	// Enumerate: for each surviving potential fan, try every t-subset
	// of its surviving targets... full enumeration is exponential; use
	// the standard trawling heuristic: fix the t centers as the fan's
	// first t surviving targets and collect all fans sharing them.
	var cores []Core
	seen := map[string]bool{}
	for p := 0; p < n && len(cores) < maxCores; p++ {
		if !alive[p] {
			continue
		}
		var centers []webgraph.PageID
		for _, q := range g.Out(webgraph.PageID(p)) {
			if alive[q] {
				centers = append(centers, q)
				if len(centers) == t {
					break
				}
			}
		}
		if len(centers) < t {
			continue
		}
		key := coreKey(centers)
		if seen[key] {
			continue
		}
		// Fans = pages linking to every center.
		fans := pagesLinkingToAll(g, tr, centers)
		if len(fans) >= s {
			seen[key] = true
			cores = append(cores, Core{Fans: fans, Centers: centers})
		}
	}
	return cores
}

func coreKey(centers []webgraph.PageID) string {
	b := make([]byte, 0, len(centers)*4)
	for _, c := range centers {
		b = append(b, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return string(b)
}

// pagesLinkingToAll intersects the in-neighbour lists of the centers.
func pagesLinkingToAll(g, tr *webgraph.Graph, centers []webgraph.PageID) []webgraph.PageID {
	cur := append([]webgraph.PageID(nil), tr.Out(centers[0])...)
	for _, c := range centers[1:] {
		next := cur[:0]
		in := tr.Out(c)
		i, j := 0, 0
		for i < len(cur) && j < len(in) {
			switch {
			case cur[i] == in[j]:
				next = append(next, cur[i])
				i++
				j++
			case cur[i] < in[j]:
				i++
			default:
				j++
			}
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// BowTie is Broder et al.'s macroscopic decomposition of the Web graph.
type BowTie struct {
	SCC  int // pages in the giant strongly connected component
	In   int // pages reaching the SCC but not in it
	Out  int // pages reachable from the SCC but not in it
	Rest int // tendrils, tubes, and disconnected pages
}

// BowTieDecompose computes the bow-tie around the largest SCC.
func BowTieDecompose(g *webgraph.Graph) BowTie {
	comp, nComp := webgraph.SCC(g)
	counts := make([]int, nComp)
	for _, c := range comp {
		counts[c]++
	}
	giant := int32(0)
	for c, n := range counts {
		if n > counts[giant] {
			giant = int32(c)
		}
	}
	var seeds []webgraph.PageID
	for p, c := range comp {
		if c == giant {
			seeds = append(seeds, webgraph.PageID(p))
		}
	}
	fwd := webgraph.BFS(g, seeds)
	bwd := webgraph.BFS(g.Transpose(), seeds)
	var bt BowTie
	for p := 0; p < g.NumPages(); p++ {
		switch {
		case comp[p] == giant:
			bt.SCC++
		case bwd[p] >= 0:
			bt.In++
		case fwd[p] >= 0:
			bt.Out++
		default:
			bt.Rest++
		}
	}
	return bt
}

// EstimateDiameter estimates the directed diameter (longest shortest
// path among reachable pairs) by BFS from a random sample of sources.
// It is a lower bound, as in the empirical Web-graph studies.
func EstimateDiameter(g *webgraph.Graph, samples int, seed uint64) int {
	n := g.NumPages()
	if n == 0 || samples <= 0 {
		return 0
	}
	rng := randutil.NewRNG(seed)
	best := 0
	for s := 0; s < samples; s++ {
		src := webgraph.PageID(rng.Intn(n))
		dist := webgraph.BFS(g, []webgraph.PageID{src})
		for _, d := range dist {
			if int(d) > best {
				best = int(d)
			}
		}
	}
	return best
}
