package mining

import (
	"math"
	"testing"

	"snode/internal/synth"
	"snode/internal/webgraph"
)

func TestHITSHubAndAuthority(t *testing.T) {
	// 0, 1, 2 are hubs pointing at authorities 3, 4.
	b := webgraph.NewBuilder(5)
	for h := int32(0); h < 3; h++ {
		b.AddEdge(h, 3)
		b.AddEdge(h, 4)
	}
	g := b.Build()
	res := HITS(g, []webgraph.PageID{0, 1, 2, 3, 4}, 50)
	idx := map[webgraph.PageID]int{}
	for i, p := range res.Pages {
		idx[p] = i
	}
	for h := webgraph.PageID(0); h < 3; h++ {
		if res.Hub[idx[h]] <= res.Hub[idx[3]] {
			t.Fatalf("page %d hub score %f not above authority's %f",
				h, res.Hub[idx[h]], res.Hub[idx[3]])
		}
	}
	for _, a := range []webgraph.PageID{3, 4} {
		if res.Authority[idx[a]] <= res.Authority[idx[0]] {
			t.Fatalf("authority %d score %f not above hub's", a, res.Authority[idx[a]])
		}
	}
	// L2 normalization.
	var s float64
	for _, v := range res.Authority {
		s += v * v
	}
	if math.Abs(s-1) > 1e-6 {
		t.Fatalf("authority norm² = %f", s)
	}
}

func TestHITSRestrictedToBase(t *testing.T) {
	// Links to pages outside the base set must not contribute.
	b := webgraph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 3) // 3 outside base
	g := b.Build()
	res := HITS(g, []webgraph.PageID{0, 1, 2}, 20)
	if len(res.Pages) != 3 {
		t.Fatalf("base size %d", len(res.Pages))
	}
	for _, p := range res.Pages {
		if p == 3 {
			t.Fatal("outside page included")
		}
	}
}

func TestHITSDeduplicatesBase(t *testing.T) {
	b := webgraph.NewBuilder(3)
	b.AddEdge(0, 1)
	res := HITS(b.Build(), []webgraph.PageID{1, 0, 1, 0}, 10)
	if len(res.Pages) != 2 {
		t.Fatalf("dedup failed: %v", res.Pages)
	}
}

func TestTrawlFindsPlantedCore(t *testing.T) {
	// Plant a (4,3) core: fans 0-3 each link to centers 10-12.
	b := webgraph.NewBuilder(20)
	for f := int32(0); f < 4; f++ {
		for c := int32(10); c < 13; c++ {
			b.AddEdge(f, c)
		}
	}
	// Background noise.
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	b.AddEdge(15, 16)
	g := b.Build()
	cores := TrawlCores(g, 4, 3, 10)
	if len(cores) == 0 {
		t.Fatal("planted core not found")
	}
	found := false
	for _, core := range cores {
		if len(core.Fans) >= 4 && len(core.Centers) == 3 {
			found = true
			for _, f := range core.Fans {
				for _, c := range core.Centers {
					if !g.HasEdge(f, c) {
						t.Fatalf("fan %d does not link to center %d", f, c)
					}
				}
			}
		}
	}
	if !found {
		t.Fatalf("no complete core among %d results", len(cores))
	}
}

func TestTrawlNoCoreInSparseGraph(t *testing.T) {
	b := webgraph.NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if cores := TrawlCores(b.Build(), 3, 3, 10); len(cores) != 0 {
		t.Fatalf("found %d cores in a sparse graph", len(cores))
	}
}

func TestTrawlRejectsTrivialParams(t *testing.T) {
	b := webgraph.NewBuilder(4)
	b.AddEdge(0, 1)
	if cores := TrawlCores(b.Build(), 1, 1, 10); cores != nil {
		t.Fatal("s,t < 2 accepted")
	}
}

func TestBowTieDecompose(t *testing.T) {
	// IN = {0}, SCC = {1,2,3}, OUT = {4}, disconnected = {5}.
	b := webgraph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 1)
	b.AddEdge(3, 4)
	g := b.Build()
	bt := BowTieDecompose(g)
	if bt.SCC != 3 || bt.In != 1 || bt.Out != 1 || bt.Rest != 1 {
		t.Fatalf("bow-tie = %+v", bt)
	}
}

func TestBowTieSumsToN(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(3000))
	if err != nil {
		t.Fatal(err)
	}
	g := crawl.Corpus.Graph
	bt := BowTieDecompose(g)
	if bt.SCC+bt.In+bt.Out+bt.Rest != g.NumPages() {
		t.Fatalf("bow-tie does not partition: %+v", bt)
	}
	if bt.SCC == 0 {
		t.Fatal("no giant SCC in a web-like graph")
	}
}

func TestEstimateDiameter(t *testing.T) {
	// Path graph of length 9: diameter 9 from vertex 0.
	b := webgraph.NewBuilder(10)
	for i := int32(0); i < 9; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	// Enough samples to hit vertex 0 with high probability.
	d := EstimateDiameter(g, 50, 1)
	if d < 5 || d > 9 {
		t.Fatalf("diameter estimate %d outside [5,9]", d)
	}
	if EstimateDiameter(g, 0, 1) != 0 {
		t.Fatal("zero samples should estimate 0")
	}
}
