// Package synth generates synthetic Web crawls that stand in for the
// Stanford WebBase repository used in the paper's experiments. The
// generator implements the link-copying random Web-graph model of
// Kumar et al. (FOCS 2000) extended with the structure the S-Node
// scheme exploits (paper §3, Observations 1-3):
//
//   - Link copying: a fraction of pages choose a "prototype" page from
//     the same directory and copy part of its adjacency list, creating
//     clusters of pages with near-identical out-links.
//   - Domain and URL locality: ~75% of links stay within the source
//     page's registered domain (Suel & Yuan), and intra-domain links are
//     biased towards lexicographically nearby URLs.
//   - Page similarity: pages in the same directory share a topic and,
//     through copying, similar adjacency lists.
//
// The generator also seeds the paper's Table 3 query scenarios: the
// university domains (stanford.edu, berkeley.edu, mit.edu, caltech.edu),
// the comic-strip domains, and the five scenario phrases, wired with the
// link structure each query needs to return non-trivial results.
package synth

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"snode/internal/randutil"
	"snode/internal/webgraph"
)

// Scenario constants shared with the query engine.
const (
	PhraseMobileNetworking      = "mobile_networking"
	PhraseInternetCensorship    = "internet_censorship"
	PhraseQuantumCryptography   = "quantum_cryptography"
	PhraseComputerMusic         = "computer_music_synthesis"
	PhraseOpticalInterferometry = "optical_interferometry"
)

// ComicStrip describes one comic for Analysis 2 (Query 2): its website
// domain and its word set Cw.
type ComicStrip struct {
	Name  string
	Site  string
	Words []string
}

// Comics returns the three strips from the paper.
func Comics() []ComicStrip {
	return []ComicStrip{
		{Name: "Dilbert", Site: "dilbert.com", Words: []string{"dilbert", "dogbert", "the_boss"}},
		{Name: "Doonesbury", Site: "doonesbury.com", Words: []string{"doonesbury", "zonker", "duke"}},
		{Name: "Peanuts", Site: "peanuts.com", Words: []string{"peanuts", "snoopy", "charlie_brown"}},
	}
}

// Universities returns the four university domains used by Query 4.
func Universities() []string {
	return []string{"stanford.edu", "berkeley.edu", "mit.edu", "caltech.edu"}
}

var scenarioPhrases = []string{
	PhraseMobileNetworking,
	PhraseInternetCensorship,
	PhraseQuantumCryptography,
	PhraseComputerMusic,
	PhraseOpticalInterferometry,
}

// Config controls crawl generation. DefaultConfig provides values tuned
// to match the paper's measured corpus statistics at small scale.
type Config struct {
	NumPages int
	Seed     uint64

	// MeanOutDegree targets the paper's measured average of 14.
	MeanOutDegree float64
	// IntraDomainProb is the fraction of links that stay on the source
	// domain (paper cites ~3/4).
	IntraDomainProb float64
	// URLLocalityProb is, among intra-domain links, the fraction biased
	// to lexicographically nearby URLs.
	URLLocalityProb float64
	// CopyProb is the probability a page copies a prototype's links.
	CopyProb float64
	// CopyFraction is the fraction of the prototype list copied.
	CopyFraction float64
	// PagesPerDomain controls how many domains the crawl has.
	PagesPerDomain int
}

// DefaultConfig returns the standard configuration for n pages.
func DefaultConfig(n int) Config {
	return Config{
		NumPages:        n,
		Seed:            20030226, // ICDE 2003 conference date
		MeanOutDegree:   14,
		IntraDomainProb: 0.75,
		URLLocalityProb: 0.8,
		CopyProb:        0.5,
		CopyFraction:    0.75,
		PagesPerDomain:  1200,
	}
}

type domainSpec struct {
	name     string
	tld      string
	size     int
	firstPID int32 // first page ID (pages of a domain are contiguous)
}

// Crawl is a generated corpus plus the order in which a breadth-first
// crawler would have fetched its pages. Page IDs are assigned in
// (domain, URL) lexicographic order — the ordering the representation
// schemes rely on — while Order records crawl sequence, which Prefix
// uses to derive smaller data sets the way the paper does (§4: "reading
// the repository sequentially from the beginning").
type Crawl struct {
	Corpus *webgraph.Corpus
	Order  []int32 // Order[k] = page fetched k-th
}

// Generate produces a crawl under the given configuration.
func Generate(cfg Config) (*Crawl, error) {
	if cfg.NumPages < 100 {
		return nil, fmt.Errorf("synth: NumPages %d too small (min 100)", cfg.NumPages)
	}
	if cfg.MeanOutDegree <= 1 {
		return nil, fmt.Errorf("synth: MeanOutDegree must exceed 1")
	}
	root := randutil.NewRNG(cfg.Seed)
	domRNG := root.Split(1)
	urlRNG := root.Split(2)
	topicRNG := root.Split(3)
	linkRNG := root.Split(4)
	scenRNG := root.Split(5)

	domains := planDomains(cfg, domRNG)
	pages, dirOf, dirPages := buildURLs(cfg, domains, urlRNG)
	assignTerms(cfg, domains, pages, dirOf, topicRNG)
	g := buildLinks(cfg, domains, pages, dirOf, dirPages, linkRNG)
	wireScenarios(cfg, domains, pages, g, scenRNG)

	corpus := &webgraph.Corpus{Graph: g.Build(), Pages: pages}
	if err := corpus.Validate(); err != nil {
		return nil, err
	}
	order := crawlOrder(domains, root.Split(6))
	return &Crawl{Corpus: corpus, Order: order}, nil
}

// crawlOrder simulates breadth-first crawl dynamics: large hub domains
// are discovered early and keep contributing pages throughout the
// crawl, while small domains trickle in sub-linearly (Najork & Wiener).
// Each domain d discovered at time t_d spreads its pages over
// [t_d, N); domain discovery times follow t_i ∝ (i/D)^1.6 with domains
// taken in descending size order (the seven scenario domains first, so
// every prefix of interest contains them).
func crawlOrder(domains []domainSpec, rng *randutil.RNG) []int32 {
	var total int
	for _, d := range domains {
		total += d.size
	}
	// Discovery order: scenario domains first (so every prefix of
	// interest contains them), then a size-biased random order — BFS
	// crawls reach popular sites a little earlier, but small sites are
	// discovered throughout. Strict big-first ordering would make
	// front-loaded discovery infeasible (the biggest domains alone
	// would fill the early crawl).
	isSpecial := func(name string) bool {
		switch name {
		case "stanford.edu", "berkeley.edu", "mit.edu", "caltech.edu",
			"dilbert.com", "doonesbury.com", "peanuts.com":
			return true
		}
		return false
	}
	var specials []int
	var rest []int
	for i := range domains {
		if isSpecial(domains[i].name) {
			specials = append(specials, i)
		} else {
			rest = append(rest, i)
		}
	}
	sort.Slice(specials, func(a, b int) bool { return domains[specials[a]].name < domains[specials[b]].name })
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	// Interleave the scenario domains among the first ~15% of discovery
	// ranks: early enough that every experimental prefix contains them,
	// spread out so their (large) mass does not over-commit the early
	// crawl.
	idx := make([]int, 0, len(domains))
	stride := len(domains) / 50
	if stride < 1 {
		stride = 1
	}
	si, ri := 0, 0
	for len(idx) < len(domains) {
		if si < len(specials) && len(idx)%stride == 0 && len(idx) > 0 {
			idx = append(idx, specials[si])
			si++
			continue
		}
		if ri < len(rest) {
			idx = append(idx, rest[ri])
			ri++
			continue
		}
		idx = append(idx, specials[si])
		si++
	}
	// Crawl assembly: domain rank i (discovery order) is discovered at
	// ideal time total*(i/D)^2 — front-loaded, so any prefix already
	// knows most of the structure it will ever see. A polite BFS
	// crawler keeps hundreds of hosts in flight and round-robins among
	// them, so each domain's pages are (a) scattered across a long
	// stretch of the crawl, interleaved with many other domains — which
	// is why a flat crawl-order store seeks once per page of a focused
	// query set — and (b) drawn in breadth-first order, touching every
	// top-level directory early, which is why the partition's URL-split
	// structure (and hence the supernode count) saturates long before a
	// domain is fully crawled.
	d := float64(len(domains))
	type keyed struct {
		pid int32
		key float64
	}
	keys := make([]keyed, 0, total)
	for rank, di := range idx {
		dom := domains[di]
		t := float64(total) * discoverySchedule(float64(rank)/d)
		w := 4 * float64(dom.size)
		if min := float64(total) / 3; w < min {
			w = min
		}
		if w > float64(total)-t {
			w = float64(total) - t
		}
		// Uniform keys over the window: pages arrive interleaved and in
		// effectively random directory order.
		for k := 0; k < dom.size; k++ {
			key := t + w*rng.Float64()
			keys = append(keys, keyed{pid: dom.firstPID + int32(k), key: key})
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].key != keys[b].key {
			return keys[a].key < keys[b].key
		}
		return keys[a].pid < keys[b].pid
	})
	order := make([]int32, total)
	for i, k := range keys {
		order[i] = k.pid
	}
	return order
}

// discoverySchedule maps domain fraction x in [0,1] to the crawl-time
// fraction at which that domain is discovered. The square law means a
// crawl prefix of fraction p has discovered sqrt(p) of all domains —
// the frontier explosion of breadth-first crawling.
func discoverySchedule(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * x
}

// planDomains decides the domain list and per-domain page counts. The
// first seven domains are the scenario domains; universities are large,
// comic sites small, and the remainder follow a Zipf size distribution.
func planDomains(cfg Config, rng *randutil.RNG) []domainSpec {
	n := cfg.NumPages
	nDomains := n / cfg.PagesPerDomain
	if nDomains < 16 {
		nDomains = 16
	}
	specials := []domainSpec{
		{name: "stanford.edu", tld: "edu"},
		{name: "berkeley.edu", tld: "edu"},
		{name: "mit.edu", tld: "edu"},
		{name: "caltech.edu", tld: "edu"},
		{name: "dilbert.com", tld: "com"},
		{name: "doonesbury.com", tld: "com"},
		{name: "peanuts.com", tld: "com"},
	}
	tlds := []string{"com", "com", "com", "org", "net", "edu"}
	var generic []domainSpec
	for i := len(specials); i < nDomains; i++ {
		tld := tlds[rng.Intn(len(tlds))]
		generic = append(generic, domainSpec{
			name: fmt.Sprintf("site%04d.%s", i, tld),
			tld:  tld,
		})
	}

	// Reserve fixed shares: universities ~4% each, comics tiny.
	comicSize := n / 400
	if comicSize < 8 {
		comicSize = 8
	}
	uniSize := n / 25
	if uniSize < 60 {
		uniSize = 60
	}
	reserved := 0
	for i := range specials {
		if specials[i].tld == "edu" {
			specials[i].size = uniSize
		} else {
			specials[i].size = comicSize
		}
		reserved += specials[i].size
	}
	rest := n - reserved
	if rest < len(generic) {
		rest = len(generic) // degenerate tiny corpora
	}
	// Zipf sizes for generic domains, with a heavy tail: real crawls
	// concentrate much of their mass in a few very large sites whose
	// directory structure saturates early in the crawl.
	if len(generic) > 0 {
		weights := make([]float64, len(generic))
		var total float64
		for i := range weights {
			weights[i] = math.Pow(float64(i+2), -1.25)
			total += weights[i]
		}
		assigned := 0
		for i := range generic {
			s := int(float64(rest) * weights[i] / total)
			if s < 2 {
				s = 2
			}
			generic[i].size = s
			assigned += s
		}
		// Fix rounding drift on the largest generic domain.
		generic[0].size += rest - assigned
		if generic[0].size < 2 {
			generic[0].size = 2
		}
	}
	all := append(specials, generic...)
	// Sort by domain name so page IDs follow (domain, URL) order.
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	pid := int32(0)
	for i := range all {
		all[i].firstPID = pid
		pid += int32(all[i].size)
	}
	return all
}

// buildURLs creates page metadata with a synthetic directory hierarchy
// per domain and returns, per page, its directory key, plus the page
// lists per directory (used for prototype selection during copying).
func buildURLs(cfg Config, domains []domainSpec, rng *randutil.RNG) (pages []webgraph.PageMeta, dirOf []int32, dirPages [][]int32) {
	total := 0
	for _, d := range domains {
		total += d.size
	}
	pages = make([]webgraph.PageMeta, total)
	dirOf = make([]int32, total)

	var dirKeys []string
	dirIndex := map[string]int32{}
	getDir := func(key string) int32 {
		if id, ok := dirIndex[key]; ok {
			return id
		}
		id := int32(len(dirKeys))
		dirKeys = append(dirKeys, key)
		dirIndex[key] = id
		dirPages = append(dirPages, nil)
		return id
	}

	for _, d := range domains {
		// Directory tree sized so that depth-bounded URL prefixes cover
		// substantial page groups, as on the real Web where a prefix
		// like /students/grad/ holds hundreds of pages: roughly one
		// level-1 directory per hundred pages, occasional level-2/3.
		nL1 := 1 + d.size/400
		if nL1 > 6 {
			nL1 = 6
		}
		type dirSlot struct{ path string }
		var slots []dirSlot
		slots = append(slots, dirSlot{path: ""}) // root
		for i := 0; i < nL1; i++ {
			p1 := fmt.Sprintf("d%02d", i)
			slots = append(slots, dirSlot{path: p1})
			if rng.Bool(0.3) {
				p2 := fmt.Sprintf("%s/s%02d", p1, rng.Intn(3))
				slots = append(slots, dirSlot{path: p2})
				if rng.Bool(0.2) {
					slots = append(slots, dirSlot{path: fmt.Sprintf("%s/t%02d", p2, rng.Intn(3))})
				}
			}
		}
		// Hosts: universities expose department subdomains to exercise
		// the "top two DNS levels" grouping; others use www.
		hosts := []string{"www." + d.name}
		if d.tld == "edu" && strings.Contains(d.name, ".edu") {
			hosts = append(hosts, "cs."+d.name, "ee."+d.name)
		}

		// Distribute pages over (host, dir) slots with a Zipfian skew
		// (organizational sites concentrate pages in a few areas), then
		// sort URLs within the domain so IDs follow lexicographic order.
		slotWeights := make([]float64, len(slots))
		for i := range slotWeights {
			slotWeights[i] = 1.0 / float64(i+1)
		}
		type pageSlot struct {
			url string
			dir int32
		}
		urls := make([]pageSlot, d.size)
		for k := 0; k < d.size; k++ {
			host := hosts[rng.Intn(len(hosts))]
			slot := slots[randutil.WeightedChoice(rng, slotWeights)]
			var u string
			if slot.path == "" {
				u = fmt.Sprintf("http://%s/page%05d.html", host, k)
			} else {
				u = fmt.Sprintf("http://%s/%s/page%05d.html", host, slot.path, k)
			}
			urls[k] = pageSlot{url: u, dir: getDir(host + "/" + slot.path)}
		}
		sort.Slice(urls, func(i, j int) bool { return urls[i].url < urls[j].url })
		for k, ps := range urls {
			pid := d.firstPID + int32(k)
			pages[pid] = webgraph.PageMeta{URL: ps.url, Domain: d.name}
			dirOf[pid] = ps.dir
			dirPages[ps.dir] = append(dirPages[ps.dir], pid)
		}
	}
	return pages, dirOf, dirPages
}

// assignTerms gives every page its term list: a directory topic phrase,
// background vocabulary, and scenario terms where the Table 3 queries
// need them.
func assignTerms(cfg Config, domains []domainSpec, pages []webgraph.PageMeta, dirOf []int32, rng *randutil.RNG) {
	nGeneric := 40
	genericTopics := make([]string, nGeneric)
	for i := range genericTopics {
		genericTopics[i] = fmt.Sprintf("topic_%02d", i)
	}
	comics := Comics()
	uniSet := map[string]bool{}
	for _, u := range Universities() {
		uniSet[u] = true
	}

	// Directory topic cache: every page in a directory shares a topic.
	// Universities deterministically cycle the five scenario phrases
	// over their first directories, guaranteeing each phrase a page
	// population at each university (the Table 3 queries depend on it);
	// elsewhere scenario phrases appear rarely, as on the wider Web.
	dirTopic := map[int32]string{}
	uniPhraseCursor := map[string]int{}
	topicFor := func(dir int32, domain string) string {
		if t, ok := dirTopic[dir]; ok {
			return t
		}
		var t string
		if uniSet[domain] && uniPhraseCursor[domain] < len(scenarioPhrases) {
			t = scenarioPhrases[uniPhraseCursor[domain]]
			uniPhraseCursor[domain]++
		} else if rng.Float64() < 0.02 {
			t = scenarioPhrases[rng.Intn(len(scenarioPhrases))]
		} else {
			t = genericTopics[rng.Intn(nGeneric)]
		}
		dirTopic[dir] = t
		return t
	}

	vocabSize := 2000
	for _, d := range domains {
		isComic := -1
		for ci, c := range comics {
			if c.Site == d.name {
				isComic = ci
			}
		}
		for k := 0; k < d.size; k++ {
			pid := d.firstPID + int32(k)
			var terms []string
			topic := topicFor(dirOf[pid], d.name)
			// ~70% of a directory's pages actually mention its topic.
			if rng.Bool(0.7) {
				terms = append(terms, topic)
			}
			if isComic >= 0 {
				terms = append(terms, comics[isComic].Words...)
			} else if uniSet[d.name] && rng.Bool(0.02) {
				// A few university pages discuss a comic strip: pick one
				// and mention at least two of its words (Q2's predicate).
				c := comics[rng.Intn(len(comics))]
				nw := 2 + rng.Intn(len(c.Words)-1)
				perm := rng.Perm(len(c.Words))
				for _, wi := range perm[:nw] {
					terms = append(terms, c.Words[wi])
				}
			}
			nBack := 3 + rng.Intn(6)
			for j := 0; j < nBack; j++ {
				terms = append(terms, fmt.Sprintf("w%04d", rng.Intn(vocabSize)))
			}
			pages[pid].Terms = terms
		}
	}
}

// buildLinks generates the hyperlink structure.
func buildLinks(cfg Config, domains []domainSpec, pages []webgraph.PageMeta, dirOf []int32, dirPages [][]int32, rng *randutil.RNG) *webgraph.Builder {
	n := len(pages)
	b := webgraph.NewBuilder(n)

	// Degree sampler targeting the configured mean: bounded Pareto with
	// alpha=2.5 has mean lo*(alpha-1)/(alpha-2) = 3*lo.
	alpha := 2.5
	lo := int(cfg.MeanOutDegree*(alpha-2)/(alpha-1) + 0.5)
	if lo < 1 {
		lo = 1
	}
	hi := 300
	deg := randutil.NewBoundedPareto(rng, lo, hi, alpha)

	// Preferential-attachment pool: every generated edge target joins
	// the pool, so sampling uniformly from it is degree-proportional.
	// Preferential-attachment pool with a "hot core": most external
	// links on the Web target a small set of very popular pages, so a
	// majority of preferential draws sample only the early portion of
	// the pool. This concentration is what keeps the number of distinct
	// supernode pairs (superedges) growing slowly.
	prefPool := make([]int32, 0, n*8)
	hotCore := n / 20
	samplePref := func() int32 {
		if len(prefPool) == 0 || rng.Bool(0.05) {
			return int32(rng.Intn(n))
		}
		if len(prefPool) > hotCore && rng.Bool(0.85) {
			return prefPool[rng.Intn(hotCore)]
		}
		return prefPool[rng.Intn(len(prefPool))]
	}

	// Per-domain index for intra-domain sampling.
	domainOf := make([]int, n)
	for di, d := range domains {
		for k := 0; k < d.size; k++ {
			domainOf[d.firstPID+int32(k)] = di
		}
	}
	// Track generated adjacency (pre-dedup) for prototype copying.
	adjSoFar := make([][]int32, n)

	// Per-domain directory lists, for domain-wide template copying.
	domDirs := make([][]int32, len(domains))
	{
		seen := map[int32]bool{}
		for p := 0; p < n; p++ {
			d := dirOf[p]
			if !seen[d] {
				seen[d] = true
				di := domainOf[p]
				domDirs[di] = append(domDirs[di], d)
			}
		}
	}

	addEdge := func(p, q int32) {
		if p == q {
			return
		}
		b.AddEdge(p, q)
		adjSoFar[p] = append(adjSoFar[p], q)
		prefPool = append(prefPool, q)
	}

	// Generate in page-ID order (== crawl order).
	for p := 0; p < n; p++ {
		pid := int32(p)
		d := domains[domainOf[p]]
		want := deg.Sample()

		// Link copying: pick a prototype from the same directory among
		// already-generated pages and copy a fraction of its list. The
		// prototype is one of the directory's first few pages (its
		// "archetypes"): a directory hosts a small number of page
		// templates, so its pages form a few clusters of near-identical
		// adjacency lists — exactly the structure clustered split
		// discovers and reference encoding exploits.
		if rng.Bool(cfg.CopyProb) {
			// 40% of copying follows a domain-wide template (site
			// navigation and boilerplate shared across directories) —
			// these similar pages are NOT URL-adjacent, which is
			// precisely the structure clustered split recovers and a
			// URL-window scheme like Link3 cannot.
			srcDir := dirOf[pid]
			if rng.Bool(0.5) {
				dirs := domDirs[domainOf[pid]]
				if len(dirs) > 0 {
					srcDir = dirs[rng.Intn(len(dirs))]
				}
			}
			peers := dirPages[srcDir]
			nArch := 0
			for _, q := range peers {
				if q < pid && nArch < 3 {
					nArch++
				}
			}
			if nArch > 0 {
				proto := peers[rng.Intn(nArch)]
				if proto < pid {
					src := adjSoFar[proto]
					for _, t := range src {
						if rng.Bool(cfg.CopyFraction) {
							addEdge(pid, t)
							want--
						}
					}
				}
			}
		}

		for ; want > 0; want-- {
			if rng.Bool(cfg.IntraDomainProb) && d.size > 1 {
				// Intra-domain link.
				var q int32
				if rng.Bool(cfg.URLLocalityProb) {
					// Lexicographic locality: geometric offset from p
					// within the domain's contiguous ID range.
					off := 1
					for rng.Bool(0.6) && off < d.size {
						off++
					}
					if rng.Bool(0.5) {
						off = -off
					}
					q = pid + int32(off)
					if q < d.firstPID || q >= d.firstPID+int32(d.size) {
						q = d.firstPID + int32(rng.Intn(d.size))
					}
				} else {
					q = d.firstPID + int32(rng.Intn(d.size))
				}
				addEdge(pid, q)
			} else {
				addEdge(pid, samplePref())
			}
		}
	}
	return b
}

// wireScenarios adds the deterministic link structure each Table 3 query
// relies on. Everything here uses its own RNG stream so the base graph
// is unaffected by scenario tweaks.
func wireScenarios(cfg Config, domains []domainSpec, pages []webgraph.PageMeta, b *webgraph.Builder, rng *randutil.RNG) {
	n := len(pages)
	hasTerm := func(p int32, term string) bool {
		for _, t := range pages[p].Terms {
			if t == term {
				return true
			}
		}
		return false
	}
	domainRange := map[string][2]int32{}
	for _, d := range domains {
		domainRange[d.name] = [2]int32{d.firstPID, d.firstPID + int32(d.size)}
	}
	randIn := func(dom string) int32 {
		r := domainRange[dom]
		return r[0] + int32(rng.Intn(int(r[1]-r[0])))
	}
	var eduDomains []string
	for _, d := range domains {
		if d.tld == "edu" {
			eduDomains = append(eduDomains, d.name)
		}
	}

	comics := Comics()
	for p := int32(0); p < int32(n); p++ {
		dom := pages[p].Domain
		// Q1: stanford mobile-networking pages cite other .edu domains.
		if dom == "stanford.edu" && hasTerm(p, PhraseMobileNetworking) {
			k := 1 + rng.Intn(4)
			for j := 0; j < k; j++ {
				other := eduDomains[rng.Intn(len(eduDomains))]
				if other != "stanford.edu" {
					b.AddEdge(p, randIn(other))
				}
			}
		}
		// Q2: university pages that mention ≥2 comic words link to the
		// comic's site most of the time.
		if dom == "stanford.edu" {
			for _, c := range comics {
				cnt := 0
				for _, w := range c.Words {
					if hasTerm(p, w) {
						cnt++
					}
				}
				if cnt >= 2 && rng.Bool(0.7) {
					b.AddEdge(p, randIn(c.Site))
				}
			}
		}
		// Q4: quantum-cryptography pages at universities attract
		// external in-links (popularity signal).
		if hasTerm(p, PhraseQuantumCryptography) {
			for _, u := range Universities() {
				if dom == u {
					k := rng.Intn(12)
					for j := 0; j < k; j++ {
						src := int32(rng.Intn(n))
						if pages[src].Domain != dom {
							b.AddEdge(src, p)
						}
					}
				}
			}
		}
		// Q5: computer-music pages cite each other (intra-topic links).
		if hasTerm(p, PhraseComputerMusic) && rng.Bool(0.5) {
			// Link to another page with the phrase found by scanning a
			// window (cheap and deterministic).
			for probe := 0; probe < 50; probe++ {
				q := int32(rng.Intn(n))
				if q != p && hasTerm(q, PhraseComputerMusic) {
					b.AddEdge(p, q)
					break
				}
			}
		}
		// Q6: optical-interferometry pages at stanford AND berkeley
		// point into a shared pool of external pages.
		if hasTerm(p, PhraseOpticalInterferometry) &&
			(dom == "stanford.edu" || dom == "berkeley.edu") {
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				// Deterministic shared pool: pages of mit.edu act as the
				// common targets both universities cite.
				b.AddEdge(p, randIn("mit.edu"))
			}
		}
	}
}

// Prefix returns a crawl over the first n pages in crawl order, with
// edges to and from dropped pages removed — the paper's methodology for
// deriving smaller data sets from one crawl (§4, citing Najork &
// Wiener). Retained pages are renumbered in (domain, URL) order (i.e.
// ascending original ID); the result's Order holds the corresponding
// crawl sequence over the new IDs, which is also the physical layout
// order a repository stores pages in.
func (c *Crawl) Prefix(n int) *Crawl {
	full := c.Corpus
	if n >= full.Graph.NumPages() {
		return c
	}
	keep := make([]int32, 0, n)
	for _, pid := range c.Order[:n] {
		keep = append(keep, pid)
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	newID := make(map[int32]int32, n)
	for i, pid := range keep {
		newID[pid] = int32(i)
	}
	b := webgraph.NewBuilder(n)
	pages := make([]webgraph.PageMeta, n)
	for i, pid := range keep {
		pages[i] = full.Pages[pid]
		for _, q := range full.Graph.Out(pid) {
			if nq, ok := newID[q]; ok {
				b.AddEdge(int32(i), nq)
			}
		}
	}
	order := make([]int32, 0, n)
	for _, pid := range c.Order[:n] {
		order = append(order, newID[pid])
	}
	return &Crawl{
		Corpus: &webgraph.Corpus{Graph: b.Build(), Pages: pages},
		Order:  order,
	}
}
