package synth

import (
	"sort"
	"strings"
	"testing"

	"snode/internal/urlutil"
)

// genOnce caches one 20k-page crawl across tests in this package.
var testCrawl *Crawl

func getCrawl(t testing.TB) *Crawl {
	t.Helper()
	if testCrawl == nil {
		c, err := Generate(DefaultConfig(20000))
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		testCrawl = c
	}
	return testCrawl
}

func TestGenerateBasicShape(t *testing.T) {
	c := getCrawl(t)
	g := c.Corpus.Graph
	if g.NumPages() != 20000 {
		t.Fatalf("NumPages = %d", g.NumPages())
	}
	avg := g.AvgOutDegree()
	if avg < 8 || avg > 22 {
		t.Fatalf("AvgOutDegree = %f, want near 14", avg)
	}
	if err := c.Corpus.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Corpus.Graph.Equal(b.Corpus.Graph) {
		t.Fatal("same seed produced different graphs")
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("crawl order diverges at %d", i)
		}
	}
	cfg := DefaultConfig(2000)
	cfg.Seed++
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Corpus.Graph.Equal(c.Corpus.Graph) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateRejectsTinyConfigs(t *testing.T) {
	if _, err := Generate(DefaultConfig(10)); err == nil {
		t.Fatal("tiny corpus accepted")
	}
	cfg := DefaultConfig(1000)
	cfg.MeanOutDegree = 0.5
	if _, err := Generate(cfg); err == nil {
		t.Fatal("bad mean out-degree accepted")
	}
}

func TestPagesSortedByDomainThenURL(t *testing.T) {
	c := getCrawl(t)
	pages := c.Corpus.Pages
	for i := 1; i < len(pages); i++ {
		a, b := pages[i-1], pages[i]
		if a.Domain > b.Domain {
			t.Fatalf("domains out of order at %d: %s > %s", i, a.Domain, b.Domain)
		}
		if a.Domain == b.Domain && a.URL >= b.URL {
			t.Fatalf("URLs out of order at %d: %s >= %s", i, a.URL, b.URL)
		}
	}
}

func TestDomainsContiguous(t *testing.T) {
	c := getCrawl(t)
	seen := map[string]bool{}
	prev := ""
	for _, p := range c.Corpus.Pages {
		if p.Domain != prev {
			if seen[p.Domain] {
				t.Fatalf("domain %s appears in two runs", p.Domain)
			}
			seen[p.Domain] = true
			prev = p.Domain
		}
	}
}

func TestScenarioDomainsExist(t *testing.T) {
	c := getCrawl(t)
	want := map[string]int{}
	for _, u := range Universities() {
		want[u] = 0
	}
	for _, cs := range Comics() {
		want[cs.Site] = 0
	}
	for _, p := range c.Corpus.Pages {
		if _, ok := want[p.Domain]; ok {
			want[p.Domain]++
		}
	}
	for d, n := range want {
		if n == 0 {
			t.Errorf("scenario domain %s has no pages", d)
		}
	}
	// Universities must be much larger than comic sites.
	if want["stanford.edu"] < 10*want["dilbert.com"] {
		t.Errorf("stanford=%d not much larger than dilbert=%d",
			want["stanford.edu"], want["dilbert.com"])
	}
}

func TestMetadataDomainMatchesURL(t *testing.T) {
	c := getCrawl(t)
	for i, p := range c.Corpus.Pages {
		if got := urlutil.Domain(p.URL); got != p.Domain {
			t.Fatalf("page %d: Domain field %q but URL %q implies %q",
				i, p.Domain, p.URL, got)
		}
	}
}

func TestIntraDomainLocality(t *testing.T) {
	c := getCrawl(t)
	g := c.Corpus.Graph
	pages := c.Corpus.Pages
	var intra, total int64
	for p := int32(0); int(p) < g.NumPages(); p++ {
		for _, q := range g.Out(p) {
			if pages[p].Domain == pages[q].Domain {
				intra++
			}
			total++
		}
	}
	frac := float64(intra) / float64(total)
	// Configured at 0.75; copying and scenario wiring shift it a bit.
	if frac < 0.55 || frac > 0.92 {
		t.Fatalf("intra-domain link fraction = %f, want ~0.75", frac)
	}
}

func TestLinkCopyingCreatesSimilarLists(t *testing.T) {
	// Observation 1: there must exist many page pairs with highly
	// overlapping adjacency lists. Count pages whose previous page (in
	// URL order, same domain) shares >= 50% of its targets.
	c := getCrawl(t)
	g := c.Corpus.Graph
	pages := c.Corpus.Pages
	similar := 0
	candidates := 0
	for p := 1; p < g.NumPages(); p++ {
		if pages[p].Domain != pages[p-1].Domain {
			continue
		}
		a, b := g.Out(int32(p)), g.Out(int32(p-1))
		if len(a) < 4 || len(b) < 4 {
			continue
		}
		candidates++
		shared := 0
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] == b[j]:
				shared++
				i++
				j++
			case a[i] < b[j]:
				i++
			default:
				j++
			}
		}
		if float64(shared) >= 0.3*float64(len(a)) {
			similar++
		}
	}
	if candidates == 0 {
		t.Fatal("no candidate pairs")
	}
	frac := float64(similar) / float64(candidates)
	if frac < 0.05 {
		t.Fatalf("similar-adjacency fraction = %f, link copying absent", frac)
	}
}

func TestScenarioPhrasesPresent(t *testing.T) {
	c := getCrawl(t)
	counts := map[string]int{}
	stanfordMobile := 0
	for _, p := range c.Corpus.Pages {
		for _, term := range p.Terms {
			for _, ph := range []string{
				PhraseMobileNetworking, PhraseInternetCensorship,
				PhraseQuantumCryptography, PhraseComputerMusic,
				PhraseOpticalInterferometry,
			} {
				if term == ph {
					counts[ph]++
					if ph == PhraseMobileNetworking && p.Domain == "stanford.edu" {
						stanfordMobile++
					}
				}
			}
		}
	}
	for ph, n := range counts {
		if n < 5 {
			t.Errorf("phrase %s on only %d pages", ph, n)
		}
	}
	if stanfordMobile == 0 {
		t.Error("no stanford.edu pages mention mobile_networking (Q1 would be empty)")
	}
}

func TestComicWordPagesExistAtStanford(t *testing.T) {
	c := getCrawl(t)
	found := 0
	for _, p := range c.Corpus.Pages {
		if p.Domain != "stanford.edu" {
			continue
		}
		for _, comic := range Comics() {
			n := 0
			for _, w := range comic.Words {
				for _, t := range p.Terms {
					if t == w {
						n++
						break
					}
				}
			}
			if n >= 2 {
				found++
			}
		}
	}
	if found == 0 {
		t.Fatal("no stanford pages with >=2 comic words (Q2 would be empty)")
	}
}

func TestCrawlOrderIsPermutation(t *testing.T) {
	c := getCrawl(t)
	n := c.Corpus.Graph.NumPages()
	if len(c.Order) != n {
		t.Fatalf("order length %d != %d", len(c.Order), n)
	}
	seen := make([]bool, n)
	for _, pid := range c.Order {
		if pid < 0 || int(pid) >= n || seen[pid] {
			t.Fatalf("bad crawl order entry %d", pid)
		}
		seen[pid] = true
	}
}

func TestCrawlOrderDiscoversDomainsSublinearly(t *testing.T) {
	c := getCrawl(t)
	pages := c.Corpus.Pages
	distinctAt := func(n int) int {
		set := map[string]bool{}
		for _, pid := range c.Order[:n] {
			set[pages[pid].Domain] = true
		}
		return len(set)
	}
	n := len(c.Order)
	tenth := distinctAt(n / 10)
	half := distinctAt(n / 2)
	full := distinctAt(n)
	// Discovery must be front-loaded: the first half of the crawl holds
	// clearly more than half the domains, and the first tenth already a
	// fifth of them.
	if float64(half) < 0.52*float64(full) {
		t.Fatalf("domain discovery not front-loaded: %d at half vs %d total", half, full)
	}
	if float64(tenth) < 0.15*float64(full) {
		t.Fatalf("early discovery too slow: %d at tenth vs %d total", tenth, full)
	}
}

func TestPrefixSubsetsNestAndValidate(t *testing.T) {
	c := getCrawl(t)
	p1 := c.Prefix(5000).Corpus
	p2 := c.Prefix(10000).Corpus
	if p1.Graph.NumPages() != 5000 || p2.Graph.NumPages() != 10000 {
		t.Fatal("prefix sizes wrong")
	}
	if err := p1.Validate(); err != nil {
		t.Fatalf("prefix validate: %v", err)
	}
	// URL sets nest.
	urls1 := map[string]bool{}
	for _, p := range p1.Pages {
		urls1[p.URL] = true
	}
	found := 0
	for _, p := range p2.Pages {
		if urls1[p.URL] {
			found++
		}
	}
	if found != 5000 {
		t.Fatalf("prefixes do not nest: %d of 5000 found", found)
	}
	// Prefix pages remain sorted by (domain, URL).
	if !sort.SliceIsSorted(p1.Pages, func(i, j int) bool {
		a, b := p1.Pages[i], p1.Pages[j]
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		return a.URL < b.URL
	}) {
		t.Fatal("prefix pages not sorted")
	}
}

func TestPrefixFullIsIdentity(t *testing.T) {
	c := getCrawl(t)
	p := c.Prefix(c.Corpus.Graph.NumPages() + 10)
	if p != c {
		t.Fatal("over-length prefix should return the full crawl")
	}
}

func TestPrefixPreservesEdgesAmongKeptPages(t *testing.T) {
	c := getCrawl(t)
	n := 5000
	p := c.Prefix(n).Corpus
	// Map prefix IDs back to original IDs via URL.
	urlToOrig := map[string]int32{}
	for pid, meta := range c.Corpus.Pages {
		urlToOrig[meta.URL] = int32(pid)
	}
	for newP := 0; newP < 200; newP++ { // spot-check a sample
		origP := urlToOrig[p.Pages[newP].URL]
		// Every prefix edge must exist in the full graph.
		for _, newQ := range p.Graph.Out(int32(newP)) {
			origQ := urlToOrig[p.Pages[newQ].URL]
			if !c.Corpus.Graph.HasEdge(origP, origQ) {
				t.Fatalf("prefix edge %d->%d absent from full graph", origP, origQ)
			}
		}
	}
}

func TestURLsParseable(t *testing.T) {
	c := getCrawl(t)
	for _, p := range c.Corpus.Pages[:2000] {
		if !strings.HasPrefix(p.URL, "http://") {
			t.Fatalf("URL %q lacks scheme", p.URL)
		}
		if urlutil.PathDepth(p.URL) > 4 {
			t.Fatalf("URL %q too deep", p.URL)
		}
	}
}
