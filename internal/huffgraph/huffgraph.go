// Package huffgraph implements the paper's "plain Huffman"
// representation baseline (§4): every page receives a canonical Huffman
// code based on its in-degree — pages that appear often in adjacency
// lists get short codes — and each adjacency list is stored as a
// gamma-coded degree followed by the Huffman codes of its targets. A
// per-page bit-offset array provides random access.
//
// The representation is memory-resident (the paper's Table 2 measures
// its in-memory decode speed; Table 1 notes it stops fitting in memory
// long before the compressed schemes do).
package huffgraph

import (
	"fmt"
	"sort"

	"snode/internal/bitio"
	"snode/internal/coding"
	"snode/internal/store"
	"snode/internal/webgraph"
)

// Rep is a built plain-Huffman representation.
type Rep struct {
	n       int
	edges   int64
	huff    *coding.Huffman
	bits    []byte
	bitLen  int
	offsets []int64 // bit offset of each page's list
	domains store.DomainRanges
	pages   []webgraph.PageMeta
	stats   store.AccessStats
}

// Build constructs the representation from a corpus.
func Build(c *webgraph.Corpus) (*Rep, error) {
	g := c.Graph
	n := g.NumPages()
	inDeg := g.InDegrees()
	freqs := make([]int64, n)
	for i, d := range inDeg {
		freqs[i] = int64(d) + 1 // smoothing: every page gets a code
	}
	huff, err := coding.NewHuffman(freqs)
	if err != nil {
		return nil, fmt.Errorf("huffgraph: %w", err)
	}
	w := bitio.NewWriter(1 << 20)
	offsets := make([]int64, n+1)
	for p := 0; p < n; p++ {
		offsets[p] = int64(w.BitLen())
		adj := g.Out(webgraph.PageID(p))
		coding.WriteGamma0(w, uint64(len(adj)))
		for _, t := range adj {
			huff.Encode(w, t)
		}
	}
	offsets[n] = int64(w.BitLen())
	return &Rep{
		n:       n,
		edges:   g.NumEdges(),
		huff:    huff,
		bits:    w.Bytes(),
		bitLen:  w.BitLen(),
		offsets: offsets,
		domains: store.NewDomainRanges(c.Pages),
		pages:   c.Pages,
	}, nil
}

// Name implements store.LinkStore.
func (r *Rep) Name() string { return "huffman" }

// NumPages implements store.LinkStore.
func (r *Rep) NumPages() int { return r.n }

// Out implements store.LinkStore.
func (r *Rep) Out(p webgraph.PageID, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	return r.OutFiltered(p, nil, buf)
}

// OutFiltered implements store.LinkStore; the whole list must be
// decoded regardless of the filter (no structural skipping is possible
// in a flat representation).
func (r *Rep) OutFiltered(p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	if p < 0 || int(p) >= r.n {
		return buf, fmt.Errorf("huffgraph: page %d out of range", p)
	}
	rd := bitio.NewReader(r.bits, r.bitLen)
	if err := rd.Seek(int(r.offsets[p])); err != nil {
		return buf, err
	}
	deg, err := coding.ReadGamma0(rd)
	if err != nil {
		return buf, err
	}
	for k := uint64(0); k < deg; k++ {
		t, err := r.huff.Decode(rd)
		if err != nil {
			return buf, err
		}
		if store.FilterAccepts(f, t, r.domains, r.domainOf) {
			buf = append(buf, t)
		}
	}
	return buf, nil
}

func (r *Rep) domainOf(p webgraph.PageID) string { return r.pages[p].Domain }

// Stats implements store.LinkStore (no disk I/O: memory resident).
func (r *Rep) Stats() store.AccessStats { return r.stats }

// ResetStats implements store.LinkStore.
func (r *Rep) ResetStats() { r.stats = store.AccessStats{} }

// Close implements store.LinkStore.
func (r *Rep) Close() error { return nil }

// SizeBytes implements store.Sized: the bit stream, the per-page offset
// array, and the domain index. (The Huffman code tables are counted via
// a canonical-code-lengths estimate: one byte per page.)
func (r *Rep) SizeBytes() int64 {
	return int64(len(r.bits)) + 8*int64(len(r.offsets)) + int64(r.n) + r.domains.SizeBytes()
}

// CodeLenHistogram summarizes assigned code lengths (diagnostics).
func (r *Rep) CodeLenHistogram() map[int]int {
	h := map[int]int{}
	for s := 0; s < r.n; s++ {
		h[r.huff.CodeLen(int32(s))]++
	}
	return h
}

// SortedDomains lists the indexed domains (diagnostics, tests).
func (r *Rep) SortedDomains() []string {
	var out []string
	for d := range r.domains {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
