package huffgraph

import (
	"sort"
	"testing"

	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

func buildSmall(t testing.TB) (*webgraph.Corpus, *Rep) {
	t.Helper()
	crawl, err := synth.Generate(synth.DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Build(crawl.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	return crawl.Corpus, r
}

func TestRoundTrip(t *testing.T) {
	c, r := buildSmall(t)
	var buf []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p++ {
		var err error
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			t.Fatalf("Out(%d): %v", p, err)
		}
		got := append([]webgraph.PageID(nil), buf...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := c.Graph.Out(p)
		if len(got) != len(want) {
			t.Fatalf("page %d: %d targets, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("page %d mismatch at %d", p, i)
			}
		}
	}
}

func TestHighInDegreeGetsShortCode(t *testing.T) {
	// The §4 description: pages with higher in-degree get smaller codes.
	c, r := buildSmall(t)
	deg := c.Graph.InDegrees()
	hi, lo := int32(0), int32(0)
	for p := int32(1); int(p) < len(deg); p++ {
		if deg[p] > deg[hi] {
			hi = p
		}
		if deg[p] < deg[lo] {
			lo = p
		}
	}
	if deg[hi] <= deg[lo] {
		t.Skip("degenerate degree distribution")
	}
	if r.huff.CodeLen(hi) > r.huff.CodeLen(lo) {
		t.Fatalf("in-degree %d page has %d-bit code, in-degree %d page has %d-bit code",
			deg[hi], r.huff.CodeLen(hi), deg[lo], r.huff.CodeLen(lo))
	}
}

func TestCompressionBeatsRawPointers(t *testing.T) {
	c, r := buildSmall(t)
	bpe := store.BitsPerEdge(r, c.Graph.NumEdges())
	if bpe >= 32 {
		t.Fatalf("bits/edge = %.1f, not better than raw 32-bit IDs", bpe)
	}
}

func TestOutOfRange(t *testing.T) {
	_, r := buildSmall(t)
	if _, err := r.Out(-1, nil); err == nil {
		t.Fatal("negative page accepted")
	}
	if _, err := r.Out(webgraph.PageID(r.NumPages()), nil); err == nil {
		t.Fatal("past-end page accepted")
	}
}

func TestFilteredOut(t *testing.T) {
	c, r := buildSmall(t)
	f := &store.Filter{Domains: map[string]bool{"stanford.edu": true}}
	var buf []webgraph.PageID
	for p := int32(0); p < 200; p++ {
		var err error
		buf, err = r.OutFiltered(p, f, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range buf {
			if c.Pages[q].Domain != "stanford.edu" {
				t.Fatalf("filter leaked %s", c.Pages[q].Domain)
			}
		}
	}
}

func TestCodeLenHistogram(t *testing.T) {
	_, r := buildSmall(t)
	h := r.CodeLenHistogram()
	total := 0
	for l, n := range h {
		if l <= 0 {
			t.Fatalf("zero-length code in histogram")
		}
		total += n
	}
	if total != r.NumPages() {
		t.Fatalf("histogram covers %d of %d pages", total, r.NumPages())
	}
	if len(r.SortedDomains()) == 0 {
		t.Fatal("no domains indexed")
	}
}
