package repo

import (
	"testing"

	"snode/internal/synth"
)

func TestBuildAllSchemes(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(t.TempDir())
	opt.Layout = crawl.Order
	r, err := Build(crawl.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, s := range AllSchemes() {
		if _, ok := r.Fwd[s]; !ok {
			t.Errorf("forward %s missing", s)
		}
		if _, ok := r.Rev[s]; !ok {
			t.Errorf("reverse %s missing", s)
		}
	}
	if r.SNodeStats == nil {
		t.Error("S-Node build stats missing")
	}
	if r.Text.NumTerms() == 0 {
		t.Error("text index empty")
	}
	if len(r.PageRank) != crawl.Corpus.Graph.NumPages() {
		t.Error("pagerank length mismatch")
	}
	// Normalized PageRank has max 1.
	var max float64
	for _, v := range r.PageRank {
		if v > max {
			max = v
		}
	}
	if max != 1.0 {
		t.Errorf("PageRank max = %f, want 1", max)
	}
}

func TestBuildSubset(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(1500))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(t.TempDir())
	opt.Schemes = []string{SchemeSNode}
	opt.Transpose = false
	r, err := Build(crawl.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if len(r.Fwd) != 1 || len(r.Rev) != 0 {
		t.Fatalf("fwd=%d rev=%d", len(r.Fwd), len(r.Rev))
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(crawl.Corpus, Options{}); err == nil {
		t.Fatal("empty Dir accepted")
	}
	opt := DefaultOptions(t.TempDir())
	opt.Schemes = []string{"bogus"}
	if _, err := Build(crawl.Corpus, opt); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestEduDomains(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(1500))
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(t.TempDir())
	opt.Schemes = []string{SchemeHuffman}
	opt.Transpose = false
	r, err := Build(crawl.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	edu := r.EduDomains("stanford.edu")
	if edu["stanford.edu"] {
		t.Fatal("excluded domain present")
	}
	if !edu["berkeley.edu"] {
		t.Fatal("berkeley.edu missing")
	}
	for d := range edu {
		if len(d) < 5 || d[len(d)-4:] != ".edu" {
			t.Fatalf("non-edu domain %q", d)
		}
	}
}
