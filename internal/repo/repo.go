// Package repo assembles a complete Web repository in the paper's
// sense: a corpus (pages + Web graph), the basic indexes (text index,
// PageRank, domain index), and one or more graph representations of WG
// and its transpose WGT, each built on disk under a workspace
// directory. The benchmark harness and the example programs drive
// everything through this facade.
package repo

import (
	"fmt"
	"os"
	"path/filepath"

	"snode/internal/dbstore"
	"snode/internal/flatfile"
	"snode/internal/huffgraph"
	"snode/internal/iosim"
	"snode/internal/link3"
	"snode/internal/pagerank"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/textindex"
	"snode/internal/webgraph"
)

// Scheme names accepted in Options.Schemes.
const (
	SchemeSNode   = "snode"
	SchemeHuffman = "huffman"
	SchemeLink3   = "link3"
	SchemeDB      = "db"
	SchemeFiles   = "files"
)

// AllSchemes lists every representation, in the paper's Figure 11
// display order plus the in-memory Huffman baseline.
func AllSchemes() []string {
	return []string{SchemeFiles, SchemeDB, SchemeLink3, SchemeSNode, SchemeHuffman}
}

// Options controls repository construction.
type Options struct {
	// Dir is the workspace; subdirectories are created per scheme.
	Dir string
	// Schemes selects which representations to build (nil = all).
	Schemes []string
	// CacheBudget is the per-representation memory budget (the paper's
	// 325 MB, scaled down).
	CacheBudget int64
	// Model is the simulated disk.
	Model iosim.Model
	// SNode configures the S-Node build.
	SNode snode.Config
	// Transpose also builds every scheme over WGT (needed by queries
	// with in-neighborhood navigation and by Table 1's WGT column).
	Transpose bool
	// Layout is the physical storage order for the flat schemes
	// (uncompressed files and the relational heap) — the crawl order,
	// in a real repository. nil stores in page-ID order, which would
	// unrealistically gift those schemes the S-Node clustering
	// property.
	Layout []webgraph.PageID
}

// DefaultOptions returns standard settings rooted at dir.
func DefaultOptions(dir string) Options {
	return Options{
		Dir:         dir,
		CacheBudget: 16 << 20,
		Model:       iosim.Model2002(),
		SNode:       snode.DefaultConfig(),
		Transpose:   true,
	}
}

// Repository is a fully built, queryable Web repository.
type Repository struct {
	Corpus   *webgraph.Corpus
	Text     *textindex.Index
	PageRank []float64 // normalized to max 1
	Domains  store.DomainRanges
	Model    iosim.Model

	// Fwd and Rev map scheme name → representation of WG and WGT.
	Fwd map[string]store.LinkStore
	Rev map[string]store.LinkStore

	// SNodeStats carries the S-Node build statistics when built.
	SNodeStats *snode.BuildStats
}

// Build constructs the repository.
func Build(c *webgraph.Corpus, opt Options) (*Repository, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("repo: Options.Dir required")
	}
	schemes := opt.Schemes
	if schemes == nil {
		schemes = AllSchemes()
	}
	r := &Repository{
		Corpus:   c,
		Text:     textindex.Build(c.Pages),
		PageRank: pagerank.Normalize(pagerank.Compute(c.Graph, pagerank.DefaultConfig())),
		Domains:  store.NewDomainRanges(c.Pages),
		Model:    opt.Model,
		Fwd:      map[string]store.LinkStore{},
		Rev:      map[string]store.LinkStore{},
	}
	fwd := c
	var rev *webgraph.Corpus
	if opt.Transpose {
		rev = &webgraph.Corpus{Graph: c.Graph.Transpose(), Pages: c.Pages}
	}
	for _, scheme := range schemes {
		s, err := buildOne(fwd, scheme, filepath.Join(opt.Dir, scheme+".fwd"), opt, r)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("repo: build %s: %w", scheme, err)
		}
		r.Fwd[scheme] = s
		if rev != nil {
			s, err := buildOne(rev, scheme, filepath.Join(opt.Dir, scheme+".rev"), opt, nil)
			if err != nil {
				r.Close()
				return nil, fmt.Errorf("repo: build %s transpose: %w", scheme, err)
			}
			r.Rev[scheme] = s
		}
	}
	return r, nil
}

// buildOne builds and opens one representation of the given corpus in
// dir. When rep != nil and the scheme is S-Node, build stats are stored.
func buildOne(c *webgraph.Corpus, scheme, dir string, opt Options, rep *Repository) (store.LinkStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	switch scheme {
	case SchemeSNode:
		st, err := snode.Build(c, opt.SNode, dir)
		if err != nil {
			return nil, err
		}
		if rep != nil {
			rep.SNodeStats = st
		}
		return snode.Open(dir, opt.CacheBudget, opt.Model)
	case SchemeHuffman:
		return huffgraph.Build(c)
	case SchemeLink3:
		if err := link3.Build(c, dir); err != nil {
			return nil, err
		}
		return link3.Open(c, dir, opt.CacheBudget, opt.Model)
	case SchemeDB:
		if err := dbstore.Build(c, dir, opt.Layout); err != nil {
			return nil, err
		}
		return dbstore.Open(c, dir, opt.CacheBudget, opt.Model)
	case SchemeFiles:
		if err := flatfile.Build(c, dir, opt.Layout); err != nil {
			return nil, err
		}
		return flatfile.Open(c, dir, opt.Layout, opt.CacheBudget, opt.Model)
	}
	return nil, fmt.Errorf("repo: unknown scheme %q", scheme)
}

// Close releases every representation.
func (r *Repository) Close() error {
	var first error
	for _, m := range []map[string]store.LinkStore{r.Fwd, r.Rev} {
		for _, s := range m {
			if err := s.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// DomainOf returns a page's registered domain.
func (r *Repository) DomainOf(p webgraph.PageID) string {
	return r.Corpus.Pages[p].Domain
}

// EduDomains lists the ".edu" domains in the corpus (Query 1's target
// set), optionally excluding one.
func (r *Repository) EduDomains(exclude string) map[string]bool {
	out := map[string]bool{}
	for d := range r.Domains {
		if d != exclude && len(d) > 4 && d[len(d)-4:] == ".edu" {
			out[d] = true
		}
	}
	return out
}
