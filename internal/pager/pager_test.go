package pager

import (
	"encoding/binary"
	"path/filepath"
	"sync"
	"testing"

	"snode/internal/iosim"
)

func TestBuildAndReadBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.dat")
	p := Create(path)
	for i := 0; i < 10; i++ {
		no, pg, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if no != int64(i) {
			t.Fatalf("Alloc returned %d, want %d", no, i)
		}
		binary.LittleEndian.PutUint64(pg, uint64(i*1000))
	}
	// Pages are readable (and writable) before Close.
	pg, err := p.Page(3)
	if err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(pg) != 3000 {
		t.Fatal("build-mode read mismatch")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	acc := iosim.NewAccountant(iosim.Model2002())
	r, err := OpenReadOnly(path, acc, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.NumPages() != 10 {
		t.Fatalf("NumPages = %d", r.NumPages())
	}
	for i := 9; i >= 0; i-- {
		pg, err := r.Page(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint64(pg) != uint64(i*1000) {
			t.Fatalf("page %d content mismatch", i)
		}
	}
	if r.Loads() != 10 {
		t.Fatalf("Loads = %d, want 10 cold misses", r.Loads())
	}
	// Re-reading a recent page hits the pool.
	before := r.Loads()
	if _, err := r.Page(0); err != nil {
		t.Fatal(err)
	}
	if r.Loads() != before {
		t.Fatal("pool did not cache")
	}
}

func TestPoolEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.dat")
	p := Create(path)
	for i := 0; i < 8; i++ {
		if _, _, err := p.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	acc := iosim.NewAccountant(iosim.Model2002())
	r, err := OpenReadOnly(path, acc, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Cycle through more pages than frames: every access misses.
	for round := 0; round < 2; round++ {
		for i := 0; i < 4; i++ {
			if _, err := r.Page(int64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if r.Loads() < 6 {
		t.Fatalf("expected thrashing with 2 frames, loads = %d", r.Loads())
	}
}

func TestReadOnlyRejectsAlloc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.dat")
	p := Create(path)
	if _, _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	acc := iosim.NewAccountant(iosim.Model2002())
	r, err := OpenReadOnly(path, acc, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Alloc(); err != ErrReadOnly {
		t.Fatalf("Alloc on read-only: %v", err)
	}
}

func TestPageOutOfRange(t *testing.T) {
	p := Create(filepath.Join(t.TempDir(), "p.dat"))
	if _, err := p.Page(0); err == nil {
		t.Fatal("empty pager served page 0")
	}
}

// TestConcurrentReaders hammers one read-only pager from many
// goroutines with a pool far smaller than the file, so cache hits,
// misses, evictions, and counter reads all interleave. Run under
// -race via make test-race; content checks catch frame mix-ups.
func TestConcurrentReaders(t *testing.T) {
	const pages = 64
	path := filepath.Join(t.TempDir(), "p.dat")
	p := Create(path)
	for i := 0; i < pages; i++ {
		_, pg, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(pg, uint64(i*1000))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	acc := iosim.NewAccountant(iosim.Model2002())
	r, err := OpenReadOnly(path, acc, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				no := int64((g*131 + i*17) % pages)
				pg, err := r.Page(no)
				if err != nil {
					t.Errorf("goroutine %d: Page(%d): %v", g, no, err)
					return
				}
				if got := binary.LittleEndian.Uint64(pg); got != uint64(no*1000) {
					t.Errorf("goroutine %d: page %d holds %d", g, no, got)
					return
				}
				if i%64 == 0 {
					_ = r.Loads()
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Loads() < pages {
		t.Fatalf("Loads = %d, want at least one miss per page", r.Loads())
	}
}
