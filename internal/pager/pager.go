// Package pager provides fixed-size page storage with two modes:
//
//   - build mode: pages live in memory and are flushed to disk on
//     Close, which is how the relational baseline's heap file and
//     B+tree are constructed (builds are not part of the measured
//     experiments);
//   - read-only mode: pages are demand-loaded through an LRU buffer
//     pool whose reads are accounted by the iosim disk model, which is
//     the access path Figure 11's "DB" bars measure.
package pager

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"sync"

	"snode/internal/iosim"
)

// PageSize is the fixed page size, matching PostgreSQL's default.
const PageSize = 8192

// ErrReadOnly is returned on writes to a read-only pager.
var ErrReadOnly = errors.New("pager: read-only")

// Pager is a page file. Read-only pagers are safe for concurrent use:
// the buffer pool is guarded by a mutex (every lookup mutates LRU
// order, so even pure reads need it), and returned page buffers are
// private immutable copies that stay valid after eviction. Build mode
// is single-goroutine, like every other builder in this repository.
type Pager struct {
	// build mode
	path    string
	mem     [][]byte
	builder bool

	// read-only mode; mu guards the pool (frames, lru, maxFr, loads).
	mu     sync.Mutex
	file   *iosim.File
	nPages int64
	frames map[int64]*list.Element
	lru    *list.List
	maxFr  int
	loads  int64
}

type frame struct {
	no   int64
	data []byte
}

// Create opens a new page file in build mode. The file is written on
// Close.
func Create(path string) *Pager {
	return &Pager{path: path, builder: true}
}

// Alloc appends a zeroed page and returns its number and buffer. Build
// mode only; the buffer stays valid and writable until Close.
func (p *Pager) Alloc() (int64, []byte, error) {
	if !p.builder {
		return 0, nil, ErrReadOnly
	}
	buf := make([]byte, PageSize)
	p.mem = append(p.mem, buf)
	return int64(len(p.mem) - 1), buf, nil
}

// Page returns the buffer of an existing page. In build mode it is
// writable; in read-only mode it comes from the buffer pool, must not
// be written, and stays valid even after eviction (frames are private
// copies, never recycled).
func (p *Pager) Page(no int64) ([]byte, error) {
	if p.builder {
		if no < 0 || no >= int64(len(p.mem)) {
			return nil, fmt.Errorf("pager: page %d out of range", no)
		}
		return p.mem[no], nil
	}
	if no < 0 || no >= p.nPages {
		return nil, fmt.Errorf("pager: page %d out of range", no)
	}
	// The lock covers the miss I/O too: concurrent misses on one pager
	// serialize, which keeps the pool and the load accounting exact.
	// (The concurrent serving path overlaps streams across stores, not
	// within one pager.)
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.frames[no]; ok {
		p.lru.MoveToFront(el)
		return el.Value.(*frame).data, nil
	}
	data := make([]byte, PageSize)
	if _, err := p.file.ReadAt(data, no*PageSize); err != nil {
		return nil, err
	}
	p.loads++
	for p.lru.Len() >= p.maxFr && p.lru.Len() > 0 {
		back := p.lru.Back()
		p.lru.Remove(back)
		delete(p.frames, back.Value.(*frame).no)
	}
	el := p.lru.PushFront(&frame{no: no, data: data})
	p.frames[no] = el
	return data, nil
}

// NumPages reports the number of allocated pages.
func (p *Pager) NumPages() int64 {
	if p.builder {
		return int64(len(p.mem))
	}
	return p.nPages
}

// Loads reports buffer-pool misses (read-only mode).
func (p *Pager) Loads() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loads
}

// ResetLoads zeroes the miss counter without disturbing the pool.
func (p *Pager) ResetLoads() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.loads = 0
}

// ResetPool empties the buffer pool and optionally resizes it.
func (p *Pager) ResetPool(maxFrames int) {
	if p.builder {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if maxFrames > 0 {
		p.maxFr = maxFrames
	}
	p.frames = map[int64]*list.Element{}
	p.lru.Init()
	p.loads = 0
}

// Close flushes (build mode) and releases the file.
func (p *Pager) Close() error {
	if p.builder {
		f, err := os.Create(p.path)
		if err != nil {
			return err
		}
		for _, pg := range p.mem {
			if _, err := f.Write(pg); err != nil {
				f.Close()
				return err
			}
		}
		p.mem = nil
		return f.Close()
	}
	if p.file != nil {
		return p.file.Close()
	}
	return nil
}

// OpenReadOnly opens an existing page file through the accountant with
// a buffer pool of maxFrames pages.
func OpenReadOnly(path string, acc *iosim.Accountant, maxFrames int) (*Pager, error) {
	f, err := acc.Open(path)
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s size %d not page-aligned", path, size)
	}
	if maxFrames < 1 {
		maxFrames = 1
	}
	return &Pager{
		file:   f,
		nPages: size / PageSize,
		frames: map[int64]*list.Element{},
		lru:    list.New(),
		maxFr:  maxFrames,
	}, nil
}
