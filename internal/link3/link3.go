// Package link3 implements a Connectivity-Server-style "Link3"
// representation (Randall et al., the paper's strongest compression
// baseline). Pages, already numbered in URL-lexicographic order, are
// grouped into fixed-size blocks; within a block each adjacency list is
// reference-encoded against one of the previous 8 lists (delta/copy-list
// coding with gamma-coded residuals — exactly the internal/refenc window
// strategy), so blocks decode independently. Encoded blocks live on disk
// with an in-memory block directory and an LRU cache of decoded blocks,
// matching the paper's setup where Link3 keeps its indexes in memory and
// buffers file data.
//
// Unlike the S-Node scheme, Link3 is a flat representation: a filter
// cannot skip storage, and a single page access decodes its whole block.
package link3

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"snode/internal/bitio"
	"snode/internal/iosim"
	"snode/internal/refenc"
	"snode/internal/store"
	"snode/internal/webgraph"
)

// BlockSize is the number of pages per block.
const BlockSize = 256

// refWindow matches the Link Database's window of 8 previous lists.
const refWindow = 8

const (
	dataFile = "link3.dat"
	dirFile  = "link3.dir"
)

// Build writes the representation into dir.
func Build(c *webgraph.Corpus, dir string) error {
	g := c.Graph
	n := g.NumPages()
	f, err := os.Create(filepath.Join(dir, dataFile))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var offsets []int64
	var off int64
	w := bitio.NewWriter(1 << 16)
	for base := 0; base < n; base += BlockSize {
		end := base + BlockSize
		if end > n {
			end = n
		}
		lists := make([][]int32, end-base)
		for p := base; p < end; p++ {
			lists[p-base] = g.Out(webgraph.PageID(p))
		}
		w.Reset()
		if _, err := refenc.EncodeLists(w, lists, refenc.Options{Window: refWindow, TargetBound: uint64(n)}); err != nil {
			f.Close()
			return err
		}
		buf := w.Bytes()
		if _, err := bw.Write(buf); err != nil {
			f.Close()
			return err
		}
		offsets = append(offsets, off)
		off += int64(len(buf))
	}
	offsets = append(offsets, off)
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Block directory.
	df, err := os.Create(filepath.Join(dir, dirFile))
	if err != nil {
		return err
	}
	dw := bufio.NewWriter(df)
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(n))
	if _, err := dw.Write(scratch[:]); err != nil {
		df.Close()
		return err
	}
	for _, o := range offsets {
		binary.LittleEndian.PutUint64(scratch[:], uint64(o))
		if _, err := dw.Write(scratch[:]); err != nil {
			df.Close()
			return err
		}
	}
	if err := dw.Flush(); err != nil {
		df.Close()
		return err
	}
	return df.Close()
}

// Rep is an opened Link3 representation.
type Rep struct {
	n       int
	file    *iosim.File
	acc     *iosim.Accountant
	offsets []int64 // per block, plus end sentinel
	domains store.DomainRanges
	pages   []webgraph.PageMeta

	budget  int64
	used    int64
	lru     *list.List
	byBlock map[int]*list.Element
	loads   int64
	decoded int64 // edges decoded (block granularity)
	readBuf []byte
}

type blockEntry struct {
	id    int
	lists [][]int32
	size  int64
}

// Open loads the block directory and prepares the cache.
func Open(c *webgraph.Corpus, dir string, cacheBudget int64, model iosim.Model) (*Rep, error) {
	raw, err := os.ReadFile(filepath.Join(dir, dirFile))
	if err != nil {
		return nil, err
	}
	if len(raw) < 8 {
		return nil, fmt.Errorf("link3: directory truncated")
	}
	n := int(binary.LittleEndian.Uint64(raw[:8]))
	raw = raw[8:]
	nOff := len(raw) / 8
	offsets := make([]int64, nOff)
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	wantBlocks := (n + BlockSize - 1) / BlockSize
	if nOff != wantBlocks+1 {
		return nil, fmt.Errorf("link3: directory has %d offsets, want %d", nOff, wantBlocks+1)
	}
	if n != c.Graph.NumPages() {
		return nil, fmt.Errorf("link3: representation covers %d pages, corpus has %d",
			n, c.Graph.NumPages())
	}
	acc := iosim.NewAccountant(model)
	f, err := acc.Open(filepath.Join(dir, dataFile))
	if err != nil {
		return nil, err
	}
	return &Rep{
		n:       n,
		file:    f,
		acc:     acc,
		offsets: offsets,
		domains: store.NewDomainRanges(c.Pages),
		pages:   c.Pages,
		budget:  cacheBudget,
		lru:     list.New(),
		byBlock: map[int]*list.Element{},
	}, nil
}

// Name implements store.LinkStore.
func (r *Rep) Name() string { return "link3" }

// NumPages implements store.LinkStore.
func (r *Rep) NumPages() int { return r.n }

// block returns the decoded block bid, loading it if needed.
func (r *Rep) block(bid int) ([][]int32, error) {
	if el, ok := r.byBlock[bid]; ok {
		r.lru.MoveToFront(el)
		return el.Value.(*blockEntry).lists, nil
	}
	nBytes := int(r.offsets[bid+1] - r.offsets[bid])
	if cap(r.readBuf) < nBytes {
		r.readBuf = make([]byte, nBytes)
	}
	buf := r.readBuf[:nBytes]
	if _, err := r.file.ReadAt(buf, r.offsets[bid]); err != nil {
		return nil, err
	}
	nLists := BlockSize
	if (bid+1)*BlockSize > r.n {
		nLists = r.n - bid*BlockSize
	}
	lists, err := refenc.DecodeListsBounded(bitio.NewByteReader(buf), nLists, uint64(r.n))
	if err != nil {
		return nil, fmt.Errorf("link3: block %d: %w", bid, err)
	}
	r.loads++
	var size int64
	for _, l := range lists {
		size += int64(len(l))*4 + 24
		r.decoded += int64(len(l))
	}
	for r.used+size > r.budget && r.lru.Len() > 0 {
		back := r.lru.Back()
		e := back.Value.(*blockEntry)
		r.lru.Remove(back)
		delete(r.byBlock, e.id)
		r.used -= e.size
	}
	el := r.lru.PushFront(&blockEntry{id: bid, lists: lists, size: size})
	r.byBlock[bid] = el
	r.used += size
	return lists, nil
}

// Out implements store.LinkStore.
func (r *Rep) Out(p webgraph.PageID, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	return r.OutFiltered(p, nil, buf)
}

// OutFiltered implements store.LinkStore.
func (r *Rep) OutFiltered(p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	if p < 0 || int(p) >= r.n {
		return buf, fmt.Errorf("link3: page %d out of range", p)
	}
	lists, err := r.block(int(p) / BlockSize)
	if err != nil {
		return buf, err
	}
	for _, t := range lists[int(p)%BlockSize] {
		if store.FilterAccepts(f, t, r.domains, r.domainOf) {
			buf = append(buf, t)
		}
	}
	return buf, nil
}

func (r *Rep) domainOf(p webgraph.PageID) string { return r.pages[p].Domain }

// Stats implements store.LinkStore.
func (r *Rep) Stats() store.AccessStats {
	return store.AccessStats{IO: r.acc.Stats(), GraphsLoaded: r.loads}
}

// ResetStats implements store.LinkStore.
func (r *Rep) ResetStats() {
	r.acc.Reset()
	r.loads = 0
	r.decoded = 0
}

// DecodedEdges reports edges decoded since the last reset (Table 2's
// decode-throughput metric; whole blocks decode at once).
func (r *Rep) DecodedEdges() int64 { return r.decoded }

// ResetCache drops decoded blocks and sets a new budget.
func (r *Rep) ResetCache(budget int64) {
	r.budget = budget
	r.used = 0
	r.lru.Init()
	r.byBlock = map[int]*list.Element{}
	r.acc.Reset()
	r.loads = 0
	r.decoded = 0
}

// Close implements store.LinkStore.
func (r *Rep) Close() error { return r.file.Close() }

// SizeBytes implements store.Sized: data file, block directory, domain
// index.
func (r *Rep) SizeBytes() int64 {
	return r.offsets[len(r.offsets)-1] + 8*int64(len(r.offsets)) + r.domains.SizeBytes()
}
