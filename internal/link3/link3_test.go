package link3

import (
	"sort"
	"testing"

	"snode/internal/iosim"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

func buildSmall(t testing.TB, budget int64) (*webgraph.Corpus, *Rep) {
	t.Helper()
	crawl, err := synth.Generate(synth.DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(crawl.Corpus, dir); err != nil {
		t.Fatal(err)
	}
	r, err := Open(crawl.Corpus, dir, budget, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return crawl.Corpus, r
}

func TestRoundTrip(t *testing.T) {
	c, r := buildSmall(t, 1<<20)
	var buf []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p++ {
		var err error
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			t.Fatalf("Out(%d): %v", p, err)
		}
		got := append([]webgraph.PageID(nil), buf...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := c.Graph.Out(p)
		if len(got) != len(want) {
			t.Fatalf("page %d: %d targets, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("page %d mismatch", p)
			}
		}
	}
}

func TestBlockSharingWithinBlock(t *testing.T) {
	// Consecutive pages live in one block: after the first access the
	// rest are cache hits (no new loads).
	_, r := buildSmall(t, 1<<20)
	r.ResetCache(1 << 20)
	var buf []webgraph.PageID
	if _, err := r.Out(0, buf); err != nil {
		t.Fatal(err)
	}
	loadsAfterFirst := r.Stats().GraphsLoaded
	for p := int32(1); p < BlockSize && int(p) < r.NumPages(); p++ {
		if _, err := r.Out(p, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Stats().GraphsLoaded; got != loadsAfterFirst {
		t.Fatalf("same-block accesses loaded %d extra blocks", got-loadsAfterFirst)
	}
}

func TestTinyCacheStillCorrect(t *testing.T) {
	c, r := buildSmall(t, 1) // evict constantly
	var buf []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p += 101 {
		var err error
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != c.Graph.OutDegree(p) {
			t.Fatalf("page %d degree mismatch under eviction", p)
		}
	}
}

func TestCompression(t *testing.T) {
	c, r := buildSmall(t, 1<<20)
	bpe := store.BitsPerEdge(r, c.Graph.NumEdges())
	if bpe <= 0 || bpe >= 32 {
		t.Fatalf("bits/edge = %.2f", bpe)
	}
}

func TestDecodedEdgesCounter(t *testing.T) {
	_, r := buildSmall(t, 1<<20)
	r.ResetCache(1 << 20)
	var buf []webgraph.PageID
	if _, err := r.Out(0, buf); err != nil {
		t.Fatal(err)
	}
	if r.DecodedEdges() == 0 {
		t.Fatal("no decoded edges counted")
	}
	r.ResetStats()
	if r.DecodedEdges() != 0 {
		t.Fatal("counter not reset")
	}
}

func TestOpenRejectsCorruptDirectory(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(crawl.Corpus, dir); err != nil {
		t.Fatal(err)
	}
	// A corpus with a different page count must be rejected.
	other, err := synth.Generate(synth.DefaultConfig(800))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(other.Corpus, dir, 1<<20, iosim.Model2002()); err == nil {
		t.Fatal("mismatched corpus accepted")
	}
}

func TestOutOfRange(t *testing.T) {
	_, r := buildSmall(t, 1<<20)
	if _, err := r.Out(-1, nil); err == nil {
		t.Fatal("negative page accepted")
	}
}
