// Package workpool provides the bounded worker pool behind every
// concurrent execution path in this repository: the query engine's
// parallel query serving, the S-Node batched neighbor lookups, and the
// parallel BFS frontier expansion. One shared primitive keeps the
// concurrency discipline uniform — a fixed number of goroutines pull
// indices from an atomic counter (work stealing, so uneven item costs
// balance), and the first error stops the dispatch of further work.
package workpool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"snode/internal/metrics"
	"snode/internal/trace"
)

// Pool is a bounded degree of parallelism. The zero value is not
// usable; construct with New. A Pool carries no goroutines of its own —
// each ForEach spins up at most Workers() goroutines for its duration —
// so it is cheap to create and safe to share.
type Pool struct {
	workers int

	// Optional occupancy instrumentation (nil disables; see Instrument).
	busy  *metrics.Gauge
	items *metrics.Counter
}

// New returns a pool of the given width; workers <= 0 selects
// runtime.GOMAXPROCS(0), the configurable default the serving layer
// uses.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return p.workers }

// Instrument attaches worker-occupancy metrics to the pool and returns
// it: busy tracks goroutines currently inside fn (the occupancy gauge a
// scrape sees mid-run), items counts completed work items. Either may
// be nil. Call before the pool is shared; typical wiring:
//
//	pool := workpool.New(w).Instrument(
//		reg.Gauge("workpool_busy"), reg.Counter("workpool_items"))
func (p *Pool) Instrument(busy *metrics.Gauge, items *metrics.Counter) *Pool {
	p.busy = busy
	p.items = items
	return p
}

// enter/exit bracket one work item for the occupancy instruments.
func (p *Pool) enter() {
	if p.busy != nil {
		p.busy.Add(1)
	}
}

func (p *Pool) exit() {
	if p.busy != nil {
		p.busy.Add(-1)
	}
	if p.items != nil {
		p.items.Inc()
	}
}

// ForEach invokes fn(i) for every i in [0, n), distributing the calls
// over the pool's workers. Items are claimed from a shared counter, so
// a slow item does not idle the other workers. The first non-nil error
// stops further dispatch (in-progress items finish) and is returned.
// With one worker (or n <= 1) the calls run inline, in order.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	return p.ForEachCtx(context.Background(), n, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// ForEachCtx is ForEach with request-scoped context: dispatch stops
// once ctx is cancelled (in-progress items finish; the context's error
// is returned when it cut the batch short), and when ctx carries an
// execution trace each dispatched item records a queue-wait span — the
// time the item sat between batch submission and a worker picking it
// up, the pool's contribution to request latency. fn receives ctx so
// the trace and cancellation propagate into the item's own work.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	traced := trace.Active(ctx)
	var submitted time.Time
	if traced {
		submitted = time.Now()
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if traced {
				trace.RecordSpan(ctx, "pool.wait", submitted, time.Since(submitted),
					trace.Attr{Key: "item", Val: int64(i)})
			}
			p.enter()
			err := fn(ctx, i)
			p.exit()
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next      atomic.Int64
		stopped   atomic.Bool
		cancelled atomic.Bool
		wg        sync.WaitGroup
		errMu     sync.Mutex
		first     error
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				if ctx.Err() != nil {
					// Stop claiming new items; whatever is mid-flight on the
					// other workers completes normally.
					cancelled.Store(true)
					stopped.Store(true)
					return
				}
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				if traced {
					trace.RecordSpan(ctx, "pool.wait", submitted, time.Since(submitted),
						trace.Attr{Key: "item", Val: i})
				}
				p.enter()
				err := fn(ctx, int(i))
				p.exit()
				if err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if first == nil && cancelled.Load() {
		first = ctx.Err()
	}
	return first
}

// Run executes the given tasks over the pool and returns the first
// error.
func (p *Pool) Run(tasks ...func() error) error {
	return p.ForEach(len(tasks), func(i int) error { return tasks[i]() })
}
