// Package workpool provides the bounded worker pool behind every
// concurrent execution path in this repository: the query engine's
// parallel query serving, the S-Node batched neighbor lookups, and the
// parallel BFS frontier expansion. One shared primitive keeps the
// concurrency discipline uniform — a fixed number of goroutines pull
// indices from an atomic counter (work stealing, so uneven item costs
// balance), and the first error stops the dispatch of further work.
package workpool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"snode/internal/metrics"
	"snode/internal/trace"
)

// Pool is a bounded degree of parallelism. The zero value is not
// usable; construct with New. A Pool carries no goroutines of its own —
// each ForEach spins up at most Workers() goroutines for its duration —
// so it is cheap to create and safe to share.
type Pool struct {
	workers int

	// Optional occupancy instrumentation (nil disables; see Instrument).
	busy  *metrics.Gauge
	items *metrics.Counter
}

// New returns a pool of the given width; workers <= 0 selects
// runtime.GOMAXPROCS(0), the configurable default the serving layer
// uses.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool width.
func (p *Pool) Workers() int { return p.workers }

// Instrument attaches worker-occupancy metrics to the pool and returns
// it: busy tracks goroutines currently inside fn (the occupancy gauge a
// scrape sees mid-run), items counts completed work items. Either may
// be nil. Call before the pool is shared; typical wiring:
//
//	pool := workpool.New(w).Instrument(
//		reg.Gauge("workpool_busy"), reg.Counter("workpool_items"))
func (p *Pool) Instrument(busy *metrics.Gauge, items *metrics.Counter) *Pool {
	p.busy = busy
	p.items = items
	return p
}

// enter/exit bracket one work item for the occupancy instruments.
func (p *Pool) enter() {
	if p.busy != nil {
		p.busy.Add(1)
	}
}

func (p *Pool) exit() {
	if p.busy != nil {
		p.busy.Add(-1)
	}
	if p.items != nil {
		p.items.Inc()
	}
}

// ForEach invokes fn(i) for every i in [0, n), distributing the calls
// over the pool's workers. Items are claimed from a shared counter, so
// a slow item does not idle the other workers. The first non-nil error
// stops further dispatch (in-progress items finish) and is returned.
// With one worker (or n <= 1) the calls run inline, in order.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	return p.ForEachCtx(context.Background(), n, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// ForEachCtx is ForEach with request-scoped context: dispatch stops
// once ctx is cancelled (in-progress items finish; the context's error
// is returned when it cut the batch short), and when ctx carries an
// execution trace each dispatched item records a queue-wait span — the
// time the item sat between batch submission and a worker picking it
// up, the pool's contribution to request latency. fn receives ctx so
// the trace and cancellation propagate into the item's own work.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	traced := trace.Active(ctx)
	var submitted time.Time
	if traced {
		submitted = time.Now()
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if traced {
				trace.RecordSpan(ctx, "pool.wait", submitted, time.Since(submitted),
					trace.Attr{Key: "item", Val: int64(i)})
			}
			p.enter()
			err := fn(ctx, i)
			p.exit()
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next      atomic.Int64
		stopped   atomic.Bool
		cancelled atomic.Bool
		wg        sync.WaitGroup
		errMu     sync.Mutex
		first     error
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				if ctx.Err() != nil {
					// Stop claiming new items; whatever is mid-flight on the
					// other workers completes normally.
					cancelled.Store(true)
					stopped.Store(true)
					return
				}
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				if traced {
					trace.RecordSpan(ctx, "pool.wait", submitted, time.Since(submitted),
						trace.Attr{Key: "item", Val: i})
				}
				p.enter()
				err := fn(ctx, int(i))
				p.exit()
				if err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if first == nil && cancelled.Load() {
		first = ctx.Err()
	}
	return first
}

// Run executes the given tasks over the pool and returns the first
// error.
func (p *Pool) Run(tasks ...func() error) error {
	return p.ForEach(len(tasks), func(i int) error { return tasks[i]() })
}

// Ordered computes fn(i) for every i in [0, n) on the pool's workers
// and delivers each result to consume in strict index order, from the
// calling goroutine, holding at most window completed-but-undelivered
// results at any moment. It is the shape of a producer/consumer
// pipeline whose output must be a deterministic in-order stream while
// its per-item work fans out: the S-Node builder overlaps supernode
// encoding with file assembly this way, with peak memory O(window)
// instead of O(n).
//
// Guarantees:
//   - consume is called for a prefix 0..k of the indices, in order,
//     never concurrently, and never after an error.
//   - An error from fn or consume (or ctx cancellation) stops further
//     dispatch; in-progress items finish and are discarded. When
//     several items fail concurrently, which error is returned is
//     unspecified (Ordered prefers the lowest-index one it observes).
//   - With one worker (or n <= 1) everything runs inline, in order.
//
// The results delivered to consume are identical for every pool width,
// so pipelines built on Ordered are bit-deterministic regardless of
// GOMAXPROCS provided fn itself is.
func Ordered[T any](ctx context.Context, p *Pool, n, window int, fn func(ctx context.Context, i int) (T, error), consume func(i int, v T) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if window < 1 {
		window = 1
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			p.enter()
			v, err := fn(ctx, i)
			p.exit()
			if err != nil {
				return err
			}
			if err := consume(i, v); err != nil {
				return err
			}
		}
		return nil
	}
	if window > n {
		window = n
	}

	type item struct {
		i   int
		v   T
		err error
	}
	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup
	)
	// Window discipline: a worker acquires a token BEFORE claiming an
	// index and the token stays attached to that index until the
	// consumer delivers it, so every claimed-but-undelivered index holds
	// exactly one of the window tokens. That both bounds the reorder
	// buffer (a claim is always within window of the next delivery) and
	// guarantees the next-to-deliver index is owned by a worker that
	// already holds a token — acquiring after claiming would let the
	// head-of-line index starve behind a window of undeliverable
	// higher-index results. The results channel is buffered to window
	// for the same reason: a token-holding worker can always send
	// without blocking, which keeps shutdown deadlock-free even when
	// every item errors (the bug this structure replaced: encode workers
	// exiting early while a producer blocked forever feeding an
	// unbuffered jobs channel).
	sem := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		sem <- struct{}{}
	}
	results := make(chan item, window)
	done := make(chan struct{})

	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				select {
				case <-done:
					return
				case <-sem:
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					// Hand the slot back so a sibling blocked on sem can
					// wake and discover exhaustion too.
					sem <- struct{}{}
					return
				}
				p.enter()
				v, err := fn(ctx, i)
				p.exit()
				results <- item{i: i, v: v, err: err}
			}
		}()
	}

	var (
		firstErr error
		errIdx   int
	)
	fail := func(i int, err error) {
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
	}
	pending := make(map[int]item, window)
	nextDeliver := 0
	for nextDeliver < n && firstErr == nil {
		select {
		case it := <-results:
			pending[it.i] = it
		case <-ctx.Done():
			fail(n, ctx.Err())
		}
		for firstErr == nil {
			it, ok := pending[nextDeliver]
			if !ok {
				break
			}
			delete(pending, nextDeliver)
			if it.err != nil {
				fail(it.i, it.err)
				break
			}
			if err := consume(it.i, it.v); err != nil {
				fail(it.i, err)
				break
			}
			nextDeliver++
			sem <- struct{}{} // hand the delivered item's token back
		}
	}
	stopped.Store(true)
	close(done)
	wg.Wait()
	// Drain stragglers so a lower-index error, if one raced in, wins.
	close(results)
	for it := range results {
		pending[it.i] = it
	}
	for i, it := range pending {
		if it.err != nil && i < n {
			fail(i, it.err)
		}
	}
	return firstErr
}
