package workpool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"snode/internal/randutil"
)

// Edge cases of the Ordered pipeline: degenerate sizes, the smallest
// window, external cancellation racing slow workers, and randomized
// per-item delays that scramble completion order as hard as possible.

func TestOrderedZeroItems(t *testing.T) {
	for _, n := range []int{0, -5} {
		err := Ordered(context.Background(), New(4), n, 4,
			func(_ context.Context, i int) (int, error) {
				t.Errorf("fn called with n=%d", n)
				return 0, nil
			},
			func(i, v int) error {
				t.Errorf("consume called with n=%d", n)
				return nil
			})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
	// Empty input wins over a dead context: there is no work to refuse.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Ordered(ctx, New(4), 0, 4,
		func(_ context.Context, i int) (int, error) { return 0, nil },
		func(i, v int) error { return nil }); err != nil {
		t.Fatalf("n=0 on cancelled ctx: %v", err)
	}
}

func TestOrderedWindowOneLockstep(t *testing.T) {
	// window 1 degrades the pipeline to lockstep: index i may only be
	// claimed once i-1 has been delivered, whatever the pool width.
	// window <= 0 must normalize to the same discipline.
	for _, window := range []int{1, 0, -3} {
		const n = 200
		var delivered atomic.Int64
		err := Ordered(context.Background(), New(8), n, window,
			func(_ context.Context, i int) (int, error) {
				if d := delivered.Load(); int64(i) != d {
					t.Errorf("window=%d: index %d claimed while next delivery is %d", window, i, d)
				}
				return i, nil
			},
			func(i, v int) error { delivered.Store(int64(i) + 1); return nil })
		if err != nil {
			t.Fatalf("window=%d: %v", window, err)
		}
		if delivered.Load() != n {
			t.Fatalf("window=%d: delivered %d of %d", window, delivered.Load(), n)
		}
	}
}

func TestOrderedCancelMidStreamExternal(t *testing.T) {
	// Cancellation arrives from outside (a deadline, a dropped client)
	// while workers are mid-item, not from the consumer's own error
	// path. The consumed stream must still be an in-order prefix.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var once atomic.Bool
	var got []int
	err := Ordered(ctx, New(4), 100000, 8,
		func(_ context.Context, i int) (int, error) {
			if once.CompareAndSwap(false, true) {
				close(started)
				// Cancel from outside once the stream is rolling.
				time.AfterFunc(2*time.Millisecond, cancel)
			}
			time.Sleep(100 * time.Microsecond)
			return i, nil
		},
		func(i, v int) error { got = append(got, i); return nil })
	select {
	case <-started:
	default:
		t.Fatal("no item ever started")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if len(got) == 100000 {
		t.Fatal("external cancel did not cut the stream short")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("delivered prefix broken at position %d: %v", i, got[:i+1])
		}
	}
}

func TestOrderedRandomizedDelays(t *testing.T) {
	// Random per-item delays force maximal reordering of completions;
	// delivery must stay a complete, exact, in-order stream for every
	// width/window combination.
	seed := uint64(42)
	for _, workers := range []int{2, 4, 16} {
		for _, window := range []int{1, 3, 8} {
			const n = 300
			seed++
			rng := randutil.NewRNG(seed)
			delays := make([]time.Duration, n)
			for i := range delays {
				delays[i] = time.Duration(rng.Intn(200)) * time.Microsecond
			}
			var got []int
			err := Ordered(context.Background(), New(workers), n, window,
				func(_ context.Context, i int) (int, error) {
					time.Sleep(delays[i])
					return i * 3, nil
				},
				func(i, v int) error {
					if v != i*3 {
						t.Fatalf("workers=%d window=%d: consume(%d, %d), want %d",
							workers, window, i, v, i*3)
					}
					got = append(got, i)
					return nil
				})
			if err != nil {
				t.Fatalf("workers=%d window=%d: %v", workers, window, err)
			}
			if len(got) != n {
				t.Fatalf("workers=%d window=%d: delivered %d of %d", workers, window, len(got), n)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("workers=%d window=%d: out of order at %d: %v",
						workers, window, i, got[:i+1])
				}
			}
		}
	}
}
