package workpool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 32} {
		const n = 1000
		seen := make([]atomic.Int32, n)
		err := New(workers).ForEach(n, func(i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := New(4).ForEach(100000, func(i int) error {
		calls.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if n := calls.Load(); n == 100000 {
		t.Fatal("error did not stop dispatch")
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	err := New(1).ForEach(5, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order %v not sequential", order)
		}
	}
}

func TestDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("default width under 1")
	}
	if err := New(3).ForEach(0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := New(2).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRun(t *testing.T) {
	var a, b atomic.Bool
	err := New(2).Run(
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("Run: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
}
