package workpool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"snode/internal/metrics"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 32} {
		const n = 1000
		seen := make([]atomic.Int32, n)
		err := New(workers).ForEach(n, func(i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := New(4).ForEach(100000, func(i int) error {
		calls.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if n := calls.Load(); n == 100000 {
		t.Fatal("error did not stop dispatch")
	}
}

func TestForEachCtxCancelStopsDispatch(t *testing.T) {
	const n = 100000
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := New(4).ForEachCtx(ctx, n, func(ctx context.Context, i int) error {
		if calls.Add(1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	// Workers stop claiming once they observe the cancellation; only the
	// handful of items already mid-flight may still complete.
	if got := calls.Load(); got >= n/2 {
		t.Fatalf("%d of %d items ran after cancellation", got, n)
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	err := New(4).ForEachCtx(ctx, 100, func(ctx context.Context, i int) error {
		calls.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("%d items ran on a pre-cancelled context", got)
	}
}

func TestForEachCtxSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	err := New(1).ForEachCtx(ctx, 100, func(ctx context.Context, i int) error {
		calls++
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if calls != 3 {
		t.Fatalf("serial path ran %d items after cancel at item 2, want 3", calls)
	}
}

func TestForEachCtxFnErrorWins(t *testing.T) {
	// An item error reported before any cancellation is the one returned.
	boom := errors.New("boom")
	err := New(4).ForEachCtx(context.Background(), 1000, func(ctx context.Context, i int) error {
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	err := New(1).ForEach(5, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order %v not sequential", order)
		}
	}
}

func TestDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("default width under 1")
	}
	if err := New(3).ForEach(0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := New(2).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRun(t *testing.T) {
	var a, b atomic.Bool
	err := New(2).Run(
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("Run: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
}

func TestInstrumentOccupancy(t *testing.T) {
	reg := metrics.NewRegistry()
	busy, items := reg.Gauge("wp_busy"), reg.Counter("wp_items")
	p := New(4).Instrument(busy, items)
	const n = 100
	var maxBusy atomic.Int64
	err := p.ForEach(n, func(i int) error {
		b := busy.Value()
		for {
			m := maxBusy.Load()
			if b <= m || maxBusy.CompareAndSwap(m, b) {
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := items.Value(); got != n {
		t.Fatalf("items = %d, want %d", got, n)
	}
	if busy.Value() != 0 {
		t.Fatalf("busy = %d after ForEach returned, want 0", busy.Value())
	}
	if m := maxBusy.Load(); m < 1 || m > 4 {
		t.Fatalf("observed busy peak %d, want within [1, 4]", m)
	}
	// Serial path counts too.
	if err := New(1).Instrument(busy, items).ForEach(5, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := items.Value(); got != n+5 {
		t.Fatalf("items = %d after serial batch, want %d", got, n+5)
	}
}

func TestOrderedDeliversInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, window := range []int{1, 2, 7, 64} {
			const n = 500
			var got []int
			err := Ordered(context.Background(), New(workers), n, window,
				func(_ context.Context, i int) (int, error) { return i * i, nil },
				func(i, v int) error {
					if v != i*i {
						t.Fatalf("workers=%d window=%d: consume(%d, %d), want %d", workers, window, i, v, i*i)
					}
					got = append(got, i)
					return nil
				})
			if err != nil {
				t.Fatalf("workers=%d window=%d: %v", workers, window, err)
			}
			if len(got) != n {
				t.Fatalf("workers=%d window=%d: delivered %d of %d", workers, window, len(got), n)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("workers=%d window=%d: out-of-order delivery %v...", workers, window, got[:i+1])
				}
			}
		}
	}
}

func TestOrderedBoundsInFlight(t *testing.T) {
	// With window w, no claimed index may ever run ahead of the next
	// delivery by w or more: claimed-but-undelivered indices each hold
	// one of the w tokens.
	const n, window = 400, 3
	var delivered atomic.Int64
	err := Ordered(context.Background(), New(8), n, window,
		func(_ context.Context, i int) (int, error) {
			if d := delivered.Load(); int64(i) >= d+window {
				t.Errorf("index %d claimed while next delivery is %d (window %d)", i, d, window)
			}
			return i, nil
		},
		func(i, v int) error { delivered.Store(int64(i) + 1); return nil })
	if err != nil {
		t.Fatal(err)
	}
}

func TestOrderedStopsOnFnError(t *testing.T) {
	boom := errors.New("boom")
	var consumed atomic.Int64
	err := Ordered(context.Background(), New(4), 10000, 8,
		func(_ context.Context, i int) (int, error) {
			if i >= 20 {
				return 0, boom
			}
			return i, nil
		},
		func(i, v int) error { consumed.Add(1); return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if got := consumed.Load(); got > 20 {
		t.Fatalf("consumed %d items past the first error index", got)
	}
}

func TestOrderedEveryItemFails(t *testing.T) {
	// The regression shape behind the old builder deadlock: every worker
	// errors immediately. Ordered must return promptly, not hang.
	boom := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		done <- Ordered(context.Background(), New(4), 5000, 4,
			func(_ context.Context, i int) (int, error) { return 0, boom },
			func(i, v int) error { t.Error("consume called despite universal failure"); return nil })
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("error %v, want boom", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Ordered deadlocked when every item failed")
	}
}

func TestOrderedConsumeErrorStops(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := Ordered(context.Background(), New(4), 100000, 4,
		func(_ context.Context, i int) (int, error) { calls.Add(1); return i, nil },
		func(i, v int) error {
			if i == 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if n := calls.Load(); n == 100000 {
		t.Fatal("consume error did not stop dispatch")
	}
}

func TestOrderedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var consumed atomic.Int64
	err := Ordered(ctx, New(4), 100000, 8,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(i, v int) error {
			if consumed.Add(1) == 10 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if n := consumed.Load(); n == 100000 {
		t.Fatal("cancellation did not stop delivery")
	}
}

func TestOrderedPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Ordered(ctx, New(4), 100, 4,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(i, v int) error { t.Error("consume on pre-cancelled context"); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}
