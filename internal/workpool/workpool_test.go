package workpool

import (
	"errors"
	"sync/atomic"
	"testing"

	"snode/internal/metrics"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 32} {
		const n = 1000
		seen := make([]atomic.Int32, n)
		err := New(workers).ForEach(n, func(i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := New(4).ForEach(100000, func(i int) error {
		calls.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if n := calls.Load(); n == 100000 {
		t.Fatal("error did not stop dispatch")
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	err := New(1).ForEach(5, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order %v not sequential", order)
		}
	}
}

func TestDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("default width under 1")
	}
	if err := New(3).ForEach(0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := New(2).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRun(t *testing.T) {
	var a, b atomic.Bool
	err := New(2).Run(
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("Run: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
}

func TestInstrumentOccupancy(t *testing.T) {
	reg := metrics.NewRegistry()
	busy, items := reg.Gauge("wp_busy"), reg.Counter("wp_items")
	p := New(4).Instrument(busy, items)
	const n = 100
	var maxBusy atomic.Int64
	err := p.ForEach(n, func(i int) error {
		b := busy.Value()
		for {
			m := maxBusy.Load()
			if b <= m || maxBusy.CompareAndSwap(m, b) {
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := items.Value(); got != n {
		t.Fatalf("items = %d, want %d", got, n)
	}
	if busy.Value() != 0 {
		t.Fatalf("busy = %d after ForEach returned, want 0", busy.Value())
	}
	if m := maxBusy.Load(); m < 1 || m > 4 {
		t.Fatalf("observed busy peak %d, want within [1, 4]", m)
	}
	// Serial path counts too.
	if err := New(1).Instrument(busy, items).ForEach(5, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := items.Value(); got != n+5 {
		t.Fatalf("items = %d after serial batch, want %d", got, n+5)
	}
}
