package workpool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"snode/internal/metrics"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 32} {
		const n = 1000
		seen := make([]atomic.Int32, n)
		err := New(workers).ForEach(n, func(i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := New(4).ForEach(100000, func(i int) error {
		calls.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
	if n := calls.Load(); n == 100000 {
		t.Fatal("error did not stop dispatch")
	}
}

func TestForEachCtxCancelStopsDispatch(t *testing.T) {
	const n = 100000
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := New(4).ForEachCtx(ctx, n, func(ctx context.Context, i int) error {
		if calls.Add(1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	// Workers stop claiming once they observe the cancellation; only the
	// handful of items already mid-flight may still complete.
	if got := calls.Load(); got >= n/2 {
		t.Fatalf("%d of %d items ran after cancellation", got, n)
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	err := New(4).ForEachCtx(ctx, 100, func(ctx context.Context, i int) error {
		calls.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("%d items ran on a pre-cancelled context", got)
	}
}

func TestForEachCtxSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	err := New(1).ForEachCtx(ctx, 100, func(ctx context.Context, i int) error {
		calls++
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if calls != 3 {
		t.Fatalf("serial path ran %d items after cancel at item 2, want 3", calls)
	}
}

func TestForEachCtxFnErrorWins(t *testing.T) {
	// An item error reported before any cancellation is the one returned.
	boom := errors.New("boom")
	err := New(4).ForEachCtx(context.Background(), 1000, func(ctx context.Context, i int) error {
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v, want boom", err)
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	err := New(1).ForEach(5, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order %v not sequential", order)
		}
	}
}

func TestDefaults(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("default width under 1")
	}
	if err := New(3).ForEach(0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := New(2).Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRun(t *testing.T) {
	var a, b atomic.Bool
	err := New(2).Run(
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("Run: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
}

func TestInstrumentOccupancy(t *testing.T) {
	reg := metrics.NewRegistry()
	busy, items := reg.Gauge("wp_busy"), reg.Counter("wp_items")
	p := New(4).Instrument(busy, items)
	const n = 100
	var maxBusy atomic.Int64
	err := p.ForEach(n, func(i int) error {
		b := busy.Value()
		for {
			m := maxBusy.Load()
			if b <= m || maxBusy.CompareAndSwap(m, b) {
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := items.Value(); got != n {
		t.Fatalf("items = %d, want %d", got, n)
	}
	if busy.Value() != 0 {
		t.Fatalf("busy = %d after ForEach returned, want 0", busy.Value())
	}
	if m := maxBusy.Load(); m < 1 || m > 4 {
		t.Fatalf("observed busy peak %d, want within [1, 4]", m)
	}
	// Serial path counts too.
	if err := New(1).Instrument(busy, items).ForEach(5, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := items.Value(); got != n+5 {
		t.Fatalf("items = %d after serial batch, want %d", got, n+5)
	}
}
