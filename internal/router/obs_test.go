package router

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"snode/internal/metrics"
	"snode/internal/trace"
)

// TestDistributedTraceStitching is the tentpole's golden test: one
// sampled mining request through a K=2 tier produces ONE stitched
// trace — the router's fanout/merge spans plus both shards' completed
// subtrees, each carrying the admission span the shard recorded — and
// the mining latency histogram's tail exemplar names that trace.
func TestDistributedTraceStitching(t *testing.T) {
	k := 2
	w := startWorld(t, getRoot(t, k), k, 1)
	reg := metrics.NewRegistry()
	tr := trace.New(trace.Config{SampleEvery: 1}) // sample everything
	_, ts := newRouter(t, w, Config{Registry: reg, Tracer: tr})

	resp, err := http.Get(ts.URL + "/query?q=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	idStr := resp.Header.Get(trace.HeaderTraceID)
	if idStr == "" {
		t.Fatal("sampled routed request returned no X-SNode-Trace-Id")
	}
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		t.Fatal(err)
	}

	// The stitched trace is served by the ROUTER's /debug/traces.
	var tj trace.TraceJSON
	if code := getJSON(t, fmt.Sprintf("%s/debug/traces?id=%d", ts.URL, id), &tj); code != http.StatusOK {
		t.Fatalf("/debug/traces?id=%d: status %d", id, code)
	}
	if tj.Root == nil || tj.Root.Name != "router.mining" {
		t.Fatalf("root span = %+v, want router.mining", tj.Root)
	}
	local := map[string]bool{}
	for _, c := range tj.Root.Children {
		local[c.Name] = true
	}
	if !local["router.fanout"] || !local["router.merge"] {
		t.Fatalf("router spans = %v, want fanout and merge", local)
	}
	if len(tj.Remotes) != k {
		t.Fatalf("stitched %d remote subtrees, want %d (one per shard)", len(tj.Remotes), k)
	}
	seenShard := map[int]bool{}
	for _, rm := range tj.Remotes {
		var s int
		if _, err := fmt.Sscanf(rm.Label, "shard%d ", &s); err != nil {
			t.Fatalf("remote label %q not shard-attributed", rm.Label)
		}
		seenShard[s] = true
		if rm.Root == nil {
			t.Fatalf("remote %q has no span tree", rm.Label)
		}
		if rm.Root.Name != "mining" {
			t.Fatalf("remote %q root = %q, want the shard's mining class", rm.Label, rm.Root.Name)
		}
		names := map[string]bool{}
		var walk func(s *trace.SpanJSON)
		walk = func(sp *trace.SpanJSON) {
			names[sp.Name] = true
			for _, c := range sp.Children {
				walk(c)
			}
		}
		walk(rm.Root)
		if !names["serve.admission"] {
			t.Fatalf("remote %q missing serve.admission span: %v", rm.Label, names)
		}
	}
	if !seenShard[0] || !seenShard[1] {
		t.Fatalf("remote subtrees cover shards %v, want both", seenShard)
	}

	// The tail exemplar of the mining latency histogram names the
	// stitched trace — p99 outliers are one click from their breakdown.
	h := reg.Snapshot().Histograms["router_latency_mining"]
	if _, ex := h.TailExemplar(); ex != id {
		t.Fatalf("router_latency_mining tail exemplar = %d, want stitched trace %d", ex, id)
	}
	if got := reg.Snapshot().Counters["router_traces_stitched"]; got != int64(k) {
		t.Fatalf("router_traces_stitched = %d, want %d", got, k)
	}

	// The Chrome export renders per-shard process lanes.
	chromeResp, err := http.Get(fmt.Sprintf("%s/debug/traces?id=%d&format=chrome", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(chromeResp.Body)
	chromeResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	export := string(raw)
	if !strings.Contains(export, "process_name") || !strings.Contains(export, "shard0 ") || !strings.Contains(export, "shard1 ") {
		t.Fatal("chrome export missing per-shard process lanes")
	}

	// A nav request stitches too: one remote subtree, from the owning
	// shard.
	resp, err = http.Get(ts.URL + "/out?page=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	navID, _ := strconv.ParseUint(resp.Header.Get(trace.HeaderTraceID), 10, 64)
	if navID == 0 {
		t.Fatal("sampled /out returned no trace header")
	}
	var navTJ trace.TraceJSON
	if code := getJSON(t, fmt.Sprintf("%s/debug/traces?id=%d", ts.URL, navID), &navTJ); code != http.StatusOK {
		t.Fatalf("nav trace fetch: status %d", code)
	}
	if len(navTJ.Remotes) != 1 {
		t.Fatalf("nav trace stitched %d remotes, want 1", len(navTJ.Remotes))
	}
}

// TestClusterMetricsInvariant: the federated cluster totals equal the
// sum of the per-replica scrapes — counter by counter, histogram
// bucket by histogram bucket — and a dead replica degrades to its
// cached snapshot with a staleness mark instead of vanishing.
func TestClusterMetricsInvariant(t *testing.T) {
	k := 2
	w := startWorld(t, getRoot(t, k), k, 2)
	reg := metrics.NewRegistry()
	_, ts := newRouter(t, w, Config{Registry: reg})

	for i := 0; i < 6; i++ {
		getJSON(t, fmt.Sprintf("%s/query?q=%d", ts.URL, 1+i%6), nil)
	}
	for _, p := range crossShardPages(t, w.manifest, 4) {
		getJSON(t, fmt.Sprintf("%s/out?page=%d", ts.URL, p), nil)
	}

	var cm ClusterMetrics
	if code := getJSON(t, ts.URL+"/cluster/metrics", &cm); code != http.StatusOK {
		t.Fatalf("/cluster/metrics: status %d", code)
	}
	if len(cm.Errors) != 0 {
		t.Fatalf("scrape errors on a healthy tier: %v", cm.Errors)
	}
	if len(cm.Replicas) != 2*k || cm.Shards != k {
		t.Fatalf("federated %d replicas / %d shards, want %d / %d", len(cm.Replicas), cm.Shards, 2*k, k)
	}

	// Invariant: cluster == sum over replica scrapes.
	wantCounters := map[string]int64{}
	wantHistCount := map[string]int64{}
	for _, rm := range cm.Replicas {
		if rm.Stale || rm.Snapshot == nil {
			t.Fatalf("healthy replica %s scraped stale=%v snap=%v", rm.URL, rm.Stale, rm.Snapshot)
		}
		for name, v := range rm.Snapshot.Counters {
			wantCounters[name] += v
		}
		for name, h := range rm.Snapshot.Histograms {
			wantHistCount[name] += h.Count
		}
	}
	if len(wantCounters) == 0 {
		t.Fatal("replica scrapes exposed no counters")
	}
	for name, want := range wantCounters {
		if got := cm.Cluster.Counters[name]; got != want {
			t.Fatalf("cluster counter %s = %d, want the replica sum %d", name, got, want)
		}
	}
	for name, want := range wantHistCount {
		if got := cm.Cluster.Histograms[name].Count; got != want {
			t.Fatalf("cluster histogram %s count = %d, want the replica sum %d", name, got, want)
		}
	}
	// Per-shard merges partition the cluster.
	var perShardTotal int64
	for _, sm := range cm.PerShard {
		perShardTotal += sm.Merged.Counters["admission_mining_admitted"]
	}
	var admitted int64
	for _, rm := range cm.Replicas {
		admitted += rm.Snapshot.Counters["admission_mining_admitted"]
	}
	if perShardTotal != admitted {
		t.Fatalf("per-shard merge total %d != replica sum %d", perShardTotal, admitted)
	}

	// Kill one replica: the next scrape serves its cached snapshot,
	// marked stale, and the cluster totals still include it.
	victim := w.replicas[0][0]
	w.flaky[victim].down.Store(true)
	time.Sleep(10 * time.Millisecond)
	var cm2 ClusterMetrics
	if code := getJSON(t, ts.URL+"/cluster/metrics", &cm2); code != http.StatusOK {
		t.Fatalf("/cluster/metrics with a dead replica: status %d", code)
	}
	var stale *ReplicaMetrics
	for i := range cm2.Replicas {
		if cm2.Replicas[i].URL == victim {
			stale = &cm2.Replicas[i]
		}
	}
	if stale == nil || !stale.Stale || stale.Snapshot == nil {
		t.Fatalf("dead replica not served from cache with a staleness mark: %+v", stale)
	}
	if stale.AgeSeconds <= 0 {
		t.Fatalf("stale snapshot age = %v, want > 0", stale.AgeSeconds)
	}
	if stale.Error == "" {
		t.Fatal("stale replica entry carries no scrape error")
	}
	// Its cached counters still count toward the cluster.
	name, val := "", int64(0)
	for n, v := range stale.Snapshot.Counters {
		if v > 0 {
			name, val = n, v
			break
		}
	}
	if name != "" && cm2.Cluster.Counters[name] < val {
		t.Fatalf("cluster %s = %d excludes the stale replica's %d", name, cm2.Cluster.Counters[name], val)
	}
}

// TestSLOScoreboardReactsToOutage: /slo reports both classes meeting
// their objectives under healthy traffic, then shows the mining error
// budget burning once a whole shard goes dark.
func TestSLOScoreboardReactsToOutage(t *testing.T) {
	k := 2
	w := startWorld(t, getRoot(t, k), k, 1)
	reg := metrics.NewRegistry()
	_, ts := newRouter(t, w, Config{
		Registry: reg,
		// Loose targets the healthy phase trivially meets.
		SLO: SLOConfig{Availability: 0.99, NavP99: 10 * time.Second, MiningP99: 10 * time.Second},
	})

	type sloReport struct {
		Classes []struct {
			Class            string  `json:"class"`
			Requests         int64   `json:"requests"`
			Bad              int64   `json:"bad"`
			AvailabilityMet  bool    `json:"availability_met"`
			AvailabilityBurn float64 `json:"availability_burn"`
		} `json:"classes"`
	}
	class := func(rep sloReport, name string) (c struct {
		Class            string  `json:"class"`
		Requests         int64   `json:"requests"`
		Bad              int64   `json:"bad"`
		AvailabilityMet  bool    `json:"availability_met"`
		AvailabilityBurn float64 `json:"availability_burn"`
	}) {
		for _, cc := range rep.Classes {
			if cc.Class == name {
				return cc
			}
		}
		t.Fatalf("/slo report has no class %q", name)
		return
	}

	// Baseline sample with zero traffic, so later polls report deltas.
	var rep sloReport
	if code := getJSON(t, ts.URL+"/slo", &rep); code != http.StatusOK {
		t.Fatalf("/slo: status %d", code)
	}

	for i := 0; i < 10; i++ {
		getJSON(t, ts.URL+"/query?q=1", nil)
		getJSON(t, ts.URL+"/out?page=3", nil)
	}
	if code := getJSON(t, ts.URL+"/slo", &rep); code != http.StatusOK {
		t.Fatalf("/slo: status %d", code)
	}
	m := class(rep, "mining")
	if m.Requests != 10 || m.Bad != 0 || !m.AvailabilityMet {
		t.Fatalf("healthy mining window = %+v", m)
	}
	if n := class(rep, "nav"); n.Requests != 10 || !n.AvailabilityMet {
		t.Fatalf("healthy nav window = %+v", n)
	}

	// Shard 1 goes dark: every mining scatter loses a leg and 503s.
	w.flaky[w.replicas[1][0]].down.Store(true)
	for i := 0; i < 10; i++ {
		getJSON(t, ts.URL+"/query?q=1", nil)
	}
	if code := getJSON(t, ts.URL+"/slo", &rep); code != http.StatusOK {
		t.Fatalf("/slo: status %d", code)
	}
	m = class(rep, "mining")
	if m.Bad < 10 {
		t.Fatalf("outage window bad = %d, want >= 10 (every scatter failed)", m.Bad)
	}
	if m.AvailabilityMet || m.AvailabilityBurn <= 1 {
		t.Fatalf("shard outage not burning the mining budget: %+v", m)
	}
}

// TestCrossProcessUntracedZeroAlloc: an unsampled routed request's
// fan-out must add no header and no allocations — the cross-process
// propagation cost is zero until the sampler says otherwise. Wired
// into make check-overhead.
func TestCrossProcessUntracedZeroAlloc(t *testing.T) {
	req, err := http.NewRequest(http.MethodGet, "http://shard/out?page=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		injectTrace(req, "")
	})
	if allocs != 0 {
		t.Fatalf("untraced header injection allocates %.1f/op, want 0", allocs)
	}
	if len(req.Header) != 0 {
		t.Fatalf("untraced request grew headers: %v", req.Header)
	}
	resp := &http.Response{Header: http.Header{}}
	allocs = testing.AllocsPerRun(200, func() {
		if remoteTraceID(resp) != 0 {
			t.Fatal("phantom trace ID")
		}
	})
	if allocs != 0 {
		t.Fatalf("untraced trace-ID read allocates %.1f/op, want 0", allocs)
	}
}
