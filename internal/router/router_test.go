package router

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/serve"
	"snode/internal/shard"
	"snode/internal/snode"
	"snode/internal/synth"
	"snode/internal/trace"
	"snode/internal/webgraph"
)

var (
	testCrawl *synth.Crawl
	testRoots = map[int]string{}
)

func getCrawl(t testing.TB) *synth.Crawl {
	t.Helper()
	if testCrawl == nil {
		c, err := synth.Generate(synth.DefaultConfig(6000))
		if err != nil {
			t.Fatal(err)
		}
		testCrawl = c
	}
	return testCrawl
}

func getRoot(t testing.TB, k int) string {
	t.Helper()
	if root, ok := testRoots[k]; ok {
		return root
	}
	root, err := os.MkdirTemp("", "router-root-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Build(getCrawl(t), k, root, snode.DefaultConfig()); err != nil {
		t.Fatalf("shard.Build K=%d: %v", k, err)
	}
	testRoots[k] = root
	return root
}

// flaky wraps a handler with a kill switch: while down, every request
// (including /healthz) answers 500.
type flaky struct {
	h    http.Handler
	down atomic.Bool
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		http.Error(w, "replica down", http.StatusInternalServerError)
		return
	}
	f.h.ServeHTTP(w, r)
}

// world is a running K-shard serving tier: opened shards, one serve
// stack per replica, and the router config pieces. Every replica gets
// its own metrics registry (scraped by /cluster/metrics) and a
// SampleEvery=0 tracer — local sampling off, so any trace a replica
// keeps was forced by the router's sampled bit.
type world struct {
	manifest   *shard.Manifest
	boundaries []*shard.Boundary
	replicas   [][]string        // URLs fed to the router
	flaky      map[string]*flaky // URL → kill switch
	servers    map[string]*httptest.Server
	regs       map[string]*metrics.Registry
	tracers    map[string]*trace.Tracer
}

// startWorld opens every shard under root and starts `perShard` replica
// servers per shard, each with a kill switch.
func startWorld(t *testing.T, root string, k, perShard int) *world {
	t.Helper()
	m, err := shard.LoadManifest(root)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := shard.LoadFwdBoundaries(root, m)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{
		manifest:   m,
		boundaries: bs,
		flaky:      map[string]*flaky{},
		servers:    map[string]*httptest.Server{},
		regs:       map[string]*metrics.Registry{},
		tracers:    map[string]*trace.Tracer{},
	}
	for s := 0; s < k; s++ {
		sh, err := shard.OpenServing(root, s, 16<<20, iosim.Model2002())
		if err != nil {
			t.Fatalf("OpenServing %d: %v", s, err)
		}
		t.Cleanup(func() { sh.Close() })
		eng, err := query.New(sh.Repo, repo.SchemeSNode)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetOwner(sh.Owns)
		nav, err := query.New(sh.NavRepo, repo.SchemeSNode)
		if err != nil {
			t.Fatal(err)
		}
		var urls []string
		for rep := 0; rep < perShard; rep++ {
			rreg := metrics.NewRegistry()
			rtr := trace.New(trace.Config{SampleEvery: 0})
			qs, err := serve.New(serve.Config{
				Engine:    eng,
				NavEngine: nav,
				Shard:     &serve.ShardInfo{ID: s, Count: k, Version: m.Version},
				Registry:  rreg,
				Tracer:    rtr,
			})
			if err != nil {
				t.Fatal(err)
			}
			mux := http.NewServeMux()
			qs.Register(mux)
			mux.Handle("/metrics.json", rreg.JSONHandler())
			mux.Handle("/debug/traces", trace.Handler(rtr))
			mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
				fmt.Fprintln(rw, `{"status":"ready"}`)
			})
			f := &flaky{h: mux}
			ts := httptest.NewServer(f)
			t.Cleanup(ts.Close)
			urls = append(urls, ts.URL)
			w.flaky[ts.URL] = f
			w.servers[ts.URL] = ts
			w.regs[ts.URL] = rreg
			w.tracers[ts.URL] = rtr
		}
		w.replicas = append(w.replicas, urls)
	}
	return w
}

func newRouter(t *testing.T, w *world, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	cfg.Manifest = w.manifest
	cfg.Boundaries = w.boundaries
	cfg.Replicas = w.replicas
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1 // tests drive Probe directly
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	return r, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("%s: bad body %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

// crossShardPages picks pages whose out-list crosses shards (and one
// that does not), the cases the router's boundary merge must cover.
func crossShardPages(t *testing.T, m *shard.Manifest, limit int) []webgraph.PageID {
	t.Helper()
	g := getCrawl(t).Corpus.Graph
	var cross, intra []webgraph.PageID
	for p := webgraph.PageID(0); int(p) < g.NumPages(); p++ {
		home := m.ShardOf(p)
		crossing := false
		for _, q := range g.Out(p) {
			if m.ShardOf(q) != home {
				crossing = true
				break
			}
		}
		if crossing && len(cross) < limit {
			cross = append(cross, p)
		} else if !crossing && len(g.Out(p)) > 0 && len(intra) < 2 {
			intra = append(intra, p)
		}
		if len(cross) >= limit && len(intra) >= 2 {
			break
		}
	}
	if len(cross) == 0 {
		t.Fatal("no cross-shard pages in corpus")
	}
	return append(cross, intra...)
}

// TestRouterGoldenEquivalence is the acceptance golden test at the
// HTTP level: all six Table 3 queries and /out through the router at
// K ∈ {2,4} are row-identical to a single-node answer, including pages
// whose links cross shards.
func TestRouterGoldenEquivalence(t *testing.T) {
	crawl := getCrawl(t)
	refDir, err := os.MkdirTemp("", "router-ref-*")
	if err != nil {
		t.Fatal(err)
	}
	opt := repo.DefaultOptions(refDir)
	opt.Schemes = []string{repo.SchemeSNode}
	opt.Layout = crawl.Order
	ref, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refEng, err := query.New(ref, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		w := startWorld(t, getRoot(t, k), k, 1)
		_, ts := newRouter(t, w, Config{})

		for _, q := range query.All() {
			want, err := refEng.Run(t.Context(), q)
			if err != nil {
				t.Fatal(err)
			}
			var got serve.QueryResponse
			if code := getJSON(t, fmt.Sprintf("%s/query?q=%d", ts.URL, q), &got); code != http.StatusOK {
				t.Fatalf("K=%d /query?q=%d: status %d", k, q, code)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("K=%d Q%d: %d rows via router, want %d\n got: %v\nwant: %v",
					k, q, len(got.Rows), len(want.Rows), got.Rows, want.Rows)
			}
			for i := range want.Rows {
				if got.Rows[i].Key != want.Rows[i].Key {
					t.Fatalf("K=%d Q%d row %d: key %q, want %q", k, q, i, got.Rows[i].Key, want.Rows[i].Key)
				}
				if diff := math.Abs(got.Rows[i].Value - want.Rows[i].Value); diff > 1e-9*math.Max(1, math.Abs(want.Rows[i].Value)) {
					t.Fatalf("K=%d Q%d row %d (%s): value %v, want %v",
						k, q, i, got.Rows[i].Key, got.Rows[i].Value, want.Rows[i].Value)
				}
			}
		}

		for _, p := range crossShardPages(t, w.manifest, 8) {
			var got serve.OutResponse
			if code := getJSON(t, fmt.Sprintf("%s/out?page=%d", ts.URL, p), &got); code != http.StatusOK {
				t.Fatalf("K=%d /out?page=%d: status %d", k, p, code)
			}
			want := crawl.Corpus.Graph.Out(p)
			if len(got.Neighbors) != len(want) {
				t.Fatalf("K=%d page %d: %d neighbors via router, want %d", k, p, len(got.Neighbors), len(want))
			}
			for i := range want {
				if got.Neighbors[i] != want[i] {
					t.Fatalf("K=%d page %d neighbor %d: %d, want %d", k, p, i, got.Neighbors[i], want[i])
				}
			}
		}
	}
}

// TestRouterBadParams: the router validates before fanning out.
func TestRouterBadParams(t *testing.T) {
	w := startWorld(t, getRoot(t, 2), 2, 1)
	_, ts := newRouter(t, w, Config{})
	for path, want := range map[string]int{
		"/out?page=xyz":       http.StatusBadRequest,
		"/out?page=-5":        http.StatusBadRequest,
		"/out?page=999999999": http.StatusNotFound,
		"/query?q=0":          http.StatusBadRequest,
		"/query?q=7":          http.StatusBadRequest,
	} {
		if code := getJSON(t, ts.URL+path, nil); code != want {
			t.Errorf("%s: status %d, want %d", path, code, want)
		}
	}
}

// TestKillOneReplicaStillServes: with two replicas per shard and one
// killed, every query class keeps answering through failover, and the
// dead replica is ejected after EjectAfter consecutive failures.
func TestKillOneReplicaStillServes(t *testing.T) {
	k := 2
	w := startWorld(t, getRoot(t, k), k, 2)
	reg := metrics.NewRegistry()
	r, ts := newRouter(t, w, Config{EjectAfter: 2, Registry: reg})

	// Kill the first replica of every shard.
	for _, urls := range w.replicas {
		w.flaky[urls[0]].down.Store(true)
	}
	for _, q := range query.All() {
		var got serve.QueryResponse
		if code := getJSON(t, fmt.Sprintf("%s/query?q=%d", ts.URL, q), &got); code != http.StatusOK {
			t.Fatalf("/query?q=%d with one replica down: status %d", q, code)
		}
		if len(got.Rows) == 0 {
			t.Fatalf("Q%d: no rows through failover", q)
		}
	}
	for _, p := range crossShardPages(t, w.manifest, 2) {
		if code := getJSON(t, fmt.Sprintf("%s/out?page=%d", ts.URL, p), nil); code != http.StatusOK {
			t.Fatalf("/out?page=%d with one replica down: status %d", p, code)
		}
	}
	if got := reg.Snapshot().Counters["router_replica_ejected"]; got < 2 {
		t.Fatalf("router_replica_ejected = %d, want >= 2 (one per shard)", got)
	}
	if got := reg.Snapshot().Counters["router_failovers"]; got == 0 {
		t.Fatal("router_failovers = 0 despite a dead replica")
	}
	// Ejected replicas are skipped: candidates lead with the healthy one.
	for _, set := range r.shards {
		if set.replicas[0].healthy.Load() {
			t.Fatal("killed replica still marked healthy")
		}
	}
}

// TestProbeReadmission: an ejected replica whose /healthz recovers is
// re-admitted by the probe loop and serves again.
func TestProbeReadmission(t *testing.T) {
	k := 2
	w := startWorld(t, getRoot(t, k), k, 2)
	reg := metrics.NewRegistry()
	r, ts := newRouter(t, w, Config{EjectAfter: 1, Registry: reg})

	victim := w.replicas[0][0]
	w.flaky[victim].down.Store(true)
	// Drive traffic until the victim is ejected.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters["router_replica_ejected"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim was never ejected")
		}
		getJSON(t, ts.URL+"/query?q=1", nil)
	}
	// Probe while still down: stays ejected.
	r.Probe()
	if reg.Snapshot().Counters["router_replica_readmitted"] != 0 {
		t.Fatal("down replica was re-admitted")
	}
	// Recover and probe: re-admitted and healthy again.
	w.flaky[victim].down.Store(false)
	r.Probe()
	if reg.Snapshot().Counters["router_replica_readmitted"] != 1 {
		t.Fatal("recovered replica was not re-admitted by the probe")
	}
	for _, set := range r.shards {
		for _, rep := range set.replicas {
			if !rep.healthy.Load() {
				t.Fatalf("replica %s still ejected after recovery", rep.url)
			}
		}
	}
	if code := getJSON(t, ts.URL+"/query?q=2", nil); code != http.StatusOK {
		t.Fatalf("query after re-admission: status %d", code)
	}
}

// TestOneShardAllDownFailsClosed: when every replica of one shard is
// down, mining queries answer 503 (a partial merge would be silently
// wrong) and /out fails only for pages that shard owns.
func TestOneShardAllDownFailsClosed(t *testing.T) {
	k := 2
	w := startWorld(t, getRoot(t, k), k, 1)
	_, ts := newRouter(t, w, Config{EjectAfter: 1})
	w.flaky[w.replicas[1][0]].down.Store(true)

	if code := getJSON(t, ts.URL+"/query?q=1", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/query with shard 1 down: status %d, want 503", code)
	}
	m := w.manifest
	var owned0, owned1 webgraph.PageID = -1, -1
	for p := webgraph.PageID(0); int(p) < m.NumPages; p++ {
		if m.ShardOf(p) == 0 && owned0 < 0 {
			owned0 = p
		}
		if m.ShardOf(p) == 1 && owned1 < 0 {
			owned1 = p
		}
	}
	if code := getJSON(t, fmt.Sprintf("%s/out?page=%d", ts.URL, owned0), nil); code != http.StatusOK {
		t.Fatalf("/out for healthy shard: status %d", code)
	}
	if code := getJSON(t, fmt.Sprintf("%s/out?page=%d", ts.URL, owned1), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/out for dead shard: status %d, want 503", code)
	}
}

// TestVersionSkewRejected: a replica answering with a different
// manifest version is never merged from.
func TestVersionSkewRejected(t *testing.T) {
	w := startWorld(t, getRoot(t, 2), 2, 1)
	// Impersonate shard 1 with a replica built under another partition.
	skewed := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("X-SNode-Shard-Version", "deadbeefdeadbeef")
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(rw, `{"query":1,"shard":1,"partials":[],"nav_ms":0}`)
	}))
	defer skewed.Close()
	w.replicas[1] = []string{skewed.URL}
	reg := metrics.NewRegistry()
	_, ts := newRouter(t, w, Config{EjectAfter: 1, Registry: reg})

	if code := getJSON(t, ts.URL+"/query?q=1", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/query against skewed replica: status %d, want 503", code)
	}
	if reg.Snapshot().Counters["router_version_skew"] == 0 {
		t.Fatal("version skew not counted")
	}
}
