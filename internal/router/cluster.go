package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"context"

	"snode/internal/metrics"
)

// Fleet metrics federation: the router scrapes every replica's
// /metrics.json, merges the snapshots bucket-wise (metrics.MergeAll),
// and serves the per-replica, per-shard, and cluster-wide views at
// /cluster/metrics. A replica that stops answering is reported from
// the router's scrape cache with a staleness mark and the snapshot's
// age, so an ejected replica's last-known counters stay visible
// instead of silently vanishing from the cluster totals.

// ReplicaMetrics is one replica's entry in the federation response.
type ReplicaMetrics struct {
	Shard   int    `json:"shard"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Stale marks a snapshot served from the scrape cache because the
	// live scrape failed; AgeSeconds is how old the snapshot is.
	Stale      bool    `json:"stale"`
	AgeSeconds float64 `json:"age_seconds"`
	Error      string  `json:"error,omitempty"`
	Snapshot   *metrics.Snapshot `json:"snapshot,omitempty"`
}

// ShardMetrics is one shard's merged view across its replicas.
type ShardMetrics struct {
	Shard    int              `json:"shard"`
	Replicas int              `json:"replicas"`
	Merged   metrics.Snapshot `json:"merged"`
}

// ClusterMetrics is the /cluster/metrics response: every replica's
// snapshot (live or stale-cached), per-shard merges, and the
// cluster-wide merge of everything the scrape could see.
type ClusterMetrics struct {
	At       time.Time        `json:"at"`
	Shards   int              `json:"shards"`
	Replicas []ReplicaMetrics `json:"replicas"`
	PerShard []ShardMetrics   `json:"per_shard"`
	Cluster  metrics.Snapshot `json:"cluster"`
	// Errors carries scrape and merge failures (a histogram
	// bounds-mismatch between replicas lands here, not in a 500).
	Errors []string `json:"errors,omitempty"`
}

// scrapeReplica fetches one replica's /metrics.json and refreshes its
// cache; on failure it falls back to the cached snapshot, marked
// stale.
func (r *Router) scrapeReplica(ctx context.Context, s int, rep *replica, now time.Time) ReplicaMetrics {
	out := ReplicaMetrics{Shard: s, URL: rep.url, Healthy: rep.healthy.Load()}
	snap, err := r.fetchSnapshot(ctx, rep.url)
	if err == nil {
		rep.scrapeMu.Lock()
		rep.lastSnap, rep.lastAt = snap, now
		rep.scrapeMu.Unlock()
		out.Snapshot = snap
		return out
	}
	out.Error = err.Error()
	rep.scrapeMu.Lock()
	cached, at := rep.lastSnap, rep.lastAt
	rep.scrapeMu.Unlock()
	if cached != nil {
		out.Snapshot = cached
		out.Stale = true
		out.AgeSeconds = now.Sub(at).Seconds()
	}
	return out
}

func (r *Router) fetchSnapshot(ctx context.Context, base string) (*metrics.Snapshot, error) {
	ctx, cancel := context.WithTimeout(ctx, r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics.json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("%s/metrics.json: status %d", base, resp.StatusCode)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%s/metrics.json: %w", base, err)
	}
	return &snap, nil
}

// ScrapeCluster scrapes every replica concurrently and builds the
// federated view. Exported so the load harness can read the cluster
// totals in-process.
func (r *Router) ScrapeCluster(ctx context.Context) ClusterMetrics {
	now := time.Now()
	cm := ClusterMetrics{At: now, Shards: len(r.shards)}

	type slot struct {
		s   int
		idx int
	}
	var slots []slot
	for s, set := range r.shards {
		for i := range set.replicas {
			slots = append(slots, slot{s, i})
		}
	}
	results := make([]ReplicaMetrics, len(slots))
	var wg sync.WaitGroup
	for i, sl := range slots {
		wg.Add(1)
		go func(i int, sl slot) {
			defer wg.Done()
			results[i] = r.scrapeReplica(ctx, sl.s, r.shards[sl.s].replicas[sl.idx], now)
		}(i, sl)
	}
	wg.Wait()
	cm.Replicas = results

	perShard := make([][]metrics.Snapshot, len(r.shards))
	var all []metrics.Snapshot
	for _, rm := range results {
		if rm.Snapshot == nil {
			continue
		}
		perShard[rm.Shard] = append(perShard[rm.Shard], *rm.Snapshot)
		all = append(all, *rm.Snapshot)
	}
	for s, snaps := range perShard {
		merged, err := metrics.MergeAll(snaps...)
		if err != nil {
			cm.Errors = append(cm.Errors, fmt.Sprintf("shard %d merge: %v", s, err))
		}
		cm.PerShard = append(cm.PerShard, ShardMetrics{Shard: s, Replicas: len(snaps), Merged: merged})
	}
	cluster, err := metrics.MergeAll(all...)
	if err != nil {
		cm.Errors = append(cm.Errors, fmt.Sprintf("cluster merge: %v", err))
	}
	cm.Cluster = cluster
	return cm
}

// handleClusterMetrics serves the federated view as JSON.
func (r *Router) handleClusterMetrics(w http.ResponseWriter, req *http.Request) {
	cm := r.ScrapeCluster(req.Context())
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(cm)
}
