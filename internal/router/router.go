// Package router is the scatter-gather front of the distributed
// serving tier: one process that owns a shard manifest, fans /out and
// /query out to the shard replicas over HTTP, and merges the partials
// into responses row-identical to a single-node server's.
//
// Per query class:
//
//   - /out (navigation) routes to the ONE shard owning the page — the
//     common case, thanks to the domain partition — and appends the
//     page's cross-shard targets from the forward boundary store the
//     router keeps resident, so the client sees the full adjacency.
//   - /query (mining) scatters ?partial=1 to EVERY shard, then merges
//     the untruncated group-tagged partial rows with the query's merge
//     class (query.MergePartials).
//
// Replica health is tracked per URL: EjectAfter consecutive failures
// stop a replica from being picked, a background prober re-admits it
// when /healthz answers again, and any successful response heals it
// immediately. A failed leg fails over to the shard's next replica
// within the same request; only when every replica of a shard is down
// does the request fail (503). 429s from shards are not failures —
// they aggregate into one 429 whose Retry-After is the maximum hint
// any shard returned, so the client backs off enough for the slowest
// member.
package router

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"snode/internal/metrics"
	"snode/internal/query"
	"snode/internal/serve"
	"snode/internal/shard"
	"snode/internal/slo"
	"snode/internal/trace"
	"snode/internal/webgraph"
)

// Config sizes a Router.
type Config struct {
	// Manifest describes the partition the replicas serve. Required.
	Manifest *shard.Manifest
	// Boundaries are the per-shard FORWARD boundary stores (cross-shard
	// out-edges of pages each shard owns), indexed by shard. Required,
	// len == Manifest.NumShards. shard.LoadFwdBoundaries loads them.
	Boundaries []*shard.Boundary
	// Replicas lists each shard's replica base URLs
	// ("http://host:port"), indexed by shard. Every shard needs at
	// least one.
	Replicas [][]string
	// Client issues the fan-out requests (default: a plain
	// http.Client; per-leg deadlines come from ShardTimeout/ctx).
	Client *http.Client
	// ShardTimeout bounds each leg of a fan-out (default 5s); the
	// request's own deadline still applies on top.
	ShardTimeout time.Duration
	// EjectAfter is the consecutive-failure count that ejects a replica
	// from selection (default 3).
	EjectAfter int
	// ProbeInterval is the ejected-replica health-probe period
	// (default 500ms; <0 disables the prober — tests drive Probe
	// directly).
	ProbeInterval time.Duration
	// Registry, when set, receives the router_* counters, the per-class
	// end-to-end latency histograms router_latency_nav /
	// router_latency_mining (p99-side buckets carry exemplars naming
	// stitched distributed traces), and backs the /metrics,
	// /metrics.json, and /slo endpoints Register mounts.
	Registry *metrics.Registry
	// Tracer, when set, samples routed requests: the fan-out and merge
	// become router.fanout / router.merge spans, every fan-out leg of a
	// sampled request carries the X-SNode-Trace header so shards
	// force-trace it, and the shards' completed span subtrees are
	// fetched back and stitched into one distributed trace, served at
	// /debug/traces (Register mounts it). Untraced requests add no
	// header and no allocations to the fan-out.
	Tracer *trace.Tracer
	// SLO configures the scoreboard behind /slo (requires Registry;
	// zero-valued fields take the documented defaults).
	SLO SLOConfig
}

// SLOConfig is the router's serving objectives for the /slo
// scoreboard, evaluated over the router's own per-class counters and
// latency histograms (the client-facing view of the whole tier).
type SLOConfig struct {
	// Window is the rolling evaluation window (default 60s).
	Window time.Duration
	// Availability is the per-class availability target (default
	// 0.999): sheds and 5xx legs count against it.
	Availability float64
	// NavP99 / MiningP99 are the per-class p99 latency targets
	// (defaults 150ms nav, 1s mining).
	NavP99    time.Duration
	MiningP99 time.Duration
}

// replica is one backend URL plus its health state and the federation
// scrape cache: the last successful /metrics.json snapshot, served
// with a staleness mark when the replica stops answering.
type replica struct {
	url     string
	fails   atomic.Int32
	healthy atomic.Bool

	scrapeMu sync.Mutex
	lastSnap *metrics.Snapshot
	lastAt   time.Time
}

// shardSet is one shard's replicas with a round-robin cursor.
type shardSet struct {
	replicas []*replica
	next     atomic.Uint32
}

// candidates returns the replicas to try, healthy first (starting at
// the round-robin cursor), ejected ones last — a fully-ejected shard
// is still attempted, since in-band success heals immediately.
func (s *shardSet) candidates() []*replica {
	n := len(s.replicas)
	start := int(s.next.Add(1)-1) % n
	out := make([]*replica, 0, n)
	var down []*replica
	for i := 0; i < n; i++ {
		r := s.replicas[(start+i)%n]
		if r.healthy.Load() {
			out = append(out, r)
		} else {
			down = append(down, r)
		}
	}
	return append(out, down...)
}

// Router fans requests out to shard replicas. Safe for concurrent use.
type Router struct {
	manifest   *shard.Manifest
	boundaries []*shard.Boundary
	shards     []*shardSet
	client     *http.Client
	timeout    time.Duration
	ejectAfter int
	tracer     *trace.Tracer

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once

	reg   *metrics.Registry
	board *slo.Scoreboard

	navRequests, miningRequests *metrics.Counter
	failovers, fanoutErrors     *metrics.Counter
	shedTotal                   *metrics.Counter
	navShed, miningShed         *metrics.Counter
	navErrors, miningErrors     *metrics.Counter
	ejections, readmissions     *metrics.Counter
	versionSkew                 *metrics.Counter
	stitched, stitchErrors      *metrics.Counter

	navLatency, miningLatency *metrics.Histogram
}

// New builds a router and, unless ProbeInterval < 0, starts its
// health prober. Call Close to stop it.
func New(cfg Config) (*Router, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("router: Config.Manifest required")
	}
	k := cfg.Manifest.NumShards
	if len(cfg.Boundaries) != k {
		return nil, fmt.Errorf("router: %d boundary stores for %d shards", len(cfg.Boundaries), k)
	}
	if len(cfg.Replicas) != k {
		return nil, fmt.Errorf("router: replica lists for %d shards, want %d", len(cfg.Replicas), k)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 5 * time.Second
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 3
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	r := &Router{
		manifest:   cfg.Manifest,
		boundaries: cfg.Boundaries,
		client:     cfg.Client,
		timeout:    cfg.ShardTimeout,
		ejectAfter: cfg.EjectAfter,
		tracer:     cfg.Tracer,
		stopProbe:  make(chan struct{}),
	}
	for s, urls := range cfg.Replicas {
		if len(urls) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", s)
		}
		set := &shardSet{}
		for _, u := range urls {
			rep := &replica{url: u}
			rep.healthy.Store(true)
			set.replicas = append(set.replicas, rep)
		}
		r.shards = append(r.shards, set)
	}
	if reg := cfg.Registry; reg != nil {
		r.reg = reg
		r.navRequests = reg.Counter("router_nav_requests")
		r.miningRequests = reg.Counter("router_mining_requests")
		r.failovers = reg.Counter("router_failovers")
		r.fanoutErrors = reg.Counter("router_fanout_errors")
		r.shedTotal = reg.Counter("router_shed")
		r.navShed = reg.Counter("router_nav_shed")
		r.miningShed = reg.Counter("router_mining_shed")
		r.navErrors = reg.Counter("router_nav_errors")
		r.miningErrors = reg.Counter("router_mining_errors")
		r.ejections = reg.Counter("router_replica_ejected")
		r.readmissions = reg.Counter("router_replica_readmitted")
		r.versionSkew = reg.Counter("router_version_skew")
		r.stitched = reg.Counter("router_traces_stitched")
		r.stitchErrors = reg.Counter("router_stitch_errors")
		r.navLatency = reg.Histogram("router_latency_nav", nil)
		r.miningLatency = reg.Histogram("router_latency_mining", nil)
		r.board = slo.New(slo.Config{
			Window:     cfg.SLO.Window,
			Objectives: sloObjectives(cfg.SLO),
		})
	}
	if cfg.ProbeInterval > 0 {
		r.probeWG.Add(1)
		go r.probeLoop(cfg.ProbeInterval)
	}
	return r, nil
}

// Close stops the health prober.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.stopProbe) })
	r.probeWG.Wait()
}

// sloObjectives maps the router's SLO config onto its own metric
// names: the router is the client-facing front, so its counters and
// latency histograms ARE the tier's service level.
func sloObjectives(cfg SLOConfig) []slo.Objective {
	if cfg.Availability <= 0 || cfg.Availability >= 1 {
		cfg.Availability = 0.999
	}
	if cfg.NavP99 <= 0 {
		cfg.NavP99 = 150 * time.Millisecond
	}
	if cfg.MiningP99 <= 0 {
		cfg.MiningP99 = time.Second
	}
	return []slo.Objective{
		{
			Class:        "nav",
			TotalCounter: "router_nav_requests",
			BadCounters:  []string{"router_nav_shed", "router_nav_errors"},
			LatencyHist:  "router_latency_nav",
			Availability: cfg.Availability,
			P99:          cfg.NavP99,
		},
		{
			Class:        "mining",
			TotalCounter: "router_mining_requests",
			BadCounters:  []string{"router_mining_shed", "router_mining_errors"},
			LatencyHist:  "router_latency_mining",
			Availability: cfg.Availability,
			P99:          cfg.MiningP99,
		},
	}
}

// Scoreboard exposes the SLO scoreboard (nil without a Registry) so
// the load harness can sample it in-process.
func (r *Router) Scoreboard() *slo.Scoreboard { return r.board }

// Register mounts the routed endpoints on mux, plus the observability
// surface the router owns: /cluster/metrics always; /metrics,
// /metrics.json, and /slo when a Registry is configured; /debug/traces
// when a Tracer is configured.
func (r *Router) Register(mux *http.ServeMux) {
	mux.HandleFunc("/out", r.handleOut)
	mux.HandleFunc("/query", r.handleQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("/cluster/metrics", r.handleClusterMetrics)
	if r.reg != nil {
		mux.Handle("/metrics", r.reg.Handler())
		mux.Handle("/metrics.json", r.reg.JSONHandler())
		mux.Handle("/slo", slo.Handler(r.board, func() metrics.Snapshot { return r.reg.Snapshot() }))
	}
	if r.tracer != nil {
		mux.Handle("/debug/traces", trace.Handler(r.tracer))
	}
}

// Handler returns a standalone handler serving the routed endpoints.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	r.Register(mux)
	return mux
}

// inc bumps a counter that may be nil (no registry).
func inc(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

// markFailed records a replica failure and ejects it at the threshold.
func (r *Router) markFailed(rep *replica) {
	if int(rep.fails.Add(1)) >= r.ejectAfter && rep.healthy.CompareAndSwap(true, false) {
		inc(r.ejections)
	}
}

// markOK heals a replica on any successful in-band response.
func (r *Router) markOK(rep *replica) {
	rep.fails.Store(0)
	if rep.healthy.CompareAndSwap(false, true) {
		inc(r.readmissions)
	}
}

// probeLoop periodically re-probes ejected replicas.
func (r *Router) probeLoop(every time.Duration) {
	defer r.probeWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stopProbe:
			return
		case <-t.C:
			r.Probe()
		}
	}
}

// Probe health-checks every ejected replica once and re-admits the
// ones whose /healthz answers 200. Exported so tests (and operators)
// can force a probe round instead of waiting out the interval.
func (r *Router) Probe() {
	for _, set := range r.shards {
		for _, rep := range set.replicas {
			if rep.healthy.Load() {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
			if err != nil {
				cancel()
				continue
			}
			resp, err := r.client.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			cancel()
			if err == nil && resp.StatusCode == http.StatusOK {
				rep.fails.Store(0)
				if rep.healthy.CompareAndSwap(false, true) {
					inc(r.readmissions)
				}
			}
		}
	}
}

// shedInfo is a 429 relayed from a shard.
type shedInfo struct {
	retryAfter time.Duration
	body       []byte
}

// legResult is one shard leg's outcome: exactly one of body, shed, or
// err is meaningful. traceID and replicaURL identify the answering
// replica's force-sampled trace (zero/empty when the request was
// untraced or the shard kept no trace), for post-response stitching.
type legResult struct {
	body       []byte
	shed       *shedInfo
	err        error
	traceID    uint64
	replicaURL string
}

// injectTrace adds the cross-process propagation header to a fan-out
// leg. With no sampled router trace (hdr == "") it is a no-op that
// allocates nothing — the zero-alloc contract of the untraced path,
// asserted by TestCrossProcessUntracedZeroAlloc.
func injectTrace(req *http.Request, hdr string) {
	if hdr != "" {
		req.Header.Set(trace.HeaderTrace, hdr)
	}
}

// remoteTraceID reads the shard's trace-ID response header (0 when the
// leg was untraced; no parse work on the untraced path).
func remoteTraceID(resp *http.Response) uint64 {
	v := resp.Header.Get(trace.HeaderTraceID)
	if v == "" {
		return 0
	}
	id, _ := strconv.ParseUint(v, 10, 64)
	return id
}

// fetch runs one leg against shard s with replica failover: network
// errors, 5xx, and version skew try the next replica (recording the
// failure); a 2xx or 429 is a live replica's answer and heals it.
// traceHdr, when non-empty, is propagated so the shard force-samples
// the leg.
func (r *Router) fetch(ctx context.Context, s int, pathQuery, traceHdr string) legResult {
	var lastErr error
	for i, rep := range r.shards[s].candidates() {
		if i > 0 {
			inc(r.failovers)
		}
		legCtx, cancel := context.WithTimeout(ctx, r.timeout)
		req, err := http.NewRequestWithContext(legCtx, http.MethodGet, rep.url+pathQuery, nil)
		if err != nil {
			cancel()
			return legResult{err: err}
		}
		injectTrace(req, traceHdr)
		resp, err := r.client.Do(req)
		if err != nil {
			cancel()
			r.markFailed(rep)
			lastErr = err
			// The router's own request is dead: stop failing over.
			if ctx.Err() != nil {
				break
			}
			continue
		}
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if readErr != nil {
			r.markFailed(rep)
			lastErr = readErr
			continue
		}
		if v := resp.Header.Get("X-SNode-Shard-Version"); v != "" && v != r.manifest.Version {
			// Build/serve skew: this replica serves a different
			// partition; merging its rows would be silently wrong.
			inc(r.versionSkew)
			r.markFailed(rep)
			lastErr = fmt.Errorf("shard %d replica %s: manifest version %q, router has %q", s, rep.url, v, r.manifest.Version)
			continue
		}
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			r.markOK(rep)
			ra := time.Second
			if raw := resp.Header.Get("Retry-After"); raw != "" {
				if secs, err := strconv.ParseInt(raw, 10, 64); err == nil {
					ra = time.Duration(secs) * time.Second
				}
			}
			// Shed legs are traced too: admission rejections are exactly
			// the requests worth a distributed look.
			return legResult{
				shed:       &shedInfo{retryAfter: ra, body: body},
				traceID:    remoteTraceID(resp),
				replicaURL: rep.url,
			}
		case resp.StatusCode >= 500:
			r.markFailed(rep)
			lastErr = fmt.Errorf("shard %d replica %s: status %d", s, rep.url, resp.StatusCode)
			continue
		case resp.StatusCode != http.StatusOK:
			// 4xx other than 429: the request itself is bad; failing over
			// would return the same answer.
			r.markOK(rep)
			return legResult{err: fmt.Errorf("shard %d: status %d: %s", s, resp.StatusCode, body)}
		}
		r.markOK(rep)
		return legResult{body: body, traceID: remoteTraceID(resp), replicaURL: rep.url}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shard %d: no replicas", s)
	}
	inc(r.fanoutErrors)
	return legResult{err: fmt.Errorf("shard %d: all replicas failed: %w", s, lastErr)}
}

// writeShed relays an aggregated 429, charged to the class's error
// budget (the /slo scoreboard reads the per-class shed counters).
func (r *Router) writeShed(w http.ResponseWriter, class string, sh *shedInfo) {
	inc(r.shedTotal)
	switch class {
	case "nav":
		inc(r.navShed)
	case "mining":
		inc(r.miningShed)
	}
	w.Header().Set("Retry-After", strconv.FormatInt(int64(math.Ceil(sh.retryAfter.Seconds())), 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	w.Write(sh.body)
}

// stitchLeg fetches one leg's completed span subtree from the replica
// that answered it and attaches it to the router trace. Called after
// the router span tree is finished and before the response is written,
// so an exported router trace is always fully stitched. The fetch uses
// its own context: the stitch must survive the routed request's
// deadline (the data exists, the budget was for the answer).
func (r *Router) stitchLeg(root *trace.Trace, s int, leg legResult) {
	if root == nil || leg.traceID == 0 || leg.replicaURL == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	url := fmt.Sprintf("%s/debug/traces?id=%d", leg.replicaURL, leg.traceID)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		inc(r.stitchErrors)
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		inc(r.stitchErrors)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		inc(r.stitchErrors)
		return
	}
	var tj trace.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&tj); err != nil {
		inc(r.stitchErrors)
		return
	}
	root.AttachRemote(trace.Remote{
		Label:    fmt.Sprintf("shard%d %s", s, leg.replicaURL),
		TraceID:  tj.ID,
		Start:    tj.Start,
		Root:     tj.Root,
		Counters: tj.Counters,
	})
	inc(r.stitched)
}

// passthroughQuery forwards the client's deadline to the shard legs.
func passthroughQuery(req *http.Request, base string) string {
	if d := req.URL.Query().Get("deadline_ms"); d != "" {
		return base + "&deadline_ms=" + d
	}
	return base
}

// startTraced begins a routed request's observation: the sampled
// router trace (when the tracer's rotation picks this request), the
// propagation header value for its fan-out legs, and a done func that
// freezes the end-to-end duration and finishes the trace. done is
// idempotent; callers invoke it explicitly before writing the response
// (so the exported trace never shows an open root and stitching
// happens post-finish, pre-write) and rely on the deferred call only
// as a backstop on early returns.
func (r *Router) startTraced(w http.ResponseWriter, req *http.Request, class string) (ctx context.Context, root *trace.Trace, hdr string, done func() time.Duration) {
	start := time.Now()
	ctx = req.Context()
	var tr *trace.Trace
	if r.tracer != nil {
		ctx, tr = r.tracer.StartRequest(ctx, class)
	}
	root = tr
	if root != nil {
		hdr = trace.FormatHeader(root.ID, true)
		// Name the stitched trace in the response so a slow request is
		// one header read away from its distributed breakdown.
		w.Header().Set(trace.HeaderTraceID, strconv.FormatUint(root.ID, 10))
	}
	var dur time.Duration
	done = func() time.Duration {
		if dur == 0 {
			dur = time.Since(start)
		}
		if tr != nil {
			r.tracer.Finish(tr)
			tr = nil
		}
		return dur
	}
	return ctx, root, hdr, done
}

// observe records one finished request into the class latency
// histogram, carrying the stitched trace's ID as the exemplar so a
// p99 outlier bucket names a fetchable distributed trace.
func observe(h *metrics.Histogram, dur time.Duration, root *trace.Trace) {
	if h == nil {
		return
	}
	var ex uint64
	if root != nil {
		ex = root.ID
	}
	h.ObserveExemplar(int64(dur), ex)
}

// handleOut routes the navigation class: one shard leg plus the
// router-resident boundary overlay.
func (r *Router) handleOut(w http.ResponseWriter, req *http.Request) {
	raw := req.URL.Query().Get("page")
	page, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || page < 0 {
		http.Error(w, fmt.Sprintf("bad page %q", raw), http.StatusBadRequest)
		return
	}
	s := r.manifest.ShardOf(webgraph.PageID(page))
	if s < 0 {
		http.Error(w, fmt.Sprintf("page %d not in corpus (%d pages)", page, r.manifest.NumPages), http.StatusNotFound)
		return
	}
	inc(r.navRequests)
	ctx, root, hdr, done := r.startTraced(w, req, "router.nav")
	defer func() { observe(r.navLatency, done(), root) }()

	fanCtx, sp := trace.Start(ctx, "router.fanout")
	leg := r.fetch(fanCtx, s, passthroughQuery(req, fmt.Sprintf("/out?page=%d", page)), hdr)
	sp.End()
	switch {
	case leg.shed != nil:
		done()
		r.stitchLeg(root, s, leg)
		r.writeShed(w, "nav", leg.shed)
		return
	case leg.err != nil:
		inc(r.navErrors)
		done()
		http.Error(w, leg.err.Error(), http.StatusServiceUnavailable)
		return
	}
	var out serve.OutResponse
	if err := json.Unmarshal(leg.body, &out); err != nil {
		inc(r.navErrors)
		done()
		http.Error(w, fmt.Sprintf("shard %d: bad /out body: %v", s, err), http.StatusBadGateway)
		return
	}
	_, msp := trace.Start(ctx, "router.merge")
	out.Neighbors = append(out.Neighbors, r.boundaries[s].Out(webgraph.PageID(page))...)
	sort.Slice(out.Neighbors, func(i, j int) bool { return out.Neighbors[i] < out.Neighbors[j] })
	msp.End()
	if out.Neighbors == nil {
		out.Neighbors = []webgraph.PageID{}
	}
	done()
	r.stitchLeg(root, s, leg)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleQuery routes the mining class: scatter ?partial=1 to every
// shard, gather, merge.
func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	raw := req.URL.Query().Get("q")
	qn, err := strconv.Atoi(raw)
	if err != nil || qn < int(query.Q1) || qn > int(query.Q6) {
		http.Error(w, fmt.Sprintf("bad q %q (want 1..6)", raw), http.StatusBadRequest)
		return
	}
	inc(r.miningRequests)
	ctx, root, hdr, done := r.startTraced(w, req, "router.mining")
	defer func() { observe(r.miningLatency, done(), root) }()

	k := r.manifest.NumShards
	legs := make([]legResult, k)
	fanCtx, sp := trace.Start(ctx, "router.fanout")
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			legs[s] = r.fetch(fanCtx, s, passthroughQuery(req, fmt.Sprintf("/query?q=%d&partial=1", qn)), hdr)
		}(s)
	}
	wg.Wait()
	sp.End()
	stitchAll := func() {
		for s, leg := range legs {
			r.stitchLeg(root, s, leg)
		}
	}

	// One shed leg sheds the whole request: a partial merge would be
	// silently wrong. Retry-After aggregates as the max, so the client
	// backs off enough for the slowest shard.
	var shed *shedInfo
	for _, leg := range legs {
		if leg.shed != nil && (shed == nil || leg.shed.retryAfter > shed.retryAfter) {
			shed = leg.shed
		}
	}
	if shed != nil {
		done()
		stitchAll()
		r.writeShed(w, "mining", shed)
		return
	}
	for s, leg := range legs {
		if leg.err != nil {
			inc(r.miningErrors)
			done()
			stitchAll()
			http.Error(w, fmt.Sprintf("shard %d unavailable: %v", s, leg.err), http.StatusServiceUnavailable)
			return
		}
	}
	parts := make([][]query.PartialRow, k)
	navMS := 0.0
	for s, leg := range legs {
		var pr serve.PartialQueryResponse
		if err := json.Unmarshal(leg.body, &pr); err != nil {
			inc(r.miningErrors)
			done()
			http.Error(w, fmt.Sprintf("shard %d: bad partial body: %v", s, err), http.StatusBadGateway)
			return
		}
		parts[s] = pr.Partials
		// The scatter runs the legs concurrently, so the merged query's
		// navigation cost is the slowest leg, not the sum.
		if pr.NavMS > navMS {
			navMS = pr.NavMS
		}
	}
	_, msp := trace.Start(ctx, "router.merge")
	rows := query.MergePartials(query.ID(qn), parts)
	msp.End()
	if rows == nil {
		rows = []query.Row{}
	}
	done()
	stitchAll()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(serve.QueryResponse{Query: qn, Rows: rows, NavMS: navMS})
}
