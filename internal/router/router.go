// Package router is the scatter-gather front of the distributed
// serving tier: one process that owns a shard manifest, fans /out and
// /query out to the shard replicas over HTTP, and merges the partials
// into responses row-identical to a single-node server's.
//
// Per query class:
//
//   - /out (navigation) routes to the ONE shard owning the page — the
//     common case, thanks to the domain partition — and appends the
//     page's cross-shard targets from the forward boundary store the
//     router keeps resident, so the client sees the full adjacency.
//   - /query (mining) scatters ?partial=1 to EVERY shard, then merges
//     the untruncated group-tagged partial rows with the query's merge
//     class (query.MergePartials).
//
// Replica health is tracked per URL: EjectAfter consecutive failures
// stop a replica from being picked, a background prober re-admits it
// when /healthz answers again, and any successful response heals it
// immediately. A failed leg fails over to the shard's next replica
// within the same request; only when every replica of a shard is down
// does the request fail (503). 429s from shards are not failures —
// they aggregate into one 429 whose Retry-After is the maximum hint
// any shard returned, so the client backs off enough for the slowest
// member.
package router

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"snode/internal/metrics"
	"snode/internal/query"
	"snode/internal/serve"
	"snode/internal/shard"
	"snode/internal/trace"
	"snode/internal/webgraph"
)

// Config sizes a Router.
type Config struct {
	// Manifest describes the partition the replicas serve. Required.
	Manifest *shard.Manifest
	// Boundaries are the per-shard FORWARD boundary stores (cross-shard
	// out-edges of pages each shard owns), indexed by shard. Required,
	// len == Manifest.NumShards. shard.LoadFwdBoundaries loads them.
	Boundaries []*shard.Boundary
	// Replicas lists each shard's replica base URLs
	// ("http://host:port"), indexed by shard. Every shard needs at
	// least one.
	Replicas [][]string
	// Client issues the fan-out requests (default: a plain
	// http.Client; per-leg deadlines come from ShardTimeout/ctx).
	Client *http.Client
	// ShardTimeout bounds each leg of a fan-out (default 5s); the
	// request's own deadline still applies on top.
	ShardTimeout time.Duration
	// EjectAfter is the consecutive-failure count that ejects a replica
	// from selection (default 3).
	EjectAfter int
	// ProbeInterval is the ejected-replica health-probe period
	// (default 500ms; <0 disables the prober — tests drive Probe
	// directly).
	ProbeInterval time.Duration
	// Registry, when set, receives the router_* counters.
	Registry *metrics.Registry
	// Tracer, when set, samples routed requests: the fan-out and merge
	// become router.fanout / router.merge spans.
	Tracer *trace.Tracer
}

// replica is one backend URL plus its health state.
type replica struct {
	url     string
	fails   atomic.Int32
	healthy atomic.Bool
}

// shardSet is one shard's replicas with a round-robin cursor.
type shardSet struct {
	replicas []*replica
	next     atomic.Uint32
}

// candidates returns the replicas to try, healthy first (starting at
// the round-robin cursor), ejected ones last — a fully-ejected shard
// is still attempted, since in-band success heals immediately.
func (s *shardSet) candidates() []*replica {
	n := len(s.replicas)
	start := int(s.next.Add(1)-1) % n
	out := make([]*replica, 0, n)
	var down []*replica
	for i := 0; i < n; i++ {
		r := s.replicas[(start+i)%n]
		if r.healthy.Load() {
			out = append(out, r)
		} else {
			down = append(down, r)
		}
	}
	return append(out, down...)
}

// Router fans requests out to shard replicas. Safe for concurrent use.
type Router struct {
	manifest   *shard.Manifest
	boundaries []*shard.Boundary
	shards     []*shardSet
	client     *http.Client
	timeout    time.Duration
	ejectAfter int
	tracer     *trace.Tracer

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once

	navRequests, miningRequests *metrics.Counter
	failovers, fanoutErrors     *metrics.Counter
	shedTotal                   *metrics.Counter
	ejections, readmissions     *metrics.Counter
	versionSkew                 *metrics.Counter
}

// New builds a router and, unless ProbeInterval < 0, starts its
// health prober. Call Close to stop it.
func New(cfg Config) (*Router, error) {
	if cfg.Manifest == nil {
		return nil, fmt.Errorf("router: Config.Manifest required")
	}
	k := cfg.Manifest.NumShards
	if len(cfg.Boundaries) != k {
		return nil, fmt.Errorf("router: %d boundary stores for %d shards", len(cfg.Boundaries), k)
	}
	if len(cfg.Replicas) != k {
		return nil, fmt.Errorf("router: replica lists for %d shards, want %d", len(cfg.Replicas), k)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 5 * time.Second
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 3
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	r := &Router{
		manifest:   cfg.Manifest,
		boundaries: cfg.Boundaries,
		client:     cfg.Client,
		timeout:    cfg.ShardTimeout,
		ejectAfter: cfg.EjectAfter,
		tracer:     cfg.Tracer,
		stopProbe:  make(chan struct{}),
	}
	for s, urls := range cfg.Replicas {
		if len(urls) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", s)
		}
		set := &shardSet{}
		for _, u := range urls {
			rep := &replica{url: u}
			rep.healthy.Store(true)
			set.replicas = append(set.replicas, rep)
		}
		r.shards = append(r.shards, set)
	}
	if reg := cfg.Registry; reg != nil {
		r.navRequests = reg.Counter("router_nav_requests")
		r.miningRequests = reg.Counter("router_mining_requests")
		r.failovers = reg.Counter("router_failovers")
		r.fanoutErrors = reg.Counter("router_fanout_errors")
		r.shedTotal = reg.Counter("router_shed")
		r.ejections = reg.Counter("router_replica_ejected")
		r.readmissions = reg.Counter("router_replica_readmitted")
		r.versionSkew = reg.Counter("router_version_skew")
	}
	if cfg.ProbeInterval > 0 {
		r.probeWG.Add(1)
		go r.probeLoop(cfg.ProbeInterval)
	}
	return r, nil
}

// Close stops the health prober.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.stopProbe) })
	r.probeWG.Wait()
}

// Register mounts the routed endpoints on mux.
func (r *Router) Register(mux *http.ServeMux) {
	mux.HandleFunc("/out", r.handleOut)
	mux.HandleFunc("/query", r.handleQuery)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
}

// Handler returns a standalone handler serving the routed endpoints.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	r.Register(mux)
	return mux
}

// inc bumps a counter that may be nil (no registry).
func inc(c *metrics.Counter) {
	if c != nil {
		c.Inc()
	}
}

// markFailed records a replica failure and ejects it at the threshold.
func (r *Router) markFailed(rep *replica) {
	if int(rep.fails.Add(1)) >= r.ejectAfter && rep.healthy.CompareAndSwap(true, false) {
		inc(r.ejections)
	}
}

// markOK heals a replica on any successful in-band response.
func (r *Router) markOK(rep *replica) {
	rep.fails.Store(0)
	if rep.healthy.CompareAndSwap(false, true) {
		inc(r.readmissions)
	}
}

// probeLoop periodically re-probes ejected replicas.
func (r *Router) probeLoop(every time.Duration) {
	defer r.probeWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stopProbe:
			return
		case <-t.C:
			r.Probe()
		}
	}
}

// Probe health-checks every ejected replica once and re-admits the
// ones whose /healthz answers 200. Exported so tests (and operators)
// can force a probe round instead of waiting out the interval.
func (r *Router) Probe() {
	for _, set := range r.shards {
		for _, rep := range set.replicas {
			if rep.healthy.Load() {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
			if err != nil {
				cancel()
				continue
			}
			resp, err := r.client.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			cancel()
			if err == nil && resp.StatusCode == http.StatusOK {
				rep.fails.Store(0)
				if rep.healthy.CompareAndSwap(false, true) {
					inc(r.readmissions)
				}
			}
		}
	}
}

// shedInfo is a 429 relayed from a shard.
type shedInfo struct {
	retryAfter time.Duration
	body       []byte
}

// legResult is one shard leg's outcome: exactly one of body, shed, or
// err is meaningful.
type legResult struct {
	body []byte
	shed *shedInfo
	err  error
}

// fetch runs one leg against shard s with replica failover: network
// errors, 5xx, and version skew try the next replica (recording the
// failure); a 2xx or 429 is a live replica's answer and heals it.
func (r *Router) fetch(ctx context.Context, s int, pathQuery string) legResult {
	var lastErr error
	for i, rep := range r.shards[s].candidates() {
		if i > 0 {
			inc(r.failovers)
		}
		legCtx, cancel := context.WithTimeout(ctx, r.timeout)
		req, err := http.NewRequestWithContext(legCtx, http.MethodGet, rep.url+pathQuery, nil)
		if err != nil {
			cancel()
			return legResult{err: err}
		}
		resp, err := r.client.Do(req)
		if err != nil {
			cancel()
			r.markFailed(rep)
			lastErr = err
			// The router's own request is dead: stop failing over.
			if ctx.Err() != nil {
				break
			}
			continue
		}
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		if readErr != nil {
			r.markFailed(rep)
			lastErr = readErr
			continue
		}
		if v := resp.Header.Get("X-SNode-Shard-Version"); v != "" && v != r.manifest.Version {
			// Build/serve skew: this replica serves a different
			// partition; merging its rows would be silently wrong.
			inc(r.versionSkew)
			r.markFailed(rep)
			lastErr = fmt.Errorf("shard %d replica %s: manifest version %q, router has %q", s, rep.url, v, r.manifest.Version)
			continue
		}
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			r.markOK(rep)
			ra := time.Second
			if raw := resp.Header.Get("Retry-After"); raw != "" {
				if secs, err := strconv.ParseInt(raw, 10, 64); err == nil {
					ra = time.Duration(secs) * time.Second
				}
			}
			return legResult{shed: &shedInfo{retryAfter: ra, body: body}}
		case resp.StatusCode >= 500:
			r.markFailed(rep)
			lastErr = fmt.Errorf("shard %d replica %s: status %d", s, rep.url, resp.StatusCode)
			continue
		case resp.StatusCode != http.StatusOK:
			// 4xx other than 429: the request itself is bad; failing over
			// would return the same answer.
			r.markOK(rep)
			return legResult{err: fmt.Errorf("shard %d: status %d: %s", s, resp.StatusCode, body)}
		}
		r.markOK(rep)
		return legResult{body: body}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shard %d: no replicas", s)
	}
	inc(r.fanoutErrors)
	return legResult{err: fmt.Errorf("shard %d: all replicas failed: %w", s, lastErr)}
}

// writeShed relays an aggregated 429.
func (r *Router) writeShed(w http.ResponseWriter, sh *shedInfo) {
	inc(r.shedTotal)
	w.Header().Set("Retry-After", strconv.FormatInt(int64(math.Ceil(sh.retryAfter.Seconds())), 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	w.Write(sh.body)
}

// passthroughQuery forwards the client's deadline to the shard legs.
func passthroughQuery(req *http.Request, base string) string {
	if d := req.URL.Query().Get("deadline_ms"); d != "" {
		return base + "&deadline_ms=" + d
	}
	return base
}

// handleOut routes the navigation class: one shard leg plus the
// router-resident boundary overlay.
func (r *Router) handleOut(w http.ResponseWriter, req *http.Request) {
	inc(r.navRequests)
	ctx := req.Context()
	var tr *trace.Trace
	if r.tracer != nil {
		ctx, tr = r.tracer.StartRequest(ctx, "router.nav")
		defer func() {
			if tr != nil {
				r.tracer.Finish(tr)
			}
		}()
	}
	raw := req.URL.Query().Get("page")
	page, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || page < 0 {
		http.Error(w, fmt.Sprintf("bad page %q", raw), http.StatusBadRequest)
		return
	}
	s := r.manifest.ShardOf(webgraph.PageID(page))
	if s < 0 {
		http.Error(w, fmt.Sprintf("page %d not in corpus (%d pages)", page, r.manifest.NumPages), http.StatusNotFound)
		return
	}
	fanCtx, sp := trace.Start(ctx, "router.fanout")
	leg := r.fetch(fanCtx, s, passthroughQuery(req, fmt.Sprintf("/out?page=%d", page)))
	sp.End()
	switch {
	case leg.shed != nil:
		r.writeShed(w, leg.shed)
		return
	case leg.err != nil:
		http.Error(w, leg.err.Error(), http.StatusServiceUnavailable)
		return
	}
	var out serve.OutResponse
	if err := json.Unmarshal(leg.body, &out); err != nil {
		http.Error(w, fmt.Sprintf("shard %d: bad /out body: %v", s, err), http.StatusBadGateway)
		return
	}
	_, msp := trace.Start(ctx, "router.merge")
	out.Neighbors = append(out.Neighbors, r.boundaries[s].Out(webgraph.PageID(page))...)
	sort.Slice(out.Neighbors, func(i, j int) bool { return out.Neighbors[i] < out.Neighbors[j] })
	msp.End()
	if out.Neighbors == nil {
		out.Neighbors = []webgraph.PageID{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleQuery routes the mining class: scatter ?partial=1 to every
// shard, gather, merge.
func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	inc(r.miningRequests)
	ctx := req.Context()
	var tr *trace.Trace
	if r.tracer != nil {
		ctx, tr = r.tracer.StartRequest(ctx, "router.mining")
		defer func() {
			if tr != nil {
				r.tracer.Finish(tr)
			}
		}()
	}
	raw := req.URL.Query().Get("q")
	qn, err := strconv.Atoi(raw)
	if err != nil || qn < int(query.Q1) || qn > int(query.Q6) {
		http.Error(w, fmt.Sprintf("bad q %q (want 1..6)", raw), http.StatusBadRequest)
		return
	}
	k := r.manifest.NumShards
	legs := make([]legResult, k)
	fanCtx, sp := trace.Start(ctx, "router.fanout")
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			legs[s] = r.fetch(fanCtx, s, passthroughQuery(req, fmt.Sprintf("/query?q=%d&partial=1", qn)))
		}(s)
	}
	wg.Wait()
	sp.End()

	// One shed leg sheds the whole request: a partial merge would be
	// silently wrong. Retry-After aggregates as the max, so the client
	// backs off enough for the slowest shard.
	var shed *shedInfo
	for _, leg := range legs {
		if leg.shed != nil && (shed == nil || leg.shed.retryAfter > shed.retryAfter) {
			shed = leg.shed
		}
	}
	if shed != nil {
		r.writeShed(w, shed)
		return
	}
	for s, leg := range legs {
		if leg.err != nil {
			http.Error(w, fmt.Sprintf("shard %d unavailable: %v", s, leg.err), http.StatusServiceUnavailable)
			return
		}
	}
	parts := make([][]query.PartialRow, k)
	navMS := 0.0
	for s, leg := range legs {
		var pr serve.PartialQueryResponse
		if err := json.Unmarshal(leg.body, &pr); err != nil {
			http.Error(w, fmt.Sprintf("shard %d: bad partial body: %v", s, err), http.StatusBadGateway)
			return
		}
		parts[s] = pr.Partials
		// The scatter runs the legs concurrently, so the merged query's
		// navigation cost is the slowest leg, not the sum.
		if pr.NavMS > navMS {
			navMS = pr.NavMS
		}
	}
	_, msp := trace.Start(ctx, "router.merge")
	rows := query.MergePartials(query.ID(qn), parts)
	msp.End()
	if rows == nil {
		rows = []query.Row{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(serve.QueryResponse{Query: qn, Rows: rows, NavMS: navMS})
}
