package randutil

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agree too often: %d/100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewRNG(1)
	a := root.Split(1)
	b := root.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams correlated: %d/100 equal", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %f", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %f, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(5)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	// Rank 0 must dominate rank 50 heavily under s=1.2.
	if counts[0] < counts[50]*5 {
		t.Fatalf("zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// All mass within range (counts slice would have paniced otherwise).
	var total int
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("lost samples: %d", total)
	}
}

func TestBoundedParetoRangeAndMean(t *testing.T) {
	r := NewRNG(9)
	p := NewBoundedPareto(r, 1, 300, 2.1)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := p.Sample()
		if v < 1 || v > 300 {
			t.Fatalf("sample out of range: %d", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	// alpha=2.1 over [1,300] has mean a bit under 2; just check heavy
	// skew towards the low end with a tail.
	if mean < 1.0 || mean > 10 {
		t.Fatalf("unexpected mean %f", mean)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRNG(13)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 10000; i++ {
		counts[WeightedChoice(r, w)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight ratio = %f, want ~3", ratio)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("all-zero weights did not panic")
		}
	}()
	WeightedChoice(NewRNG(1), []float64{0, 0})
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("elements changed: sum=%d", sum)
	}
}
