// Package randutil provides deterministic random-number utilities used
// by the synthetic crawl generator and the partition refiner: a
// splittable xoshiro256** generator, Zipf/power-law samplers, and
// weighted choice. Determinism matters here: every experiment in the
// paper reproduction must be re-runnable bit-for-bit from a seed.
package randutil

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** pseudo-random generator. It is deliberately not
// safe for concurrent use; callers split independent streams instead.
type RNG struct {
	s [4]uint64
}

// splitmix64 seeds the state, as recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from the given seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// Split derives an independent generator from r and a stream label.
// Streams with distinct labels are statistically independent.
func (r *RNG) Split(label uint64) *RNG {
	x := r.Uint64() ^ (label * 0x9E3779B97F4A7C15)
	return NewRNG(splitmix64(&x))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randutil: Intn n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples ranks 1..n with probability proportional to rank^(-s),
// using a precomputed cumulative table (fine for the modest n used by
// the generator). Sample returns values in [0, n).
type Zipf struct {
	cum []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s (> 0).
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("randutil: Zipf n <= 0")
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// Sample returns a rank in [0, n) with Zipfian probability (rank 0 most
// likely).
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	// Binary search for the first cumulative value >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BoundedPareto samples integer values in [lo, hi] from a discrete
// power-law with exponent alpha (> 1): P(x) ∝ x^(-alpha). It is used
// for out-degree distributions (the paper's repository averages
// out-degree 14 with a heavy tail).
type BoundedPareto struct {
	lo, hi int
	alpha  float64
	rng    *RNG
	k      float64 // precomputed lo^(1-alpha)
	h      float64 // precomputed hi^(1-alpha)
}

// NewBoundedPareto builds a sampler over [lo, hi] with exponent alpha.
func NewBoundedPareto(rng *RNG, lo, hi int, alpha float64) *BoundedPareto {
	if lo < 1 || hi < lo || alpha <= 1 {
		panic("randutil: invalid BoundedPareto parameters")
	}
	return &BoundedPareto{
		lo: lo, hi: hi, alpha: alpha, rng: rng,
		k: math.Pow(float64(lo), 1-alpha),
		h: math.Pow(float64(hi)+1, 1-alpha),
	}
}

// Sample returns an integer in [lo, hi].
func (p *BoundedPareto) Sample() int {
	u := p.rng.Float64()
	x := math.Pow(p.k-u*(p.k-p.h), 1/(1-p.alpha))
	v := int(x)
	if v < p.lo {
		v = p.lo
	}
	if v > p.hi {
		v = p.hi
	}
	return v
}

// WeightedChoice picks an index in [0, len(weights)) with probability
// proportional to weights[i]. All weights must be non-negative and at
// least one positive.
func WeightedChoice(rng *RNG, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("randutil: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("randutil: all weights zero")
	}
	u := rng.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
