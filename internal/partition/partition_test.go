package partition

import (
	"context"
	"errors"
	"testing"

	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/synth"
	"snode/internal/urlutil"
	"snode/internal/webgraph"
)

var testCorpus *webgraph.Corpus

func getCorpus(t testing.TB) *webgraph.Corpus {
	t.Helper()
	if testCorpus == nil {
		// Large enough that some elements exceed MinSplitSize after URL
		// splitting, so clustered split is exercised.
		c, err := synth.Generate(synth.DefaultConfig(16000))
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		testCorpus = c.Corpus
	}
	return testCorpus
}

func TestInitialByDomain(t *testing.T) {
	c := getCorpus(t)
	p := InitialByDomain(c)
	if err := p.Validate(c); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// One element per distinct domain.
	domains := map[string]bool{}
	for _, pg := range c.Pages {
		domains[pg.Domain] = true
	}
	if p.NumElements() != len(domains) {
		t.Fatalf("NumElements = %d, distinct domains = %d", p.NumElements(), len(domains))
	}
	// cs.stanford.edu and www.stanford.edu share an element (footnote 5).
	var csElem, wwwElem int32 = -1, -1
	for pid, meta := range c.Pages {
		if csElem == -1 && urlutil.Host(meta.URL) == "cs.stanford.edu" {
			csElem = p.Assign[pid]
		}
		if wwwElem == -1 && urlutil.Host(meta.URL) == "www.stanford.edu" {
			wwwElem = p.Assign[pid]
		}
	}
	if csElem == -1 || wwwElem == -1 {
		t.Skip("corpus lacks both stanford hosts")
	}
	if csElem != wwwElem {
		t.Fatal("stanford subdomains split across P0 elements")
	}
}

func TestRefineInvariants(t *testing.T) {
	c := getCorpus(t)
	p, err := Refine(c, DefaultConfig())
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if err := p.Validate(c); err != nil {
		t.Fatalf("Validate after refine: %v", err)
	}
	p0 := InitialByDomain(c)
	if p.NumElements() <= p0.NumElements() {
		t.Fatalf("refinement did not split anything: %d elements vs P0's %d",
			p.NumElements(), p0.NumElements())
	}
	if p.URLSplits == 0 {
		t.Fatal("no URL splits happened")
	}
	if p.ClusteredSplits == 0 {
		t.Fatal("no clustered splits happened")
	}
	if p.Aborts == 0 {
		t.Fatal("refinement never aborted (stopping criterion untested)")
	}
}

func TestRefineDeterministic(t *testing.T) {
	c := getCorpus(t)
	cfg := DefaultConfig()
	a, err := Refine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Refine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumElements() != b.NumElements() {
		t.Fatalf("element counts differ: %d vs %d", a.NumElements(), b.NumElements())
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment diverges at page %d", i)
		}
	}
}

func TestRefineIsARefinementOfP0(t *testing.T) {
	// Every final element must lie entirely within one P0 element.
	c := getCorpus(t)
	p0 := InitialByDomain(c)
	p, err := Refine(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for ei, e := range p.Elements {
		first := p0.Assign[e.Pages[0]]
		for _, pg := range e.Pages {
			if p0.Assign[pg] != first {
				t.Fatalf("element %d spans P0 elements %d and %d",
					ei, first, p0.Assign[pg])
			}
		}
	}
}

func TestRefineGroupsLexicographicNeighbors(t *testing.T) {
	// Property 3: pages with the same deep URL prefix tend to share an
	// element. Check that the average element groups URL-adjacent pages:
	// for a sample of same-element page pairs at distance 1 in ID order,
	// their URL prefixes agree at depth 1.
	c := getCorpus(t)
	p, err := Refine(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	together, total := 0, 0
	for pid := 1; pid < c.Graph.NumPages(); pid++ {
		if c.Pages[pid-1].Domain != c.Pages[pid].Domain {
			continue
		}
		samePrefix := urlutil.PrefixAtDepth(c.Pages[pid-1].URL, 1) ==
			urlutil.PrefixAtDepth(c.Pages[pid].URL, 1)
		if !samePrefix {
			continue
		}
		total++
		if p.Assign[pid-1] == p.Assign[pid] {
			together++
		}
	}
	if total == 0 {
		t.Skip("no same-prefix neighbor pairs")
	}
	frac := float64(together) / float64(total)
	if frac < 0.4 {
		t.Fatalf("only %.2f of same-prefix neighbors share an element", frac)
	}
}

func TestURLSplitDepthProgression(t *testing.T) {
	// Build a tiny synthetic corpus by hand: one domain, two level-1
	// dirs, each with two level-2 dirs.
	urls := []string{
		"http://www.x.com/a/p0.html",
		"http://www.x.com/a/q/p1.html",
		"http://www.x.com/a/q/p2.html",
		"http://www.x.com/b/r/p3.html",
		"http://www.x.com/b/r/p4.html",
		"http://www.x.com/b/s/p5.html",
	}
	b := webgraph.NewBuilder(len(urls))
	pages := make([]webgraph.PageMeta, len(urls))
	for i, u := range urls {
		pages[i] = webgraph.PageMeta{URL: u, Domain: "x.com", Terms: nil}
	}
	c := &webgraph.Corpus{Graph: b.Build(), Pages: pages}
	e := Element{Pages: []webgraph.PageID{0, 1, 2, 3, 4, 5}, depth: 0}
	// Depth 0 (host) cannot split a single-host element; depth 1 must
	// produce the /a vs /b groups.
	groups := urlSplit(c, &e, 3)
	if groups == nil {
		t.Fatal("urlSplit failed")
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2 (a vs b)", len(groups))
	}
	// Splitting group /b at depth 2 separates /b/r from /b/s.
	gb := groups[1]
	sub := urlSplit(c, &gb, 3)
	if sub == nil || len(sub) != 2 {
		t.Fatalf("depth-2 split of /b gave %v", sub)
	}
}

func TestURLSplitExhaustedReturnsNil(t *testing.T) {
	urls := []string{
		"http://www.x.com/a/p0.html",
		"http://www.x.com/a/p1.html",
	}
	b := webgraph.NewBuilder(2)
	pages := []webgraph.PageMeta{
		{URL: urls[0], Domain: "x.com"},
		{URL: urls[1], Domain: "x.com"},
	}
	c := &webgraph.Corpus{Graph: b.Build(), Pages: pages}
	e := Element{Pages: []webgraph.PageID{0, 1}, depth: 0}
	if g := urlSplit(c, &e, 3); g != nil {
		t.Fatalf("same-prefix pages split: %v", g)
	}
}

func TestRefineBadConfig(t *testing.T) {
	c := getCorpus(t)
	if _, err := Refine(c, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestRefineRespectsMinSplitSize(t *testing.T) {
	c := getCorpus(t)
	cfg := DefaultConfig()
	cfg.MinSplitSize = 1 << 20 // no element is large enough to cluster-split
	p, err := Refine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.ClusteredSplits != 0 {
		t.Fatalf("clustered splits happened below MinSplitSize: %d", p.ClusteredSplits)
	}
	if p.URLSplits == 0 {
		t.Fatal("URL splits must still apply (they are not size-gated)")
	}
}

func TestRefineAbortMaxStopping(t *testing.T) {
	c := getCorpus(t)
	cfg := DefaultConfig()
	cfg.Stopping = StopAbortMax
	cfg.AbortMaxFrac = 0.06
	p, err := Refine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(c); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The abortmax estimate stops at or before the exhaustive fixed
	// point.
	pe, err := Refine(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumElements() > pe.NumElements() {
		t.Fatalf("abortmax produced more elements (%d) than exhaustive (%d)",
			p.NumElements(), pe.NumElements())
	}
	cfg.AbortMaxFrac = 0
	if _, err := Refine(c, cfg); err == nil {
		t.Fatal("abortmax stopping with zero fraction accepted")
	}
}

func TestSupernodeGrowthSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The Figure 9 property at miniature scale: doubling pages must far
	// less than double the supernode count growth rate... we check the
	// weaker, robust property that elements-per-page falls as the
	// repository grows.
	crawl, err := synth.Generate(synth.DefaultConfig(12000))
	if err != nil {
		t.Fatal(err)
	}
	small := crawl.Prefix(4000).Corpus
	big := crawl.Prefix(12000).Corpus
	ps, err := Refine(small, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Refine(big, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs := float64(ps.NumElements()) / 4000
	rb := float64(pb.NumElements()) / 12000
	if rb >= rs {
		t.Fatalf("supernode density did not fall: %.4f (4k) vs %.4f (12k)", rs, rb)
	}
}

func TestRefineWorkerCountInvariant(t *testing.T) {
	// The tentpole guarantee: the partition is bit-identical for every
	// worker-pool width (per-element RNG streams + sorted application
	// order keep scheduling out of the result).
	c := getCorpus(t)
	base := DefaultConfig()
	base.Workers = 1
	ref, err := Refine(c, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		p, err := Refine(c, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if p.NumElements() != ref.NumElements() {
			t.Fatalf("workers=%d: %d elements, workers=1 gave %d",
				workers, p.NumElements(), ref.NumElements())
		}
		for i := range p.Assign {
			if p.Assign[i] != ref.Assign[i] {
				t.Fatalf("workers=%d: assignment diverges at page %d", workers, i)
			}
		}
		if p.URLSplits != ref.URLSplits || p.ClusteredSplits != ref.ClusteredSplits ||
			p.Aborts != ref.Aborts || p.Iterations != ref.Iterations || p.Rounds != ref.Rounds {
			t.Fatalf("workers=%d: stats diverge: %+v vs %+v", workers,
				struct{ U, C, A, I, R int }{p.URLSplits, p.ClusteredSplits, p.Aborts, p.Iterations, p.Rounds},
				struct{ U, C, A, I, R int }{ref.URLSplits, ref.ClusteredSplits, ref.Aborts, ref.Iterations, ref.Rounds})
		}
	}
}

func TestRefineParallelRace(t *testing.T) {
	// Exercise the round-parallel path under the race detector (make
	// check runs this package with -race). Plain Refine at width 8 is
	// enough: every round fans trySplit out over the pool.
	c := getCorpus(t)
	cfg := DefaultConfig()
	cfg.Workers = 8
	p, err := Refine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestRefineCtxCancelled(t *testing.T) {
	c := getCorpus(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RefineCtx(ctx, c, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}

func TestRefineMetricsRegistered(t *testing.T) {
	c := getCorpus(t)
	cfg := DefaultConfig()
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	p, err := Refine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	split := reg.Counter("build_elements_split").Value()
	if want := int64(p.URLSplits + p.ClusteredSplits); split != want {
		t.Fatalf("build_elements_split = %d, want %d", split, want)
	}
	if got := reg.Counter("build_refine_rounds").Value(); got != int64(p.Rounds) {
		t.Fatalf("build_refine_rounds = %d, want %d", got, p.Rounds)
	}
	if got := reg.Gauge("build_elements").Value(); got != int64(p.NumElements()) {
		t.Fatalf("build_elements gauge = %d, want %d", got, p.NumElements())
	}
}

func TestRefineModeledScan(t *testing.T) {
	// With an accountant attached, clustered-split attempts charge
	// repository scans; with pacing off this must not change the result.
	c := getCorpus(t)
	ref, err := Refine(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	acct := iosim.NewAccountant(iosim.Model2002())
	cfg.IO = acct
	p, err := Refine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Assign {
		if p.Assign[i] != ref.Assign[i] {
			t.Fatalf("modeled scans changed the partition at page %d", i)
		}
	}
	st := acct.Stats()
	if st.Seeks == 0 || st.BytesRead == 0 {
		t.Fatalf("no scans charged: %+v", st)
	}
}
