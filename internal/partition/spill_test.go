package partition

import (
	"os"
	"reflect"
	"testing"

	"snode/internal/webgraph"
)

// TestRefineSpillBitIdentical pins the external-memory contract: a
// refinement whose rounds spill to disk produces exactly the partition
// (assignments and stats) of the in-memory refinement, at every worker
// width.
func TestRefineSpillBitIdentical(t *testing.T) {
	c := getCorpus(t)
	ref, err := Refine(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.SpillDir = dir
		p, err := Refine(c, cfg)
		if err != nil {
			t.Fatalf("workers=%d spill: %v", workers, err)
		}
		if p.NumElements() != ref.NumElements() {
			t.Fatalf("workers=%d spill: %d elements, in-memory gave %d",
				workers, p.NumElements(), ref.NumElements())
		}
		for i := range p.Assign {
			if p.Assign[i] != ref.Assign[i] {
				t.Fatalf("workers=%d spill: assignment diverges at page %d", workers, i)
			}
		}
		if p.URLSplits != ref.URLSplits || p.ClusteredSplits != ref.ClusteredSplits ||
			p.Aborts != ref.Aborts || p.Iterations != ref.Iterations || p.Rounds != ref.Rounds {
			t.Fatalf("workers=%d spill: stats diverge: %+v vs %+v", workers, p, ref)
		}
		// Round files are temporary: every one must be gone afterwards.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Fatalf("spill dir not cleaned: %d files remain", len(entries))
		}
	}
}

// TestRefineSpillMinPages: a threshold larger than the corpus keeps
// every round in memory (no spill dir contents ever appear) yet still
// matches the reference partition.
func TestRefineSpillMinPages(t *testing.T) {
	c := getCorpus(t)
	ref, err := Refine(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SpillDir = t.TempDir()
	cfg.SpillMinPages = c.Graph.NumPages() + 1
	p, err := Refine(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Assign {
		if p.Assign[i] != ref.Assign[i] {
			t.Fatalf("assignment diverges at page %d", i)
		}
	}
}

// TestEncodeDecodeGroupsRoundTrip: the spill codec reproduces split
// proposals exactly, including depth and clusterOnly flags.
func TestEncodeDecodeGroupsRoundTrip(t *testing.T) {
	groups := []Element{
		{Pages: []webgraph.PageID{0}, depth: 0},
		{Pages: []webgraph.PageID{3, 4, 1000, 1_000_000}, depth: 2},
		{Pages: []webgraph.PageID{7, 8, 9}, depth: 3, clusterOnly: true},
	}
	got, err := decodeGroups(encodeGroups(groups))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, groups) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, groups)
	}
}

// TestDecodeGroupsCorrupt: truncated entries fail loudly rather than
// silently yielding a partial split.
func TestDecodeGroupsCorrupt(t *testing.T) {
	buf := encodeGroups([]Element{{Pages: []webgraph.PageID{1, 2, 3}, depth: 1}})
	for _, cut := range []int{1, len(buf) / 2, len(buf) - 1} {
		if _, err := decodeGroups(buf[:cut]); err == nil {
			t.Fatalf("decodeGroups accepted a %d/%d-byte truncation", cut, len(buf))
		}
	}
}

// TestRoundSpillPutGet covers the index semantics: aborts (nil groups)
// replay as empty results, and out-of-order puts read back correctly.
func TestRoundSpillPutGet(t *testing.T) {
	rs, err := newRoundSpill(t.TempDir(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.close()
	g2 := []Element{{Pages: []webgraph.PageID{5, 9}, depth: 1}}
	g0 := []Element{{Pages: []webgraph.PageID{1}, depth: 2, clusterOnly: true}}
	if err := rs.put(2, splitResult{groups: g2, url: true}); err != nil {
		t.Fatal(err)
	}
	if err := rs.put(0, splitResult{groups: g0}); err != nil {
		t.Fatal(err)
	}
	if err := rs.put(1, splitResult{}); err != nil {
		t.Fatal(err)
	}
	r0, err := rs.get(0)
	if err != nil || !reflect.DeepEqual(r0.groups, g0) || r0.url {
		t.Fatalf("get(0) = %+v, %v", r0, err)
	}
	r1, err := rs.get(1)
	if err != nil || r1.groups != nil {
		t.Fatalf("get(1) = %+v, %v; want abort (nil groups)", r1, err)
	}
	r2, err := rs.get(2)
	if err != nil || !reflect.DeepEqual(r2.groups, g2) || !r2.url {
		t.Fatalf("get(2) = %+v, %v", r2, err)
	}
	if rs.bytes() == 0 {
		t.Fatal("bytes() = 0 after two encoded puts")
	}
}
