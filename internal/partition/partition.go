// Package partition implements the iterative partition refinement of
// paper §3.2, which computes the page grouping an S-Node representation
// is built from:
//
//  1. The initial partition P0 groups pages by registered domain (top
//     two DNS levels).
//  2. Each iteration picks a random element and splits it, using URL
//     split (group by URL prefix, one directory deeper each time, up to
//     3 levels) while prefixes remain useful, then clustered split
//     (k-means over adjacency-to-supernode bit vectors, k initialized to
//     the element's supernode out-degree and incremented by 2 on abort).
//  3. Refinement stops after abortmax consecutive failed clustered
//     splits, with abortmax a fixed fraction (default 6%) of the element
//     count.
//
// The resulting partition satisfies the paper's three properties: pages
// with similar adjacency lists grouped together, domain purity, and
// lexicographic URL locality within elements.
package partition

import (
	"fmt"
	"sort"

	"snode/internal/kmeans"
	"snode/internal/randutil"
	"snode/internal/urlutil"
	"snode/internal/webgraph"
)

// StoppingRule selects how refinement decides it is done.
type StoppingRule int

const (
	// StopExhaustive tracks the set of still-splittable elements
	// explicitly and stops when it is empty — the paper's "ideal
	// stopping point", which it approximates with abortmax because
	// checking it at their scale was prohibitive. At our scale it is
	// affordable and removes stochastic early termination.
	StopExhaustive StoppingRule = iota
	// StopAbortMax is the paper's criterion: stop after abortmax
	// consecutive clustered-split aborts, abortmax a fraction of the
	// element count.
	StopAbortMax
)

// Config controls refinement. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	Seed uint64
	// Stopping selects the termination rule.
	Stopping StoppingRule
	// AbortMaxFrac sets abortmax as a fraction of the element count
	// (paper: 6%); used when Stopping == StopAbortMax.
	AbortMaxFrac float64
	// MaxURLDepth is the deepest directory level URL split uses
	// (paper: 3).
	MaxURLDepth int
	// MinSplitSize: elements smaller than this are never split (they
	// count as clustered-split aborts, matching the paper's "unable to
	// further split").
	MinSplitSize int
	// KMeansMaxIter bounds each k-means run (stands in for the paper's
	// wall-clock bound).
	KMeansMaxIter int
	// KMeansAttempts is how many times clustered split retries with
	// k+2 before aborting (paper: "a fixed number of attempts").
	KMeansAttempts int
	// MaxClusterK aborts clustered split outright when the initial k
	// (the element's supernode out-degree) exceeds this bound — the
	// analog of the paper's wall-clock bound, which k-means with very
	// large k would always exceed.
	MaxClusterK int
	// SplitQuality is the maximum WithinSS/TotalSS ratio a clustered
	// split may have to be accepted: a split that barely reduces
	// scatter is chunking one homogeneous cloud, not discovering
	// adjacency-list structure, and is treated as an abort.
	SplitQuality float64
	// MaxIterations is a safety cap on refinement iterations.
	MaxIterations int
}

// DefaultConfig returns the configuration used throughout the
// experiments.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		AbortMaxFrac:   0.06,
		MaxURLDepth:    3,
		MinSplitSize:   256,
		KMeansMaxIter:  30,
		KMeansAttempts: 3,
		MaxClusterK:    8,
		SplitQuality:   0.65,
	}
}

// Element is one member of a partition: a set of pages from a single
// domain.
type Element struct {
	Pages []webgraph.PageID // sorted ascending
	// depth is the URL-prefix depth the NEXT URL split should use;
	// clusterOnly marks elements past MaxURLDepth.
	depth       int
	clusterOnly bool
}

// Partition is the refinement result.
type Partition struct {
	Elements []Element
	// Assign maps every page to its element index.
	Assign []int32
	// Stats from the run.
	Iterations      int
	URLSplits       int
	ClusteredSplits int
	Aborts          int
}

// NumElements reports the number of partition elements (supernodes).
func (p *Partition) NumElements() int { return len(p.Elements) }

// Validate checks the partition invariants: every page in exactly one
// element, Assign consistent, elements domain-pure and sorted.
func (p *Partition) Validate(c *webgraph.Corpus) error {
	n := c.Graph.NumPages()
	if len(p.Assign) != n {
		return fmt.Errorf("partition: Assign length %d != %d pages", len(p.Assign), n)
	}
	seen := make([]bool, n)
	for ei, e := range p.Elements {
		if len(e.Pages) == 0 {
			return fmt.Errorf("partition: element %d empty", ei)
		}
		dom := c.Pages[e.Pages[0]].Domain
		for i, pg := range e.Pages {
			if i > 0 && e.Pages[i-1] >= pg {
				return fmt.Errorf("partition: element %d pages not sorted", ei)
			}
			if seen[pg] {
				return fmt.Errorf("partition: page %d in two elements", pg)
			}
			seen[pg] = true
			if p.Assign[pg] != int32(ei) {
				return fmt.Errorf("partition: Assign[%d]=%d, element %d", pg, p.Assign[pg], ei)
			}
			if c.Pages[pg].Domain != dom {
				return fmt.Errorf("partition: element %d mixes domains %s and %s",
					ei, dom, c.Pages[pg].Domain)
			}
		}
	}
	for pg, ok := range seen {
		if !ok {
			return fmt.Errorf("partition: page %d unassigned", pg)
		}
	}
	return nil
}

// InitialByDomain computes P0: one element per registered domain.
// Page IDs are assigned in (domain, URL) order by the generator, so
// each domain is a contiguous ID range; the implementation nevertheless
// only relies on the Domain metadata.
func InitialByDomain(c *webgraph.Corpus) *Partition {
	n := c.Graph.NumPages()
	byDomain := map[string][]webgraph.PageID{}
	var order []string
	for pid := 0; pid < n; pid++ {
		d := c.Pages[pid].Domain
		if _, ok := byDomain[d]; !ok {
			order = append(order, d)
		}
		byDomain[d] = append(byDomain[d], webgraph.PageID(pid))
	}
	sort.Strings(order)
	p := &Partition{Assign: make([]int32, n)}
	for _, d := range order {
		pages := byDomain[d]
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		ei := int32(len(p.Elements))
		for _, pg := range pages {
			p.Assign[pg] = ei
		}
		p.Elements = append(p.Elements, Element{Pages: pages, depth: 0})
	}
	return p
}

// Refine runs the full iterative refinement and returns the final
// partition.
func Refine(c *webgraph.Corpus, cfg Config) (*Partition, error) {
	if cfg.MinSplitSize < 2 || (cfg.Stopping == StopAbortMax && cfg.AbortMaxFrac <= 0) {
		return nil, fmt.Errorf("partition: invalid config %+v", cfg)
	}
	p := InitialByDomain(c)
	rng := randutil.NewRNG(cfg.Seed)
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 200 * (1 + c.Graph.NumPages()/cfg.MinSplitSize)
	}

	// candidates holds the elements not yet known to be unsplittable.
	// splittable[i] mirrors membership so stale queue entries are cheap
	// to detect after splits.
	candidates := make([]int, len(p.Elements))
	splittable := make([]bool, len(p.Elements))
	for i := range candidates {
		candidates[i] = i
		splittable[i] = true
	}
	markUnsplittable := func(ei int) {
		splittable[ei] = false
	}
	addElements := func(from int) {
		for i := from; i < len(p.Elements); i++ {
			candidates = append(candidates, i)
			splittable = append(splittable, true)
		}
	}

	consecutiveAborts := 0
	for iter := 0; iter < maxIter; iter++ {
		if cfg.Stopping == StopAbortMax {
			abortMax := int(cfg.AbortMaxFrac * float64(len(p.Elements)))
			if abortMax < 1 {
				abortMax = 1
			}
			if consecutiveAborts >= abortMax {
				break
			}
		}
		// Pick a random live candidate (the paper's random element
		// selection, restricted to elements not yet known-unsplittable),
		// discarding stale entries along the way.
		ei := -1
		for len(candidates) > 0 {
			j := rng.Intn(len(candidates))
			if splittable[candidates[j]] {
				ei = candidates[j]
				break
			}
			candidates[j] = candidates[len(candidates)-1]
			candidates = candidates[:len(candidates)-1]
		}
		if ei == -1 {
			break
		}
		e := &p.Elements[ei]
		p.Iterations++

		// URL split is cheap and applies regardless of element size; a
		// shallow crawl of a domain still separates into its top-level
		// directories. Only clustered split is size-gated below.
		if !e.clusterOnly {
			nBefore := len(p.Elements)
			groups := urlSplit(c, e, cfg.MaxURLDepth)
			if groups != nil {
				applySplit(p, ei, groups)
				addElements(nBefore)
				p.URLSplits++
				consecutiveAborts = 0
				continue
			}
			// No useful prefix remains; fall through to clustered split.
			e.clusterOnly = true
		}
		if len(e.Pages) < cfg.MinSplitSize {
			markUnsplittable(ei)
			consecutiveAborts++
			p.Aborts++
			continue
		}
		nBefore := len(p.Elements)
		groups := clusteredSplit(c, p, ei, cfg, rng)
		if groups == nil {
			markUnsplittable(ei)
			consecutiveAborts++
			p.Aborts++
			continue
		}
		applySplit(p, ei, groups)
		addElements(nBefore)
		p.ClusteredSplits++
		consecutiveAborts = 0
	}
	return p, nil
}

// urlSplit groups the element's pages by URL prefix, starting at the
// element's next depth and deepening until some depth separates the
// pages (or maxDepth is exhausted). It returns nil when no prefix up to
// maxDepth splits the element; otherwise the resulting groups, each
// tagged with the depth to use next.
func urlSplit(c *webgraph.Corpus, e *Element, maxDepth int) []Element {
	for depth := e.depth; depth <= maxDepth; depth++ {
		groups := map[string][]webgraph.PageID{}
		var order []string
		for _, pg := range e.Pages {
			pref := urlutil.PrefixAtDepth(c.Pages[pg].URL, depth)
			if _, ok := groups[pref]; !ok {
				order = append(order, pref)
			}
			groups[pref] = append(groups[pref], pg)
		}
		if len(groups) < 2 {
			continue
		}
		sort.Strings(order)
		out := make([]Element, 0, len(groups))
		for _, pref := range order {
			pages := groups[pref]
			sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
			out = append(out, Element{
				Pages:       pages,
				depth:       depth + 1,
				clusterOnly: depth+1 > maxDepth,
			})
		}
		return out
	}
	return nil
}

// clusteredSplit runs the paper's k-means procedure: bit vectors over
// the element's out-supernodes, k starting at the supernode out-degree,
// retried with k+2 on abort. Returns nil when the split fails.
func clusteredSplit(c *webgraph.Corpus, p *Partition, ei int, cfg Config, rng *randutil.RNG) []Element {
	e := &p.Elements[ei]
	// Build sparse adjacency-to-supernode signatures. Dimensions are
	// target element indices, densified.
	dimOf := map[int32]int32{}
	points := make([]kmeans.Point, len(e.Pages))
	for i, pg := range e.Pages {
		var pt kmeans.Point
		for _, q := range c.Graph.Out(pg) {
			te := p.Assign[q]
			if te == int32(ei) {
				continue // intranode links are not part of the signature
			}
			d, ok := dimOf[te]
			if !ok {
				d = int32(len(dimOf))
				dimOf[te] = d
			}
			pt = append(pt, d)
		}
		points[i] = kmeans.SortPoint(pt)
	}
	k := len(dimOf) // supernode out-degree of this element (paper's k)
	if k < 2 {
		k = 2
	}
	// The paper bounds each k-means run by wall-clock time; with very
	// large k the bound is always exceeded, so in practice k is capped
	// by what the budget affords.
	if cfg.MaxClusterK > 0 && k > cfg.MaxClusterK {
		k = cfg.MaxClusterK
	}
	if k > len(e.Pages)/2 {
		k = len(e.Pages) / 2
	}
	minChild := cfg.MinSplitSize / 3
	if minChild < 2 {
		minChild = 2
	}
	for attempt := 0; attempt < cfg.KMeansAttempts; attempt++ {
		res, err := kmeans.Run(points, kmeans.Config{
			K:             k + 2*attempt,
			MaxIterations: cfg.KMeansMaxIter,
			Seed:          rng.Uint64(),
		})
		if err == kmeans.ErrDegenerate {
			return nil // cannot split: identical signatures
		}
		if err == kmeans.ErrAborted {
			continue // paper: increase k by 2 and repeat
		}
		if err != nil {
			return nil
		}
		if res.NumClusters < 2 {
			return nil
		}
		if cfg.SplitQuality > 0 && res.TotalSS > 0 &&
			res.WithinSS > cfg.SplitQuality*res.TotalSS {
			return nil // no real cluster structure at this granularity
		}
		out := make([]Element, res.NumClusters)
		for i, pg := range e.Pages {
			ci := res.Assign[i]
			out[ci].Pages = append(out[ci].Pages, pg)
		}
		// Merge fragments: clusters smaller than minChild reflect noise,
		// not adjacency-list structure; folding them into the largest
		// cluster keeps elements at useful sizes (the paper's partitions
		// average hundreds of pages per element).
		largest := 0
		for i := 1; i < len(out); i++ {
			if len(out[i].Pages) > len(out[largest].Pages) {
				largest = i
			}
		}
		kept := out[:0]
		keptLargest := -1
		var fragments []webgraph.PageID
		for i := range out {
			if i != largest && len(out[i].Pages) < minChild {
				fragments = append(fragments, out[i].Pages...)
				continue
			}
			if i == largest {
				keptLargest = len(kept)
			}
			kept = append(kept, out[i])
		}
		out = kept
		out[keptLargest].Pages = append(out[keptLargest].Pages, fragments...)
		if len(out) < 2 {
			return nil // no real structure found
		}
		for i := range out {
			out[i].clusterOnly = true
			out[i].depth = e.depth
			sort.Slice(out[i].Pages, func(a, b int) bool { return out[i].Pages[a] < out[i].Pages[b] })
		}
		return out
	}
	return nil
}

// applySplit replaces element ei with the given groups, preserving the
// paper's refinement semantics (Pi+1 = Pi \ {Nij} ∪ {A1..Am}).
func applySplit(p *Partition, ei int, groups []Element) {
	p.Elements[ei] = groups[0]
	for _, pg := range groups[0].Pages {
		p.Assign[pg] = int32(ei)
	}
	for _, g := range groups[1:] {
		ni := int32(len(p.Elements))
		for _, pg := range g.Pages {
			p.Assign[pg] = ni
		}
		p.Elements = append(p.Elements, g)
	}
}
