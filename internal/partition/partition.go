// Package partition implements the iterative partition refinement of
// paper §3.2, which computes the page grouping an S-Node representation
// is built from:
//
//  1. The initial partition P0 groups pages by registered domain (top
//     two DNS levels).
//  2. Each iteration picks a random element and splits it, using URL
//     split (group by URL prefix, one directory deeper each time, up to
//     3 levels) while prefixes remain useful, then clustered split
//     (k-means over adjacency-to-supernode bit vectors, k initialized to
//     the element's supernode out-degree and incremented by 2 on abort).
//  3. Refinement stops after abortmax consecutive failed clustered
//     splits, with abortmax a fixed fraction (default 6%) of the element
//     count.
//
// The resulting partition satisfies the paper's three properties: pages
// with similar adjacency lists grouped together, domain purity, and
// lexicographic URL locality within elements.
package partition

import (
	"context"
	"fmt"
	"sort"
	"time"

	"snode/internal/iosim"
	"snode/internal/kmeans"
	"snode/internal/metrics"
	"snode/internal/randutil"
	"snode/internal/trace"
	"snode/internal/urlutil"
	"snode/internal/webgraph"
	"snode/internal/workpool"
)

// StoppingRule selects how refinement decides it is done.
type StoppingRule int

const (
	// StopExhaustive tracks the set of still-splittable elements
	// explicitly and stops when it is empty — the paper's "ideal
	// stopping point", which it approximates with abortmax because
	// checking it at their scale was prohibitive. At our scale it is
	// affordable and removes stochastic early termination.
	StopExhaustive StoppingRule = iota
	// StopAbortMax is the paper's criterion: stop after abortmax
	// consecutive clustered-split aborts, abortmax a fraction of the
	// element count.
	StopAbortMax
)

// Config controls refinement. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	Seed uint64
	// Stopping selects the termination rule.
	Stopping StoppingRule
	// AbortMaxFrac sets abortmax as a fraction of the element count
	// (paper: 6%); used when Stopping == StopAbortMax.
	AbortMaxFrac float64
	// MaxURLDepth is the deepest directory level URL split uses
	// (paper: 3).
	MaxURLDepth int
	// MinSplitSize: elements smaller than this are never split (they
	// count as clustered-split aborts, matching the paper's "unable to
	// further split").
	MinSplitSize int
	// KMeansMaxIter bounds each k-means run (stands in for the paper's
	// wall-clock bound).
	KMeansMaxIter int
	// KMeansAttempts is how many times clustered split retries with
	// k+2 before aborting (paper: "a fixed number of attempts").
	KMeansAttempts int
	// MaxClusterK aborts clustered split outright when the initial k
	// (the element's supernode out-degree) exceeds this bound — the
	// analog of the paper's wall-clock bound, which k-means with very
	// large k would always exceed.
	MaxClusterK int
	// SplitQuality is the maximum WithinSS/TotalSS ratio a clustered
	// split may have to be accepted: a split that barely reduces
	// scatter is chunking one homogeneous cloud, not discovering
	// adjacency-list structure, and is treated as an abort.
	SplitQuality float64
	// MaxIterations is a safety cap on refinement iterations (elements
	// examined, across all rounds).
	MaxIterations int
	// Workers is the refinement parallelism: each round's splittable
	// elements are examined concurrently on a workpool of this width.
	// <= 0 selects runtime.GOMAXPROCS(0). The result is identical for
	// every width (see Refine).
	Workers int
	// IO, when non-nil, charges a modeled repository scan (one seek plus
	// the element's adjacency bytes) per clustered-split attempt — the
	// build-side analog of the serving path's simulated 2002 disk. Under
	// iosim pacing the scans stall real time, which concurrent workers
	// overlap. Pacing never affects the resulting partition.
	IO *iosim.Accountant
	// Metrics, when non-nil, receives build-stage instrumentation:
	// refine_rounds / url_splits / clustered_splits / aborts /
	// elements_split counters, an elements gauge, and a per-round
	// latency histogram, all under the "build_" prefix.
	Metrics *metrics.Registry
	// SpillDir enables external-memory refinement rounds: when set,
	// each round's proposed splits are encoded to a spill file as the
	// workers produce them and replayed from disk in ascending element
	// order during application, so the candidate state peaks at
	// O(workers × largest element) instead of O(round batch) — the
	// partition-side half of the bounded-heap build path (the edge side
	// is internal/ingest's sorted-run spiller). Spilled and in-memory
	// rounds produce bit-identical partitions: the encoding round-trips
	// every split exactly and the application order is unchanged.
	SpillDir string
	// SpillMinPages gates spilling by round size: a round whose batch
	// spans fewer pages than this stays in memory even when SpillDir is
	// set (<= 0 spills every round). Small late rounds dominate a
	// refinement's round count but not its memory, so skipping them
	// avoids pointless file churn.
	SpillMinPages int
}

// DefaultConfig returns the configuration used throughout the
// experiments.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		AbortMaxFrac:   0.06,
		MaxURLDepth:    3,
		MinSplitSize:   256,
		KMeansMaxIter:  30,
		KMeansAttempts: 3,
		MaxClusterK:    8,
		SplitQuality:   0.65,
	}
}

// Element is one member of a partition: a set of pages from a single
// domain.
type Element struct {
	Pages []webgraph.PageID // sorted ascending
	// depth is the URL-prefix depth the NEXT URL split should use;
	// clusterOnly marks elements past MaxURLDepth.
	depth       int
	clusterOnly bool
}

// Partition is the refinement result.
type Partition struct {
	Elements []Element
	// Assign maps every page to its element index.
	Assign []int32
	// Stats from the run.
	Iterations      int // elements examined, across all rounds
	Rounds          int
	URLSplits       int
	ClusteredSplits int
	Aborts          int
}

// NumElements reports the number of partition elements (supernodes).
func (p *Partition) NumElements() int { return len(p.Elements) }

// Validate checks the partition invariants: every page in exactly one
// element, Assign consistent, elements domain-pure and sorted.
func (p *Partition) Validate(c *webgraph.Corpus) error {
	n := c.Graph.NumPages()
	if len(p.Assign) != n {
		return fmt.Errorf("partition: Assign length %d != %d pages", len(p.Assign), n)
	}
	seen := make([]bool, n)
	for ei, e := range p.Elements {
		if len(e.Pages) == 0 {
			return fmt.Errorf("partition: element %d empty", ei)
		}
		dom := c.Pages[e.Pages[0]].Domain
		for i, pg := range e.Pages {
			if i > 0 && e.Pages[i-1] >= pg {
				return fmt.Errorf("partition: element %d pages not sorted", ei)
			}
			if seen[pg] {
				return fmt.Errorf("partition: page %d in two elements", pg)
			}
			seen[pg] = true
			if p.Assign[pg] != int32(ei) {
				return fmt.Errorf("partition: Assign[%d]=%d, element %d", pg, p.Assign[pg], ei)
			}
			if c.Pages[pg].Domain != dom {
				return fmt.Errorf("partition: element %d mixes domains %s and %s",
					ei, dom, c.Pages[pg].Domain)
			}
		}
	}
	for pg, ok := range seen {
		if !ok {
			return fmt.Errorf("partition: page %d unassigned", pg)
		}
	}
	return nil
}

// InitialByDomain computes P0: one element per registered domain.
// Page IDs are assigned in (domain, URL) order by the generator, so
// each domain is a contiguous ID range; the implementation nevertheless
// only relies on the Domain metadata.
func InitialByDomain(c *webgraph.Corpus) *Partition {
	n := c.Graph.NumPages()
	byDomain := map[string][]webgraph.PageID{}
	var order []string
	for pid := 0; pid < n; pid++ {
		d := c.Pages[pid].Domain
		if _, ok := byDomain[d]; !ok {
			order = append(order, d)
		}
		byDomain[d] = append(byDomain[d], webgraph.PageID(pid))
	}
	sort.Strings(order)
	p := &Partition{Assign: make([]int32, n)}
	for _, d := range order {
		pages := byDomain[d]
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
		ei := int32(len(p.Elements))
		for _, pg := range pages {
			p.Assign[pg] = ei
		}
		p.Elements = append(p.Elements, Element{Pages: pages, depth: 0})
	}
	return p
}

// Refine runs the full iterative refinement and returns the final
// partition. It is RefineCtx without cancellation or tracing.
func Refine(c *webgraph.Corpus, cfg Config) (*Partition, error) {
	return RefineCtx(context.Background(), c, cfg)
}

// splitResult is one element's outcome from a refinement round. A nil
// groups is an abort (unsplittable at this granularity).
type splitResult struct {
	groups []Element
	url    bool // groups came from URL split, not clustered split
}

// modeled repository-scan cost per page record and per stored link,
// the flat layout a 2002 build would stream the crawl from.
const (
	scanPageBytes = 16
	scanEdgeBytes = 8
)

// elementRNG derives the deterministic RNG stream for examining one
// element in one refinement round. Seeding from (cfg.Seed, the
// element's smallest page ID, round) — instead of drawing from one
// shared sequential stream — is what makes parallel refinement
// bit-identical regardless of worker count and GOMAXPROCS: an
// element's k-means seeds depend only on what is being split and when,
// never on goroutine scheduling.
func elementRNG(seed uint64, first webgraph.PageID, round int) *randutil.RNG {
	return randutil.NewRNG(seed).Split(uint64(first)).Split(uint64(round))
}

// trySplit examines one element against the round-start partition and
// proposes its split. It mutates only its own element (the clusterOnly
// promotion), so a round may examine all live elements concurrently.
func trySplit(ctx context.Context, c *webgraph.Corpus, p *Partition, ei int, cfg Config, round int) splitResult {
	e := &p.Elements[ei]
	// URL split is cheap and applies regardless of element size; a
	// shallow crawl of a domain still separates into its top-level
	// directories. Only clustered split is size-gated below.
	if !e.clusterOnly {
		if groups := urlSplit(c, e, cfg.MaxURLDepth); groups != nil {
			return splitResult{groups: groups, url: true}
		}
		// No useful prefix remains; fall through to clustered split.
		e.clusterOnly = true
	}
	if len(e.Pages) < cfg.MinSplitSize {
		return splitResult{}
	}
	if cfg.IO != nil {
		var edges int64
		for _, pg := range e.Pages {
			edges += int64(len(c.Graph.Out(pg)))
		}
		cfg.IO.Scan(ctx, scanPageBytes*int64(len(e.Pages))+scanEdgeBytes*edges)
	}
	rng := elementRNG(cfg.Seed, e.Pages[0], round)
	return splitResult{groups: clusteredSplit(c, p, ei, cfg, rng)}
}

// RefineCtx runs deterministic round-based parallel refinement: each
// round gathers every live splittable element, examines them all
// concurrently on a worker pool against the frozen round-start
// partition (an element's split touches only its own pages, so
// examinations are independent), then applies the proposed splits in
// ascending element order. Split children become the next round's
// candidates and aborted elements are dropped, so the candidate set is
// compacted every round — the old single-element loop appended
// children to a queue and pruned stale entries only on random
// collisions, growing it without bound on large corpora.
//
// The result is bit-identical for every cfg.Workers value and
// GOMAXPROCS: per-element RNG streams are derived from
// (Seed, smallest page ID, round), k-means is order-deterministic, and
// application order is sorted, so scheduling never leaks into the
// partition.
//
// StopAbortMax keeps the paper's semantics under rounds: outcomes are
// consumed in application order, counting consecutive aborts across
// round boundaries and stopping — mid-round, discarding the rest, as
// the sequential loop would — once they reach abortmax (recomputed per
// element from the current element count).
func RefineCtx(ctx context.Context, c *webgraph.Corpus, cfg Config) (*Partition, error) {
	if cfg.MinSplitSize < 2 || (cfg.Stopping == StopAbortMax && cfg.AbortMaxFrac <= 0) {
		return nil, fmt.Errorf("partition: invalid config %+v", cfg)
	}
	ctx, span := trace.Start(ctx, "refine")
	defer span.End()
	p := InitialByDomain(c)
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 200 * (1 + c.Graph.NumPages()/cfg.MinSplitSize)
	}
	var (
		mRounds, mURL, mClustered, mAborts, mSplit *metrics.Counter
		mSpillRounds, mSpillBytes                  *metrics.Counter
		mElements                                  *metrics.Gauge
		mRoundNs                                   *metrics.Histogram
	)
	if cfg.Metrics != nil {
		mRounds = cfg.Metrics.Counter("build_refine_rounds")
		mURL = cfg.Metrics.Counter("build_url_splits")
		mClustered = cfg.Metrics.Counter("build_clustered_splits")
		mAborts = cfg.Metrics.Counter("build_refine_aborts")
		mSplit = cfg.Metrics.Counter("build_elements_split")
		mSpillRounds = cfg.Metrics.Counter("build_spill_rounds")
		mSpillBytes = cfg.Metrics.Counter("build_spill_bytes")
		mElements = cfg.Metrics.Gauge("build_elements")
		mRoundNs = cfg.Metrics.Histogram("build_refine_round_ns", nil)
		mElements.Set(int64(len(p.Elements)))
	}
	pool := workpool.New(cfg.Workers)

	abortMax := func() int {
		am := int(cfg.AbortMaxFrac * float64(len(p.Elements)))
		if am < 1 {
			am = 1
		}
		return am
	}

	candidates := make([]int, len(p.Elements))
	for i := range candidates {
		candidates[i] = i
	}
	consecutiveAborts := 0
	stopped := false
	for round := 0; len(candidates) > 0 && !stopped && p.Iterations < maxIter; round++ {
		batch := candidates
		if rem := maxIter - p.Iterations; len(batch) > rem {
			batch = batch[:rem]
		}
		sort.Ints(batch)
		roundStart := time.Now()
		rctx, rspan := trace.Start(ctx, "refine.round")
		rspan.SetAttr("round", int64(round))
		rspan.SetAttr("candidates", int64(len(batch)))

		// External-memory rounds: when configured (and the round is big
		// enough to matter), workers stream their proposals into a spill
		// file instead of the results slice; application replays them in
		// the identical ascending order, so the partition is unchanged.
		var rs *roundSpill
		if cfg.SpillDir != "" {
			batchPages := 0
			for _, ei := range batch {
				batchPages += len(p.Elements[ei].Pages)
			}
			if batchPages >= cfg.SpillMinPages {
				var err error
				if rs, err = newRoundSpill(cfg.SpillDir, round, len(batch)); err != nil {
					rspan.End()
					return nil, err
				}
			}
		}
		var results []splitResult
		if rs == nil {
			results = make([]splitResult, len(batch))
		}
		round := round // fixed per-closure for the RNG derivation
		if err := pool.ForEachCtx(rctx, len(batch), func(ctx context.Context, i int) error {
			r := trySplit(ctx, c, p, batch[i], cfg, round)
			if rs != nil {
				return rs.put(i, r)
			}
			results[i] = r
			return nil
		}); err != nil {
			if rs != nil {
				rs.close()
			}
			rspan.End()
			return nil, err
		}
		if rs != nil {
			// One sequential log write during the examinations, one
			// replay during application.
			cfg.IO.Spill(rctx, rs.bytes())
			cfg.IO.Spill(rctx, rs.bytes())
		}

		// Apply in ascending element order (batch is sorted), counting
		// aborts exactly as the sequential loop would have.
		var next []int
		var urlSplits, clustered, aborts int64
		for i, ei := range batch {
			if cfg.Stopping == StopAbortMax && consecutiveAborts >= abortMax() {
				stopped = true
				break
			}
			p.Iterations++
			r := splitResult{}
			if rs != nil {
				var err error
				if r, err = rs.get(i); err != nil {
					rs.close()
					rspan.End()
					return nil, err
				}
			} else {
				r = results[i]
			}
			if r.groups == nil {
				p.Aborts++
				aborts++
				consecutiveAborts++
				continue
			}
			nBefore := len(p.Elements)
			applySplit(p, ei, r.groups)
			next = append(next, ei)
			for j := nBefore; j < len(p.Elements); j++ {
				next = append(next, j)
			}
			if r.url {
				p.URLSplits++
				urlSplits++
			} else {
				p.ClusteredSplits++
				clustered++
			}
			consecutiveAborts = 0
		}
		p.Rounds++
		candidates = next

		rspan.SetAttr("url_splits", urlSplits)
		rspan.SetAttr("clustered_splits", clustered)
		rspan.SetAttr("aborts", aborts)
		if rs != nil {
			rspan.SetAttr("spill_bytes", rs.bytes())
		}
		rspan.End()
		if cfg.Metrics != nil {
			mRounds.Inc()
			mURL.Add(urlSplits)
			mClustered.Add(clustered)
			mAborts.Add(aborts)
			mSplit.Add(urlSplits + clustered)
			mElements.Set(int64(len(p.Elements)))
			mRoundNs.ObserveDuration(time.Since(roundStart))
			if rs != nil {
				mSpillRounds.Inc()
				mSpillBytes.Add(rs.bytes())
			}
		}
		if rs != nil {
			rs.close()
		}
	}
	span.SetAttr("rounds", int64(p.Rounds))
	span.SetAttr("elements", int64(len(p.Elements)))
	return p, nil
}

// urlSplit groups the element's pages by URL prefix, starting at the
// element's next depth and deepening until some depth separates the
// pages (or maxDepth is exhausted). It returns nil when no prefix up to
// maxDepth splits the element; otherwise the resulting groups, each
// tagged with the depth to use next.
func urlSplit(c *webgraph.Corpus, e *Element, maxDepth int) []Element {
	for depth := e.depth; depth <= maxDepth; depth++ {
		groups := map[string][]webgraph.PageID{}
		var order []string
		for _, pg := range e.Pages {
			pref := urlutil.PrefixAtDepth(c.Pages[pg].URL, depth)
			if _, ok := groups[pref]; !ok {
				order = append(order, pref)
			}
			groups[pref] = append(groups[pref], pg)
		}
		if len(groups) < 2 {
			continue
		}
		sort.Strings(order)
		out := make([]Element, 0, len(groups))
		for _, pref := range order {
			pages := groups[pref]
			sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
			out = append(out, Element{
				Pages:       pages,
				depth:       depth + 1,
				clusterOnly: depth+1 > maxDepth,
			})
		}
		return out
	}
	return nil
}

// clusteredSplit runs the paper's k-means procedure: bit vectors over
// the element's out-supernodes, k starting at the supernode out-degree,
// retried with k+2 on abort. Returns nil when the split fails.
func clusteredSplit(c *webgraph.Corpus, p *Partition, ei int, cfg Config, rng *randutil.RNG) []Element {
	e := &p.Elements[ei]
	// Build sparse adjacency-to-supernode signatures. Dimensions are
	// target element indices, densified.
	dimOf := map[int32]int32{}
	points := make([]kmeans.Point, len(e.Pages))
	for i, pg := range e.Pages {
		var pt kmeans.Point
		for _, q := range c.Graph.Out(pg) {
			te := p.Assign[q]
			if te == int32(ei) {
				continue // intranode links are not part of the signature
			}
			d, ok := dimOf[te]
			if !ok {
				d = int32(len(dimOf))
				dimOf[te] = d
			}
			pt = append(pt, d)
		}
		points[i] = kmeans.SortPoint(pt)
	}
	k := len(dimOf) // supernode out-degree of this element (paper's k)
	if k < 2 {
		k = 2
	}
	// The paper bounds each k-means run by wall-clock time; with very
	// large k the bound is always exceeded, so in practice k is capped
	// by what the budget affords.
	if cfg.MaxClusterK > 0 && k > cfg.MaxClusterK {
		k = cfg.MaxClusterK
	}
	if k > len(e.Pages)/2 {
		k = len(e.Pages) / 2
	}
	minChild := cfg.MinSplitSize / 3
	if minChild < 2 {
		minChild = 2
	}
	for attempt := 0; attempt < cfg.KMeansAttempts; attempt++ {
		res, err := kmeans.Run(points, kmeans.Config{
			K:             k + 2*attempt,
			MaxIterations: cfg.KMeansMaxIter,
			Seed:          rng.Uint64(),
		})
		if err == kmeans.ErrDegenerate {
			return nil // cannot split: identical signatures
		}
		if err == kmeans.ErrAborted {
			continue // paper: increase k by 2 and repeat
		}
		if err != nil {
			return nil
		}
		if res.NumClusters < 2 {
			return nil
		}
		if cfg.SplitQuality > 0 && res.TotalSS > 0 &&
			res.WithinSS > cfg.SplitQuality*res.TotalSS {
			return nil // no real cluster structure at this granularity
		}
		out := make([]Element, res.NumClusters)
		for i, pg := range e.Pages {
			ci := res.Assign[i]
			out[ci].Pages = append(out[ci].Pages, pg)
		}
		// Merge fragments: clusters smaller than minChild reflect noise,
		// not adjacency-list structure; folding them into the largest
		// cluster keeps elements at useful sizes (the paper's partitions
		// average hundreds of pages per element).
		largest := 0
		for i := 1; i < len(out); i++ {
			if len(out[i].Pages) > len(out[largest].Pages) {
				largest = i
			}
		}
		kept := out[:0]
		keptLargest := -1
		var fragments []webgraph.PageID
		for i := range out {
			if i != largest && len(out[i].Pages) < minChild {
				fragments = append(fragments, out[i].Pages...)
				continue
			}
			if i == largest {
				keptLargest = len(kept)
			}
			kept = append(kept, out[i])
		}
		out = kept
		out[keptLargest].Pages = append(out[keptLargest].Pages, fragments...)
		if len(out) < 2 {
			return nil // no real structure found
		}
		for i := range out {
			out[i].clusterOnly = true
			out[i].depth = e.depth
			sort.Slice(out[i].Pages, func(a, b int) bool { return out[i].Pages[a] < out[i].Pages[b] })
		}
		return out
	}
	return nil
}

// applySplit replaces element ei with the given groups, preserving the
// paper's refinement semantics (Pi+1 = Pi \ {Nij} ∪ {A1..Am}).
func applySplit(p *Partition, ei int, groups []Element) {
	p.Elements[ei] = groups[0]
	for _, pg := range groups[0].Pages {
		p.Assign[pg] = int32(ei)
	}
	for _, g := range groups[1:] {
		ni := int32(len(p.Elements))
		for _, pg := range g.Pages {
			p.Assign[pg] = ni
		}
		p.Elements = append(p.Elements, g)
	}
}
