// External-memory refinement rounds: when Config.SpillDir is set, a
// round's proposed splits are encoded to a spill file as the workers
// produce them and replayed from disk, in the same ascending element
// order the in-memory path uses, during application. The file is a
// per-round append log of uvarint-encoded split groups; a small
// in-memory index (offset, length, two flag bits per examined element)
// is all that outlives a worker's examination.
package partition

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"snode/internal/webgraph"
)

// spillEntry indexes one examined element's encoded split in the round
// file. ok=false is an abort (nothing was written).
type spillEntry struct {
	off int64
	n   int64
	url bool
	ok  bool
}

// roundSpill is one refinement round's on-disk split state.
type roundSpill struct {
	f       *os.File
	mu      sync.Mutex
	off     int64
	entries []spillEntry
}

func newRoundSpill(dir string, round, n int) (*roundSpill, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("partition: spill dir: %w", err)
	}
	f, err := os.CreateTemp(dir, fmt.Sprintf("refine-round-%04d-*.spill", round))
	if err != nil {
		return nil, fmt.Errorf("partition: spill: %w", err)
	}
	return &roundSpill{f: f, entries: make([]spillEntry, n)}, nil
}

// put records examined element i's outcome, appending the encoded
// groups to the round file. Safe for concurrent workers; each index is
// written exactly once.
func (s *roundSpill) put(i int, r splitResult) error {
	if r.groups == nil {
		s.entries[i] = spillEntry{}
		return nil
	}
	buf := encodeGroups(r.groups)
	s.mu.Lock()
	off := s.off
	s.off += int64(len(buf))
	_, err := s.f.WriteAt(buf, off)
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("partition: spill write: %w", err)
	}
	s.entries[i] = spillEntry{off: off, n: int64(len(buf)), url: r.url, ok: true}
	return nil
}

// get replays examined element i's outcome from the round file.
func (s *roundSpill) get(i int) (splitResult, error) {
	e := s.entries[i]
	if !e.ok {
		return splitResult{}, nil
	}
	buf := make([]byte, e.n)
	if _, err := s.f.ReadAt(buf, e.off); err != nil {
		return splitResult{}, fmt.Errorf("partition: spill read: %w", err)
	}
	groups, err := decodeGroups(buf)
	if err != nil {
		return splitResult{}, err
	}
	return splitResult{groups: groups, url: e.url}, nil
}

// bytes reports how much the round spilled.
func (s *roundSpill) bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.off
}

// close removes the round file.
func (s *roundSpill) close() {
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
}

// encodeGroups serializes a split proposal: uvarint group count, then
// per group uvarint depth, a clusterOnly byte, uvarint page count, and
// the sorted pages delta-coded (first absolute, then gaps). The
// round trip is exact, which is what keeps spilled rounds bit-identical
// to in-memory rounds.
func encodeGroups(groups []Element) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(len(groups)))
	for _, g := range groups {
		put(uint64(g.depth))
		if g.clusterOnly {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		put(uint64(len(g.Pages)))
		prev := int64(-1)
		for _, pg := range g.Pages {
			put(uint64(int64(pg) - prev))
			prev = int64(pg)
		}
	}
	return buf
}

func decodeGroups(buf []byte) ([]Element, error) {
	pos := 0
	get := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("partition: spill entry corrupt")
		}
		pos += n
		return v, nil
	}
	ng, err := get()
	if err != nil {
		return nil, err
	}
	groups := make([]Element, ng)
	for gi := range groups {
		depth, err := get()
		if err != nil {
			return nil, err
		}
		if pos >= len(buf) {
			return nil, fmt.Errorf("partition: spill entry corrupt")
		}
		clusterOnly := buf[pos] == 1
		pos++
		np, err := get()
		if err != nil {
			return nil, err
		}
		pages := make([]webgraph.PageID, np)
		prev := int64(-1)
		for i := range pages {
			d, err := get()
			if err != nil {
				return nil, err
			}
			prev += int64(d)
			pages[i] = webgraph.PageID(prev)
		}
		groups[gi] = Element{Pages: pages, depth: int(depth), clusterOnly: clusterOnly}
	}
	return groups, nil
}
