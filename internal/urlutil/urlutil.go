// Package urlutil provides the URL manipulation the partitioner needs:
// registered-domain extraction (the paper's "top two levels of the DNS
// naming hierarchy", footnote 5), host extraction, and directory-prefix
// computation for the URL split technique (§3.2).
//
// URLs in this repository are always of the canonical synthetic form
// produced by the crawl generator:
//
//	http://host.domain.tld/dir1/dir2/page.html
//
// The functions here nevertheless parse defensively so they behave
// sensibly on arbitrary http(s) URLs.
package urlutil

import (
	"strings"
)

// StripScheme removes a leading http:// or https:// if present.
func StripScheme(u string) string {
	if rest, ok := strings.CutPrefix(u, "http://"); ok {
		return rest
	}
	if rest, ok := strings.CutPrefix(u, "https://"); ok {
		return rest
	}
	return u
}

// Host returns the full host part of the URL (everything before the
// first slash after the scheme), lower-cased.
func Host(u string) string {
	s := StripScheme(u)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}

// Domain returns the registered domain: the top two labels of the DNS
// name (e.g. cs.stanford.edu → stanford.edu), per the paper's initial
// partition P0. Hosts with fewer than two labels are returned as-is.
func Domain(u string) string {
	h := Host(u)
	labels := strings.Split(h, ".")
	if len(labels) <= 2 {
		return h
	}
	return labels[len(labels)-2] + "." + labels[len(labels)-1]
}

// TLD returns the last DNS label of the host ("edu", "com", ...).
func TLD(u string) string {
	h := Host(u)
	if i := strings.LastIndexByte(h, '.'); i >= 0 {
		return h[i+1:]
	}
	return h
}

// Path returns the path component including the leading slash, or "/"
// when absent.
func Path(u string) string {
	s := StripScheme(u)
	if i := strings.IndexByte(s, '/'); i >= 0 {
		return s[i:]
	}
	return "/"
}

// PrefixAtDepth returns the URL prefix consisting of the host plus the
// first depth path directories, used by URL split to group pages.
// Depth 0 returns just the host. The page file name never counts as a
// directory. Examples for u = "http://www.s.edu/a/b/p.html":
//
//	depth 0 → "www.s.edu"
//	depth 1 → "www.s.edu/a"
//	depth 2 → "www.s.edu/a/b"
//	depth 3 → "www.s.edu/a/b"   (only two directories exist)
func PrefixAtDepth(u string, depth int) string {
	host := Host(u)
	if depth <= 0 {
		return host
	}
	p := Path(u)
	// Split into segments, dropping the final file component (a segment
	// is a directory only if followed by '/').
	segs := strings.Split(strings.TrimPrefix(p, "/"), "/")
	nDirs := len(segs) - 1 // last segment is the file (possibly empty)
	if nDirs < 0 {
		nDirs = 0
	}
	if depth > nDirs {
		depth = nDirs
	}
	if depth == 0 {
		return host
	}
	return host + "/" + strings.Join(segs[:depth], "/")
}

// PathDepth reports the number of directories in the URL's path (the
// file component is not counted).
func PathDepth(u string) int {
	p := Path(u)
	segs := strings.Split(strings.TrimPrefix(p, "/"), "/")
	return len(segs) - 1
}

// SameDomain reports whether two URLs share a registered domain.
func SameDomain(a, b string) bool {
	return Domain(a) == Domain(b)
}
