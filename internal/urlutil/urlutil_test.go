package urlutil

import "testing"

func TestHost(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://www.stanford.edu/a/b.html", "www.stanford.edu"},
		{"https://CS.Stanford.EDU/", "cs.stanford.edu"},
		{"www.example.com/x", "www.example.com"},
		{"http://dilbert.com", "dilbert.com"},
	}
	for _, c := range cases {
		if got := Host(c.in); got != c.want {
			t.Errorf("Host(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDomain(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://www.stanford.edu/a.html", "stanford.edu"},
		{"http://cs.stanford.edu/a.html", "stanford.edu"},
		{"http://ee.stanford.edu/", "stanford.edu"},
		{"http://dilbert.com/strip", "dilbert.com"},
		{"http://localhost/x", "localhost"},
		{"http://a.b.c.d.example.org/", "example.org"},
	}
	for _, c := range cases {
		if got := Domain(c.in); got != c.want {
			t.Errorf("Domain(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDomainMergesSubdomains(t *testing.T) {
	// Footnote 5: cs.stanford.edu and ee.stanford.edu share a partition.
	if !SameDomain("http://cs.stanford.edu/x", "http://ee.stanford.edu/y") {
		t.Fatal("cs. and ee.stanford.edu should share a domain")
	}
	if SameDomain("http://www.stanford.edu/", "http://www.berkeley.edu/") {
		t.Fatal("stanford and berkeley should differ")
	}
}

func TestTLD(t *testing.T) {
	if got := TLD("http://www.stanford.edu/a"); got != "edu" {
		t.Errorf("TLD = %q", got)
	}
	if got := TLD("http://dilbert.com/"); got != "com" {
		t.Errorf("TLD = %q", got)
	}
}

func TestPath(t *testing.T) {
	if got := Path("http://a.com/x/y.html"); got != "/x/y.html" {
		t.Errorf("Path = %q", got)
	}
	if got := Path("http://a.com"); got != "/" {
		t.Errorf("Path no slash = %q", got)
	}
}

func TestPrefixAtDepth(t *testing.T) {
	u := "http://www.stanford.edu/students/grad/page7.html"
	cases := []struct {
		depth int
		want  string
	}{
		{0, "www.stanford.edu"},
		{1, "www.stanford.edu/students"},
		{2, "www.stanford.edu/students/grad"},
		{3, "www.stanford.edu/students/grad"}, // clamped: only 2 dirs
		{5, "www.stanford.edu/students/grad"},
	}
	for _, c := range cases {
		if got := PrefixAtDepth(u, c.depth); got != c.want {
			t.Errorf("PrefixAtDepth(%d) = %q, want %q", c.depth, got, c.want)
		}
	}
}

func TestPrefixAtDepthRootPage(t *testing.T) {
	u := "http://www.stanford.edu/index.html"
	if got := PrefixAtDepth(u, 1); got != "www.stanford.edu" {
		t.Errorf("root page prefix = %q", got)
	}
	if got := PrefixAtDepth(u, 0); got != "www.stanford.edu" {
		t.Errorf("depth-0 prefix = %q", got)
	}
}

func TestPrefixAtDepthSplitsSiblings(t *testing.T) {
	// The §3.2 example: /admin/ and /students/ pages must separate at
	// depth 1 and /students/grad vs /students/undergrad at depth 2.
	admin := "http://www.stanford.edu/admin/p1.html"
	grad := "http://www.stanford.edu/students/grad/p2.html"
	under := "http://www.stanford.edu/students/undergrad/p3.html"
	if PrefixAtDepth(admin, 1) == PrefixAtDepth(grad, 1) {
		t.Fatal("depth-1 prefixes should differ for /admin vs /students")
	}
	if PrefixAtDepth(grad, 1) != PrefixAtDepth(under, 1) {
		t.Fatal("depth-1 prefixes should match within /students")
	}
	if PrefixAtDepth(grad, 2) == PrefixAtDepth(under, 2) {
		t.Fatal("depth-2 prefixes should split grad vs undergrad")
	}
}

func TestPathDepth(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"http://a.com/p.html", 0},
		{"http://a.com/d1/p.html", 1},
		{"http://a.com/d1/d2/d3/p.html", 3},
		{"http://a.com", 0},
	}
	for _, c := range cases {
		if got := PathDepth(c.in); got != c.want {
			t.Errorf("PathDepth(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestStripScheme(t *testing.T) {
	if got := StripScheme("http://x.com/a"); got != "x.com/a" {
		t.Errorf("got %q", got)
	}
	if got := StripScheme("ftp://x.com/a"); got != "ftp://x.com/a" {
		t.Errorf("unknown scheme should pass through, got %q", got)
	}
}
