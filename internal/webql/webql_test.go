package webql

import (
	"context"
	"math"
	"os"
	"testing"

	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/synth"
)

var testRepo *repo.Repository

func getRepo(t testing.TB) *repo.Repository {
	t.Helper()
	if testRepo != nil {
		return testRepo
	}
	crawl, err := synth.Generate(synth.DefaultConfig(8000))
	if err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "webql-*")
	if err != nil {
		t.Fatal(err)
	}
	opt := repo.DefaultOptions(dir)
	opt.Schemes = []string{repo.SchemeSNode, repo.SchemeFiles}
	opt.Layout = crawl.Order
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	testRepo = r
	return r
}

// The declarative plan for Analysis 1 must produce exactly the
// hand-crafted Query 1's rows.
func TestAnalysis1MatchesHandCraftedPlan(t *testing.T) {
	r := getRepo(t)
	rows, err := NewPlan(r).
		Pages(Phrase(synth.PhraseMobileNetworking), InDomain("stanford.edu")).
		WeightBy(PageRankWeight).
		Out(TargetTLD("edu", "stanford.edu")).
		GroupByDomain(SumSourceWeights).
		Run(repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	e, err := query.New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Run(context.Background(), query.Q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want.Rows) {
		t.Fatalf("webql %d rows, hand-crafted %d", len(rows), len(want.Rows))
	}
	for i := range rows {
		if rows[i].Key != want.Rows[i].Key ||
			math.Abs(rows[i].Score-want.Rows[i].Value) > 1e-12 {
			t.Fatalf("row %d: webql %+v, hand-crafted %+v", i, rows[i], want.Rows[i])
		}
	}
}

func TestPlansAgreeAcrossSchemes(t *testing.T) {
	r := getRepo(t)
	build := func() *Plan {
		return NewPlan(r).
			Pages(Phrase(synth.PhraseComputerMusic)).
			Out(AnyTarget()).
			GroupByDomain(CountLinks).
			Top(10)
	}
	a, err := build().Run(repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().Run(repo.SchemeFiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("%d vs %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInNavigation(t *testing.T) {
	r := getRepo(t)
	rows, err := NewPlan(r).
		Pages(Phrase(synth.PhraseQuantumCryptography), InDomain("stanford.edu")).
		In(AnyTarget()).
		GroupByDomain(CountLinks).
		Run(repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no in-link sources found")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Score > rows[i-1].Score {
			t.Fatal("rows not sorted by score")
		}
	}
}

func TestTopByPageRankSelector(t *testing.T) {
	r := getRepo(t)
	rows, err := NewPlan(r).
		Pages(Phrase(synth.PhraseInternetCensorship), TopByPageRank(5)).
		Out(AnyTarget()).
		GroupByPage(CountLinks).
		Top(3).
		Run(repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) > 3 {
		t.Fatalf("Top(3) returned %d rows", len(rows))
	}
}

func TestWordsAtLeastSelector(t *testing.T) {
	r := getRepo(t)
	comic := synth.Comics()[0]
	rows, err := NewPlan(r).
		Pages(WordsAtLeast(comic.Words, 2), InDomain("stanford.edu")).
		Out(TargetDomains(map[string]bool{comic.Site: true})).
		GroupByDomain(CountLinks).
		Run(repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Key != comic.Site {
			t.Fatalf("unexpected domain %s", row.Key)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	r := getRepo(t)
	if _, err := NewPlan(r).Out(AnyTarget()).GroupByDomain(CountLinks).Run(repo.SchemeSNode); err == nil {
		t.Fatal("plan without Pages accepted")
	}
	if _, err := NewPlan(r).Pages(Phrase("x")).Run(repo.SchemeSNode); err == nil {
		t.Fatal("plan without GroupBy accepted")
	}
	if _, err := NewPlan(r).
		Pages(Phrase("x")).
		Out(AnyTarget()).
		GroupByDomain(CountLinks).
		Run("bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestMissingDomainSelectsNothing(t *testing.T) {
	r := getRepo(t)
	rows, err := NewPlan(r).
		Pages(InDomain("no-such.example")).
		Out(AnyTarget()).
		GroupByDomain(CountLinks).
		Run(repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows from a missing domain: %v", rows)
	}
}
