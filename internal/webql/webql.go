// Package webql is the declarative query layer the paper names as
// missing infrastructure (§4.3: "Since the Stanford WebBase repository
// ... does not yet have declarative query execution facilities, for
// each query, we hand-crafted execution plans"). It provides the three
// views of a repository the paper's introduction calls for — text
// collection, navigable graph, relational page properties — as
// composable plan operators:
//
//	result, err := webql.NewPlan(repo).
//	    Pages(webql.Phrase("mobile_networking"), webql.InDomain("stanford.edu")).
//	    WeightBy(webql.PageRankWeight).
//	    Out(webql.TargetDomains(eduSet)).
//	    GroupByDomain(webql.SumSourceWeights).
//	    Top(20).
//	    Run(scheme)
//
// Plans compile to the same navigation primitives the hand-crafted
// queries use, so the representation under test still determines
// performance; the engine exploits filters structurally where the
// scheme allows it (S-Node skips superedge graphs).
package webql

import (
	"fmt"
	"sort"
	"strings"

	"snode/internal/repo"
	"snode/internal/store"
	"snode/internal/webgraph"
)

// PageSelector restricts the initial page set.
type PageSelector func(r *repo.Repository) (map[webgraph.PageID]bool, error)

// Phrase selects pages containing a phrase token.
func Phrase(phrase string) PageSelector {
	return func(r *repo.Repository) (map[webgraph.PageID]bool, error) {
		out := map[webgraph.PageID]bool{}
		for _, p := range r.Text.Lookup(phrase) {
			out[p] = true
		}
		return out, nil
	}
}

// WordsAtLeast selects pages containing at least k of the words.
func WordsAtLeast(words []string, k int) PageSelector {
	return func(r *repo.Repository) (map[webgraph.PageID]bool, error) {
		out := map[webgraph.PageID]bool{}
		for _, p := range r.Text.PagesWithAtLeast(words, k) {
			out[p] = true
		}
		return out, nil
	}
}

// InDomain restricts to one registered domain.
func InDomain(domain string) PageSelector {
	return func(r *repo.Repository) (map[webgraph.PageID]bool, error) {
		dr, ok := r.Domains[domain]
		if !ok {
			return map[webgraph.PageID]bool{}, nil
		}
		out := map[webgraph.PageID]bool{}
		for p := dr.Lo; p < dr.Hi; p++ {
			out[p] = true
		}
		return out, nil
	}
}

// TopByPageRank keeps the k highest-PageRank pages of the selection so
// far (applied in selector order).
func TopByPageRank(k int) PageSelector {
	return func(r *repo.Repository) (map[webgraph.PageID]bool, error) {
		return nil, errTopByRankMarker{k: k}
	}
}

// errTopByRankMarker smuggles the parameter through the selector list;
// Pages handles it specially since it operates on the accumulated set.
type errTopByRankMarker struct{ k int }

func (errTopByRankMarker) Error() string { return "webql: internal marker" }

// TargetFilter restricts navigation targets.
type TargetFilter func(r *repo.Repository) *store.Filter

// TargetDomains accepts targets in the given domains.
func TargetDomains(domains map[string]bool) TargetFilter {
	return func(*repo.Repository) *store.Filter {
		return &store.Filter{Domains: domains}
	}
}

// TargetTLD accepts targets whose registered domain has the given TLD
// (e.g. "edu"), optionally excluding some domains.
func TargetTLD(tld string, exclude ...string) TargetFilter {
	return func(r *repo.Repository) *store.Filter {
		ex := map[string]bool{}
		for _, d := range exclude {
			ex[d] = true
		}
		set := map[string]bool{}
		for d := range r.Domains {
			if strings.HasSuffix(d, "."+tld) && !ex[d] {
				set[d] = true
			}
		}
		return &store.Filter{Domains: set}
	}
}

// TargetPages accepts exactly the given target pages.
func TargetPages(pages map[webgraph.PageID]bool) TargetFilter {
	return func(*repo.Repository) *store.Filter {
		return &store.Filter{Pages: pages}
	}
}

// AnyTarget accepts everything (full adjacency).
func AnyTarget() TargetFilter {
	return func(*repo.Repository) *store.Filter { return nil }
}

// Weighting assigns source-page weights.
type Weighting func(r *repo.Repository, p webgraph.PageID) float64

// PageRankWeight weights a page by normalized PageRank (Analysis 1).
func PageRankWeight(r *repo.Repository, p webgraph.PageID) float64 {
	return r.PageRank[p]
}

// UnitWeight counts each page once.
func UnitWeight(*repo.Repository, webgraph.PageID) float64 { return 1 }

// Aggregation folds navigation hits into keyed scores.
type Aggregation int

// Aggregations over (source, target) navigation hits.
const (
	// SumSourceWeights adds each source's weight once per key it
	// reaches (Analysis 1's domain weighting).
	SumSourceWeights Aggregation = iota
	// CountLinks counts every link (Analysis 2's C2).
	CountLinks
)

// Row is one line of a result.
type Row struct {
	Key   string
	Score float64
}

// Plan is a buildable, immutable-once-run query plan.
type Plan struct {
	r         *repo.Repository
	selectors []PageSelector
	weight    Weighting
	direction int // +1 out, -1 in
	target    TargetFilter
	groupBy   func(r *repo.Repository, t webgraph.PageID) string
	agg       Aggregation
	topK      int
	err       error
}

// NewPlan starts a plan over the repository.
func NewPlan(r *repo.Repository) *Plan {
	return &Plan{r: r, weight: UnitWeight, direction: +1, target: AnyTarget(), topK: -1}
}

// Pages sets the source selection: the intersection of all selectors,
// with TopByPageRank applied after the set selectors.
func (p *Plan) Pages(selectors ...PageSelector) *Plan {
	p.selectors = selectors
	return p
}

// WeightBy sets the source weighting.
func (p *Plan) WeightBy(w Weighting) *Plan {
	p.weight = w
	return p
}

// Out navigates forward links under the filter.
func (p *Plan) Out(f TargetFilter) *Plan {
	p.direction = +1
	p.target = f
	return p
}

// In navigates backlinks under the filter (requires a transpose
// representation).
func (p *Plan) In(f TargetFilter) *Plan {
	p.direction = -1
	p.target = f
	return p
}

// GroupByDomain aggregates hits per target domain.
func (p *Plan) GroupByDomain(agg Aggregation) *Plan {
	p.groupBy = func(r *repo.Repository, t webgraph.PageID) string {
		return r.DomainOf(t)
	}
	p.agg = agg
	return p
}

// GroupByPage aggregates hits per target page URL.
func (p *Plan) GroupByPage(agg Aggregation) *Plan {
	p.groupBy = func(r *repo.Repository, t webgraph.PageID) string {
		return r.Corpus.Pages[t].URL
	}
	p.agg = agg
	return p
}

// Top keeps the k highest-scored rows.
func (p *Plan) Top(k int) *Plan {
	p.topK = k
	return p
}

// resolve computes the source set, in ascending page order.
func (p *Plan) resolve() ([]webgraph.PageID, error) {
	var cur map[webgraph.PageID]bool
	topRank := 0
	for _, sel := range p.selectors {
		set, err := sel(p.r)
		if err != nil {
			if m, ok := err.(errTopByRankMarker); ok {
				topRank = m.k
				continue
			}
			return nil, err
		}
		if cur == nil {
			cur = set
			continue
		}
		for pg := range cur {
			if !set[pg] {
				delete(cur, pg)
			}
		}
	}
	if cur == nil {
		return nil, fmt.Errorf("webql: plan has no page selection")
	}
	out := make([]webgraph.PageID, 0, len(cur))
	for pg := range cur {
		out = append(out, pg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if topRank > 0 && len(out) > topRank {
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if p.r.PageRank[a] != p.r.PageRank[b] {
				return p.r.PageRank[a] > p.r.PageRank[b]
			}
			return a < b
		})
		out = out[:topRank]
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	}
	return out, nil
}

// Run executes the plan against the named representation.
func (p *Plan) Run(scheme string) ([]Row, error) {
	if p.groupBy == nil {
		return nil, fmt.Errorf("webql: plan has no aggregation (GroupBy...)")
	}
	src, err := p.resolve()
	if err != nil {
		return nil, err
	}
	var s store.LinkStore
	if p.direction > 0 {
		s = p.r.Fwd[scheme]
	} else {
		s = p.r.Rev[scheme]
	}
	if s == nil {
		return nil, fmt.Errorf("webql: scheme %q not available for this direction", scheme)
	}
	filter := p.target(p.r)
	scores := map[string]float64{}
	var buf []webgraph.PageID
	for _, pg := range src {
		buf, err = s.OutFiltered(pg, filter, buf[:0])
		if err != nil {
			return nil, err
		}
		switch p.agg {
		case SumSourceWeights:
			seen := map[string]bool{}
			w := p.weight(p.r, pg)
			for _, t := range buf {
				k := p.groupBy(p.r, t)
				if !seen[k] {
					seen[k] = true
					scores[k] += w
				}
			}
		case CountLinks:
			w := p.weight(p.r, pg)
			for _, t := range buf {
				scores[p.groupBy(p.r, t)] += w
			}
		}
	}
	rows := make([]Row, 0, len(scores))
	for k, v := range scores {
		rows = append(rows, Row{Key: k, Score: v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Score != rows[j].Score {
			return rows[i].Score > rows[j].Score
		}
		return rows[i].Key < rows[j].Key
	})
	if p.topK >= 0 && len(rows) > p.topK {
		rows = rows[:p.topK]
	}
	return rows, nil
}
