package query

import (
	"context"
	"testing"

	"snode/internal/repo"
	"snode/internal/snode"
	"snode/internal/synth"
)

// TestCodecQueryEquivalence is the cross-codec golden gate: all six
// Table 3 queries must return row-identical results regardless of
// which supernode payload codec the artifact was built with,
// including the per-supernode auto bake-off.
func TestCodecQueryEquivalence(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(1200))
	if err != nil {
		t.Fatal(err)
	}
	run := func(codec string) []*Result {
		opt := repo.DefaultOptions(t.TempDir())
		opt.Schemes = []string{repo.SchemeSNode}
		opt.Layout = crawl.Order
		opt.SNode.Codec = codec
		r, err := repo.Build(crawl.Corpus, opt)
		if err != nil {
			t.Fatalf("%s: build: %v", codec, err)
		}
		e, err := New(r, repo.SchemeSNode)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		res, err := e.RunAll(context.Background())
		if err != nil {
			t.Fatalf("%s: run: %v", codec, err)
		}
		return res
	}

	want := run(snode.CodecPaper)
	for _, codec := range []string{snode.CodecLZ, snode.CodecLog, snode.CodecAuto} {
		got := run(codec)
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", codec, len(got), len(want))
		}
		for qi := range want {
			if len(got[qi].Rows) != len(want[qi].Rows) {
				t.Fatalf("%s query %d: %d rows, want %d",
					codec, want[qi].Query, len(got[qi].Rows), len(want[qi].Rows))
			}
			for ri := range want[qi].Rows {
				if got[qi].Rows[ri] != want[qi].Rows[ri] {
					t.Fatalf("%s query %d row %d: %+v != %+v",
						codec, want[qi].Query, ri, got[qi].Rows[ri], want[qi].Rows[ri])
				}
			}
		}
	}
}
