package query

import (
	"context"
	"testing"

	"snode/internal/metrics"
	"snode/internal/repo"
	"snode/internal/synth"
)

// TestQueryMetricsRecorded runs the six queries serially and in
// parallel with a registry wired in, and checks every per-query
// histogram counted its executions, the stage histograms are populated,
// and the parallel pool reported occupancy.
func TestQueryMetricsRecorded(t *testing.T) {
	cfg := synth.DefaultConfig(2000)
	crawl, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := repo.DefaultOptions(t.TempDir())
	opt.Schemes = []string{repo.SchemeSNode}
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	e, err := New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	e.SetMetrics(reg)

	if _, err := e.RunAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAllParallel(context.Background(), 4); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, q := range All() {
		name := "query_latency_q" + string(rune('0'+int(q)))
		h, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("histogram %s not registered", name)
		}
		if h.Count != 2 {
			t.Errorf("%s count = %d, want 2 (one serial + one parallel run)", name, h.Count)
		}
		if h.P95() <= 0 {
			t.Errorf("%s p95 = %d, want > 0", name, h.P95())
		}
	}
	if h := snap.Histograms["query_nav_seconds"]; h.Count != 12 {
		t.Errorf("nav stage count = %d, want 12", h.Count)
	}
	if h := snap.Histograms["query_resolve_seconds"]; h.Count == 0 {
		t.Error("resolve stage histogram empty")
	}
	if got := snap.Counters["workpool_queries"]; got != 6 {
		t.Errorf("workpool_queries = %d, want 6 (the parallel batch)", got)
	}
	if got := snap.Gauges["workpool_busy"]; got != 0 {
		t.Errorf("workpool_busy = %d at rest, want 0", got)
	}
}
