package query

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"snode/internal/metrics"
	"snode/internal/repo"
	"snode/internal/store"
	"snode/internal/trace"
)

// coldEngine returns an engine over the shared test repository with the
// S-Node caches dropped, so the next query pays real (simulated) I/O and
// the trace covers the full decode path.
func coldEngine(t *testing.T) *Engine {
	t.Helper()
	r := getRepo(t)
	for _, s := range []store.LinkStore{r.Fwd[repo.SchemeSNode], r.Rev[repo.SchemeSNode]} {
		if cr, ok := s.(store.CacheResetter); ok {
			cr.ResetCache(16 << 20)
		}
	}
	e, err := New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// spanNames flattens the exported span tree into a name set.
func spanNames(n *trace.SpanJSON, into map[string]int) {
	if n == nil {
		return
	}
	into[n.Name]++
	for _, c := range n.Children {
		spanNames(c, into)
	}
}

// TestTracedRunSpanTree is the tentpole's end-to-end check: a sampled
// query must produce a span tree that reaches from the engine stage
// through the S-Node reader's span reads into cache decodes and
// simulated disk reads, with the request counters populated, and the
// trace must be retrievable from the tracer afterwards (the
// /debug/traces lookup path).
func TestTracedRunSpanTree(t *testing.T) {
	e := coldEngine(t)
	tr := trace.New(trace.Config{SampleEvery: 1})
	e.SetTracer(tr)

	res, err := e.Run(context.Background(), Q1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("SampleEvery=1 run returned no trace")
	}
	if got := tr.Get(res.Trace.ID); got != res.Trace {
		t.Fatalf("tracer.Get(%d) = %p, want the run's trace %p", res.Trace.ID, got, res.Trace)
	}

	js := res.Trace.JSON()
	if js.Class != "q1" {
		t.Fatalf("trace class %q, want q1", js.Class)
	}
	names := map[string]int{}
	spanNames(js.Root, names)
	for _, want := range []string{"q1", "nav", "snode.read_span", "cache.decode", "iosim.read"} {
		if names[want] == 0 {
			t.Errorf("span tree missing %q (got %v)", want, names)
		}
	}
	for _, ctr := range []int{trace.CtrLookups, trace.CtrCacheMisses, trace.CtrDecodes, trace.CtrReads, trace.CtrBytesRead} {
		if v := res.Trace.Counter(ctr); v <= 0 {
			t.Errorf("counter %s = %d, want > 0 on a cold run", trace.CtrNames[ctr], v)
		}
	}
	if res.Trace.Total() <= 0 {
		t.Error("finished trace has non-positive total")
	}

	// The same trace must export cleanly as Chrome trace_event JSON.
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, res.Trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"traceEvents"`) || !strings.Contains(out, "snode.read_span") {
		t.Errorf("chrome export missing expected content:\n%s", out)
	}

	// A warm re-run of the same query must coalesce into cache hits.
	res2, err := e.Run(context.Background(), Q1)
	if err != nil {
		t.Fatal(err)
	}
	if hits := res2.Trace.Counter(trace.CtrCacheHits); hits <= 0 {
		t.Errorf("warm re-run saw %d cache hits, want > 0", hits)
	}
}

// TestExemplarLinksHistogramToTrace checks the metrics bridge: the
// latency histogram's tail bucket must carry the trace ID of a sampled
// slow run, and that ID must resolve through the tracer — the
// "histogram tail → /debug/traces?id=N" workflow.
func TestExemplarLinksHistogramToTrace(t *testing.T) {
	e := coldEngine(t)
	tr := trace.New(trace.Config{SampleEvery: 1})
	e.SetTracer(tr)
	reg := metrics.NewRegistry()
	e.SetMetrics(reg)

	res, err := e.Run(context.Background(), Q2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace on sampled run")
	}

	h, ok := reg.Snapshot().Histograms["query_latency_q2"]
	if !ok {
		t.Fatal("query_latency_q2 histogram not registered")
	}
	bound, id := h.TailExemplar()
	if id == 0 {
		t.Fatal("tail bucket carries no exemplar trace ID")
	}
	if id != res.Trace.ID {
		t.Fatalf("tail exemplar id=%d, want the run's trace %d", id, res.Trace.ID)
	}
	if bound <= 0 {
		t.Errorf("tail exemplar bucket bound %d, want > 0", bound)
	}
	if tr.Get(id) == nil {
		t.Fatalf("exemplar trace %d not retained in the slow-query log", id)
	}
}

// TestUntracedTracingAddsNoAllocs is the overhead guard from the issue:
// attaching a tracer that never samples must add zero allocations per
// query over the PR 2 baseline (no tracer at all). Both measurements
// run on a warm cache so the only difference is the tracing plumbing.
func TestUntracedTracingAddsNoAllocs(t *testing.T) {
	e := coldEngine(t)
	ctx := context.Background()
	if _, err := e.Run(ctx, Q1); err != nil { // warm the cache
		t.Fatal(err)
	}

	base := testing.AllocsPerRun(10, func() {
		if _, err := e.Run(ctx, Q1); err != nil {
			t.Error(err)
		}
	})
	e.SetTracer(trace.New(trace.Config{SampleEvery: 1 << 30}))
	withTracer := testing.AllocsPerRun(10, func() {
		if _, err := e.Run(ctx, Q1); err != nil {
			t.Error(err)
		}
	})
	if delta := withTracer - base; delta > 0.5 {
		t.Fatalf("unsampled tracing adds %.1f allocs/query (%.1f -> %.1f), want 0",
			delta, base, withTracer)
	}
}

// BenchmarkRunUntraced / BenchmarkRunUnsampled are the bench-trajectory
// pair: compare allocs/op with `go test -bench 'BenchmarkRun' -benchmem`
// to confirm the untraced serving path is unchanged.
func BenchmarkRunUntraced(b *testing.B) {
	e := benchEngine(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(context.Background(), Q1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunUnsampled(b *testing.B) {
	e := benchEngine(b, trace.New(trace.Config{SampleEvery: 1 << 30}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(context.Background(), Q1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEngine(b *testing.B, tr *trace.Tracer) *Engine {
	b.Helper()
	e, err := New(getRepo(b), repo.SchemeSNode)
	if err != nil {
		b.Fatal(err)
	}
	if tr != nil {
		e.SetTracer(tr)
	}
	if _, err := e.Run(context.Background(), Q1); err != nil { // warm
		b.Fatal(err)
	}
	return e
}

// TestRunParallelPreCancelled: a batch submitted on an already-dead
// context must return its error immediately without running anything.
func TestRunParallelPreCancelled(t *testing.T) {
	e := coldEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := e.RunParallel(ctx, All(), 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled batch returned results: %v", res)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("pre-cancelled batch took %v to return", el)
	}
}

// TestRunParallelCancelledMidBatch: cancellation during a large batch
// must interrupt in-flight queries at their next store access and
// return promptly — queries do not run to completion first.
func TestRunParallelCancelledMidBatch(t *testing.T) {
	e := coldEngine(t)
	// 48 cold queries; a 2ms deadline lands mid-batch with huge margin.
	var qs []ID
	for i := 0; i < 8; i++ {
		qs = append(qs, All()...)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.RunParallel(ctx, qs, 2)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled batch took %v to return", elapsed)
	}
}
