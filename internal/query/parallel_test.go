package query

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snode/internal/repo"
	"snode/internal/synth"
)

func rowsEqual(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Value != b[i].Value {
			return false
		}
	}
	return true
}

// TestParallelEqualsSerialAcrossSeeds verifies the central equivalence
// property of the parallel engine: for five different corpora, the rows
// of RunAllParallel match a serial RunAll exactly. Each query sorts its
// rows deterministically, so concurrency must not change a single
// (Key, Value) pair.
func TestParallelEqualsSerialAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{3, 17, 41, 99, 20030226} {
		cfg := synth.DefaultConfig(2500)
		cfg.Seed = seed
		crawl, err := synth.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt := repo.DefaultOptions(t.TempDir())
		opt.Schemes = []string{repo.SchemeSNode}
		r, err := repo.Build(crawl.Corpus, opt)
		if err != nil {
			t.Fatalf("seed %d: repo.Build: %v", seed, err)
		}
		e, err := New(r, repo.SchemeSNode)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := e.RunAll(context.Background())
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		par, err := e.RunAllParallel(context.Background(), 4)
		if err != nil {
			t.Fatalf("seed %d: parallel: %v", seed, err)
		}
		if len(par) != len(serial) {
			t.Fatalf("seed %d: %d parallel results, want %d", seed, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Query != serial[i].Query {
				t.Fatalf("seed %d: result %d is Q%d, want Q%d",
					seed, i, par[i].Query, serial[i].Query)
			}
			if !rowsEqual(par[i].Rows, serial[i].Rows) {
				t.Fatalf("seed %d Q%d: parallel rows differ from serial\nserial: %v\nparallel: %v",
					seed, serial[i].Query, serial[i].Rows, par[i].Rows)
			}
		}
		r.Close()
	}
}

// TestConcurrentQueryStress runs a 32-goroutine mixed Query 1-6
// workload against one shared S-Node engine for over two seconds,
// checking every result against the serial baseline. Under -race this
// is the serving path's end-to-end detector.
func TestConcurrentQueryStress(t *testing.T) {
	r := getRepo(t)
	e, err := New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := e.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := map[ID][]Row{}
	for _, res := range baseline {
		want[res.Query] = res.Rows
	}

	sh := e.Shared()
	const goroutines = 32
	deadline := time.Now().Add(2200 * time.Millisecond)
	var ops atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*31 + 7))
			for time.Now().Before(deadline) {
				q := All()[rng.Intn(6)]
				res, err := sh.Run(context.Background(), q)
				if err != nil {
					t.Errorf("Q%d: %v", q, err)
					return
				}
				if !rowsEqual(res.Rows, want[q]) {
					t.Errorf("Q%d: concurrent rows differ from serial baseline", q)
					return
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if ops.Load() < goroutines {
		t.Fatalf("only %d queries completed across %d goroutines", ops.Load(), goroutines)
	}
	t.Logf("stress: %d queries served by %d goroutines", ops.Load(), goroutines)
}

// TestRunParallelPreservesOrder checks result slots line up with the
// requested query order, including duplicates.
func TestRunParallelPreservesOrder(t *testing.T) {
	r := getRepo(t)
	e, err := New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	qs := []ID{Q6, Q1, Q6, Q2, Q1}
	out, err := e.RunParallel(context.Background(), qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(qs) {
		t.Fatalf("%d results for %d queries", len(out), len(qs))
	}
	for i, q := range qs {
		if out[i] == nil || out[i].Query != q {
			t.Fatalf("slot %d: want Q%d, got %+v", i, q, out[i])
		}
	}
}
