// Package query implements the paper's six complex queries (Table 3)
// against any graph representation, reproducing §4.3's methodology:
// page sets are resolved through the text, PageRank, and domain indexes
// (un-timed, as the paper excludes index access), then the navigation
// component runs against the representation under test and is measured
// as CPU time plus modeled disk time.
package query

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"snode/internal/metrics"
	"snode/internal/pagerank"
	"snode/internal/repo"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

// ID identifies a Table 3 query.
type ID int

// The six queries of Table 3.
const (
	Q1 ID = iota + 1 // universities cited by Stanford mobile-networking pages
	Q2               // comic-strip popularity at Stanford
	Q3               // Kleinberg base set for "Internet censorship"
	Q4               // popular quantum-cryptography pages at four universities
	Q5               // computer-music pages ranked by intra-set citations
	Q6               // common citations of Stanford and Berkeley interferometry pages
)

// All lists the six queries.
func All() []ID { return []ID{Q1, Q2, Q3, Q4, Q5, Q6} }

// Description returns the paper's one-line description.
func (q ID) Description() string {
	switch q {
	case Q1:
		return "universities referenced by Stanford 'Mobile networking' pages (Analysis 1)"
	case Q2:
		return "relative popularity of three comic strips at Stanford (Analysis 2)"
	case Q3:
		return "Kleinberg base set for top-100 'Internet censorship' pages"
	case Q4:
		return "10 most popular 'Quantum cryptography' pages at four universities"
	case Q5:
		return "'Computer music synthesis' pages ranked by intra-set citations"
	case Q6:
		return "pages cited by both Stanford and Berkeley 'Optical interferometry' pages"
	}
	return "unknown"
}

// Row is one line of query output.
type Row struct {
	Key   string
	Value float64
}

// NavStats measures the navigation component of one query execution.
type NavStats struct {
	CPU          time.Duration // wall time spent in graph access + decode
	IO           time.Duration // modeled disk time (iosim)
	Seeks        int64
	BytesRead    int64
	GraphsLoaded int64
}

// Total is the navigation time the experiments report.
func (n NavStats) Total() time.Duration { return n.CPU + n.IO }

// Result is a query execution outcome.
type Result struct {
	Query  ID
	Scheme string
	Rows   []Row
	Nav    NavStats
}

// Engine executes queries for one scheme over a repository.
type Engine struct {
	R      *repo.Repository
	Scheme string

	// shared marks an engine running alongside other engines on the
	// same stores (the parallel serving path): navigation closures run
	// without resetting the shared access statistics, and per-query
	// NavStats carries wall time only, since concurrent streams cannot
	// attribute the shared accountant's bytes to one query.
	shared bool

	// Serving-path instrumentation, wired by SetMetrics (nil without):
	// one latency histogram per Table 3 query plus the per-stage split —
	// index resolution (text/PageRank/domain lookups, un-timed by the
	// paper) versus navigation (the timed component). Pointers, so
	// Shared copies record into the same histograms.
	qHist       [Q6 + 1]*metrics.Histogram
	resolveHist *metrics.Histogram
	navHist     *metrics.Histogram
	reg         *metrics.Registry
}

// New returns an engine bound to a scheme built in the repository.
func New(r *repo.Repository, scheme string) (*Engine, error) {
	if _, ok := r.Fwd[scheme]; !ok {
		return nil, fmt.Errorf("query: scheme %q not built", scheme)
	}
	return &Engine{R: r, Scheme: scheme}, nil
}

// SetMetrics wires the engine's executions into a registry: a latency
// histogram per query ID (query_latency_q1 .. query_latency_q6) and the
// per-stage split between index resolution and navigation. Call before
// serving; engines derived via Shared (and therefore RunParallel)
// record into the same histograms, so concurrent streams aggregate.
func (e *Engine) SetMetrics(reg *metrics.Registry) {
	e.reg = reg
	for _, q := range All() {
		e.qHist[q] = reg.Histogram(fmt.Sprintf("query_latency_q%d", q), nil)
	}
	e.resolveHist = reg.Histogram("query_resolve_seconds", nil)
	e.navHist = reg.Histogram("query_nav_seconds", nil)
}

// Run executes one query.
func (e *Engine) Run(q ID) (*Result, error) {
	switch q {
	case Q3, Q4, Q5:
		if e.rev() == nil {
			return nil, fmt.Errorf("query: Q%d needs in-neighborhood navigation; build the repository with Transpose", q)
		}
	}
	start := time.Now()
	r, err := e.run(q)
	if err != nil || e.qHist[q] == nil {
		return r, err
	}
	total := time.Since(start)
	e.qHist[q].ObserveDuration(total)
	e.navHist.ObserveDuration(r.Nav.CPU)
	if resolve := total - r.Nav.CPU; resolve > 0 {
		e.resolveHist.ObserveDuration(resolve)
	}
	return r, nil
}

// run dispatches to the query implementations.
func (e *Engine) run(q ID) (*Result, error) {
	switch q {
	case Q1:
		return e.q1()
	case Q2:
		return e.q2()
	case Q3:
		return e.q3()
	case Q4:
		return e.q4()
	case Q5:
		return e.q5()
	case Q6:
		return e.q6()
	}
	return nil, fmt.Errorf("query: unknown query %d", q)
}

// RunAll executes the six queries in order.
func (e *Engine) RunAll() ([]*Result, error) {
	var out []*Result
	for _, q := range All() {
		r, err := e.Run(q)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func (e *Engine) fwd() store.LinkStore { return e.R.Fwd[e.Scheme] }
func (e *Engine) rev() store.LinkStore { return e.R.Rev[e.Scheme] }

// nav times a navigation closure over the scheme's stores.
func (e *Engine) nav(fn func() error) (NavStats, error) {
	if e.shared {
		// Shared stores: resetting stats would clobber concurrent
		// streams, and the accountant's counters mix all of them, so a
		// shared engine reports wall time only.
		start := time.Now()
		err := fn()
		return NavStats{CPU: time.Since(start)}, err
	}
	fwd := e.fwd()
	rev := e.rev()
	fwd.ResetStats()
	if rev != nil {
		rev.ResetStats()
	}
	start := time.Now()
	err := fn()
	cpu := time.Since(start)
	st := fwd.Stats()
	if rev != nil {
		rs := rev.Stats()
		st.IO.Seeks += rs.IO.Seeks
		st.IO.BytesRead += rs.IO.BytesRead
		st.IO.Reads += rs.IO.Reads
		st.GraphsLoaded += rs.GraphsLoaded
	}
	return NavStats{
		CPU:          cpu,
		IO:           st.IO.ModeledTime(e.R.Model),
		Seeks:        st.IO.Seeks,
		BytesRead:    st.IO.BytesRead,
		GraphsLoaded: st.GraphsLoaded,
	}, err
}

// domainRange returns a domain's page range.
func (e *Engine) domainRange(domain string) (store.DomainRange, bool) {
	r, ok := e.R.Domains[domain]
	return r, ok
}

// phraseInDomain resolves the pages of a domain containing a phrase.
func (e *Engine) phraseInDomain(phrase, domain string) []webgraph.PageID {
	dr, ok := e.domainRange(domain)
	if !ok {
		return nil
	}
	return e.R.Text.LookupInRange(phrase, dr.Lo, dr.Hi)
}

func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			return rows[i].Value > rows[j].Value
		}
		return rows[i].Key < rows[j].Key
	})
}

// q1 — Analysis 1: weighted list of .edu domains referenced by Stanford
// pages about mobile networking.
func (e *Engine) q1() (*Result, error) {
	s := e.phraseInDomain(synth.PhraseMobileNetworking, "stanford.edu")
	eduSet := e.R.EduDomains("stanford.edu")
	filter := &store.Filter{Domains: eduSet}
	weights := map[string]float64{}
	var buf []webgraph.PageID
	nav, err := e.nav(func() error {
		for _, p := range s {
			var err error
			buf, err = e.fwd().OutFiltered(p, filter, buf[:0])
			if err != nil {
				return err
			}
			// A page contributes its weight once per domain it points to.
			seen := map[string]bool{}
			for _, t := range buf {
				d := e.R.DomainOf(t)
				if !seen[d] {
					seen[d] = true
					weights[d] += e.R.PageRank[p]
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(weights))
	for d, w := range weights {
		rows = append(rows, Row{Key: d, Value: w})
	}
	sortRows(rows)
	return &Result{Query: Q1, Scheme: e.Scheme, Rows: rows, Nav: nav}, nil
}

// q2 — Analysis 2: popularity C1+C2 per comic strip.
func (e *Engine) q2() (*Result, error) {
	comics := synth.Comics()
	dr, ok := e.domainRange("stanford.edu")
	if !ok {
		return nil, fmt.Errorf("query: stanford.edu not in corpus")
	}
	// C1: word-occurrence counts (text index, untimed).
	c1 := map[string]int{}
	siteOf := map[string]string{}
	sites := map[string]bool{}
	for _, c := range comics {
		pages := e.R.Text.PagesWithAtLeast(c.Words, 2)
		n := 0
		for _, p := range pages {
			if p >= dr.Lo && p < dr.Hi {
				n++
			}
		}
		c1[c.Name] = n
		siteOf[c.Site] = c.Name
		sites[c.Site] = true
	}
	// C2: links from Stanford pages to each comic site (navigation).
	c2 := map[string]int{}
	filter := &store.Filter{Domains: sites}
	var buf []webgraph.PageID
	nav, err := e.nav(func() error {
		for p := dr.Lo; p < dr.Hi; p++ {
			var err error
			buf, err = e.fwd().OutFiltered(p, filter, buf[:0])
			if err != nil {
				return err
			}
			for _, t := range buf {
				c2[siteOf[e.R.DomainOf(t)]]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(comics))
	for _, c := range comics {
		rows = append(rows, Row{Key: c.Name, Value: float64(c1[c.Name] + c2[c.Name])})
	}
	sortRows(rows)
	return &Result{Query: Q2, Scheme: e.Scheme, Rows: rows, Nav: nav}, nil
}

// kleinbergInCap bounds in-neighbours per base-set page, as in HITS.
const kleinbergInCap = 50

// q3 — Kleinberg base set: S ∪ out(S) ∪ in(S).
func (e *Engine) q3() (*Result, error) {
	l := e.R.Text.Lookup(synth.PhraseInternetCensorship)
	s := pagerank.TopK(e.R.PageRank, l, 100)
	// Navigate in page-ID order (sort the fetch set before touching the
	// representation — the classic RID-sort, which every scheme's
	// on-disk clustering benefits from).
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	base := map[webgraph.PageID]bool{}
	for _, p := range s {
		base[p] = true
	}
	var buf []webgraph.PageID
	nav, err := e.nav(func() error {
		for _, p := range s {
			var err error
			buf, err = e.fwd().Out(p, buf[:0])
			if err != nil {
				return err
			}
			for _, t := range buf {
				base[t] = true
			}
			buf, err = e.rev().Out(p, buf[:0])
			if err != nil {
				return err
			}
			// Deterministic cap: smallest page IDs first.
			sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
			for i, t := range buf {
				if i >= kleinbergInCap {
					break
				}
				base[t] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := []Row{{Key: "base-set-size", Value: float64(len(base))}}
	return &Result{Query: Q3, Scheme: e.Scheme, Rows: rows, Nav: nav}, nil
}

// q4 — per-university top-10 quantum-cryptography pages by external
// in-links.
func (e *Engine) q4() (*Result, error) {
	var rows []Row
	var navTotal NavStats
	var buf []webgraph.PageID
	for _, uni := range synth.Universities() {
		s := e.phraseInDomain(synth.PhraseQuantumCryptography, uni)
		pop := map[webgraph.PageID]int{}
		nav, err := e.nav(func() error {
			for _, p := range s {
				var err error
				buf, err = e.rev().Out(p, buf[:0])
				if err != nil {
					return err
				}
				n := 0
				for _, src := range buf {
					if e.R.DomainOf(src) != uni {
						n++
					}
				}
				pop[p] = n
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		navTotal = addNav(navTotal, nav)
		uniRows := make([]Row, 0, len(pop))
		for p, n := range pop {
			uniRows = append(uniRows, Row{
				Key:   uni + " " + e.R.Corpus.Pages[p].URL,
				Value: float64(n),
			})
		}
		sortRows(uniRows)
		if len(uniRows) > 10 {
			uniRows = uniRows[:10]
		}
		rows = append(rows, uniRows...)
	}
	return &Result{Query: Q4, Scheme: e.Scheme, Rows: rows, Nav: navTotal}, nil
}

// q5 — computer-music pages ranked by in-links from within the set.
func (e *Engine) q5() (*Result, error) {
	s := e.R.Text.Lookup(synth.PhraseComputerMusic)
	inSet := map[webgraph.PageID]bool{}
	for _, p := range s {
		inSet[p] = true
	}
	filter := &store.Filter{Pages: inSet}
	counts := map[webgraph.PageID]int{}
	var buf []webgraph.PageID
	nav, err := e.nav(func() error {
		for _, p := range s {
			var err error
			buf, err = e.rev().OutFiltered(p, filter, buf[:0])
			if err != nil {
				return err
			}
			counts[p] = len(buf)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Row
	for p, n := range counts {
		if strings.HasSuffix(e.R.DomainOf(p), ".edu") {
			rows = append(rows, Row{Key: e.R.Corpus.Pages[p].URL, Value: float64(n)})
		}
	}
	sortRows(rows)
	if len(rows) > 10 {
		rows = rows[:10]
	}
	return &Result{Query: Q5, Scheme: e.Scheme, Rows: rows, Nav: nav}, nil
}

// q6 — pages cited by both Stanford and Berkeley interferometry pages,
// ranked by total citations from S1 ∪ S2.
func (e *Engine) q6() (*Result, error) {
	s1 := e.phraseInDomain(synth.PhraseOpticalInterferometry, "stanford.edu")
	s2 := e.phraseInDomain(synth.PhraseOpticalInterferometry, "berkeley.edu")
	type cnt struct{ a, b int }
	counts := map[webgraph.PageID]*cnt{}
	var buf []webgraph.PageID
	collect := func(src []webgraph.PageID, first bool) error {
		for _, p := range src {
			var err error
			buf, err = e.fwd().Out(p, buf[:0])
			if err != nil {
				return err
			}
			for _, t := range buf {
				d := e.R.DomainOf(t)
				if d == "stanford.edu" || d == "berkeley.edu" {
					continue
				}
				c := counts[t]
				if c == nil {
					c = &cnt{}
					counts[t] = c
				}
				if first {
					c.a++
				} else {
					c.b++
				}
			}
		}
		return nil
	}
	nav, err := e.nav(func() error {
		if err := collect(s1, true); err != nil {
			return err
		}
		return collect(s2, false)
	})
	if err != nil {
		return nil, err
	}
	var rows []Row
	for t, c := range counts {
		if c.a >= 1 && c.b >= 1 {
			rows = append(rows, Row{Key: e.R.Corpus.Pages[t].URL, Value: float64(c.a + c.b)})
		}
	}
	sortRows(rows)
	if len(rows) > 25 {
		rows = rows[:25]
	}
	return &Result{Query: Q6, Scheme: e.Scheme, Rows: rows, Nav: nav}, nil
}

func addNav(a, b NavStats) NavStats {
	return NavStats{
		CPU:          a.CPU + b.CPU,
		IO:           a.IO + b.IO,
		Seeks:        a.Seeks + b.Seeks,
		BytesRead:    a.BytesRead + b.BytesRead,
		GraphsLoaded: a.GraphsLoaded + b.GraphsLoaded,
	}
}
