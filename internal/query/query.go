// Package query implements the paper's six complex queries (Table 3)
// against any graph representation, reproducing §4.3's methodology:
// page sets are resolved through the text, PageRank, and domain indexes
// (un-timed, as the paper excludes index access), then the navigation
// component runs against the representation under test and is measured
// as CPU time plus modeled disk time.
package query

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"snode/internal/metrics"
	"snode/internal/pagerank"
	"snode/internal/repo"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/trace"
	"snode/internal/webgraph"
)

// ID identifies a Table 3 query.
type ID int

// The six queries of Table 3.
const (
	Q1 ID = iota + 1 // universities cited by Stanford mobile-networking pages
	Q2               // comic-strip popularity at Stanford
	Q3               // Kleinberg base set for "Internet censorship"
	Q4               // popular quantum-cryptography pages at four universities
	Q5               // computer-music pages ranked by intra-set citations
	Q6               // common citations of Stanford and Berkeley interferometry pages
)

// All lists the six queries.
func All() []ID { return []ID{Q1, Q2, Q3, Q4, Q5, Q6} }

// Description returns the paper's one-line description.
func (q ID) Description() string {
	switch q {
	case Q1:
		return "universities referenced by Stanford 'Mobile networking' pages (Analysis 1)"
	case Q2:
		return "relative popularity of three comic strips at Stanford (Analysis 2)"
	case Q3:
		return "Kleinberg base set for top-100 'Internet censorship' pages"
	case Q4:
		return "10 most popular 'Quantum cryptography' pages at four universities"
	case Q5:
		return "'Computer music synthesis' pages ranked by intra-set citations"
	case Q6:
		return "pages cited by both Stanford and Berkeley 'Optical interferometry' pages"
	}
	return "unknown"
}

// Row is one line of query output.
type Row struct {
	Key   string
	Value float64
}

// NavStats measures the navigation component of one query execution.
type NavStats struct {
	CPU          time.Duration // wall time spent in graph access + decode
	IO           time.Duration // modeled disk time (iosim)
	Seeks        int64
	BytesRead    int64
	GraphsLoaded int64
}

// Total is the navigation time the experiments report.
func (n NavStats) Total() time.Duration { return n.CPU + n.IO }

// Result is a query execution outcome.
type Result struct {
	Query  ID
	Scheme string
	Rows   []Row
	Nav    NavStats
	// Trace is the finished execution trace when this run was sampled
	// by the engine's tracer (nil otherwise). It is already offered to
	// the tracer's slow-query log; callers may render or export it.
	Trace *trace.Trace
}

// Engine executes queries for one scheme over a repository.
type Engine struct {
	R      *repo.Repository
	Scheme string

	// shared marks an engine running alongside other engines on the
	// same stores (the parallel serving path): navigation closures run
	// without resetting the shared access statistics, and per-query
	// NavStats carries wall time only, since concurrent streams cannot
	// attribute the shared accountant's bytes to one query.
	shared bool

	// Serving-path instrumentation, wired by SetMetrics (nil without):
	// one latency histogram per Table 3 query plus the per-stage split —
	// index resolution (text/PageRank/domain lookups, un-timed by the
	// paper) versus navigation (the timed component). Pointers, so
	// Shared copies record into the same histograms.
	qHist       [Q6 + 1]*metrics.Histogram
	resolveHist *metrics.Histogram
	navHist     *metrics.Histogram
	navLatHist  *metrics.Histogram
	reg         *metrics.Registry

	// tracer, wired by SetTracer (nil without), samples executions into
	// request-scoped traces; Shared copies record into the same tracer.
	tracer *trace.Tracer

	// owned, wired by SetOwner (nil = owns everything), restricts
	// partial-query source page sets to this shard's pages; see
	// partial.go. Shared copies inherit it (struct copy).
	owned func(webgraph.PageID) bool

	// fwdCtx/revCtx cache the one-time type assertion to the stores'
	// optional context-aware read path (store.ContextLinkStore; nil when
	// the scheme — any of the flat baselines — does not provide it).
	fwdCtx store.ContextLinkStore
	revCtx store.ContextLinkStore
}

// New returns an engine bound to a scheme built in the repository.
func New(r *repo.Repository, scheme string) (*Engine, error) {
	if _, ok := r.Fwd[scheme]; !ok {
		return nil, fmt.Errorf("query: scheme %q not built", scheme)
	}
	e := &Engine{R: r, Scheme: scheme}
	e.fwdCtx, _ = e.fwd().(store.ContextLinkStore)
	e.revCtx, _ = e.rev().(store.ContextLinkStore)
	return e, nil
}

// SetTracer attaches a sampling tracer: every subsequent Run consults
// it, and sampled executions build a span tree through the engine, the
// S-Node reader, the buffer manager, and the I/O simulator, finished
// into the tracer's slow-query log. Engines derived via Shared (and
// therefore RunParallel) sample into the same tracer. Call before
// serving; nil disables.
func (e *Engine) SetTracer(t *trace.Tracer) { e.tracer = t }

// Tracer returns the tracer wired by SetTracer (nil without).
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// classNames are the slow-query-log classes, one per Table 3 query —
// a static table so the untraced hot path never formats a string.
var classNames = [Q6 + 1]string{"", "q1", "q2", "q3", "q4", "q5", "q6"}

// SetMetrics wires the engine's executions into a registry: a latency
// histogram per query ID (query_latency_q1 .. query_latency_q6) and the
// per-stage split between index resolution and navigation. Call before
// serving; engines derived via Shared (and therefore RunParallel)
// record into the same histograms, so concurrent streams aggregate.
func (e *Engine) SetMetrics(reg *metrics.Registry) {
	e.reg = reg
	for _, q := range All() {
		e.qHist[q] = reg.Histogram(fmt.Sprintf("query_latency_q%d", q), nil)
	}
	e.resolveHist = reg.Histogram("query_resolve_seconds", nil)
	e.navHist = reg.Histogram("query_nav_seconds", nil)
	e.navLatHist = reg.Histogram("query_latency_nav", nil)
}

// Neighbors is the navigation-class lookup the serving tier exposes:
// one page's full out-adjacency, an order of magnitude lighter than the
// Table 3 mining queries — the traffic mix's "click a link" class. It
// carries the same serving instrumentation as Run: sampled executions
// are traced under class "nav", and latency lands in the
// query_latency_nav histogram with a trace exemplar. The finished
// trace is returned (nil when unsampled) so the serving tier can
// attribute pre-engine time — admission queue wait — on the root, the
// way RunParallel attributes pool queue wait.
func (e *Engine) Neighbors(ctx context.Context, p webgraph.PageID) ([]webgraph.PageID, *trace.Trace, error) {
	var tr *trace.Trace
	if e.tracer != nil {
		ctx, tr = e.tracer.StartRequest(ctx, "nav")
	}
	start := time.Now()
	out, err := e.fwdOut(ctx, p, nil, nil)
	var traceID uint64
	if tr != nil {
		e.tracer.Finish(tr)
		traceID = tr.ID
	}
	if err != nil {
		return nil, tr, err
	}
	if h := e.navLatHist; h != nil {
		h.ObserveExemplar(int64(time.Since(start)), traceID)
	}
	return out, tr, nil
}

// Run executes one query. The context propagates through the whole
// execution — navigation loops stop promptly when it is cancelled —
// and, when a tracer is wired and samples this run, carries the
// execution trace down into the reader, cache, and I/O layers.
func (e *Engine) Run(ctx context.Context, q ID) (*Result, error) {
	switch q {
	case Q3, Q4, Q5:
		if e.rev() == nil {
			return nil, fmt.Errorf("query: Q%d needs in-neighborhood navigation; build the repository with Transpose", q)
		}
	}
	var tr *trace.Trace
	if e.tracer != nil && q >= Q1 && q <= Q6 {
		ctx, tr = e.tracer.StartRequest(ctx, classNames[q])
	}
	start := time.Now()
	r, err := e.run(ctx, q)
	var traceID uint64
	if tr != nil {
		// Finish before publishing the exemplar: a scrape that sees the
		// trace ID in a histogram bucket must be able to look it up.
		e.tracer.Finish(tr)
		traceID = tr.ID
		if r != nil {
			r.Trace = tr
		}
	}
	if err != nil || e.qHist[q] == nil {
		return r, err
	}
	total := time.Since(start)
	e.qHist[q].ObserveExemplar(int64(total), traceID)
	e.navHist.ObserveDuration(r.Nav.CPU)
	if resolve := total - r.Nav.CPU; resolve > 0 {
		e.resolveHist.ObserveDuration(resolve)
	}
	return r, nil
}

// run dispatches to the query implementations.
func (e *Engine) run(ctx context.Context, q ID) (*Result, error) {
	switch q {
	case Q1:
		return e.q1(ctx)
	case Q2:
		return e.q2(ctx)
	case Q3:
		return e.q3(ctx)
	case Q4:
		return e.q4(ctx)
	case Q5:
		return e.q5(ctx)
	case Q6:
		return e.q6(ctx)
	}
	return nil, fmt.Errorf("query: unknown query %d", q)
}

// RunAll executes the six queries in order.
func (e *Engine) RunAll(ctx context.Context) ([]*Result, error) {
	var out []*Result
	for _, q := range All() {
		r, err := e.Run(ctx, q)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func (e *Engine) fwd() store.LinkStore { return e.R.Fwd[e.Scheme] }
func (e *Engine) rev() store.LinkStore { return e.R.Rev[e.Scheme] }

// fwdOut is the engine's single forward-navigation access point: it
// checks for cancellation, then routes through the scheme's
// context-aware read path when the store provides one (S-Node), so the
// request's trace and cancellation reach the reader; the flat
// baselines keep the plain interface. A nil filter means the full
// adjacency.
func (e *Engine) fwdOut(ctx context.Context, p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	if err := ctx.Err(); err != nil {
		return buf, err
	}
	if e.fwdCtx != nil {
		return e.fwdCtx.OutFilteredCtx(ctx, p, f, buf)
	}
	if f == nil {
		return e.fwd().Out(p, buf)
	}
	return e.fwd().OutFiltered(p, f, buf)
}

// revOut is fwdOut over the transposed graph.
func (e *Engine) revOut(ctx context.Context, p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	if err := ctx.Err(); err != nil {
		return buf, err
	}
	if e.revCtx != nil {
		return e.revCtx.OutFilteredCtx(ctx, p, f, buf)
	}
	if f == nil {
		return e.rev().Out(p, buf)
	}
	return e.rev().OutFiltered(p, f, buf)
}

// nav times a navigation closure over the scheme's stores. On traced
// requests the whole navigation component becomes a "nav" span — the
// timed part of the query, as distinct from index resolution.
func (e *Engine) nav(ctx context.Context, fn func(ctx context.Context) error) (NavStats, error) {
	ctx, sp := trace.Start(ctx, "nav")
	defer sp.End()
	if e.shared {
		// Shared stores: resetting stats would clobber concurrent
		// streams, and the accountant's counters mix all of them, so a
		// shared engine reports wall time only.
		start := time.Now()
		err := fn(ctx)
		return NavStats{CPU: time.Since(start)}, err
	}
	fwd := e.fwd()
	rev := e.rev()
	fwd.ResetStats()
	if rev != nil {
		rev.ResetStats()
	}
	start := time.Now()
	err := fn(ctx)
	cpu := time.Since(start)
	st := fwd.Stats()
	if rev != nil {
		rs := rev.Stats()
		st.IO.Seeks += rs.IO.Seeks
		st.IO.BytesRead += rs.IO.BytesRead
		st.IO.Reads += rs.IO.Reads
		st.GraphsLoaded += rs.GraphsLoaded
	}
	return NavStats{
		CPU:          cpu,
		IO:           st.IO.ModeledTime(e.R.Model),
		Seeks:        st.IO.Seeks,
		BytesRead:    st.IO.BytesRead,
		GraphsLoaded: st.GraphsLoaded,
	}, err
}

// domainRange returns a domain's page range.
func (e *Engine) domainRange(domain string) (store.DomainRange, bool) {
	r, ok := e.R.Domains[domain]
	return r, ok
}

// phraseInDomain resolves the pages of a domain containing a phrase.
func (e *Engine) phraseInDomain(phrase, domain string) []webgraph.PageID {
	dr, ok := e.domainRange(domain)
	if !ok {
		return nil
	}
	return e.R.Text.LookupInRange(phrase, dr.Lo, dr.Hi)
}

func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			return rows[i].Value > rows[j].Value
		}
		return rows[i].Key < rows[j].Key
	})
}

// q1 — Analysis 1: weighted list of .edu domains referenced by Stanford
// pages about mobile networking.
func (e *Engine) q1(ctx context.Context) (*Result, error) {
	s := e.phraseInDomain(synth.PhraseMobileNetworking, "stanford.edu")
	eduSet := e.R.EduDomains("stanford.edu")
	filter := &store.Filter{Domains: eduSet}
	weights := map[string]float64{}
	var buf []webgraph.PageID
	nav, err := e.nav(ctx, func(ctx context.Context) error {
		for _, p := range s {
			var err error
			buf, err = e.fwdOut(ctx, p, filter, buf[:0])
			if err != nil {
				return err
			}
			// A page contributes its weight once per domain it points to.
			seen := map[string]bool{}
			for _, t := range buf {
				d := e.R.DomainOf(t)
				if !seen[d] {
					seen[d] = true
					weights[d] += e.R.PageRank[p]
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(weights))
	for d, w := range weights {
		rows = append(rows, Row{Key: d, Value: w})
	}
	sortRows(rows)
	return &Result{Query: Q1, Scheme: e.Scheme, Rows: rows, Nav: nav}, nil
}

// q2 — Analysis 2: popularity C1+C2 per comic strip.
func (e *Engine) q2(ctx context.Context) (*Result, error) {
	comics := synth.Comics()
	dr, ok := e.domainRange("stanford.edu")
	if !ok {
		return nil, fmt.Errorf("query: stanford.edu not in corpus")
	}
	// C1: word-occurrence counts (text index, untimed).
	c1 := map[string]int{}
	siteOf := map[string]string{}
	sites := map[string]bool{}
	for _, c := range comics {
		pages := e.R.Text.PagesWithAtLeast(c.Words, 2)
		n := 0
		for _, p := range pages {
			if p >= dr.Lo && p < dr.Hi {
				n++
			}
		}
		c1[c.Name] = n
		siteOf[c.Site] = c.Name
		sites[c.Site] = true
	}
	// C2: links from Stanford pages to each comic site (navigation).
	c2 := map[string]int{}
	filter := &store.Filter{Domains: sites}
	var buf []webgraph.PageID
	nav, err := e.nav(ctx, func(ctx context.Context) error {
		for p := dr.Lo; p < dr.Hi; p++ {
			var err error
			buf, err = e.fwdOut(ctx, p, filter, buf[:0])
			if err != nil {
				return err
			}
			for _, t := range buf {
				c2[siteOf[e.R.DomainOf(t)]]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(comics))
	for _, c := range comics {
		rows = append(rows, Row{Key: c.Name, Value: float64(c1[c.Name] + c2[c.Name])})
	}
	sortRows(rows)
	return &Result{Query: Q2, Scheme: e.Scheme, Rows: rows, Nav: nav}, nil
}

// kleinbergInCap bounds in-neighbours per base-set page, as in HITS.
const kleinbergInCap = 50

// q3 — Kleinberg base set: S ∪ out(S) ∪ in(S).
func (e *Engine) q3(ctx context.Context) (*Result, error) {
	l := e.R.Text.Lookup(synth.PhraseInternetCensorship)
	s := pagerank.TopK(e.R.PageRank, l, 100)
	// Navigate in page-ID order (sort the fetch set before touching the
	// representation — the classic RID-sort, which every scheme's
	// on-disk clustering benefits from).
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	base := map[webgraph.PageID]bool{}
	for _, p := range s {
		base[p] = true
	}
	var buf []webgraph.PageID
	nav, err := e.nav(ctx, func(ctx context.Context) error {
		for _, p := range s {
			var err error
			buf, err = e.fwdOut(ctx, p, nil, buf[:0])
			if err != nil {
				return err
			}
			for _, t := range buf {
				base[t] = true
			}
			buf, err = e.revOut(ctx, p, nil, buf[:0])
			if err != nil {
				return err
			}
			// Deterministic cap: smallest page IDs first.
			sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
			for i, t := range buf {
				if i >= kleinbergInCap {
					break
				}
				base[t] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := []Row{{Key: "base-set-size", Value: float64(len(base))}}
	return &Result{Query: Q3, Scheme: e.Scheme, Rows: rows, Nav: nav}, nil
}

// q4 — per-university top-10 quantum-cryptography pages by external
// in-links.
func (e *Engine) q4(ctx context.Context) (*Result, error) {
	var rows []Row
	var navTotal NavStats
	var buf []webgraph.PageID
	for _, uni := range synth.Universities() {
		s := e.phraseInDomain(synth.PhraseQuantumCryptography, uni)
		pop := map[webgraph.PageID]int{}
		nav, err := e.nav(ctx, func(ctx context.Context) error {
			for _, p := range s {
				var err error
				buf, err = e.revOut(ctx, p, nil, buf[:0])
				if err != nil {
					return err
				}
				n := 0
				for _, src := range buf {
					if e.R.DomainOf(src) != uni {
						n++
					}
				}
				pop[p] = n
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		navTotal = addNav(navTotal, nav)
		uniRows := make([]Row, 0, len(pop))
		for p, n := range pop {
			uniRows = append(uniRows, Row{
				Key:   uni + " " + e.R.Corpus.Pages[p].URL,
				Value: float64(n),
			})
		}
		sortRows(uniRows)
		if len(uniRows) > 10 {
			uniRows = uniRows[:10]
		}
		rows = append(rows, uniRows...)
	}
	return &Result{Query: Q4, Scheme: e.Scheme, Rows: rows, Nav: navTotal}, nil
}

// q5 — computer-music pages ranked by in-links from within the set.
func (e *Engine) q5(ctx context.Context) (*Result, error) {
	s := e.R.Text.Lookup(synth.PhraseComputerMusic)
	inSet := map[webgraph.PageID]bool{}
	for _, p := range s {
		inSet[p] = true
	}
	filter := &store.Filter{Pages: inSet}
	counts := map[webgraph.PageID]int{}
	var buf []webgraph.PageID
	nav, err := e.nav(ctx, func(ctx context.Context) error {
		for _, p := range s {
			var err error
			buf, err = e.revOut(ctx, p, filter, buf[:0])
			if err != nil {
				return err
			}
			counts[p] = len(buf)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Row
	for p, n := range counts {
		if strings.HasSuffix(e.R.DomainOf(p), ".edu") {
			rows = append(rows, Row{Key: e.R.Corpus.Pages[p].URL, Value: float64(n)})
		}
	}
	sortRows(rows)
	if len(rows) > 10 {
		rows = rows[:10]
	}
	return &Result{Query: Q5, Scheme: e.Scheme, Rows: rows, Nav: nav}, nil
}

// q6 — pages cited by both Stanford and Berkeley interferometry pages,
// ranked by total citations from S1 ∪ S2.
func (e *Engine) q6(ctx context.Context) (*Result, error) {
	s1 := e.phraseInDomain(synth.PhraseOpticalInterferometry, "stanford.edu")
	s2 := e.phraseInDomain(synth.PhraseOpticalInterferometry, "berkeley.edu")
	type cnt struct{ a, b int }
	counts := map[webgraph.PageID]*cnt{}
	var buf []webgraph.PageID
	collect := func(ctx context.Context, src []webgraph.PageID, first bool) error {
		for _, p := range src {
			var err error
			buf, err = e.fwdOut(ctx, p, nil, buf[:0])
			if err != nil {
				return err
			}
			for _, t := range buf {
				d := e.R.DomainOf(t)
				if d == "stanford.edu" || d == "berkeley.edu" {
					continue
				}
				c := counts[t]
				if c == nil {
					c = &cnt{}
					counts[t] = c
				}
				if first {
					c.a++
				} else {
					c.b++
				}
			}
		}
		return nil
	}
	nav, err := e.nav(ctx, func(ctx context.Context) error {
		if err := collect(ctx, s1, true); err != nil {
			return err
		}
		return collect(ctx, s2, false)
	})
	if err != nil {
		return nil, err
	}
	var rows []Row
	for t, c := range counts {
		if c.a >= 1 && c.b >= 1 {
			rows = append(rows, Row{Key: e.R.Corpus.Pages[t].URL, Value: float64(c.a + c.b)})
		}
	}
	sortRows(rows)
	if len(rows) > 25 {
		rows = rows[:25]
	}
	return &Result{Query: Q6, Scheme: e.Scheme, Rows: rows, Nav: nav}, nil
}

func addNav(a, b NavStats) NavStats {
	return NavStats{
		CPU:          a.CPU + b.CPU,
		IO:           a.IO + b.IO,
		Seeks:        a.Seeks + b.Seeks,
		BytesRead:    a.BytesRead + b.BytesRead,
		GraphsLoaded: a.GraphsLoaded + b.GraphsLoaded,
	}
}
