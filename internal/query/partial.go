// Partial query execution for the domain-sharded serving tier.
//
// A sharded corpus (internal/shard) replicates the small global state
// — page metadata, text index, global PageRank, domain index — to
// every shard, and partitions the expensive state, the link structure:
// a shard's S-Node stores hold the edges whose SOURCE page it owns
// (intra-shard edges in the compressed representation, cross-shard
// edges merged back in from the boundary store). Under that layout a
// shard can answer any Table 3 query EXACTLY for the slice of the
// page set it owns: source-page sets resolve identically everywhere
// (global indexes), and navigation from an owned page sees the page's
// complete adjacency in both directions.
//
// RunPartial therefore runs the same six algorithms as Run with two
// changes: source page sets are restricted to owned pages, and no
// final truncation/aggregation is applied — rows come back untruncated
// and group-tagged so the router can merge K shards' partials into
// exactly the rows a single-node Run would produce (MergePartials).
package query

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"snode/internal/pagerank"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

// SetOwner restricts partial-query source page sets to the pages owns
// accepts (the shard's slice of the corpus). nil means the engine owns
// every page, in which case MergePartials over this engine's single
// partial reproduces Run exactly. Call before serving; Shared copies
// inherit the predicate.
func (e *Engine) SetOwner(owns func(webgraph.PageID) bool) { e.owned = owns }

// owns reports whether partial queries treat p as local.
func (e *Engine) owns(p webgraph.PageID) bool { return e.owned == nil || e.owned(p) }

// PartialRow is one untruncated, mergeable output row of a partial
// query execution. Group disambiguates rows that merge independently
// (Q4: the university; Q6: which source set cited the target).
type PartialRow struct {
	Group string  `json:"group,omitempty"`
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// PartialResult is one shard's contribution to a scattered query.
type PartialResult struct {
	Query ID
	Rows  []PartialRow
	Nav   NavStats
}

// RunPartial executes one query restricted to the engine's owned
// pages, returning mergeable partial rows. The context propagates
// exactly as in Run.
func (e *Engine) RunPartial(ctx context.Context, q ID) (*PartialResult, error) {
	switch q {
	case Q3, Q4, Q5:
		if e.rev() == nil {
			return nil, fmt.Errorf("query: Q%d needs in-neighborhood navigation; build the repository with Transpose", q)
		}
	}
	switch q {
	case Q1:
		return e.pq1(ctx)
	case Q2:
		return e.pq2(ctx)
	case Q3:
		return e.pq3(ctx)
	case Q4:
		return e.pq4(ctx)
	case Q5:
		return e.pq5(ctx)
	case Q6:
		return e.pq6(ctx)
	}
	return nil, fmt.Errorf("query: unknown query %d", q)
}

// pq1 — Q1 restricted to owned Stanford sources. Rows: partial domain
// weights; merge by summing.
func (e *Engine) pq1(ctx context.Context) (*PartialResult, error) {
	s := e.phraseInDomain(synth.PhraseMobileNetworking, "stanford.edu")
	eduSet := e.R.EduDomains("stanford.edu")
	filter := &store.Filter{Domains: eduSet}
	weights := map[string]float64{}
	var order []string
	var buf []webgraph.PageID
	nav, err := e.nav(ctx, func(ctx context.Context) error {
		for _, p := range s {
			if !e.owns(p) {
				continue
			}
			var err error
			buf, err = e.fwdOut(ctx, p, filter, buf[:0])
			if err != nil {
				return err
			}
			seen := map[string]bool{}
			for _, t := range buf {
				d := e.R.DomainOf(t)
				if !seen[d] {
					seen[d] = true
					if _, ok := weights[d]; !ok {
						order = append(order, d)
					}
					weights[d] += e.R.PageRank[p]
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]PartialRow, 0, len(order))
	for _, d := range order {
		rows = append(rows, PartialRow{Key: d, Value: weights[d]})
	}
	return &PartialResult{Query: Q1, Rows: rows, Nav: nav}, nil
}

// pq2 — Q2 with both the text count C1 and the link count C2
// restricted to owned Stanford pages. Rows: per-comic partial counts;
// merge by summing.
func (e *Engine) pq2(ctx context.Context) (*PartialResult, error) {
	comics := synth.Comics()
	dr, ok := e.domainRange("stanford.edu")
	if !ok {
		// Domain ranges are global, so every shard fails identically.
		return nil, fmt.Errorf("query: stanford.edu not in corpus")
	}
	c1 := map[string]int{}
	siteOf := map[string]string{}
	sites := map[string]bool{}
	for _, c := range comics {
		pages := e.R.Text.PagesWithAtLeast(c.Words, 2)
		n := 0
		for _, p := range pages {
			if p >= dr.Lo && p < dr.Hi && e.owns(p) {
				n++
			}
		}
		c1[c.Name] = n
		siteOf[c.Site] = c.Name
		sites[c.Site] = true
	}
	c2 := map[string]int{}
	filter := &store.Filter{Domains: sites}
	var buf []webgraph.PageID
	nav, err := e.nav(ctx, func(ctx context.Context) error {
		for p := dr.Lo; p < dr.Hi; p++ {
			if !e.owns(p) {
				continue
			}
			var err error
			buf, err = e.fwdOut(ctx, p, filter, buf[:0])
			if err != nil {
				return err
			}
			for _, t := range buf {
				c2[siteOf[e.R.DomainOf(t)]]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]PartialRow, 0, len(comics))
	for _, c := range comics {
		rows = append(rows, PartialRow{Key: c.Name, Value: float64(c1[c.Name] + c2[c.Name])})
	}
	return &PartialResult{Query: Q2, Rows: rows, Nav: nav}, nil
}

// pq3 — Q3's base set, the slice this shard can expand: the global
// top-100 S resolves identically on every shard (global text index and
// PageRank), and each shard contributes {p} ∪ out(p) ∪ cappedIn(p) for
// the p ∈ S it owns. Rows: one per base-set member, keyed by page ID;
// merge by distinct-key union.
func (e *Engine) pq3(ctx context.Context) (*PartialResult, error) {
	l := e.R.Text.Lookup(synth.PhraseInternetCensorship)
	s := pagerank.TopK(e.R.PageRank, l, 100)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	members := map[webgraph.PageID]bool{}
	var buf []webgraph.PageID
	nav, err := e.nav(ctx, func(ctx context.Context) error {
		for _, p := range s {
			if !e.owns(p) {
				continue
			}
			members[p] = true
			var err error
			buf, err = e.fwdOut(ctx, p, nil, buf[:0])
			if err != nil {
				return err
			}
			for _, t := range buf {
				members[t] = true
			}
			buf, err = e.revOut(ctx, p, nil, buf[:0])
			if err != nil {
				return err
			}
			sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
			for i, t := range buf {
				if i >= kleinbergInCap {
					break
				}
				members[t] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ids := make([]webgraph.PageID, 0, len(members))
	for p := range members {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rows := make([]PartialRow, 0, len(ids))
	for _, p := range ids {
		rows = append(rows, PartialRow{Key: strconv.FormatInt(int64(p), 10), Value: 1})
	}
	return &PartialResult{Query: Q3, Rows: rows, Nav: nav}, nil
}

// pq4 — Q4 restricted to owned candidate pages, untruncated. Rows
// carry the university as Group; merge sorts and caps per group.
func (e *Engine) pq4(ctx context.Context) (*PartialResult, error) {
	var rows []PartialRow
	var navTotal NavStats
	var buf []webgraph.PageID
	for _, uni := range synth.Universities() {
		uni := uni
		s := e.phraseInDomain(synth.PhraseQuantumCryptography, uni)
		pop := map[webgraph.PageID]int{}
		var order []webgraph.PageID
		nav, err := e.nav(ctx, func(ctx context.Context) error {
			for _, p := range s {
				if !e.owns(p) {
					continue
				}
				var err error
				buf, err = e.revOut(ctx, p, nil, buf[:0])
				if err != nil {
					return err
				}
				n := 0
				for _, src := range buf {
					if e.R.DomainOf(src) != uni {
						n++
					}
				}
				pop[p] = n
				order = append(order, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		navTotal = addNav(navTotal, nav)
		for _, p := range order {
			rows = append(rows, PartialRow{
				Group: uni,
				Key:   uni + " " + e.R.Corpus.Pages[p].URL,
				Value: float64(pop[p]),
			})
		}
	}
	return &PartialResult{Query: Q4, Rows: rows, Nav: navTotal}, nil
}

// pq5 — Q5 restricted to owned set members, untruncated; merge sorts
// and caps globally.
func (e *Engine) pq5(ctx context.Context) (*PartialResult, error) {
	s := e.R.Text.Lookup(synth.PhraseComputerMusic)
	inSet := map[webgraph.PageID]bool{}
	for _, p := range s {
		inSet[p] = true
	}
	filter := &store.Filter{Pages: inSet}
	counts := map[webgraph.PageID]int{}
	var order []webgraph.PageID
	var buf []webgraph.PageID
	nav, err := e.nav(ctx, func(ctx context.Context) error {
		for _, p := range s {
			if !e.owns(p) {
				continue
			}
			var err error
			buf, err = e.revOut(ctx, p, filter, buf[:0])
			if err != nil {
				return err
			}
			counts[p] = len(buf)
			order = append(order, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []PartialRow
	for _, p := range order {
		if strings.HasSuffix(e.R.DomainOf(p), ".edu") {
			rows = append(rows, PartialRow{Key: e.R.Corpus.Pages[p].URL, Value: float64(counts[p])})
		}
	}
	return &PartialResult{Query: Q5, Rows: rows, Nav: nav}, nil
}

// pq6 — Q6 with the two source sets restricted to owned pages. Rows
// carry Group "a" (Stanford citations) or "b" (Berkeley citations);
// the merge joins the two sides and keeps targets cited by both.
func (e *Engine) pq6(ctx context.Context) (*PartialResult, error) {
	s1 := e.phraseInDomain(synth.PhraseOpticalInterferometry, "stanford.edu")
	s2 := e.phraseInDomain(synth.PhraseOpticalInterferometry, "berkeley.edu")
	counts := map[webgraph.PageID]int{}
	var order []webgraph.PageID
	var buf []webgraph.PageID
	collect := func(ctx context.Context, src []webgraph.PageID) error {
		for _, p := range src {
			if !e.owns(p) {
				continue
			}
			var err error
			buf, err = e.fwdOut(ctx, p, nil, buf[:0])
			if err != nil {
				return err
			}
			for _, t := range buf {
				d := e.R.DomainOf(t)
				if d == "stanford.edu" || d == "berkeley.edu" {
					continue
				}
				if _, ok := counts[t]; !ok {
					order = append(order, t)
				}
				counts[t]++
			}
		}
		return nil
	}
	var rows []PartialRow
	emit := func(group string) {
		for _, t := range order {
			rows = append(rows, PartialRow{Group: group, Key: e.R.Corpus.Pages[t].URL, Value: float64(counts[t])})
		}
		counts = map[webgraph.PageID]int{}
		order = order[:0]
	}
	nav, err := e.nav(ctx, func(ctx context.Context) error {
		if err := collect(ctx, s1); err != nil {
			return err
		}
		emit("a")
		if err := collect(ctx, s2); err != nil {
			return err
		}
		emit("b")
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &PartialResult{Query: Q6, Rows: rows, Nav: nav}, nil
}

// MergePartials folds K shards' partial rows into exactly the rows a
// single-node Run of q would produce, applying the query's merge
// class:
//
//	Q1, Q2 — sum by key (partial weights/counts), rank by value
//	Q3     — distinct-key union, reported as one base-set-size row
//	Q4     — concatenate, rank and cap 10 per university group
//	Q5     — concatenate, rank and cap 10
//	Q6     — join Group "a"/"b" by key, keep both-cited, rank, cap 25
//
// Partials are folded in slice order and ties rank by key, so the
// merge is deterministic for a fixed shard ordering.
func MergePartials(q ID, parts [][]PartialRow) []Row {
	switch q {
	case Q1, Q2:
		return mergeSum(parts, 0)
	case Q3:
		n := 0
		seen := map[string]bool{}
		for _, part := range parts {
			for _, r := range part {
				if !seen[r.Key] {
					seen[r.Key] = true
					n++
				}
			}
		}
		return []Row{{Key: "base-set-size", Value: float64(n)}}
	case Q4:
		var rows []Row
		for _, uni := range synth.Universities() {
			var g []Row
			for _, part := range parts {
				for _, r := range part {
					if r.Group == uni {
						g = append(g, Row{Key: r.Key, Value: r.Value})
					}
				}
			}
			sortRows(g)
			if len(g) > 10 {
				g = g[:10]
			}
			rows = append(rows, g...)
		}
		return rows
	case Q5:
		rows := mergeSum(parts, 0)
		if len(rows) > 10 {
			rows = rows[:10]
		}
		return rows
	case Q6:
		a := map[string]float64{}
		b := map[string]float64{}
		var order []string
		for _, part := range parts {
			for _, r := range part {
				m := a
				if r.Group == "b" {
					m = b
				}
				if _, inA := a[r.Key]; !inA {
					if _, inB := b[r.Key]; !inB {
						order = append(order, r.Key)
					}
				}
				m[r.Key] += r.Value
			}
		}
		var rows []Row
		for _, k := range order {
			if a[k] >= 1 && b[k] >= 1 {
				rows = append(rows, Row{Key: k, Value: a[k] + b[k]})
			}
		}
		sortRows(rows)
		if len(rows) > 25 {
			rows = rows[:25]
		}
		return rows
	}
	return nil
}

// mergeSum sums partial rows by key and ranks the result.
func mergeSum(parts [][]PartialRow, _ int) []Row {
	sums := map[string]float64{}
	var order []string
	for _, part := range parts {
		for _, r := range part {
			if _, ok := sums[r.Key]; !ok {
				order = append(order, r.Key)
			}
			sums[r.Key] += r.Value
		}
	}
	rows := make([]Row, 0, len(order))
	for _, k := range order {
		rows = append(rows, Row{Key: k, Value: sums[k]})
	}
	sortRows(rows)
	return rows
}
