package query

import (
	"context"
	"os"
	"testing"
	"time"

	"snode/internal/repo"
	"snode/internal/store"
	"snode/internal/synth"
)

var testRepo *repo.Repository

func getRepo(t testing.TB) *repo.Repository {
	t.Helper()
	if testRepo != nil {
		return testRepo
	}
	crawl, err := synth.Generate(synth.DefaultConfig(12000))
	if err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "query-test-*")
	if err != nil {
		t.Fatal(err)
	}
	opt := repo.DefaultOptions(dir)
	opt.Layout = crawl.Order
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		t.Fatalf("repo.Build: %v", err)
	}
	testRepo = r
	return r
}

func TestAllQueriesReturnResults(t *testing.T) {
	r := getRepo(t)
	e, err := New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	results, err := e.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("%d results", len(results))
	}
	for _, res := range results {
		if len(res.Rows) == 0 {
			t.Errorf("query %d (%s) returned no rows — scenario wiring broken",
				res.Query, res.Query.Description())
		}
		if res.Nav.Total() <= 0 {
			t.Errorf("query %d: non-positive navigation time", res.Query)
		}
	}
}

func TestSchemesAgreeOnResults(t *testing.T) {
	r := getRepo(t)
	ref, err := New(r, repo.SchemeFiles)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{repo.SchemeSNode, repo.SchemeLink3, repo.SchemeDB, repo.SchemeHuffman} {
		e, err := New(r, scheme)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.RunAll(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		for qi := range want {
			if len(got[qi].Rows) != len(want[qi].Rows) {
				t.Fatalf("%s query %d: %d rows, want %d",
					scheme, want[qi].Query, len(got[qi].Rows), len(want[qi].Rows))
			}
			for ri := range want[qi].Rows {
				if got[qi].Rows[ri] != want[qi].Rows[ri] {
					t.Fatalf("%s query %d row %d: %+v != %+v",
						scheme, want[qi].Query, ri, got[qi].Rows[ri], want[qi].Rows[ri])
				}
			}
		}
	}
}

func TestQ1RanksEduDomains(t *testing.T) {
	r := getRepo(t)
	e, _ := New(r, repo.SchemeSNode)
	res, err := e.Run(context.Background(), Q1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Key == "stanford.edu" {
			t.Fatal("Q1 must exclude stanford.edu")
		}
		if len(row.Key) < 5 || row.Key[len(row.Key)-4:] != ".edu" {
			t.Fatalf("Q1 returned non-edu domain %q", row.Key)
		}
		if row.Value <= 0 {
			t.Fatalf("non-positive weight for %s", row.Key)
		}
	}
	// Descending weights.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Value > res.Rows[i-1].Value {
			t.Fatal("Q1 rows not sorted by weight")
		}
	}
}

func TestQ2CoversAllComics(t *testing.T) {
	r := getRepo(t)
	e, _ := New(r, repo.SchemeSNode)
	res, err := e.Run(context.Background(), Q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("Q2 rows = %d", len(res.Rows))
	}
	names := map[string]bool{}
	for _, row := range res.Rows {
		names[row.Key] = true
	}
	for _, c := range synth.Comics() {
		if !names[c.Name] {
			t.Fatalf("comic %s missing", c.Name)
		}
	}
}

func TestQ3BaseSetLargerThanRoot(t *testing.T) {
	r := getRepo(t)
	e, _ := New(r, repo.SchemeSNode)
	res, err := e.Run(context.Background(), Q3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Key != "base-set-size" {
		t.Fatalf("unexpected row %+v", res.Rows[0])
	}
	if res.Rows[0].Value < 100 {
		t.Fatalf("base set (%v) smaller than root set", res.Rows[0].Value)
	}
}

func TestQ4AtMostTenPerUniversity(t *testing.T) {
	r := getRepo(t)
	e, _ := New(r, repo.SchemeSNode)
	res, err := e.Run(context.Background(), Q4)
	if err != nil {
		t.Fatal(err)
	}
	perUni := map[string]int{}
	for _, row := range res.Rows {
		for _, u := range synth.Universities() {
			if len(row.Key) > len(u) && row.Key[:len(u)] == u {
				perUni[u]++
			}
		}
	}
	for u, n := range perUni {
		if n > 10 {
			t.Fatalf("%s has %d rows", u, n)
		}
	}
	if len(perUni) < 2 {
		t.Fatalf("only %d universities produced results", len(perUni))
	}
}

func TestQ5OnlyEduPages(t *testing.T) {
	r := getRepo(t)
	e, _ := New(r, repo.SchemeSNode)
	res, err := e.Run(context.Background(), Q5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) > 10 {
		t.Fatalf("Q5 returned %d rows", len(res.Rows))
	}
}

func TestQ6RequiresBothCiters(t *testing.T) {
	r := getRepo(t)
	e, _ := New(r, repo.SchemeSNode)
	res, err := e.Run(context.Background(), Q6)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Value < 2 {
			t.Fatalf("Q6 row %q has %v citations, need >= 2 (one per university)",
				row.Key, row.Value)
		}
	}
}

func TestSNodeNavigationBeatsFlatFiles(t *testing.T) {
	// The Figure 11 headline at test scale: from a cold, small cache,
	// total modeled navigation time across the six queries must be
	// lower for S-Node than for the uncompressed-files scheme.
	r := getRepo(t)
	const budget = 256 << 10
	r.Fwd[repo.SchemeSNode].(store.CacheResetter).ResetCache(budget)
	r.Rev[repo.SchemeSNode].(store.CacheResetter).ResetCache(budget)
	r.Fwd[repo.SchemeFiles].(store.CacheResetter).ResetCache(budget)
	r.Rev[repo.SchemeFiles].(store.CacheResetter).ResetCache(budget)

	sn, _ := New(r, repo.SchemeSNode)
	ff, _ := New(r, repo.SchemeFiles)
	snRes, err := sn.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ffRes, err := ff.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var snIO, ffIO int64
	for i := range snRes {
		snIO += int64(snRes[i].Nav.IO)
		ffIO += int64(ffRes[i].Nav.IO)
	}
	if snIO >= ffIO {
		t.Fatalf("snode modeled IO %d >= files %d", snIO, ffIO)
	}
	t.Logf("modeled nav IO: snode=%v files=%v",
		time.Duration(snIO), time.Duration(ffIO))
}

func TestUnknownSchemeRejected(t *testing.T) {
	r := getRepo(t)
	if _, err := New(r, "bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestDescriptions(t *testing.T) {
	for _, q := range All() {
		if q.Description() == "unknown" {
			t.Fatalf("query %d lacks description", q)
		}
	}
}

func TestTransposeRequiredQueries(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	opt := repo.DefaultOptions(t.TempDir())
	opt.Schemes = []string{repo.SchemeSNode}
	opt.Transpose = false
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	e, err := New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []ID{Q3, Q4, Q5} {
		if _, err := e.Run(context.Background(), q); err == nil {
			t.Errorf("Q%d without transpose did not error", q)
		}
	}
	// Forward-only queries still work.
	for _, q := range []ID{Q1, Q2, Q6} {
		if _, err := e.Run(context.Background(), q); err != nil {
			t.Errorf("Q%d without transpose failed: %v", q, err)
		}
	}
}

// Ground truth: recompute Q1 and Q2 by brute force directly from the
// corpus (no LinkStore, no filters) and compare with the engine.
func TestQ1AgainstBruteForce(t *testing.T) {
	r := getRepo(t)
	c := r.Corpus
	hasPhrase := func(p int32, phrase string) bool {
		for _, term := range c.Pages[p].Terms {
			if term == phrase {
				return true
			}
		}
		return false
	}
	isEdu := func(d string) bool {
		return len(d) > 4 && d[len(d)-4:] == ".edu"
	}
	want := map[string]float64{}
	for p := int32(0); int(p) < c.Graph.NumPages(); p++ {
		if c.Pages[p].Domain != "stanford.edu" || !hasPhrase(p, synth.PhraseMobileNetworking) {
			continue
		}
		seen := map[string]bool{}
		for _, q := range c.Graph.Out(p) {
			d := c.Pages[q].Domain
			if d == "stanford.edu" || !isEdu(d) || seen[d] {
				continue
			}
			seen[d] = true
			want[d] += r.PageRank[p]
		}
	}
	e, _ := New(r, repo.SchemeSNode)
	res, err := e.Run(context.Background(), Q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("engine %d rows, brute force %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		if w, ok := want[row.Key]; !ok || absDiff(w, row.Value) > 1e-9 {
			t.Fatalf("domain %s: engine %f, brute force %f", row.Key, row.Value, w)
		}
	}
}

func TestQ2AgainstBruteForce(t *testing.T) {
	r := getRepo(t)
	c := r.Corpus
	want := map[string]float64{}
	for _, comic := range synth.Comics() {
		c1, c2 := 0, 0
		for p := int32(0); int(p) < c.Graph.NumPages(); p++ {
			if c.Pages[p].Domain != "stanford.edu" {
				continue
			}
			n := 0
			for _, w := range comic.Words {
				for _, term := range c.Pages[p].Terms {
					if term == w {
						n++
						break
					}
				}
			}
			if n >= 2 {
				c1++
			}
			for _, q := range c.Graph.Out(p) {
				if c.Pages[q].Domain == comic.Site {
					c2++
				}
			}
		}
		want[comic.Name] = float64(c1 + c2)
	}
	e, _ := New(r, repo.SchemeSNode)
	res, err := e.Run(context.Background(), Q2)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if want[row.Key] != row.Value {
			t.Fatalf("%s: engine %f, brute force %f", row.Key, row.Value, want[row.Key])
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
