package query

import (
	"context"
	"time"

	"snode/internal/workpool"
)

// Shared returns a copy of the engine marked for concurrent use: its
// queries may run alongside other engines (or goroutines) over the same
// stores. Shared engines never reset the stores' access statistics and
// report wall time only in NavStats — with concurrent streams the
// accountant's bytes cannot be attributed to one query. The S-Node
// representation is safe for this; the baseline schemes are not (see
// store.LinkStore).
func (e *Engine) Shared() *Engine {
	c := *e
	c.shared = true
	return &c
}

// RunParallel executes the given queries across a bounded worker pool
// (workers <= 0 uses GOMAXPROCS) and returns results in input order.
// Every execution uses a shared engine, so the underlying stores must
// be safe for concurrent use. Rows are deterministic — each query sorts
// its output — so results match a serial Run of the same queries; only
// the NavStats differ (wall time only, see Shared).
//
// Cancelling ctx stops dispatch of further queries and interrupts the
// in-flight ones at their next store access; the context's error is
// returned when it cut the batch short. Sampled executions get their
// time spent waiting for a pool worker recorded as a queue_wait_ns
// attribute on the trace root.
func (e *Engine) RunParallel(ctx context.Context, qs []ID, workers int) ([]*Result, error) {
	sh := e.Shared()
	out := make([]*Result, len(qs))
	pool := workpool.New(workers)
	if e.reg != nil {
		// Worker occupancy: how many serving goroutines are mid-query at
		// scrape time, and how many queries the pool has completed.
		pool.Instrument(e.reg.Gauge("workpool_busy"), e.reg.Counter("workpool_queries"))
	}
	batchStart := time.Now()
	err := pool.ForEachCtx(ctx, len(qs), func(ctx context.Context, i int) error {
		wait := time.Since(batchStart)
		r, err := sh.Run(ctx, qs[i])
		if err != nil {
			return err
		}
		if r.Trace != nil {
			// The trace starts inside Run, after the queue wait has
			// already elapsed; attribute it on the root after the fact.
			r.Trace.SetAttr("queue_wait_ns", int64(wait))
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAllParallel executes the six Table 3 queries concurrently.
func (e *Engine) RunAllParallel(ctx context.Context, workers int) ([]*Result, error) {
	return e.RunParallel(ctx, All(), workers)
}
