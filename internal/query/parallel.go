package query

import (
	"snode/internal/workpool"
)

// Shared returns a copy of the engine marked for concurrent use: its
// queries may run alongside other engines (or goroutines) over the same
// stores. Shared engines never reset the stores' access statistics and
// report wall time only in NavStats — with concurrent streams the
// accountant's bytes cannot be attributed to one query. The S-Node
// representation is safe for this; the baseline schemes are not (see
// store.LinkStore).
func (e *Engine) Shared() *Engine {
	c := *e
	c.shared = true
	return &c
}

// RunParallel executes the given queries across a bounded worker pool
// (workers <= 0 uses GOMAXPROCS) and returns results in input order.
// Every execution uses a shared engine, so the underlying stores must
// be safe for concurrent use. Rows are deterministic — each query sorts
// its output — so results match a serial Run of the same queries; only
// the NavStats differ (wall time only, see Shared).
func (e *Engine) RunParallel(qs []ID, workers int) ([]*Result, error) {
	sh := e.Shared()
	out := make([]*Result, len(qs))
	pool := workpool.New(workers)
	if e.reg != nil {
		// Worker occupancy: how many serving goroutines are mid-query at
		// scrape time, and how many queries the pool has completed.
		pool.Instrument(e.reg.Gauge("workpool_busy"), e.reg.Counter("workpool_queries"))
	}
	err := pool.ForEach(len(qs), func(i int) error {
		r, err := sh.Run(qs[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAllParallel executes the six Table 3 queries concurrently.
func (e *Engine) RunAllParallel(workers int) ([]*Result, error) {
	return e.RunParallel(All(), workers)
}
