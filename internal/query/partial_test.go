package query

import (
	"context"
	"math"
	"testing"

	"snode/internal/repo"
	"snode/internal/webgraph"
)

// rowsMatch asserts merged partial rows reproduce a Run's rows. Q1
// values are floating-point PageRank sums whose association order
// differs between a single fold and a per-shard fold, so Q1 compares
// keys exactly and values within tolerance; every other query's values
// are integer counts and must match bit-exactly, order included.
func rowsMatch(t *testing.T, q ID, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("Q%d: %d merged rows, want %d\n got: %v\nwant: %v", q, len(got), len(want), got, want)
	}
	if q == Q1 {
		wantByKey := map[string]float64{}
		for _, r := range want {
			wantByKey[r.Key] = r.Value
		}
		for _, r := range got {
			w, ok := wantByKey[r.Key]
			if !ok {
				t.Fatalf("Q1: merged key %q not in single-node rows", r.Key)
			}
			if math.Abs(r.Value-w) > 1e-9*math.Max(1, math.Abs(w)) {
				t.Fatalf("Q1 %q: merged %v, single-node %v", r.Key, r.Value, w)
			}
		}
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Q%d row %d: merged %+v, single-node %+v", q, i, got[i], want[i])
		}
	}
}

// TestMergePartialsNilOwnerMatchesRun: an engine that owns everything
// must produce one partial whose merge is exactly Run's output — the
// degenerate K=1 "shard".
func TestMergePartialsNilOwnerMatchesRun(t *testing.T) {
	r := getRepo(t)
	e, err := New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range All() {
		want, err := e.Run(context.Background(), q)
		if err != nil {
			t.Fatalf("Run Q%d: %v", q, err)
		}
		part, err := e.RunPartial(context.Background(), q)
		if err != nil {
			t.Fatalf("RunPartial Q%d: %v", q, err)
		}
		got := MergePartials(q, [][]PartialRow{part.Rows})
		rowsMatch(t, q, got, want.Rows)
	}
}

// TestMergePartialsOwnerSplitMatchesRun: two engines over the same
// full repository, each owning half the page-ID space, must merge to
// exactly the single-node rows for all six queries. This pins the
// partial decomposition itself (source-set partitioning + per-class
// merge); internal/shard's golden tests pin it again over genuinely
// partitioned stores.
func TestMergePartialsOwnerSplitMatchesRun(t *testing.T) {
	r := getRepo(t)
	e, err := New(r, repo.SchemeSNode)
	if err != nil {
		t.Fatal(err)
	}
	mid := webgraph.PageID(len(r.Corpus.Pages) / 2)
	lo := e.Shared()
	lo.SetOwner(func(p webgraph.PageID) bool { return p < mid })
	hi := e.Shared()
	hi.SetOwner(func(p webgraph.PageID) bool { return p >= mid })
	for _, q := range All() {
		want, err := e.Run(context.Background(), q)
		if err != nil {
			t.Fatalf("Run Q%d: %v", q, err)
		}
		var parts [][]PartialRow
		for _, sh := range []*Engine{lo, hi} {
			p, err := sh.RunPartial(context.Background(), q)
			if err != nil {
				t.Fatalf("RunPartial Q%d: %v", q, err)
			}
			parts = append(parts, p.Rows)
		}
		got := MergePartials(q, parts)
		rowsMatch(t, q, got, want.Rows)
	}
}
