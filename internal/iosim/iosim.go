// Package iosim provides a deterministic disk-cost model layered under
// every disk-backed graph representation. The paper's query-time results
// (§4.3, Figures 11-12) are driven by 2002-era disk behaviour — seeks
// dominate, transfers are slow, and 325 MB of buffer memory is scarce.
// Modern page-cached NVMe storage hides that cost structure, so each
// store routes its reads through an Accountant that charges a seek for
// every discontiguous access and transfer time per byte. Experiments
// report modeled navigation time (wall-clock CPU time is added by the
// harness), making results hardware-independent and reproducible.
package iosim

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"snode/internal/metrics"
	"snode/internal/trace"
)

// Model describes the simulated disk.
type Model struct {
	// Seek is charged whenever a read is discontiguous with the
	// previous read on the same file (beyond SkipFree).
	Seek time.Duration
	// BytesPerSecond is the sequential transfer rate.
	BytesPerSecond float64
	// SkipFree is the largest forward gap served from the drive's track
	// buffer / OS readahead: a read starting within SkipFree bytes
	// after the previous read's end is charged as a transfer of the
	// gap, not a seek.
	SkipFree int64
}

// Model2002 approximates the paper's testbed storage: a consumer disk
// of the era with ~9 ms average positioning time, ~25 MB/s sustained
// reads, and ~128 KB of effective readahead.
func Model2002() Model {
	return Model{Seek: 9 * time.Millisecond, BytesPerSecond: 25e6, SkipFree: 128 << 10}
}

// Stats is a snapshot of accumulated I/O accounting.
type Stats struct {
	Seeks     int64
	BytesRead int64
	// SkippedBytes counts forward gaps absorbed by readahead; they cost
	// transfer time but no seek.
	SkippedBytes int64
	Reads        int64
	// Stalls and StallNanos account the pacing layer: how many times a
	// reader slept off the pooled paced debt, and the total modeled time
	// actually slept. Zero when pacing is off. They do not feed
	// ModeledTime (which is computed from the access counters); they
	// exist so the serving metrics can show how much real wall time the
	// paced experiments spent stalled.
	Stalls     int64
	StallNanos int64
	// SpillOps and SpillBytes account the external-memory build path:
	// each sorted-run write and merge read-back is one positioning seek
	// plus a sequential transfer of its bytes, charged through Spill.
	// Kept separate from the read counters so serving-path dashboards
	// don't conflate build spill traffic with query I/O.
	SpillOps   int64
	SpillBytes int64
}

// ModeledTime converts the counters to simulated elapsed time under m.
func (s Stats) ModeledTime(m Model) time.Duration {
	t := time.Duration(s.Seeks+s.SpillOps) * m.Seek
	if m.BytesPerSecond > 0 {
		t += time.Duration(float64(s.BytesRead+s.SkippedBytes+s.SpillBytes) / m.BytesPerSecond * float64(time.Second))
	}
	return t
}

// Accountant tracks read patterns across a set of files belonging to
// one representation. It is safe for concurrent use.
type Accountant struct {
	model Model

	// debt accumulates paced stall time (nanoseconds) too small to
	// sleep individually; whichever reader pushes it past paceMinSleep
	// sleeps it off. Avoids thousands of sub-millisecond sleeps for
	// byte-transfer costs while seeks stall their own caller.
	debt atomic.Int64

	// stall accounting (atomics: stall runs without holding mu).
	stalls     atomic.Int64
	stallNanos atomic.Int64

	mu      sync.Mutex
	stats   Stats
	lastEnd map[int]int64 // file id → end offset of last read
	nextID  int
	pace    float64 // >0: readers sleep modeled time × pace
}

// NewAccountant creates an accountant with the given disk model.
func NewAccountant(m Model) *Accountant {
	return &Accountant{model: m, lastEnd: map[int]int64{}}
}

// Model returns the accountant's disk model.
func (a *Accountant) Model() Model { return a.model }

// Stats returns a snapshot of the counters.
func (a *Accountant) Stats() Stats {
	a.mu.Lock()
	s := a.stats
	a.mu.Unlock()
	s.Stalls = a.stalls.Load()
	s.StallNanos = a.stallNanos.Load()
	return s
}

// Reset zeroes the counters (seek positions are retained: the disk arm
// does not move on reset). The paced-stall debt pool is cleared too:
// leftover sub-millisecond debt from before the reset belongs to the
// measurement interval that just closed, and must not be slept off by
// the first reader of the next one.
func (a *Accountant) Reset() {
	a.mu.Lock()
	a.stats = Stats{}
	a.mu.Unlock()
	a.debt.Store(0)
	a.stalls.Store(0)
	a.stallNanos.Store(0)
}

// ModeledTime reports the simulated time for everything since the last
// Reset.
func (a *Accountant) ModeledTime() time.Duration {
	return a.Stats().ModeledTime(a.model)
}

// RegisterMetrics exposes the accountant's counters on a registry under
// the given name prefix (e.g. "iosim_fwd"): seeks, reads, transferred
// and readahead-skipped bytes, the modeled time they imply, and the
// pacing layer's stall count and slept nanoseconds. Values are read at
// snapshot time, so a scrape always reconciles with Stats().
func (a *Accountant) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.CounterFunc(prefix+"_seeks", func() int64 { return a.Stats().Seeks })
	reg.CounterFunc(prefix+"_reads", func() int64 { return a.Stats().Reads })
	reg.CounterFunc(prefix+"_bytes_read", func() int64 { return a.Stats().BytesRead })
	reg.CounterFunc(prefix+"_skipped_bytes", func() int64 { return a.Stats().SkippedBytes })
	reg.CounterFunc(prefix+"_stalls", func() int64 { return a.Stats().Stalls })
	reg.CounterFunc(prefix+"_stall_nanos", func() int64 { return a.Stats().StallNanos })
	reg.CounterFunc(prefix+"_spill_ops", func() int64 { return a.Stats().SpillOps })
	reg.CounterFunc(prefix+"_spill_bytes", func() int64 { return a.Stats().SpillBytes })
	reg.GaugeFunc(prefix+"_modeled_nanos", func() int64 { return int64(a.ModeledTime()) })
}

// SetPace turns the model's cost into real time: while scale > 0,
// every read stalls its calling goroutine for the read's modeled
// duration times scale (1.0 = full modeled time, 0 disables). Each
// goroutine waits out its own reads, so concurrent query streams
// overlap their modeled disk stalls the way they would against a
// queue-depth-rich device — the behaviour the concurrent-throughput
// experiments measure. Pacing never changes the counters.
func (a *Accountant) SetPace(scale float64) {
	a.mu.Lock()
	a.pace = scale
	a.mu.Unlock()
}

// paceMinSleep batches paced stalls: charges below it accumulate in
// debt rather than triggering their own sleep.
const paceMinSleep = int64(time.Millisecond)

// record accounts one read of n bytes at off on the given file and
// returns the paced stall the caller owes (zero when pacing is off)
// plus whether the read was charged a seek (for trace attribution).
func (a *Accountant) record(fileID int, off int64, n int) (time.Duration, bool) {
	a.mu.Lock()
	a.stats.Reads++
	a.stats.BytesRead += int64(n)
	seeked := false
	var skipped int64
	end, ok := a.lastEnd[fileID]
	switch {
	case ok && end == off:
		// Sequential continuation.
	case ok && off > end && off-end <= a.model.SkipFree:
		// Short forward skip: absorbed by readahead.
		skipped = off - end
		a.stats.SkippedBytes += skipped
	default:
		a.stats.Seeks++
		seeked = true
	}
	a.lastEnd[fileID] = off + int64(n)
	var pause time.Duration
	if a.pace > 0 {
		d := time.Duration(0)
		if seeked {
			d += a.model.Seek
		}
		if a.model.BytesPerSecond > 0 {
			d += time.Duration(float64(int64(n)+skipped) / a.model.BytesPerSecond * float64(time.Second))
		}
		pause = time.Duration(float64(d) * a.pace)
	}
	a.mu.Unlock()
	return pause, seeked
}

// stall settles a paced charge: small charges pool in debt, and the
// reader whose charge pushes the pool past paceMinSleep sleeps the
// whole pool. Called without holding a.mu.
func (a *Accountant) stall(d time.Duration) {
	a.stallCtx(context.Background(), d)
}

// stallCtx is stall with trace attribution and cancellation: when the
// calling request is traced and this reader is the one that sleeps off
// the pooled debt, the sleep is recorded as an "iosim.stall" span. Note
// the pooled debt may include other readers' sub-threshold charges —
// the span's pooled_ns attribute is the whole amount slept, which is
// exactly the wall time this request lost to the pacing layer.
//
// A cancellable ctx interrupts the sleep: the unslept remainder of the
// pooled debt is handed back to the pool (the modeled cost was charged
// and some reader must still pay it), and the caller returns promptly.
// Cancellation is NOT surfaced as an error here — a read that already
// happened stays a completed read, so a cancelled decode leader still
// completes its flight with real data instead of poisoning coalesced
// waiters with its own deadline. The waiters and the engine observe
// ctx themselves; this only guarantees none of them is stuck behind a
// multi-millisecond modeled stall when the request is already dead.
func (a *Accountant) stallCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	a.debt.Add(int64(d))
	for {
		cur := a.debt.Load()
		if cur < paceMinSleep {
			return
		}
		if a.debt.CompareAndSwap(cur, 0) {
			traced := trace.Active(ctx)
			var start time.Time
			if traced || ctx.Done() != nil {
				start = time.Now()
			}
			slept := cur
			if done := ctx.Done(); done == nil {
				time.Sleep(time.Duration(cur))
			} else {
				timer := time.NewTimer(time.Duration(cur))
				select {
				case <-timer.C:
				case <-done:
					timer.Stop()
					if slept = int64(time.Since(start)); slept > cur {
						slept = cur
					}
					// Hand the unslept remainder back: the modeled time was
					// charged and the next paced reader owes it.
					a.debt.Add(cur - slept)
				}
			}
			a.stalls.Add(1)
			a.stallNanos.Add(slept)
			if traced {
				trace.RecordSpan(ctx, "iosim.stall", start, time.Since(start),
					trace.Attr{Key: "pooled_ns", Val: slept})
			}
			trace.Add(ctx, trace.CtrStalls, 1)
			trace.Add(ctx, trace.CtrStallNanos, slept)
			return
		}
	}
}

// Scan accounts one modeled contiguous scan of n bytes that begins
// with a positioning seek — the cost shape of the build pipeline's
// repository reads: each partition element or supernode reads a
// contiguous run of the source crawl, then the arm moves elsewhere, so
// no inter-scan position is worth tracking (unlike File reads, Scan
// does not touch lastEnd). Under SetPace the caller stalls for the
// scan's modeled cost, which is how the build-scaling experiment turns
// worker parallelism into real overlapped wall time on any hardware;
// with pacing off, Scan only bumps the counters. A nil Accountant is
// inert, so unmodeled builds pay a single nil check. When ctx carries
// an execution trace the scan records an "iosim.scan" span and feeds
// the per-request I/O counters.
func (a *Accountant) Scan(ctx context.Context, n int64) {
	if a == nil {
		return
	}
	traced := trace.Active(ctx)
	var start time.Time
	if traced {
		start = time.Now()
	}
	a.mu.Lock()
	a.stats.Reads++
	a.stats.Seeks++
	a.stats.BytesRead += n
	var pause time.Duration
	if a.pace > 0 {
		d := a.model.Seek
		if a.model.BytesPerSecond > 0 {
			d += time.Duration(float64(n) / a.model.BytesPerSecond * float64(time.Second))
		}
		pause = time.Duration(float64(d) * a.pace)
	}
	a.mu.Unlock()
	if traced {
		trace.RecordSpan(ctx, "iosim.scan", start, time.Since(start),
			trace.Attr{Key: "bytes", Val: n},
			trace.Attr{Key: "paced_ns", Val: int64(pause)})
		trace.Add(ctx, trace.CtrReads, 1)
		trace.Add(ctx, trace.CtrBytesRead, n)
		trace.Add(ctx, trace.CtrSeeks, 1)
	}
	a.stallCtx(ctx, pause)
}

// Spill accounts one modeled spill transfer of n bytes — a sorted-run
// write or a merge read-back in the external-memory build path. Like
// Scan it is one positioning seek plus a sequential transfer, but it
// lands on the dedicated spill counters so the modeled build cost of
// bounded-heap ingestion is visible separately from query reads. Under
// SetPace the caller stalls for the modeled cost; a nil Accountant is
// inert. A traced ctx records an "iosim.spill" span.
func (a *Accountant) Spill(ctx context.Context, n int64) {
	if a == nil {
		return
	}
	traced := trace.Active(ctx)
	var start time.Time
	if traced {
		start = time.Now()
	}
	a.mu.Lock()
	a.stats.SpillOps++
	a.stats.SpillBytes += n
	var pause time.Duration
	if a.pace > 0 {
		d := a.model.Seek
		if a.model.BytesPerSecond > 0 {
			d += time.Duration(float64(n) / a.model.BytesPerSecond * float64(time.Second))
		}
		pause = time.Duration(float64(d) * a.pace)
	}
	a.mu.Unlock()
	if traced {
		trace.RecordSpan(ctx, "iosim.spill", start, time.Since(start),
			trace.Attr{Key: "bytes", Val: n},
			trace.Attr{Key: "paced_ns", Val: int64(pause)})
	}
	a.stallCtx(ctx, pause)
}

// File wraps an *os.File with accounting. Writes are not modeled (the
// paper measures query time over already-built representations).
type File struct {
	f   *os.File
	acc *Accountant
	id  int
}

// Open opens path read-only under the accountant.
func (a *Accountant) Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("iosim: %w", err)
	}
	a.mu.Lock()
	id := a.nextID
	a.nextID++
	a.mu.Unlock()
	return &File{f: f, acc: a, id: id}, nil
}

// ReadAt reads len(p) bytes at offset off, recording the access (and,
// under SetPace, stalling the caller for its modeled cost).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	return f.ReadAtCtx(context.Background(), p, off)
}

// ReadAtCtx is ReadAt with request-scoped observability: when ctx
// carries an execution trace, the read records an "iosim.read" span
// (bytes, whether a seek was charged, the paced cost) and bumps the
// per-request I/O counters; any paced stall it triggers becomes an
// "iosim.stall" span. Untraced contexts add a nil check and nothing
// else.
func (f *File) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, error) {
	traced := trace.Active(ctx)
	var start time.Time
	if traced {
		start = time.Now()
	}
	n, err := f.f.ReadAt(p, off)
	if n > 0 {
		pause, seeked := f.acc.record(f.id, off, n)
		if traced {
			seek := int64(0)
			if seeked {
				seek = 1
			}
			trace.RecordSpan(ctx, "iosim.read", start, time.Since(start),
				trace.Attr{Key: "bytes", Val: int64(n)},
				trace.Attr{Key: "seek", Val: seek},
				trace.Attr{Key: "paced_ns", Val: int64(pause)})
			trace.Add(ctx, trace.CtrReads, 1)
			trace.Add(ctx, trace.CtrBytesRead, int64(n))
			if seeked {
				trace.Add(ctx, trace.CtrSeeks, 1)
			}
		}
		f.acc.stallCtx(ctx, pause)
	}
	return n, err
}

// Size reports the file's size in bytes.
func (f *File) Size() (int64, error) {
	fi, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Close closes the underlying file.
func (f *File) Close() error { return f.f.Close() }
