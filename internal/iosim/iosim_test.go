package iosim

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func tempFile(t *testing.T, size int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "f.dat")
	if err := os.WriteFile(path, make([]byte, size), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSequentialReadsChargeOneSeek(t *testing.T) {
	acc := NewAccountant(Model2002())
	f, err := acc.Open(tempFile(t, 4096))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1024)
	for i := 0; i < 4; i++ {
		if _, err := f.ReadAt(buf, int64(i*1024)); err != nil {
			t.Fatal(err)
		}
	}
	st := acc.Stats()
	if st.Seeks != 1 {
		t.Fatalf("sequential reads charged %d seeks, want 1", st.Seeks)
	}
	if st.BytesRead != 4096 || st.Reads != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRandomReadsChargeSeeks(t *testing.T) {
	// Disable readahead so every discontiguous read is a seek.
	m := Model2002()
	m.SkipFree = 0
	acc := NewAccountant(m)
	f, err := acc.Open(tempFile(t, 8192))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 128)
	offsets := []int64{4096, 0, 2048, 6000}
	for _, off := range offsets {
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if st := acc.Stats(); st.Seeks != 4 {
		t.Fatalf("random reads charged %d seeks, want 4", st.Seeks)
	}
}

func TestShortForwardSkipUsesReadahead(t *testing.T) {
	m := Model{Seek: 10 * time.Millisecond, BytesPerSecond: 1e6, SkipFree: 1024}
	acc := NewAccountant(m)
	f, err := acc.Open(tempFile(t, 8192))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 100)
	if _, err := f.ReadAt(buf, 0); err != nil { // seek 1
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf, 600); err != nil { // forward gap 500 <= 1024
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf, 4000); err != nil { // gap 3300 > 1024: seek 2
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf, 500); err != nil { // backward: seek 3
		t.Fatal(err)
	}
	st := acc.Stats()
	if st.Seeks != 3 {
		t.Fatalf("seeks = %d, want 3", st.Seeks)
	}
	if st.SkippedBytes != 500 {
		t.Fatalf("skipped = %d, want 500", st.SkippedBytes)
	}
	// Skipped bytes cost transfer time.
	want := 3*m.Seek + time.Duration(float64(st.BytesRead+500)/1e6*float64(time.Second))
	if got := st.ModeledTime(m); got != want {
		t.Fatalf("modeled time %v, want %v", got, want)
	}
}

func TestSeparateFilesSeparateArms(t *testing.T) {
	acc := NewAccountant(Model2002())
	f1, err := acc.Open(tempFile(t, 2048))
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f2, err := acc.Open(tempFile(t, 2048))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	buf := make([]byte, 512)
	// Interleaved but individually sequential per file.
	for i := 0; i < 3; i++ {
		if _, err := f1.ReadAt(buf, int64(i*512)); err != nil {
			t.Fatal(err)
		}
		if _, err := f2.ReadAt(buf, int64(i*512)); err != nil {
			t.Fatal(err)
		}
	}
	if st := acc.Stats(); st.Seeks != 2 {
		t.Fatalf("per-file sequential reads charged %d seeks, want 2", st.Seeks)
	}
}

func TestModeledTime(t *testing.T) {
	m := Model{Seek: 10 * time.Millisecond, BytesPerSecond: 1e6}
	s := Stats{Seeks: 3, BytesRead: 500000}
	got := s.ModeledTime(m)
	want := 30*time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Fatalf("ModeledTime = %v, want %v", got, want)
	}
}

func TestResetKeepsArmPosition(t *testing.T) {
	acc := NewAccountant(Model2002())
	f, err := acc.Open(tempFile(t, 4096))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1024)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	acc.Reset()
	if st := acc.Stats(); st != (Stats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
	// Continuing sequentially must not charge a new seek.
	if _, err := f.ReadAt(buf, 1024); err != nil {
		t.Fatal(err)
	}
	if st := acc.Stats(); st.Seeks != 0 {
		t.Fatalf("sequential continuation after reset charged %d seeks", st.Seeks)
	}
}

func TestOpenMissing(t *testing.T) {
	acc := NewAccountant(Model2002())
	if _, err := acc.Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

func TestSize(t *testing.T) {
	acc := NewAccountant(Model2002())
	f, err := acc.Open(tempFile(t, 12345))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil || sz != 12345 {
		t.Fatalf("Size = %d, %v", sz, err)
	}
}

// TestResetClearsPacedDebt is the regression test for the stall-debt
// leak: sub-millisecond paced charges pool in the debt accumulator, and
// a Reset between benchmark levels must clear the pool — otherwise the
// first reader of the next level sleeps off time that belongs to the
// previous one.
func TestResetClearsPacedDebt(t *testing.T) {
	// A model with no seek cost and a slow-ish transfer rate: one small
	// read charges a paced stall well below paceMinSleep, so it pools as
	// debt instead of sleeping.
	m := Model{Seek: 0, BytesPerSecond: 25e6, SkipFree: 0}
	acc := NewAccountant(m)
	acc.SetPace(1.0)
	f, err := acc.Open(tempFile(t, 4096))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 512) // 512 B / 25 MB/s ≈ 20 µs of debt
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if d := acc.debt.Load(); d <= 0 || d >= paceMinSleep {
		t.Fatalf("setup: debt = %dns, want sub-threshold positive pool", d)
	}
	acc.Reset()
	if d := acc.debt.Load(); d != 0 {
		t.Fatalf("Reset left %dns of paced stall debt; next level's first reader would sleep it off", d)
	}
	if st := acc.Stats(); st != (Stats{}) {
		t.Fatalf("Reset left counters %+v", st)
	}
}

// TestStallAccounting checks that sleeping off pooled debt is counted.
func TestStallAccounting(t *testing.T) {
	m := Model{Seek: 2 * time.Millisecond, BytesPerSecond: 1e9, SkipFree: 0}
	acc := NewAccountant(m)
	acc.SetPace(1.0)
	f, err := acc.Open(tempFile(t, 4096))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 64)
	// Two discontiguous reads: each charges a 2 ms seek, over the 1 ms
	// batching threshold, so each sleeps immediately.
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf, 2048); err != nil {
		t.Fatal(err)
	}
	st := acc.Stats()
	if st.Stalls < 2 {
		t.Fatalf("stalls = %d, want >= 2", st.Stalls)
	}
	if st.StallNanos < int64(3*time.Millisecond) {
		t.Fatalf("stall nanos = %d, want >= 3ms", st.StallNanos)
	}
	acc.Reset()
	if st := acc.Stats(); st.Stalls != 0 || st.StallNanos != 0 {
		t.Fatalf("Reset left stall counters %+v", st)
	}
}
