package iosim

import (
	"context"
	"testing"
	"time"
)

// TestSpillCounters: spill transfers land on the dedicated counters,
// not the read-side ones, and a nil Accountant is inert.
func TestSpillCounters(t *testing.T) {
	acc := NewAccountant(Model2002())
	acc.Spill(context.Background(), 1000)
	acc.Spill(context.Background(), 24)
	st := acc.Stats()
	if st.SpillOps != 2 || st.SpillBytes != 1024 {
		t.Fatalf("spill stats = %+v, want 2 ops / 1024 bytes", st)
	}
	if st.Reads != 0 || st.Seeks != 0 || st.BytesRead != 0 {
		t.Fatalf("spill leaked into read counters: %+v", st)
	}
	var nilAcc *Accountant
	nilAcc.Spill(context.Background(), 1<<20) // must not panic
}

// TestSpillModeledTime: each spill op is one seek plus a sequential
// transfer, added to the same modeled clock as reads.
func TestSpillModeledTime(t *testing.T) {
	m := Model{Seek: 10 * time.Millisecond, BytesPerSecond: 1e6}
	s := Stats{SpillOps: 2, SpillBytes: 500000}
	got := s.ModeledTime(m)
	want := 20*time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Fatalf("ModeledTime = %v, want %v", got, want)
	}
	s.Seeks = 1
	s.BytesRead = 500000
	if got := s.ModeledTime(m); got != want+10*time.Millisecond+500*time.Millisecond {
		t.Fatalf("combined ModeledTime = %v", got)
	}
}
