// Package dbstore implements the paper's relational baseline: adjacency
// lists stored as rows of a database table (the paper used PostgreSQL),
// accessed through a B+tree index and a buffer pool. The engine is
// built from scratch on internal/pager (slotted heap pages + LRU buffer
// pool) and internal/btree; the query path is the classic index probe →
// heap fetch → tuple decode, with all page reads accounted by the iosim
// disk model.
//
// Long adjacency lists are chunked across multiple rows (as a row-store
// would TOAST them); the index key is pageID*256 + chunk, so one range
// scan per page reassembles its list.
package dbstore

import (
	"encoding/binary"
	"fmt"
	"path/filepath"

	"snode/internal/btree"
	"snode/internal/iosim"
	"snode/internal/pager"
	"snode/internal/store"
	"snode/internal/webgraph"
)

const (
	heapFileName  = "db.heap"
	indexFileName = "db.idx"

	// chunkTargets bounds targets per row so rows fit a heap page.
	chunkTargets = 1500
	maxChunks    = 256
)

func indexKey(p webgraph.PageID, chunk int) int64 {
	return int64(p)*maxChunks + int64(chunk)
}

// Build writes the table and index into dir. layout gives the heap row
// order — the table is populated as pages are crawled, so rows for
// nearby page IDs are scattered across heap pages (an unclustered
// table, as the paper's PostgreSQL setup would be). nil means ID order.
func Build(c *webgraph.Corpus, dir string, layout []webgraph.PageID) error {
	hp := pager.Create(filepath.Join(dir, heapFileName))
	heap := newHeapFile(hp)
	ip := pager.Create(filepath.Join(dir, indexFileName))
	idx, err := btree.New(ip)
	if err != nil {
		return err
	}
	g := c.Graph
	if layout == nil {
		layout = make([]webgraph.PageID, g.NumPages())
		for i := range layout {
			layout[i] = webgraph.PageID(i)
		}
	}
	row := make([]byte, 0, 4+4*chunkTargets)
	for _, p := range layout {
		adj := g.Out(p)
		chunk := 0
		for {
			part := adj
			if len(part) > chunkTargets {
				part = adj[:chunkTargets]
			}
			adj = adj[len(part):]
			row = row[:0]
			var scratch [4]byte
			binary.LittleEndian.PutUint32(scratch[:], uint32(p))
			row = append(row, scratch[:]...)
			for _, t := range part {
				binary.LittleEndian.PutUint32(scratch[:], uint32(t))
				row = append(row, scratch[:]...)
			}
			rid, err := heap.insert(row)
			if err != nil {
				return err
			}
			if chunk >= maxChunks {
				return fmt.Errorf("dbstore: page %d needs too many chunks", p)
			}
			if err := idx.Insert(indexKey(p, chunk), ridKey(rid)); err != nil {
				return err
			}
			chunk++
			if len(adj) == 0 {
				break
			}
		}
	}
	if err := hp.Close(); err != nil {
		return err
	}
	return ip.Close()
}

// Rep is an opened relational store.
type Rep struct {
	n       int
	acc     *iosim.Accountant
	hp, ip  *pager.Pager
	heap    *heapFile
	idx     *btree.Tree
	domains store.DomainRanges
	pages   []webgraph.PageMeta
}

// Open prepares the store for querying with the given buffer-pool
// budget (split between index and heap pools, as a database's shared
// buffer cache would hold both).
func Open(c *webgraph.Corpus, dir string, cacheBudget int64, model iosim.Model) (*Rep, error) {
	acc := iosim.NewAccountant(model)
	frames := int(cacheBudget / pager.PageSize)
	if frames < 2 {
		frames = 2
	}
	hp, err := pager.OpenReadOnly(filepath.Join(dir, heapFileName), acc, frames/2)
	if err != nil {
		return nil, err
	}
	ip, err := pager.OpenReadOnly(filepath.Join(dir, indexFileName), acc, frames/2)
	if err != nil {
		hp.Close()
		return nil, err
	}
	idx, err := btree.Open(ip)
	if err != nil {
		hp.Close()
		ip.Close()
		return nil, err
	}
	return &Rep{
		n:       c.Graph.NumPages(),
		acc:     acc,
		hp:      hp,
		ip:      ip,
		heap:    newHeapFile(hp),
		idx:     idx,
		domains: store.NewDomainRanges(c.Pages),
		pages:   c.Pages,
	}, nil
}

// Name implements store.LinkStore.
func (r *Rep) Name() string { return "db" }

// NumPages implements store.LinkStore.
func (r *Rep) NumPages() int { return r.n }

// Out implements store.LinkStore.
func (r *Rep) Out(p webgraph.PageID, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	return r.OutFiltered(p, nil, buf)
}

// OutFiltered implements store.LinkStore: an index range scan over the
// page's chunk keys, a heap fetch per chunk, then tuple decode.
func (r *Rep) OutFiltered(p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	if p < 0 || int(p) >= r.n {
		return buf, fmt.Errorf("dbstore: page %d out of range", p)
	}
	var rids []RID
	err := r.idx.Scan(indexKey(p, 0), indexKey(p+1, 0), func(_, v int64) bool {
		rids = append(rids, ridFromKey(v))
		return true
	})
	if err != nil {
		return buf, err
	}
	for _, rid := range rids {
		row, err := r.heap.get(rid)
		if err != nil {
			return buf, err
		}
		if len(row) < 4 || (len(row)-4)%4 != 0 {
			return buf, fmt.Errorf("dbstore: page %d corrupt row", p)
		}
		if got := webgraph.PageID(binary.LittleEndian.Uint32(row[:4])); got != p {
			return buf, fmt.Errorf("dbstore: rid for page %d holds row of page %d", p, got)
		}
		for k := 4; k < len(row); k += 4 {
			t := webgraph.PageID(binary.LittleEndian.Uint32(row[k:]))
			if store.FilterAccepts(f, t, r.domains, r.domainOf) {
				buf = append(buf, t)
			}
		}
	}
	return buf, nil
}

func (r *Rep) domainOf(p webgraph.PageID) string { return r.pages[p].Domain }

// Stats implements store.LinkStore.
func (r *Rep) Stats() store.AccessStats {
	return store.AccessStats{IO: r.acc.Stats(), GraphsLoaded: r.hp.Loads() + r.ip.Loads()}
}

// ResetStats implements store.LinkStore: counters are zeroed, the
// buffer pool stays warm (matching the other schemes' semantics).
func (r *Rep) ResetStats() {
	r.acc.Reset()
	r.hp.ResetLoads()
	r.ip.ResetLoads()
}

// ResetCache empties both buffer pools and resizes them to the budget.
func (r *Rep) ResetCache(budget int64) {
	frames := int(budget / pager.PageSize)
	if frames < 2 {
		frames = 2
	}
	r.hp.ResetPool(frames / 2)
	r.ip.ResetPool(frames / 2)
	r.acc.Reset()
}

// Close implements store.LinkStore.
func (r *Rep) Close() error {
	err1 := r.hp.Close()
	err2 := r.ip.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// SizeBytes implements store.Sized: heap + index files + domain index.
func (r *Rep) SizeBytes() int64 {
	return (r.hp.NumPages()+r.ip.NumPages())*pager.PageSize + r.domains.SizeBytes()
}
