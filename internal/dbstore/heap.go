package dbstore

import (
	"encoding/binary"
	"fmt"

	"snode/internal/pager"
)

// Slotted heap pages, as in a classic relational storage engine:
//
//	offset 0: uint16 slot count
//	offset 2: uint16 free-space pointer (start of unused region)
//	rows grow from offset 4 upward; the slot array grows from the page
//	end downward, each slot a (uint16 offset, uint16 length) pair.
const heapHeader = 4

// RID identifies a row: heap page number and slot.
type RID struct {
	Page int64
	Slot uint16
}

// ridKey packs a RID into the 8-byte B+tree value.
func ridKey(r RID) int64 { return r.Page<<16 | int64(r.Slot) }

func ridFromKey(v int64) RID {
	return RID{Page: v >> 16, Slot: uint16(v & 0xFFFF)}
}

// heapFile appends rows into slotted pages.
type heapFile struct {
	p       *pager.Pager
	curNo   int64
	curPage []byte
}

// maxRowSize is the largest row a page can hold.
const maxRowSize = pager.PageSize - heapHeader - 4

func newHeapFile(p *pager.Pager) *heapFile {
	return &heapFile{p: p, curNo: -1}
}

func slotCount(pg []byte) int { return int(binary.LittleEndian.Uint16(pg[0:])) }
func freePtr(pg []byte) int   { return int(binary.LittleEndian.Uint16(pg[2:])) }

func slotAt(pg []byte, i int) (off, length int) {
	base := pager.PageSize - 4*(i+1)
	return int(binary.LittleEndian.Uint16(pg[base:])),
		int(binary.LittleEndian.Uint16(pg[base+2:]))
}

// insert appends a row and returns its RID.
func (h *heapFile) insert(row []byte) (RID, error) {
	if len(row) > maxRowSize {
		return RID{}, fmt.Errorf("dbstore: row of %d bytes exceeds page capacity", len(row))
	}
	need := len(row) + 4 // row + slot entry
	if h.curPage == nil || pager.PageSize-4*slotCount(h.curPage)-freePtr(h.curPage) < need {
		no, pg, err := h.p.Alloc()
		if err != nil {
			return RID{}, err
		}
		binary.LittleEndian.PutUint16(pg[2:], heapHeader)
		h.curNo, h.curPage = no, pg
	}
	pg := h.curPage
	ns := slotCount(pg)
	fp := freePtr(pg)
	copy(pg[fp:], row)
	base := pager.PageSize - 4*(ns+1)
	binary.LittleEndian.PutUint16(pg[base:], uint16(fp))
	binary.LittleEndian.PutUint16(pg[base+2:], uint16(len(row)))
	binary.LittleEndian.PutUint16(pg[0:], uint16(ns+1))
	binary.LittleEndian.PutUint16(pg[2:], uint16(fp+len(row)))
	return RID{Page: h.curNo, Slot: uint16(ns)}, nil
}

// get reads the row at rid. The returned slice aliases the buffer-pool
// frame and must be consumed before the next page access.
func (h *heapFile) get(rid RID) ([]byte, error) {
	pg, err := h.p.Page(rid.Page)
	if err != nil {
		return nil, err
	}
	if int(rid.Slot) >= slotCount(pg) {
		return nil, fmt.Errorf("dbstore: rid %v slot out of range", rid)
	}
	off, length := slotAt(pg, int(rid.Slot))
	if off < heapHeader || off+length > pager.PageSize {
		return nil, fmt.Errorf("dbstore: rid %v corrupt slot", rid)
	}
	return pg[off : off+length], nil
}
