package dbstore

import (
	"sort"
	"testing"

	"snode/internal/iosim"
	"snode/internal/pager"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

func buildSmall(t testing.TB) (*webgraph.Corpus, *Rep) {
	t.Helper()
	crawl, err := synth.Generate(synth.DefaultConfig(1500))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(crawl.Corpus, dir, crawl.Order); err != nil {
		t.Fatal(err)
	}
	r, err := Open(crawl.Corpus, dir, 256<<10, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return crawl.Corpus, r
}

func TestRoundTrip(t *testing.T) {
	c, r := buildSmall(t)
	var buf []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p++ {
		var err error
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			t.Fatalf("Out(%d): %v", p, err)
		}
		got := append([]webgraph.PageID(nil), buf...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := c.Graph.Out(p)
		if len(got) != len(want) {
			t.Fatalf("page %d: %d targets, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("page %d mismatch", p)
			}
		}
	}
}

func TestRowChunking(t *testing.T) {
	// A page with more targets than one heap row holds must chunk and
	// reassemble.
	n := chunkTargets*2 + 37
	b := webgraph.NewBuilder(n + 1)
	for i := 1; i <= n; i++ {
		b.AddEdge(0, int32(i))
	}
	pages := make([]webgraph.PageMeta, n+1)
	for i := range pages {
		pages[i] = webgraph.PageMeta{URL: "http://x.com/p", Domain: "x.com"}
	}
	c := &webgraph.Corpus{Graph: b.Build(), Pages: pages}
	dir := t.TempDir()
	if err := Build(c, dir, nil); err != nil {
		t.Fatal(err)
	}
	r, err := Open(c, dir, 1<<20, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Out(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("chunked row returned %d of %d targets", len(got), n)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, q := range got {
		if q != int32(i+1) {
			t.Fatalf("target %d = %d", i, q)
		}
	}
}

func TestRIDPacking(t *testing.T) {
	cases := []RID{
		{Page: 0, Slot: 0},
		{Page: 1, Slot: 65535},
		{Page: 1 << 40, Slot: 7},
	}
	for _, rid := range cases {
		if got := ridFromKey(ridKey(rid)); got != rid {
			t.Fatalf("RID %+v round-trips to %+v", rid, got)
		}
	}
}

func TestHeapInsertGet(t *testing.T) {
	p := pager.Create(t.TempDir() + "/h.dat")
	h := newHeapFile(p)
	var rids []RID
	var rows [][]byte
	for i := 0; i < 5000; i++ {
		row := make([]byte, (i%300)+1)
		for j := range row {
			row[j] = byte(i + j)
		}
		rid, err := h.insert(row)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
		rows = append(rows, row)
	}
	for i, rid := range rids {
		got, err := h.get(rid)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if string(got) != string(rows[i]) {
			t.Fatalf("row %d corrupted", i)
		}
	}
}

func TestHeapRejectsOversizeRow(t *testing.T) {
	p := pager.Create(t.TempDir() + "/h.dat")
	h := newHeapFile(p)
	if _, err := h.insert(make([]byte, maxRowSize+1)); err == nil {
		t.Fatal("oversize row accepted")
	}
}

func TestHeapBadRID(t *testing.T) {
	p := pager.Create(t.TempDir() + "/h.dat")
	h := newHeapFile(p)
	if _, err := h.insert([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.get(RID{Page: 0, Slot: 99}); err == nil {
		t.Fatal("bad slot accepted")
	}
}

func TestBufferPoolAccounting(t *testing.T) {
	_, r := buildSmall(t)
	r.ResetCache(64 << 10)
	var buf []webgraph.PageID
	if _, err := r.Out(10, buf); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.IO.Reads == 0 || st.GraphsLoaded == 0 {
		t.Fatalf("no page reads accounted: %+v", st)
	}
}

func TestFiltered(t *testing.T) {
	c, r := buildSmall(t)
	f := &store.Filter{Domains: map[string]bool{"mit.edu": true}}
	var buf []webgraph.PageID
	for p := int32(0); p < 300; p += 7 {
		var err error
		buf, err = r.OutFiltered(p, f, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range buf {
			if c.Pages[q].Domain != "mit.edu" {
				t.Fatalf("filter leaked %s", c.Pages[q].Domain)
			}
		}
	}
}
