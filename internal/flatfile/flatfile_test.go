package flatfile

import (
	"sort"
	"testing"

	"snode/internal/iosim"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

func buildSmall(t testing.TB, layout []webgraph.PageID) (*webgraph.Corpus, *Rep) {
	t.Helper()
	crawl, err := synth.Generate(synth.DefaultConfig(1500))
	if err != nil {
		t.Fatal(err)
	}
	if layout == nil {
		layout = crawl.Order
	}
	dir := t.TempDir()
	if err := Build(crawl.Corpus, dir, layout); err != nil {
		t.Fatal(err)
	}
	r, err := Open(crawl.Corpus, dir, layout, 64<<10, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return crawl.Corpus, r
}

func TestRoundTripCrawlLayout(t *testing.T) {
	c, r := buildSmall(t, nil)
	var buf []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p++ {
		var err error
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			t.Fatalf("Out(%d): %v", p, err)
		}
		got := append([]webgraph.PageID(nil), buf...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		want := c.Graph.Out(p)
		if len(got) != len(want) {
			t.Fatalf("page %d: %d targets, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("page %d mismatch", p)
			}
		}
	}
}

func TestCrawlLayoutScattersDomainReads(t *testing.T) {
	// The point of crawl-order layout: reading a domain's pages in ID
	// order is NOT sequential on disk.
	c, r := buildSmall(t, nil)
	r.ResetCache(8 << 10) // tiny cache: almost every chunk read hits disk
	var buf []webgraph.PageID
	reads := 0
	for p := int32(0); int(p) < c.Graph.NumPages() && reads < 200; p++ {
		if c.Pages[p].Domain != "stanford.edu" {
			continue
		}
		reads++
		var err error
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	}
	if reads == 0 {
		t.Skip("no stanford pages")
	}
	st := r.Stats()
	if st.IO.Seeks < int64(reads)/4 {
		t.Fatalf("domain scan did only %d seeks for %d pages — layout too clustered",
			st.IO.Seeks, reads)
	}
}

func TestLayoutMismatchDetected(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	if err := Build(crawl.Corpus, t.TempDir(), crawl.Order[:10]); err == nil {
		t.Fatal("short layout accepted")
	}
}

func TestNilLayoutIsIDOrder(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Build(crawl.Corpus, dir, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := Open(crawl.Corpus, dir, nil, 64<<10, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	var buf []webgraph.PageID
	for p := int32(0); p < 100; p++ {
		buf, err = rep.Out(p, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != crawl.Corpus.Graph.OutDegree(p) {
			t.Fatalf("page %d degree mismatch", p)
		}
	}
}

func TestSizeAndStats(t *testing.T) {
	c, r := buildSmall(t, nil)
	if store.BitsPerEdge(r, c.Graph.NumEdges()) < 32 {
		t.Fatal("uncompressed representation suspiciously small")
	}
	r.ResetCache(8 << 10)
	var buf []webgraph.PageID
	if buf, _ = r.Out(0, buf[:0]); r.Stats().IO.Reads == 0 {
		t.Fatal("no reads accounted")
	}
	r.ResetStats()
	if r.Stats().IO.Reads != 0 {
		t.Fatal("stats not reset")
	}
}
