// Package flatfile implements the paper's baseline "uncompressed files"
// representation: adjacency lists stored as raw little-endian int32
// arrays in a single data file, with an in-memory page-ID offset index
// and domain index (§4: "a portion of this space was used to
// permanently hold the domain and page ID indexes in memory"), and a
// chunked LRU read cache standing in for file buffers.
package flatfile

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"snode/internal/iosim"
	"snode/internal/store"
	"snode/internal/webgraph"
)

const chunkSize = 8 << 10

// Build writes the representation into dir (adj.dat). layout gives the
// physical record order — a repository stores adjacency lists in the
// order pages were crawled, NOT in page-ID order, so pages with nearby
// IDs (same domain) are scattered on disk. nil means ID order.
func Build(c *webgraph.Corpus, dir string, layout []webgraph.PageID) error {
	f, err := os.Create(filepath.Join(dir, "adj.dat"))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var scratch [4]byte
	g := c.Graph
	if layout == nil {
		layout = make([]webgraph.PageID, g.NumPages())
		for i := range layout {
			layout[i] = webgraph.PageID(i)
		}
	}
	if len(layout) != g.NumPages() {
		f.Close()
		return fmt.Errorf("flatfile: layout covers %d of %d pages", len(layout), g.NumPages())
	}
	for _, p := range layout {
		adj := g.Out(p)
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(adj)))
		if _, err := bw.Write(scratch[:]); err != nil {
			f.Close()
			return err
		}
		for _, t := range adj {
			binary.LittleEndian.PutUint32(scratch[:], uint32(t))
			if _, err := bw.Write(scratch[:]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Rep is an opened flat-file representation.
type Rep struct {
	n       int
	file    *iosim.File
	acc     *iosim.Accountant
	offsets []int64 // byte offset of each page's record (layout order)
	recLen  []int32 // record length per page
	total   int64   // data file size
	domains store.DomainRanges
	pages   []webgraph.PageMeta

	// chunk cache
	budget  int64
	used    int64
	lru     *list.List
	byChunk map[int64]*list.Element
	loads   int64
}

type chunkEntry struct {
	id   int64
	data []byte
}

// Open maps the representation for querying. The page-ID offset index
// is recomputed from the corpus degrees and layout (equivalently it
// could be stored; either way it is memory-resident, as in the paper).
// layout must match the one passed to Build.
func Open(c *webgraph.Corpus, dir string, layout []webgraph.PageID, cacheBudget int64, model iosim.Model) (*Rep, error) {
	acc := iosim.NewAccountant(model)
	f, err := acc.Open(filepath.Join(dir, "adj.dat"))
	if err != nil {
		return nil, err
	}
	g := c.Graph
	n := g.NumPages()
	if layout == nil {
		layout = make([]webgraph.PageID, n)
		for i := range layout {
			layout[i] = webgraph.PageID(i)
		}
	}
	offsets := make([]int64, n+1)
	var off int64
	for _, p := range layout {
		offsets[p] = off
		off += 4 + 4*int64(g.OutDegree(p))
	}
	offsets[n] = off
	recLen := make([]int32, n)
	for p := 0; p < n; p++ {
		recLen[p] = int32(4 + 4*g.OutDegree(webgraph.PageID(p)))
	}
	return &Rep{
		n:       n,
		file:    f,
		acc:     acc,
		offsets: offsets,
		recLen:  recLen,
		total:   off,
		domains: store.NewDomainRanges(c.Pages),
		pages:   c.Pages,
		budget:  cacheBudget,
		lru:     list.New(),
		byChunk: map[int64]*list.Element{},
	}, nil
}

// Name implements store.LinkStore.
func (r *Rep) Name() string { return "files" }

// NumPages implements store.LinkStore.
func (r *Rep) NumPages() int { return r.n }

// chunk returns the cached chunk containing byte offset off.
func (r *Rep) chunk(id int64) ([]byte, error) {
	if el, ok := r.byChunk[id]; ok {
		r.lru.MoveToFront(el)
		return el.Value.(*chunkEntry).data, nil
	}
	data := make([]byte, chunkSize)
	nRead, err := r.file.ReadAt(data, id*chunkSize)
	if err != nil && err != io.EOF {
		return nil, err
	}
	data = data[:nRead]
	r.loads++
	for r.used+int64(len(data)) > r.budget && r.lru.Len() > 0 {
		back := r.lru.Back()
		e := back.Value.(*chunkEntry)
		r.lru.Remove(back)
		delete(r.byChunk, e.id)
		r.used -= int64(len(e.data))
	}
	el := r.lru.PushFront(&chunkEntry{id: id, data: data})
	r.byChunk[id] = el
	r.used += int64(len(data))
	return data, nil
}

// readAt assembles a read of length n at off from cached chunks.
func (r *Rep) readAt(dst []byte, off int64) error {
	for len(dst) > 0 {
		id := off / chunkSize
		inOff := int(off % chunkSize)
		ch, err := r.chunk(id)
		if err != nil {
			return err
		}
		if inOff >= len(ch) {
			return io.ErrUnexpectedEOF
		}
		n := copy(dst, ch[inOff:])
		dst = dst[n:]
		off += int64(n)
	}
	return nil
}

// Out implements store.LinkStore.
func (r *Rep) Out(p webgraph.PageID, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	return r.OutFiltered(p, nil, buf)
}

// OutFiltered implements store.LinkStore (flat layout: full list read,
// filter applied afterwards).
func (r *Rep) OutFiltered(p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	if p < 0 || int(p) >= r.n {
		return buf, fmt.Errorf("flatfile: page %d out of range", p)
	}
	recLen := int(r.recLen[p])
	rec := make([]byte, recLen)
	if err := r.readAt(rec, r.offsets[p]); err != nil {
		return buf, err
	}
	deg := int(binary.LittleEndian.Uint32(rec[:4]))
	if 4+4*deg != recLen {
		return buf, fmt.Errorf("flatfile: page %d record corrupt", p)
	}
	for k := 0; k < deg; k++ {
		t := webgraph.PageID(binary.LittleEndian.Uint32(rec[4+4*k:]))
		if store.FilterAccepts(f, t, r.domains, r.domainOf) {
			buf = append(buf, t)
		}
	}
	return buf, nil
}

func (r *Rep) domainOf(p webgraph.PageID) string { return r.pages[p].Domain }

// Stats implements store.LinkStore.
func (r *Rep) Stats() store.AccessStats {
	return store.AccessStats{IO: r.acc.Stats(), GraphsLoaded: r.loads}
}

// ResetStats implements store.LinkStore.
func (r *Rep) ResetStats() {
	r.acc.Reset()
	r.loads = 0
}

// ResetCache implements store.CacheResetter.
func (r *Rep) ResetCache(budget int64) {
	r.budget = budget
	r.used = 0
	r.lru.Init()
	r.byChunk = map[int64]*list.Element{}
	r.acc.Reset()
	r.loads = 0
}

// Close implements store.LinkStore.
func (r *Rep) Close() error { return r.file.Close() }

// SizeBytes implements store.Sized: data file plus the in-memory
// offset and domain indexes.
func (r *Rep) SizeBytes() int64 {
	return r.total + 8*int64(len(r.offsets)) + r.domains.SizeBytes()
}
