// Package metrics is the serving path's observability substrate: a
// small, dependency-free registry of counters, gauges, and fixed-bucket
// latency histograms. Every hot-path operation (Counter.Add, Gauge.Set,
// Histogram.Observe) is a handful of atomic operations with zero
// allocations, so the instrumented read path — buffer-manager lookups,
// modeled disk reads, worker dispatch — pays no measurable tax. Named
// instruments are created once (get-or-create under a mutex) and held
// by the instrumented component; snapshots, the text exposition, and
// the JSON dump walk the registry without disturbing writers.
//
// The design follows the instrumentation practice the compressed-graph
// serving literature leans on (Log(Graph), Zuckerli): fine-grained
// access counters validate that a compressed representation stays fast
// under real access patterns, and latency quantiles (p50/p95/p99 from
// fixed histogram buckets) make tail behaviour visible without storing
// per-event samples.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go
// up; use a Gauge for values that move both ways).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets spans 1µs..10s exponentially (factor ~3.2),
// bracketing everything from a cache hit to a fully paced 2002-disk
// query. Values are bucket upper bounds in nanoseconds.
var DefaultLatencyBuckets = []int64{
	int64(1 * time.Microsecond),
	int64(3 * time.Microsecond),
	int64(10 * time.Microsecond),
	int64(30 * time.Microsecond),
	int64(100 * time.Microsecond),
	int64(300 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(3 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(30 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(300 * time.Millisecond),
	int64(1 * time.Second),
	int64(3 * time.Second),
	int64(10 * time.Second),
}

// Histogram counts observations into fixed buckets. Observe is
// allocation-free; quantile estimates come from Snapshot. The last
// implicit bucket is +Inf, so no observation is ever dropped.
//
// Each bucket also carries an exemplar slot: the trace ID of the last
// observation recorded into it through ObserveExemplar. Exemplars link
// the aggregate view to the request-scoped one — "p99 is 40ms" in a
// tail bucket points at a concrete retained trace whose span tree
// explains the latency (internal/trace's slow-query log keeps it).
type Histogram struct {
	bounds    []int64 // sorted upper bounds; immutable after construction
	counts    []atomic.Int64
	exemplars []atomic.Uint64 // last trace ID per bucket; 0 = none
	sum       atomic.Int64
	count     atomic.Int64
}

// NewHistogram builds a histogram over the given sorted bucket upper
// bounds (DefaultLatencyBuckets if nil). Standalone use; instrumented
// code normally obtains one from a Registry.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Int64, len(b)+1),
		exemplars: make([]atomic.Uint64, len(b)+1),
	}
}

// bucketIdx locates v's bucket by binary search: bounds are few and
// fixed, so this is a handful of compares with no allocation.
func (h *Histogram) bucketIdx(v int64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Observe records one value (for latency histograms, nanoseconds).
func (h *Histogram) Observe(v int64) {
	h.counts[h.bucketIdx(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveExemplar is Observe plus an exemplar: when traceID is nonzero
// it is stored in the observation's bucket (last write wins), so the
// bucket can name one concrete request that landed in it. With
// traceID 0 (an unsampled request) it costs the same as Observe.
func (h *Histogram) ObserveExemplar(v int64, traceID uint64) {
	idx := h.bucketIdx(v)
	h.counts[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if traceID != 0 {
		h.exemplars[idx].Store(traceID)
	}
}

// ObserveDuration records a time.Duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// HistSnapshot is a consistent-enough copy of a histogram's state:
// bucket counts are loaded one by one, so a snapshot taken during
// concurrent Observes may be mid-update by a few observations, but
// every counter is a real value that was current during the snapshot.
type HistSnapshot struct {
	Bounds []int64 // bucket upper bounds; Counts has one extra +Inf slot
	Counts []int64
	// Exemplars holds, per bucket, the trace ID of the last exemplar-
	// carrying observation (0 = none) — the aggregate→trace pointer.
	Exemplars []uint64
	Count     int64
	Sum       int64
}

// Snapshot copies the histogram's counters.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds:    h.bounds,
		Counts:    make([]int64, len(h.counts)),
		Exemplars: make([]uint64, len(h.exemplars)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	for i := range h.exemplars {
		s.Exemplars[i] = h.exemplars[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// TailExemplar returns the trace ID in the highest occupied bucket
// that carries one (the p99-side pointer), or 0 when no exemplar has
// been recorded. This is what "pull the trace behind the tail" reads.
func (s HistSnapshot) TailExemplar() (bound int64, traceID uint64) {
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] > 0 && i < len(s.Exemplars) && s.Exemplars[i] != 0 {
			b := int64(0)
			if i < len(s.Bounds) {
				b = s.Bounds[i]
			} else if len(s.Bounds) > 0 {
				b = s.Bounds[len(s.Bounds)-1]
			}
			return b, s.Exemplars[i]
		}
	}
	return 0, 0
}

// Quantile estimates the q-th quantile (0 < q <= 1) as the upper bound
// of the bucket holding the q-th observation (the usual fixed-bucket
// estimate; the +Inf bucket reports the largest finite bound). Returns
// 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	seen := int64(0)
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1] // +Inf bucket: clamp
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// P50, P95, P99 are the quantiles the serving experiments report.
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }
func (s HistSnapshot) P95() int64 { return s.Quantile(0.95) }
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }

// Mean reports the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry holds named instruments. Get-or-create methods are safe for
// concurrent use; the returned instruments are intended to be looked up
// once and cached by the instrumented component.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	counterFuncs map[string]func() int64
	gaugeFuncs   map[string]func() int64
	hists        map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     map[string]*Counter{},
		gauges:       map[string]*Gauge{},
		counterFuncs: map[string]func() int64{},
		gaugeFuncs:   map[string]func() int64{},
		hists:        map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// CounterFunc registers a callback evaluated at snapshot time for a
// monotonic value — the bridge for components that already keep their
// own synchronized counters (the sharded buffer manager, the I/O
// accountant). The last registration for a name wins.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFuncs[name] = fn
}

// GaugeFunc registers a callback evaluated at snapshot time for an
// instantaneous value (bytes resident in the cache, busy workers). The
// last registration for a name wins.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds (DefaultLatencyBuckets if nil) on first use. Bounds are
// fixed by the first caller; later callers get the same histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistSnapshot
}

// Snapshot evaluates every instrument (including gauge funcs) and
// returns the copies. Gauge funcs are called without the registry lock
// held beyond the map walk, so they may themselves read locked state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	cfuncs := make(map[string]func() int64, len(r.counterFuncs))
	for k, v := range r.counterFuncs {
		cfuncs[k] = v
	}
	gfuncs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gfuncs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)+len(cfuncs)),
		Gauges:     make(map[string]int64, len(gauges)+len(gfuncs)),
		Histograms: make(map[string]HistSnapshot, len(hists)),
	}
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, fn := range cfuncs {
		s.Counters[k] = fn()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, fn := range gfuncs {
		s.Gauges[k] = fn()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}
