package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// WriteText renders a snapshot in the Prometheus text exposition style:
// one `# TYPE` comment per family, counters and gauges as bare values,
// histograms as cumulative `_bucket{le=...}` lines plus `_sum`,
// `_count`, and precomputed `{quantile=...}` estimates. Names are
// emitted in sorted order so scrapes diff cleanly.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", k, k, s.Counters[k]); err != nil {
			return err
		}
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", k, k, s.Gauges[k]); err != nil {
			return err
		}
	}

	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", k); err != nil {
			return err
		}
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", float64(h.Bounds[i])/float64(time.Second))
			}
			// OpenMetrics-style exemplar suffix: the retained trace ID of
			// the last request that landed in this bucket.
			ex := ""
			if i < len(h.Exemplars) && h.Exemplars[i] != 0 {
				ex = fmt.Sprintf(" # {trace_id=\"%d\"}", h.Exemplars[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", k, le, cum, ex); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n",
			k, float64(h.Sum)/float64(time.Second), k, h.Count); err != nil {
			return err
		}
		for _, q := range []struct {
			q float64
			v int64
		}{{0.5, h.P50()}, {0.95, h.P95()}, {0.99, h.P99()}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n",
				k, q.q, float64(q.v)/float64(time.Second)); err != nil {
				return err
			}
		}
	}
	return nil
}

// histJSON is the archival form of one histogram (durations in
// nanoseconds, matching the observed values).
type histJSON struct {
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Mean   float64 `json:"mean"`
	P50    int64   `json:"p50"`
	P95    int64   `json:"p95"`
	P99    int64   `json:"p99"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	// Exemplars are per-bucket retained trace IDs (0 = none); omitted
	// when no bucket carries one.
	Exemplars []uint64 `json:"exemplars,omitempty"`
}

// WriteJSON dumps the snapshot as one indented JSON object — the form
// snbench archives next to its CSVs so a benchmark run's full counter
// state travels with its results.
func (s Snapshot) WriteJSON(w io.Writer) error {
	hists := make(map[string]histJSON, len(s.Histograms))
	for k, h := range s.Histograms {
		j := histJSON{
			Count: h.Count, Sum: h.Sum, Mean: h.Mean(),
			P50: h.P50(), P95: h.P95(), P99: h.P99(),
			Bounds: h.Bounds, Counts: h.Counts,
		}
		for _, e := range h.Exemplars {
			if e != 0 {
				j.Exemplars = h.Exemplars
				break
			}
		}
		hists[k] = j
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]int64    `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}{s.Counters, s.Gauges, hists})
}

// Handler returns an http.Handler serving the registry's current state
// as the text exposition (the snserve /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WriteText(w)
	})
}

// JSONHandler returns an http.Handler serving the registry's current
// state as a raw Snapshot in JSON (the /metrics.json endpoint). Unlike
// WriteJSON's archival form, this is the machine-to-machine scrape
// format: every Snapshot field is exported, so the router's federation
// scrape decodes it back into a Snapshot losslessly and merges it.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		_ = enc.Encode(r.Snapshot())
	})
}
