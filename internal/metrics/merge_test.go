package metrics

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHistogramMergeBucketwiseSums(t *testing.T) {
	a, b := NewHistogram(nil), NewHistogram(nil)
	for _, v := range []int64{500, 2_000_000, 40_000_000} { // 1µs / 3ms / 100ms buckets
		a.Observe(v)
	}
	for _, v := range []int64{700, 700, 9_000_000_000} { // 1µs x2, 10s
		b.Observe(v)
	}
	m, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 6 {
		t.Fatalf("merged count = %d, want 6", m.Count)
	}
	if want := int64(500 + 2_000_000 + 40_000_000 + 700 + 700 + 9_000_000_000); m.Sum != want {
		t.Fatalf("merged sum = %d, want %d", m.Sum, want)
	}
	var total int64
	for _, c := range m.Counts {
		total += c
	}
	if total != 6 {
		t.Fatalf("bucket counts sum to %d, want 6", total)
	}
	// The 1µs bucket holds observations from both sides.
	if m.Counts[0] != 3 {
		t.Fatalf("first bucket = %d, want 3", m.Counts[0])
	}
	// Merging must not mutate the inputs.
	if as := a.Snapshot(); as.Count != 3 {
		t.Fatalf("input snapshot mutated: count %d", as.Count)
	}
}

// The merged tail exemplar must be the slowest exemplar-carrying
// request across every input — that is what "show me the trace behind
// the cluster p99" resolves through.
func TestHistogramMergeExemplarRetentionPicksSlowest(t *testing.T) {
	fast, slow := NewHistogram(nil), NewHistogram(nil)
	fast.ObserveExemplar(int64(2*time.Millisecond), 101)
	slow.ObserveExemplar(int64(2*time.Second), 202)

	for _, dir := range []struct {
		name string
		a, b *Histogram
	}{{"fast.Merge(slow)", fast, slow}, {"slow.Merge(fast)", slow, fast}} {
		m, err := dir.a.Snapshot().Merge(dir.b.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if _, id := m.TailExemplar(); id != 202 {
			t.Fatalf("%s: tail exemplar = %d, want the slow side's 202", dir.name, id)
		}
	}

	// Same bucket on both sides: either side's exemplar is acceptable,
	// but one must survive.
	other := NewHistogram(nil)
	other.ObserveExemplar(int64(time.Millisecond), 303)
	m, err := fast.Snapshot().Merge(other.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if _, id := m.TailExemplar(); id == 0 {
		t.Fatal("merge dropped all exemplars")
	}
}

func TestHistogramMergeBoundsMismatchTypedError(t *testing.T) {
	a := NewHistogram([]int64{1, 10, 100})
	b := NewHistogram([]int64{1, 10, 100, 1000})
	a.Observe(5)
	b.Observe(5)
	_, err := a.Snapshot().Merge(b.Snapshot())
	var bm *BoundsMismatchError
	if !errors.As(err, &bm) {
		t.Fatalf("merge error = %v, want *BoundsMismatchError", err)
	}
	if len(bm.A) != 3 || len(bm.B) != 4 {
		t.Fatalf("error bounds = %d vs %d, want 3 vs 4", len(bm.A), len(bm.B))
	}

	// Registry-level merge names the offending metric.
	ra, rb := NewRegistry(), NewRegistry()
	ra.Histogram("h", []int64{1, 10}).Observe(5)
	rb.Histogram("h", []int64{1, 10, 100}).Observe(5)
	_, err = ra.Snapshot().Merge(rb.Snapshot())
	if !errors.As(err, &bm) || bm.Metric != "h" {
		t.Fatalf("registry merge error = %v, want BoundsMismatchError naming h", err)
	}
}

func TestHistogramSubWindowsDeltas(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(int64(time.Millisecond))
	before := h.Snapshot()
	h.Observe(int64(time.Second))
	h.Observe(int64(time.Second))
	after := h.Snapshot()

	d, err := after.Sub(before)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count != 2 || d.Sum != int64(2*time.Second) {
		t.Fatalf("window delta count=%d sum=%d, want 2 and 2s", d.Count, d.Sum)
	}
	if p99 := d.P99(); p99 < int64(time.Second) {
		t.Fatalf("window p99 = %d, still diluted by pre-window traffic", p99)
	}
	// A counter reset (restarted replica) clamps to an empty window.
	z, err := before.Sub(after)
	if err != nil {
		t.Fatal(err)
	}
	if z.Count != 0 || z.Sum != 0 {
		t.Fatalf("reset window = count %d sum %d, want clamped to 0", z.Count, z.Sum)
	}
	if _, err := after.Sub(NewHistogram([]int64{1}).Snapshot()); err == nil {
		t.Fatal("Sub accepted mismatched bounds")
	}
}

func TestSnapshotMergeSumsAndCarriesDisjoint(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("shared").Add(3)
	b.Counter("shared").Add(4)
	a.Counter("only_a").Add(1)
	b.Counter("only_b").Add(2)
	a.Gauge("g").Set(10)
	b.Gauge("g").Set(5)
	a.Histogram("lat", nil).Observe(100)
	b.Histogram("lat", nil).Observe(200)

	m, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["shared"] != 7 || m.Counters["only_a"] != 1 || m.Counters["only_b"] != 2 {
		t.Fatalf("merged counters = %v", m.Counters)
	}
	if m.Gauges["g"] != 15 {
		t.Fatalf("merged gauge = %d, want 15", m.Gauges["g"])
	}
	if m.Histograms["lat"].Count != 2 {
		t.Fatalf("merged histogram count = %d, want 2", m.Histograms["lat"].Count)
	}

	all, err := MergeAll(a.Snapshot(), b.Snapshot(), Snapshot{})
	if err != nil {
		t.Fatal(err)
	}
	if all.Counters["shared"] != 7 {
		t.Fatalf("MergeAll counters = %v", all.Counters)
	}
}

// The federation wire format: a /metrics.json scrape must decode back
// into a Snapshot that merges exactly like the in-process original.
func TestJSONHandlerRoundTripsSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(9)
	r.Gauge("busy").Set(2)
	r.Histogram("lat", nil).ObserveExemplar(int64(50*time.Millisecond), 77)

	rec := httptest.NewRecorder()
	r.JSONHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Counters["reqs"] != 9 || got.Gauges["busy"] != 2 {
		t.Fatalf("round-trip lost counters/gauges: %v %v", got.Counters, got.Gauges)
	}
	h := got.Histograms["lat"]
	if h.Count != 1 || h.Sum != int64(50*time.Millisecond) {
		t.Fatalf("round-trip lost histogram: %+v", h)
	}
	if _, id := h.TailExemplar(); id != 77 {
		t.Fatalf("round-trip lost exemplar: %d", id)
	}
	if _, err := got.Histograms["lat"].Merge(r.Snapshot().Histograms["lat"]); err != nil {
		t.Fatalf("round-tripped snapshot no longer merges: %v", err)
	}
}
