package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-100) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	r.CounterFunc("cf", func() int64 { return 42 })
	r.GaugeFunc("gf", func() int64 { return -9 })
	s := r.Snapshot()
	if s.Counters["cf"] != 42 || s.Gauges["gf"] != -9 || s.Counters["c"] != 5 || s.Gauges["g"] != 4 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	// 100 observations at ~2ms, 5 at ~200ms: p50 lands in the 3ms
	// bucket, p99 in the 300ms bucket.
	for i := 0; i < 100; i++ {
		h.ObserveDuration(2 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		h.ObserveDuration(200 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 105 {
		t.Fatalf("count = %d, want 105", s.Count)
	}
	if got := time.Duration(s.P50()); got != 3*time.Millisecond {
		t.Errorf("p50 = %v, want 3ms", got)
	}
	if got := time.Duration(s.P99()); got != 300*time.Millisecond {
		t.Errorf("p99 = %v, want 300ms", got)
	}
	if m := s.Mean(); m < float64(2*time.Millisecond) || m > float64(30*time.Millisecond) {
		t.Errorf("mean = %v ns, outside plausible range", m)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Snapshot().P95(); got != 0 {
		t.Fatalf("empty p95 = %d, want 0", got)
	}
	h.ObserveDuration(time.Hour) // beyond the last bound: +Inf bucket
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if got := time.Duration(s.P50()); got != 10*time.Second {
		t.Fatalf("overflow p50 = %v, want clamp to largest bound 10s", got)
	}
}

// TestHistogramSnapshotRace hammers one histogram from concurrent
// observers while other goroutines snapshot it and the registry — the
// regression the race detector gates: snapshots must never tear or
// race with Observe.
func TestHistogramSnapshotRace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	const writers, snapshots = 8, 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(int64(i%1000) * int64(time.Microsecond))
				r.Counter("ops").Inc()
				r.Gauge("busy").Set(int64(w))
			}
		}(w)
	}
	for s := 0; s < snapshots; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				snap := r.Snapshot()
				hs := snap.Histograms["lat"]
				var sum int64
				for _, c := range hs.Counts {
					sum += c
				}
				// Counts are loaded individually, so the bucket total may
				// trail Count by in-flight observations — but never exceed
				// what was ever observed, and quantiles must not panic.
				_ = hs.P99()
				if sum < 0 {
					t.Errorf("negative bucket total %d", sum)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	s := r.Snapshot().Histograms["lat"]
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("quiesced bucket total %d != count %d", sum, s.Count)
	}
}

func TestWriteTextAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("snode_cache_hits").Add(3)
	r.Gauge("snode_cache_bytes").Set(1024)
	r.Histogram("query_latency_q1", nil).ObserveDuration(2 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE snode_cache_hits counter\nsnode_cache_hits 3",
		"# TYPE snode_cache_bytes gauge\nsnode_cache_bytes 1024",
		"# TYPE query_latency_q1 histogram",
		`query_latency_q1_count 1`,
		`query_latency_q1{quantile="0.5"}`,
		`query_latency_q1_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text exposition missing %q in:\n%s", want, out)
		}
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "snode_cache_hits 3") {
		t.Fatalf("handler: code=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("iosim_seeks").Add(9)
	r.Histogram("query_latency_q2", nil).ObserveDuration(5 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
			P50   int64 `json:"p50"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if parsed.Counters["iosim_seeks"] != 9 {
		t.Errorf("iosim_seeks = %d, want 9", parsed.Counters["iosim_seeks"])
	}
	h := parsed.Histograms["query_latency_q2"]
	if h.Count != 1 || h.P50 <= 0 {
		t.Errorf("histogram = %+v", h)
	}
}
