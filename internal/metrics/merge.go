package metrics

import "fmt"

// Snapshot merging is the fleet-federation substrate: the router
// scrapes every shard replica's registry as a Snapshot (the
// /metrics.json wire form — every field is exported, so a snapshot
// JSON round-trips losslessly) and folds them into per-shard and
// cluster-wide aggregates with Merge. Counters and gauges sum;
// histograms merge bucket-wise, which is exact because every replica
// builds its latency histograms over the same fixed bounds
// (DefaultLatencyBuckets). A replica with differently-shaped buckets
// cannot be merged meaningfully, so that case is a typed error, not a
// silent approximation.

// BoundsMismatchError reports a histogram merge/subtract between
// snapshots whose bucket bounds differ — different builds or configs
// on the two sides.
type BoundsMismatchError struct {
	// Metric is the histogram's registry name ("" when merging bare
	// HistSnapshots).
	Metric string
	// A and B are the two sides' bucket upper bounds.
	A, B []int64
}

func (e *BoundsMismatchError) Error() string {
	name := e.Metric
	if name == "" {
		name = "histogram"
	}
	return fmt.Sprintf("metrics: %s: bucket bounds mismatch (%d vs %d buckets)", name, len(e.A), len(e.B))
}

// sameBounds reports whether two bound slices are identical.
func sameBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge returns the bucket-wise sum of two histogram snapshots. Per
// bucket the receiver's exemplar is kept unless it has none — each
// bucket still names one real request that landed in it — and the
// merged snapshot's TailExemplar therefore points into the highest
// occupied bucket across both sides: the slowest request either side
// has an exemplar for.
func (s HistSnapshot) Merge(o HistSnapshot) (HistSnapshot, error) {
	if o.Count == 0 && len(o.Counts) == 0 {
		return s.clone(), nil
	}
	if s.Count == 0 && len(s.Counts) == 0 {
		return o.clone(), nil
	}
	if !sameBounds(s.Bounds, o.Bounds) {
		return HistSnapshot{}, &BoundsMismatchError{A: s.Bounds, B: o.Bounds}
	}
	out := s.clone()
	for i := range o.Counts {
		out.Counts[i] += o.Counts[i]
	}
	for i := range o.Exemplars {
		if out.Exemplars[i] == 0 {
			out.Exemplars[i] = o.Exemplars[i]
		}
	}
	out.Count += o.Count
	out.Sum += o.Sum
	return out, nil
}

// Sub returns the bucket-wise difference s - o: the observations made
// since o was taken. This is what windowed SLO math runs on — two
// cumulative snapshots of the same histogram bracket a window, and the
// difference is that window's latency distribution. Bucket counts are
// clamped at zero (a restarted replica's counters moved backwards;
// treating that as an empty window beats reporting negative traffic).
// Exemplars keep the newer side's values.
func (s HistSnapshot) Sub(o HistSnapshot) (HistSnapshot, error) {
	if o.Count == 0 && len(o.Counts) == 0 {
		return s.clone(), nil
	}
	if !sameBounds(s.Bounds, o.Bounds) {
		return HistSnapshot{}, &BoundsMismatchError{A: s.Bounds, B: o.Bounds}
	}
	out := s.clone()
	for i := range o.Counts {
		out.Counts[i] -= o.Counts[i]
		if out.Counts[i] < 0 {
			out.Counts[i] = 0
		}
	}
	out.Count -= o.Count
	out.Sum -= o.Sum
	if out.Count < 0 {
		out.Count = 0
	}
	if out.Sum < 0 {
		out.Sum = 0
	}
	return out, nil
}

func (s HistSnapshot) clone() HistSnapshot {
	out := HistSnapshot{
		Bounds:    append([]int64(nil), s.Bounds...),
		Counts:    append([]int64(nil), s.Counts...),
		Exemplars: append([]uint64(nil), s.Exemplars...),
		Count:     s.Count,
		Sum:       s.Sum,
	}
	return out
}

// Merge folds another registry snapshot into this one: counters and
// gauges sum by name, histograms merge bucket-wise, and instruments
// present on only one side carry over unchanged. The receiver is not
// modified. The first histogram whose bounds disagree aborts the merge
// with a BoundsMismatchError naming the metric.
func (s Snapshot) Merge(o Snapshot) (Snapshot, error) {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v.clone()
	}
	for k, v := range o.Histograms {
		prev, ok := out.Histograms[k]
		if !ok {
			out.Histograms[k] = v.clone()
			continue
		}
		m, err := prev.Merge(v)
		if err != nil {
			if bm, ok := err.(*BoundsMismatchError); ok {
				bm.Metric = k
			}
			return Snapshot{}, err
		}
		out.Histograms[k] = m
	}
	return out, nil
}

// MergeAll folds any number of snapshots into one cluster-wide view.
// With no inputs it returns an empty (non-nil-mapped) snapshot.
func MergeAll(snaps ...Snapshot) (Snapshot, error) {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	var err error
	for _, s := range snaps {
		out, err = out.Merge(s)
		if err != nil {
			return Snapshot{}, err
		}
	}
	return out, nil
}
