// Package bitio provides MSB-first bit-level readers and writers over
// in-memory byte buffers. It is the foundation for every compressed
// encoding in this repository (Elias codes, Huffman codes, RLE bit
// vectors, reference-encoded adjacency lists).
//
// Both Writer and Reader operate most-significant-bit first, so that a
// value written with WriteBits(v, n) occupies the same bit positions a
// human would write reading left to right. The zero value of Writer is
// an empty stream ready for use.
package bitio

import (
	"errors"
	"fmt"
)

// ErrOverrun is returned by Reader methods when a read extends past the
// end of the underlying stream.
var ErrOverrun = errors.New("bitio: read past end of stream")

// Writer accumulates bits into an in-memory buffer. The zero value is
// ready to use.
type Writer struct {
	buf  []byte
	cur  byte // partially filled byte
	nCur uint // number of bits currently in cur (0..7)
}

// NewWriter returns a Writer whose internal buffer has the given initial
// capacity in bytes.
func NewWriter(capBytes int) *Writer {
	return &Writer{buf: make([]byte, 0, capBytes)}
}

// Reset truncates the writer to an empty stream, retaining its buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.nCur = 0
}

// WriteBit appends a single bit (any non-zero b writes 1).
func (w *Writer) WriteBit(b uint) {
	w.cur <<= 1
	if b != 0 {
		w.cur |= 1
	}
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur = 0
		w.nCur = 0
	}
}

// WriteBool appends a single bit from a bool.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
}

// WriteBits appends the n low-order bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d > 64", n))
	}
	// Fast path: fill the current byte, then write whole bytes.
	for n > 0 {
		free := 8 - w.nCur
		take := n
		if take > free {
			take = free
		}
		chunk := byte(v >> (n - take))
		// Keep only the low `take` bits of chunk.
		chunk &= byte(1<<take) - 1
		w.cur = w.cur<<take | chunk
		w.nCur += take
		n -= take
		if w.nCur == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur = 0
			w.nCur = 0
		}
	}
}

// WriteUnary appends v in unary: v zero bits followed by a one bit.
func (w *Writer) WriteUnary(v uint64) {
	for v >= 8 {
		// Append a zero-filled byte worth of zeros quickly when aligned.
		if w.nCur == 0 {
			w.buf = append(w.buf, 0)
			v -= 8
			continue
		}
		w.WriteBit(0)
		v--
	}
	for ; v > 0; v-- {
		w.WriteBit(0)
	}
	w.WriteBit(1)
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nCur)
}

// Bytes returns the written stream padded with zero bits to a byte
// boundary. The returned slice aliases the writer's buffer only when the
// stream happens to be byte-aligned; callers must not retain it across
// further writes.
func (w *Writer) Bytes() []byte {
	if w.nCur == 0 {
		return w.buf
	}
	out := make([]byte, len(w.buf)+1)
	copy(out, w.buf)
	out[len(w.buf)] = w.cur << (8 - w.nCur)
	return out
}

// AppendTo appends the padded stream to dst and returns the extended
// slice, avoiding an intermediate allocation in Bytes.
func (w *Writer) AppendTo(dst []byte) []byte {
	dst = append(dst, w.buf...)
	if w.nCur != 0 {
		dst = append(dst, w.cur<<(8-w.nCur))
	}
	return dst
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // bit position from start
	n   int // total bits available
}

// NewReader returns a Reader over buf. nBits limits the stream length in
// bits; pass len(buf)*8 (or use NewByteReader) when the whole slice is
// valid.
func NewReader(buf []byte, nBits int) *Reader {
	if nBits > len(buf)*8 {
		panic("bitio: nBits exceeds buffer")
	}
	return &Reader{buf: buf, n: nBits}
}

// NewByteReader returns a Reader over the whole of buf.
func NewByteReader(buf []byte) *Reader {
	return &Reader{buf: buf, n: len(buf) * 8}
}

// Reset repositions the reader over a new buffer.
func (r *Reader) Reset(buf []byte, nBits int) {
	r.buf = buf
	r.pos = 0
	r.n = nBits
}

// Pos reports the current bit offset from the start of the stream.
func (r *Reader) Pos() int { return r.pos }

// Remaining reports the number of unread bits.
func (r *Reader) Remaining() int { return r.n - r.pos }

// Seek positions the reader at an absolute bit offset.
func (r *Reader) Seek(bitPos int) error {
	if bitPos < 0 || bitPos > r.n {
		return ErrOverrun
	}
	r.pos = bitPos
	return nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= r.n {
		return 0, ErrOverrun
	}
	b := r.buf[r.pos>>3] >> (7 - uint(r.pos&7)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBool reads a single bit as a bool.
func (r *Reader) ReadBool() (bool, error) {
	b, err := r.ReadBit()
	return b != 0, err
}

// ReadBits reads n bits (n in [0,64]) and returns them as the low-order
// bits of the result.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits n=%d > 64", n))
	}
	if r.pos+int(n) > r.n {
		return 0, ErrOverrun
	}
	var v uint64
	rem := n
	for rem > 0 {
		byteIdx := r.pos >> 3
		bitOff := uint(r.pos & 7)
		avail := 8 - bitOff
		take := rem
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[byteIdx]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.pos += int(take)
		rem -= take
	}
	return v, nil
}

// ReadUnary reads a unary-coded value: the count of zero bits before the
// next one bit.
func (r *Reader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		if r.pos >= r.n {
			return 0, ErrOverrun
		}
		// Fast path: scan a whole byte of zeros at once when aligned.
		if r.pos&7 == 0 && r.pos+8 <= r.n && r.buf[r.pos>>3] == 0 {
			v += 8
			r.pos += 8
			continue
		}
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			return v, nil
		}
		v++
	}
}
