package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(4)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if got := w.BitLen(); got != len(pattern) {
		t.Fatalf("BitLen = %d, want %d", got, len(pattern))
	}
	r := NewReader(w.Bytes(), w.BitLen())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if _, err := r.ReadBit(); err != ErrOverrun {
		t.Fatalf("expected ErrOverrun past end, got %v", err)
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	type item struct {
		v uint64
		n uint
	}
	items := []item{
		{0, 1}, {1, 1}, {5, 3}, {255, 8}, {256, 9},
		{0xDEADBEEF, 32}, {1<<64 - 1, 64}, {0, 0}, {42, 13},
	}
	w := NewWriter(0)
	for _, it := range items {
		w.WriteBits(it.v, it.n)
	}
	r := NewReader(w.Bytes(), w.BitLen())
	for i, it := range items {
		got, err := r.ReadBits(it.n)
		if err != nil {
			t.Fatalf("ReadBits item %d: %v", i, err)
		}
		if got != it.v {
			t.Fatalf("item %d: got %d, want %d", i, got, it.v)
		}
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 100, 1000}
	w := NewWriter(0)
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes(), w.BitLen())
	for i, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("ReadUnary %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("unary %d: got %d, want %d", i, got, want)
		}
	}
}

func TestUnaryAtBoundary(t *testing.T) {
	// A unary value whose terminating 1 is the very last bit must decode.
	w := NewWriter(0)
	w.WriteUnary(23)
	r := NewReader(w.Bytes(), w.BitLen())
	got, err := r.ReadUnary()
	if err != nil || got != 23 {
		t.Fatalf("got %d, %v; want 23, nil", got, err)
	}
	// A run of zeros with no terminator must error, not loop.
	r2 := NewReader([]byte{0, 0}, 16)
	if _, err := r2.ReadUnary(); err != ErrOverrun {
		t.Fatalf("expected ErrOverrun, got %v", err)
	}
}

func TestMixedInterleaving(t *testing.T) {
	w := NewWriter(0)
	w.WriteBit(1)
	w.WriteBits(0x2A, 7)
	w.WriteUnary(5)
	w.WriteBool(true)
	w.WriteBits(0x1234, 16)

	r := NewReader(w.Bytes(), w.BitLen())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("first bit")
	}
	if v, _ := r.ReadBits(7); v != 0x2A {
		t.Fatalf("bits7 = %x", v)
	}
	if u, _ := r.ReadUnary(); u != 5 {
		t.Fatalf("unary = %d", u)
	}
	if b, _ := r.ReadBool(); !b {
		t.Fatal("bool")
	}
	if v, _ := r.ReadBits(16); v != 0x1234 {
		t.Fatalf("bits16 = %x", v)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestSeekAndPos(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0x00, 8)
	w.WriteBits(0xAA, 8)
	r := NewReader(w.Bytes(), w.BitLen())
	if err := r.Seek(16); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.ReadBits(8); v != 0xAA {
		t.Fatalf("after seek got %x", v)
	}
	if err := r.Seek(25); err != ErrOverrun {
		t.Fatalf("seek past end: %v", err)
	}
	if err := r.Seek(-1); err != ErrOverrun {
		t.Fatalf("seek negative: %v", err)
	}
}

func TestAppendToMatchesBytes(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xABC, 12)
	got := w.AppendTo([]byte{0x99})
	want := append([]byte{0x99}, w.Bytes()...)
	if len(got) != len(want) {
		t.Fatalf("len mismatch %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d: %x vs %x", i, got[i], want[i])
		}
	}
}

func TestResetWriter(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatalf("BitLen after reset = %d", w.BitLen())
	}
	w.WriteBit(1)
	r := NewReader(w.Bytes(), w.BitLen())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("write after reset lost")
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickWriteBitsRoundTrip(t *testing.T) {
	f := func(vals []uint64, widthsSeed int64) bool {
		rng := rand.New(rand.NewSource(widthsSeed))
		w := NewWriter(0)
		widths := make([]uint, len(vals))
		masked := make([]uint64, len(vals))
		for i, v := range vals {
			n := uint(rng.Intn(64) + 1)
			widths[i] = n
			if n < 64 {
				masked[i] = v & (1<<n - 1)
			} else {
				masked[i] = v
			}
			w.WriteBits(masked[i], n)
		}
		r := NewReader(w.Bytes(), w.BitLen())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != masked[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: unary round-trips for small values.
func TestQuickUnaryRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		w := NewWriter(0)
		for _, v := range raw {
			w.WriteUnary(uint64(v % 2048))
		}
		r := NewReader(w.Bytes(), w.BitLen())
		for _, v := range raw {
			got, err := r.ReadUnary()
			if err != nil || got != uint64(v%2048) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.BitLen() > 1<<19 {
			w.Reset()
		}
		w.WriteBits(uint64(i), uint(i%64)+1)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for i := 0; i < 4096; i++ {
		w.WriteBits(uint64(i), 13)
	}
	buf := w.Bytes()
	n := w.BitLen()
	r := NewReader(buf, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 13 {
			r.Reset(buf, n)
		}
		if _, err := r.ReadBits(13); err != nil {
			b.Fatal(err)
		}
	}
}
