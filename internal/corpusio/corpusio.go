// Package corpusio serializes crawls (corpus + crawl order) to disk so
// the command-line tools can pass them between generation (sngen),
// representation building (snbuild), and querying (snquery).
//
// Format: uvarint page count; per page: URL, domain, term list
// (length-prefixed strings), gap-coded adjacency; then the crawl order.
package corpusio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"snode/internal/synth"
	"snode/internal/webgraph"
)

// Write serializes a crawl to path.
func Write(c *synth.Crawl, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	cw := &countingWriter{w: w}
	g := c.Corpus.Graph
	n := g.NumPages()
	cw.uvarint(uint64(n))
	for pid := 0; pid < n; pid++ {
		pm := c.Corpus.Pages[pid]
		cw.str(pm.URL)
		cw.str(pm.Domain)
		cw.uvarint(uint64(len(pm.Terms)))
		for _, t := range pm.Terms {
			cw.str(t)
		}
		adj := g.Out(int32(pid))
		cw.uvarint(uint64(len(adj)))
		prev := int64(-1)
		for _, t := range adj {
			cw.uvarint(uint64(int64(t) - prev))
			prev = int64(t)
		}
	}
	for _, pid := range c.Order {
		cw.uvarint(uint64(pid))
	}
	if cw.err != nil {
		f.Close()
		return cw.err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read loads a crawl written by Write.
func Read(path string) (*synth.Crawl, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := &countingReader{r: bufio.NewReaderSize(f, 1<<20)}
	n := int(r.uvarint())
	if r.err != nil {
		return nil, fmt.Errorf("corpusio: %w", r.err)
	}
	if n <= 0 || n > 1<<30 {
		return nil, fmt.Errorf("corpusio: implausible page count %d", n)
	}
	pages := make([]webgraph.PageMeta, n)
	b := webgraph.NewBuilder(n)
	for pid := 0; pid < n; pid++ {
		pages[pid].URL = r.str()
		pages[pid].Domain = r.str()
		nt := int(r.uvarint())
		if r.err != nil {
			return nil, fmt.Errorf("corpusio: page %d: %w", pid, r.err)
		}
		if nt < 0 || nt > 1<<16 {
			return nil, fmt.Errorf("corpusio: page %d: implausible term count %d", pid, nt)
		}
		terms := make([]string, nt)
		for i := range terms {
			terms[i] = r.str()
		}
		pages[pid].Terms = terms
		deg := int(r.uvarint())
		if deg < 0 || deg > n {
			return nil, fmt.Errorf("corpusio: page %d: implausible degree %d", pid, deg)
		}
		prev := int64(-1)
		for i := 0; i < deg; i++ {
			gap := r.uvarint()
			prev += int64(gap)
			if r.err != nil {
				return nil, fmt.Errorf("corpusio: page %d adjacency: %w", pid, r.err)
			}
			if prev < 0 || prev >= int64(n) {
				return nil, fmt.Errorf("corpusio: page %d links to out-of-range page %d", pid, prev)
			}
			b.AddEdge(int32(pid), int32(prev))
		}
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(r.uvarint())
	}
	if r.err != nil {
		return nil, fmt.Errorf("corpusio: order: %w", r.err)
	}
	crawl := &synth.Crawl{
		Corpus: &webgraph.Corpus{Graph: b.Build(), Pages: pages},
		Order:  order,
	}
	if err := crawl.Corpus.Validate(); err != nil {
		return nil, err
	}
	return crawl, nil
}

type countingWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (cw *countingWriter) uvarint(v uint64) {
	if cw.err != nil {
		return
	}
	n := binary.PutUvarint(cw.buf[:], v)
	_, cw.err = cw.w.Write(cw.buf[:n])
}

func (cw *countingWriter) str(s string) {
	cw.uvarint(uint64(len(s)))
	if cw.err != nil {
		return
	}
	_, cw.err = cw.w.WriteString(s)
}

type countingReader struct {
	r   *bufio.Reader
	err error
}

func (cr *countingReader) uvarint() uint64 {
	if cr.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(cr.r)
	cr.err = err
	return v
}

func (cr *countingReader) str() string {
	n := cr.uvarint()
	if cr.err != nil {
		return ""
	}
	if n > 1<<20 {
		cr.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	b := make([]byte, n)
	_, cr.err = io.ReadFull(cr.r, b)
	return string(b)
}
