package corpusio

import (
	"os"
	"path/filepath"
	"testing"

	"snode/internal/synth"
)

func TestWriteReadRoundTrip(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(1200))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.bin")
	if err := Write(crawl, path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Corpus.Graph.Equal(crawl.Corpus.Graph) {
		t.Fatal("graph differs after round trip")
	}
	for i := range crawl.Corpus.Pages {
		a, b := crawl.Corpus.Pages[i], got.Corpus.Pages[i]
		if a.URL != b.URL || a.Domain != b.Domain || len(a.Terms) != len(b.Terms) {
			t.Fatalf("page %d metadata differs", i)
		}
		for j := range a.Terms {
			if a.Terms[j] != b.Terms[j] {
				t.Fatalf("page %d term %d differs", i, j)
			}
		}
	}
	for i := range crawl.Order {
		if got.Order[i] != crawl.Order[i] {
			t.Fatalf("crawl order differs at %d", i)
		}
	}
}

func TestReadMissing(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadTruncated(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.bin")
	if err := Write(crawl, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestReadGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.bin")
	if err := os.WriteFile(path, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadBitFlipsNoPanic(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(300))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.bin")
	if err := Write(crawl, path); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(clean); pos += 211 {
		buf := append([]byte(nil), clean...)
		buf[pos] ^= 0xFF
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte flip at %d: panic: %v", pos, r)
				}
			}()
			_, _ = Read(path) // error or wrong data: fine; panic: not
		}()
	}
}
