package snode

import (
	"os"
	"path/filepath"
	"testing"

	"snode/internal/iosim"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

// A damaged representation must surface as an error (or, for payload
// bytes whose corruption still decodes, wrong data) — never a panic or
// a runaway allocation.

func buildTinyRep(t *testing.T) (dir string) {
	t.Helper()
	crawl, err := synth.Generate(synth.DefaultConfig(800))
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	if _, err := Build(crawl.Corpus, DefaultConfig(), dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// tryOpenAndRead opens the representation and reads every page,
// recovering from panics (which fail the test).
func tryOpenAndRead(t *testing.T, dir string, tag string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panic: %v", tag, r)
		}
	}()
	rep, err := Open(dir, 1<<20, iosim.Model2002())
	if err != nil {
		return // rejected at open: fine
	}
	defer rep.Close()
	var buf []webgraph.PageID
	for p := 0; p < rep.NumPages(); p++ {
		buf, _ = rep.Out(webgraph.PageID(p), buf[:0]) // errors are fine
	}
}

func corruptCopy(t *testing.T, src string, mutate func(path string)) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mutate(dst)
	return dst
}

func TestCorruptMetaNoPanic(t *testing.T) {
	src := buildTinyRep(t)
	meta, err := os.ReadFile(filepath.Join(src, "meta.bin"))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a spread of byte positions (every ~97th to keep runtime sane).
	for pos := 0; pos < len(meta); pos += 97 {
		pos := pos
		dir := corruptCopy(t, src, func(d string) {
			m := append([]byte(nil), meta...)
			m[pos] ^= 0xFF
			if err := os.WriteFile(filepath.Join(d, "meta.bin"), m, 0o644); err != nil {
				t.Fatal(err)
			}
		})
		tryOpenAndRead(t, dir, "meta byte flip")
	}
}

func TestTruncatedMetaNoPanic(t *testing.T) {
	src := buildTinyRep(t)
	meta, err := os.ReadFile(filepath.Join(src, "meta.bin"))
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []int{0, 1, 2, 3} {
		cut := len(meta) * frac / 4
		dir := corruptCopy(t, src, func(d string) {
			if err := os.WriteFile(filepath.Join(d, "meta.bin"), meta[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
		})
		if _, err := Open(dir, 1<<20, iosim.Model2002()); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCorruptIndexFileNoPanic(t *testing.T) {
	src := buildTinyRep(t)
	data, err := os.ReadFile(filepath.Join(src, "graphs.000"))
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(data); pos += 53 {
		pos := pos
		dir := corruptCopy(t, src, func(d string) {
			g := append([]byte(nil), data...)
			g[pos] ^= 0xFF
			if err := os.WriteFile(filepath.Join(d, "graphs.000"), g, 0o644); err != nil {
				t.Fatal(err)
			}
		})
		tryOpenAndRead(t, dir, "index byte flip")
	}
}

func TestMissingIndexFile(t *testing.T) {
	src := buildTinyRep(t)
	dir := corruptCopy(t, src, func(d string) {
		if err := os.Remove(filepath.Join(d, "graphs.000")); err != nil {
			t.Fatal(err)
		}
	})
	if _, err := Open(dir, 1<<20, iosim.Model2002()); err == nil {
		t.Fatal("missing index file accepted")
	}
}
