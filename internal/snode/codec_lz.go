package snode

import (
	"encoding/binary"
	"fmt"

	"snode/internal/refenc"
)

// lzCodec is an LZ-style ordered-list coder after Grabowski & Bieniecki
// ("Tight and simple Web graph compression"): each sorted adjacency
// list is a common-prefix copy from the immediately preceding list plus
// a literal run of gap residuals. Everything is byte-aligned uvarints —
// decode is a straight-line varint loop with no bit extraction, which
// is the point: it trades a little density against refenc for a much
// cheaper cache-miss decode.
//
// Wire format per list, relative to the previously decoded list `prev`:
//
//	uvarint p        length of the copied prefix (p <= len(prev))
//	uvarint l        number of literal values following the prefix
//	l × uvarint g    gap residuals, g >= 1; value = last + g where
//	                 last is prev[p-1] after the copy, or -1 when p==0
//	                 (so the first literal of an uncopied list encodes
//	                 value+1)
//
// Lists are strictly increasing, so every literal of a prefix-copied
// list exceeds the prefix's last value and gaps are always >= 1; a zero
// gap on the wire is corruption. Decoders validate p against the
// previous list and every accumulated value against the local ID bound
// in the same loop that produces it.
//
// superPos payloads prepend the source IDs as one literal gap run over
// [0, niSize) (count known from the directory), then the target lists.
type lzCodec struct{}

func (lzCodec) ID() uint8    { return codecIDLZ }
func (lzCodec) Name() string { return CodecLZ }

// lzAppendList appends one list given its predecessor.
func lzAppendList(dst []byte, prev, list []int32) []byte {
	p := 0
	for p < len(list) && p < len(prev) && list[p] == prev[p] {
		p++
	}
	dst = binary.AppendUvarint(dst, uint64(p))
	dst = binary.AppendUvarint(dst, uint64(len(list)-p))
	last := int64(-1)
	if p > 0 {
		last = int64(list[p-1])
	}
	for _, v := range list[p:] {
		dst = binary.AppendUvarint(dst, uint64(int64(v)-last))
		last = int64(v)
	}
	return dst
}

// lzAppendRun appends a single sorted list as one literal gap run with
// no prefix copy (used for superPos sources).
func lzAppendRun(dst []byte, list []int32) []byte {
	last := int64(-1)
	for _, v := range list {
		dst = binary.AppendUvarint(dst, uint64(int64(v)-last))
		last = int64(v)
	}
	return dst
}

func lzEncodeLists(dst []byte, lists [][]int32) []byte {
	var prev []int32
	for _, l := range lists {
		dst = lzAppendList(dst, prev, l)
		if len(l) > 0 {
			prev = l
		}
	}
	return dst
}

// lzDecoder decodes lists into one flat arena so a whole payload costs
// O(log(edges)) slice growths instead of one allocation per list.
type lzDecoder struct {
	buf  []byte
	pos  int
	vals []int32
	offs []int32
}

func (d *lzDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("snode/lz: truncated or overlong uvarint at byte %d", d.pos)
	}
	d.pos += n
	return v, nil
}

// run appends n gap-decoded values starting after last, each validated
// against [0, bound).
func (d *lzDecoder) run(n int, last int64, bound int64) error {
	for ; n > 0; n-- {
		g, err := d.uvarint()
		if err != nil {
			return err
		}
		if g == 0 {
			return fmt.Errorf("snode/lz: zero gap at byte %d", d.pos)
		}
		// A hostile gap can make int64(g) negative (g >= 2^63) or wrap
		// last+int64(g) past MaxInt64; both land below zero (the one
		// underflow case, last == -1 with int64(g) == MinInt64, wraps to
		// MaxInt64), so nv < 0 || nv >= bound rejects every corrupt gap.
		nv := last + int64(g)
		if nv < 0 || nv >= bound {
			return fmt.Errorf("snode/lz: gap %d at byte %d escapes [0,%d)", g, d.pos, bound)
		}
		d.vals = append(d.vals, int32(nv))
		last = nv
	}
	return nil
}

// lists decodes numLists lists under bound and returns them as slices of
// the shared arena.
func (d *lzDecoder) lists(numLists int, bound int64) ([][]int32, error) {
	d.offs = append(d.offs, int32(len(d.vals)))
	prevStart, prevLen := 0, 0
	for i := 0; i < numLists; i++ {
		p, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if p > uint64(prevLen) {
			return nil, fmt.Errorf("snode/lz: list %d copies %d of a %d-entry prefix", i, p, prevLen)
		}
		l, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if l > uint64(maxMetaElems) {
			return nil, fmt.Errorf("snode/lz: list %d claims %d values", i, l)
		}
		start := len(d.vals)
		d.vals = append(d.vals, d.vals[prevStart:prevStart+int(p)]...)
		last := int64(-1)
		if p > 0 {
			last = int64(d.vals[start+int(p)-1])
		}
		if err := d.run(int(l), last, bound); err != nil {
			return nil, err
		}
		if len(d.vals) > start {
			prevStart, prevLen = start, len(d.vals)-start
		}
		d.offs = append(d.offs, int32(len(d.vals)))
	}
	out := make([][]int32, numLists)
	for i := range out {
		out[i] = d.vals[d.offs[i]:d.offs[i+1]:d.offs[i+1]]
	}
	return out, nil
}

func (lzCodec) EncodeIntra(dst []byte, lists [][]int32, _ refenc.Options) ([]byte, error) {
	return lzEncodeLists(dst, lists), nil
}

func (lzCodec) DecodeIntra(buf []byte, numLists int) (*decodedIntra, error) {
	d := lzDecoder{buf: buf, vals: make([]int32, 0, len(buf)), offs: make([]int32, 0, numLists+1)}
	lists, err := d.lists(numLists, int64(numLists))
	if err != nil {
		return nil, fmt.Errorf("snode: intranode decode: %w", err)
	}
	return &decodedIntra{lists: lists}, nil
}

func (lzCodec) EncodeSuperPos(dst []byte, srcs []int32, lists [][]int32, niSize, njSize int32, _ refenc.Options) ([]byte, error) {
	if len(srcs) != len(lists) {
		return dst, fmt.Errorf("snode: superPos %d sources but %d lists", len(srcs), len(lists))
	}
	dst = lzAppendRun(dst, srcs)
	return lzEncodeLists(dst, lists), nil
}

func (lzCodec) DecodeSuperPos(buf []byte, numSrcs int, niSize, njSize int32) (*decodedSuperPos, error) {
	d := lzDecoder{buf: buf, vals: make([]int32, 0, len(buf)+numSrcs), offs: make([]int32, 0, numSrcs+1)}
	if err := d.run(numSrcs, -1, int64(niSize)); err != nil {
		return nil, fmt.Errorf("snode: superPos sources: %w", err)
	}
	lists, err := d.lists(numSrcs, int64(njSize))
	if err != nil {
		return nil, fmt.Errorf("snode: superPos lists: %w", err)
	}
	// Slice the sources out of the arena only after list decoding so the
	// arena's final backing array is shared by everything returned.
	return &decodedSuperPos{srcs: d.vals[:numSrcs:numSrcs], lists: lists}, nil
}

func (lzCodec) EncodeSuperNeg(dst []byte, complements [][]int32, njSize int32, _ refenc.Options) ([]byte, error) {
	return lzEncodeLists(dst, complements), nil
}

func (lzCodec) DecodeSuperNeg(buf []byte, numLists int, njSize int32) (*decodedSuperNeg, error) {
	d := lzDecoder{buf: buf, vals: make([]int32, 0, len(buf)), offs: make([]int32, 0, numLists+1)}
	lists, err := d.lists(numLists, int64(njSize))
	if err != nil {
		return nil, fmt.Errorf("snode: superNeg decode: %w", err)
	}
	return &decodedSuperNeg{njSize: njSize, lists: lists}, nil
}
