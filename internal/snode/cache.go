package snode

import "container/list"

// decodedGraph is any in-memory lower-level graph.
type decodedGraph interface {
	memSize() int64
	// edgeCount reports stored entries (positive links, or complement
	// entries for negative graphs) — the decode-throughput denominator.
	edgeCount() int64
}

// graphCache is the buffer manager of §4.3: decoded intranode and
// superedge graphs are cached under a byte budget with LRU replacement.
// The experiments vary the budget (Figure 12) and count loads per query
// (the paper's instrumentation of Query 1).
type graphCache struct {
	budget  int64
	used    int64
	lru     *list.List // front = most recent; values are *cacheEntry
	byID    map[GraphID]*list.Element
	stats   CacheStats
	decoded int64 // edges decoded since last reset
}

type cacheEntry struct {
	id   GraphID
	g    decodedGraph
	size int64
}

func newGraphCache(budget int64) *graphCache {
	return &graphCache{budget: budget, lru: list.New(), byID: map[GraphID]*list.Element{}}
}

// get returns the cached graph and marks it recently used.
func (c *graphCache) get(id GraphID) (decodedGraph, bool) {
	el, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*cacheEntry).g, true
}

// put inserts a freshly decoded graph, evicting LRU entries to stay
// within budget. Graphs larger than the budget are admitted alone (the
// query could not run otherwise) and evicted on the next insert.
func (c *graphCache) put(id GraphID, g decodedGraph, kind uint8) {
	size := g.memSize()
	c.stats.Loads++
	c.decoded += g.edgeCount()
	if kind == kindIntra {
		c.stats.IntraLoads++
	} else {
		c.stats.SuperLoads++
	}
	for c.used+size > c.budget && c.lru.Len() > 0 {
		back := c.lru.Back()
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.byID, e.id)
		c.used -= e.size
		c.stats.Evictions++
	}
	el := c.lru.PushFront(&cacheEntry{id: id, g: g, size: size})
	c.byID[id] = el
	c.used += size
}

// reset empties the cache (used between buffer-size sweep points).
func (c *graphCache) reset(budget int64) {
	c.budget = budget
	c.used = 0
	c.lru.Init()
	c.byID = map[GraphID]*list.Element{}
	c.stats = CacheStats{}
	c.decoded = 0
}
