package snode

import (
	"container/list"
	"sync"
)

// decodedGraph is any in-memory lower-level graph.
type decodedGraph interface {
	memSize() int64
	// edgeCount reports stored entries (positive links, or complement
	// entries for negative graphs) — the decode-throughput denominator.
	edgeCount() int64
}

// graphCache is the buffer manager of §4.3: decoded intranode and
// superedge graphs are cached under a byte budget with LRU replacement.
// The experiments vary the budget (Figure 12) and count loads per query
// (the paper's instrumentation of Query 1).
//
// Thread-safety contract: the cache is safe for concurrent use by any
// number of goroutines. It is split into cacheShards shards (by GraphID
// hash), each guarded by its own mutex and carrying its own slice of
// the byte budget, LRU list, and CacheStats; statsMerged sums the
// per-shard counters so the Figure-12 instrumentation is unchanged.
// Misses are deduplicated singleflight-style: the first goroutine to
// claim an absent graph becomes its decode leader, and every other
// goroutine that wants the same graph blocks on the leader's in-flight
// decode instead of decoding a second copy — N concurrent requests for
// one supernode trigger exactly one decode.
//
// All stats accounting, including the decoded-edge counter that the
// Table 2 throughput metric reads, happens behind the shard locks;
// there are no unsynchronized counters.
type graphCache struct {
	shards [cacheShards]cacheShard
}

// cacheShardBits selects the shard count (a power of two, sized so
// that a GOMAXPROCS' worth of goroutines rarely collides on one lock).
// Everything downstream — the hash shift in shard, the budget split —
// derives from it, so changing it cannot silently mis-shard.
const (
	cacheShardBits = 4
	cacheShards    = 1 << cacheShardBits
)

// cacheShard is one lock domain of the buffer manager.
type cacheShard struct {
	mu       sync.Mutex
	budget   int64 // this shard's slice of the total budget
	used     int64
	lru      *list.List // front = most recent; values are *cacheEntry
	byID     map[GraphID]*list.Element
	inflight map[GraphID]*inflightDecode
	stats    CacheStats
	decoded  int64 // edges decoded since last reset
}

type cacheEntry struct {
	id   GraphID
	g    decodedGraph
	size int64
}

// inflightDecode tracks one in-progress decode. g and err are written
// by the leader before done is closed; waiters read them only after
// <-done, so the channel close publishes them.
type inflightDecode struct {
	done chan struct{}
	g    decodedGraph
	err  error
}

func newGraphCache(budget int64) *graphCache {
	c := &graphCache{}
	for i := range c.shards {
		s := &c.shards[i]
		s.lru = list.New()
		s.byID = map[GraphID]*list.Element{}
		s.inflight = map[GraphID]*inflightDecode{}
	}
	c.setBudget(budget)
	return c
}

// shard maps a GraphID to its shard by multiplicative hash. Graph IDs
// are dense and one supernode's graphs are consecutive, so mixing
// spreads a single hot supernode's intranode and superedge graphs
// across lock domains.
func (c *graphCache) shard(id GraphID) *cacheShard {
	h := uint32(id) * 0x9E3779B1
	return &c.shards[h>>(32-cacheShardBits)] // top bits → cacheShards
}

// setBudget divides the total budget across shards (floor division, so
// the shard budgets never sum to more than the configured total). A
// degenerate budget — positive but smaller than the shard count — would
// floor every shard to zero, leaving each shard thrashing with every
// insert evicting whatever was resident; instead it is given whole to
// shard 0, so tiny-budget configurations (the low end of the Figure 12
// sweep, tests) retain a real LRU domain.
func (c *graphCache) setBudget(budget int64) {
	for i := range c.shards {
		c.shards[i].budget = shardBudget(budget, i)
	}
}

// shardBudget is shard i's slice of a total budget — the single place
// the split rule lives, shared by setBudget and reset so the
// degenerate-budget handling cannot drift between them.
func shardBudget(budget int64, i int) int64 {
	per := budget / cacheShards
	if per == 0 && i == 0 && budget > 0 {
		return budget
	}
	return per
}

// get returns the cached graph and marks it recently used, counting a
// hit or a miss: merged Hits+Misses equals the number of get calls.
func (c *graphCache) get(id GraphID) (decodedGraph, bool) {
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byID[id]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		return el.Value.(*cacheEntry).g, true
	}
	s.stats.Misses++
	return nil, false
}

// claim outcomes for tryClaim.
const (
	claimCached = iota // graph returned; nothing to do
	claimLeader        // caller owns the decode and MUST call complete
	claimBusy          // another goroutine is decoding; caller backs off
)

// claimNoWait resolves a graph that get reported missing without ever
// blocking: it returns the graph if a concurrent decode finished
// meanwhile, hands back the in-flight decode if one exists (the caller
// waits on fl.done itself — with cancellation, or hedged; counting the
// Coalesced dedup happens here, at claim time), or makes the caller the
// decode leader (leader=true), who MUST call complete exactly once.
// claimNoWait never counts a hit or miss — the get that preceded it
// already did.
func (c *graphCache) claimNoWait(id GraphID) (g decodedGraph, fl *inflightDecode, leader bool) {
	s := c.shard(id)
	s.mu.Lock()
	if el, ok := s.byID[id]; ok {
		// Resolved between the caller's miss and this claim by another
		// goroutine's decode: counted as Coalesced so every miss is
		// attributable to exactly one load, wait, or reuse (the
		// Loads+Coalesced >= Misses reconciliation the metrics assert).
		s.stats.Coalesced++
		s.lru.MoveToFront(el)
		g := el.Value.(*cacheEntry).g
		s.mu.Unlock()
		return g, nil, false
	}
	if fl, ok := s.inflight[id]; ok {
		s.stats.Coalesced++
		s.mu.Unlock()
		return nil, fl, false
	}
	fl = &inflightDecode{done: make(chan struct{})}
	s.inflight[id] = fl
	s.mu.Unlock()
	return nil, nil, true
}

// claim is claimNoWait plus the plain blocking wait on another
// goroutine's in-flight decode — the uncancellable form the internal
// sequential paths (Verify, DecodeAll's loads) use.
func (c *graphCache) claim(id GraphID) (g decodedGraph, err error, leader bool) {
	g, fl, leader := c.claimNoWait(id)
	if leader || fl == nil {
		return g, nil, leader
	}
	<-fl.done
	return fl.g, fl.err, false
}

// inflightCount reports decodes currently claimed but not completed —
// the gauge the shutdown and deadline tests use to assert no decode is
// orphaned.
func (c *graphCache) inflightCount() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += int64(len(s.inflight))
		s.mu.Unlock()
	}
	return n
}

// tryClaim is claim without blocking: when another goroutine is already
// decoding id it reports claimBusy instead of waiting. Used to extend
// span reads over additional misses.
func (c *graphCache) tryClaim(id GraphID) (decodedGraph, int) {
	s := c.shard(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byID[id]; ok {
		// As in claim: a miss resolved by another goroutine's completed
		// decode counts as Coalesced.
		s.stats.Coalesced++
		s.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).g, claimCached
	}
	if _, ok := s.inflight[id]; ok {
		return nil, claimBusy
	}
	s.inflight[id] = &inflightDecode{done: make(chan struct{})}
	return nil, claimLeader
}

// complete finishes a claimed decode: on success the graph is inserted
// (evicting LRU entries to stay within the shard budget) and the load
// counters — including the decoded-edge counter — are bumped under the
// shard lock; either way, every goroutine blocked in claim is released
// with the same result.
func (c *graphCache) complete(id GraphID, g decodedGraph, kind uint8, err error) {
	s := c.shard(id)
	s.mu.Lock()
	fl := s.inflight[id]
	delete(s.inflight, id)
	if err == nil {
		s.insertLocked(id, g, kind)
	}
	s.mu.Unlock()
	if fl != nil {
		fl.g, fl.err = g, err
		close(fl.done)
	}
}

// insertLocked inserts a freshly decoded graph, evicting LRU entries to
// stay within the shard budget. Graphs larger than the budget are
// admitted alone (the query could not run otherwise) and evicted on the
// next insert. Caller holds s.mu.
func (s *cacheShard) insertLocked(id GraphID, g decodedGraph, kind uint8) {
	s.stats.Loads++
	s.decoded += g.edgeCount()
	if kind == kindIntra {
		s.stats.IntraLoads++
	} else {
		s.stats.SuperLoads++
	}
	if el, ok := s.byID[id]; ok {
		// Already resident (a racing insert slipped in, e.g. a reset
		// interleaved with this decode's claim): keep the existing entry.
		s.lru.MoveToFront(el)
		return
	}
	size := g.memSize()
	for s.used+size > s.budget && s.lru.Len() > 0 {
		back := s.lru.Back()
		e := back.Value.(*cacheEntry)
		s.lru.Remove(back)
		delete(s.byID, e.id)
		s.used -= e.size
		s.stats.Evictions++
	}
	el := s.lru.PushFront(&cacheEntry{id: id, g: g, size: size})
	s.byID[id] = el
	s.used += size
}

// statsMerged sums the per-shard counters into one CacheStats (the
// Figure 12 view).
func (c *graphCache) statsMerged() CacheStats {
	var out CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Loads += s.stats.Loads
		out.Hits += s.stats.Hits
		out.Misses += s.stats.Misses
		out.Coalesced += s.stats.Coalesced
		out.Evictions += s.stats.Evictions
		out.IntraLoads += s.stats.IntraLoads
		out.SuperLoads += s.stats.SuperLoads
		s.mu.Unlock()
	}
	return out
}

// decodedEdges sums the per-shard decoded-edge counters.
func (c *graphCache) decodedEdges() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.decoded
		s.mu.Unlock()
	}
	return n
}

// usedBytes sums the decoded bytes currently resident across shards
// (the decoded-bytes gauge of the serving metrics).
func (c *graphCache) usedBytes() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}

// entries counts resident graphs across shards.
func (c *graphCache) entries() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += int64(s.lru.Len())
		s.mu.Unlock()
	}
	return n
}

// resetStats zeroes the counters, keeping contents (the warm-cache
// repeated-trial methodology).
func (c *graphCache) resetStats() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.stats = CacheStats{}
		s.decoded = 0
		s.mu.Unlock()
	}
}

// reset empties the cache and re-divides a new budget (used between
// buffer-size sweep points). In-flight decodes are retained: their
// leaders will complete into the fresh state, and their waiters are
// still released.
func (c *graphCache) reset(budget int64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.budget = shardBudget(budget, i)
		s.used = 0
		s.lru.Init()
		s.byID = map[GraphID]*list.Element{}
		s.stats = CacheStats{}
		s.decoded = 0
		s.mu.Unlock()
	}
}
