package snode

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snode/internal/webgraph"
)

// widestPage returns the page whose supernode owns the most graphs —
// the widest span, i.e. the most coalescing/hedging opportunities.
func widestPage(t *testing.T, c *webgraph.Corpus, r *Representation) (webgraph.PageID, []GraphID) {
	t.Helper()
	var page webgraph.PageID
	best := -1
	for p := int32(0); int(p) < c.Graph.NumPages(); p += 67 {
		if n := len(neededGraphsOf(r, p)); n > best {
			best, page = n, p
		}
	}
	if best < 2 {
		t.Skipf("no supernode wide enough to coalesce on (best %d graphs)", best)
	}
	return page, neededGraphsOf(r, page)
}

// assertPageRows compares one lookup's rows against the source graph.
func assertPageRows(t *testing.T, c *webgraph.Corpus, p webgraph.PageID, got []webgraph.PageID) {
	t.Helper()
	gs := sortedCopy(got)
	want := c.Graph.Out(p)
	if len(gs) != len(want) {
		t.Fatalf("page %d: %d targets, want %d", p, len(gs), len(want))
	}
	for i := range want {
		if gs[i] != want[i] {
			t.Fatalf("page %d target %d: got %d, want %d", p, i, gs[i], want[i])
		}
	}
}

// TestHedgedReadBeatsStragglingLeader pins the hedge win path: a
// decode leader parked inside an injected stall must not hold its
// coalesced waiter hostage — past the hedge threshold the waiter's
// private read+decode serves it correct rows while the leader is still
// stuck, and the leader's eventual completion still lands (no
// double-complete: only the leader ever touches the flight).
func TestHedgedReadBeatsStragglingLeader(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 32<<20)
	page, need := widestPage(t, c, r)
	victim := need[len(need)/2]

	// The FIRST decode of the victim graph (necessarily the leader's:
	// the hedge only launches from a waiter after the leader claimed)
	// parks on a gate until released; every later decode runs free.
	gate := make(chan struct{})
	var victimDecodes atomic.Int32
	r.decodeFault = func(gid GraphID) error {
		if gid == victim && victimDecodes.Add(1) == 1 {
			<-gate
		}
		return nil
	}
	r.SetHedge(2 * time.Millisecond)

	// Leader: claims the span, parks in the victim's decode.
	leaderDone := make(chan error, 1)
	go func() {
		rows, err := r.Out(page, nil)
		if err == nil {
			assertPageRows(t, c, page, rows)
		}
		leaderDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for victimDecodes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached the victim decode")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Waiter: coalesces onto the leader's flights, hedges, and must
	// finish with correct rows while the leader is still parked.
	waiterDone := make(chan error, 1)
	go func() {
		rows, err := r.Out(page, nil)
		if err == nil {
			assertPageRows(t, c, page, rows)
		}
		waiterDone <- err
	}()
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("hedged waiter: %v", err)
		}
	case err := <-leaderDone:
		t.Fatalf("leader finished first (err=%v); the gate did not hold it", err)
	case <-time.After(10 * time.Second):
		t.Fatal("hedged waiter still blocked behind a parked leader after 10s")
	}
	if _, wins, _ := r.HedgeStats(); wins == 0 {
		t.Fatal("waiter completed with zero hedge wins; it did not hedge")
	}

	// Release the leader: it must complete its flight normally.
	close(gate)
	select {
	case err := <-leaderDone:
		if err != nil {
			t.Fatalf("leader after release: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("leader still blocked after gate release")
	}

	// No orphaned flight, and the cache serves the page (leader's copy).
	if n := r.InflightDecodes(); n != 0 {
		t.Fatalf("InflightDecodes = %d after both readers returned", n)
	}
	r.decodeFault = nil
	rows, err := r.Out(page, nil)
	if err != nil {
		t.Fatalf("read after hedge exercise: %v", err)
	}
	assertPageRows(t, c, page, rows)
}

// TestHedgingOnOffByteIdentical drives many concurrent readers over a
// paced, thrashing-budget representation with aggressive hedging and
// checks every result against the golden rows — hedging may change
// who decodes, never what is decoded. Run under -race this also pins
// that winner and loser never double-complete a flight (the flight
// table is mutated only by leaders) and, via the goroutine settle
// check, that cancelled losing hedges are reaped, not leaked.
func TestHedgingOnOffByteIdentical(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 64<<10) // tiny budget: constant eviction, constant misses
	r.SetPace(0.05)         // real (scaled) disk stalls so leaders straggle
	defer r.SetPace(0)
	r.SetHedge(200 * time.Microsecond)
	baseline := snodeGoroutines()

	const readers = 12
	pages := make([]webgraph.PageID, 0, 48)
	for p := int32(1); int(p) < c.Graph.NumPages() && len(pages) < cap(pages); p += 131 {
		pages = append(pages, p)
	}
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for g := 0; g < readers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []webgraph.PageID
			for rep := 0; rep < 3; rep++ {
				for _, p := range pages {
					var err error
					buf, err = r.OutCtx(context.Background(), p, buf[:0])
					if err != nil {
						errs[g] = err
						return
					}
					got := sortedCopy(buf)
					want := c.Graph.Out(p)
					if len(got) != len(want) {
						errs[g] = errors.New("row count diverged under hedging")
						return
					}
					for i := range want {
						if got[i] != want[i] {
							errs[g] = errors.New("row content diverged under hedging")
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", g, err)
		}
	}
	launched, wins, losses := r.HedgeStats()
	if launched == 0 {
		t.Fatal("no hedges launched; the test exercised nothing")
	}
	if wins+losses != launched {
		t.Fatalf("hedge accounting: %d launched != %d wins + %d losses", launched, wins, losses)
	}
	if n := r.InflightDecodes(); n != 0 {
		t.Fatalf("InflightDecodes = %d after drain", n)
	}
	// Losing hedges are cancelled, not leaked: goroutines parked in this
	// package must settle back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := snodeGoroutines(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d parked in snode code, baseline %d",
				snodeGoroutines(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHedgeFailureFallsBackToLeader: a hedge that itself fails (fault
// injected into every non-leader decode of the victim) must not
// surface its error — the waiter falls back to the leader's result.
func TestHedgeFailureFallsBackToLeader(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 32<<20)
	page, need := widestPage(t, c, r)
	victim := need[len(need)/2]

	gate := make(chan struct{})
	var victimDecodes atomic.Int32
	hedgeErr := errors.New("injected hedge fault")
	r.decodeFault = func(gid GraphID) error {
		if gid != victim {
			return nil
		}
		if victimDecodes.Add(1) == 1 {
			<-gate // leader: parked until the hedge has failed
			return nil
		}
		return hedgeErr // every hedge of the victim fails
	}
	r.SetHedge(time.Millisecond)

	leaderDone := make(chan error, 1)
	go func() {
		_, err := r.Out(page, nil)
		leaderDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for victimDecodes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached the victim decode")
		}
		time.Sleep(100 * time.Microsecond)
	}
	waiterDone := make(chan error, 1)
	go func() {
		rows, err := r.Out(page, nil)
		if err == nil {
			assertPageRows(t, c, page, rows)
		}
		waiterDone <- err
	}()
	// Give the waiter time to hedge and fail, then release the leader.
	for victimDecodes.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never hedged the victim decode")
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(gate)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter surfaced the hedge's private error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter never fell back to the leader's result")
	}
	if n := r.InflightDecodes(); n != 0 {
		t.Fatalf("InflightDecodes = %d after drain", n)
	}
}

// TestDeadlineCancelsMidBatch is the reader-level deadline-propagation
// regression: a batched lookup whose ctx deadline fires mid-flight must
// return context.DeadlineExceeded promptly — even though the paced
// iosim layer is mid-stall (the interruptible stall wakes on ctx) —
// and leave no in-flight decode claimed and no goroutine parked.
func TestDeadlineCancelsMidBatch(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 64<<10) // thrashing budget: every lookup pays modeled I/O
	r.SetPace(1.0)          // full 2002-disk stalls: ~9ms+ per cold span
	defer r.SetPace(0)
	baseline := snodeGoroutines()

	pages := make([]webgraph.PageID, 0, 600)
	for p := int32(0); int(p) < c.Graph.NumPages() && len(pages) < cap(pages); p += 7 {
		pages = append(pages, p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.ParallelNeighbors(ctx, pages, 2)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ParallelNeighbors returned %v, want DeadlineExceeded", err)
	}
	// 600 cold lookups over 2 workers at ≥9ms modeled each would be
	// seconds; a propagated deadline must cut that to ~the deadline plus
	// one in-flight item. 2s of slack absorbs scheduler noise.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; deadline did not propagate into the reader", elapsed)
	}
	if n := r.InflightDecodes(); n != 0 {
		t.Fatalf("InflightDecodes = %d after cancelled batch — orphaned decode", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := snodeGoroutines(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled batch: %d parked in snode code, baseline %d",
				snodeGoroutines(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The representation must still serve normally after the cancelled
	// batch (no poisoned cache state).
	rows, err := r.Out(pages[0], nil)
	if err != nil {
		t.Fatalf("read after cancelled batch: %v", err)
	}
	assertPageRows(t, c, pages[0], rows)
}
