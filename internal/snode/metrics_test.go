package snode

import (
	"testing"

	"snode/internal/metrics"
	"snode/internal/webgraph"
)

// TestRegisterMetricsReconcilesWithStatsExt scrapes the registry after
// a workload and checks every exported counter against the StatsExt
// snapshot — the acceptance bar for the /metrics endpoint.
func TestRegisterMetricsReconcilesWithStatsExt(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 1<<20)
	reg := metrics.NewRegistry()
	r.RegisterMetrics(reg, "snode")

	var buf []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p += 7 {
		var err error
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	st := r.StatsExt()
	for name, want := range map[string]int64{
		"snode_cache_hits":       st.Cache.Hits,
		"snode_cache_misses":     st.Cache.Misses,
		"snode_cache_loads":      st.Cache.Loads,
		"snode_cache_coalesced":  st.Cache.Coalesced,
		"snode_cache_evictions":  st.Cache.Evictions,
		"snode_decoded_edges":    r.DecodedEdges(),
		"snode_io_seeks":         st.IO.Seeks,
		"snode_io_reads":         st.IO.Reads,
		"snode_io_bytes_read":    st.IO.BytesRead,
		"snode_io_skipped_bytes": st.IO.SkippedBytes,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d (StatsExt)", name, got, want)
		}
	}
	if snap.Gauges["snode_cache_bytes"] != r.cache.usedBytes() {
		t.Errorf("snode_cache_bytes = %d, want %d", snap.Gauges["snode_cache_bytes"], r.cache.usedBytes())
	}
	if snap.Gauges["snode_cache_entries"] <= 0 {
		t.Errorf("snode_cache_entries = %d, want > 0 after workload", snap.Gauges["snode_cache_entries"])
	}
	h := snap.Histograms["snode_decode_seconds"]
	if h.Count != st.Cache.Loads {
		// Every successful load is exactly one timed decode.
		t.Errorf("decode histogram count = %d, want %d loads", h.Count, st.Cache.Loads)
	}
	if st.Cache.Hits+st.Cache.Misses == 0 || st.Cache.Loads == 0 {
		t.Fatalf("workload produced no cache traffic: %+v", st.Cache)
	}
}
