package snode

import (
	"encoding/binary"
	"testing"

	"snode/internal/bitio"
	"snode/internal/coding"
	"snode/internal/refenc"
)

// Fuzz harnesses for the codec layer. Run continuously with
//
//	go test -fuzz=FuzzDecodeHostile ./internal/snode
//
// Under plain `go test` the seed corpus below still executes, so these
// double as regression tests for every crasher that gets minimized
// into testdata/fuzz/.

// listsFromBytes deterministically derives a strictly-increasing list
// set over [0, size) from raw fuzz bytes: byte i*size+v odd → v ∈ lists[i].
func listsFromBytes(data []byte, numLists int, size int32) [][]int32 {
	lists := make([][]int32, numLists)
	for i := 0; i < numLists; i++ {
		for v := int32(0); v < size; v++ {
			idx := i*int(size) + int(v)
			if idx < len(data) && data[idx]&1 == 1 {
				lists[i] = append(lists[i], v)
			}
		}
	}
	return lists
}

// FuzzCodecRoundTrip drives arbitrary list shapes through every codec
// and payload kind and requires exact decode identity.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint8(9), []byte{})
	f.Add(uint8(16), uint8(23), []byte{0xFF, 0x00, 0xAB, 0x11, 0x7E})
	f.Add(uint8(1), uint8(1), []byte{1})
	f.Add(uint8(64), uint8(64), []byte("the quick brown fox jumps over the lazy dog"))
	opt := refenc.Options{Window: refenc.DefaultWindow}
	f.Fuzz(func(t *testing.T, nl, sz uint8, data []byte) {
		numLists := int(nl)%64 + 1
		size := int32(sz)%64 + 1
		// Intranode lists live in [0, numLists); target lists in [0, size).
		intra := listsFromBytes(data, numLists, int32(numLists))
		lists := listsFromBytes(data, numLists, size)
		srcs, nonEmpty := srcsAndLists(lists)
		for _, cd := range codecTable {
			blob, err := cd.EncodeIntra(nil, intra, opt)
			if err != nil {
				t.Fatalf("%s: encode intra: %v", cd.Name(), err)
			}
			gi, err := cd.DecodeIntra(blob, numLists)
			if err != nil {
				t.Fatalf("%s: decode intra: %v", cd.Name(), err)
			}
			if !listsEqual(gi.lists, intra) {
				t.Fatalf("%s: intra round trip mismatch", cd.Name())
			}

			blob, err = cd.EncodeSuperPos(nil, srcs, nonEmpty, int32(numLists), size, opt)
			if err != nil {
				t.Fatalf("%s: encode superPos: %v", cd.Name(), err)
			}
			gp, err := cd.DecodeSuperPos(blob, len(srcs), int32(numLists), size)
			if err != nil {
				t.Fatalf("%s: decode superPos: %v", cd.Name(), err)
			}
			if !listsEqual(gp.lists, nonEmpty) || len(gp.srcs) != len(srcs) {
				t.Fatalf("%s: superPos round trip mismatch", cd.Name())
			}
			for i := range srcs {
				if gp.srcs[i] != srcs[i] {
					t.Fatalf("%s: superPos src %d mismatch", cd.Name(), i)
				}
			}

			blob, err = cd.EncodeSuperNeg(nil, lists, size, opt)
			if err != nil {
				t.Fatalf("%s: encode superNeg: %v", cd.Name(), err)
			}
			gn, err := cd.DecodeSuperNeg(blob, numLists, size)
			if err != nil {
				t.Fatalf("%s: decode superNeg: %v", cd.Name(), err)
			}
			if !listsEqual(gn.lists, lists) {
				t.Fatalf("%s: superNeg round trip mismatch", cd.Name())
			}
		}
	})
}

// hostileSeed builds a valid encoding so the fuzzer starts from
// structurally interesting bytes rather than pure noise.
func hostileSeed(f *testing.F, cd Codec, kind uint8) {
	opt := refenc.Options{Window: refenc.DefaultWindow}
	// Seven lists over [0,7): a valid shape for all three kinds (intra
	// lists live in [0, len(lists))).
	lists := [][]int32{{0, 2, 5}, {}, {1, 3, 4, 6}, {6}, {}, {0}, {2, 3}}
	var blob []byte
	var err error
	switch kind {
	case kindIntra:
		blob, err = cd.EncodeIntra(nil, lists, opt)
	case kindSuperPos:
		srcs, nonEmpty := srcsAndLists(lists)
		blob, err = cd.EncodeSuperPos(nil, srcs, nonEmpty, 7, 7, opt)
	default:
		blob, err = cd.EncodeSuperNeg(nil, lists, 7, opt)
	}
	if err != nil {
		f.Fatal(err)
	}
	// 6 → numLists/size 7 after the fuzz body's %128+1 mapping, so the
	// seed decodes cleanly and exercises the bounds oracle.
	f.Add(cd.ID(), kind, uint8(6), uint8(6), blob)
}

// overflowSeeds are minimized crashers for the signed-overflow hole the
// fused bounds checks close: a coded gap of 2^63+5 makes int64(g)
// negative, slips past a bare nv >= bound comparison, and int32
// truncation emits an in-range-looking local ID (e.g. [0 5] under bound
// 1). Committed as f.Add seeds so plain `go test` — the test-codec gate
// — replays them against the bounds oracle on every run.
func overflowSeeds(f *testing.F) {
	const hugeGap = uint64(1)<<63 + 5

	// codec/lz superNeg: one list under bound 1 — p=0, l=2, gaps {1, 2^63+5}.
	lz := binary.AppendUvarint(nil, 0)
	lz = binary.AppendUvarint(lz, 2)
	lz = binary.AppendUvarint(lz, 1)
	lz = binary.AppendUvarint(lz, hugeGap)
	f.Add(codecIDLZ, kindSuperNeg, uint8(0), uint8(0), lz)

	// codec/paper superPos: two sources under niSize 2 with a gamma gap
	// of 2^63+5 (exercises coding.ReadBoundedGapList), followed by two
	// valid empty target lists so a decoder that accepts the corrupt
	// sources still returns them to the oracle.
	w := bitio.NewWriter(0)
	coding.WriteMinimalBinary(w, 0, 2)
	coding.WriteGamma(w, hugeGap)
	if _, err := refenc.EncodeLists(w, [][]int32{{}, {}}, refenc.Options{TargetBound: 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(codecIDPaper, kindSuperPos, uint8(1), uint8(0), w.Bytes())

	// codec/paper superNeg: one direct refenc list of two values under
	// bound 1 whose gap is 2^63+5 (exercises refenc.readRun).
	w = bitio.NewWriter(0)
	w.WriteBit(0)                           // window strategy
	w.WriteBits(uint64(refenc.GapGamma), 2) // gap code
	coding.WriteGamma0(w, 0)                // no reference
	coding.WriteGamma0(w, 2)                // degree 2
	coding.WriteMinimalBinary(w, 0, 1)      // first value: zero bits under bound 1
	coding.WriteGamma(w, hugeGap)           // corrupt gap
	f.Add(codecIDPaper, kindSuperNeg, uint8(0), uint8(0), w.Bytes())
}

// FuzzDecodeHostile feeds arbitrary bytes to every codec's decoders and
// requires: no panic, and — whenever a decode still succeeds — every
// emitted local ID inside its declared space (checkLocalIDs is the
// oracle for the fused bounds checks).
func FuzzDecodeHostile(f *testing.F) {
	for _, cd := range codecTable {
		for _, kind := range []uint8{kindIntra, kindSuperPos, kindSuperNeg} {
			hostileSeed(f, cd, kind)
		}
	}
	overflowSeeds(f)
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), []byte{})
	f.Add(uint8(2), uint8(1), uint8(255), uint8(255), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, id, kind, nl, sz uint8, blob []byte) {
		cd := codecTable[int(id)%numCodecs]
		numLists := int(nl)%128 + 1
		size := int32(sz)%128 + 1
		switch kind % 3 {
		case kindIntra:
			g, err := cd.DecodeIntra(blob, numLists)
			if err == nil {
				if oerr := checkLocalIDs(g.lists, int32(numLists)); oerr != nil {
					t.Fatalf("%s: intra decode accepted out-of-bounds IDs: %v", cd.Name(), oerr)
				}
			}
		case kindSuperPos:
			g, err := cd.DecodeSuperPos(blob, numLists, int32(numLists), size)
			if err == nil {
				if oerr := checkLocalIDs([][]int32{g.srcs}, int32(numLists)); oerr != nil {
					t.Fatalf("%s: superPos srcs out of bounds: %v", cd.Name(), oerr)
				}
				if oerr := checkLocalIDs(g.lists, size); oerr != nil {
					t.Fatalf("%s: superPos lists out of bounds: %v", cd.Name(), oerr)
				}
			}
		default:
			g, err := cd.DecodeSuperNeg(blob, numLists, size)
			if err == nil {
				if oerr := checkLocalIDs(g.lists, size); oerr != nil {
					t.Fatalf("%s: superNeg decode accepted out-of-bounds IDs: %v", cd.Name(), oerr)
				}
			}
		}
	})
}
