package snode

import (
	"fmt"
	"math/bits"
	"sync"

	"snode/internal/bitio"
	"snode/internal/coding"
	"snode/internal/refenc"
)

// logCodec is a Log(Graph)-style succinct coder after Besta et al.:
// every ID is bit-packed at the logarithmized width of its value space
// instead of entropy-coded. A list's first value takes exactly
// ceil(log2(bound)) bits (bound is the local ID space, so supernode
// locality makes this small), and its gaps are a fixed-width array at
// the width of the list's largest gap. Decode is a fixed-width bit
// gather — no unary scans, no code tables — so it wins on the small
// dense lists supernode-local ID spaces produce.
//
// Wire format per list (k = bits.Len(bound-1); both first-value and
// width-field widths are derived from bound and deg, so the decoder
// computes them before reading — no self-describing overhead):
//
//	gamma0 deg        list length
//	f bits  first     first value at f = width(bound-deg+1): a strictly
//	                  increasing run of deg values cannot start above
//	                  bound-deg, and a full run (deg == bound) costs
//	                  zero bits
//	len(k) bits  w    gap width in [0, k], present when deg > 1
//	(deg-1) × w bits  gap-1 residuals; value = prev + residual + 1,
//	                  validated < bound as accumulated
//
// superPos payloads prepend the sources as one such run over
// [0, niSize) without the gamma0 length (the directory knows numSrcs),
// then the target lists over [0, njSize).
type logCodec struct{}

func (logCodec) ID() uint8    { return codecIDLog }
func (logCodec) Name() string { return CodecLog }

var logWriters = sync.Pool{New: func() any { return bitio.NewWriter(1 << 16) }}

// logWidth is the bit width of IDs in [0, bound).
func logWidth(bound int64) uint {
	if bound <= 1 {
		return 0
	}
	return uint(bits.Len64(uint64(bound - 1)))
}

// logWriteRun writes one sorted run over [0, bound): the first value
// at its residual width, then the gap width and fixed-width gap-1
// residuals.
func logWriteRun(w *bitio.Writer, list []int32, bound int64) {
	w.WriteBits(uint64(list[0]), logWidth(bound-int64(len(list))+1))
	if len(list) == 1 {
		return
	}
	var maxResid uint64
	for i := 1; i < len(list); i++ {
		if r := uint64(list[i]-list[i-1]) - 1; r > maxResid {
			maxResid = r
		}
	}
	gw := uint(bits.Len64(maxResid))
	w.WriteBits(uint64(gw), uint(bits.Len(logWidth(bound))))
	for i := 1; i < len(list); i++ {
		w.WriteBits(uint64(list[i]-list[i-1])-1, gw)
	}
}

// logReadRun decodes n values of one run into the arena, validating
// every value against [0, bound). A hostile n cannot make the widths
// misbehave: n > bound gives a zero-width first value and the
// strictly-increasing accumulation errors before `bound` appends.
func logReadRun(r *bitio.Reader, n int, bound int64, vals []int32) ([]int32, error) {
	if n == 0 {
		return vals, nil
	}
	first, err := r.ReadBits(logWidth(bound - int64(n) + 1))
	if err != nil {
		return vals, err
	}
	if int64(first) >= bound {
		return vals, fmt.Errorf("snode/log: local id %d outside [0,%d)", first, bound)
	}
	cur := int64(first)
	vals = append(vals, int32(cur))
	if n == 1 {
		return vals, nil
	}
	gw, err := r.ReadBits(uint(bits.Len(logWidth(bound))))
	if err != nil {
		return vals, err
	}
	for i := 1; i < n; i++ {
		resid, err := r.ReadBits(uint(gw))
		if err != nil {
			return vals, err
		}
		cur += int64(resid) + 1
		if cur >= bound {
			return vals, fmt.Errorf("snode/log: local id %d outside [0,%d)", cur, bound)
		}
		vals = append(vals, int32(cur))
	}
	return vals, nil
}

func logEncodeLists(w *bitio.Writer, lists [][]int32, bound int64) {
	for _, l := range lists {
		coding.WriteGamma0(w, uint64(len(l)))
		if len(l) > 0 {
			logWriteRun(w, l, bound)
		}
	}
}

// logDecodeLists decodes numLists lists under bound from r into a flat
// arena, returning slices of it.
func logDecodeLists(r *bitio.Reader, numLists int, bound int64, vals []int32) ([][]int32, []int32, error) {
	offs := make([]int32, numLists+1)
	offs[0] = int32(len(vals))
	for i := 0; i < numLists; i++ {
		deg, err := coding.ReadGamma0(r)
		if err != nil {
			return nil, vals, err
		}
		if deg > uint64(maxMetaElems) {
			return nil, vals, fmt.Errorf("snode/log: list %d claims %d values", i, deg)
		}
		// A hostile degree cannot run away even at gap width 0: values
		// are strictly increasing and validated < bound, so the run loop
		// errors after at most `bound` appends.
		vals, err = logReadRun(r, int(deg), bound, vals)
		if err != nil {
			return nil, vals, err
		}
		offs[i+1] = int32(len(vals))
	}
	out := make([][]int32, numLists)
	for i := range out {
		out[i] = vals[offs[i]:offs[i+1]:offs[i+1]]
	}
	return out, vals, nil
}

func logEncode(dst []byte, fill func(w *bitio.Writer)) []byte {
	w := logWriters.Get().(*bitio.Writer)
	w.Reset()
	fill(w)
	dst = w.AppendTo(dst)
	logWriters.Put(w)
	return dst
}

func (logCodec) EncodeIntra(dst []byte, lists [][]int32, _ refenc.Options) ([]byte, error) {
	return logEncode(dst, func(w *bitio.Writer) {
		logEncodeLists(w, lists, int64(len(lists)))
	}), nil
}

func (logCodec) DecodeIntra(buf []byte, numLists int) (*decodedIntra, error) {
	r := bitio.NewByteReader(buf)
	lists, _, err := logDecodeLists(r, numLists, int64(numLists), make([]int32, 0, 2*len(buf)))
	if err != nil {
		return nil, fmt.Errorf("snode: intranode decode: %w", err)
	}
	return &decodedIntra{lists: lists}, nil
}

func (logCodec) EncodeSuperPos(dst []byte, srcs []int32, lists [][]int32, niSize, njSize int32, _ refenc.Options) ([]byte, error) {
	if len(srcs) != len(lists) {
		return dst, fmt.Errorf("snode: superPos %d sources but %d lists", len(srcs), len(lists))
	}
	return logEncode(dst, func(w *bitio.Writer) {
		if len(srcs) > 0 {
			logWriteRun(w, srcs, int64(niSize))
		}
		logEncodeLists(w, lists, int64(njSize))
	}), nil
}

func (logCodec) DecodeSuperPos(buf []byte, numSrcs int, niSize, njSize int32) (*decodedSuperPos, error) {
	r := bitio.NewByteReader(buf)
	vals, err := logReadRun(r, numSrcs, int64(niSize), make([]int32, 0, 2*len(buf)+numSrcs))
	if err != nil {
		return nil, fmt.Errorf("snode: superPos sources: %w", err)
	}
	lists, vals, err := logDecodeLists(r, numSrcs, int64(njSize), vals)
	if err != nil {
		return nil, fmt.Errorf("snode: superPos lists: %w", err)
	}
	return &decodedSuperPos{srcs: vals[:numSrcs:numSrcs], lists: lists}, nil
}

func (logCodec) EncodeSuperNeg(dst []byte, complements [][]int32, njSize int32, _ refenc.Options) ([]byte, error) {
	return logEncode(dst, func(w *bitio.Writer) {
		logEncodeLists(w, complements, int64(njSize))
	}), nil
}

func (logCodec) DecodeSuperNeg(buf []byte, numLists int, njSize int32) (*decodedSuperNeg, error) {
	r := bitio.NewByteReader(buf)
	lists, _, err := logDecodeLists(r, numLists, int64(njSize), make([]int32, 0, 2*len(buf)))
	if err != nil {
		return nil, fmt.Errorf("snode: superNeg decode: %w", err)
	}
	return &decodedSuperNeg{njSize: njSize, lists: lists}, nil
}
