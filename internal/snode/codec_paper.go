package snode

import (
	"fmt"
	"sync"

	"snode/internal/bitio"
	"snode/internal/coding"
	"snode/internal/refenc"
)

// paperCodec is the wire format of paper §3: refenc reference-encoded
// lists (Huffman/Elias/zeta gap codes) with gap-coded superPos sources.
// It is codec ID 0 — the format of every artifact built before codecs
// were pluggable — and the byte layout here must never change.
//
//	intranode:  refenc lists, one per page of Ni
//	superPos:   bounded gap-coded source local IDs, then refenc lists,
//	            one per source
//	superNeg:   refenc lists (complements), one per page of Ni
type paperCodec struct{}

func (paperCodec) ID() uint8    { return codecIDPaper }
func (paperCodec) Name() string { return CodecPaper }

// paperWriters pools bit writers across encode calls; encoding fans out
// across build workers and each finished blob is copied out of the
// writer before release.
var paperWriters = sync.Pool{New: func() any { return bitio.NewWriter(1 << 16) }}

func paperEncode(dst []byte, fill func(w *bitio.Writer) error) ([]byte, error) {
	w := paperWriters.Get().(*bitio.Writer)
	w.Reset()
	if err := fill(w); err != nil {
		paperWriters.Put(w)
		return dst, err
	}
	dst = w.AppendTo(dst)
	paperWriters.Put(w)
	return dst, nil
}

func (paperCodec) EncodeIntra(dst []byte, lists [][]int32, opt refenc.Options) ([]byte, error) {
	return paperEncode(dst, func(w *bitio.Writer) error {
		opt.TargetBound = uint64(len(lists)) // local IDs within Ni
		_, err := refenc.EncodeLists(w, lists, opt)
		return err
	})
}

func (paperCodec) DecodeIntra(buf []byte, numLists int) (*decodedIntra, error) {
	r := bitio.NewByteReader(buf)
	lists, err := refenc.DecodeListsBounded(r, numLists, uint64(numLists))
	if err != nil {
		return nil, fmt.Errorf("snode: intranode decode: %w", err)
	}
	return &decodedIntra{lists: lists}, nil
}

func (paperCodec) EncodeSuperPos(dst []byte, srcs []int32, lists [][]int32, niSize, njSize int32, opt refenc.Options) ([]byte, error) {
	if len(srcs) != len(lists) {
		return dst, fmt.Errorf("snode: superPos %d sources but %d lists", len(srcs), len(lists))
	}
	return paperEncode(dst, func(w *bitio.Writer) error {
		coding.WriteBoundedGapList(w, srcs, uint64(niSize))
		opt.TargetBound = uint64(njSize)
		_, err := refenc.EncodeLists(w, lists, opt)
		return err
	})
}

func (paperCodec) DecodeSuperPos(buf []byte, numSrcs int, niSize, njSize int32) (*decodedSuperPos, error) {
	r := bitio.NewByteReader(buf)
	srcs, err := coding.ReadBoundedGapList(r, numSrcs, uint64(niSize), nil)
	if err != nil {
		return nil, fmt.Errorf("snode: superPos sources: %w", err)
	}
	lists, err := refenc.DecodeListsBounded(r, numSrcs, uint64(njSize))
	if err != nil {
		return nil, fmt.Errorf("snode: superPos lists: %w", err)
	}
	return &decodedSuperPos{srcs: srcs, lists: lists}, nil
}

func (paperCodec) EncodeSuperNeg(dst []byte, complements [][]int32, njSize int32, opt refenc.Options) ([]byte, error) {
	return paperEncode(dst, func(w *bitio.Writer) error {
		opt.TargetBound = uint64(njSize)
		_, err := refenc.EncodeLists(w, complements, opt)
		return err
	})
}

func (paperCodec) DecodeSuperNeg(buf []byte, numLists int, njSize int32) (*decodedSuperNeg, error) {
	r := bitio.NewByteReader(buf)
	lists, err := refenc.DecodeListsBounded(r, numLists, uint64(njSize))
	if err != nil {
		return nil, fmt.Errorf("snode: superNeg decode: %w", err)
	}
	return &decodedSuperNeg{njSize: njSize, lists: lists}, nil
}
