// Package snode implements the paper's primary contribution: the S-Node
// two-level representation of Web graphs (§2-3).
//
// A partition P = {N1..Nn} of the pages (computed by internal/partition)
// induces:
//
//   - a supernode graph: one vertex per element, a superedge i→j iff
//     some page in Ni links to a page in Nj, Huffman-coded by in-degree
//     and held permanently in memory with 4-byte pointers to the
//     lower-level graphs (§3.3);
//   - one intranode graph per element, holding links within Ni;
//   - per superedge, either a positive graph (the links from Ni to Nj)
//     or a negative graph (the complement — the missing links), whichever
//     has fewer edges (§2);
//
// all lower-level graphs reference-encoded (internal/refenc), laid out
// on disk in linear order — each intranode graph followed by its out-
// superedge graphs — across index files of bounded size, and demand-
// loaded through an LRU buffer manager.
//
// Pages are renumbered so each supernode owns a contiguous internal ID
// range (supernodes ordered by (domain, first URL), pages within an
// element by URL), enabling the compact PageID index; a domain index
// maps each registered domain to its supernode range (§3.3, Figure 7).
//
// # Thread safety
//
// An opened Representation (alias Reader) is safe for concurrent use:
// any number of goroutines may call Out, OutFiltered,
// ParallelNeighbors, Verify, DomainSupernodes, and the stats accessors
// simultaneously. The buffer manager is sharded by GraphID hash with a
// mutex, budget slice, and stat counters per shard, and deduplicates
// concurrent decodes of the same graph singleflight-style, so N
// goroutines requesting one supernode trigger exactly one decode. All
// counters — including the decoded-edge counter behind the Table 2
// throughput metric — are updated under the shard locks. ResetStats and
// ResetCache may also be called concurrently with queries; a reset
// does not abandon in-flight decodes (their waiters are still
// released), but callers that want exact cold-cache accounting should
// quiesce queries first, as the paper's sweep protocol does.
package snode

import (
	"time"

	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/partition"
	"snode/internal/refenc"
)

// GraphID indexes the directory of lower-level graphs.
type GraphID = int32

// graph kinds in the directory.
const (
	kindIntra    uint8 = 1
	kindSuperPos uint8 = 2
	kindSuperNeg uint8 = 3
)

// Config controls building an S-Node representation.
type Config struct {
	// Partition configures the iterative refinement (§3.2).
	Partition partition.Config
	// Refenc configures reference encoding of the lower-level graphs
	// (consulted by codec/paper; the other codecs ignore it).
	Refenc refenc.Options
	// Codec selects the wire format of the lower-level graphs: "paper"
	// (or empty, the default — the refenc scheme of §3), "lz", "log", or
	// "auto". Auto runs a per-supernode bake-off: every registered codec
	// encodes the supernode's graphs, the candidates are scored by
	// size x measured decode time, and the winner is recorded per
	// directory entry so readers dispatch per payload. Fixed codecs keep
	// builds byte-deterministic; auto's timing-based choice may differ
	// between runs (the artifact stays self-describing either way).
	Codec string
	// MaxFileSize bounds each index file (paper: 500 MB). Lower values
	// exercise the multi-file layout in tests.
	MaxFileSize int64
	// CacheBudget bounds the buffer manager's decoded-graph memory.
	CacheBudget int64
	// DisableNegative forces positive superedge graphs everywhere (an
	// ablation of the §2 pos/neg choice).
	DisableNegative bool
	// BuildWorkers bounds the build-side parallelism (refinement rounds
	// and supernode encoding). <= 0 selects GOMAXPROCS. The artifacts
	// are byte-identical for every value.
	BuildWorkers int
	// ReorderWindow bounds how many encoded-but-unassembled supernodes
	// the streaming assembly may hold (peak memory O(window) instead of
	// O(supernodes)). <= 0 selects 4x the effective worker count.
	ReorderWindow int
	// BuildIO, when set, charges each repository scan the build performs
	// (signature reads during clustered splits, page+link reads during
	// supernode encoding) to the accountant — pacing models the 2002
	// disk the paper built from, without affecting outputs.
	BuildIO *iosim.Accountant
	// Metrics, when set, receives the build_* instruments (split/abort
	// counters, encode progress, stage latencies).
	Metrics *metrics.Registry
}

// DefaultConfig returns the standard build configuration.
func DefaultConfig() Config {
	return Config{
		Partition:   partition.DefaultConfig(),
		Refenc:      refenc.Options{Window: refenc.DefaultWindow},
		MaxFileSize: 500 << 20,
		CacheBudget: 32 << 20,
	}
}

// dirEntry locates one encoded lower-level graph.
type dirEntry struct {
	Kind     uint8
	I, J     int32 // supernodes (J unused for intranode graphs)
	File     int32
	Offset   int64 // byte offset within the file
	NumBytes int32
	NumLists int32 // lists in the encoded stream (see codec)
	Codec    uint8 // wire format of the payload (codec IDs in codec.go)
}

// meta is everything held permanently in memory (and serialized to
// meta.bin): the supernode graph, the PageID and domain indexes, the
// graph directory, and build statistics.
type meta struct {
	NumPages int32
	NumEdges int64

	// Page renumbering: Perm[ext] = internal, Inv[internal] = ext.
	Perm []int32
	Inv  []int32

	// PageID index: supernode s owns internal pages
	// [SnBase[s], SnBase[s+1]).
	SnBase []int32

	// Domain index: parallel arrays, domains in supernode order; domain
	// Domains[k] owns supernodes [DomFirstSN[k], DomFirstSN[k+1]).
	Domains    []string
	DomFirstSN []int32

	// Supernode graph (decoded form): CSR over supernodes with a
	// parallel pointer per edge, plus one intranode pointer per vertex.
	SuperOff []int64
	SuperAdj []int32
	SuperGID []GraphID
	IntraGID []GraphID

	Directory []dirEntry
	FileSizes []int64 // per index file

	Stats BuildStats
}

// BuildStats captures the figures the scalability and compression
// experiments report.
type BuildStats struct {
	Supernodes int
	Superedges int64
	// SupernodeGraphBytes is the Figure 10 metric: the Huffman-encoded
	// supernode graph plus a 4-byte pointer per vertex and per edge.
	SupernodeGraphBytes int64
	// IndexFileBytes is the total size of the encoded lower-level
	// graphs on disk.
	IndexFileBytes int64
	// PageIDIndexBytes and DomainIndexBytes size the §3.3 indexes.
	PageIDIndexBytes int64
	DomainIndexBytes int64
	// PositiveSuperedges / NegativeSuperedges count the §2 choice.
	PositiveSuperedges int64
	NegativeSuperedges int64
	// Partition statistics, carried through for reporting.
	URLSplits       int
	ClusteredSplits int
	// BuildTime is reported by Build but serialized as zero, keeping
	// meta.bin byte-identical across builds of the same corpus.
	BuildTime time.Duration
	// Codecs breaks the index files down by wire format: one entry per
	// codec that encoded at least one supernode, in codec-ID order.
	Codecs []CodecBuildStat
}

// CodecBuildStat reports one codec's share of an artifact.
type CodecBuildStat struct {
	ID         uint8
	Name       string
	Supernodes int64 // supernodes whose payloads use this codec
	Graphs     int64 // directory entries
	Bytes      int64 // encoded payload bytes
	Edges      int64 // edges stored in those payloads
}

// SizeBytes is the Table 1 accounting: index files plus the in-memory
// structures the paper counts (supernode graph with pointers, PageID
// index, domain index). The external↔internal permutation is an
// artifact of embedding the representation next to others that keep
// crawl IDs; the paper renumbers pages globally, so it is excluded (and
// reported separately by the harness).
func (s BuildStats) SizeBytes() int64 {
	return s.IndexFileBytes + s.SupernodeGraphBytes + s.PageIDIndexBytes + s.DomainIndexBytes
}

// CacheStats reports buffer-manager behaviour (used by Figure 12 and
// the §4.3 instrumentation that counts graphs loaded per query). Under
// the sharded buffer manager the counters are kept per shard and merged
// on read. Two identities hold over any quiescent interval (no resets,
// no failed decodes): Hits+Misses equals the total number of cache
// lookups, and Loads+Coalesced >= Misses — every miss either performed
// a decode (Loads) or was resolved by another goroutine's decode
// (Coalesced: waited on it in flight, or found it completed by claim
// time). The serving metrics and the concurrency tests assert both.
type CacheStats struct {
	Loads      int64
	Hits       int64
	Misses     int64
	Coalesced  int64 // misses resolved by another goroutine's decode
	Evictions  int64
	IntraLoads int64
	SuperLoads int64
}

// AccessStatsExt extends the store-level stats with S-Node detail.
type AccessStatsExt struct {
	IO    iosim.Stats
	Cache CacheStats
}
