package snode

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"snode/internal/iosim"
	"snode/internal/refenc"
	"snode/internal/synth"
)

// randLists generates numLists sorted strictly-increasing lists over
// [0, bound), with density controlled by p.
func randLists(rng *rand.Rand, numLists int, bound int32, p float64) [][]int32 {
	lists := make([][]int32, numLists)
	for i := range lists {
		for v := int32(0); v < bound; v++ {
			if rng.Float64() < p {
				lists[i] = append(lists[i], v)
			}
		}
	}
	return lists
}

func srcsAndLists(lists [][]int32) (srcs []int32, nonEmpty [][]int32) {
	for i, l := range lists {
		if len(l) > 0 {
			srcs = append(srcs, int32(i))
			nonEmpty = append(nonEmpty, l)
		}
	}
	return srcs, nonEmpty
}

// TestCodecRoundTrip pins encode→decode identity for every registered
// codec over every payload kind, across densities including empty and
// full lists.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	opt := refenc.Options{Window: refenc.DefaultWindow}
	for _, cd := range codecTable {
		for _, density := range []float64{0, 0.02, 0.3, 1} {
			for _, size := range []int{1, 3, 17, 64} {
				lists := randLists(rng, size, int32(size), density)
				name := fmt.Sprintf("%s/n%d/p%v", cd.Name(), size, density)

				blob, err := cd.EncodeIntra(nil, lists, opt)
				if err != nil {
					t.Fatalf("%s: encode intra: %v", name, err)
				}
				gi, err := cd.DecodeIntra(blob, size)
				if err != nil {
					t.Fatalf("%s: decode intra: %v", name, err)
				}
				if !listsEqual(gi.lists, lists) {
					t.Fatalf("%s: intra round trip mismatch", name)
				}

				njSize := int32(size + 7)
				tl := randLists(rng, size, njSize, density)
				srcs, nonEmpty := srcsAndLists(tl)
				blob, err = cd.EncodeSuperPos(nil, srcs, nonEmpty, int32(size), njSize, opt)
				if err != nil {
					t.Fatalf("%s: encode superPos: %v", name, err)
				}
				gp, err := cd.DecodeSuperPos(blob, len(srcs), int32(size), njSize)
				if err != nil {
					t.Fatalf("%s: decode superPos: %v", name, err)
				}
				if !reflect.DeepEqual(append([]int32{}, gp.srcs...), append([]int32{}, srcs...)) {
					t.Fatalf("%s: superPos srcs mismatch: %v vs %v", name, gp.srcs, srcs)
				}
				if !listsEqual(gp.lists, nonEmpty) {
					t.Fatalf("%s: superPos lists mismatch", name)
				}

				blob, err = cd.EncodeSuperNeg(nil, tl, njSize, opt)
				if err != nil {
					t.Fatalf("%s: encode superNeg: %v", name, err)
				}
				gn, err := cd.DecodeSuperNeg(blob, size, njSize)
				if err != nil {
					t.Fatalf("%s: decode superNeg: %v", name, err)
				}
				if !listsEqual(gn.lists, tl) {
					t.Fatalf("%s: superNeg round trip mismatch", name)
				}
			}
		}
	}
}

func listsEqual(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

func buildCodecRep(t testing.TB, codec string, pages int) (dir string) {
	t.Helper()
	crawl, err := synth.Generate(synth.DefaultConfig(pages))
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	cfg := DefaultConfig()
	cfg.Codec = codec
	if _, err := Build(crawl.Corpus, cfg, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCodecBuildEquivalence builds the same corpus under every codec
// setting (including auto) and pins: Verify passes, every page's full
// adjacency is row-identical to the paper build, and the artifact's
// recorded codec composition matches the setting.
func TestCodecBuildEquivalence(t *testing.T) {
	const pages = 900
	paperDir := buildCodecRep(t, CodecPaper, pages)
	paper, err := Open(paperDir, 1<<20, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	defer paper.Close()
	want, err := paper.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}

	for _, codec := range []string{CodecLZ, CodecLog, CodecAuto} {
		dir := buildCodecRep(t, codec, pages)
		r, err := Open(dir, 1<<20, iosim.Model2002())
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		if err := r.Verify(); err != nil {
			t.Fatalf("%s: verify: %v", codec, err)
		}
		got, err := r.DecodeAll()
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		for p := int32(0); p < int32(pages); p++ {
			if !reflect.DeepEqual(want.Out(p), got.Out(p)) {
				t.Fatalf("%s: page %d adjacency differs", codec, p)
			}
		}
		stats := r.Codecs()
		if len(stats) == 0 {
			t.Fatalf("%s: no codec stats recorded", codec)
		}
		if codec != CodecAuto {
			if len(stats) != 1 || stats[0].Name != codec {
				t.Fatalf("%s: recorded composition %+v", codec, stats)
			}
		}
		var sn int64
		for _, cs := range stats {
			sn += cs.Supernodes
			if cs.Name == "" || cs.Graphs <= 0 || cs.Bytes <= 0 {
				t.Fatalf("%s: degenerate codec stat %+v", codec, cs)
			}
		}
		if sn != int64(r.Supernodes()) {
			t.Fatalf("%s: codec stats cover %d of %d supernodes", codec, sn, r.Supernodes())
		}
		r.Close()
	}
}

// TestCodecMetaRoundTrip pins that per-entry codec IDs survive
// meta.bin serialization.
func TestCodecMetaRoundTrip(t *testing.T) {
	dir := buildCodecRep(t, CodecLZ, 400)
	m, err := readMeta(filepath.Join(dir, "meta.bin"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Directory {
		if m.Directory[i].Codec != codecIDLZ {
			t.Fatalf("directory entry %d codec %d, want %d", i, m.Directory[i].Codec, codecIDLZ)
		}
	}
	if len(m.Stats.Codecs) != 1 || m.Stats.Codecs[0].ID != codecIDLZ {
		t.Fatalf("codec stats %+v", m.Stats.Codecs)
	}
}

// TestCodecNamesRejected pins the config error path.
func TestCodecNamesRejected(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Codec = "zstd"
	if _, err := Build(crawl.Corpus, cfg, t.TempDir()); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestMeasureDecode exercises the bake-off instrument on a mixed
// artifact: every class reports positive graphs/bytes and a timing.
func TestMeasureDecode(t *testing.T) {
	dir := buildCodecRep(t, CodecAuto, 600)
	r, err := Open(dir, 1<<20, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	costs, err := r.MeasureDecode(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) == 0 {
		t.Fatal("no decode-cost rows")
	}
	var graphs int64
	for _, dc := range costs {
		if dc.Graphs <= 0 || dc.Bytes <= 0 || dc.Ns <= 0 {
			t.Fatalf("degenerate row %+v", dc)
		}
		graphs += dc.Graphs
	}
	if int(graphs) != len(r.m.Directory) {
		t.Fatalf("rows cover %d of %d graphs", graphs, len(r.m.Directory))
	}
}

// TestCorruptIndexAllCodecs extends the corruption harness to the lz
// and log builds: flipped payload bytes must never panic or escape the
// local ID bounds (checkLocalIDs is the oracle the fused checks are
// compared against).
func TestCorruptIndexAllCodecs(t *testing.T) {
	for _, codec := range []string{CodecLZ, CodecLog} {
		t.Run(codec, func(t *testing.T) {
			src := buildCodecRep(t, codec, 500)
			data, err := os.ReadFile(filepath.Join(src, "graphs.000"))
			if err != nil {
				t.Fatal(err)
			}
			for pos := 0; pos < len(data); pos += 67 {
				pos := pos
				dir := corruptCopy(t, src, func(d string) {
					g := append([]byte(nil), data...)
					g[pos] ^= 0xFF
					if err := os.WriteFile(filepath.Join(d, "graphs.000"), g, 0o644); err != nil {
						t.Fatal(err)
					}
				})
				tryOpenAndReadChecked(t, dir, codec+" index byte flip")
			}
		})
	}
}

// tryOpenAndReadChecked is tryOpenAndRead plus the bounds oracle: any
// graph that still decodes after corruption must keep every local ID
// inside its space (the fused checks' contract).
func tryOpenAndReadChecked(t *testing.T, dir string, tag string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panic: %v", tag, r)
		}
	}()
	rep, err := Open(dir, 1<<20, iosim.Model2002())
	if err != nil {
		return // rejected at open: fine
	}
	defer rep.Close()
	for gid := range rep.m.Directory {
		e := &rep.m.Directory[gid]
		g, err := rep.load(GraphID(gid))
		if err != nil {
			continue // rejected: fine
		}
		switch sg := g.(type) {
		case *decodedIntra:
			if err := checkLocalIDs(sg.lists, e.NumLists); err != nil {
				t.Fatalf("%s: graph %d: %v", tag, gid, err)
			}
		case *decodedSuperPos:
			niSize := rep.m.SnBase[e.I+1] - rep.m.SnBase[e.I]
			njSize := rep.m.SnBase[e.J+1] - rep.m.SnBase[e.J]
			if err := checkLocalIDs([][]int32{sg.srcs}, niSize); err != nil {
				t.Fatalf("%s: graph %d srcs: %v", tag, gid, err)
			}
			if err := checkLocalIDs(sg.lists, njSize); err != nil {
				t.Fatalf("%s: graph %d lists: %v", tag, gid, err)
			}
		case *decodedSuperNeg:
			njSize := rep.m.SnBase[e.J+1] - rep.m.SnBase[e.J]
			if err := checkLocalIDs(sg.lists, njSize); err != nil {
				t.Fatalf("%s: graph %d: %v", tag, gid, err)
			}
		}
	}
}

