package snode

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"snode/internal/coding"
	"snode/internal/metrics"
	"snode/internal/partition"
	"snode/internal/refenc"
	"snode/internal/trace"
	"snode/internal/webgraph"
	"snode/internal/workpool"
)

// Modeled repository-scan cost of streaming one supernode's pages and
// links out of the crawl store during encoding (mirrors the partition
// package's per-split scan accounting).
const (
	scanPageBytes = 16
	scanEdgeBytes = 8
)

// encodeFailHook, when non-nil, runs before each supernode encode and
// aborts it on error. Tests use it to prove the encode pipeline shuts
// down cleanly when every worker fails (the producer/worker deadlock
// the streaming assembly replaced).
var encodeFailHook func(s int32) error

// Build computes the partition, constructs the S-Node representation of
// the corpus graph, and writes it (index files plus meta.bin) into dir,
// which must exist and be empty or reusable.
func Build(c *webgraph.Corpus, cfg Config, dir string) (*BuildStats, error) {
	return BuildCtx(context.Background(), c, cfg, dir)
}

// BuildCtx is Build with request-scoped context: cancellation stops the
// refinement and encode stages between work items, and a trace carried
// by ctx records per-stage and per-round spans.
func BuildCtx(ctx context.Context, c *webgraph.Corpus, cfg Config, dir string) (*BuildStats, error) {
	start := time.Now()
	// The build-wide knobs flow into the refinement stage unless the
	// caller configured that stage explicitly.
	pc := cfg.Partition
	if pc.Workers == 0 {
		pc.Workers = cfg.BuildWorkers
	}
	if pc.IO == nil {
		pc.IO = cfg.BuildIO
	}
	if pc.Metrics == nil {
		pc.Metrics = cfg.Metrics
	}
	p, err := partition.RefineCtx(ctx, c, pc)
	if err != nil {
		return nil, err
	}
	return BuildFromPartitionCtx(ctx, c, p, cfg, dir, start)
}

// BuildFromPartition builds the representation from an already-computed
// partition (used by ablation benches that vary the partition).
func BuildFromPartition(c *webgraph.Corpus, p *partition.Partition, cfg Config, dir string, start time.Time) (*BuildStats, error) {
	return BuildFromPartitionCtx(context.Background(), c, p, cfg, dir, start)
}

// BuildFromPartitionCtx builds the representation from a partition with
// context, tracing, and metrics. Supernode encoding fans out over
// cfg.BuildWorkers while file assembly consumes the encoded blobs
// through a bounded in-order reorder window (workpool.Ordered), so
// assembly overlaps encoding and peak memory holds O(window) encoded
// supernodes instead of all of them. The artifacts are byte-identical
// for every worker count and window size.
func BuildFromPartitionCtx(ctx context.Context, c *webgraph.Corpus, p *partition.Partition, cfg Config, dir string, start time.Time) (*BuildStats, error) {
	if start.IsZero() {
		start = time.Now()
	}
	if cfg.MaxFileSize <= 0 {
		return nil, fmt.Errorf("snode: MaxFileSize must be positive")
	}
	ctx, span := trace.Start(ctx, "build")
	defer span.End()
	n := c.Graph.NumPages()

	// 1. Order supernodes by (domain, first page). Page IDs are sorted
	// by (domain, URL), so an element's smallest page ID yields exactly
	// that ordering and keeps each domain's supernodes contiguous.
	_, ospan := trace.Start(ctx, "build.order")
	order := make([]int, p.NumElements())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return p.Elements[order[a]].Pages[0] < p.Elements[order[b]].Pages[0]
	})

	m := &meta{
		NumPages: int32(n),
		NumEdges: c.Graph.NumEdges(),
		Perm:     make([]int32, n),
		Inv:      make([]int32, n),
		SnBase:   make([]int32, len(order)+1),
	}

	// 2. Renumber pages: supernodes in order, pages within an element in
	// URL order (== ascending external ID).
	next := int32(0)
	snOfInternal := make([]int32, n) // internal page → supernode
	for s, ei := range order {
		m.SnBase[s] = next
		for _, ext := range p.Elements[ei].Pages {
			m.Perm[ext] = next
			m.Inv[next] = ext
			snOfInternal[next] = int32(s)
			next++
		}
	}
	m.SnBase[len(order)] = next

	// 3. Domain index: domains are contiguous over supernodes.
	for s := range order {
		d := c.Pages[m.Inv[m.SnBase[s]]].Domain
		if len(m.Domains) == 0 || m.Domains[len(m.Domains)-1] != d {
			m.Domains = append(m.Domains, d)
			m.DomFirstSN = append(m.DomFirstSN, int32(s))
		}
	}
	m.DomFirstSN = append(m.DomFirstSN, int32(len(order)))
	ospan.SetAttr("supernodes", int64(len(order)))
	ospan.End()

	// 4. Encode lower-level graphs. Encoding is per-supernode
	// independent, so it fans out across the build workers; assembly
	// consumes the encoded blobs through a bounded in-order reorder
	// window (at most `window` encoded supernodes in flight), appending
	// them strictly in supernode order — the §3.3 linear disk layout
	// (intranode_i followed by its superedges, ascending j) comes out
	// bit-for-bit identical to a sequential build, while peak memory is
	// O(window) instead of O(supernodes).
	ectx, espan := trace.Start(ctx, "build.encode")
	out := newFileWriter(dir, cfg.MaxFileSize)
	nSN := len(order)
	superDeg := make([]int, nSN) // out-degree in the supernode graph
	inDeg := make([]int64, nSN)  // superedge in-degree, for Huffman codes

	pool := workpool.New(cfg.BuildWorkers)
	window := cfg.ReorderWindow
	if window <= 0 {
		window = 4 * pool.Workers()
	}
	var mEncoded, mSuperedges *metrics.Counter
	if cfg.Metrics != nil {
		mEncoded = cfg.Metrics.Counter("build_supernodes_encoded")
		mSuperedges = cfg.Metrics.Counter("build_superedges")
	}
	// Resolve the codec policy once: a fixed codec encodes every
	// supernode (byte-deterministic), while "auto" runs the
	// per-supernode bake-off inside each encode worker.
	autoCodec := cfg.Codec == CodecAuto
	var fixedCodec Codec
	if !autoCodec {
		var cerr error
		fixedCodec, cerr = codecByName(cfg.Codec)
		if cerr != nil {
			out.close()
			espan.End()
			return nil, cerr
		}
	}
	var codecAgg [numCodecs]CodecBuildStat
	encode := func(ctx context.Context, s int) (*encodedSupernode, error) {
		if hook := encodeFailHook; hook != nil {
			if err := hook(int32(s)); err != nil {
				return nil, err
			}
		}
		if cfg.BuildIO != nil {
			// Model streaming this supernode's pages and links out of the
			// crawl repository.
			var edges int64
			for it := m.SnBase[s]; it < m.SnBase[s+1]; it++ {
				edges += int64(len(c.Graph.Out(m.Inv[it])))
			}
			cfg.BuildIO.Scan(ctx, scanPageBytes*int64(m.SnBase[s+1]-m.SnBase[s])+scanEdgeBytes*edges)
		}
		p, err := gatherSupernode(c, m, cfg, snOfInternal, int32(s))
		if err != nil {
			return nil, err
		}
		var es *encodedSupernode
		if autoCodec {
			es, err = bakeOffSupernode(p, cfg.Refenc)
		} else {
			es, err = encodePayloads(fixedCodec, p, cfg.Refenc)
		}
		if err != nil {
			return nil, err
		}
		if mEncoded != nil {
			mEncoded.Inc()
		}
		return es, nil
	}
	assemble := func(s int, es *encodedSupernode) error {
		agg := &codecAgg[es.codec]
		agg.Supernodes++
		gid, err := out.addBlob(es.intraBlob, dirEntry{
			Kind: kindIntra, I: int32(s), J: -1, NumLists: m.SnBase[s+1] - m.SnBase[s],
			Codec: es.codec,
		})
		if err != nil {
			return err
		}
		agg.Graphs++
		agg.Bytes += int64(len(es.intraBlob))
		agg.Edges += es.intraEdges
		m.IntraGID = append(m.IntraGID, gid)
		m.SuperOff = append(m.SuperOff, int64(len(m.SuperAdj)))
		for _, sb := range es.supers {
			e := dirEntry{Kind: sb.kind, I: int32(s), J: sb.j, NumLists: sb.numLists, Codec: es.codec}
			gid, err := out.addBlob(sb.blob, e)
			if err != nil {
				return err
			}
			agg.Graphs++
			agg.Bytes += int64(len(sb.blob))
			agg.Edges += sb.edges
			m.SuperAdj = append(m.SuperAdj, sb.j)
			m.SuperGID = append(m.SuperGID, gid)
			superDeg[s]++
			inDeg[sb.j]++
			m.Stats.Superedges++
			if sb.kind == kindSuperNeg {
				m.Stats.NegativeSuperedges++
			} else {
				m.Stats.PositiveSuperedges++
			}
		}
		if mSuperedges != nil {
			mSuperedges.Add(int64(len(es.supers)))
		}
		return nil
	}
	if err := workpool.Ordered(ectx, pool, nSN, window, encode, assemble); err != nil {
		out.close()
		espan.End()
		return nil, err
	}
	m.SuperOff = append(m.SuperOff, int64(len(m.SuperAdj)))
	for id, agg := range codecAgg {
		if agg.Supernodes == 0 {
			continue
		}
		agg.ID = uint8(id)
		agg.Name = codecTable[id].Name()
		m.Stats.Codecs = append(m.Stats.Codecs, agg)
	}
	m.Directory = out.entries
	m.FileSizes = out.sizes()
	if err := out.close(); err != nil {
		return nil, err
	}
	espan.SetAttr("superedges", m.Stats.Superedges)
	espan.End()

	_, fspan := trace.Start(ctx, "build.finalize")
	defer fspan.End()

	// 5. Supernode graph size under the §3.3 encoding: Huffman codes by
	// in-degree for the targets, gamma-coded degrees, plus a 4-byte
	// pointer per vertex and per edge (Figure 10 accounting). The
	// decoded form lives in meta; this computes the size the paper
	// reports.
	for i := range inDeg {
		inDeg[i]++ // smoothing so zero-in-degree supernodes get codes
	}
	huff, err := coding.NewHuffman(inDeg)
	if err != nil {
		return nil, err
	}
	var superBits int64
	for s := 0; s < nSN; s++ {
		superBits += int64(coding.Gamma0Len(uint64(superDeg[s])))
	}
	for _, j := range m.SuperAdj {
		superBits += int64(huff.CodeLen(j))
	}
	m.Stats.Supernodes = nSN
	m.Stats.SupernodeGraphBytes = (superBits+7)/8 + 4*int64(nSN) + 4*int64(len(m.SuperAdj))
	for _, sz := range m.FileSizes {
		m.Stats.IndexFileBytes += sz
	}
	m.Stats.PageIDIndexBytes = 4 * int64(len(m.SnBase))
	for _, d := range m.Domains {
		m.Stats.DomainIndexBytes += int64(len(d)) + 4
	}
	m.Stats.URLSplits = p.URLSplits
	m.Stats.ClusteredSplits = p.ClusteredSplits

	// meta.bin is written with BuildTime zero so that two builds of the
	// same corpus produce byte-identical artifacts (the determinism
	// tests golden-hash every output file); wall time goes only into the
	// returned stats.
	if err := writeMeta(filepath.Join(dir, "meta.bin"), m); err != nil {
		return nil, err
	}
	stats := m.Stats
	stats.BuildTime = time.Since(start)
	return &stats, nil
}

// encodedSupernode holds one supernode's encoded graphs between the
// parallel encode stage and the sequential assembly stage.
type encodedSupernode struct {
	codec      uint8
	intraBlob  []byte
	intraEdges int64
	supers     []encodedSuper
}

type encodedSuper struct {
	j        int32
	kind     uint8
	numLists int32
	njSize   int32 // |Nj|, needed to decode during the bake-off
	edges    int64 // stored (list) edges, for per-codec stats
	blob     []byte
}

func (es *encodedSupernode) totalBytes() int64 {
	n := int64(len(es.intraBlob))
	for _, sb := range es.supers {
		n += int64(len(sb.blob))
	}
	return n
}

// snPayloads is one supernode's graphs in decoded form, ready to encode
// under any codec: the intranode lists plus one payload per superedge
// with the §2 pos/neg choice already made (the choice counts edges, not
// bytes, so it is codec-independent).
type snPayloads struct {
	size   int32 // |Ni|
	intra  [][]int32
	supers []superPayload
}

type superPayload struct {
	j        int32
	kind     uint8
	srcs     []int32 // superPos only
	lists    [][]int32
	numLists int32
	njSize   int32
	edges    int64
}

// gatherSupernode buckets supernode s's links into the intranode graph
// plus per-target-supernode payloads. It touches only immutable build
// state (graph, permutation, SnBase), so it is safe to run concurrently
// per supernode.
func gatherSupernode(c *webgraph.Corpus, m *meta, cfg Config, snOfInternal []int32, s int32) (*snPayloads, error) {
	base := m.SnBase[s]
	size := m.SnBase[s+1] - base

	// Bucket this supernode's links: intranode + per-target-supernode.
	intra := make([][]int32, size)
	buckets := map[int32][][]int32{} // j → per-source lists (sparse)
	bucketSrcs := map[int32][]int32{}
	var jOrder []int32
	for local := int32(0); local < size; local++ {
		ext := m.Inv[base+local]
		for _, tExt := range c.Graph.Out(ext) {
			tInt := m.Perm[tExt]
			j := snOfInternal[tInt]
			tLocal := tInt - m.SnBase[j]
			if j == s {
				intra[local] = append(intra[local], tLocal)
				continue
			}
			if _, ok := buckets[j]; !ok {
				jOrder = append(jOrder, j)
			}
			ls := bucketSrcs[j]
			if len(ls) == 0 || ls[len(ls)-1] != local {
				bucketSrcs[j] = append(ls, local)
				buckets[j] = append(buckets[j], nil)
			}
			bl := buckets[j]
			bl[len(bl)-1] = append(bl[len(bl)-1], tLocal)
		}
	}
	// Adjacency lists arrive in ascending external-target order; local
	// IDs within one bucket are therefore already sorted.

	p := &snPayloads{size: size, intra: intra}
	sort.Slice(jOrder, func(a, b int) bool { return jOrder[a] < jOrder[b] })
	for _, j := range jOrder {
		srcs := bucketSrcs[j]
		lists := buckets[j]
		var posEdges int64
		for _, l := range lists {
			posEdges += int64(len(l))
		}
		njSize := int64(m.SnBase[j+1] - m.SnBase[j])
		negEdges := int64(size)*njSize - posEdges

		sp := superPayload{j: j, njSize: int32(njSize)}
		if !cfg.DisableNegative && negEdges < posEdges {
			// Negative graph: complement lists for every page of Ni.
			comps := make([][]int32, size)
			si := 0
			for local := int32(0); local < size; local++ {
				var pos []int32
				if si < len(srcs) && srcs[si] == local {
					pos = lists[si]
					si++
				}
				comps[local] = complement(pos, int32(njSize))
			}
			sp.kind = kindSuperNeg
			sp.lists = comps
			sp.numLists = size
			sp.edges = negEdges
		} else {
			sp.kind = kindSuperPos
			sp.srcs = srcs
			sp.lists = lists
			sp.numLists = int32(len(srcs))
			sp.edges = posEdges
		}
		p.supers = append(p.supers, sp)
	}
	return p, nil
}

// encodePayloads encodes every graph of one supernode under cd.
func encodePayloads(cd Codec, p *snPayloads, opt refenc.Options) (*encodedSupernode, error) {
	es := &encodedSupernode{codec: cd.ID()}
	blob, err := cd.EncodeIntra(nil, p.intra, opt)
	if err != nil {
		return nil, err
	}
	es.intraBlob = blob
	for _, l := range p.intra {
		es.intraEdges += int64(len(l))
	}
	for _, sp := range p.supers {
		var blob []byte
		if sp.kind == kindSuperNeg {
			blob, err = cd.EncodeSuperNeg(nil, sp.lists, sp.njSize, opt)
		} else {
			blob, err = cd.EncodeSuperPos(nil, sp.srcs, sp.lists, p.size, sp.njSize, opt)
		}
		if err != nil {
			return nil, err
		}
		es.supers = append(es.supers, encodedSuper{
			j: sp.j, kind: sp.kind, numLists: sp.numLists, njSize: sp.njSize,
			edges: sp.edges, blob: blob,
		})
	}
	return es, nil
}

// bakeOffRounds is how many times the bake-off decodes each candidate
// encoding; the minimum round is the score's time term, damping
// scheduler noise.
const bakeOffRounds = 3

// measureDecode decodes every blob of the candidate once per round and
// returns the fastest round in nanoseconds. It doubles as a round-trip
// guard: an encoding its own codec cannot decode fails the build.
func (es *encodedSupernode) measureDecode(niSize int32, rounds int) (int64, error) {
	cd := codecTable[es.codec]
	best := int64(-1)
	for round := 0; round < rounds; round++ {
		start := time.Now()
		if _, err := cd.DecodeIntra(es.intraBlob, int(niSize)); err != nil {
			return 0, err
		}
		for _, sb := range es.supers {
			var err error
			if sb.kind == kindSuperNeg {
				_, err = cd.DecodeSuperNeg(sb.blob, int(sb.numLists), sb.njSize)
			} else {
				_, err = cd.DecodeSuperPos(sb.blob, int(sb.numLists), niSize, sb.njSize)
			}
			if err != nil {
				return 0, err
			}
		}
		if ns := time.Since(start).Nanoseconds(); best < 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// bakeOffSupernode encodes the supernode under every registered codec,
// scores each candidate by encoded size x fastest decode time, and
// returns the winner (ties break to fewer bytes, then lower codec ID —
// so the paper codec wins exact ties).
func bakeOffSupernode(p *snPayloads, opt refenc.Options) (*encodedSupernode, error) {
	var best *encodedSupernode
	var bestScore float64
	var bestBytes int64
	for _, cd := range codecTable {
		es, err := encodePayloads(cd, p, opt)
		if err != nil {
			return nil, err
		}
		total := es.totalBytes()
		ns, err := es.measureDecode(p.size, bakeOffRounds)
		if err != nil {
			return nil, err
		}
		score := float64(total) * float64(ns)
		if best == nil || score < bestScore || (score == bestScore && total < bestBytes) {
			best, bestScore, bestBytes = es, score, total
		}
	}
	return best, nil
}

// fileWriter appends byte-aligned encoded graphs to a sequence of index
// files, each at most maxSize bytes, and records directory entries.
type fileWriter struct {
	dir     string
	maxSize int64
	entries []dirEntry

	cur     *os.File
	bw      *bufio.Writer
	curIdx  int32
	curSize int64
	allSize []int64
	err     error
}

func newFileWriter(dir string, maxSize int64) *fileWriter {
	return &fileWriter{dir: dir, maxSize: maxSize, curIdx: -1}
}

func indexFileName(dir string, idx int32) string {
	return filepath.Join(dir, fmt.Sprintf("graphs.%03d", idx))
}

func (fw *fileWriter) roll() error {
	if fw.cur != nil {
		if err := fw.bw.Flush(); err != nil {
			return err
		}
		if err := fw.cur.Close(); err != nil {
			return err
		}
		fw.allSize = append(fw.allSize, fw.curSize)
	}
	fw.curIdx++
	f, err := os.Create(indexFileName(fw.dir, fw.curIdx))
	if err != nil {
		return err
	}
	fw.cur = f
	fw.bw = bufio.NewWriterSize(f, 1<<20)
	fw.curSize = 0
	return nil
}

// addBlob writes an encoded graph as the next entry and returns its
// GraphID. A graph always lives entirely within one file (§3.3); files
// roll when the current one would exceed maxSize.
func (fw *fileWriter) addBlob(buf []byte, e dirEntry) (GraphID, error) {
	if fw.cur == nil || (fw.curSize > 0 && fw.curSize+int64(len(buf)) > fw.maxSize) {
		if err := fw.roll(); err != nil {
			return 0, err
		}
	}
	e.File = fw.curIdx
	e.Offset = fw.curSize
	e.NumBytes = int32(len(buf))
	if _, err := fw.bw.Write(buf); err != nil {
		return 0, err
	}
	fw.curSize += int64(len(buf))
	fw.entries = append(fw.entries, e)
	return GraphID(len(fw.entries) - 1), nil
}

func (fw *fileWriter) sizes() []int64 {
	out := append([]int64(nil), fw.allSize...)
	if fw.cur != nil {
		out = append(out, fw.curSize)
	}
	return out
}

func (fw *fileWriter) close() error {
	if fw.cur == nil {
		return nil
	}
	if err := fw.bw.Flush(); err != nil {
		return err
	}
	return fw.cur.Close()
}
