package snode

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"snode/internal/iosim"
	"snode/internal/partition"
	"snode/internal/randutil"
	"snode/internal/refenc"
	"snode/internal/webgraph"
)

// randomCorpus builds a small corpus with arbitrary (non-web-like)
// structure: random domains, random URL trees, random edges including
// self-loops and dense pockets. The representation must round-trip ANY
// directed graph, not just crawl-shaped ones.
func randomCorpus(rng *randutil.RNG) *webgraph.Corpus {
	n := 40 + rng.Intn(160)
	nDomains := 1 + rng.Intn(6)
	pages := make([]webgraph.PageMeta, n)
	// Contiguous domains with sorted URLs, as the builder requires of
	// its input ordering.
	p := 0
	for d := 0; d < nDomains && p < n; d++ {
		size := 1 + rng.Intn(n/nDomains+1)
		if d == nDomains-1 {
			size = n - p
		}
		for k := 0; k < size && p < n; k++ {
			dom := fmt.Sprintf("d%02d.com", d)
			depth := rng.Intn(3)
			path := ""
			for l := 0; l < depth; l++ {
				path += fmt.Sprintf("/l%d", rng.Intn(3))
			}
			pages[p] = webgraph.PageMeta{
				URL:    fmt.Sprintf("http://www.%s%s/p%05d.html", dom, path, p),
				Domain: dom,
			}
			p++
		}
	}
	b := webgraph.NewBuilder(n)
	nEdges := rng.Intn(n * 6)
	for e := 0; e < nEdges; e++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	// A dense pocket to exercise negative superedge graphs.
	if n > 20 && rng.Bool(0.5) {
		for i := 0; i < 8; i++ {
			for j := n - 8; j < n; j++ {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return &webgraph.Corpus{Graph: b.Build(), Pages: pages}
}

func randomConfig(rng *randutil.RNG) Config {
	cfg := DefaultConfig()
	cfg.Partition.Seed = rng.Uint64()
	cfg.Partition.MinSplitSize = 4 + rng.Intn(64)
	cfg.Partition.MaxURLDepth = rng.Intn(4)
	cfg.Refenc = refenc.Options{Window: rng.Intn(16)}
	if rng.Bool(0.2) {
		cfg.Refenc.Exact = true
	}
	cfg.MaxFileSize = int64(1+rng.Intn(64)) << 10
	cfg.DisableNegative = rng.Bool(0.3)
	return cfg
}

// TestQuickRandomGraphRoundTrip: for arbitrary graphs, partitions, and
// codec options, the representation reproduces every adjacency list.
func TestQuickRandomGraphRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := randutil.NewRNG(seed)
		c := randomCorpus(rng)
		cfg := randomConfig(rng)
		dir := t.TempDir()
		if _, err := Build(c, cfg, dir); err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		budget := int64(1) << uint(10+rng.Intn(12)) // 1 KB .. 2 MB
		rep, err := Open(dir, budget, iosim.Model2002())
		if err != nil {
			t.Logf("seed %d: open: %v", seed, err)
			return false
		}
		defer rep.Close()
		var buf []webgraph.PageID
		for p := int32(0); int(p) < c.Graph.NumPages(); p++ {
			buf, err = rep.Out(p, buf[:0])
			if err != nil {
				t.Logf("seed %d: out(%d): %v", seed, p, err)
				return false
			}
			got := append([]webgraph.PageID(nil), buf...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			want := c.Graph.Out(p)
			if len(got) != len(want) {
				t.Logf("seed %d: page %d: %d targets, want %d", seed, p, len(got), len(want))
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					t.Logf("seed %d: page %d mismatch", seed, p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPartitionOrderInsensitive: the representation's answers are
// identical regardless of the partition used to build it.
func TestQuickPartitionInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := randutil.NewRNG(seed)
		c := randomCorpus(rng)
		// Two builds: refined partition vs P0 only.
		dirA, dirB := t.TempDir(), t.TempDir()
		if _, err := Build(c, DefaultConfig(), dirA); err != nil {
			return false
		}
		p0 := partition.InitialByDomain(c)
		if _, err := BuildFromPartition(c, p0, DefaultConfig(), dirB, timeNow()); err != nil {
			return false
		}
		a, err := Open(dirA, 1<<20, iosim.Model2002())
		if err != nil {
			return false
		}
		defer a.Close()
		bRep, err := Open(dirB, 1<<20, iosim.Model2002())
		if err != nil {
			return false
		}
		defer bRep.Close()
		var bufA, bufB []webgraph.PageID
		for p := int32(0); int(p) < c.Graph.NumPages(); p += 3 {
			bufA, _ = a.Out(p, bufA[:0])
			bufB, _ = bRep.Out(p, bufB[:0])
			if len(bufA) != len(bufB) {
				return false
			}
			sort.Slice(bufA, func(i, j int) bool { return bufA[i] < bufA[j] })
			sort.Slice(bufB, func(i, j int) bool { return bufB[i] < bufB[j] })
			for i := range bufA {
				if bufA[i] != bufB[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// timeNow is a tiny indirection so property tests can call
// BuildFromPartition without importing time at every call site.
func timeNow() time.Time { return time.Now() }
