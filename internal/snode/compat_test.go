package snode

import (
	"bufio"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"snode/internal/iosim"
)

// Backward compatibility: artifacts written before pluggable codecs
// (meta version 1, no codec IDs anywhere) must open and serve exactly
// as codec/paper, and artifacts from a future format must be rejected
// with explicit errors — unknown version, unknown codec ID.

// writeMetaV1 serializes m in the exact pre-codec version-1 layout:
// no per-entry codec byte, no codec stats section. The test owns this
// writer so the layout stays pinned even as writeMeta evolves.
func writeMetaV1(t *testing.T, path string, m *meta) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	mw := &metaWriter{w: bufio.NewWriterSize(f, 1<<20)}
	mw.uvarint(metaMagic)
	mw.uvarint(metaVersion1)
	mw.varint(int64(m.NumPages))
	mw.varint(m.NumEdges)
	mw.i32s(m.Perm)
	mw.i32s(m.Inv)
	mw.i32s(m.SnBase)
	mw.uvarint(uint64(len(m.Domains)))
	for _, d := range m.Domains {
		mw.str(d)
	}
	mw.i32s(m.DomFirstSN)
	mw.i64s(m.SuperOff)
	mw.i32s(m.SuperAdj)
	mw.i32s(m.SuperGID)
	mw.i32s(m.IntraGID)
	mw.uvarint(uint64(len(m.Directory)))
	for _, e := range m.Directory {
		mw.uvarint(uint64(e.Kind))
		mw.varint(int64(e.I))
		mw.varint(int64(e.J))
		mw.varint(int64(e.File))
		mw.varint(e.Offset)
		mw.varint(int64(e.NumBytes))
		mw.varint(int64(e.NumLists))
	}
	mw.i64s(m.FileSizes)
	st := &m.Stats
	mw.varint(int64(st.Supernodes))
	mw.varint(st.Superedges)
	mw.varint(st.SupernodeGraphBytes)
	mw.varint(st.IndexFileBytes)
	mw.varint(st.PageIDIndexBytes)
	mw.varint(st.DomainIndexBytes)
	mw.varint(st.PositiveSuperedges)
	mw.varint(st.NegativeSuperedges)
	mw.varint(int64(st.URLSplits))
	mw.varint(int64(st.ClusteredSplits))
	mw.varint(int64(st.BuildTime))
	if mw.err != nil {
		t.Fatal(mw.err)
	}
	if err := mw.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLegacyMetaV1ServesAsPaper downgrades a paper-codec artifact's
// meta.bin to version 1 and pins that it opens, verifies, and serves
// row-identically to the v2 artifact — the paper-codec payload bytes
// themselves are version-independent.
func TestLegacyMetaV1ServesAsPaper(t *testing.T) {
	src := buildCodecRep(t, CodecPaper, 700)
	m, err := readMeta(filepath.Join(src, "meta.bin"))
	if err != nil {
		t.Fatal(err)
	}
	legacy := corruptCopy(t, src, func(d string) {
		writeMetaV1(t, filepath.Join(d, "meta.bin"), m)
	})

	want, err := Open(src, 1<<20, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	got, err := Open(legacy, 1<<20, iosim.Model2002())
	if err != nil {
		t.Fatalf("v1 artifact rejected: %v", err)
	}
	defer got.Close()

	if err := got.Verify(); err != nil {
		t.Fatalf("v1 verify: %v", err)
	}
	for i := range got.m.Directory {
		if got.m.Directory[i].Codec != codecIDPaper {
			t.Fatalf("v1 entry %d read back codec %d", i, got.m.Directory[i].Codec)
		}
	}
	wg, err := want.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	gg, err := got.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	for p := int32(0); p < int32(want.NumPages()); p++ {
		if !reflect.DeepEqual(wg.Out(p), gg.Out(p)) {
			t.Fatalf("page %d adjacency differs between v1 and v2 reads", p)
		}
	}
	// The synthesized composition record: all supernodes paper, edge
	// counts unknown (zero) because v1 never recorded them.
	cs := got.Codecs()
	if len(cs) != 1 || cs[0].Name != CodecPaper ||
		cs[0].Supernodes != int64(got.Supernodes()) || cs[0].Edges != 0 {
		t.Fatalf("synthesized v1 codec stats %+v", cs)
	}
}

// TestUnknownCodecIDRejected flips one directory entry to a codec ID
// from the future and pins the explicit open-time error.
func TestUnknownCodecIDRejected(t *testing.T) {
	src := buildCodecRep(t, CodecPaper, 400)
	m, err := readMeta(filepath.Join(src, "meta.bin"))
	if err != nil {
		t.Fatal(err)
	}
	m.Directory[len(m.Directory)/2].Codec = 9
	bad := corruptCopy(t, src, func(d string) {
		if err := writeMeta(filepath.Join(d, "meta.bin"), m); err != nil {
			t.Fatal(err)
		}
	})
	_, err = Open(bad, 1<<20, iosim.Model2002())
	if err == nil {
		t.Fatal("unknown codec ID accepted")
	}
	if got := err.Error(); !contains(got, "unknown codec ID 9") {
		t.Fatalf("error %q does not name the codec ID", got)
	}
}

// TestUnknownMetaVersionRejected bumps the version field past
// metaVersion and pins the explicit error.
func TestUnknownMetaVersionRejected(t *testing.T) {
	src := buildCodecRep(t, CodecPaper, 400)
	raw, err := os.ReadFile(filepath.Join(src, "meta.bin"))
	if err != nil {
		t.Fatal(err)
	}
	// The header is uvarint magic then uvarint version; metaVersion (2)
	// encodes as one byte directly after the magic's varint bytes.
	magicLen := uvarintLen(metaMagic)
	if raw[magicLen] != metaVersion {
		t.Fatalf("meta.bin version byte is %d, want %d", raw[magicLen], metaVersion)
	}
	raw[magicLen] = metaVersion + 1
	bad := corruptCopy(t, src, func(d string) {
		if err := os.WriteFile(filepath.Join(d, "meta.bin"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	_, err = Open(bad, 1<<20, iosim.Model2002())
	if err == nil {
		t.Fatal("future meta version accepted")
	}
	if got := err.Error(); !contains(got, "unsupported version") {
		t.Fatalf("error %q does not name the version problem", got)
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
