package snode

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snode/internal/store"
	"snode/internal/webgraph"
)

// stressDeadline bounds the mixed-workload stress test: long enough to
// push the sharded cache through many evict/reset cycles under -race,
// short enough for the tier-1 suite.
const stressDeadline = 2200 * time.Millisecond

// TestConcurrentMixedWorkload hammers one shared Representation with 32
// goroutines running the full read API — Out, OutFiltered by domain and
// by page set, batched ParallelNeighbors, stats reads — while two of
// them periodically reset stats and the cache. Every adjacency answer
// is checked against the source graph; run under -race this is the
// suite's main data-race detector for the serving path.
func TestConcurrentMixedWorkload(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 256<<10) // small budget: constant eviction pressure
	n := int32(c.Graph.NumPages())

	checkOut := func(tt *testing.T, p webgraph.PageID, got []webgraph.PageID) {
		want := c.Graph.Out(p)
		g := sortedCopy(got)
		if len(g) != len(want) {
			tt.Errorf("page %d: %d targets, want %d", p, len(g), len(want))
			return
		}
		for i := range want {
			if g[i] != want[i] {
				tt.Errorf("page %d target %d: got %d, want %d", p, i, g[i], want[i])
				return
			}
		}
	}

	const goroutines = 32
	deadline := time.Now().Add(stressDeadline)
	var ops atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			var buf []webgraph.PageID
			for time.Now().Before(deadline) {
				ops.Add(1)
				p := webgraph.PageID(rng.Int31n(n))
				switch op := rng.Intn(10); {
				case op < 4: // plain Out
					var err error
					buf, err = r.Out(p, buf[:0])
					if err != nil {
						t.Errorf("Out(%d): %v", p, err)
						return
					}
					checkOut(t, p, buf)
				case op < 6: // OutFiltered by domain
					d := c.Pages[rng.Int31n(n)].Domain
					f := &store.Filter{Domains: map[string]bool{d: true}}
					var err error
					buf, err = r.OutFiltered(p, f, buf[:0])
					if err != nil {
						t.Errorf("OutFiltered(%d, %s): %v", p, d, err)
						return
					}
					for _, tgt := range buf {
						if c.Pages[tgt].Domain != d {
							t.Errorf("page %d: filter leaked target %d (domain %s)",
								p, tgt, c.Pages[tgt].Domain)
							return
						}
					}
				case op < 7: // OutFiltered by page set
					want := c.Graph.Out(p)
					pages := map[webgraph.PageID]bool{}
					for _, tgt := range want {
						if rng.Intn(2) == 0 {
							pages[tgt] = true
						}
					}
					if len(pages) == 0 {
						continue
					}
					f := &store.Filter{Pages: pages}
					var err error
					buf, err = r.OutFiltered(p, f, buf[:0])
					if err != nil {
						t.Errorf("OutFiltered(%d, pages): %v", p, err)
						return
					}
					if len(buf) != len(pages) {
						t.Errorf("page %d: page-set filter returned %d of %d",
							p, len(buf), len(pages))
						return
					}
				case op < 8: // batched lookup
					ps := make([]webgraph.PageID, 8)
					for i := range ps {
						ps[i] = webgraph.PageID(rng.Int31n(n))
					}
					lists, err := r.ParallelNeighbors(context.Background(), ps, 2)
					if err != nil {
						t.Errorf("ParallelNeighbors: %v", err)
						return
					}
					for i, l := range lists {
						checkOut(t, ps[i], l)
					}
				case op < 9: // stats readers
					st := r.StatsExt()
					if st.Cache.Hits < 0 || st.Cache.Loads < 0 {
						t.Error("negative cache counters")
						return
					}
					_ = r.Stats()
					_ = r.DecodedEdges()
				default: // mutators, on two goroutines only
					if w == 0 {
						r.ResetStats()
					} else if w == 1 {
						r.ResetCache(int64(128<<10) << rng.Intn(3))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	t.Logf("mixed workload: %d operations across %d goroutines", ops.Load(), goroutines)
}

// neededGraphs returns the GraphIDs the representation must load to
// answer Out(p) — the intranode graph of p's supernode plus every
// out-superedge graph.
func neededGraphs(r *Representation, p webgraph.PageID) []GraphID {
	i := r.snOf(r.m.Perm[p])
	gids := []GraphID{r.m.IntraGID[i]}
	for k := r.m.SuperOff[i]; k < r.m.SuperOff[i+1]; k++ {
		gids = append(gids, r.m.SuperGID[k])
	}
	return gids
}

// TestSingleflightDecodeDedup releases 32 goroutines at once against a
// cold cache, all asking for the same page: the buffer manager must
// perform exactly one decode per needed graph, no matter how the
// goroutines interleave.
func TestSingleflightDecodeDedup(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 32<<20)

	// Pick the page whose supernode has the most superedge graphs, so
	// the dedup covers span reads too.
	var page webgraph.PageID
	best := -1
	for p := int32(0); int(p) < c.Graph.NumPages(); p += 101 {
		if n := len(neededGraphs(r, p)); n > best {
			best, page = n, p
		}
	}
	need := int64(best)

	for trial := 0; trial < 3; trial++ {
		r.ResetCache(32 << 20)
		const goroutines = 32
		start := make(chan struct{})
		var wg sync.WaitGroup
		results := make([][]webgraph.PageID, goroutines)
		errs := make([]error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				results[g], errs[g] = r.Out(page, nil)
			}(g)
		}
		close(start)
		wg.Wait()
		want := c.Graph.Out(page)
		for g := 0; g < goroutines; g++ {
			if errs[g] != nil {
				t.Fatalf("trial %d goroutine %d: %v", trial, g, errs[g])
			}
			got := sortedCopy(results[g])
			if len(got) != len(want) {
				t.Fatalf("trial %d goroutine %d: %d targets, want %d",
					trial, g, len(got), len(want))
			}
		}
		st := r.StatsExt().Cache
		if st.Loads != need {
			t.Fatalf("trial %d: %d loads for %d needed graphs — concurrent decodes not deduplicated",
				trial, st.Loads, need)
		}
		if got := st.Hits + st.Misses; got < int64(32) {
			t.Fatalf("trial %d: Hits+Misses = %d, want >= one lookup per goroutine", trial, got)
		}
	}
}

// TestParallelNeighborsMatchesSerial checks the batched lookup against
// per-page serial Out for several worker counts.
func TestParallelNeighborsMatchesSerial(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 4<<20)
	var ps []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p += 23 {
		ps = append(ps, p)
	}
	for _, workers := range []int{1, 4, 32} {
		lists, err := r.ParallelNeighbors(context.Background(), ps, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(lists) != len(ps) {
			t.Fatalf("workers=%d: %d lists for %d pages", workers, len(lists), len(ps))
		}
		for i, p := range ps {
			got := sortedCopy(lists[i])
			want := c.Graph.Out(p)
			if len(got) != len(want) {
				t.Fatalf("workers=%d page %d: %d targets, want %d", workers, p, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("workers=%d page %d target %d: got %d, want %d",
						workers, p, k, got[k], want[k])
				}
			}
		}
	}
}

// TestParallelNeighborsFilteredMatchesSerial checks the filtered batch
// path against OutFiltered.
func TestParallelNeighborsFilteredMatchesSerial(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 4<<20)
	f := &store.Filter{Domains: map[string]bool{c.Pages[0].Domain: true}}
	var ps []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p += 41 {
		ps = append(ps, p)
	}
	lists, err := r.ParallelNeighborsFiltered(context.Background(), ps, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf []webgraph.PageID
	for i, p := range ps {
		buf, err = r.OutFiltered(p, f, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		got, want := sortedCopy(lists[i]), sortedCopy(buf)
		if len(got) != len(want) {
			t.Fatalf("page %d: %d filtered targets, want %d", p, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("page %d filtered target %d: got %d, want %d", p, k, got[k], want[k])
			}
		}
	}
}
