package snode

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

var (
	testCorpus *webgraph.Corpus
	testDir    string
	testStats  *BuildStats
)

// buildOnce builds one representation shared by the read-only tests.
func buildOnce(t testing.TB) (*webgraph.Corpus, string) {
	t.Helper()
	if testDir != "" {
		return testCorpus, testDir
	}
	crawl, err := synth.Generate(synth.DefaultConfig(6000))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	testCorpus = crawl.Corpus
	dir, err := os.MkdirTemp("", "snode-test-*")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxFileSize = 8 << 10 // exercise the multi-file layout
	st, err := Build(testCorpus, cfg, dir)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	testStats = st
	testDir = dir
	return testCorpus, testDir
}

func openRep(t testing.TB, budget int64) *Representation {
	t.Helper()
	_, dir := buildOnce(t)
	r, err := Open(dir, budget, iosim.Model2002())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func sortedCopy(xs []webgraph.PageID) []webgraph.PageID {
	out := append([]webgraph.PageID(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestRoundTripAllAdjacencyLists(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 32<<20)
	var buf []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p++ {
		var err error
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			t.Fatalf("Out(%d): %v", p, err)
		}
		got := sortedCopy(buf)
		want := c.Graph.Out(p)
		if len(got) != len(want) {
			t.Fatalf("page %d: %d targets, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("page %d target %d: got %d, want %d", p, i, got[i], want[i])
			}
		}
	}
}

func TestRoundTripUnderTinyCache(t *testing.T) {
	// A 64 KB budget forces constant eviction; results must not change.
	c, _ := buildOnce(t)
	r := openRep(t, 64<<10)
	var buf []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p += 37 {
		var err error
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			t.Fatalf("Out(%d): %v", p, err)
		}
		got := sortedCopy(buf)
		want := c.Graph.Out(p)
		if len(got) != len(want) {
			t.Fatalf("page %d under tiny cache: %d targets, want %d", p, len(got), len(want))
		}
	}
	if r.StatsExt().Cache.Evictions == 0 {
		t.Fatal("tiny cache never evicted; test is not exercising replacement")
	}
}

func TestDecodeAllEqualsSource(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 64<<20)
	g, err := r.DecodeAll()
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if !g.Equal(c.Graph) {
		t.Fatal("decoded graph differs from source")
	}
}

func TestBuildStatsSanity(t *testing.T) {
	_, _ = buildOnce(t)
	st := testStats
	if st.Supernodes < 10 {
		t.Fatalf("only %d supernodes", st.Supernodes)
	}
	if st.Superedges == 0 || st.PositiveSuperedges+st.NegativeSuperedges != st.Superedges {
		t.Fatalf("superedge counts inconsistent: %+v", st)
	}
	if st.IndexFileBytes == 0 || st.SupernodeGraphBytes == 0 {
		t.Fatalf("zero sizes: %+v", st)
	}
	if st.SizeBytes() <= st.IndexFileBytes {
		t.Fatal("SizeBytes must include in-memory structures")
	}
}

func TestCompressionBeatsRawPointers(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 32<<20)
	bpe := store.BitsPerEdge(r, c.Graph.NumEdges())
	if bpe <= 0 || bpe >= 32 {
		t.Fatalf("bits/edge = %.2f, expected well under a 32-bit pointer", bpe)
	}
	t.Logf("snode bits/edge = %.2f", bpe)
}

func TestDomainIndex(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 32<<20)
	lo, hi, ok := r.DomainSupernodes("stanford.edu")
	if !ok || hi <= lo {
		t.Fatalf("stanford.edu supernode range: %d..%d ok=%v", lo, hi, ok)
	}
	// Every page in those supernodes must be a stanford page, and all
	// stanford pages must fall in the range.
	count := 0
	for s := lo; s < hi; s++ {
		for ip := r.m.SnBase[s]; ip < r.m.SnBase[s+1]; ip++ {
			ext := r.m.Inv[ip]
			if c.Pages[ext].Domain != "stanford.edu" {
				t.Fatalf("page %d in stanford supernodes has domain %s", ext, c.Pages[ext].Domain)
			}
			count++
		}
	}
	want := 0
	for _, pm := range c.Pages {
		if pm.Domain == "stanford.edu" {
			want++
		}
	}
	if count != want {
		t.Fatalf("domain index covers %d pages, want %d", count, want)
	}
	if _, _, ok := r.DomainSupernodes("no-such-domain.example"); ok {
		t.Fatal("nonexistent domain found")
	}
}

func TestOutFilteredByDomain(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 32<<20)
	f := &store.Filter{Domains: map[string]bool{"mit.edu": true}}
	var buf []webgraph.PageID
	checked := 0
	for p := int32(0); int(p) < c.Graph.NumPages() && checked < 500; p += 11 {
		var err error
		buf, err = r.OutFiltered(p, f, buf[:0])
		if err != nil {
			t.Fatalf("OutFiltered(%d): %v", p, err)
		}
		var want []webgraph.PageID
		for _, q := range c.Graph.Out(p) {
			if c.Pages[q].Domain == "mit.edu" {
				want = append(want, q)
			}
		}
		got := sortedCopy(buf)
		if len(got) != len(want) {
			t.Fatalf("page %d filtered: got %v, want %v", p, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("page %d filtered mismatch at %d", p, i)
			}
		}
		checked++
	}
}

func TestOutFilteredByPageSet(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 32<<20)
	// Pick target pages that actually appear in some adjacency list.
	targets := map[webgraph.PageID]bool{}
	for p := int32(0); int(p) < c.Graph.NumPages() && len(targets) < 5; p++ {
		for _, q := range c.Graph.Out(p) {
			if len(targets) < 5 {
				targets[q] = true
			}
		}
	}
	f := &store.Filter{Pages: targets}
	var buf []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p += 23 {
		var err error
		buf, err = r.OutFiltered(p, f, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		var want []webgraph.PageID
		for _, q := range c.Graph.Out(p) {
			if targets[q] {
				want = append(want, q)
			}
		}
		got := sortedCopy(buf)
		if len(got) != len(want) {
			t.Fatalf("page %d: got %d, want %d", p, len(got), len(want))
		}
	}
}

func TestFilteredAccessLoadsFewerGraphs(t *testing.T) {
	c, _ := buildOnce(t)
	// Fresh rep so cache state is controlled.
	r := openRep(t, 256<<20)
	// Source pages: stanford pages with external links.
	var sources []webgraph.PageID
	for p := int32(0); int(p) < c.Graph.NumPages(); p++ {
		if c.Pages[p].Domain == "stanford.edu" {
			sources = append(sources, p)
		}
	}
	if len(sources) == 0 {
		t.Skip("no stanford pages")
	}
	var buf []webgraph.PageID
	f := &store.Filter{Domains: map[string]bool{"mit.edu": true}}
	r.ResetCache(256 << 20)
	for _, p := range sources {
		buf, _ = r.OutFiltered(p, f, buf[:0])
	}
	filteredLoads := r.StatsExt().Cache.Loads

	r.ResetCache(256 << 20)
	for _, p := range sources {
		buf, _ = r.Out(p, buf[:0])
	}
	fullLoads := r.StatsExt().Cache.Loads

	if filteredLoads >= fullLoads {
		t.Fatalf("filtered access loaded %d graphs, full access %d — no focused-access win",
			filteredLoads, fullLoads)
	}
	t.Logf("graphs loaded: filtered=%d full=%d", filteredLoads, fullLoads)
}

func TestNegativeSuperedgeChoiceUsed(t *testing.T) {
	// The 6k corpus contains dense directory cliques; at least verify
	// the mechanism: build a tiny corpus with a guaranteed dense block
	// and check a negative graph appears and decodes correctly.
	b := webgraph.NewBuilder(40)
	pages := make([]webgraph.PageMeta, 40)
	for i := 0; i < 20; i++ {
		pages[i] = webgraph.PageMeta{
			URL:    urlFor("a.com", i),
			Domain: "a.com",
		}
		pages[i+20] = webgraph.PageMeta{
			URL:    urlFor("b.com", i),
			Domain: "b.com",
		}
	}
	// a.com pages link to almost every b.com page (dense block).
	for i := 0; i < 20; i++ {
		for j := 20; j < 40; j++ {
			if (i+j)%17 != 0 { // drop a few so the complement is non-empty
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	c := &webgraph.Corpus{Graph: b.Build(), Pages: pages}
	dir := t.TempDir()
	cfg := DefaultConfig()
	st, err := Build(c, cfg, dir)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if st.NegativeSuperedges == 0 {
		t.Fatal("dense block did not produce a negative superedge graph")
	}
	r, err := Open(dir, 1<<20, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var buf []webgraph.PageID
	for p := int32(0); p < 40; p++ {
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		got := sortedCopy(buf)
		want := c.Graph.Out(p)
		if len(got) != len(want) {
			t.Fatalf("page %d: %d targets, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("page %d mismatch", p)
			}
		}
	}
}

func TestDisableNegativeAblation(t *testing.T) {
	b := webgraph.NewBuilder(30)
	pages := make([]webgraph.PageMeta, 30)
	for i := 0; i < 15; i++ {
		pages[i] = webgraph.PageMeta{URL: urlFor("a.com", i), Domain: "a.com"}
		pages[i+15] = webgraph.PageMeta{URL: urlFor("b.com", i), Domain: "b.com"}
	}
	for i := 0; i < 15; i++ {
		for j := 15; j < 30; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	c := &webgraph.Corpus{Graph: b.Build(), Pages: pages}
	cfg := DefaultConfig()
	cfg.DisableNegative = true
	st, err := Build(c, cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if st.NegativeSuperedges != 0 {
		t.Fatal("DisableNegative still produced negative graphs")
	}
}

func TestMultipleIndexFiles(t *testing.T) {
	_, dir := buildOnce(t)
	matches, err := filepath.Glob(filepath.Join(dir, "graphs.*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 2 {
		t.Fatalf("expected multiple index files under 64 KB cap, got %d", len(matches))
	}
}

func TestMetaRoundTrip(t *testing.T) {
	_, dir := buildOnce(t)
	m1, err := readMeta(filepath.Join(dir, "meta.bin"))
	if err != nil {
		t.Fatal(err)
	}
	// Re-serialize and re-read; must be identical field-by-field.
	tmp := filepath.Join(t.TempDir(), "meta.bin")
	if err := writeMeta(tmp, m1); err != nil {
		t.Fatal(err)
	}
	m2, err := readMeta(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if m1.NumPages != m2.NumPages || m1.NumEdges != m2.NumEdges {
		t.Fatal("scalar mismatch")
	}
	if len(m1.Perm) != len(m2.Perm) || len(m1.Directory) != len(m2.Directory) {
		t.Fatal("length mismatch")
	}
	for i := range m1.Directory {
		if m1.Directory[i] != m2.Directory[i] {
			t.Fatalf("directory entry %d differs", i)
		}
	}
	for i := range m1.Perm {
		if m1.Perm[i] != m2.Perm[i] || m1.Inv[i] != m2.Inv[i] {
			t.Fatalf("perm entry %d differs", i)
		}
	}
	if !reflect.DeepEqual(m1.Stats, m2.Stats) {
		t.Fatal("stats differ")
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), 1<<20, iosim.Model2002()); err == nil {
		t.Fatal("opening a missing representation succeeded")
	}
}

func TestOutOfRangePage(t *testing.T) {
	r := openRep(t, 1<<20)
	if _, err := r.Out(-1, nil); err == nil {
		t.Fatal("negative page accepted")
	}
	if _, err := r.Out(webgraph.PageID(r.NumPages()), nil); err == nil {
		t.Fatal("past-end page accepted")
	}
}

func TestPageRenumberingContiguity(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 1<<20)
	m := r.m
	// Within each supernode, internal order must follow URL order.
	for s := 0; s+1 < len(m.SnBase); s++ {
		var prevURL string
		var prevDomain string
		for ip := m.SnBase[s]; ip < m.SnBase[s+1]; ip++ {
			pm := c.Pages[m.Inv[ip]]
			if ip > m.SnBase[s] {
				if pm.Domain != prevDomain {
					t.Fatalf("supernode %d mixes domains", s)
				}
				if pm.URL <= prevURL {
					t.Fatalf("supernode %d URLs out of order", s)
				}
			}
			prevURL, prevDomain = pm.URL, pm.Domain
		}
	}
	// Perm and Inv are mutually inverse.
	for ext := int32(0); int(ext) < len(m.Perm); ext++ {
		if m.Inv[m.Perm[ext]] != ext {
			t.Fatalf("perm/inv mismatch at %d", ext)
		}
	}
}

func urlFor(domain string, i int) string {
	return "http://www." + domain + "/p" + string(rune('a'+i/10)) + string(rune('a'+i%10)) + ".html"
}

func BenchmarkOutRandom(b *testing.B) {
	c, _ := buildOnce(b)
	r := openRep(b, 64<<20)
	var buf []webgraph.PageID
	n := int32(c.Graph.NumPages())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := int32(i*2654435761) % n
		if p < 0 {
			p += n
		}
		var err error
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestVerify(t *testing.T) {
	r := openRep(t, 8<<20)
	if err := r.Verify(); err != nil {
		t.Fatalf("Verify on a good representation: %v", err)
	}
}

func TestVerifyDetectsEdgeCountMismatch(t *testing.T) {
	_, dir := buildOnce(t)
	m, err := readMeta(filepath.Join(dir, "meta.bin"))
	if err != nil {
		t.Fatal(err)
	}
	m.NumEdges++
	tmp := t.TempDir()
	if err := writeMeta(filepath.Join(tmp, "meta.bin"), m); err != nil {
		t.Fatal(err)
	}
	// Link the index files alongside the doctored meta.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == "meta.bin" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tmp, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Open(tmp, 8<<20, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Verify(); err == nil {
		t.Fatal("edge-count mismatch not detected")
	}
}

// dirHashes returns the sha256 of every artifact in a build directory.
func dirHashes(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = fmt.Sprintf("%x", sha256.Sum256(data))
	}
	return out
}

func TestBuildDeterministic(t *testing.T) {
	// Two builds of the same corpus and config must produce
	// byte-identical artifacts — every index and graph file AND
	// meta.bin (BuildTime is serialized as zero precisely so the whole
	// directory is a pure function of corpus + config). The parallel
	// encode stage must not leak scheduling order into the layout.
	for _, seed := range []uint64{1, 7} {
		cfg := synth.DefaultConfig(3000)
		cfg.Seed = seed
		crawl, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dirA, dirB := t.TempDir(), t.TempDir()
		if _, err := Build(crawl.Corpus, DefaultConfig(), dirA); err != nil {
			t.Fatal(err)
		}
		if _, err := Build(crawl.Corpus, DefaultConfig(), dirB); err != nil {
			t.Fatal(err)
		}
		ha, hb := dirHashes(t, dirA), dirHashes(t, dirB)
		if len(ha) != len(hb) {
			t.Fatalf("seed %d: builds produced %d vs %d files", seed, len(ha), len(hb))
		}
		for name, h := range ha {
			if hb[name] == "" {
				t.Fatalf("seed %d: %s missing from second build", seed, name)
			}
			if hb[name] != h {
				t.Fatalf("seed %d: %s differs between builds (sha256 %s vs %s)",
					seed, name, h, hb[name])
			}
		}
	}
}

func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	// The streaming parallel build must be a pure function of corpus +
	// config: every BuildWorkers/ReorderWindow/GOMAXPROCS combination
	// yields byte-identical meta.bin and index files. GOMAXPROCS also
	// moves the default pool width, so restoring it covers the
	// unconfigured path.
	cfg := synth.DefaultConfig(3000)
	crawl, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	refCfg := DefaultConfig()
	refCfg.BuildWorkers = 1
	if _, err := Build(crawl.Corpus, refCfg, refDir); err != nil {
		t.Fatal(err)
	}
	ref := dirHashes(t, refDir)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, tc := range []struct {
		gomaxprocs, workers, window int
	}{
		{1, 2, 1},
		{2, 2, 3},
		{8, 8, 0}, // default window
		{8, 0, 0}, // default workers (GOMAXPROCS=8)
	} {
		runtime.GOMAXPROCS(tc.gomaxprocs)
		dir := t.TempDir()
		bcfg := DefaultConfig()
		bcfg.BuildWorkers = tc.workers
		bcfg.ReorderWindow = tc.window
		if _, err := Build(crawl.Corpus, bcfg, dir); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		got := dirHashes(t, dir)
		if len(got) != len(ref) {
			t.Fatalf("%+v: %d files, workers=1 build produced %d", tc, len(got), len(ref))
		}
		for name, h := range ref {
			if got[name] != h {
				t.Fatalf("%+v: %s differs from workers=1 build (sha256 %s vs %s)",
					tc, name, got[name], h)
			}
		}
	}
}

func TestBuildEncodeErrorNoDeadlock(t *testing.T) {
	// Regression for the pre-streaming encode pipeline: when every
	// worker exited on an encode error, the producer blocked forever on
	// an unbuffered jobs channel. Injecting a failure on every supernode
	// must now surface the error promptly.
	crawl, err := synth.Generate(synth.DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected encode failure")
	encodeFailHook = func(s int32) error { return boom }
	defer func() { encodeFailHook = nil }()
	done := make(chan error, 1)
	go func() {
		cfg := DefaultConfig()
		cfg.BuildWorkers = 4
		_, err := Build(crawl.Corpus, cfg, t.TempDir())
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("error %v, want injected failure", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("build deadlocked on universal encode failure")
	}
}

func TestBuildCtxCancelled(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildCtx(ctx, crawl.Corpus, DefaultConfig(), t.TempDir()); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}

func TestBuildMetricsProgress(t *testing.T) {
	crawl, err := synth.Generate(synth.DefaultConfig(2000))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	st, err := Build(crawl.Corpus, cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("build_supernodes_encoded").Value(); got != int64(st.Supernodes) {
		t.Fatalf("build_supernodes_encoded = %d, want %d", got, st.Supernodes)
	}
	if got := reg.Counter("build_superedges").Value(); got != st.Superedges {
		t.Fatalf("build_superedges = %d, want %d", got, st.Superedges)
	}
	if got := reg.Counter("build_elements_split").Value(); got != int64(st.URLSplits+st.ClusteredSplits) {
		t.Fatalf("build_elements_split = %d, want %d", got, st.URLSplits+st.ClusteredSplits)
	}
}
