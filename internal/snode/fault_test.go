package snode

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"snode/internal/webgraph"
)

// neededGraphsOf lists every lower-level graph a page's supernode owns
// (the graphs an unfiltered Out of that page touches).
func neededGraphsOf(r *Representation, p webgraph.PageID) []GraphID {
	internal := r.m.Perm[p]
	i := r.snOf(internal)
	gids := []GraphID{r.m.IntraGID[i]}
	for k := r.m.SuperOff[i]; k < r.m.SuperOff[i+1]; k++ {
		gids = append(gids, r.m.SuperGID[k])
	}
	return gids
}

// snodeGoroutines counts goroutines whose stacks are parked inside this
// package — the leak signal for an abandoned in-flight decode (a waiter
// blocked in claim on a flight whose leader never completed it).
func snodeGoroutines() int {
	buf := make([]byte, 1<<20)
	stacks := string(buf[:runtime.Stack(buf, true)])
	n := 0
	for _, g := range strings.Split(stacks, "\n\n") {
		if strings.Contains(g, "snode/internal/snode.") && !strings.Contains(g, "snodeGoroutines") {
			n++
		}
	}
	return n
}

// TestMidSpanDecodeFaultReleasesWaiters is the error-path regression
// test for the span read machinery: with 16 concurrent readers of one
// page and a decode fault injected into the MIDDLE graph of the span,
// every reader must return (the fault as an error, or cleanly after the
// fault is no longer in its path) and no goroutine may be left blocked
// on an abandoned in-flight decode. Before the completion guarantees,
// an error or panic between tryClaim and complete left coalesced
// waiters blocked forever; this test trips the suite timeout in that
// case and fails fast on the leak counter.
func TestMidSpanDecodeFaultReleasesWaiters(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 32<<20)

	// The page whose supernode owns the most graphs: widest span, so a
	// mid-span failure strands the most claimed flights if mishandled.
	var page webgraph.PageID
	best := -1
	for p := int32(0); int(p) < c.Graph.NumPages(); p += 67 {
		if n := len(neededGraphsOf(r, p)); n > best {
			best, page = n, p
		}
	}
	if best < 3 {
		t.Skipf("no supernode with a wide enough span (best %d graphs)", best)
	}
	need := neededGraphsOf(r, page)
	victim := need[len(need)/2] // mid-span graph
	faultErr := errors.New("injected decode fault")

	baseline := snodeGoroutines()
	for trial := 0; trial < 4; trial++ {
		r.ResetCache(32 << 20)
		r.decodeFault = func(gid GraphID) error {
			if gid == victim {
				return fmt.Errorf("graph %d: %w", gid, faultErr)
			}
			return nil
		}

		const readers = 16
		start := make(chan struct{})
		errs := make([]error, readers)
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				_, errs[g] = r.Out(page, nil)
			}(g)
		}
		close(start)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("trial %d: readers still blocked 30s after a mid-span decode fault — abandoned in-flight decode", trial)
		}
		for g, err := range errs {
			if err == nil {
				t.Fatalf("trial %d reader %d: no error despite injected fault in its span", trial, g)
			}
			if !errors.Is(err, faultErr) && !errors.Is(err, errDecodeAbandoned) {
				t.Fatalf("trial %d reader %d: unexpected error %v", trial, g, err)
			}
		}

		// Clear the fault: the failed graph must be retryable (a failed
		// flight must not poison the cache), and the page must read back
		// correctly.
		r.decodeFault = nil
		got, err := r.Out(page, nil)
		if err != nil {
			t.Fatalf("trial %d: read after clearing fault: %v", trial, err)
		}
		want := c.Graph.Out(page)
		if len(sortedCopy(got)) != len(want) {
			t.Fatalf("trial %d: %d targets after recovery, want %d", trial, len(got), len(want))
		}
	}

	// Leak check: transient goroutines may take a moment to unwind.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := snodeGoroutines(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines parked in snode code, baseline %d",
				snodeGoroutines(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPanickingDecodeReleasesWaiters injects a panicking decode: the
// leader unwinds, and the deferred completion sweep must still release
// coalesced waiters (with errDecodeAbandoned) instead of leaving them
// blocked forever.
func TestPanickingDecodeReleasesWaiters(t *testing.T) {
	c, _ := buildOnce(t)
	r := openRep(t, 32<<20)
	var page webgraph.PageID
	best := -1
	for p := int32(0); int(p) < c.Graph.NumPages(); p += 67 {
		if n := len(neededGraphsOf(r, p)); n > best {
			best, page = n, p
		}
	}
	need := neededGraphsOf(r, page)
	victim := need[len(need)/2]
	r.decodeFault = func(gid GraphID) error {
		if gid == victim {
			panic("injected decode panic")
		}
		return nil
	}

	const readers = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	outcomes := make([]error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					outcomes[g] = errors.New("panicked (leader)")
				}
			}()
			<-start
			_, outcomes[g] = r.Out(page, nil)
		}(g)
	}
	close(start)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("readers still blocked 30s after a panicking decode — abandoned in-flight decode")
	}
	for g, err := range outcomes {
		if err == nil {
			t.Fatalf("reader %d: returned success through a panicking span", g)
		}
	}

	// Recovery: clear the fault, the representation must still serve.
	r.decodeFault = nil
	got, err := r.Out(page, nil)
	if err != nil {
		t.Fatalf("read after panic recovery: %v", err)
	}
	if want := c.Graph.Out(page); len(sortedCopy(got)) != len(want) {
		t.Fatalf("%d targets after recovery, want %d", len(got), len(want))
	}
}
