package snode

import (
	"fmt"

	"snode/internal/bitio"
	"snode/internal/coding"
	"snode/internal/refenc"
)

// Lower-level graph wire formats. Every graph starts byte-aligned in an
// index file; NumLists and NumBytes live in the directory entry.
//
//	intranode:  refenc lists, one per page of Ni (local target IDs)
//	superPos:   gap-coded source local IDs, then refenc lists, one per
//	            source (local IDs within Nj)
//	superNeg:   refenc lists, one per page of Ni (complement lists over
//	            Nj's local ID space)

// encodeIntra encodes an intranode graph: lists[k] is the local
// adjacency of Ni's k-th page restricted to Ni.
func encodeIntra(w *bitio.Writer, lists [][]int32, opt refenc.Options) error {
	opt.TargetBound = uint64(len(lists)) // local IDs within Ni
	_, err := refenc.EncodeLists(w, lists, opt)
	return err
}

// decodedIntra is the in-memory form of an intranode graph.
type decodedIntra struct {
	lists [][]int32
}

func (g *decodedIntra) edgeCount() int64 {
	var n int64
	for _, l := range g.lists {
		n += int64(len(l))
	}
	return n
}

func (g *decodedIntra) memSize() int64 {
	n := int64(len(g.lists)) * 24
	for _, l := range g.lists {
		n += int64(len(l)) * 4
	}
	return n
}

func decodeIntra(buf []byte, numLists int) (*decodedIntra, error) {
	r := bitio.NewByteReader(buf)
	lists, err := refenc.DecodeListsBounded(r, numLists, uint64(numLists))
	if err != nil {
		return nil, fmt.Errorf("snode: intranode decode: %w", err)
	}
	if err := checkLocalIDs(lists, int32(numLists)); err != nil {
		return nil, fmt.Errorf("snode: intranode decode: %w", err)
	}
	return &decodedIntra{lists: lists}, nil
}

// checkLocalIDs rejects decoded lists whose entries escape the local ID
// space — the symptom of a corrupt graph payload that still parsed.
// (The bounded codec constrains only each run's first value; gap sums
// can overrun.)
func checkLocalIDs(lists [][]int32, bound int32) error {
	for _, l := range lists {
		for _, v := range l {
			if v < 0 || v >= bound {
				return fmt.Errorf("local id %d outside [0,%d)", v, bound)
			}
		}
	}
	return nil
}

// encodeSuperPos encodes a positive superedge graph. srcs are the local
// (within Ni) IDs of pages with at least one link into Nj, strictly
// increasing; lists are their targets as local Nj IDs.
func encodeSuperPos(w *bitio.Writer, srcs []int32, lists [][]int32, niSize, njSize int32, opt refenc.Options) error {
	if len(srcs) != len(lists) {
		return fmt.Errorf("snode: superPos %d sources but %d lists", len(srcs), len(lists))
	}
	coding.WriteBoundedGapList(w, srcs, uint64(niSize))
	opt.TargetBound = uint64(njSize)
	_, err := refenc.EncodeLists(w, lists, opt)
	return err
}

// decodedSuperPos is the in-memory form of a positive superedge graph.
type decodedSuperPos struct {
	srcs  []int32 // sorted local Ni IDs
	lists [][]int32
}

func (g *decodedSuperPos) edgeCount() int64 {
	var n int64
	for _, l := range g.lists {
		n += int64(len(l))
	}
	return n
}

func (g *decodedSuperPos) memSize() int64 {
	n := int64(len(g.srcs))*4 + int64(len(g.lists))*24
	for _, l := range g.lists {
		n += int64(len(l)) * 4
	}
	return n
}

// targetsOf returns the local Nj targets of the given local Ni source
// (nil if the source has none).
func (g *decodedSuperPos) targetsOf(srcLocal int32) []int32 {
	lo, hi := 0, len(g.srcs)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.srcs[mid] < srcLocal {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.srcs) && g.srcs[lo] == srcLocal {
		return g.lists[lo]
	}
	return nil
}

func decodeSuperPos(buf []byte, numSrcs int, niSize, njSize int32) (*decodedSuperPos, error) {
	r := bitio.NewByteReader(buf)
	srcs, err := coding.ReadBoundedGapList(r, numSrcs, uint64(niSize), nil)
	if err != nil {
		return nil, fmt.Errorf("snode: superPos sources: %w", err)
	}
	lists, err := refenc.DecodeListsBounded(r, numSrcs, uint64(njSize))
	if err != nil {
		return nil, fmt.Errorf("snode: superPos lists: %w", err)
	}
	if err := checkLocalIDs([][]int32{srcs}, niSize); err != nil {
		return nil, fmt.Errorf("snode: superPos sources: %w", err)
	}
	if err := checkLocalIDs(lists, njSize); err != nil {
		return nil, fmt.Errorf("snode: superPos lists: %w", err)
	}
	return &decodedSuperPos{srcs: srcs, lists: lists}, nil
}

// encodeSuperNeg encodes a negative superedge graph: lists[k] is the
// COMPLEMENT of the k-th Ni page's targets within Nj (so a page with no
// links into Nj stores all of Nj). Decoders need |Nj| to invert.
func encodeSuperNeg(w *bitio.Writer, complements [][]int32, njSize int32, opt refenc.Options) error {
	opt.TargetBound = uint64(njSize)
	_, err := refenc.EncodeLists(w, complements, opt)
	return err
}

// decodedSuperNeg keeps the complement form; positive adjacency is
// materialized lazily so dense blocks never explode the cache.
type decodedSuperNeg struct {
	njSize int32
	lists  [][]int32 // complements, one per page of Ni
}

func (g *decodedSuperNeg) edgeCount() int64 {
	var n int64
	for _, l := range g.lists {
		n += int64(len(l))
	}
	return n
}

func (g *decodedSuperNeg) memSize() int64 {
	n := int64(len(g.lists)) * 24
	for _, l := range g.lists {
		n += int64(len(l)) * 4
	}
	return n + 8
}

// appendTargets appends the positive local Nj targets of the given Ni
// local source to dst: every local ID in [0, njSize) not present in the
// complement list.
func (g *decodedSuperNeg) appendTargets(srcLocal int32, dst []int32) []int32 {
	comp := g.lists[srcLocal]
	next := int32(0)
	for _, c := range comp {
		for ; next < c; next++ {
			dst = append(dst, next)
		}
		next = c + 1
	}
	for ; next < g.njSize; next++ {
		dst = append(dst, next)
	}
	return dst
}

func decodeSuperNeg(buf []byte, numLists int, njSize int32) (*decodedSuperNeg, error) {
	r := bitio.NewByteReader(buf)
	lists, err := refenc.DecodeListsBounded(r, numLists, uint64(njSize))
	if err != nil {
		return nil, fmt.Errorf("snode: superNeg decode: %w", err)
	}
	if err := checkLocalIDs(lists, njSize); err != nil {
		return nil, fmt.Errorf("snode: superNeg decode: %w", err)
	}
	return &decodedSuperNeg{njSize: njSize, lists: lists}, nil
}

// complement returns [0,n) \ list (list sorted strictly increasing).
func complement(list []int32, n int32) []int32 {
	out := make([]int32, 0, int(n)-len(list))
	next := int32(0)
	for _, v := range list {
		for ; next < v; next++ {
			out = append(out, next)
		}
		next = v + 1
	}
	for ; next < n; next++ {
		out = append(out, next)
	}
	return out
}
