package snode

import (
	"fmt"

	"snode/internal/refenc"
)

// Graph wire formats. Every graph starts byte-aligned in an index file;
// NumLists, NumBytes, and the codec ID live in the directory entry.
//
//	intranode:  adjacency lists, one per page of Ni (local target IDs)
//	superPos:   source local IDs within Ni, then one target list per
//	            source (local IDs within Nj)
//	superNeg:   complement lists over Nj's local ID space, one per page
//	            of Ni
//
// The concrete byte layout is owned by a Codec. The paper's refenc
// scheme is codec/paper (ID 0, the default and the format of every
// artifact built before codecs existed); codec/lz is an LZ-style
// ordered-list coder (common-prefix copy + byte-aligned gap residuals,
// after Grabowski & Bieniecki); codec/log is a Log(Graph)-style
// succinct coder (IDs bit-packed at ceil(log2(bound)) width with
// per-list logarithmized gap arrays, after Besta et al.). The builder
// picks one codec per supernode (fixed by Config.Codec, or per-supernode
// by the "auto" bake-off) and records it in the directory so the reader
// dispatches per payload.

// Codec encodes and decodes the three payload kinds over local ID
// spaces. Encoders append to dst and return the extended slice; decoders
// must validate that every produced local ID lies inside its bound and
// reject corrupt input with an error (never panic). Decode results are
// immutable once returned (they are shared through the graph cache).
//
// Encode methods take the build's refenc.Options; only codec/paper
// consults it (reference window, gap code), the others ignore it. Decode
// takes no options — every codec's wire format is self-describing.
type Codec interface {
	// ID is the codec's wire identifier, recorded per directory entry.
	ID() uint8
	// Name is the codec's stable human-readable name ("paper", ...).
	Name() string

	// EncodeIntra appends an intranode graph: lists[k] is the local
	// adjacency of Ni's k-th page restricted to Ni (strictly increasing
	// values in [0, len(lists))).
	EncodeIntra(dst []byte, lists [][]int32, opt refenc.Options) ([]byte, error)
	DecodeIntra(buf []byte, numLists int) (*decodedIntra, error)

	// EncodeSuperPos appends a positive superedge graph. srcs are the
	// local (within Ni) IDs of pages with at least one link into Nj,
	// strictly increasing; lists are their targets as local Nj IDs.
	EncodeSuperPos(dst []byte, srcs []int32, lists [][]int32, niSize, njSize int32, opt refenc.Options) ([]byte, error)
	DecodeSuperPos(buf []byte, numSrcs int, niSize, njSize int32) (*decodedSuperPos, error)

	// EncodeSuperNeg appends a negative superedge graph: lists[k] is the
	// COMPLEMENT of the k-th Ni page's targets within Nj (so a page with
	// no links into Nj stores all of Nj).
	EncodeSuperNeg(dst []byte, complements [][]int32, njSize int32, opt refenc.Options) ([]byte, error)
	DecodeSuperNeg(buf []byte, numLists int, njSize int32) (*decodedSuperNeg, error)
}

// Codec IDs. The ID is a wire value (directory entries reference it);
// never renumber. codec/paper must stay 0: pre-codec artifacts carry no
// codec field and read back as zero.
const (
	codecIDPaper uint8 = 0
	codecIDLZ    uint8 = 1
	codecIDLog   uint8 = 2
	numCodecs          = 3
)

// Codec names accepted by Config.Codec and the -codec flags.
const (
	CodecPaper = "paper"
	CodecLZ    = "lz"
	CodecLog   = "log"
	// CodecAuto is not a codec: it asks the builder to run the
	// per-supernode bake-off over every registered codec.
	CodecAuto = "auto"
)

// codecTable maps codec IDs to implementations. Indexed by wire ID.
var codecTable = [numCodecs]Codec{
	codecIDPaper: paperCodec{},
	codecIDLZ:    lzCodec{},
	codecIDLog:   logCodec{},
}

// codecByID returns the codec for a wire ID, or an error for IDs from a
// future format version.
func codecByID(id uint8) (Codec, error) {
	if int(id) >= len(codecTable) {
		return nil, fmt.Errorf("snode: unknown codec ID %d (artifact from a newer version?)", id)
	}
	return codecTable[id], nil
}

// codecByName resolves a Config.Codec / -codec string. The empty string
// means the paper codec. CodecAuto is rejected here: it is a builder
// policy, not a codec.
func codecByName(name string) (Codec, error) {
	switch name {
	case "", CodecPaper:
		return codecTable[codecIDPaper], nil
	case CodecLZ:
		return codecTable[codecIDLZ], nil
	case CodecLog:
		return codecTable[codecIDLog], nil
	default:
		return nil, fmt.Errorf("snode: unknown codec %q (want %s, %s, %s, or %s)",
			name, CodecPaper, CodecLZ, CodecLog, CodecAuto)
	}
}

// CodecNames lists the registered codec names in wire-ID order, plus
// the "auto" policy — the accepted values for -codec flags.
func CodecNames() []string {
	names := make([]string, 0, numCodecs+1)
	for _, c := range codecTable {
		names = append(names, c.Name())
	}
	return append(names, CodecAuto)
}

// decodedIntra is the in-memory form of an intranode graph.
type decodedIntra struct {
	lists [][]int32
}

func (g *decodedIntra) edgeCount() int64 {
	var n int64
	for _, l := range g.lists {
		n += int64(len(l))
	}
	return n
}

func (g *decodedIntra) memSize() int64 {
	n := int64(len(g.lists)) * 24
	for _, l := range g.lists {
		n += int64(len(l)) * 4
	}
	return n
}

// decodedSuperPos is the in-memory form of a positive superedge graph.
type decodedSuperPos struct {
	srcs  []int32 // sorted local Ni IDs
	lists [][]int32
}

func (g *decodedSuperPos) edgeCount() int64 {
	var n int64
	for _, l := range g.lists {
		n += int64(len(l))
	}
	return n
}

func (g *decodedSuperPos) memSize() int64 {
	n := int64(len(g.srcs))*4 + int64(len(g.lists))*24
	for _, l := range g.lists {
		n += int64(len(l)) * 4
	}
	return n
}

// targetsOf returns the local Nj targets of the given local Ni source
// (nil if the source has none).
func (g *decodedSuperPos) targetsOf(srcLocal int32) []int32 {
	lo, hi := 0, len(g.srcs)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.srcs[mid] < srcLocal {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.srcs) && g.srcs[lo] == srcLocal {
		return g.lists[lo]
	}
	return nil
}

// decodedSuperNeg keeps the complement form; positive adjacency is
// materialized lazily so dense blocks never explode the cache.
type decodedSuperNeg struct {
	njSize int32
	lists  [][]int32 // complements, one per page of Ni
}

func (g *decodedSuperNeg) edgeCount() int64 {
	var n int64
	for _, l := range g.lists {
		n += int64(len(l))
	}
	return n
}

func (g *decodedSuperNeg) memSize() int64 {
	n := int64(len(g.lists)) * 24
	for _, l := range g.lists {
		n += int64(len(l)) * 4
	}
	return n + 8
}

// appendTargets appends the positive local Nj targets of the given Ni
// local source to dst: every local ID in [0, njSize) not present in the
// complement list.
func (g *decodedSuperNeg) appendTargets(srcLocal int32, dst []int32) []int32 {
	comp := g.lists[srcLocal]
	next := int32(0)
	for _, c := range comp {
		for ; next < c; next++ {
			dst = append(dst, next)
		}
		next = c + 1
	}
	for ; next < g.njSize; next++ {
		dst = append(dst, next)
	}
	return dst
}

// checkLocalIDs rejects lists whose entries escape the local ID space.
// Production decode paths validate inline (fused into each codec's
// decode loop); this remains as the oracle the fuzz and corruption
// tests compare the fused checks against.
func checkLocalIDs(lists [][]int32, bound int32) error {
	for _, l := range lists {
		for _, v := range l {
			if v < 0 || v >= bound {
				return fmt.Errorf("local id %d outside [0,%d)", v, bound)
			}
		}
	}
	return nil
}

// complement returns [0,n) \ list (list sorted strictly increasing).
func complement(list []int32, n int32) []int32 {
	out := make([]int32, 0, int(n)-len(list))
	next := int32(0)
	for _, v := range list {
		for ; next < v; next++ {
			out = append(out, next)
		}
		next = v + 1
	}
	for ; next < n; next++ {
		out = append(out, next)
	}
	return out
}
