package snode

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"
)

// meta.bin format: a small custom binary format (magic, version, then
// length-prefixed sections) rather than gob, so the layout is stable,
// inspectable, and independent of Go type details.

const (
	metaMagic = 0x534E4F44 // "SNOD"
	// metaVersion 2 added per-directory-entry codec IDs and the
	// per-codec stats section. Version 1 artifacts predate pluggable
	// codecs and are still read: every payload is codec/paper (ID 0).
	metaVersion  = 2
	metaVersion1 = 1
)

type metaWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (mw *metaWriter) uvarint(v uint64) {
	if mw.err != nil {
		return
	}
	n := binary.PutUvarint(mw.buf[:], v)
	_, mw.err = mw.w.Write(mw.buf[:n])
}

func (mw *metaWriter) varint(v int64) {
	if mw.err != nil {
		return
	}
	n := binary.PutVarint(mw.buf[:], v)
	_, mw.err = mw.w.Write(mw.buf[:n])
}

func (mw *metaWriter) str(s string) {
	mw.uvarint(uint64(len(s)))
	if mw.err != nil {
		return
	}
	_, mw.err = mw.w.WriteString(s)
}

func (mw *metaWriter) i32s(xs []int32) {
	mw.uvarint(uint64(len(xs)))
	for _, x := range xs {
		mw.varint(int64(x))
	}
}

func (mw *metaWriter) i64s(xs []int64) {
	mw.uvarint(uint64(len(xs)))
	for _, x := range xs {
		mw.varint(x)
	}
}

// maxMetaElems bounds any length prefix read from meta.bin; a corrupt
// varint must not trigger a giant allocation.
const maxMetaElems = 1 << 27

type metaReader struct {
	r   *bufio.Reader
	err error
}

func (mr *metaReader) uvarint() uint64 {
	if mr.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(mr.r)
	mr.err = err
	return v
}

func (mr *metaReader) varint() int64 {
	if mr.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(mr.r)
	mr.err = err
	return v
}

func (mr *metaReader) str() string {
	n := mr.uvarint()
	if mr.err != nil {
		return ""
	}
	if n > maxMetaElems {
		mr.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	b := make([]byte, n)
	_, mr.err = io.ReadFull(mr.r, b)
	return string(b)
}

func (mr *metaReader) i32s() []int32 {
	n := mr.uvarint()
	if mr.err != nil {
		return nil
	}
	if n > maxMetaElems {
		mr.err = fmt.Errorf("implausible slice length %d", n)
		return nil
	}
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(mr.varint())
	}
	return xs
}

func (mr *metaReader) i64s() []int64 {
	n := mr.uvarint()
	if mr.err != nil {
		return nil
	}
	if n > maxMetaElems {
		mr.err = fmt.Errorf("implausible slice length %d", n)
		return nil
	}
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = mr.varint()
	}
	return xs
}

func writeMeta(path string, m *meta) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	mw := &metaWriter{w: bufio.NewWriterSize(f, 1<<20)}
	mw.uvarint(metaMagic)
	mw.uvarint(metaVersion)
	mw.varint(int64(m.NumPages))
	mw.varint(m.NumEdges)
	mw.i32s(m.Perm)
	mw.i32s(m.Inv)
	mw.i32s(m.SnBase)
	mw.uvarint(uint64(len(m.Domains)))
	for _, d := range m.Domains {
		mw.str(d)
	}
	mw.i32s(m.DomFirstSN)
	mw.i64s(m.SuperOff)
	mw.i32s(m.SuperAdj)
	mw.i32s(m.SuperGID)
	mw.i32s(m.IntraGID)
	mw.uvarint(uint64(len(m.Directory)))
	for _, e := range m.Directory {
		mw.uvarint(uint64(e.Kind))
		mw.varint(int64(e.I))
		mw.varint(int64(e.J))
		mw.varint(int64(e.File))
		mw.varint(e.Offset)
		mw.varint(int64(e.NumBytes))
		mw.varint(int64(e.NumLists))
		mw.uvarint(uint64(e.Codec)) // v2
	}
	mw.i64s(m.FileSizes)
	st := &m.Stats
	mw.varint(int64(st.Supernodes))
	mw.varint(st.Superedges)
	mw.varint(st.SupernodeGraphBytes)
	mw.varint(st.IndexFileBytes)
	mw.varint(st.PageIDIndexBytes)
	mw.varint(st.DomainIndexBytes)
	mw.varint(st.PositiveSuperedges)
	mw.varint(st.NegativeSuperedges)
	mw.varint(int64(st.URLSplits))
	mw.varint(int64(st.ClusteredSplits))
	mw.varint(int64(st.BuildTime))
	mw.uvarint(uint64(len(st.Codecs))) // v2
	for _, cs := range st.Codecs {
		mw.uvarint(uint64(cs.ID))
		mw.varint(cs.Supernodes)
		mw.varint(cs.Graphs)
		mw.varint(cs.Bytes)
		mw.varint(cs.Edges)
	}
	if mw.err != nil {
		f.Close()
		return fmt.Errorf("snode: write meta: %w", mw.err)
	}
	if err := mw.w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readMeta(path string) (*meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	mr := &metaReader{r: bufio.NewReaderSize(f, 1<<20)}
	if mr.uvarint() != metaMagic {
		return nil, fmt.Errorf("snode: %s: bad magic", path)
	}
	v := mr.uvarint()
	if v != metaVersion && v != metaVersion1 {
		return nil, fmt.Errorf("snode: %s: unsupported version %d", path, v)
	}
	m := &meta{}
	m.NumPages = int32(mr.varint())
	m.NumEdges = mr.varint()
	m.Perm = mr.i32s()
	m.Inv = mr.i32s()
	m.SnBase = mr.i32s()
	nd := mr.uvarint()
	if mr.err == nil && nd > maxMetaElems {
		return nil, fmt.Errorf("snode: %s: implausible domain count %d", path, nd)
	}
	m.Domains = make([]string, nd)
	for i := range m.Domains {
		m.Domains[i] = mr.str()
	}
	m.DomFirstSN = mr.i32s()
	m.SuperOff = mr.i64s()
	m.SuperAdj = mr.i32s()
	m.SuperGID = mr.i32s()
	m.IntraGID = mr.i32s()
	ne := mr.uvarint()
	if mr.err == nil && ne > maxMetaElems {
		return nil, fmt.Errorf("snode: %s: implausible directory size %d", path, ne)
	}
	if mr.err == nil {
		m.Directory = make([]dirEntry, ne)
		for i := range m.Directory {
			e := &m.Directory[i]
			e.Kind = uint8(mr.uvarint())
			e.I = int32(mr.varint())
			e.J = int32(mr.varint())
			e.File = int32(mr.varint())
			e.Offset = mr.varint()
			e.NumBytes = int32(mr.varint())
			e.NumLists = int32(mr.varint())
			if v >= metaVersion {
				e.Codec = uint8(mr.uvarint())
			}
			// v1 entries predate codecs: Codec stays 0 = codec/paper.
		}
	}
	m.FileSizes = mr.i64s()
	st := &m.Stats
	st.Supernodes = int(mr.varint())
	st.Superedges = mr.varint()
	st.SupernodeGraphBytes = mr.varint()
	st.IndexFileBytes = mr.varint()
	st.PageIDIndexBytes = mr.varint()
	st.DomainIndexBytes = mr.varint()
	st.PositiveSuperedges = mr.varint()
	st.NegativeSuperedges = mr.varint()
	st.URLSplits = int(mr.varint())
	st.ClusteredSplits = int(mr.varint())
	st.BuildTime = time.Duration(mr.varint())
	if v >= metaVersion {
		nc := mr.uvarint()
		if mr.err == nil && nc > numCodecs {
			return nil, fmt.Errorf("snode: %s: implausible codec stat count %d", path, nc)
		}
		if mr.err == nil {
			st.Codecs = make([]CodecBuildStat, nc)
			for i := range st.Codecs {
				cs := &st.Codecs[i]
				cs.ID = uint8(mr.uvarint())
				cs.Supernodes = mr.varint()
				cs.Graphs = mr.varint()
				cs.Bytes = mr.varint()
				cs.Edges = mr.varint()
				if c, err := codecByID(cs.ID); err == nil {
					cs.Name = c.Name()
				}
			}
		}
	}
	if mr.err != nil {
		return nil, fmt.Errorf("snode: read meta: %w", mr.err)
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("snode: %s: %w", path, err)
	}
	if v == metaVersion1 {
		// Pre-codec artifact: every payload is codec/paper. Synthesize
		// the composition record so Codecs() and the per-codec metrics
		// behave uniformly (stored edge counts were not recorded then
		// and stay zero).
		var payloadBytes int64
		for i := range m.Directory {
			payloadBytes += int64(m.Directory[i].NumBytes)
		}
		m.Stats.Codecs = []CodecBuildStat{{
			ID:         codecIDPaper,
			Name:       CodecPaper,
			Supernodes: int64(m.Stats.Supernodes),
			Graphs:     int64(len(m.Directory)),
			Bytes:      payloadBytes,
		}}
	}
	return m, nil
}

// validate checks the structural invariants every accessor relies on,
// so a corrupt meta.bin that still parses is rejected at Open rather
// than faulting during navigation.
func (m *meta) validate() error {
	n := m.NumPages
	if n < 0 {
		return fmt.Errorf("negative page count %d", n)
	}
	if len(m.Perm) != int(n) || len(m.Inv) != int(n) {
		return fmt.Errorf("permutation length %d/%d for %d pages", len(m.Perm), len(m.Inv), n)
	}
	for ext, internal := range m.Perm {
		if internal < 0 || internal >= n {
			return fmt.Errorf("perm[%d] = %d out of range", ext, internal)
		}
		if m.Inv[internal] != int32(ext) {
			return fmt.Errorf("perm/inv disagree at page %d", ext)
		}
	}
	nSN := m.Stats.Supernodes
	if len(m.SnBase) != nSN+1 || (nSN > 0 && (m.SnBase[0] != 0 || m.SnBase[nSN] != n)) {
		return fmt.Errorf("page-ID index does not cover [0,%d)", n)
	}
	for s := 0; s < nSN; s++ {
		if m.SnBase[s] >= m.SnBase[s+1] {
			return fmt.Errorf("supernode %d has empty or inverted range", s)
		}
	}
	if len(m.DomFirstSN) != len(m.Domains)+1 {
		return fmt.Errorf("domain index length mismatch")
	}
	for k := 0; k+1 < len(m.DomFirstSN); k++ {
		if m.DomFirstSN[k] >= m.DomFirstSN[k+1] || m.DomFirstSN[k] < 0 {
			return fmt.Errorf("domain %d has invalid supernode range", k)
		}
	}
	if len(m.DomFirstSN) > 0 && int(m.DomFirstSN[len(m.DomFirstSN)-1]) != nSN {
		return fmt.Errorf("domain index does not cover all supernodes")
	}
	if len(m.IntraGID) != nSN || len(m.SuperOff) != nSN+1 {
		return fmt.Errorf("supernode graph arrays sized %d/%d for %d supernodes",
			len(m.IntraGID), len(m.SuperOff), nSN)
	}
	if len(m.SuperAdj) != len(m.SuperGID) {
		return fmt.Errorf("superedge arrays disagree")
	}
	nG := int64(len(m.Directory))
	checkGID := func(g GraphID) error {
		if g < 0 || int64(g) >= nG {
			return fmt.Errorf("graph id %d outside directory of %d", g, nG)
		}
		return nil
	}
	for s := 0; s < nSN; s++ {
		if m.SuperOff[s] < 0 || m.SuperOff[s] > m.SuperOff[s+1] ||
			m.SuperOff[s+1] > int64(len(m.SuperAdj)) {
			return fmt.Errorf("supernode %d superedge range invalid", s)
		}
		if err := checkGID(m.IntraGID[s]); err != nil {
			return err
		}
	}
	for k, j := range m.SuperAdj {
		if j < 0 || int(j) >= nSN {
			return fmt.Errorf("superedge %d targets supernode %d of %d", k, j, nSN)
		}
		if err := checkGID(m.SuperGID[k]); err != nil {
			return err
		}
	}
	for gi := range m.Directory {
		e := &m.Directory[gi]
		if int(e.File) < 0 || int(e.File) >= len(m.FileSizes) {
			return fmt.Errorf("graph %d in unknown file %d", gi, e.File)
		}
		if e.NumBytes < 0 || e.Offset < 0 ||
			e.Offset+int64(e.NumBytes) > m.FileSizes[e.File] {
			return fmt.Errorf("graph %d extends past file %d", gi, e.File)
		}
		if e.NumLists < 0 {
			return fmt.Errorf("graph %d has negative list count", gi)
		}
		switch e.Kind {
		case kindIntra, kindSuperPos, kindSuperNeg:
		default:
			return fmt.Errorf("graph %d has unknown kind %d", gi, e.Kind)
		}
		if _, err := codecByID(e.Codec); err != nil {
			return fmt.Errorf("graph %d: %w", gi, err)
		}
		if e.Kind != kindIntra {
			if e.I < 0 || int(e.I) >= nSN || e.J < 0 || int(e.J) >= nSN {
				return fmt.Errorf("graph %d references bad supernodes (%d,%d)", gi, e.I, e.J)
			}
		}
	}
	return nil
}
