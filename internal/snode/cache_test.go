package snode

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// stubGraph is a fake decodedGraph for exercising the buffer manager in
// isolation from the codecs.
type stubGraph struct {
	size  int64
	edges int64
}

func (s *stubGraph) memSize() int64   { return s.size }
func (s *stubGraph) edgeCount() int64 { return s.edges }

// checkShardInvariants verifies, per shard: used equals the sum of
// resident entry sizes; used stays within budget unless a single
// oversized entry was admitted alone; and byID and the LRU list agree
// exactly. Returns the total resident entries.
func checkShardInvariants(t *testing.T, c *graphCache) int {
	t.Helper()
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var sum int64
		for el := s.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*cacheEntry)
			sum += e.size
			if got, ok := s.byID[e.id]; !ok || got != el {
				t.Errorf("shard %d: LRU entry %d missing/mismatched in byID", i, e.id)
			}
		}
		if sum != s.used {
			t.Errorf("shard %d: used=%d but entries sum to %d", i, s.used, sum)
		}
		if s.used > s.budget && s.lru.Len() > 1 {
			t.Errorf("shard %d: used=%d exceeds budget=%d with %d entries",
				i, s.used, s.budget, s.lru.Len())
		}
		if len(s.byID) != s.lru.Len() {
			t.Errorf("shard %d: byID has %d entries, LRU has %d", i, len(s.byID), s.lru.Len())
		}
		total += s.lru.Len()
		s.mu.Unlock()
	}
	return total
}

// TestCacheInvariantsUnderConcurrency drives the cache through the real
// access protocol (get → claim → complete) from 16 goroutines with a
// random mix of graph sizes, then checks the structural invariants and
// the stats identity Hits+Misses == total lookups.
func TestCacheInvariantsUnderConcurrency(t *testing.T) {
	const (
		budget     = 64 << 10
		goroutines = 16
		opsEach    = 3000
		idSpace    = 300
	)
	c := newGraphCache(budget)
	var gets atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for op := 0; op < opsEach; op++ {
				id := GraphID(rng.Intn(idSpace))
				gets.Add(1)
				if _, ok := c.get(id); ok {
					continue
				}
				g, err, leader := c.claim(id)
				if !leader {
					if err != nil {
						t.Errorf("claim(%d): %v", id, err)
					} else if g == nil {
						t.Errorf("claim(%d): follower got nil graph without error", id)
					}
					continue
				}
				// Leader "decodes": deterministic per-ID size so re-decodes
				// of one graph always agree.
				sz := int64(64 + (int(id)*37)%2048)
				kind := kindIntra
				if id%3 == 0 {
					kind = kindSuperPos
				}
				c.complete(id, &stubGraph{size: sz, edges: int64(id)}, kind, nil)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	checkShardInvariants(t, c)
	st := c.statsMerged()
	if got := st.Hits + st.Misses; got != gets.Load() {
		t.Fatalf("Hits+Misses = %d, want %d (one per lookup)", got, gets.Load())
	}
	if st.Loads > st.Misses {
		t.Fatalf("Loads=%d exceeds Misses=%d: a load without a preceding miss", st.Loads, st.Misses)
	}
	if st.IntraLoads+st.SuperLoads != st.Loads {
		t.Fatalf("IntraLoads+SuperLoads = %d, want Loads = %d",
			st.IntraLoads+st.SuperLoads, st.Loads)
	}
}

// TestCacheInvariantsWithConcurrentReset repeats the workload while
// another goroutine repeatedly empties and re-budgets the cache; the
// structural invariants must hold at every quiescent point and no
// claimed decode may be orphaned.
func TestCacheInvariantsWithConcurrentReset(t *testing.T) {
	const goroutines = 8
	c := newGraphCache(32 << 10)
	stop := make(chan struct{})
	var workers, resetter sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		workers.Add(1)
		go func(w int) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for op := 0; op < 4000; op++ {
				id := GraphID(rng.Intn(150))
				if _, ok := c.get(id); ok {
					continue
				}
				_, err, leader := c.claim(id)
				if err != nil {
					t.Errorf("claim(%d): %v", id, err)
					return
				}
				if leader {
					c.complete(id, &stubGraph{size: 512, edges: 1}, kindIntra, nil)
				}
			}
		}(w)
	}
	resetter.Add(1)
	go func() {
		defer resetter.Done()
		budgets := []int64{16 << 10, 32 << 10, 64 << 10}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				c.reset(budgets[i%len(budgets)])
			}
		}
	}()
	// If a reset orphaned an in-flight decode, a worker would hang in
	// claim forever and this Wait would trip the test timeout.
	workers.Wait()
	close(stop)
	resetter.Wait()
	checkShardInvariants(t, c)
}

// TestCacheLRUOrder checks recency ordering and eviction order
// serially: entries are evicted least-recently-used first, and a get
// refreshes recency.
func TestCacheLRUOrder(t *testing.T) {
	// One shard in isolation: pick IDs that all hash to shard of id 0.
	c := newGraphCache(int64(cacheShards) * 1000) // 1000 bytes per shard
	target := c.shard(0)
	var ids []GraphID
	for id := GraphID(0); len(ids) < 4; id++ {
		if c.shard(id) == target {
			ids = append(ids, id)
		}
	}
	put := func(id GraphID, size int64) {
		if _, ok := c.get(id); ok {
			t.Fatalf("id %d unexpectedly cached", id)
		}
		_, _, leader := c.claim(id)
		if !leader {
			t.Fatalf("id %d: expected leadership", id)
		}
		c.complete(id, &stubGraph{size: size, edges: 0}, kindIntra, nil)
	}
	// Fill with three 300-byte entries: A, B, C (C most recent).
	put(ids[0], 300)
	put(ids[1], 300)
	put(ids[2], 300)
	// Touch A: order becomes B (LRU), C, A (MRU).
	if _, ok := c.get(ids[0]); !ok {
		t.Fatal("A missing")
	}
	// Insert 300-byte D: B must be evicted, A and C retained.
	put(ids[3], 300)
	if _, ok := c.get(ids[1]); ok {
		t.Fatal("B should have been evicted (least recently used)")
	}
	if _, ok := c.get(ids[0]); !ok {
		t.Fatal("A evicted despite recent touch")
	}
	if _, ok := c.get(ids[2]); !ok {
		t.Fatal("C evicted out of LRU order")
	}
	st := c.statsMerged()
	if st.Evictions != 1 {
		t.Fatalf("%d evictions, want 1", st.Evictions)
	}
}

// TestCacheOversizedEntry checks that a graph larger than the shard
// budget is admitted alone (queries must be able to run) and evicted by
// the next insert.
func TestCacheOversizedEntry(t *testing.T) {
	c := newGraphCache(int64(cacheShards) * 100)
	id := GraphID(5)
	_, _, leader := c.claim(id)
	if !leader {
		t.Fatal("expected leadership on empty cache")
	}
	c.complete(id, &stubGraph{size: 10_000, edges: 0}, kindIntra, nil)
	if _, ok := c.get(id); !ok {
		t.Fatal("oversized graph not admitted")
	}
	checkShardInvariants(t, c)
}

// TestShardBudgetDegenerate is the regression test for the budget
// split: a positive budget smaller than the shard count used to floor
// every shard to zero; it must instead go whole to shard 0 so the
// budgets still sum to the configured total.
func TestShardBudgetDegenerate(t *testing.T) {
	for _, budget := range []int64{1, 5, cacheShards - 1} {
		c := newGraphCache(budget)
		var sum int64
		for i := range c.shards {
			sum += c.shards[i].budget
		}
		if sum != budget {
			t.Errorf("budget %d: shard budgets sum to %d, want the full budget", budget, sum)
		}
		if c.shards[0].budget != budget {
			t.Errorf("budget %d: shard 0 has %d, want the whole degenerate budget", budget, c.shards[0].budget)
		}
		// reset must apply the same rule.
		c.reset(budget)
		if c.shards[0].budget != budget {
			t.Errorf("reset(%d): shard 0 has %d, want the whole degenerate budget", budget, c.shards[0].budget)
		}
	}
	// Non-degenerate budgets still split evenly; zero stays zero.
	c := newGraphCache(cacheShards * 100)
	for i := range c.shards {
		if c.shards[i].budget != 100 {
			t.Fatalf("shard %d budget = %d, want 100", i, c.shards[i].budget)
		}
	}
	c.reset(0)
	for i := range c.shards {
		if c.shards[i].budget != 0 {
			t.Fatalf("reset(0): shard %d budget = %d", i, c.shards[i].budget)
		}
	}
}

// TestShardMappingCoversAllShards checks the hash shift is derived from
// the shard-count constant: dense graph IDs must spread over every
// shard (a stale hardcoded shift would index a sub- or superset).
func TestShardMappingCoversAllShards(t *testing.T) {
	c := newGraphCache(1 << 20)
	seen := map[*cacheShard]bool{}
	for id := GraphID(0); id < 1<<14; id++ {
		seen[c.shard(id)] = true
	}
	if len(seen) != cacheShards {
		t.Fatalf("dense IDs reached %d shards, want %d", len(seen), cacheShards)
	}
}

// TestCacheStatsReconcileUnderResetChaos is the serving-path accounting
// invariant test: 32 goroutines drive a mixed get/claim/complete
// workload while the cache is concurrently emptied and re-budgeted;
// after the chaos phase quiesces, a counted phase (no resets) must
// reconcile exactly — merged Hits+Misses equals the number of get
// calls, and Loads+Coalesced covers every miss.
func TestCacheStatsReconcileUnderResetChaos(t *testing.T) {
	const goroutines = 32
	c := newGraphCache(24 << 10)
	workload := func(gets *atomic.Int64, ops int) {
		var wg sync.WaitGroup
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)*313 + 11))
				for op := 0; op < ops; op++ {
					id := GraphID(rng.Intn(200))
					if gets != nil {
						gets.Add(1)
					}
					if _, ok := c.get(id); ok {
						continue
					}
					g, err, leader := c.claim(id)
					if err != nil {
						t.Errorf("claim(%d): %v", id, err)
						return
					}
					if !leader {
						if g == nil {
							t.Errorf("claim(%d): follower got nil graph without error", id)
						}
						continue
					}
					sz := int64(128 + (int(id)*53)%1024)
					c.complete(id, &stubGraph{size: sz, edges: int64(id)}, kindIntra, nil)
				}
			}(w)
		}
		wg.Wait()
	}

	// Chaos phase: workload with a concurrent resetter. No counter
	// equalities hold across resets; this phase exists to interleave
	// resets with in-flight claims (run under -race).
	stop := make(chan struct{})
	var resetter sync.WaitGroup
	resetter.Add(1)
	go func() {
		defer resetter.Done()
		budgets := []int64{7, 8 << 10, 24 << 10, 48 << 10} // includes a degenerate budget
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				c.reset(budgets[i%len(budgets)])
			}
		}
	}()
	workload(nil, 2000)
	close(stop)
	resetter.Wait()

	// Counted phase: quiesced counters, no resets — exact reconciliation.
	c.resetStats()
	var gets atomic.Int64
	workload(&gets, 3000)
	if t.Failed() {
		return
	}
	checkShardInvariants(t, c)
	st := c.statsMerged()
	if got := st.Hits + st.Misses; got != gets.Load() {
		t.Fatalf("Hits+Misses = %d, want %d (one per get call)", got, gets.Load())
	}
	if st.Loads+st.Coalesced < st.Misses {
		t.Fatalf("Loads+Coalesced = %d does not cover Misses = %d: a miss resolved without a load, wait, or reuse",
			st.Loads+st.Coalesced, st.Misses)
	}
	if st.Loads > st.Misses {
		t.Fatalf("Loads=%d exceeds Misses=%d", st.Loads, st.Misses)
	}
}
