package snode

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/store"
	"snode/internal/trace"
	"snode/internal/webgraph"
	"snode/internal/workpool"
)

// Representation is an opened, queryable S-Node representation. It
// implements store.LinkStore. Out-of-line graphs are demand-loaded
// through the buffer manager; the supernode graph and the indexes stay
// in memory, like the paper's setup.
//
// A Representation is safe for concurrent use by any number of
// goroutines; see the package documentation for the thread-safety
// contract.
type Representation struct {
	dir   string
	m     *meta
	cache *graphCache
	acc   *iosim.Accountant
	files []*iosim.File

	// domainOfSN[s] = index into m.Domains for supernode s. Immutable
	// after Open, like m.
	domainOfSN []int32

	// decodeHist, when set via RegisterMetrics, times every lower-level
	// graph decode (atomic pointer: registration may race with serving).
	decodeHist atomic.Pointer[metrics.Histogram]

	// codecHists, when set via RegisterMetrics, times decodes per wire
	// codec (indexed by codec ID), so a mixed "auto" artifact shows
	// which codec its cache misses actually pay for.
	codecHists [numCodecs]atomic.Pointer[metrics.Histogram]

	// decodeFault, when non-nil, is consulted before every decode — the
	// fault-injection hook the error-path regression tests use to fail a
	// mid-span decode on demand. Set it before serving; nil in
	// production.
	decodeFault func(GraphID) error

	// hedgeAfter > 0 arms hedged reads: a goroutine coalesced behind
	// another request's in-flight decode for longer than this launches
	// its own private read+decode rather than waiting out a straggling
	// leader (SetHedge; 0 = off, the default).
	hedgeAfter atomic.Int64

	// Hedge accounting (atomics: bumped from concurrent waiters).
	hedges      atomic.Int64
	hedgeWins   atomic.Int64
	hedgeLosses atomic.Int64
}

// errDecodeAbandoned completes a claimed in-flight decode whose leader
// unwound (panic or early return) without producing a result: waiters
// are released with this error instead of blocking forever.
var errDecodeAbandoned = errors.New("snode: decode abandoned by leader")

// Reader is the concurrency-safe read handle over an S-Node
// representation (the name the serving layer uses; Open returns one).
type Reader = Representation

// readBufPool recycles per-call read buffers so concurrent queries do
// not contend on a shared scratch buffer (the old single-threaded
// design) or allocate a fresh span buffer per access.
var readBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getReadBuf(n int) *[]byte {
	bp := readBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return bp
}

// Open loads the representation in dir, with the given buffer-manager
// budget and disk model.
func Open(dir string, cacheBudget int64, model iosim.Model) (*Representation, error) {
	m, err := readMeta(filepath.Join(dir, "meta.bin"))
	if err != nil {
		return nil, err
	}
	acc := iosim.NewAccountant(model)
	r := &Representation{
		dir:   dir,
		m:     m,
		cache: newGraphCache(cacheBudget),
		acc:   acc,
	}
	for i := range m.FileSizes {
		f, err := acc.Open(indexFileName(dir, int32(i)))
		if err != nil {
			r.Close()
			return nil, err
		}
		r.files = append(r.files, f)
	}
	r.domainOfSN = make([]int32, m.Stats.Supernodes)
	for k := 0; k+1 < len(m.DomFirstSN); k++ {
		for s := m.DomFirstSN[k]; s < m.DomFirstSN[k+1]; s++ {
			r.domainOfSN[s] = int32(k)
		}
	}
	return r, nil
}

// Name implements store.LinkStore.
func (r *Representation) Name() string { return "snode" }

// NumPages implements store.LinkStore.
func (r *Representation) NumPages() int { return int(r.m.NumPages) }

// Stats implements store.LinkStore (I/O plus graph loads).
func (r *Representation) Stats() store.AccessStats {
	return store.AccessStats{IO: r.acc.Stats(), GraphsLoaded: r.cache.statsMerged().Loads}
}

// StatsExt reports the extended S-Node statistics (per-shard cache
// counters merged on read).
func (r *Representation) StatsExt() AccessStatsExt {
	return AccessStatsExt{IO: r.acc.Stats(), Cache: r.cache.statsMerged()}
}

// DecodedEdges reports edges decoded since the last stats reset.
func (r *Representation) DecodedEdges() int64 { return r.cache.decodedEdges() }

// RegisterMetrics exposes the representation's serving counters on a
// registry under the given name prefix (e.g. "snode_fwd"): buffer-
// manager hit/miss/load/coalesce/eviction counters, the decoded-edge
// counter behind the Table 2 throughput metric, resident decoded bytes
// and entry gauges, the I/O accountant's seek/transfer/stall counters,
// and a decode-latency histogram. All values are read from the same
// synchronized state as StatsExt, so a /metrics scrape always
// reconciles with it.
func (r *Representation) RegisterMetrics(reg *metrics.Registry, prefix string) {
	r.acc.RegisterMetrics(reg, prefix+"_io")
	cs := func(f func(CacheStats) int64) func() int64 {
		return func() int64 { return f(r.cache.statsMerged()) }
	}
	reg.CounterFunc(prefix+"_cache_hits", cs(func(s CacheStats) int64 { return s.Hits }))
	reg.CounterFunc(prefix+"_cache_misses", cs(func(s CacheStats) int64 { return s.Misses }))
	reg.CounterFunc(prefix+"_cache_loads", cs(func(s CacheStats) int64 { return s.Loads }))
	reg.CounterFunc(prefix+"_cache_coalesced", cs(func(s CacheStats) int64 { return s.Coalesced }))
	reg.CounterFunc(prefix+"_cache_evictions", cs(func(s CacheStats) int64 { return s.Evictions }))
	reg.CounterFunc(prefix+"_cache_intra_loads", cs(func(s CacheStats) int64 { return s.IntraLoads }))
	reg.CounterFunc(prefix+"_cache_super_loads", cs(func(s CacheStats) int64 { return s.SuperLoads }))
	reg.CounterFunc(prefix+"_decoded_edges", r.cache.decodedEdges)
	reg.GaugeFunc(prefix+"_cache_bytes", r.cache.usedBytes)
	reg.GaugeFunc(prefix+"_cache_entries", r.cache.entries)
	reg.CounterFunc(prefix+"_hedges", r.hedges.Load)
	reg.CounterFunc(prefix+"_hedge_wins", r.hedgeWins.Load)
	reg.CounterFunc(prefix+"_hedge_losses", r.hedgeLosses.Load)
	reg.GaugeFunc(prefix+"_inflight_decodes", r.cache.inflightCount)
	r.decodeHist.Store(reg.Histogram(prefix+"_decode_seconds", nil))
	// Per-codec rows: decode latency histograms plus the artifact's
	// static composition (graphs/bytes/edges per wire format, and
	// bits-per-edge in milli-bits since gauges are integers). Rows exist
	// for every registered codec so dashboards have a stable schema;
	// codecs absent from the artifact report zero.
	for id, cd := range codecTable {
		name := cd.Name()
		r.codecHists[id].Store(reg.Histogram(prefix+"_decode_seconds_"+name, nil))
		var st CodecBuildStat
		for _, cs := range r.m.Stats.Codecs {
			if int(cs.ID) == id {
				st = cs
				break
			}
		}
		reg.GaugeFunc(prefix+"_codec_supernodes_"+name, func() int64 { return st.Supernodes })
		reg.GaugeFunc(prefix+"_codec_graphs_"+name, func() int64 { return st.Graphs })
		reg.GaugeFunc(prefix+"_codec_bytes_"+name, func() int64 { return st.Bytes })
		reg.GaugeFunc(prefix+"_codec_edges_"+name, func() int64 { return st.Edges })
		reg.GaugeFunc(prefix+"_bits_per_edge_milli_"+name, func() int64 {
			if st.Edges == 0 {
				return 0
			}
			return st.Bytes * 8 * 1000 / st.Edges
		})
	}
}

// ResetStats implements store.LinkStore. The buffer manager's contents
// are retained (a warm cache between queries, as in the paper's
// repeated-trial methodology); counters are zeroed.
func (r *Representation) ResetStats() {
	r.acc.Reset()
	r.cache.resetStats()
}

// ResetCache empties the buffer manager and sets a new budget (used by
// the Figure 12 sweep).
func (r *Representation) ResetCache(budget int64) {
	r.cache.reset(budget)
	r.acc.Reset()
}

// SetPace implements store.Pacer: every subsequent read stalls its
// calling goroutine for the read's modeled disk time times scale
// (0 disables). The concurrent-serving experiments use this to let
// goroutines overlap modeled I/O waits for real.
func (r *Representation) SetPace(scale float64) { r.acc.SetPace(scale) }

// SetHedge implements store.Hedger: a request coalesced behind another
// request's in-flight decode for longer than after launches its own
// private read+decode of the same graph and takes whichever result
// lands first (0 disables, the default). The hedge never touches the
// buffer manager — only the flight's leader completes it — so hedging
// changes tail latency, never cache contents or correctness.
func (r *Representation) SetHedge(after time.Duration) { r.hedgeAfter.Store(int64(after)) }

// HedgeStats reports hedged-read counts since Open: hedges launched,
// hedges that beat their leader, hedges the leader beat.
func (r *Representation) HedgeStats() (launched, wins, losses int64) {
	return r.hedges.Load(), r.hedgeWins.Load(), r.hedgeLosses.Load()
}

// InflightDecodes reports decodes currently claimed but not completed.
// It must drain to zero once no request is active — the invariant the
// deadline and shutdown tests assert (an orphaned flight would block
// every future request for that graph forever).
func (r *Representation) InflightDecodes() int64 { return r.cache.inflightCount() }

// BuildStats returns the stored build statistics.
func (r *Representation) BuildStats() BuildStats { return r.m.Stats }

// SizeBytes implements store.Sized (Table 1 accounting).
func (r *Representation) SizeBytes() int64 { return r.m.Stats.SizeBytes() }

// Close releases the index files. It must not race in-flight queries.
func (r *Representation) Close() error {
	var first error
	for _, f := range r.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.files = nil
	return first
}

// snOf returns the supernode owning an internal page ID (PageID index:
// binary search over the contiguous ranges).
func (r *Representation) snOf(internal int32) int32 {
	lo, hi := 0, len(r.m.SnBase)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if r.m.SnBase[mid] <= internal {
			lo = mid
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// DomainSupernodes returns the supernode range [lo, hi) for a domain
// via the domain index, and whether the domain exists.
func (r *Representation) DomainSupernodes(domain string) (lo, hi int32, ok bool) {
	k := sort.SearchStrings(r.m.Domains, domain)
	if k == len(r.m.Domains) || r.m.Domains[k] != domain {
		return 0, 0, false
	}
	return r.m.DomFirstSN[k], r.m.DomFirstSN[k+1], true
}

// load returns the decoded graph gid, from cache or disk. Concurrent
// loads of the same graph coalesce onto one decode.
func (r *Representation) load(gid GraphID) (decodedGraph, error) {
	return r.loadCtx(context.Background(), gid)
}

// loadCtx is load with request-scoped context: traced requests record
// their coalesced waits and led decodes.
func (r *Representation) loadCtx(ctx context.Context, gid GraphID) (decodedGraph, error) {
	if g, ok := r.cache.get(gid); ok {
		trace.Add(ctx, trace.CtrCacheHits, 1)
		return g, nil
	}
	trace.Add(ctx, trace.CtrCacheMisses, 1)
	g, err, leader := r.claimTraced(ctx, gid)
	if !leader {
		return g, err
	}
	return r.readDecodeComplete(ctx, gid)
}

// claimTraced wraps graphCache.claimNoWait with trace attribution: a
// non-leader outcome is a coalesced miss — either found decoded by
// claim time or waited out another goroutine's in-flight decode — and
// traced requests record the wait as a "cache.wait" span, so a slow
// query that lost time blocked behind someone else's decode shows it.
// The wait itself goes through awaitFlight, which honours ctx
// cancellation and, when armed via SetHedge, hedges a straggling
// leader.
func (r *Representation) claimTraced(ctx context.Context, gid GraphID) (decodedGraph, error, bool) {
	g, fl, leader := r.cache.claimNoWait(gid)
	if leader {
		return nil, nil, true
	}
	trace.Add(ctx, trace.CtrCoalesced, 1)
	if fl == nil {
		return g, nil, false
	}
	if !trace.Active(ctx) {
		g, err := r.awaitFlight(ctx, gid, fl)
		return g, err, false
	}
	start := time.Now()
	g, err := r.awaitFlight(ctx, gid, fl)
	trace.RecordSpan(ctx, "cache.wait", start, time.Since(start),
		trace.Attr{Key: "gid", Val: int64(gid)})
	return g, err, false
}

// awaitFlight waits out another goroutine's in-flight decode of gid,
// with two escapes the plain channel receive lacks: the wait honours
// ctx cancellation (a dead request stops waiting; the flight itself is
// untouched — its leader still completes it), and once the wait
// exceeds the armed hedge threshold the waiter launches a private
// read+decode of the same graph and takes whichever result lands
// first. The hedge never touches the cache, so only the leader ever
// completes the flight — a hedge cannot double-complete or leave an
// orphaned flight by construction. A losing hedge is cancelled via its
// context (the interruptible paced stall makes that prompt) and drains
// into a buffered channel, so it is never leaked either.
func (r *Representation) awaitFlight(ctx context.Context, gid GraphID, fl *inflightDecode) (decodedGraph, error) {
	hedgeAfter := time.Duration(r.hedgeAfter.Load())
	if hedgeAfter <= 0 {
		if ctx.Done() == nil {
			<-fl.done
			return fl.g, fl.err
		}
		select {
		case <-fl.done:
			return fl.g, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	timer := time.NewTimer(hedgeAfter)
	select {
	case <-fl.done:
		timer.Stop()
		return fl.g, fl.err
	case <-ctx.Done():
		timer.Stop()
		return nil, ctx.Err()
	case <-timer.C:
	}

	// The leader is straggling: hedge it.
	r.hedges.Add(1)
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type hedgeResult struct {
		g   decodedGraph
		err error
	}
	res := make(chan hedgeResult, 1) // buffered: a losing hedge never blocks
	start := time.Now()
	go func() {
		g, err := r.readDecodeHedged(hctx, gid)
		res <- hedgeResult{g, err}
	}()
	recordHedge := func(won int64) {
		if trace.Active(ctx) {
			trace.RecordSpan(ctx, "snode.hedge", start, time.Since(start),
				trace.Attr{Key: "gid", Val: int64(gid)},
				trace.Attr{Key: "won", Val: won})
		}
	}
	select {
	case <-fl.done:
		// Leader won; the deferred cancel reaps the hedge.
		r.hedgeLosses.Add(1)
		recordHedge(0)
		return fl.g, fl.err
	case hr := <-res:
		if hr.err != nil {
			// A failed hedge must not mask the leader's result: fall back
			// to the plain wait.
			r.hedgeLosses.Add(1)
			recordHedge(0)
			select {
			case <-fl.done:
				return fl.g, fl.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		r.hedgeWins.Add(1)
		recordHedge(1)
		return hr.g, hr.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// readDecodeHedged is the hedge's private copy of the leader's work:
// read gid's bytes and decode them, touching neither the flight table
// nor the cache contents — no claim, no complete, no insert. The
// decoded copy serves exactly one waiter and is garbage afterwards;
// the leader's copy is what the buffer manager keeps. Identical input
// bytes mean the hedge's rows are byte-identical to the leader's,
// which the hedging on/off golden test pins.
func (r *Representation) readDecodeHedged(ctx context.Context, gid GraphID) (decodedGraph, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e := &r.m.Directory[gid]
	if int(e.File) >= len(r.files) {
		return nil, fmt.Errorf("snode: graph %d in missing file %d", gid, e.File)
	}
	bp := getReadBuf(int(e.NumBytes))
	defer readBufPool.Put(bp)
	buf := (*bp)[:e.NumBytes]
	if _, err := r.files[e.File].ReadAtCtx(ctx, buf, e.Offset); err != nil {
		return nil, fmt.Errorf("snode: hedge read graph %d: %w", gid, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.decode(gid, buf)
}

// readDecodeComplete performs the leader's half of a claimed decode:
// read the graph's bytes, decode, and complete the flight (releasing
// any coalesced waiters) whether or not anything failed — including a
// panicking decode, which the deferred sweep converts into a released
// flight instead of a permanently blocked waiter set.
func (r *Representation) readDecodeComplete(ctx context.Context, gid GraphID) (decodedGraph, error) {
	e := &r.m.Directory[gid]
	completed := false
	defer func() {
		if !completed {
			r.cache.complete(gid, nil, e.Kind, errDecodeAbandoned)
		}
	}()
	g, err := func() (decodedGraph, error) {
		if int(e.File) >= len(r.files) {
			return nil, fmt.Errorf("snode: graph %d in missing file %d", gid, e.File)
		}
		bp := getReadBuf(int(e.NumBytes))
		defer readBufPool.Put(bp)
		buf := (*bp)[:e.NumBytes]
		if _, err := r.files[e.File].ReadAtCtx(ctx, buf, e.Offset); err != nil {
			return nil, fmt.Errorf("snode: read graph %d: %w", gid, err)
		}
		return r.decodeTraced(ctx, gid, buf)
	}()
	r.cache.complete(gid, g, e.Kind, err)
	completed = true
	return g, err
}

// decodeTraced wraps decode with per-request attribution: the decode
// becomes a "cache.decode" span marked leader=1 (this request paid for
// it; coalesced waiters record "cache.wait" instead) with the graph's
// id, kind, and encoded size.
func (r *Representation) decodeTraced(ctx context.Context, gid GraphID, buf []byte) (decodedGraph, error) {
	if !trace.Active(ctx) {
		return r.decode(gid, buf)
	}
	start := time.Now()
	g, err := r.decode(gid, buf)
	trace.RecordSpan(ctx, "cache.decode", start, time.Since(start),
		trace.Attr{Key: "gid", Val: int64(gid)},
		trace.Attr{Key: "kind", Val: int64(r.m.Directory[gid].Kind)},
		trace.Attr{Key: "bytes", Val: int64(len(buf))},
		trace.Attr{Key: "leader", Val: 1})
	trace.Add(ctx, trace.CtrDecodes, 1)
	trace.Add(ctx, trace.CtrDecodedBytes, int64(len(buf)))
	return g, err
}

// decode parses one graph's encoded bytes into its in-memory form,
// dispatching on the directory entry's codec ID (validated at Open, so
// the table lookup cannot miss).
func (r *Representation) decode(gid GraphID, buf []byte) (decodedGraph, error) {
	if r.decodeFault != nil {
		if err := r.decodeFault(gid); err != nil {
			return nil, err
		}
	}
	e := &r.m.Directory[gid]
	h := r.decodeHist.Load()
	hc := r.codecHists[e.Codec].Load()
	if h != nil || hc != nil {
		start := time.Now()
		defer func() {
			d := time.Since(start)
			if h != nil {
				h.ObserveDuration(d)
			}
			if hc != nil {
				hc.ObserveDuration(d)
			}
		}()
	}
	return r.decodePayload(e, buf)
}

// decodePayload is the bare codec dispatch: no hooks, no metrics. The
// serving path reaches it through decode; MeasureDecode times it
// directly.
func (r *Representation) decodePayload(e *dirEntry, buf []byte) (decodedGraph, error) {
	cd := codecTable[e.Codec]
	switch e.Kind {
	case kindIntra:
		return cd.DecodeIntra(buf, int(e.NumLists))
	case kindSuperPos:
		niSize := r.m.SnBase[e.I+1] - r.m.SnBase[e.I]
		njSize := r.m.SnBase[e.J+1] - r.m.SnBase[e.J]
		return cd.DecodeSuperPos(buf, int(e.NumLists), niSize, njSize)
	case kindSuperNeg:
		njSize := r.m.SnBase[e.J+1] - r.m.SnBase[e.J]
		return cd.DecodeSuperNeg(buf, int(e.NumLists), njSize)
	default:
		return nil, fmt.Errorf("snode: graph has unknown kind %d", e.Kind)
	}
}

// Out implements store.LinkStore: the full adjacency of external page
// p, assembled from the intranode graph and every out-superedge graph
// of p's supernode (the paper's noted trade-off of partitioned
// adjacency lists).
func (r *Representation) Out(p webgraph.PageID, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	return r.OutFilteredCtx(context.Background(), p, nil, buf)
}

// OutCtx is Out with request-scoped context (tracing, cancellation).
func (r *Representation) OutCtx(ctx context.Context, p webgraph.PageID, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	return r.OutFilteredCtx(ctx, p, nil, buf)
}

// OutFiltered implements store.LinkStore. The filter is exploited
// structurally: a superedge graph is loaded only when its target
// supernode can contain accepted pages, which is how S-Node achieves
// focused access (§1.2, Requirement 2).
func (r *Representation) OutFiltered(p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	return r.OutFilteredCtx(context.Background(), p, f, buf)
}

// OutFilteredCtx implements store.ContextLinkStore: OutFiltered with a
// request-scoped context. When ctx carries an execution trace the
// lookup attributes its work to the request — graphs consulted, cache
// hits and misses, coalesced waits behind other goroutines' decodes,
// span reads and the decodes they led — without a single allocation on
// the untraced path.
func (r *Representation) OutFilteredCtx(ctx context.Context, p webgraph.PageID, f *store.Filter, buf []webgraph.PageID) ([]webgraph.PageID, error) {
	if p < 0 || p >= r.m.NumPages {
		return buf, fmt.Errorf("snode: page %d out of range", p)
	}
	internal := r.m.Perm[p]
	i := r.snOf(internal)
	local := internal - r.m.SnBase[i]

	// Per-call view of which supernodes the filter accepts.
	var acceptSN func(sn int32) bool
	var acceptDomainOf func(sn int32) bool
	if !f.Empty() {
		var pageSNs map[int32]bool
		if f.Pages != nil {
			pageSNs = make(map[int32]bool, len(f.Pages))
			for pg := range f.Pages {
				if pg >= 0 && pg < r.m.NumPages {
					pageSNs[r.snOf(r.m.Perm[pg])] = true
				}
			}
		}
		acceptDomainOf = func(sn int32) bool {
			return f.Domains != nil && f.Domains[r.m.Domains[r.domainOfSN[sn]]]
		}
		acceptSN = func(sn int32) bool {
			if acceptDomainOf(sn) {
				return true
			}
			return pageSNs[sn]
		}
	}

	emit := func(j int32, locals []int32) {
		base := r.m.SnBase[j]
		if f.Empty() {
			for _, t := range locals {
				buf = append(buf, r.m.Inv[base+t])
			}
			return
		}
		domOK := acceptDomainOf(j)
		for _, t := range locals {
			ext := r.m.Inv[base+t]
			if domOK || f.AcceptsPage(ext) {
				buf = append(buf, ext)
			}
		}
	}

	// Process each needed graph exactly once, streaming: emit this
	// page's targets from a graph the moment it is available, so a
	// working set larger than the cache budget is read once per access
	// rather than thrashing (load-all then re-read). Uncached graphs are
	// fetched with span reads — §3.3's disk layout puts a supernode's
	// graphs in one contiguous ascending run, so the spans collapse into
	// few sequential reads.
	var negBuf []int32
	var firstErr error
	process := func(gid GraphID, j int32, g decodedGraph) {
		if firstErr != nil {
			return
		}
		switch sg := g.(type) {
		case *decodedIntra:
			emit(j, sg.lists[local])
		case *decodedSuperPos:
			if ts := sg.targetsOf(local); ts != nil {
				emit(j, ts)
			}
		case *decodedSuperNeg:
			negBuf = sg.appendTargets(local, negBuf[:0])
			emit(j, negBuf)
		default:
			firstErr = fmt.Errorf("snode: graph %d has wrong type", gid)
		}
	}

	var need []needEntry
	if acceptSN == nil || acceptSN(i) {
		need = append(need, needEntry{r.m.IntraGID[i], i})
	}
	for k := r.m.SuperOff[i]; k < r.m.SuperOff[i+1]; k++ {
		if j := r.m.SuperAdj[k]; acceptSN == nil || acceptSN(j) {
			need = append(need, needEntry{r.m.SuperGID[k], j})
		}
	}

	// Pass 1: emit from cached graphs; collect misses (ascending gid ==
	// disk order, because the intranode graph precedes its superedges).
	var miss []needEntry
	for _, ne := range need {
		if g, ok := r.cache.get(ne.gid); ok {
			process(ne.gid, ne.j, g)
		} else {
			miss = append(miss, ne)
		}
	}
	if trace.Active(ctx) {
		trace.Add(ctx, trace.CtrLookups, 1)
		trace.Add(ctx, trace.CtrGraphsNeeded, int64(len(need)))
		trace.Add(ctx, trace.CtrCacheHits, int64(len(need)-len(miss)))
		trace.Add(ctx, trace.CtrCacheMisses, int64(len(miss)))
	}
	// Pass 2: resolve the misses. Each miss is claimed singleflight-
	// style: if another goroutine already decoded (or is decoding) the
	// graph, its result is reused; when this call leads a decode, the
	// span is extended over subsequent misses it can also lead, so the
	// §3.3 contiguous layout still collapses into few sequential reads.
	for k := 0; k < len(miss) && firstErr == nil; {
		// Cancellation checkpoint: no claims are held at the loop head, so
		// a dead request stops here without orphaning a flight.
		if err := ctx.Err(); err != nil {
			return buf, err
		}
		g, err, leader := r.claimTraced(ctx, miss[k].gid)
		if !leader {
			if err != nil {
				return buf, err
			}
			process(miss[k].gid, miss[k].j, g)
			k++
			continue
		}
		first := &r.m.Directory[miss[k].gid]
		spanEnd := first.Offset + int64(first.NumBytes)
		claimed := miss[k : k+1 : k+1]
		const maxGap = 64 << 10
		end := k + 1
		for end < len(miss) {
			e := &r.m.Directory[miss[end].gid]
			if e.File != first.File || e.Offset-spanEnd > maxGap {
				break
			}
			g2, state := r.cache.tryClaim(miss[end].gid)
			if state == claimBusy {
				// Another goroutine owns this decode; stop extending and
				// wait for it on a later iteration rather than here,
				// while we still have our own claims to serve.
				break
			}
			if state == claimCached {
				// Decoded by someone else since pass 1: emit without
				// reading; its bytes become part of the gap allowance.
				process(miss[end].gid, miss[end].j, g2)
				end++
				continue
			}
			spanEnd = e.Offset + int64(e.NumBytes)
			claimed = append(claimed, miss[end])
			end++
		}
		// From this point the call holds claimed in-flight decodes that
		// coalesced waiters may be blocked on; readDecodeSpan guarantees
		// every one is completed exactly once on every exit path.
		if err := r.readDecodeSpan(ctx, claimed, spanEnd, process); err != nil {
			return buf, err
		}
		k = end
	}
	return buf, firstErr
}

// needEntry is one lower-level graph a lookup must consult: the graph
// and the target supernode its lists resolve into.
type needEntry struct {
	gid GraphID
	j   int32
}

// readDecodeSpan reads the contiguous byte span covering the claimed
// graphs in one ReadAt, decodes each, and completes every claimed
// in-flight decode exactly once. The deferred sweep makes the
// completion guarantee unconditional: whether the read fails, a decode
// fails, or a decode (or the process callback) panics, no claimed
// flight is left open — an abandoned flight would block its coalesced
// waiters forever. The first error is returned after all completions.
func (r *Representation) readDecodeSpan(ctx context.Context, claimed []needEntry, spanEnd int64, process func(gid GraphID, j int32, g decodedGraph)) error {
	first := &r.m.Directory[claimed[0].gid]
	completed := 0
	defer func() {
		for _, ne := range claimed[completed:] {
			r.cache.complete(ne.gid, nil, r.m.Directory[ne.gid].Kind, errDecodeAbandoned)
		}
	}()
	if int(first.File) >= len(r.files) {
		err := fmt.Errorf("snode: graph %d in missing file %d", claimed[0].gid, first.File)
		for _, ne := range claimed {
			r.cache.complete(ne.gid, nil, r.m.Directory[ne.gid].Kind, err)
		}
		completed = len(claimed)
		return err
	}
	n := int(spanEnd - first.Offset)
	// The whole span read + decode run becomes one "snode.read_span"
	// span on traced requests, parenting the iosim.read and cache.decode
	// spans it causes.
	spanCtx, sp := trace.Start(ctx, "snode.read_span")
	sp.SetAttr("graphs", int64(len(claimed)))
	sp.SetAttr("bytes", int64(n))
	defer sp.End()
	bp := getReadBuf(n)
	defer readBufPool.Put(bp)
	rb := (*bp)[:n]
	if _, err := r.files[first.File].ReadAtCtx(spanCtx, rb, first.Offset); err != nil {
		readErr := fmt.Errorf("snode: span read: %w", err)
		for _, ne := range claimed {
			r.cache.complete(ne.gid, nil, r.m.Directory[ne.gid].Kind, readErr)
		}
		completed = len(claimed)
		return readErr
	}
	// Decode and complete every claimed graph — even after an error, so
	// no waiter is left blocked on an abandoned flight.
	var decodeErr error
	for _, ne := range claimed {
		e := &r.m.Directory[ne.gid]
		off := e.Offset - first.Offset
		g, err := r.decodeTraced(spanCtx, ne.gid, rb[off:off+int64(e.NumBytes)])
		r.cache.complete(ne.gid, g, e.Kind, err)
		completed++
		if err != nil && decodeErr == nil {
			decodeErr = err
		}
		if err == nil && decodeErr == nil {
			process(ne.gid, ne.j, g)
		}
	}
	return decodeErr
}

// ParallelNeighbors resolves the adjacency of every page in ps
// concurrently over a bounded worker pool (workers <= 0 uses
// GOMAXPROCS) and returns the per-page lists in input order. Concurrent
// lookups share the buffer manager: pages of one supernode coalesce
// onto a single decode of its graphs. The context propagates into
// every lookup: cancellation stops dispatch of further pages, and a
// trace carried by ctx attributes the whole batch — including each
// item's queue wait — to the requesting query.
func (r *Representation) ParallelNeighbors(ctx context.Context, ps []webgraph.PageID, workers int) ([][]webgraph.PageID, error) {
	return r.ParallelNeighborsFiltered(ctx, ps, nil, workers)
}

// ParallelNeighborsFiltered is ParallelNeighbors with a store.Filter
// applied to every lookup (the batched form of OutFiltered).
func (r *Representation) ParallelNeighborsFiltered(ctx context.Context, ps []webgraph.PageID, f *store.Filter, workers int) ([][]webgraph.PageID, error) {
	out := make([][]webgraph.PageID, len(ps))
	err := workpool.New(workers).ForEachCtx(ctx, len(ps), func(ctx context.Context, i int) error {
		var err error
		out[i], err = r.OutFilteredCtx(ctx, ps[i], f, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeAll materializes the entire graph in memory as a CSR webgraph
// (external IDs) — the "global access" mode for mining tasks. It
// bypasses the cache.
func (r *Representation) DecodeAll() (*webgraph.Graph, error) {
	b := webgraph.NewBuilder(int(r.m.NumPages))
	var buf []webgraph.PageID
	for p := int32(0); p < r.m.NumPages; p++ {
		var err error
		buf, err = r.Out(p, buf[:0])
		if err != nil {
			return nil, err
		}
		for _, q := range buf {
			b.AddEdge(p, q)
		}
	}
	return b.Build(), nil
}

// Verify decodes every graph in the directory and checks the
// representation's cross-structure invariants: every list decodes
// within its local ID space, positive superedge graphs have sources,
// every superedge graph corresponds to a supernode-graph edge, and the
// total positive edge count matches the recorded NumEdges. It reads the
// whole representation once (sequentially) and leaves the cache as it
// found it budget-wise.
func (r *Representation) Verify() error {
	var edges int64
	for s := int32(0); s < int32(r.m.Stats.Supernodes); s++ {
		g, err := r.load(r.m.IntraGID[s])
		if err != nil {
			return fmt.Errorf("snode: verify intranode %d: %w", s, err)
		}
		ig, ok := g.(*decodedIntra)
		if !ok {
			return fmt.Errorf("snode: intranode pointer of %d resolves to a superedge graph", s)
		}
		size := r.m.SnBase[s+1] - r.m.SnBase[s]
		if int32(len(ig.lists)) != size {
			return fmt.Errorf("snode: intranode %d has %d lists for %d pages", s, len(ig.lists), size)
		}
		edges += ig.edgeCount()
		for k := r.m.SuperOff[s]; k < r.m.SuperOff[s+1]; k++ {
			j := r.m.SuperAdj[k]
			e := &r.m.Directory[r.m.SuperGID[k]]
			if e.I != s || e.J != j {
				return fmt.Errorf("snode: superedge (%d,%d) directory entry labels (%d,%d)",
					s, j, e.I, e.J)
			}
			sg, err := r.load(r.m.SuperGID[k])
			if err != nil {
				return fmt.Errorf("snode: verify superedge (%d,%d): %w", s, j, err)
			}
			njSize := int64(r.m.SnBase[j+1] - r.m.SnBase[j])
			switch t := sg.(type) {
			case *decodedSuperPos:
				pos := t.edgeCount()
				if pos == 0 {
					return fmt.Errorf("snode: superedge (%d,%d) is empty (no such edge should exist)", s, j)
				}
				edges += pos
			case *decodedSuperNeg:
				neg := t.edgeCount()
				pos := int64(size)*njSize - neg
				if pos <= 0 {
					return fmt.Errorf("snode: negative superedge (%d,%d) implies %d links", s, j, pos)
				}
				edges += pos
			default:
				return fmt.Errorf("snode: superedge (%d,%d) has intranode kind", s, j)
			}
		}
	}
	if edges != r.m.NumEdges {
		return fmt.Errorf("snode: representation holds %d links, metadata records %d",
			edges, r.m.NumEdges)
	}
	return nil
}

// Supernodes reports the supernode count; Superedges the superedge
// count (Figure 9 metrics).
func (r *Representation) Supernodes() int   { return r.m.Stats.Supernodes }
func (r *Representation) Superedges() int64 { return r.m.Stats.Superedges }

// Codecs reports the artifact's per-codec composition as recorded at
// build time (one entry per codec that encoded at least one supernode).
// Version-1 artifacts predate the record; readMeta synthesizes a
// paper-only entry for them, so the slice is never empty for a valid
// artifact.
func (r *Representation) Codecs() []CodecBuildStat {
	return append([]CodecBuildStat(nil), r.m.Stats.Codecs...)
}

// DecodeCost is one (codec, payload kind) row of MeasureDecode: the
// cost of decoding every payload of that class in the artifact.
type DecodeCost struct {
	Codec  string `json:"codec"`
	Kind   string `json:"kind"` // "intra", "super_pos", "super_neg"
	Graphs int64  `json:"graphs"`
	Bytes  int64  `json:"bytes"`
	Edges  int64  `json:"edges"` // stored (list) edges
	Ns     int64  `json:"ns"`    // fastest whole-class decode round
}

func kindName(kind uint8) string {
	switch kind {
	case kindIntra:
		return "intra"
	case kindSuperPos:
		return "super_pos"
	case kindSuperNeg:
		return "super_neg"
	}
	return fmt.Sprintf("kind_%d", kind)
}

// MeasureDecode reads every payload in the directory once, then times
// `rounds` full decode passes and reports, per (codec, kind) class, the
// bytes, stored edges, and the fastest round's decode nanoseconds. The
// payload bytes are read up front so the measurement is pure CPU decode
// cost — no I/O, no cache, no metrics hooks. It is the instrument
// behind the codec bake-off grid; serving is unaffected (the graph
// cache is bypassed entirely).
func (r *Representation) MeasureDecode(rounds int) ([]DecodeCost, error) {
	if rounds <= 0 {
		rounds = 1
	}
	bufs := make([][]byte, len(r.m.Directory))
	for gid := range r.m.Directory {
		e := &r.m.Directory[gid]
		buf := make([]byte, e.NumBytes)
		if _, err := r.files[e.File].ReadAtCtx(context.Background(), buf, e.Offset); err != nil {
			return nil, fmt.Errorf("snode: measure read graph %d: %w", gid, err)
		}
		bufs[gid] = buf
	}
	type classKey struct {
		codec uint8
		kind  uint8
	}
	agg := map[classKey]*DecodeCost{}
	// Static tallies (and a correctness pass) once, untimed.
	for gid := range r.m.Directory {
		e := &r.m.Directory[gid]
		g, err := r.decodePayload(e, bufs[gid])
		if err != nil {
			return nil, fmt.Errorf("snode: measure decode graph %d: %w", gid, err)
		}
		k := classKey{e.Codec, e.Kind}
		dc := agg[k]
		if dc == nil {
			dc = &DecodeCost{Codec: codecTable[e.Codec].Name(), Kind: kindName(e.Kind)}
			agg[k] = dc
		}
		dc.Graphs++
		dc.Bytes += int64(e.NumBytes)
		dc.Edges += g.edgeCount()
	}
	for round := 0; round < rounds; round++ {
		perClass := map[classKey]int64{}
		for gid := range r.m.Directory {
			e := &r.m.Directory[gid]
			k := classKey{e.Codec, e.Kind}
			start := time.Now()
			if _, err := r.decodePayload(e, bufs[gid]); err != nil {
				return nil, err
			}
			perClass[k] += time.Since(start).Nanoseconds()
		}
		for k, ns := range perClass {
			if round == 0 || ns < agg[k].Ns {
				agg[k].Ns = ns
			}
		}
	}
	out := make([]DecodeCost, 0, len(agg))
	for _, dc := range agg {
		out = append(out, *dc)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Codec != out[b].Codec {
			return out[a].Codec < out[b].Codec
		}
		return out[a].Kind < out[b].Kind
	})
	return out, nil
}
