package snode

import (
	"context"
	"fmt"
	"testing"

	"snode/internal/iosim"
)

// Decode hot-path guards, wired into `make check-overhead`.
//
// The arena codecs (lz, log) must decode a whole graph in O(1)
// allocations regardless of size — a per-list or per-edge allocation
// regression trips the constant budget immediately. The paper codec
// decodes into per-list slices by design, so its budget scales with
// NumLists but a per-edge regression still trips it.

// decodeSamples returns, per payload kind, the largest graph of that
// kind with its raw payload bytes.
func decodeSamples(t testing.TB, r *Representation) map[uint8]struct {
	e   *dirEntry
	buf []byte
} {
	t.Helper()
	out := make(map[uint8]struct {
		e   *dirEntry
		buf []byte
	})
	for gi := range r.m.Directory {
		e := &r.m.Directory[gi]
		if cur, ok := out[e.Kind]; ok && cur.e.NumBytes >= e.NumBytes {
			continue
		}
		buf := make([]byte, e.NumBytes)
		if _, err := r.files[e.File].ReadAtCtx(context.Background(), buf, e.Offset); err != nil {
			t.Fatal(err)
		}
		out[e.Kind] = struct {
			e   *dirEntry
			buf []byte
		}{e, buf}
	}
	return out
}

func TestDecodeHotPathAllocs(t *testing.T) {
	for _, codec := range CodecNames() {
		t.Run(codec, func(t *testing.T) {
			dir := buildCodecRep(t, codec, 600)
			r, err := Open(dir, 1<<20, iosim.Model2002())
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for kind, s := range decodeSamples(t, r) {
				e, buf := s.e, s.buf
				allocs := testing.AllocsPerRun(50, func() {
					if _, err := r.decodePayload(e, buf); err != nil {
						t.Fatal(err)
					}
				})
				// Constant budget for arena codecs; paper scales with
				// the list count (append growth ≈ a handful per list).
				// Under -codec auto the winner varies per entry, so key
				// off the entry's recorded codec.
				budget := 16.0
				if e.Codec == codecIDPaper {
					budget = 16 + 6*float64(e.NumLists)
				}
				if allocs > budget {
					t.Errorf("%s kind %d (%d lists, %d bytes): %.0f allocs/decode, budget %.0f",
						codec, kind, e.NumLists, e.NumBytes, allocs, budget)
				}
			}
		})
	}
}

// BenchmarkDecode reports ns/edge per codec and kind on the largest
// graph of each kind in a synthetic build.
func BenchmarkDecode(b *testing.B) {
	for _, codec := range CodecNames() {
		dir := buildCodecRep(b, codec, 600)
		r, err := Open(dir, 1<<20, iosim.Model2002())
		if err != nil {
			b.Fatal(err)
		}
		for kind, s := range decodeSamples(b, r) {
			e, buf := s.e, s.buf
			g, err := r.decodePayload(e, buf)
			if err != nil {
				b.Fatal(err)
			}
			edges := g.edgeCount()
			if edges == 0 {
				edges = 1
			}
			b.Run(fmt.Sprintf("%s/%s", codec, kindName(e.Kind)), func(b *testing.B) {
				b.SetBytes(int64(len(buf)))
				for i := 0; i < b.N; i++ {
					if _, err := r.decodePayload(e, buf); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(edges), "ns/edge")
			})
			_ = kind
		}
		r.Close()
	}
}
