package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"snode/internal/huffgraph"
	"snode/internal/link3"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/webgraph"
)

// Table1Row is one scheme's line of Table 1: average bits per edge over
// the Table1Sizes corpora for WG and WGT, and the largest repository
// (in pages) each fits into 8 GB of memory at the measured mean
// out-degree.
type Table1Row struct {
	Scheme    string
	BPE, BPET float64 // bits/edge for WG and WGT
	Max8GB    int64   // pages of WG representable in 8 GB
	Max8GBT   int64
}

const eightGB = int64(8) << 30

// Compression runs the Table 1 experiment. Each size uses an
// independently generated corpus of complete domains (Table 1 measures
// repositories of a size, not crawl snapshots; Figure 9 covers prefix
// behaviour).
func Compression(cfg Config) ([]Table1Row, error) {
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	sums := map[string]*bpeAcc{
		"huffman": {}, "link3": {}, "snode": {},
	}
	var avgDeg float64
	for _, n := range cfg.Table1Sizes {
		crawl, err := cfg.Crawl(n)
		if err != nil {
			return nil, err
		}
		fwd := crawl.Corpus
		rev := &webgraph.Corpus{Graph: fwd.Graph.Transpose(), Pages: fwd.Pages}
		avgDeg += fwd.Graph.AvgOutDegree()
		for dirTag, c := range map[string]*webgraph.Corpus{"fwd": fwd, "rev": rev} {
			edges := c.Graph.NumEdges()

			hf, err := huffgraph.Build(c)
			if err != nil {
				return nil, err
			}
			addBPE(sums["huffman"], dirTag, store.BitsPerEdge(hf, edges))

			l3dir := filepath.Join(ws, fmt.Sprintf("t1-l3-%d-%s", n, dirTag))
			if err := os.MkdirAll(l3dir, 0o755); err != nil {
				return nil, err
			}
			if err := link3.Build(c, l3dir); err != nil {
				return nil, err
			}
			l3, err := link3.Open(c, l3dir, 1<<20, cfg.Model)
			if err != nil {
				return nil, err
			}
			addBPE(sums["link3"], dirTag, store.BitsPerEdge(l3, edges))
			l3.Close()
			os.RemoveAll(l3dir)

			snDir := filepath.Join(ws, fmt.Sprintf("t1-sn-%d-%s", n, dirTag))
			if err := os.MkdirAll(snDir, 0o755); err != nil {
				return nil, err
			}
			st, err := snode.Build(c, snode.DefaultConfig(), snDir)
			if err != nil {
				return nil, err
			}
			addBPE(sums["snode"], dirTag, float64(st.SizeBytes()*8)/float64(edges))
			os.RemoveAll(snDir)
		}
	}
	nSizes := float64(len(cfg.Table1Sizes))
	avgDeg /= nSizes
	var rows []Table1Row
	for _, scheme := range []string{"huffman", "link3", "snode"} {
		a := sums[scheme]
		bpe := a.bpe / nSizes
		bpet := a.bpet / nSizes
		rows = append(rows, Table1Row{
			Scheme:  scheme,
			BPE:     bpe,
			BPET:    bpet,
			Max8GB:  maxPages(bpe, avgDeg),
			Max8GBT: maxPages(bpet, avgDeg),
		})
	}
	return rows, nil
}

type bpeAcc struct{ bpe, bpet float64 }

func addBPE(a *bpeAcc, dirTag string, v float64) {
	if dirTag == "fwd" {
		a.bpe += v
	} else {
		a.bpet += v
	}
}

// maxPages inverts the paper's formula: a graph over n pages has
// n*avgDeg edges occupying n*avgDeg*bpe/8 bytes; solve for 8 GB.
func maxPages(bpe, avgDeg float64) int64 {
	if bpe <= 0 || avgDeg <= 0 {
		return 0
	}
	return int64(float64(eightGB) * 8 / (bpe * avgDeg))
}

// RenderCompression prints Table 1.
func RenderCompression(cfg Config, rows []Table1Row) {
	w := cfg.out()
	fmt.Fprintln(w, "Table 1: compression statistics (averaged over sizes",
		cfg.Table1Sizes, ")")
	fmt.Fprintf(w, "%-28s %10s %10s %18s %18s\n",
		"representation", "b/e WG", "b/e WGT", "max pages in 8GB", "max pages 8GB(T)")
	name := map[string]string{
		"huffman": "Plain Huffman",
		"link3":   "Connectivity Server (Link3)",
		"snode":   "S-Node",
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %10.2f %10.2f %18d %18d\n",
			name[r.Scheme], r.BPE, r.BPET, r.Max8GB, r.Max8GBT)
	}
	fmt.Fprintln(w, "(paper: Huffman 15.2/15.4, Link3 5.81/5.92, S-Node 5.07/5.63 bits/edge)")
	fmt.Fprintln(w)
}
