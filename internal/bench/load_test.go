package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLoadSmoke is the fast test-load gate: the full open-loop
// pipeline — capacity probe, Poisson and bursty traces, shedding,
// knee summary, artifact writer — at a tiny scale and short windows.
func TestLoadSmoke(t *testing.T) {
	cfg := tiny()
	cfg.QuerySize = 4000
	cfg.QueryBudget = 128 << 10
	cfg.LoadDuration = 300 * time.Millisecond
	rep, err := Load(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(loadFractions()) + len(loadBurstFractions())
	if len(rep.Rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(rep.Rows), wantRows)
	}
	if rep.Summary.CapacityQPS <= 0 {
		t.Fatalf("capacity probe reported %.1f qps", rep.Summary.CapacityQPS)
	}
	var sawPoisson2x bool
	for _, r := range rep.Rows {
		if r.Offered <= 0 {
			t.Fatalf("point %s@%.2fx offered nothing", r.Trace, r.Fraction)
		}
		if r.Admitted+r.Shed+r.Errors != r.Offered {
			t.Fatalf("point %s@%.2fx: admitted %d + shed %d + errors %d != offered %d",
				r.Trace, r.Fraction, r.Admitted, r.Shed, r.Errors, r.Offered)
		}
		if r.Errors > 0 {
			t.Fatalf("point %s@%.2fx: %d transport/5xx errors", r.Trace, r.Fraction, r.Errors)
		}
		// Queues must stay within the configured bound (two classes).
		if r.MaxQueueDepth > 2*loadMaxQueue {
			t.Fatalf("point %s@%.2fx: queue depth %d exceeds bound %d",
				r.Trace, r.Fraction, r.MaxQueueDepth, 2*loadMaxQueue)
		}
		if r.Trace == "poisson" && r.Fraction == 2.0 {
			sawPoisson2x = true
			if r.Shed == 0 {
				t.Error("no shedding at 2x capacity; admission control is not engaging")
			}
			if r.Admitted == 0 {
				t.Error("nothing admitted at 2x capacity; the server collapsed instead of shedding")
			}
		}
	}
	if !sawPoisson2x {
		t.Fatal("sweep is missing the poisson 2x point")
	}

	var sb strings.Builder
	cfg.Out = &sb
	RenderLoad(cfg, rep)
	if !strings.Contains(sb.String(), "offered/s") || !strings.Contains(sb.String(), "knee") {
		t.Fatalf("render output malformed:\n%s", sb.String())
	}

	path := filepath.Join(t.TempDir(), "load.json")
	if err := LoadJSON(path, cfg, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Rows       []LoadRow
		Summary    LoadSummary
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if doc.Experiment != "load" || len(doc.Rows) != wantRows {
		t.Fatalf("artifact experiment %q with %d rows", doc.Experiment, len(doc.Rows))
	}
}
