package bench

import (
	"io"
	"strings"
	"testing"

	"snode/internal/query"
)

// tiny returns the smallest configuration that exercises every
// experiment path.
func tiny() Config {
	c := Default()
	c.Sizes = []int{3000, 6000}
	c.Table1Sizes = []int{3000}
	c.QuerySize = 6000
	c.QueryBudget = 64 << 10
	c.Trials = 1
	c.Out = io.Discard
	return c
}

func TestScalabilitySmoke(t *testing.T) {
	cfg := tiny()
	rows, err := Scalability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Sizes) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Supernodes <= 0 || r.Superedges <= 0 || r.SupernodeGraphBytes <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderScalability(cfg, rows)
	if !strings.Contains(sb.String(), "supernodes") {
		t.Fatal("render output missing header")
	}
}

func TestCompressionSmoke(t *testing.T) {
	cfg := tiny()
	rows, err := Compression(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BPE <= 0 || r.BPET <= 0 || r.Max8GB <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderCompression(cfg, rows)
	if !strings.Contains(sb.String(), "S-Node") {
		t.Fatal("render output missing scheme")
	}
}

func TestAccessSmoke(t *testing.T) {
	cfg := tiny()
	rows, err := Access(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		if r.SeqNsEdge <= 0 || r.RandNsEdge <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		byName[r.Scheme] = r
	}
	// The Table 2 shape: Huffman decodes fastest. (Skipped under the
	// race detector, whose instrumentation distorts relative decode
	// costs.)
	if !raceEnabled && byName["huffman"].RandNsDecoded > byName["snode"].RandNsDecoded {
		t.Errorf("huffman decode (%f) slower than snode (%f)",
			byName["huffman"].RandNsDecoded, byName["snode"].RandNsDecoded)
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderAccess(cfg, rows)
	if !strings.Contains(sb.String(), "Huffman") {
		t.Fatal("render output missing scheme")
	}
}

func TestQueriesSmoke(t *testing.T) {
	cfg := tiny()
	res, err := Queries(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4*6 {
		t.Fatalf("%d cells", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Nav <= 0 {
			t.Fatalf("non-positive nav time for %s Q%d", c.Scheme, c.Query)
		}
	}
	// The headline: S-Node far faster than the flat schemes.
	nav := map[query.ID]map[string]float64{}
	for _, c := range res.Cells {
		if nav[c.Query] == nil {
			nav[c.Query] = map[string]float64{}
		}
		nav[c.Query][c.Scheme] = float64(c.Nav)
	}
	for _, q := range query.All() {
		if nav[q]["snode"] >= nav[q]["files"] {
			t.Errorf("Q%d: snode not faster than files", q)
		}
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderQueries(cfg, res)
	if !strings.Contains(sb.String(), "reduction") {
		t.Fatal("render output missing reduction table")
	}
}

func TestBufferSweepSmoke(t *testing.T) {
	cfg := tiny()
	rows, err := BufferSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("%d sweep points", len(rows))
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderBufferSweep(cfg, rows)
	if !strings.Contains(sb.String(), "buffer") {
		t.Fatal("render output missing header")
	}
}

func TestAblationsSmoke(t *testing.T) {
	cfg := tiny()
	rows, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["window-8"].BitsPerEdge >= byName["window-0"].BitsPerEdge {
		t.Error("reference encoding shows no gain over plain gap coding")
	}
	if byName["partition-P0"].Supernodes >= byName["partition-full"].Supernodes {
		t.Error("refinement did not increase supernode count over P0")
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderAblations(cfg, rows)
	if !strings.Contains(sb.String(), "variant") {
		t.Fatal("render output missing header")
	}
}

func TestExactReferenceSmoke(t *testing.T) {
	cfg := tiny()
	row, err := ExactReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.Graphs > 0 && (row.WindowBits <= 0 || row.ExactBits <= 0) {
		t.Fatalf("degenerate comparison %+v", row)
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderExactReference(cfg, row)
	if !strings.Contains(sb.String(), "Edmonds") {
		t.Fatal("render output missing header")
	}
}

func TestDiskModelSweepSmoke(t *testing.T) {
	cfg := tiny()
	rows, err := DiskModelSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// S-Node must win under every storage generation: by seek count on
	// the 2002 disk, by bytes transferred on flash.
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("%s: speedup %.2fx not above 1", r.Name, r.Speedup)
		}
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderDiskModelSweep(cfg, rows)
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatal("render output missing header")
	}
}

func TestConcurrencySmoke(t *testing.T) {
	cfg := tiny()
	cfg.Pace = 0.25 // keep the paced smoke run short
	rows, err := Concurrency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(concurrencyLevels()) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.Goroutines != concurrencyLevels()[i] {
			t.Fatalf("row %d: %d goroutines, want %d", i, r.Goroutines, concurrencyLevels()[i])
		}
		if r.QPS <= 0 || r.Queries != servingRounds*6 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	// The acceptance criterion: concurrency buys real throughput over
	// one shared representation. (Relaxed under the race detector, whose
	// instrumentation serializes enough to flatten the overlap.)
	if !raceEnabled && rows[1].Speedup <= 1.5 {
		t.Errorf("4-goroutine speedup %.2fx, want > 1.5x over serial", rows[1].Speedup)
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderConcurrency(cfg, rows)
	if !strings.Contains(sb.String(), "goroutines") {
		t.Fatal("render output missing header")
	}
}

func TestCrawlCacheReuse(t *testing.T) {
	cfg := tiny()
	a, err := cfg.Crawl(3000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Crawl(3000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("crawl cache did not reuse")
	}
	cfg2 := cfg
	cfg2.Seed++
	c, err := cfg2.Crawl(3000)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seed reused cached crawl")
	}
}

func TestBuildScalingSmoke(t *testing.T) {
	cfg := tiny()
	cfg.Pace = 0.05 // keep the paced smoke run short
	rows, err := BuildScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(buildLevels()) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if r.Workers != buildLevels()[i] {
			t.Fatalf("row %d: %d workers, want %d", i, r.Workers, buildLevels()[i])
		}
		if r.Total <= 0 || r.Supernodes <= 0 || r.ModeledIO <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		// The hard guarantee (and half the acceptance criterion): every
		// worker count produces byte-identical artifacts.
		if !r.Identical {
			t.Fatalf("workers=%d: artifacts differ from the 1-worker build", r.Workers)
		}
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderBuildScaling(cfg, rows)
	if !strings.Contains(sb.String(), "workers") {
		t.Fatal("render output missing header")
	}
	dir := t.TempDir()
	if err := BuildScalingJSON(dir+"/build.json", cfg, rows); err != nil {
		t.Fatal(err)
	}
	if err := BuildScalingCSV(dir, rows); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateSmoke(t *testing.T) {
	cfg := tiny()
	cfg.Pace = 0.05 // keep the paced smoke run short
	rows, err := Update(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{"base-direct", "overlay-empty", "memtable", "segments-4", "compacted", "folded"}
	if len(rows) != len(wantStages) {
		t.Fatalf("%d rows, want %d", len(rows), len(wantStages))
	}
	for i, r := range rows {
		if r.Stage != wantStages[i] {
			t.Fatalf("row %d: stage %q, want %q", i, r.Stage, wantStages[i])
		}
		if r.QPS <= 0 || r.Queries != servingRounds*6 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	if rows[2].DeltaEntries == 0 || rows[3].Segments != 2*updateSegments {
		t.Fatalf("delta depths not exercised: %+v / %+v", rows[2], rows[3])
	}
	if rows[5].DeltaEntries != 0 || rows[5].Segments != 0 {
		t.Fatalf("fold-back left residue: %+v", rows[5])
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderUpdate(cfg, rows)
	if !strings.Contains(sb.String(), "vs-base") {
		t.Fatal("render output missing header")
	}
}

func TestProvenanceStamp(t *testing.T) {
	p := NewProvenance()
	if p.GoMaxProcs <= 0 || p.NumCPU <= 0 || p.GoVersion == "" || p.Timestamp == "" {
		t.Fatalf("degenerate provenance %+v", p)
	}
	if len(p.GitCommit) != 40 && p.GitCommit != "unknown" {
		t.Fatalf("git commit %q is neither a hash nor the fallback", p.GitCommit)
	}
}

func TestCodecsSmoke(t *testing.T) {
	cfg := tiny()
	rep, err := Codecs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows, want paper/lz/log/auto", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.PayloadBytes <= 0 || row.PayloadEdges <= 0 || row.BitsPerEdge <= 0 {
			t.Fatalf("degenerate size measurement %+v", row)
		}
		if len(row.Decode) == 0 || len(row.Latency) != 3 {
			t.Fatalf("%s: %d decode rows, %d latency rows", row.Codec, len(row.Decode), len(row.Latency))
		}
		for _, lr := range row.Latency {
			if lr.P99MS < lr.P50MS || lr.P50MS < 0 {
				t.Fatalf("%s: implausible latency row %+v", row.Codec, lr)
			}
		}
		if len(row.Mix) == 0 {
			t.Fatalf("%s: no codec mix recorded", row.Codec)
		}
	}
	if len(rep.Summary.KindWinners) == 0 {
		t.Fatal("no per-kind winners in summary")
	}
	var sb strings.Builder
	cfg.Out = &sb
	RenderCodecs(cfg, rep)
	if !strings.Contains(sb.String(), "bake-off") {
		t.Fatal("render output missing header")
	}
}
