package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestShardSmoke gates the distributed-serving experiment: single-node
// baseline plus router tiers at every K, real HTTP end to end, at a
// tiny scale and short windows.
func TestShardSmoke(t *testing.T) {
	cfg := tiny()
	cfg.QuerySize = 4000
	cfg.QueryBudget = 128 << 10
	cfg.Pace = 0.25 // keep the paced smoke run short
	cfg.LoadDuration = 300 * time.Millisecond
	rep, err := Shard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 1 + len(shardKs())
	if len(rep.Rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(rep.Rows), wantRows)
	}
	if rep.Rows[0].Tier != "single" {
		t.Fatalf("first row tier %q, want single", rep.Rows[0].Tier)
	}
	for i, r := range rep.Rows {
		if r.OK <= 0 {
			t.Fatalf("row %s/K=%d served nothing", r.Tier, r.K)
		}
		if r.Errors > 0 {
			t.Fatalf("row %s/K=%d: %d transport/5xx errors", r.Tier, r.K, r.Errors)
		}
		if r.QPS <= 0 || r.Speedup <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if i > 0 {
			if r.Tier != "router" || r.K != shardKs()[i-1] {
				t.Fatalf("row %d is %s/K=%d, want router/K=%d", i, r.Tier, r.K, shardKs()[i-1])
			}
			if r.IntraEdgePct <= 0 || r.IntraEdgePct > 100 {
				t.Fatalf("row K=%d: intra-edge share %.1f%%", r.K, r.IntraEdgePct)
			}
		}
	}

	var sb strings.Builder
	cfg.Out = &sb
	RenderShard(cfg, rep)
	if !strings.Contains(sb.String(), "speedup") || !strings.Contains(sb.String(), "router") {
		t.Fatalf("render output malformed:\n%s", sb.String())
	}

	path := filepath.Join(t.TempDir(), "shard.json")
	if err := ShardJSON(path, cfg, rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Rows       []ShardRow
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if doc.Experiment != "shard" || len(doc.Rows) != wantRows {
		t.Fatalf("artifact experiment %q with %d rows", doc.Experiment, len(doc.Rows))
	}
}
