package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"snode/internal/snode"
	"snode/internal/webgraph"
)

// The codecs experiment is the bake-off grid behind `snbuild -codec`:
// the same crawl is built under every codec setting — the three fixed
// codecs plus the per-supernode auto bake-off — and each artifact is
// scored three ways:
//
//   - size: payload bits/edge, overall and per (codec, kind) class;
//   - decode: pure-CPU ns/edge per class (MeasureDecode, min of
//     codecRounds passes over preloaded payload bytes);
//   - serving: cold-cache /out lookup latency p50/p99 at three cache
//     budgets bracketing the default.
//
// The summary pins the two acceptance gates: at least one non-paper
// codec must win decode ns/edge for some class while paying at most
// codecMaxBPERatio of paper's bits/edge, and the auto artifact's
// default-budget p99 must not regress against paper.

// codecRounds is the MeasureDecode repetition count (min wins).
const codecRounds = 3

// codecLookups is the seeded /out sample size per cache budget.
const codecLookups = 2000

// codecMaxBPERatio is the size leash on the decode-speed gate.
const codecMaxBPERatio = 1.1

// CodecDecodeRow is one (codec, kind) class of one artifact.
type CodecDecodeRow struct {
	Codec       string  `json:"codec"`
	Kind        string  `json:"kind"`
	Graphs      int64   `json:"graphs"`
	Bytes       int64   `json:"bytes"`
	Edges       int64   `json:"edges"`
	Ns          int64   `json:"ns"`
	NsPerEdge   float64 `json:"ns_per_edge"`
	BitsPerEdge float64 `json:"bits_per_edge"`
}

// CodecLatencyRow is one cache-budget point of the /out sweep.
type CodecLatencyRow struct {
	CacheBudget int64   `json:"cache_budget_bytes"`
	Lookups     int     `json:"lookups"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
}

// CodecRow is one build setting's full measurement.
type CodecRow struct {
	Codec        string                 `json:"codec"`
	BuildMS      int64                  `json:"build_ms"`
	PayloadBytes int64                  `json:"payload_bytes"`
	PayloadEdges int64                  `json:"payload_edges"`
	BitsPerEdge  float64                `json:"bits_per_edge"`
	Mix          []snode.CodecBuildStat `json:"mix"`
	Decode       []CodecDecodeRow       `json:"decode"`
	Latency      []CodecLatencyRow      `json:"latency"`
}

// CodecKindWinner is the fastest codec for one payload kind.
type CodecKindWinner struct {
	Kind             string  `json:"kind"`
	Codec            string  `json:"codec"`
	NsPerEdge        float64 `json:"ns_per_edge"`
	PaperNsPerEdge   float64 `json:"paper_ns_per_edge"`
	BitsPerEdgeRatio float64 `json:"bits_per_edge_ratio_vs_paper"`
}

// CodecsSummary pins the acceptance gates.
type CodecsSummary struct {
	// KindWinners lists, per payload kind, the codec with the lowest
	// decode ns/edge across the fixed-codec artifacts.
	KindWinners []CodecKindWinner `json:"kind_winners"`
	// NonPaperWinWithinSizeLeash: some kind's winner is not paper and
	// pays <= codecMaxBPERatio of paper's bits/edge for that kind.
	NonPaperWinWithinSizeLeash bool `json:"non_paper_win_within_size_leash"`
	// AutoVsPaperP99 is auto's default-budget /out p99 over paper's.
	AutoVsPaperP99 float64 `json:"auto_vs_paper_p99"`
}

// CodecsReport is the experiment's full result.
type CodecsReport struct {
	Rows    []CodecRow    `json:"rows"`
	Summary CodecsSummary `json:"summary"`
}

// codecBudgets brackets the default cache budget.
func codecBudgets(def int64) []int64 { return []int64{def / 4, def, def * 4} }

// Codecs runs the grid at cfg.QuerySize.
func Codecs(cfg Config) (*CodecsReport, error) {
	crawl, err := cfg.Crawl(cfg.QuerySize)
	if err != nil {
		return nil, err
	}
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	settings := []string{snode.CodecPaper, snode.CodecLZ, snode.CodecLog, snode.CodecAuto}
	rep := &CodecsReport{}
	for _, codec := range settings {
		dir := filepath.Join(ws, "codec-"+codec)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		sncfg := snode.DefaultConfig()
		sncfg.Codec = codec
		start := time.Now()
		if _, err := snode.Build(crawl.Corpus, sncfg, dir); err != nil {
			return nil, fmt.Errorf("codec %s: %w", codec, err)
		}
		buildMS := time.Since(start).Milliseconds()

		r, err := snode.Open(dir, cfg.QueryBudget, cfg.Model)
		if err != nil {
			return nil, err
		}
		row := CodecRow{Codec: codec, BuildMS: buildMS, Mix: r.Codecs()}
		for _, cs := range row.Mix {
			row.PayloadBytes += cs.Bytes
			row.PayloadEdges += cs.Edges
		}
		if row.PayloadEdges > 0 {
			row.BitsPerEdge = float64(row.PayloadBytes) * 8 / float64(row.PayloadEdges)
		}

		costs, err := r.MeasureDecode(codecRounds)
		if err != nil {
			r.Close()
			return nil, err
		}
		for _, dc := range costs {
			dr := CodecDecodeRow{
				Codec: dc.Codec, Kind: dc.Kind,
				Graphs: dc.Graphs, Bytes: dc.Bytes, Edges: dc.Edges, Ns: dc.Ns,
			}
			if dc.Edges > 0 {
				dr.NsPerEdge = float64(dc.Ns) / float64(dc.Edges)
				dr.BitsPerEdge = float64(dc.Bytes) * 8 / float64(dc.Edges)
			}
			row.Decode = append(row.Decode, dr)
		}

		for _, budget := range codecBudgets(cfg.QueryBudget) {
			lr, err := codecLatency(r, crawl.Corpus.Graph.NumPages(), budget)
			if err != nil {
				r.Close()
				return nil, err
			}
			row.Latency = append(row.Latency, lr)
		}
		r.Close()
		rep.Rows = append(rep.Rows, row)
	}
	rep.Summary = codecsSummary(rep.Rows)
	return rep, nil
}

// codecLatency drives codecLookups seeded /out calls from a cold cache
// at the given budget.
func codecLatency(r *snode.Representation, pages int, budget int64) (CodecLatencyRow, error) {
	r.ResetCache(budget)
	rng := rand.New(rand.NewSource(20030226))
	lats := make([]time.Duration, 0, codecLookups)
	var buf []webgraph.PageID
	for i := 0; i < codecLookups; i++ {
		p := webgraph.PageID(rng.Intn(pages))
		start := time.Now()
		out, err := r.Out(p, buf[:0])
		if err != nil {
			return CodecLatencyRow{}, err
		}
		lats = append(lats, time.Since(start))
		buf = out
	}
	return CodecLatencyRow{
		CacheBudget: budget,
		Lookups:     codecLookups,
		P50MS:       percentileMS(lats, 0.50),
		P99MS:       percentileMS(lats, 0.99),
	}, nil
}

// codecsSummary computes the acceptance gates from the grid.
func codecsSummary(rows []CodecRow) CodecsSummary {
	var s CodecsSummary
	// Per-kind decode classes from the fixed-codec artifacts (the auto
	// artifact mixes codecs and is judged on latency, not per class).
	type class struct{ ns, bpe float64 }
	perKind := map[string]map[string]class{}
	for _, row := range rows {
		if row.Codec == snode.CodecAuto {
			continue
		}
		for _, d := range row.Decode {
			if d.Edges == 0 {
				continue
			}
			if perKind[d.Kind] == nil {
				perKind[d.Kind] = map[string]class{}
			}
			perKind[d.Kind][d.Codec] = class{ns: d.NsPerEdge, bpe: d.BitsPerEdge}
		}
	}
	kinds := make([]string, 0, len(perKind))
	for k := range perKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		byCodec := perKind[kind]
		paper, hasPaper := byCodec[snode.CodecPaper]
		best := CodecKindWinner{Kind: kind, NsPerEdge: -1}
		for codec, c := range byCodec {
			if best.NsPerEdge < 0 || c.ns < best.NsPerEdge {
				best.Codec, best.NsPerEdge = codec, c.ns
			}
		}
		if hasPaper {
			best.PaperNsPerEdge = paper.ns
			if paper.bpe > 0 {
				best.BitsPerEdgeRatio = byCodec[best.Codec].bpe / paper.bpe
			}
			// The gate is existential: ANY non-paper codec that decodes
			// faster than paper while paying at most the size leash —
			// not just the overall fastest (lz and log trade the top
			// spot run to run; the leashed win is stable).
			for codec, c := range byCodec {
				if codec != snode.CodecPaper && c.ns < paper.ns &&
					paper.bpe > 0 && c.bpe/paper.bpe <= codecMaxBPERatio {
					s.NonPaperWinWithinSizeLeash = true
				}
			}
		}
		s.KindWinners = append(s.KindWinners, best)
	}
	// Auto-vs-paper p99 at the default budget (the middle point).
	var paperP99, autoP99 float64
	for _, row := range rows {
		if len(row.Latency) < 2 {
			continue
		}
		switch row.Codec {
		case snode.CodecPaper:
			paperP99 = row.Latency[1].P99MS
		case snode.CodecAuto:
			autoP99 = row.Latency[1].P99MS
		}
	}
	if paperP99 > 0 {
		s.AutoVsPaperP99 = autoP99 / paperP99
	}
	return s
}

// RenderCodecs prints the grid and the gate verdicts.
func RenderCodecs(cfg Config, rep *CodecsReport) {
	w := cfg.out()
	fmt.Fprintf(w, "Codec bake-off (%d pages, budgets %v bytes)\n",
		cfg.QuerySize, codecBudgets(cfg.QueryBudget))
	fmt.Fprintf(w, "%-8s %10s %12s %10s %12s %12s\n",
		"build", "build ms", "payload B", "bits/edge", "p50@def ms", "p99@def ms")
	for _, row := range rep.Rows {
		var p50, p99 float64
		if len(row.Latency) >= 2 {
			p50, p99 = row.Latency[1].P50MS, row.Latency[1].P99MS
		}
		fmt.Fprintf(w, "%-8s %10d %12d %10.2f %12.3f %12.3f\n",
			row.Codec, row.BuildMS, row.PayloadBytes, row.BitsPerEdge, p50, p99)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s %-10s %8s %12s %12s %10s\n",
		"codec", "kind", "graphs", "ns/edge", "bits/edge", "bytes")
	for _, row := range rep.Rows {
		for _, d := range row.Decode {
			fmt.Fprintf(w, "%-8s %-10s %8d %12.2f %12.2f %10d\n",
				row.Codec, d.Kind, d.Graphs, d.NsPerEdge, d.BitsPerEdge, d.Bytes)
		}
	}
	fmt.Fprintln(w)
	for _, kw := range rep.Summary.KindWinners {
		fmt.Fprintf(w, "fastest %-10s %-6s %8.2f ns/edge (paper %.2f), %.2fx paper bits/edge\n",
			kw.Kind, kw.Codec, kw.NsPerEdge, kw.PaperNsPerEdge, kw.BitsPerEdgeRatio)
	}
	fmt.Fprintf(w, "non-paper win within %.1fx size leash: %v\n",
		codecMaxBPERatio, rep.Summary.NonPaperWinWithinSizeLeash)
	fmt.Fprintf(w, "auto vs paper p99 at default budget: %.2fx\n", rep.Summary.AutoVsPaperP99)
	fmt.Fprintln(w)
}

// CodecsJSON writes the report (plus scale parameters and run
// provenance) as the committed benchmark artifact.
func CodecsJSON(path string, cfg Config, rep *CodecsReport) error {
	doc := struct {
		Experiment  string        `json:"experiment"`
		Provenance  Provenance    `json:"provenance"`
		Pages       int           `json:"pages"`
		BudgetBytes int64         `json:"budget_bytes"`
		Rounds      int           `json:"measure_rounds"`
		Lookups     int           `json:"lookups_per_budget"`
		Rows        []CodecRow    `json:"rows"`
		Summary     CodecsSummary `json:"summary"`
	}{
		Experiment:  "codecs",
		Provenance:  NewProvenance(),
		Pages:       cfg.QuerySize,
		BudgetBytes: cfg.QueryBudget,
		Rounds:      codecRounds,
		Lookups:     codecLookups,
		Rows:        rep.Rows,
		Summary:     rep.Summary,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
