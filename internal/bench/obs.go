package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"snode/internal/metrics"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/router"
	"snode/internal/serve"
	"snode/internal/shard"
	"snode/internal/slo"
	"snode/internal/trace"
)

// The obs experiment exercises the fleet observability plane end to
// end over real HTTP: a K-shard routed tier where every replica keeps
// its own metrics registry (scraped into /cluster/metrics) and a
// SampleEvery=0 tracer (so the only traces a replica retains are the
// ones the router's X-SNode-Trace header forced), fronted by a router
// that samples, stitches distributed traces, and scores the tier
// against availability and p99 objectives.
//
// Two closed-loop phases drive the checks the committed artifact pins:
//
//   - healthy: fewer workers than the tier has admission slots, so
//     nothing queues and the scoreboard reads near-zero burn;
//   - overload: several times more workers than the tier's total
//     slot+queue capacity, so the replicas shed and the error-budget
//     burn rate must REACT — jump from ~0 past 1.0 — within one
//     scoreboard window.
//
// After the phases (no traffic in flight, so counters are stable) the
// run verifies the federation invariant — the cluster-wide merge
// equals the per-replica scrape sums, counter by counter and histogram
// count by histogram count — follows one latency-histogram tail
// exemplar to its stitched distributed trace, and kills one replica to
// show its last-known counters survive in the cluster view with a
// staleness mark.

const (
	// obsK is the tier's shard count; one replica per shard.
	obsK = 2
	// obsTraceEvery samples 1 in N routed requests into stitched
	// distributed traces.
	obsTraceEvery = 16
	// obsOverloadPerSlot scales the overload closed loop: workers per
	// tier admission slot, far past slot+queue capacity so the
	// admission layer must shed.
	obsOverloadPerSlot = 6
)

// ObsPhase is one closed-loop phase plus the scoreboard's windowed
// judgement of it.
type ObsPhase struct {
	Name     string        `json:"name"`
	Workers  int           `json:"workers"`
	Duration time.Duration `json:"duration_ns"`
	Requests int64         `json:"requests"`
	OK       int64         `json:"ok"`
	Shed     int64         `json:"shed"`
	Errors   int64         `json:"errors"`
	QPS      float64       `json:"qps"`
	// Met is Report.Met() over the phase's window; Nav/Mining are the
	// per-class evaluations (availability, burn rates, p99 vs target).
	Met    bool            `json:"slo_met"`
	Nav    slo.ClassReport `json:"nav"`
	Mining slo.ClassReport `json:"mining"`
}

// ObsClusterCheck is the federation-invariant verification.
type ObsClusterCheck struct {
	Replicas          int      `json:"replicas"`
	CountersChecked   int      `json:"counters_checked"`
	HistogramsChecked int      `json:"histograms_checked"`
	Consistent        bool     `json:"consistent"`
	Mismatches        []string `json:"mismatches,omitempty"`
	// StaleAfterKill counts replicas served from the scrape cache
	// (with a staleness mark) after one replica was killed.
	StaleAfterKill int `json:"stale_after_kill"`
}

// ObsTraceCheck is the distributed-tracing verification: counters from
// the router registry plus one exemplar-linked trace fetched back from
// /debug/traces.
type ObsTraceCheck struct {
	Stitched     int64 `json:"stitched"`
	StitchErrors int64 `json:"stitch_errors"`
	// ExemplarTraceID is the trace behind the mining latency
	// histogram's tail bucket (the p99 -> trace pointer).
	ExemplarTraceID uint64 `json:"exemplar_trace_id"`
	// Example* describe one stitched trace fetched back from
	// /debug/traces: the exemplar's when it is still retained, else
	// the slowest retained stitched trace (the slow log is bounded).
	ExampleTraceID uint64 `json:"example_trace_id"`
	ExampleClass   string `json:"example_class,omitempty"`
	ExampleRemotes int    `json:"example_remotes"`
	ExampleSpans   int    `json:"example_spans"`
}

// ObsReport is the experiment's full result.
type ObsReport struct {
	K             int             `json:"shards"`
	Replicas      int             `json:"replicas"`
	TraceEvery    int             `json:"trace_every"`
	WindowSeconds float64         `json:"slo_window_seconds"`
	Healthy       ObsPhase        `json:"healthy"`
	Overload      ObsPhase        `json:"overload"`
	Cluster       ObsClusterCheck `json:"cluster"`
	Trace         ObsTraceCheck   `json:"trace"`
}

// obsServe starts one replica: the serve endpoints plus the scrape
// surface the router federates (/metrics.json) and the trace-export
// endpoint stitching fetches from (/debug/traces).
func obsServe(cfg serve.Config, reg *metrics.Registry, tr *trace.Tracer) (string, func(), error) {
	qs, err := serve.New(cfg)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	qs.Register(mux)
	mux.Handle("/metrics.json", reg.JSONHandler())
	mux.Handle("/debug/traces", trace.Handler(tr))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

// obsPhase runs one closed loop and snapshots the scoreboard after it.
func obsPhase(name, base string, client *http.Client, board *slo.Scoreboard, reg *metrics.Registry,
	seed uint64, pages, workers int, d time.Duration) ObsPhase {
	row := shardClosedLoop(base, client, seed, pages, workers, d)
	now := time.Now()
	board.Sample(now, reg.Snapshot())
	rep := board.Report(now)
	return ObsPhase{
		Name:     name,
		Workers:  workers,
		Duration: row.Duration,
		Requests: row.Requests,
		OK:       row.OK,
		Shed:     row.Shed,
		Errors:   row.Errors,
		QPS:      row.QPS,
		Met:      rep.Met(),
		Nav:      rep.Class("nav"),
		Mining:   rep.Class("mining"),
	}
}

// obsClusterCheck verifies the federation invariant on a scrape: the
// cluster merge must equal the sum over every replica snapshot it saw.
func obsClusterCheck(cm router.ClusterMetrics) ObsClusterCheck {
	out := ObsClusterCheck{Replicas: len(cm.Replicas), Consistent: true}
	sumC := map[string]int64{}
	sumH := map[string]int64{}
	for _, rm := range cm.Replicas {
		if rm.Snapshot == nil {
			continue
		}
		for k, v := range rm.Snapshot.Counters {
			sumC[k] += v
		}
		for k, h := range rm.Snapshot.Histograms {
			sumH[k] += h.Count
		}
	}
	fail := func(format string, args ...any) {
		out.Consistent = false
		out.Mismatches = append(out.Mismatches, fmt.Sprintf(format, args...))
	}
	for _, e := range cm.Errors {
		fail("scrape/merge error: %s", e)
	}
	names := make([]string, 0, len(cm.Cluster.Counters))
	for k := range cm.Cluster.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		out.CountersChecked++
		if got, want := cm.Cluster.Counters[k], sumC[k]; got != want {
			fail("counter %s: cluster %d != replica sum %d", k, got, want)
		}
	}
	for k, want := range sumC {
		if _, ok := cm.Cluster.Counters[k]; !ok && want != 0 {
			fail("counter %s: in replica sums but missing from cluster merge", k)
		}
	}
	hnames := make([]string, 0, len(cm.Cluster.Histograms))
	for k := range cm.Cluster.Histograms {
		hnames = append(hnames, k)
	}
	sort.Strings(hnames)
	for _, k := range hnames {
		out.HistogramsChecked++
		if got, want := cm.Cluster.Histograms[k].Count, sumH[k]; got != want {
			fail("histogram %s: cluster count %d != replica sum %d", k, got, want)
		}
	}
	return out
}

// Obs runs the observability-plane experiment.
func Obs(cfg Config) (*ObsReport, error) {
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	crawl, err := cfg.Crawl(cfg.QuerySize)
	if err != nil {
		return nil, err
	}
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	dur := cfg.LoadDuration
	if dur <= 0 {
		dur = 2500 * time.Millisecond
	}

	// Partition the corpus and start one replica per shard, each with
	// its own registry and a local-sampling-off tracer: every trace a
	// replica retains was forced by the router's sampled bit.
	root := filepath.Join(ws, "obs-shards")
	opt := repo.DefaultOptions(root)
	m, err := shard.Build(crawl, obsK, root, opt.SNode)
	if err != nil {
		return nil, fmt.Errorf("bench: obs shard build: %w", err)
	}
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	var replicas [][]string
	for s := 0; s < obsK; s++ {
		sh, err := shard.OpenServing(root, s, cfg.QueryBudget, cfg.Model)
		if err != nil {
			return nil, err
		}
		defer sh.Close()
		se, err := query.New(sh.Repo, repo.SchemeSNode)
		if err != nil {
			return nil, err
		}
		se.SetOwner(sh.Owns)
		nav, err := query.New(sh.NavRepo, repo.SchemeSNode)
		if err != nil {
			return nil, err
		}
		paceStores(sh.Repo, pace)
		rreg := metrics.NewRegistry()
		rtr := trace.New(trace.Config{SampleEvery: 0})
		u, stop, err := obsServe(serve.Config{
			Engine:        se,
			NavEngine:     nav,
			Shard:         &serve.ShardInfo{ID: s, Count: obsK, Version: m.Version},
			MaxConcurrent: loadMaxConcurrent,
			MaxQueue:      loadMaxQueue,
			Registry:      rreg,
			Tracer:        rtr,
		}, rreg, rtr)
		if err != nil {
			return nil, err
		}
		stops = append(stops, stop)
		replicas = append(replicas, []string{u})
	}

	bs, err := shard.LoadFwdBoundaries(root, m)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
		IdleConnTimeout:     30 * time.Second,
	}}
	reg := metrics.NewRegistry()
	tracer := trace.New(trace.Config{SampleEvery: obsTraceEvery, SlowPerClass: 8})
	rt, err := router.New(router.Config{
		Manifest:      m,
		Boundaries:    bs,
		Replicas:      replicas,
		Client:        client,
		ProbeInterval: -1,
		Registry:      reg,
		Tracer:        tracer,
		SLO: router.SLOConfig{
			// One phase per window: the overload report's baseline is the
			// end-of-healthy sample, so its burn is the overload's own.
			Window:    dur,
			NavP99:    loadNavDeadline,
			MiningP99: time.Second,
		},
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	mux := http.NewServeMux()
	rt.Register(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	rep := &ObsReport{K: obsK, Replicas: obsK, TraceEvery: obsTraceEvery, WindowSeconds: dur.Seconds()}
	board := rt.Scoreboard()
	board.Sample(time.Now(), reg.Snapshot())

	// Healthy: half the tier's admission slots in closed loop, so
	// nothing queues and nothing sheds.
	rep.Healthy = obsPhase("healthy", base, client, board, reg,
		cfg.Seed, cfg.QuerySize, loadMaxConcurrent, dur)

	// Overload: far past the tier's slot+queue capacity, so the
	// admission layer sheds and the scoreboard's burn must react.
	rep.Overload = obsPhase("overload", base, client, board, reg,
		cfg.Seed+1, cfg.QuerySize, obsOverloadPerSlot*obsK*loadMaxConcurrent, dur)

	// Quiesced now: verify the federation invariant on a live scrape.
	rep.Cluster = obsClusterCheck(rt.ScrapeCluster(context.Background()))

	// Follow the mining latency histogram's tail exemplar to its
	// stitched distributed trace, the way an operator chases a p99
	// outlier.
	snap := reg.Snapshot()
	rep.Trace.Stitched = snap.Counters["router_traces_stitched"]
	rep.Trace.StitchErrors = snap.Counters["router_stitch_errors"]
	_, exemplar := snap.Histograms["router_latency_mining"].TailExemplar()
	if exemplar == 0 {
		_, exemplar = snap.Histograms["router_latency_nav"].TailExemplar()
	}
	rep.Trace.ExemplarTraceID = exemplar
	var candidates []uint64
	if exemplar != 0 {
		candidates = append(candidates, exemplar)
	}
	retained := tracer.Traces()
	sort.Slice(retained, func(i, j int) bool {
		return retained[i].Summary().TotalNs > retained[j].Summary().TotalNs
	})
	for _, t := range retained {
		candidates = append(candidates, t.ID)
	}
	for _, id := range candidates {
		resp, err := client.Get(fmt.Sprintf("%s/debug/traces?id=%d", base, id))
		if err != nil {
			continue
		}
		var tj trace.TraceJSON
		ok := resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&tj) == nil
		resp.Body.Close()
		if !ok || len(tj.Remotes) == 0 {
			continue
		}
		rep.Trace.ExampleTraceID = tj.ID
		rep.Trace.ExampleClass = tj.Class
		rep.Trace.ExampleRemotes = len(tj.Remotes)
		rep.Trace.ExampleSpans = countSpans(tj.Root)
		break
	}

	// Kill one replica and scrape again: its last-known counters must
	// survive in the cluster view, marked stale.
	stops[len(stops)-1]()
	stops = stops[:len(stops)-1]
	cm := rt.ScrapeCluster(context.Background())
	for _, rm := range cm.Replicas {
		if rm.Stale {
			rep.Cluster.StaleAfterKill++
		}
	}
	return rep, nil
}

// countSpans sizes an exported span subtree.
func countSpans(s *trace.SpanJSON) int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children {
		n += countSpans(c)
	}
	return n
}

// renderObsPhase prints one phase's traffic line plus its per-class
// scoreboard lines.
func renderObsPhase(w io.Writer, p ObsPhase) {
	fmt.Fprintf(w, "%-8s %4d workers: %d requests, %d ok, %d shed, %d err, %.1f qps\n",
		p.Name, p.Workers, p.Requests, p.OK, p.Shed, p.Errors, p.QPS)
	for _, c := range []slo.ClassReport{p.Nav, p.Mining} {
		status := "OK"
		if !c.AvailabilityMet || !c.P99Met {
			status = "BURNING"
		}
		fmt.Fprintf(w, "  slo %-6s %-7s avail %.4f (burn %.2fx) p99 %.1fms/%.0fms (burn %.2fx) over %d reqs\n",
			c.Class, status, c.Availability, c.AvailabilityBurn,
			c.P99MS, c.P99TargetMS, c.LatencyBurn, c.Requests)
	}
}

// RenderObs prints the observability-plane report.
func RenderObs(cfg Config, rep *ObsReport) {
	w := cfg.out()
	fmt.Fprintf(w, "Fleet observability: K=%d routed tier, 1-in-%d distributed tracing, %.1fs SLO window (%d pages)\n",
		rep.K, rep.TraceEvery, rep.WindowSeconds, cfg.QuerySize)
	renderObsPhase(w, rep.Healthy)
	renderObsPhase(w, rep.Overload)
	c := rep.Cluster
	verdict := "HOLDS"
	if !c.Consistent {
		verdict = "VIOLATED"
	}
	fmt.Fprintf(w, "federation: cluster merge == replica sums %s over %d replicas (%d counters, %d histograms checked)\n",
		verdict, c.Replicas, c.CountersChecked, c.HistogramsChecked)
	for _, mm := range c.Mismatches {
		fmt.Fprintf(w, "  mismatch: %s\n", mm)
	}
	fmt.Fprintf(w, "federation: %d stale replica snapshot(s) retained in the cluster view after a kill\n", c.StaleAfterKill)
	t := rep.Trace
	fmt.Fprintf(w, "tracing: %d distributed trace(s) stitched (%d errors); tail exemplar -> trace %d\n",
		t.Stitched, t.StitchErrors, t.ExemplarTraceID)
	fmt.Fprintf(w, "tracing: fetched stitched trace %d (%s): %d shard subtree(s), %d router span(s)\n",
		t.ExampleTraceID, t.ExampleClass, t.ExampleRemotes, t.ExampleSpans)
	fmt.Fprintln(w, "(burn >1.0 means the error budget is being consumed faster than the objective allows)")
	fmt.Fprintln(w)
}

// ObsJSON writes the report (plus scale parameters and run provenance)
// as the committed benchmark artifact.
func ObsJSON(path string, cfg Config, rep *ObsReport) error {
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	doc := struct {
		Experiment  string     `json:"experiment"`
		Provenance  Provenance `json:"provenance"`
		Pages       int        `json:"pages"`
		BudgetBytes int64      `json:"budget_bytes"`
		Pace        float64    `json:"pace"`
		NavShare    float64    `json:"nav_share"`
		Report      *ObsReport `json:"report"`
	}{
		Experiment:  "obs",
		Provenance:  NewProvenance(),
		Pages:       cfg.QuerySize,
		BudgetBytes: cfg.QueryBudget,
		Pace:        pace,
		NavShare:    loadNavShare,
		Report:      rep,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
