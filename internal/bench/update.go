package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"snode/internal/delta"
	"snode/internal/query"
	"snode/internal/randutil"
	"snode/internal/repo"
	"snode/internal/store"
	"snode/internal/webgraph"
)

// The serving-under-churn experiment: the delta overlay keeps an
// S-Node repository queryable while link mutations stream in, at the
// price of merging the update layers into every lookup. This
// experiment charts that price as a latency-vs-delta-depth curve: the
// six-query mix is timed against the bare base store, an empty overlay
// (the pass-through regression check), a hot memtable, a stack of
// sealed segments, the compacted stack, and finally the overlay after
// a fold-back has rebuilt the base — which must land back at
// pass-through cost.

// UpdateRow is one delta depth of the churn experiment.
type UpdateRow struct {
	// Stage names the overlay state the mix was timed against.
	Stage string `json:"stage"`
	// DeltaEntries is the live mutation-record count across layers.
	DeltaEntries int64 `json:"delta_entries"`
	// Segments is the sealed-segment count at measurement time.
	Segments int `json:"segments"`
	Queries  int `json:"queries"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	QPS      float64       `json:"qps"`
	// VsBase is Elapsed over the base-direct row's Elapsed; the
	// "overlay-empty" row's value is the pass-through overhead.
	VsBase float64 `json:"vs_base"`
}

// updateGoroutines is the fixed serving width; the experiment varies
// delta depth, not concurrency (that's the concurrency experiment).
const updateGoroutines = 4

// updateSegments is how many sealed batches the segmented stage holds.
const updateSegments = 4

// genChurn produces a deterministic mutation log over existing pages:
// half removals of real edges, half additions of random ones. Links
// between existing pages only, so the text/rank/domain indexes the
// queries consult stay valid throughout.
func genChurn(g *webgraph.Graph, rng *randutil.RNG, n int) []delta.Mutation {
	np := g.NumPages()
	muts := make([]delta.Mutation, 0, n)
	for len(muts) < n {
		if rng.Intn(2) == 0 {
			s := webgraph.PageID(rng.Intn(np))
			out := g.Out(s)
			if len(out) == 0 {
				continue
			}
			muts = append(muts, delta.Mutation{Src: s, Dst: out[rng.Intn(len(out))], Op: delta.OpRemove})
		} else {
			muts = append(muts, delta.Mutation{
				Src: webgraph.PageID(rng.Intn(np)),
				Dst: webgraph.PageID(rng.Intn(np)),
				Op:  delta.OpAdd,
			})
		}
	}
	return muts
}

// mirrorChurn transposes a mutation log for the reverse overlay, the
// way the repo builder materializes WGT next to WG.
func mirrorChurn(muts []delta.Mutation) []delta.Mutation {
	out := make([]delta.Mutation, len(muts))
	for i, m := range muts {
		out[i] = delta.Mutation{Src: m.Dst, Dst: m.Src, Op: m.Op}
	}
	return out
}

// Update runs the churn experiment over an S-Node repository built at
// cfg.QuerySize with cfg.QueryBudget of buffer, iosim pacing on.
func Update(cfg Config) ([]UpdateRow, error) {
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	crawl, err := cfg.Crawl(cfg.QuerySize)
	if err != nil {
		return nil, err
	}
	opt := repo.DefaultOptions(filepath.Join(ws, "updaterepo"))
	opt.Schemes = []string{repo.SchemeSNode}
	opt.CacheBudget = cfg.QueryBudget
	opt.Model = cfg.Model
	opt.Layout = crawl.Order
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	mkOverlay := func(base store.LinkStore, dir string) (*delta.Overlay, error) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		return delta.NewOverlay(base, delta.Config{
			Pages: crawl.Corpus.Pages,
			Dir:   dir,
			Model: cfg.Model,
		})
	}
	fwdOv, err := mkOverlay(r.Fwd[repo.SchemeSNode], filepath.Join(ws, "delta.fwd"))
	if err != nil {
		return nil, err
	}
	defer fwdOv.Close()
	revOv, err := mkOverlay(r.Rev[repo.SchemeSNode], filepath.Join(ws, "delta.rev"))
	if err != nil {
		return nil, err
	}
	defer revOv.Close()

	// The live repository: overlays in the serving path, every index
	// shared with the base build.
	live := &repo.Repository{
		Corpus:   r.Corpus,
		Text:     r.Text,
		PageRank: r.PageRank,
		Domains:  r.Domains,
		Model:    r.Model,
		Fwd:      map[string]store.LinkStore{repo.SchemeSNode: fwdOv},
		Rev:      map[string]store.LinkStore{repo.SchemeSNode: revOv},
	}
	liveEngine, err := query.New(live, repo.SchemeSNode)
	if err != nil {
		return nil, err
	}
	baseEngine, err := query.New(r, repo.SchemeSNode)
	if err != nil {
		return nil, err
	}

	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	paced := []store.LinkStore{fwdOv, revOv, r.Fwd[repo.SchemeSNode], r.Rev[repo.SchemeSNode]}
	for _, s := range paced {
		if p, ok := s.(store.Pacer); ok {
			p.SetPace(pace)
		}
	}
	defer func() {
		for _, s := range paced {
			if p, ok := s.(store.Pacer); ok {
				p.SetPace(0)
			}
		}
	}()

	var jobs []query.ID
	for i := 0; i < servingRounds; i++ {
		jobs = append(jobs, query.All()...)
	}

	var rows []UpdateRow
	measure := func(stage string, e *query.Engine) error {
		// Cold start per stage, same budget: rows differ only in the
		// delta layers merged into each lookup.
		for _, s := range paced {
			if cr, ok := s.(store.CacheResetter); ok {
				cr.ResetCache(cfg.QueryBudget)
			}
		}
		start := time.Now()
		if _, err := e.RunParallel(context.Background(), jobs, updateGoroutines); err != nil {
			return fmt.Errorf("bench: update stage %s: %w", stage, err)
		}
		elapsed := time.Since(start)
		row := UpdateRow{
			Stage:        stage,
			DeltaEntries: fwdOv.DeltaEntries() + revOv.DeltaEntries(),
			Segments:     fwdOv.SegmentCount() + revOv.SegmentCount(),
			Queries:      len(jobs),
			Elapsed:      elapsed,
			QPS:          float64(len(jobs)) / elapsed.Seconds(),
			VsBase:       1,
		}
		if len(rows) > 0 && rows[0].Elapsed > 0 {
			row.VsBase = elapsed.Seconds() / rows[0].Elapsed.Seconds()
		}
		rows = append(rows, row)
		return nil
	}

	ctx := context.Background()
	if err := measure("base-direct", baseEngine); err != nil {
		return nil, err
	}
	if err := measure("overlay-empty", liveEngine); err != nil {
		return nil, err
	}

	// Stream the churn in: one hot memtable's worth first, then seal a
	// batch at a time until the segmented stage.
	rng := randutil.NewRNG(cfg.Seed + 5)
	batch := cfg.QuerySize / 8
	apply := func(n int) error {
		muts := genChurn(crawl.Corpus.Graph, rng, n)
		if err := fwdOv.Apply(ctx, muts); err != nil {
			return err
		}
		return revOv.Apply(ctx, mirrorChurn(muts))
	}
	if err := apply(batch); err != nil {
		return nil, err
	}
	if err := measure("memtable", liveEngine); err != nil {
		return nil, err
	}
	for i := 0; i < updateSegments; i++ {
		if i > 0 {
			if err := apply(batch); err != nil {
				return nil, err
			}
		}
		if err := fwdOv.Seal(ctx); err != nil {
			return nil, err
		}
		if err := revOv.Seal(ctx); err != nil {
			return nil, err
		}
	}
	if err := measure(fmt.Sprintf("segments-%d", updateSegments), liveEngine); err != nil {
		return nil, err
	}

	// Compacted: size-tiered merges down to a single segment per side.
	for _, o := range []*delta.Overlay{fwdOv, revOv} {
		for o.SegmentCount() > 1 {
			did, err := o.MergeOnce(ctx)
			if err != nil {
				return nil, err
			}
			if !did {
				break
			}
		}
	}
	if err := measure("compacted", liveEngine); err != nil {
		return nil, err
	}

	// Fold-back: both overlays rebuild their base; serving cost must
	// return to the pass-through row's neighbourhood.
	for i, o := range []*delta.Overlay{fwdOv, revOv} {
		if _, err := o.FoldBack(ctx, delta.FoldConfig{
			SNode:       opt.SNode,
			Dir:         filepath.Join(ws, fmt.Sprintf("fold.%d", i)),
			CacheBudget: cfg.QueryBudget,
			Model:       cfg.Model,
		}); err != nil {
			return nil, err
		}
	}
	if err := measure("folded", liveEngine); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderUpdate prints the latency-vs-delta-depth table.
func RenderUpdate(cfg Config, rows []UpdateRow) {
	w := cfg.out()
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	fmt.Fprintf(w, "Serving under churn: query mix vs delta depth (%d pages, %d KB buffer, %d goroutines, paced disk x%.2f)\n",
		cfg.QuerySize, cfg.QueryBudget>>10, updateGoroutines, pace)
	fmt.Fprintf(w, "%14s %9s %9s %8s %12s %10s %8s\n",
		"stage", "entries", "segments", "queries", "elapsed", "qps", "vs-base")
	for _, r := range rows {
		fmt.Fprintf(w, "%14s %9d %9d %8d %12v %10.1f %7.2fx\n",
			r.Stage, r.DeltaEntries, r.Segments, r.Queries,
			r.Elapsed.Round(time.Millisecond), r.QPS, r.VsBase)
	}
	fmt.Fprintln(w, "(delta layers merge into every lookup; fold-back returns the path to pass-through cost)")
	fmt.Fprintln(w)
}

// UpdateJSON writes the rows (plus scale parameters and run
// provenance) as the committed benchmark artifact.
func UpdateJSON(path string, cfg Config, rows []UpdateRow) error {
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	doc := struct {
		Experiment string      `json:"experiment"`
		Provenance Provenance  `json:"provenance"`
		Pages      int         `json:"pages"`
		Pace       float64     `json:"pace"`
		Goroutines int         `json:"goroutines"`
		Rows       []UpdateRow `json:"rows"`
	}{
		Experiment: "update",
		Provenance: NewProvenance(),
		Pages:      cfg.QuerySize,
		Pace:       pace,
		Goroutines: updateGoroutines,
		Rows:       rows,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// UpdateCSV writes the rows in the bench CSV convention.
func UpdateCSV(dir string, rows []UpdateRow) error {
	f, err := os.Create(filepath.Join(dir, "update.csv"))
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "stage,delta_entries,segments,queries,elapsed_ms,qps,vs_base")
	for _, r := range rows {
		fmt.Fprintf(f, "%s,%d,%d,%d,%.1f,%.1f,%.3f\n",
			r.Stage, r.DeltaEntries, r.Segments, r.Queries,
			float64(r.Elapsed.Microseconds())/1e3, r.QPS, r.VsBase)
	}
	return f.Close()
}
