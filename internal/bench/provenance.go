package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"snode/internal/metrics"
)

// Provenance stamps a committed benchmark artifact with enough of the
// run environment to interpret the numbers later: which commit the
// binary was built from, when the run happened, and how much
// parallelism the host offered. Every snbench JSON output embeds one.
type Provenance struct {
	GitCommit  string `json:"git_commit"`
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// NewProvenance captures the current run environment. The commit hash
// is read from git; outside a checkout it reads "unknown".
func NewProvenance() Provenance {
	commit := "unknown"
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if s := strings.TrimSpace(string(out)); s != "" {
			commit = s
		}
	}
	return Provenance{
		GitCommit:  commit,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// MetricsJSON writes a registry snapshot to path wrapped with run
// provenance (the form cmd/snbench -metrics-out archives).
func MetricsJSON(path string, reg *metrics.Registry) error {
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		return err
	}
	doc := struct {
		Provenance Provenance      `json:"provenance"`
		Metrics    json.RawMessage `json:"metrics"`
	}{NewProvenance(), json.RawMessage(bytes.TrimSpace(buf.Bytes()))}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
