package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snode/internal/admission"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/metrics"
	"snode/internal/serve"
	"snode/internal/slo"
	"snode/internal/snode"
	"snode/internal/store"
)

// The open-loop load experiment: drive the serving stack (HTTP front
// end -> admission -> engine -> S-Node reader -> paced I/O) at fixed
// OFFERED rates and chart latency against offered load up to and past
// the saturation knee. A closed-loop driver (like the Concurrency
// experiment) cannot show the knee: its clients slow down with the
// server, so offered load self-throttles exactly when queueing theory
// says collapse begins. Here arrivals come from Poisson and bursty
// schedules that do not care whether the server is keeping up, which
// is what production traffic does — and what the admission layer's
// bounded queues and load shedding exist to survive.
//
// Protocol: a closed-loop probe first measures the stack's capacity
// (sustainable queries/second), then the open-loop sweep offers fixed
// fractions of that capacity — below, at, and at 2x the knee — so the
// curve crosses the knee on any machine regardless of its speed. Each
// point reports client-observed admitted-request latency percentiles,
// shed counts split by reason, and the deepest admission queue seen;
// past the knee a healthy server sheds (429 + Retry-After) instead of
// growing unbounded queues, so admitted-request p99 stays bounded.

// Request mix and traffic shape.
const (
	// loadNavShare of requests are navigation-class (/out, one page's
	// adjacency, Zipf-skewed start page); the rest are mining-class
	// (/query, one of the six Table 3 analyses).
	loadNavShare = 0.92
	// loadZipfS skews start pages: early-crawled (root-adjacent) pages
	// are hot, the tail is cold — the usual web-traffic shape.
	loadZipfS = 1.2
	// Per-class request deadlines sent as ?deadline_ms. They bound how
	// stale a queued request can get: admission sheds requests whose
	// estimated wait exceeds what remains, and a request whose deadline
	// fires while queued or mid-query is shed then — so admitted-request
	// latency is capped near the deadline even when the queue bound
	// alone would allow worse. Mining gets the tighter cap: past the
	// knee it is deprioritized behind nav, so its queue wait, not its
	// service time, would otherwise dominate the admitted tail.
	loadNavDeadline    = 300 * time.Millisecond
	loadMiningDeadline = 175 * time.Millisecond
	// loadMaxConcurrent fixes the admission slots. Not GOMAXPROCS: the
	// paced stack is I/O-bound (stalls are sleeps), so slots play the
	// role of disk queue depth, and a fixed count keeps the committed
	// artifact comparable across hosts. Multiple slots also let decodes
	// genuinely overlap, which is what singleflight coalescing and
	// hedged reads act on.
	loadMaxConcurrent = 8
	// loadMaxQueue bounds each class's admission queue. Small on
	// purpose: queue capacity past the knee only adds wait, not
	// goodput.
	loadMaxQueue = 16
	// loadHedgeAfter arms hedged reads on the S-Node stores: a request
	// coalesced behind another's in-flight decode longer than this
	// launches its own read. Well under the ~9ms modeled cold-span
	// stall, so only genuinely straggling leaders get hedged.
	loadHedgeAfter = 3 * time.Millisecond
	// Bursty trace: square wave with loadBurstDuty of each
	// loadBurstPeriod at loadBurstFactor times the base rate, the rest
	// at a trickle chosen so the mean offered rate equals the Poisson
	// trace's.
	loadBurstPeriod = 400 * time.Millisecond
	loadBurstDuty   = 0.25
	loadBurstFactor = 3.0
)

// loadFractions is the Poisson sweep, as fractions of probed capacity.
func loadFractions() []float64 { return []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0} }

// loadBurstFractions are the extra bursty-trace points.
func loadBurstFractions() []float64 { return []float64{1.0, 2.0} }

// LoadRow is one offered-load point.
type LoadRow struct {
	Trace      string        `json:"trace"` // "poisson" | "burst"
	Fraction   float64       `json:"fraction_of_capacity"`
	OfferedRPS float64       `json:"offered_rps"`
	Duration   time.Duration `json:"duration_ns"`
	Offered    int64         `json:"offered"`
	Admitted   int64         `json:"admitted"`
	Shed       int64         `json:"shed"`
	Errors     int64         `json:"errors"`
	GoodputQPS float64       `json:"goodput_qps"`
	// Client-observed latency of admitted (200) responses, which
	// includes admission queue wait — the number an open-loop client
	// actually experiences.
	P50MS       float64 `json:"admitted_p50_ms"`
	P95MS       float64 `json:"admitted_p95_ms"`
	P99MS       float64 `json:"admitted_p99_ms"`
	NavP99MS    float64 `json:"nav_p99_ms"`
	MiningP99MS float64 `json:"mining_p99_ms"`
	// Admission-layer shed reasons over this point (mid-query deadline
	// sheds answer 429 too but are admitted first, so Shed can exceed
	// the sum of these).
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
	// MaxQueueDepth is the deepest total admission queue sampled while
	// the point ran; bounded by classes x loadMaxQueue by construction.
	MaxQueueDepth int `json:"max_queue_depth"`
}

// LoadSummary is the knee analysis over the Poisson sweep.
type LoadSummary struct {
	CapacityQPS       float64 `json:"capacity_qps"`
	KneeOfferedRPS    float64 `json:"knee_offered_rps"`
	AtKneeP99MS       float64 `json:"at_knee_p99_ms"`
	At2xKneeP99MS     float64 `json:"at_2x_knee_p99_ms"`
	P99Ratio          float64 `json:"p99_ratio_2x_over_knee"`
	ShedAt2xKnee      int64   `json:"shed_at_2x_knee"`
	QueueBound        int     `json:"queue_bound_per_class"`
	MaxQueueDepthSeen int     `json:"max_queue_depth_seen"`
	HedgesLaunched    int64   `json:"hedges_launched"`
	HedgeWins         int64   `json:"hedge_wins"`
}

// LoadReport is the experiment's full result.
type LoadReport struct {
	Rows    []LoadRow   `json:"rows"`
	Summary LoadSummary `json:"summary"`
	// SLO is the scoreboard's judgement of the whole sweep: sampled
	// from the server's own admission counters and latency histograms
	// before the first point and after the last, so the past-the-knee
	// points show up as availability burn.
	SLO *slo.Report `json:"slo,omitempty"`
}

// serveObjectives scores a single serve.Server's registry: offered vs
// shed per class from the admission counters, latency from the
// serve_latency histograms, with the per-class request deadlines as
// the p99 targets.
func serveObjectives() []slo.Objective {
	return []slo.Objective{
		{
			Class:        "nav",
			TotalCounter: "admission_nav_offered",
			BadCounters:  []string{"admission_nav_shed"},
			LatencyHist:  "serve_latency_nav",
			Availability: 0.999,
			P99:          loadNavDeadline,
		},
		{
			Class:        "mining",
			TotalCounter: "admission_mining_offered",
			BadCounters:  []string{"admission_mining_shed"},
			LatencyHist:  "serve_latency_mining",
			Availability: 0.999,
			P99:          loadMiningDeadline,
		},
	}
}

// arrival is one scheduled request of a pre-generated trace.
type arrival struct {
	at   time.Duration
	nav  bool
	page int64
	q    int
}

// loadWorkload draws the request mix deterministically from one seed.
type loadWorkload struct {
	rng  *rand.Rand
	zipf *rand.Zipf
}

func newLoadWorkload(seed uint64, pages int) *loadWorkload {
	rng := rand.New(rand.NewSource(int64(seed)))
	return &loadWorkload{
		rng:  rng,
		zipf: rand.NewZipf(rng, loadZipfS, 1, uint64(pages-1)),
	}
}

func (w *loadWorkload) draw(at time.Duration) arrival {
	a := arrival{at: at}
	if w.rng.Float64() < loadNavShare {
		a.nav = true
		a.page = int64(w.zipf.Uint64())
	} else {
		a.q = w.rng.Intn(6) + 1
	}
	return a
}

// genTrace pre-generates an arrival schedule of mean rate rps over d.
// Poisson: exponential inter-arrivals. Burst: a square wave whose
// on-phase runs at loadBurstFactor x rps and whose off-phase trickles,
// with the duty cycle chosen so the mean stays rps.
func genTrace(w *loadWorkload, kind string, rps float64, d time.Duration) []arrival {
	offRate := rps * (1 - loadBurstFactor*loadBurstDuty) / (1 - loadBurstDuty)
	if offRate < rps/100 {
		offRate = rps / 100
	}
	var out []arrival
	t := 0.0
	for {
		r := rps
		if kind == "burst" {
			if math.Mod(t, loadBurstPeriod.Seconds()) < loadBurstDuty*loadBurstPeriod.Seconds() {
				r = rps * loadBurstFactor
			} else {
				r = offRate
			}
		}
		t += w.rng.ExpFloat64() / r
		if t >= d.Seconds() {
			return out
		}
		out = append(out, w.draw(time.Duration(t*float64(time.Second))))
	}
}

// loadHarness drives one serving stack over real HTTP on loopback.
type loadHarness struct {
	base   string
	client *http.Client
	ctrl   *admission.Controller
}

// do issues one request and classifies the outcome. Latency includes
// the server's admission queue wait (it is client-observed).
func (h *loadHarness) do(a arrival) (admitted, shed bool, lat time.Duration, err error) {
	var url string
	deadline := loadMiningDeadline
	if a.nav {
		deadline = loadNavDeadline
		url = fmt.Sprintf("%s/out?page=%d&deadline_ms=%d", h.base, a.page, deadline.Milliseconds())
	} else {
		url = fmt.Sprintf("%s/query?q=%d&deadline_ms=%d", h.base, a.q, deadline.Milliseconds())
	}
	// Client-side timeout is a backstop only; the server's propagated
	// deadline is what cuts work loose.
	ctx, cancel := context.WithTimeout(context.Background(), deadline+5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, false, 0, err
	}
	start := time.Now()
	resp, err := h.client.Do(req)
	if err != nil {
		return false, false, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat = time.Since(start)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, false, lat, nil
	case http.StatusTooManyRequests:
		return false, true, lat, nil
	default:
		return false, false, lat, fmt.Errorf("status %d", resp.StatusCode)
	}
}

// probe measures sustainable capacity with a closed loop: workers
// issue requests back to back, so offered load self-throttles to what
// the stack completes. The completion rate of 200s is the knee
// estimate the open-loop sweep is anchored to.
func (h *loadHarness) probe(seed uint64, pages, workers int, d time.Duration) float64 {
	var admitted int64
	stop := time.Now().Add(d)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newLoadWorkload(seed+uint64(g)*7919+1, pages)
			for time.Now().Before(stop) {
				ok, _, _, _ := h.do(w.draw(0))
				if ok {
					atomic.AddInt64(&admitted, 1)
				}
			}
		}()
	}
	wg.Wait()
	return float64(atomic.LoadInt64(&admitted)) / time.Since(start).Seconds()
}

// runPoint offers one pre-generated trace and measures the outcome.
func (h *loadHarness) runPoint(kind string, fraction float64, arrivals []arrival) LoadRow {
	before := h.ctrl.Stats()

	// Sample total queue depth while the point runs; the max pins
	// "bounded queues" in the artifact.
	maxDepth := 0
	stopSample := make(chan struct{})
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-tick.C:
				if n := h.ctrl.QueueDepth(); n > maxDepth {
					maxDepth = n
				}
			}
		}
	}()

	var admitted, shedN, errsN int64
	var mu sync.Mutex
	var all, navLat, miningLat []time.Duration

	// Open-loop dispatch: sleep to each arrival's offset and fire it in
	// its own goroutine. Nothing here waits for responses, so a slow
	// server cannot throttle the offered rate.
	var wg sync.WaitGroup
	start := time.Now()
	for _, a := range arrivals {
		if s := a.at - time.Since(start); s > 0 {
			time.Sleep(s)
		}
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			ok, shed, lat, err := h.do(a)
			switch {
			case err != nil:
				atomic.AddInt64(&errsN, 1)
			case ok:
				atomic.AddInt64(&admitted, 1)
				mu.Lock()
				all = append(all, lat)
				if a.nav {
					navLat = append(navLat, lat)
				} else {
					miningLat = append(miningLat, lat)
				}
				mu.Unlock()
			case shed:
				atomic.AddInt64(&shedN, 1)
			}
		}(a)
	}
	// Offered rate is measured over the dispatch window; the drain tail
	// (in-flight responses) must not dilute it.
	dispatched := time.Since(start)
	wg.Wait()
	close(stopSample)
	<-sampleDone

	after := h.ctrl.Stats()
	var shedQF, shedDL int64
	for class, st := range after {
		b := before[class]
		shedQF += st.ShedBy[admission.ReasonQueueFull] - b.ShedBy[admission.ReasonQueueFull]
		shedDL += st.ShedBy[admission.ReasonDeadline] - b.ShedBy[admission.ReasonDeadline]
	}

	row := LoadRow{
		Trace:         kind,
		Fraction:      fraction,
		OfferedRPS:    float64(len(arrivals)) / dispatched.Seconds(),
		Duration:      dispatched,
		Offered:       int64(len(arrivals)),
		Admitted:      atomic.LoadInt64(&admitted),
		Shed:          atomic.LoadInt64(&shedN),
		Errors:        atomic.LoadInt64(&errsN),
		P50MS:         percentileMS(all, 0.50),
		P95MS:         percentileMS(all, 0.95),
		P99MS:         percentileMS(all, 0.99),
		NavP99MS:      percentileMS(navLat, 0.99),
		MiningP99MS:   percentileMS(miningLat, 0.99),
		ShedQueueFull: shedQF,
		ShedDeadline:  shedDL,
		MaxQueueDepth: maxDepth,
	}
	row.GoodputQPS = float64(row.Admitted) / dispatched.Seconds()
	return row
}

// percentileMS reports the p-quantile of lats in milliseconds.
func percentileMS(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return float64(s[idx]) / float64(time.Millisecond)
}

// Load runs the open-loop load experiment over an S-Node repository
// built at cfg.QuerySize with cfg.QueryBudget of buffer, served over
// HTTP on loopback with pacing and hedged reads enabled.
func Load(cfg Config) (*LoadReport, error) {
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	crawl, err := cfg.Crawl(cfg.QuerySize)
	if err != nil {
		return nil, err
	}
	opt := repo.DefaultOptions(filepath.Join(ws, "loadrepo"))
	opt.Schemes = []string{repo.SchemeSNode}
	opt.CacheBudget = cfg.QueryBudget
	opt.Model = cfg.Model
	opt.Layout = crawl.Order
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	e, err := query.New(r, repo.SchemeSNode)
	if err != nil {
		return nil, err
	}

	stores := []store.LinkStore{r.Fwd[repo.SchemeSNode], r.Rev[repo.SchemeSNode]}
	if cfg.Tracer != nil {
		e.SetTracer(cfg.Tracer)
	}
	if cfg.Metrics != nil {
		e.SetMetrics(cfg.Metrics)
		for i, prefix := range []string{"snode_fwd", "snode_rev"} {
			if sn, ok := stores[i].(*snode.Representation); ok {
				sn.RegisterMetrics(cfg.Metrics, prefix)
			}
		}
	}
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	for _, s := range stores {
		if p, ok := s.(store.Pacer); ok {
			p.SetPace(pace)
		}
		if hd, ok := s.(store.Hedger); ok {
			hd.SetHedge(loadHedgeAfter)
		}
	}
	defer func() {
		for _, s := range stores {
			if p, ok := s.(store.Pacer); ok {
				p.SetPace(0)
			}
			if hd, ok := s.(store.Hedger); ok {
				hd.SetHedge(0)
			}
		}
	}()

	// The scoreboard needs the admission counters and latency
	// histograms even when the caller did not ask for a registry.
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	srv, err := serve.New(serve.Config{
		Engine:        e,
		MaxConcurrent: loadMaxConcurrent,
		MaxQueue:      loadMaxQueue,
		Registry:      reg,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	h := &loadHarness{
		base: "http://" + ln.Addr().String(),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
			IdleConnTimeout:     30 * time.Second,
		}},
		ctrl: srv.Admission(),
	}

	dur := cfg.LoadDuration
	if dur <= 0 {
		dur = 2500 * time.Millisecond
	}
	workers := 2 * srv.Admission().MaxConcurrent()
	capacity := h.probe(cfg.Seed, cfg.QuerySize, workers, dur)
	if capacity <= 0 {
		return nil, fmt.Errorf("bench: load capacity probe completed zero requests")
	}

	// Scoreboard over the sweep: baseline AFTER the capacity probe so
	// only the open-loop points are judged. The window is wide enough
	// that the whole sweep lands in it.
	board := slo.New(slo.Config{Window: time.Hour, Objectives: serveObjectives()})
	board.Sample(time.Now(), reg.Snapshot())

	rep := &LoadReport{}
	point := 0
	run := func(kind string, fr float64) {
		point++
		w := newLoadWorkload(cfg.Seed+uint64(point)*104729, cfg.QuerySize)
		arrivals := genTrace(w, kind, fr*capacity, dur)
		rep.Rows = append(rep.Rows, h.runPoint(kind, fr, arrivals))
	}
	for _, fr := range loadFractions() {
		run("poisson", fr)
	}
	for _, fr := range loadBurstFractions() {
		run("burst", fr)
	}
	now := time.Now()
	board.Sample(now, reg.Snapshot())
	sloRep := board.Report(now)
	rep.SLO = &sloRep

	sum := LoadSummary{
		CapacityQPS: capacity,
		QueueBound:  loadMaxQueue,
	}
	for _, row := range rep.Rows {
		if row.MaxQueueDepth > sum.MaxQueueDepthSeen {
			sum.MaxQueueDepthSeen = row.MaxQueueDepth
		}
		if row.Trace != "poisson" {
			continue
		}
		switch row.Fraction {
		case 1.0:
			sum.KneeOfferedRPS = row.OfferedRPS
			sum.AtKneeP99MS = row.P99MS
		case 2.0:
			sum.At2xKneeP99MS = row.P99MS
			sum.ShedAt2xKnee = row.Shed
		}
	}
	if sum.AtKneeP99MS > 0 {
		sum.P99Ratio = sum.At2xKneeP99MS / sum.AtKneeP99MS
	}
	for _, s := range stores {
		if sn, ok := s.(*snode.Representation); ok {
			launched, wins, _ := sn.HedgeStats()
			sum.HedgesLaunched += launched
			sum.HedgeWins += wins
		}
	}
	rep.Summary = sum
	return rep, nil
}

// RenderLoad prints the latency-vs-offered-load table and the knee
// analysis.
func RenderLoad(cfg Config, rep *LoadReport) {
	w := cfg.out()
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	fmt.Fprintf(w, "Open-loop load: latency vs offered rate (%d pages, %d KB buffer, paced disk x%.2f, queue %d/class)\n",
		cfg.QuerySize, cfg.QueryBudget>>10, pace, loadMaxQueue)
	fmt.Fprintf(w, "closed-loop capacity probe: %.1f qps\n", rep.Summary.CapacityQPS)
	fmt.Fprintf(w, "%8s %6s %9s %8s %9s %6s %5s %8s %8s %8s %5s\n",
		"trace", "frac", "offered/s", "offered", "admitted", "shed", "err",
		"p50ms", "p95ms", "p99ms", "maxq")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%8s %5.2fx %9.1f %8d %9d %6d %5d %8.1f %8.1f %8.1f %5d\n",
			r.Trace, r.Fraction, r.OfferedRPS, r.Offered, r.Admitted, r.Shed,
			r.Errors, r.P50MS, r.P95MS, r.P99MS, r.MaxQueueDepth)
	}
	s := rep.Summary
	fmt.Fprintf(w, "knee: %.1f rps offered; admitted p99 %.1fms at the knee, %.1fms at 2x (%.2fx), %d shed at 2x\n",
		s.KneeOfferedRPS, s.AtKneeP99MS, s.At2xKneeP99MS, s.P99Ratio, s.ShedAt2xKnee)
	fmt.Fprintf(w, "queues stayed bounded: max depth %d of %d; hedged reads: %d launched, %d won\n",
		s.MaxQueueDepthSeen, 2*s.QueueBound, s.HedgesLaunched, s.HedgeWins)
	if rep.SLO != nil {
		fmt.Fprintln(w, rep.SLO.Summary())
		fmt.Fprintln(w, "(the sweep deliberately crosses the knee, so availability burn >1 here means shedding worked)")
	}
	fmt.Fprintln(w, "(past the knee the server sheds with 429 + Retry-After instead of queueing unboundedly)")
	fmt.Fprintln(w)
}

// LoadJSON writes the report (plus scale parameters and run
// provenance) as the committed benchmark artifact.
func LoadJSON(path string, cfg Config, rep *LoadReport) error {
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	doc := struct {
		Experiment    string      `json:"experiment"`
		Provenance    Provenance  `json:"provenance"`
		Pages         int         `json:"pages"`
		BudgetBytes   int64       `json:"budget_bytes"`
		Pace          float64     `json:"pace"`
		NavShare      float64     `json:"nav_share"`
		QueuePerClass int         `json:"queue_per_class"`
		HedgeAfterMS  int64       `json:"hedge_after_ms"`
		Rows          []LoadRow   `json:"rows"`
		Summary       LoadSummary `json:"summary"`
		SLO           *slo.Report `json:"slo,omitempty"`
	}{
		Experiment:    "load",
		Provenance:    NewProvenance(),
		Pages:         cfg.QuerySize,
		BudgetBytes:   cfg.QueryBudget,
		Pace:          pace,
		NavShare:      loadNavShare,
		QueuePerClass: loadMaxQueue,
		HedgeAfterMS:  loadHedgeAfter.Milliseconds(),
		Rows:          rep.Rows,
		Summary:       rep.Summary,
		SLO:           rep.SLO,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
