package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"snode/internal/ingest"
	"snode/internal/metrics"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/store"
	"snode/internal/webgraph"
)

// The ingestion experiment: the paper builds S-Node representations
// from crawl repositories holding up to 115M pages — far more than the
// build machine's memory holds as raw edges. This experiment measures
// the external-memory path end to end at each cfg.IngestSizes scale:
// the crawl is exported the way public datasets ship (SNAP edge list +
// URL table + sha256 manifest), re-ingested under the bounded
// cfg.IngestHeapMB heap (sorted runs + k-way merge), and built with the
// partition refiner's spill rounds on — then compared against the
// direct in-memory build of the same corpus. "Golden" re-hashes every
// S-Node artifact against the direct build, and the six paper queries
// must return identical rows; the scaling curve reports wall time, peak
// heap, transient ingest state, and bits/edge per size.

// IngestRow is one repository size of the ingestion scaling curve.
type IngestRow struct {
	Pages        int   `json:"pages"`
	Edges        int64 `json:"edges"`
	DatasetBytes int64 `json:"dataset_bytes"`

	// Direct path: corpus already in memory, no spill anywhere.
	DirectBuild  time.Duration `json:"direct_build_ns"`
	DirectPeakMB float64       `json:"direct_peak_heap_mb"`

	// Ingest path: parse + spill + merge under the heap budget.
	IngestWall    time.Duration `json:"ingest_ns"`
	IngestPeakMB  float64       `json:"ingest_peak_heap_mb"`
	EdgeStateMB   float64       `json:"edge_state_mb"` // peak minus retained output
	Runs          int           `json:"runs_spilled"`
	SpillBytes    int64         `json:"spill_bytes"`
	DupEdges      int64         `json:"dup_edges"`
	ChecksumOK    bool          `json:"checksum_verified"`
	IngestBuild   time.Duration `json:"ingest_build_ns"`
	IngestBuildMB float64       `json:"ingest_build_peak_heap_mb"`
	SpillRounds   int64         `json:"refine_spill_rounds"`
	RefineSpillB  int64         `json:"refine_spill_bytes"`

	// Equivalence and serving cost of the ingest-built repository.
	BitsPerEdge      float64          `json:"bits_per_edge"`
	Golden           bool             `json:"golden_artifacts"`
	QueriesIdentical bool             `json:"queries_identical"`
	ColdOut          time.Duration    `json:"cold_out_ns_per_page"`
	QueryNav         map[string]int64 `json:"query_nav_ns"`
}

// IngestSummary is the curve-level verdict the bench gate reads.
type IngestSummary struct {
	HeapBudgetMB int `json:"heap_budget_mb"`
	// BudgetRespected holds when the largest size actually spilled
	// (Runs > 0) and its transient ingest state stayed within the
	// budget (2x for the sort's working copy, plus fixed slack for
	// merge cursors and GC timing).
	BudgetRespected bool `json:"budget_respected"`
	AllGolden       bool `json:"all_golden"`
	AllQueriesSame  bool `json:"all_queries_identical"`
}

// IngestResult is the experiment outcome.
type IngestResult struct {
	Rows    []IngestRow   `json:"rows"`
	Summary IngestSummary `json:"summary"`
}

// heapMB reads the current heap+stack in-use figure the sampler also
// tracks, after forcing a collection so garbage does not count.
func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapInuse+ms.StackInuse) / (1 << 20)
}

// dirBytes sums the file sizes in dir (non-recursive; the dataset dirs
// are flat).
func dirBytes(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// snodeHashes fingerprints the snode.fwd and snode.rev artifacts of a
// repository directory, name-spacing by subdirectory.
func snodeHashes(dir string) (map[string][32]byte, error) {
	out := map[string][32]byte{}
	for _, sub := range []string{"snode.fwd", "snode.rev"} {
		h, err := buildDirHashes(filepath.Join(dir, sub))
		if err != nil {
			return nil, err
		}
		for name, sum := range h {
			out[sub+"/"+name] = sum
		}
	}
	return out, nil
}

// sameRows compares two query results row by row.
func sameRows(a, b []query.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ingestRepoOptions is the shared snode-only build configuration; the
// ingest-mode build additionally points the partition refiner at a
// spill directory and a metrics registry.
func ingestRepoOptions(cfg Config, dir string) repo.Options {
	opt := repo.DefaultOptions(dir)
	opt.Schemes = []string{repo.SchemeSNode}
	opt.CacheBudget = cfg.QueryBudget
	opt.Model = cfg.Model
	return opt
}

// coldOut measures the average cold per-page out-neighbour lookup
// (CPU + modeled disk) over sampled pages, the repository's bread and
// butter operation.
func coldOut(r *repo.Repository, budget int64) (time.Duration, error) {
	fwd := r.Fwd[repo.SchemeSNode]
	if cr, ok := fwd.(store.CacheResetter); ok {
		cr.ResetCache(budget)
	}
	fwd.ResetStats()
	n := fwd.NumPages()
	const samples = 64
	stride := n / samples
	if stride < 1 {
		stride = 1
	}
	var buf []webgraph.PageID
	var err error
	count := 0
	start := time.Now()
	for p := 0; p < n; p += stride {
		buf, err = fwd.Out(webgraph.PageID(p), buf[:0])
		if err != nil {
			return 0, err
		}
		count++
	}
	cpu := time.Since(start)
	io := fwd.Stats().ModeledTime(r.Model)
	return (cpu + io) / time.Duration(count), nil
}

// Ingestion runs the external-memory ingestion scaling curve.
func Ingestion(cfg Config) (*IngestResult, error) {
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	ctx := context.Background()
	qcfg := cfg
	qcfg.Trials = 1

	res := &IngestResult{Summary: IngestSummary{
		HeapBudgetMB:   cfg.IngestHeapMB,
		AllGolden:      true,
		AllQueriesSame: true,
	}}
	for _, n := range cfg.IngestSizes {
		crawl, err := cfg.Crawl(n)
		if err != nil {
			return nil, err
		}
		row := IngestRow{Pages: n, QueryNav: map[string]int64{}}

		// Export the crawl the way public datasets ship.
		dsDir := filepath.Join(ws, fmt.Sprintf("dataset-%d", n))
		exp, err := ingest.Export(crawl.Corpus, dsDir, ingest.ExportOptions{})
		if err != nil {
			return nil, fmt.Errorf("bench: ingest %d: export: %w", n, err)
		}
		row.Edges = exp.Edges
		if row.DatasetBytes, err = dirBytes(dsDir); err != nil {
			return nil, err
		}

		// Direct in-memory build — the oracle.
		directDir := filepath.Join(ws, fmt.Sprintf("direct-%d", n))
		sampler := startHeapSampler()
		start := time.Now()
		directRepo, err := repo.Build(crawl.Corpus, ingestRepoOptions(cfg, directDir))
		if err != nil {
			return nil, fmt.Errorf("bench: ingest %d: direct build: %w", n, err)
		}
		row.DirectBuild = time.Since(start)
		row.DirectPeakMB = sampler.peakMB()
		directHashes, err := snodeHashes(directDir)
		if err != nil {
			directRepo.Close()
			return nil, err
		}

		// Ingest under the bounded heap. The transient edge state is
		// the peak during ingestion minus what ingestion retains (the
		// finished corpus) and what was live before it started. The
		// measurement clamps GOGC: under the default 100, uncollected
		// parse garbage rides up to ~2x the live heap — which at 1M
		// pages is dominated by the retained page metadata — and would
		// drown the bounded edge buffer this column exists to watch.
		reg := metrics.NewRegistry()
		before := heapMB()
		oldGC := debug.SetGCPercent(10)
		sampler = startHeapSampler()
		start = time.Now()
		ingested, st, err := ingest.Ingest(ctx, exp.GraphPath, ingest.Options{
			Format:    ingest.FormatSNAP,
			MaxHeapMB: cfg.IngestHeapMB,
			SpillDir:  filepath.Join(ws, fmt.Sprintf("ingest-spill-%d", n)),
			Metrics:   reg,
		})
		if err != nil {
			directRepo.Close()
			return nil, fmt.Errorf("bench: ingest %d: %w", n, err)
		}
		row.IngestWall = time.Since(start)
		peak := sampler.peakMB()
		row.IngestPeakMB = peak - before
		retained := heapMB()
		debug.SetGCPercent(oldGC)
		if peak > retained {
			row.EdgeStateMB = peak - retained
		}
		row.Runs = st.Runs
		row.SpillBytes = st.SpillBytes
		row.DupEdges = st.DupEdges
		row.ChecksumOK = st.ChecksumVerified

		// Build from the ingested corpus with refinement spill rounds
		// on — the full external-memory pipeline.
		ingestDir := filepath.Join(ws, fmt.Sprintf("ingestrepo-%d", n))
		iopt := ingestRepoOptions(cfg, ingestDir)
		iopt.SNode.Metrics = reg
		iopt.SNode.Partition.Metrics = reg
		iopt.SNode.Partition.SpillDir = filepath.Join(ws, fmt.Sprintf("refine-spill-%d", n))
		sampler = startHeapSampler()
		start = time.Now()
		ingestRepo, err := repo.Build(ingested.Corpus, iopt)
		if err != nil {
			directRepo.Close()
			return nil, fmt.Errorf("bench: ingest %d: spill build: %w", n, err)
		}
		row.IngestBuild = time.Since(start)
		row.IngestBuildMB = sampler.peakMB()
		row.SpillRounds = reg.Counter("build_spill_rounds").Value()
		row.RefineSpillB = reg.Counter("build_spill_bytes").Value()

		// Equivalence: byte-identical artifacts, identical query rows.
		ingestHashes, err := snodeHashes(ingestDir)
		if err == nil {
			row.Golden = sameHashes(directHashes, ingestHashes)
		}
		if err != nil {
			directRepo.Close()
			ingestRepo.Close()
			return nil, err
		}
		if fwd, ok := ingestRepo.Fwd[repo.SchemeSNode].(store.Sized); ok {
			row.BitsPerEdge = store.BitsPerEdge(fwd, row.Edges)
		}
		row.QueriesIdentical = true
		for _, q := range query.All() {
			dres, err := runQueryCold(qcfg, directRepo, repo.SchemeSNode, q, cfg.QueryBudget)
			if err != nil {
				directRepo.Close()
				ingestRepo.Close()
				return nil, fmt.Errorf("bench: ingest %d: direct Q%d: %w", n, q, err)
			}
			ires, err := runQueryCold(qcfg, ingestRepo, repo.SchemeSNode, q, cfg.QueryBudget)
			if err != nil {
				directRepo.Close()
				ingestRepo.Close()
				return nil, fmt.Errorf("bench: ingest %d: ingest Q%d: %w", n, q, err)
			}
			if !sameRows(dres.Rows, ires.Rows) {
				row.QueriesIdentical = false
			}
			row.QueryNav[fmt.Sprintf("Q%d", q)] = int64(ires.Nav.Total())
		}
		if row.ColdOut, err = coldOut(ingestRepo, cfg.QueryBudget); err != nil {
			directRepo.Close()
			ingestRepo.Close()
			return nil, err
		}

		directRepo.Close()
		ingestRepo.Close()
		// Hashed and measured; keep the sweep's disk usage at one size.
		for _, d := range []string{dsDir, directDir, ingestDir} {
			os.RemoveAll(d)
		}

		res.Summary.AllGolden = res.Summary.AllGolden && row.Golden
		res.Summary.AllQueriesSame = res.Summary.AllQueriesSame && row.QueriesIdentical
		res.Rows = append(res.Rows, row)
	}

	if len(res.Rows) > 0 {
		last := res.Rows[len(res.Rows)-1]
		limit := float64(2*cfg.IngestHeapMB + 64)
		res.Summary.BudgetRespected = last.Runs > 0 && last.EdgeStateMB <= limit
	}
	return res, nil
}

// RenderIngestion prints the scaling curve and the equivalence verdict.
func RenderIngestion(cfg Config, res *IngestResult) {
	w := cfg.out()
	fmt.Fprintf(w, "Ingestion scaling: edge-list ingest + build under a %d MB heap budget vs direct in-memory build\n",
		cfg.IngestHeapMB)
	fmt.Fprintf(w, "%9s %10s %9s %9s %9s %10s %5s %8s %7s %7s %7s %7s %8s\n",
		"pages", "edges", "ingest", "in-build", "direct", "edge-state", "runs", "spill", "rounds", "bits/e", "golden", "queries", "cold/out")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%9d %10d %9v %9v %9v %8.1fMB %5d %6.1fMB %7d %7.2f %7v %7v %8v\n",
			r.Pages, r.Edges,
			r.IngestWall.Round(time.Millisecond), r.IngestBuild.Round(time.Millisecond),
			r.DirectBuild.Round(time.Millisecond),
			r.EdgeStateMB, r.Runs, float64(r.SpillBytes)/(1<<20), r.SpillRounds,
			r.BitsPerEdge, r.Golden, r.QueriesIdentical,
			r.ColdOut.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "budget respected at largest size: %v; artifacts golden: %v; queries identical: %v\n",
		res.Summary.BudgetRespected, res.Summary.AllGolden, res.Summary.AllQueriesSame)
	fmt.Fprintln(w, "(edge-state is transient ingest memory above the retained corpus; golden = S-Node artifacts byte-identical to the direct build)")
	fmt.Fprintln(w)
}

// IngestionJSON writes the curve (plus scale parameters) as the
// committed benchmark artifact.
func IngestionJSON(path string, cfg Config, res *IngestResult) error {
	doc := struct {
		Experiment   string        `json:"experiment"`
		Provenance   Provenance    `json:"provenance"`
		Sizes        []int         `json:"sizes"`
		HeapBudgetMB int           `json:"heap_budget_mb"`
		Rows         []IngestRow   `json:"rows"`
		Summary      IngestSummary `json:"summary"`
	}{
		Experiment: "ingest", Provenance: NewProvenance(),
		Sizes: cfg.IngestSizes, HeapBudgetMB: cfg.IngestHeapMB,
		Rows: res.Rows, Summary: res.Summary,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
