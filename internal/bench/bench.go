// Package bench regenerates every table and figure of the paper's
// evaluation section (§4) over the synthetic corpus:
//
//	Figure 9(a)/9(b) — supernode/superedge growth vs repository size
//	Figure 10        — Huffman-encoded supernode-graph size
//	Table 1          — bits/edge for Huffman, Link3, S-Node (WG and WGT)
//	Table 2          — in-memory sequential/random access times
//	Figure 11        — per-query navigation time across four schemes
//	Figure 12        — navigation time vs buffer size (queries 1, 5, 6)
//
// plus ablations of the design choices (§3): reference-encoding window,
// positive/negative superedge choice, partition variants, and the exact
// (Edmonds) reference-selection strategy.
//
// Absolute numbers differ from the paper (synthetic corpus, scaled
// sizes, modeled 2002 disk); the experiments preserve the comparisons'
// shape: who wins, by roughly what factor, and where behaviour
// saturates. EXPERIMENTS.md records paper-vs-measured for each.
package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"snode/internal/iosim"
	"snode/internal/metrics"
	"snode/internal/synth"
	"snode/internal/trace"
)

// Config controls the experiment scale.
type Config struct {
	// Sizes is the repository-size series (the paper's 25/50/75/100/115
	// million pages, scaled).
	Sizes []int
	// Table1Sizes are the sizes averaged in Table 1 (paper: 25/50/100M).
	Table1Sizes []int
	// QuerySize is the data-set size for Figures 11/12 (paper: 100M).
	QuerySize int
	// QueryBudget is the representation memory bound for Figure 11
	// (paper: 325 MB against a few-GB graph; scaled to ~8% of the flat
	// data size).
	QueryBudget int64
	// Trials averages CPU time over repeated query runs (paper: 6).
	Trials int
	// Pace scales the concurrent-serving experiment's real-time disk
	// stalls (iosim pacing): each read sleeps its modeled cost times
	// Pace. <= 0 means full modeled time (1.0).
	Pace float64
	// LoadDuration is the measurement window per offered-load point in
	// the open-loop load experiment (<= 0 selects 2.5s). The smoke gate
	// shrinks it; the committed artifact uses the default.
	LoadDuration time.Duration
	// IngestSizes is the page-count series for the ingestion scaling
	// curve (snbench -experiment ingest): each size is exported as an
	// edge list, re-ingested under the bounded heap, built, and
	// compared against the direct in-memory build of the same crawl.
	IngestSizes []int
	// IngestHeapMB is the ingestion heap budget (ingest.Options
	// .MaxHeapMB) the bounded-heap mode runs under; the partition
	// refiner's spill rounds are enabled alongside it.
	IngestHeapMB int
	// Seed feeds the crawl generator.
	Seed uint64
	// Model is the simulated disk.
	Model iosim.Model
	// Workspace holds build artifacts; empty means a temp directory.
	Workspace string
	// Out receives rendered tables (default os.Stdout).
	Out io.Writer
	// Metrics, when non-nil, receives the serving-path instrumentation
	// from the experiments that exercise it (currently Concurrency):
	// per-query latency histograms, cache and iosim counters per
	// direction, worker occupancy. cmd/snbench -metrics-out dumps the
	// registry to JSON after the run.
	Metrics *metrics.Registry
	// Tracer, when non-nil, is wired into the experiments' query engines
	// so sampled executions build span trees and feed the slow-query
	// log. cmd/snbench -trace renders the retained traces after the run.
	Tracer *trace.Tracer
}

// Default returns the full-scale configuration (what cmd/snbench runs).
func Default() Config {
	return Config{
		Sizes:        []int{10000, 25000, 50000, 75000, 100000},
		Table1Sizes:  []int{25000, 50000, 100000},
		QuerySize:    100000,
		QueryBudget:  1 << 20,
		Trials:       3,
		IngestSizes:  []int{100000, 300000, 1000000},
		IngestHeapMB: 32,
		Seed:         20030226,
		Model:        iosim.Model2002(),
		Out:          os.Stdout,
	}
}

// Quick returns a reduced configuration for the in-tree testing.B
// benchmarks and smoke runs.
func Quick() Config {
	c := Default()
	c.Sizes = []int{4000, 8000, 16000}
	c.Table1Sizes = []int{8000, 16000}
	c.QuerySize = 16000
	c.QueryBudget = 128 << 10
	c.Trials = 1
	// Small enough to smoke-test in seconds; the 1 MB budget still
	// forces the largest size through the sorted-run spill path (its
	// edge count exceeds the budget's ~44k-edge buffer).
	c.IngestSizes = []int{3000, 12000}
	c.IngestHeapMB = 1
	return c
}

func (c *Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

func (c *Config) workspace() (string, func(), error) {
	if c.Workspace != "" {
		if err := os.MkdirAll(c.Workspace, 0o755); err != nil {
			return "", nil, err
		}
		return c.Workspace, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "snbench-*")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

// crawlCache memoizes generated crawls by size so experiments sharing a
// scale do not regenerate (generation is deterministic in the seed).
type crawlCache struct {
	mu     sync.Mutex
	seed   uint64
	crawls map[int]*synth.Crawl
}

var sharedCrawls = &crawlCache{crawls: map[int]*synth.Crawl{}}

func (cc *crawlCache) get(seed uint64, n int) (*synth.Crawl, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.seed != seed {
		cc.crawls = map[int]*synth.Crawl{}
		cc.seed = seed
	}
	if c, ok := cc.crawls[n]; ok {
		return c, nil
	}
	cfg := synth.DefaultConfig(n)
	cfg.Seed = seed
	c, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	cc.crawls[n] = c
	return c, nil
}

// Crawl returns the (cached) crawl of the given size under cfg.Seed.
func (c *Config) Crawl(n int) (*synth.Crawl, error) {
	return sharedCrawls.get(c.Seed, n)
}

// megabytes renders bytes as MB with two decimals.
func megabytes(b int64) string {
	return fmt.Sprintf("%.2f", float64(b)/(1<<20))
}
