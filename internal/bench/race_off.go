//go:build !race

package bench

// raceEnabled reports whether the race detector is active; timing-
// sensitive test assertions relax under its instrumentation overhead.
const raceEnabled = false
