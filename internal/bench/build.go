package bench

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"snode/internal/iosim"
	"snode/internal/partition"
	"snode/internal/snode"
)

// The build-scaling experiment: the paper reports that constructing the
// S-Node representation is dominated by iterative refinement and
// per-supernode encoding, both of which stream signatures and links out
// of the crawl repository. Both stages are now parallel (round-based
// refinement, streaming in-order assembly) and deterministic — every
// worker count produces byte-identical artifacts — so this experiment
// measures build wall time against worker count with iosim pacing on,
// exactly as the concurrency experiment does for serving: each modeled
// repository scan is slept in real time, and parallel workers buy the
// time back by overlapping their stalls (plus overlapping CPU work on
// multicore hosts). The Identical column re-hashes every artifact
// against the 1-worker build.

// BuildRow is one worker count of the build-scaling experiment.
type BuildRow struct {
	Workers    int           `json:"workers"`
	Refine     time.Duration `json:"refine_ns"`
	Encode     time.Duration `json:"encode_ns"`
	Total      time.Duration `json:"total_ns"`
	Speedup    float64       `json:"speedup"`
	ModeledIO  time.Duration `json:"modeled_io_ns"`
	PeakHeapMB float64       `json:"peak_heap_mb"`
	Identical  bool          `json:"identical"`
	Supernodes int           `json:"supernodes"`
}

// buildLevels is the worker-count series the experiment reports.
func buildLevels() []int { return []int{1, 2, 4, 8} }

// heapSampler tracks peak heap+stack usage while a build runs; the
// in-use figure is the closest portable stand-in for peak RSS growth.
type heapSampler struct {
	peak atomic.Int64
	stop chan struct{}
	done chan struct{}
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if v := int64(ms.HeapInuse + ms.StackInuse); v > s.peak.Load() {
					s.peak.Store(v)
				}
			}
		}
	}()
	return s
}

func (s *heapSampler) peakMB() float64 {
	close(s.stop)
	<-s.done
	return float64(s.peak.Load()) / (1 << 20)
}

// buildDirHashes fingerprints every artifact in a build directory.
func buildDirHashes(dir string) (map[string][32]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[string][32]byte{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out[e.Name()] = sha256.Sum256(data)
	}
	return out, nil
}

func sameHashes(a, b map[string][32]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// BuildScaling builds the S-Node representation of the cfg.QuerySize
// corpus at each worker count, pacing the modeled repository scans in
// real time (cfg.Pace, 1.0 when unset), and reports wall time per
// stage, speedup over one worker, and artifact identity.
func BuildScaling(cfg Config) ([]BuildRow, error) {
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	crawl, err := cfg.Crawl(cfg.QuerySize)
	if err != nil {
		return nil, err
	}
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	ctx := context.Background()

	var rows []BuildRow
	var refHashes map[string][32]byte
	for _, w := range buildLevels() {
		dir := filepath.Join(ws, fmt.Sprintf("buildrepo-%d", w))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		acct := iosim.NewAccountant(cfg.Model)
		acct.SetPace(pace)
		bcfg := snode.DefaultConfig()
		bcfg.BuildWorkers = w
		bcfg.BuildIO = acct
		bcfg.Metrics = cfg.Metrics
		pcfg := bcfg.Partition
		pcfg.Workers = w
		pcfg.IO = acct
		pcfg.Metrics = cfg.Metrics

		sampler := startHeapSampler()
		start := time.Now()
		p, err := partition.RefineCtx(ctx, crawl.Corpus, pcfg)
		if err != nil {
			return nil, fmt.Errorf("bench: build workers=%d: refine: %w", w, err)
		}
		refineDone := time.Now()
		st, err := snode.BuildFromPartitionCtx(ctx, crawl.Corpus, p, bcfg, dir, start)
		if err != nil {
			return nil, fmt.Errorf("bench: build workers=%d: %w", w, err)
		}
		total := time.Since(start)
		peakMB := sampler.peakMB()

		hashes, err := buildDirHashes(dir)
		if err != nil {
			return nil, err
		}
		if refHashes == nil {
			refHashes = hashes
		}
		row := BuildRow{
			Workers:    w,
			Refine:     refineDone.Sub(start),
			Encode:     total - refineDone.Sub(start),
			Total:      total,
			ModeledIO:  acct.ModeledTime(),
			PeakHeapMB: peakMB,
			Identical:  sameHashes(refHashes, hashes),
			Supernodes: st.Supernodes,
		}
		if len(rows) > 0 && row.Total > 0 {
			row.Speedup = rows[0].Total.Seconds() / row.Total.Seconds()
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
		// The artifacts are hashed; drop them so the sweep's disk usage
		// stays at one build.
		os.RemoveAll(dir)
	}
	return rows, nil
}

// RenderBuildScaling prints the build-scaling table.
func RenderBuildScaling(cfg Config, rows []BuildRow) {
	w := cfg.out()
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	fmt.Fprintf(w, "Build scaling: S-Node build wall time vs workers (%d pages, paced repository scans x%.2f)\n",
		cfg.QuerySize, pace)
	fmt.Fprintf(w, "%8s %10s %10s %10s %9s %11s %10s %10s\n",
		"workers", "refine", "encode", "total", "speedup", "modeled-io", "peak-heap", "identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %10v %10v %10v %8.2fx %11v %8.1fMB %10v\n",
			r.Workers, r.Refine.Round(time.Millisecond), r.Encode.Round(time.Millisecond),
			r.Total.Round(time.Millisecond), r.Speedup,
			r.ModeledIO.Round(time.Millisecond), r.PeakHeapMB, r.Identical)
	}
	fmt.Fprintln(w, "(workers overlap the modeled scan stalls; artifacts are byte-identical at every width)")
	fmt.Fprintln(w)
}

// BuildScalingJSON writes the rows (plus the run's scale parameters) as
// the committed benchmark artifact.
func BuildScalingJSON(path string, cfg Config, rows []BuildRow) error {
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	doc := struct {
		Experiment string     `json:"experiment"`
		Provenance Provenance `json:"provenance"`
		Pages      int        `json:"pages"`
		Pace       float64    `json:"pace"`
		Rows       []BuildRow `json:"rows"`
	}{Experiment: "build_scaling", Provenance: NewProvenance(), Pages: cfg.QuerySize, Pace: pace, Rows: rows}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// BuildScalingCSV writes the rows in the bench CSV convention.
func BuildScalingCSV(dir string, rows []BuildRow) error {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Workers < rows[j].Workers })
	f, err := os.Create(filepath.Join(dir, "build_scaling.csv"))
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "workers,refine_ms,encode_ms,total_ms,speedup,modeled_io_ms,peak_heap_mb,identical,supernodes")
	for _, r := range rows {
		fmt.Fprintf(f, "%d,%.1f,%.1f,%.1f,%.3f,%.1f,%.1f,%v,%d\n",
			r.Workers, float64(r.Refine.Microseconds())/1e3, float64(r.Encode.Microseconds())/1e3,
			float64(r.Total.Microseconds())/1e3, r.Speedup,
			float64(r.ModeledIO.Microseconds())/1e3, r.PeakHeapMB, r.Identical, r.Supernodes)
	}
	return f.Close()
}
