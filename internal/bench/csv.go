package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"snode/internal/query"
)

// WriteCSV serializes experiment results as CSV files under dir, one
// file per table/figure, for external plotting.

func writeCSVFile(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
func itoa(v int64) string   { return strconv.FormatInt(v, 10) }

// ScalabilityCSV writes the Figure 9/10 series.
func ScalabilityCSV(dir string, rows []Fig9Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			itoa(int64(r.Pages)), itoa(int64(r.Supernodes)), itoa(r.Superedges),
			itoa(r.SupernodeGraphBytes), ftoa(r.BitsPerEdge),
		}
	}
	return writeCSVFile(dir, "fig9_fig10.csv",
		[]string{"pages", "supernodes", "superedges", "supergraph_bytes", "bits_per_edge"}, out)
}

// CompressionCSV writes Table 1.
func CompressionCSV(dir string, rows []Table1Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Scheme, ftoa(r.BPE), ftoa(r.BPET), itoa(r.Max8GB), itoa(r.Max8GBT)}
	}
	return writeCSVFile(dir, "table1.csv",
		[]string{"scheme", "bits_per_edge_wg", "bits_per_edge_wgt", "max_pages_8gb", "max_pages_8gb_t"}, out)
}

// AccessCSV writes Table 2.
func AccessCSV(dir string, rows []Table2Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Scheme, ftoa(r.SeqNsEdge), ftoa(r.RandNsEdge), ftoa(r.RandNsDecoded)}
	}
	return writeCSVFile(dir, "table2.csv",
		[]string{"scheme", "seq_ns_per_edge", "rand_ns_per_edge", "rand_ns_per_decoded_edge"}, out)
}

// QueriesCSV writes Figure 11.
func QueriesCSV(dir string, res *Fig11Result) error {
	var out [][]string
	for _, c := range res.Cells {
		out = append(out, []string{
			fmt.Sprintf("Q%d", c.Query), c.Scheme,
			itoa(c.Nav.Nanoseconds()), itoa(c.CPU.Nanoseconds()), itoa(c.IO.Nanoseconds()),
			itoa(c.Loads),
		})
	}
	if err := writeCSVFile(dir, "fig11.csv",
		[]string{"query", "scheme", "nav_ns", "cpu_ns", "io_ns", "graphs_loaded"}, out); err != nil {
		return err
	}
	var red [][]string
	for _, q := range query.All() {
		red = append(red, []string{fmt.Sprintf("Q%d", q), ftoa(res.Reduction[q])})
	}
	return writeCSVFile(dir, "fig11_reduction.csv", []string{"query", "reduction_pct"}, red)
}

// BufferSweepCSV writes Figure 12.
func BufferSweepCSV(dir string, rows []Fig12Row) error {
	var out [][]string
	for _, r := range rows {
		rec := []string{itoa(r.BudgetKB)}
		for _, q := range fig12Queries() {
			rec = append(rec, itoa(r.Nav[q].Nanoseconds()))
		}
		out = append(out, rec)
	}
	header := []string{"buffer_kb"}
	for _, q := range fig12Queries() {
		header = append(header, fmt.Sprintf("q%d_nav_ns", q))
	}
	return writeCSVFile(dir, "fig12.csv", header, out)
}

// ConcurrencyCSV writes the serving-throughput table.
func ConcurrencyCSV(dir string, rows []ThroughputRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			itoa(int64(r.Goroutines)), itoa(int64(r.Queries)), itoa(r.Elapsed.Nanoseconds()),
			ftoa(r.QPS), ftoa(r.Speedup), itoa(r.Coalesced),
		}
	}
	return writeCSVFile(dir, "concurrency.csv",
		[]string{"goroutines", "queries", "elapsed_ns", "qps", "speedup", "coalesced"}, out)
}

// AblationsCSV writes the ablation table.
func AblationsCSV(dir string, rows []AblationRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Name, ftoa(r.BitsPerEdge), itoa(int64(r.Supernodes)), itoa(r.Superedges)}
	}
	return writeCSVFile(dir, "ablation.csv",
		[]string{"variant", "bits_per_edge", "supernodes", "superedges"}, out)
}
