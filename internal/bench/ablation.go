package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"snode/internal/bitio"
	"snode/internal/partition"
	"snode/internal/refenc"
	"snode/internal/snode"
	"snode/internal/webgraph"
)

// AblationRow is one configuration's outcome in an ablation study.
type AblationRow struct {
	Name        string
	BitsPerEdge float64
	Supernodes  int
	Superedges  int64
	Note        string
}

// Ablations runs the §3 design-choice studies on the second-smallest
// configured size:
//
//   - reference-encoding window (0 = no referencing, the paper's basic
//     gap coding, up to 64)
//   - positive/negative superedge choice disabled
//   - partition variants: P0 only (no refinement), URL split only, full
//     refinement
func Ablations(cfg Config) ([]AblationRow, error) {
	n := cfg.Sizes[0]
	if len(cfg.Sizes) > 1 {
		n = cfg.Sizes[1]
	}
	crawl, err := cfg.Crawl(n)
	if err != nil {
		return nil, err
	}
	c := crawl.Corpus
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var rows []AblationRow
	edges := float64(c.Graph.NumEdges())
	build := func(name string, sncfg snode.Config, p *partition.Partition, note string) error {
		dir := filepath.Join(ws, "abl-"+name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		var st *snode.BuildStats
		var err error
		if p != nil {
			st, err = snode.BuildFromPartition(c, p, sncfg, dir, time.Now())
		} else {
			st, err = snode.Build(c, sncfg, dir)
		}
		if err != nil {
			return err
		}
		rows = append(rows, AblationRow{
			Name:        name,
			BitsPerEdge: float64(st.SizeBytes()*8) / edges,
			Supernodes:  st.Supernodes,
			Superedges:  st.Superedges,
			Note:        note,
		})
		return nil
	}

	// Reference-encoding window sweep.
	for _, win := range []int{0, 1, 8, 64} {
		sncfg := snode.DefaultConfig()
		sncfg.Refenc = refenc.Options{Window: win}
		if err := build(fmt.Sprintf("window-%d", win), sncfg, nil,
			"reference window (0 = plain gap coding)"); err != nil {
			return nil, err
		}
	}

	// Gap-coder sweep: gamma (the paper) vs Elias delta and Boldi-Vigna
	// zeta codes (the refinement WebGraph later standardized on).
	for _, gc := range []struct {
		name string
		code refenc.GapCode
	}{
		{"gaps-delta", refenc.GapDelta},
		{"gaps-zeta2", refenc.GapZeta2},
		{"gaps-zeta3", refenc.GapZeta3},
	} {
		sncfg := snode.DefaultConfig()
		sncfg.Refenc.GapCode = gc.code
		if err := build(gc.name, sncfg, nil,
			"gap coder (window-8 baseline uses gamma)"); err != nil {
			return nil, err
		}
	}

	// Negative superedge graphs disabled.
	sncfg := snode.DefaultConfig()
	sncfg.DisableNegative = true
	if err := build("no-negative", sncfg, nil,
		"positive superedge graphs only (§2 choice off)"); err != nil {
		return nil, err
	}

	// Partition variants.
	p0 := partition.InitialByDomain(c)
	if err := build("partition-P0", snode.DefaultConfig(), p0,
		"domains only, no refinement"); err != nil {
		return nil, err
	}
	urlOnly := partition.DefaultConfig()
	urlOnly.MinSplitSize = 1 << 30 // clustered split never fires
	pu, err := partition.Refine(c, urlOnly)
	if err != nil {
		return nil, err
	}
	if err := build("partition-url-only", snode.DefaultConfig(), pu,
		"URL split only"); err != nil {
		return nil, err
	}
	if err := build("partition-full", snode.DefaultConfig(), nil,
		"URL + clustered split (default)"); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderAblations prints the ablation table.
func RenderAblations(cfg Config, rows []AblationRow) {
	w := cfg.out()
	fmt.Fprintln(w, "Ablations (S-Node design choices, §3)")
	fmt.Fprintf(w, "%-22s %12s %12s %12s  %s\n",
		"variant", "bits/edge", "supernodes", "superedges", "note")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %12.2f %12d %12d  %s\n",
			r.Name, r.BitsPerEdge, r.Supernodes, r.Superedges, r.Note)
	}
	fmt.Fprintln(w)
}

// ExactRefRow compares the window and exact (Edmonds minimum
// arborescence) reference-selection strategies on real intranode
// graphs sampled from the corpus.
type ExactRefRow struct {
	Graphs     int
	WindowBits int
	ExactBits  int
	SavingsPct float64
}

// ExactReference runs the Adler-Mitzenmacher strategy comparison: the
// exact affinity-graph arborescence versus the production window-8
// encoder, over intranode graphs small enough for the O(m³) algorithm.
func ExactReference(cfg Config) (*ExactRefRow, error) {
	crawl, err := cfg.Crawl(cfg.Sizes[0])
	if err != nil {
		return nil, err
	}
	c := crawl.Corpus
	p, err := partition.Refine(c, partition.DefaultConfig())
	if err != nil {
		return nil, err
	}
	const maxLists = 96 // keep Edmonds affordable
	row := &ExactRefRow{}
	for ei := range p.Elements {
		pages := p.Elements[ei].Pages
		if len(pages) < 8 || len(pages) > maxLists {
			continue
		}
		// Local intranode lists, as the builder would produce them.
		localOf := map[webgraph.PageID]int32{}
		for i, pg := range pages {
			localOf[pg] = int32(i)
		}
		lists := make([][]int32, len(pages))
		for i, pg := range pages {
			for _, t := range c.Graph.Out(pg) {
				if l, ok := localOf[t]; ok {
					lists[i] = append(lists[i], l)
				}
			}
		}
		bound := uint64(len(pages))
		w := bitio.NewWriter(0)
		stw, err := refenc.EncodeLists(w, lists, refenc.Options{
			Window: refenc.DefaultWindow, TargetBound: bound,
		})
		if err != nil {
			return nil, err
		}
		w.Reset()
		ste, err := refenc.EncodeLists(w, lists, refenc.Options{
			Exact: true, TargetBound: bound,
		})
		if err != nil {
			return nil, err
		}
		row.Graphs++
		row.WindowBits += stw.Bits
		row.ExactBits += ste.Bits
	}
	if row.WindowBits > 0 {
		row.SavingsPct = 100 * (1 - float64(row.ExactBits)/float64(row.WindowBits))
	}
	return row, nil
}

// RenderExactReference prints the strategy comparison.
func RenderExactReference(cfg Config, r *ExactRefRow) {
	w := cfg.out()
	fmt.Fprintln(w, "Reference-selection strategy: exact (Edmonds) vs window-8")
	fmt.Fprintf(w, "intranode graphs compared: %d\n", r.Graphs)
	fmt.Fprintf(w, "window-8 bits: %d   exact bits: %d   exact saves: %.1f%%\n",
		r.WindowBits, r.ExactBits, r.SavingsPct)
	fmt.Fprintln(w, "(Adler & Mitzenmacher's optimum buys little over the greedy window,")
	fmt.Fprintln(w, " at cubic cost — the paper's motivation for applying it only to small graphs)")
	fmt.Fprintln(w)
}
