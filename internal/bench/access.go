package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"snode/internal/huffgraph"
	"snode/internal/link3"
	"snode/internal/randutil"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/webgraph"
)

// Table2Row is one scheme's line of Table 2: nanoseconds per edge for
// sequential and random adjacency-list retrieval with the whole
// representation memory-resident (the paper uses the smallest data set
// and 5000 trials; disk time is excluded by construction — everything
// is cached before measurement).
type Table2Row struct {
	Scheme     string
	SeqNsEdge  float64 // per retrieved edge
	RandNsEdge float64 // per retrieved edge
	// RandNsDecoded charges random-access time per DECODED edge. The
	// block/graph-granular decoders here decode more than the requested
	// list on a cold access, which inflates the per-retrieved-edge
	// number far beyond the paper's (their decoder extracts single
	// lists); decode throughput is the comparable metric.
	RandNsDecoded float64
}

// table2Trials matches the paper's 5000 retrievals per mode.
const table2Trials = 5000

// Access runs the Table 2 experiment on the smallest configured size.
func Access(cfg Config) ([]Table2Row, error) {
	n := cfg.Sizes[0]
	crawl, err := cfg.Crawl(n)
	if err != nil {
		return nil, err
	}
	c := crawl.Corpus
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// Build the three compressed schemes with budgets large enough to
	// hold everything decoded, then pre-warm so measurements exercise
	// in-memory decode paths only.
	hf, err := huffgraph.Build(c)
	if err != nil {
		return nil, err
	}
	l3dir := filepath.Join(ws, "t2-l3")
	if err := os.MkdirAll(l3dir, 0o755); err != nil {
		return nil, err
	}
	if err := link3.Build(c, l3dir); err != nil {
		return nil, err
	}
	l3, err := link3.Open(c, l3dir, 1<<20, cfg.Model)
	if err != nil {
		return nil, err
	}
	defer l3.Close()
	snDir := filepath.Join(ws, "t2-sn")
	if err := os.MkdirAll(snDir, 0o755); err != nil {
		return nil, err
	}
	if _, err := snode.Build(c, snode.DefaultConfig(), snDir); err != nil {
		return nil, err
	}
	sn, err := snode.Open(snDir, 1<<20, cfg.Model)
	if err != nil {
		return nil, err
	}
	defer sn.Close()

	// Table 2 measures "the time to decode and extract adjacency lists"
	// from the in-memory compressed form (the data files are OS-cached;
	// wall time is decode cost). Sequential scans may reuse the block /
	// supernode currently being traversed — a modest working-set budget
	// — while random access gets a minimal budget so nearly every
	// retrieval decodes afresh, as the paper's per-access numbers do.
	const seqBudget = 256 << 10
	const randBudget = 4 << 10
	var rows []Table2Row
	for _, s := range []store.LinkStore{hf, l3, sn} {
		if cr, ok := s.(store.CacheResetter); ok {
			cr.ResetCache(seqBudget)
		}
		seq, err := measureSequential(s, c.Graph.NumPages())
		if err != nil {
			return nil, err
		}
		if cr, ok := s.(store.CacheResetter); ok {
			cr.ResetCache(randBudget)
		}
		s.ResetStats()
		rnd, dur, retrieved, err := measureRandom(s, c.Graph.NumPages(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		decoded := retrieved
		if dc, ok := s.(interface{ DecodedEdges() int64 }); ok {
			decoded = dc.DecodedEdges()
		}
		rows = append(rows, Table2Row{
			Scheme:        s.Name(),
			SeqNsEdge:     seq,
			RandNsEdge:    rnd,
			RandNsDecoded: nsPerEdge(dur, decoded),
		})
	}
	return rows, nil
}

func measureSequential(s store.LinkStore, n int) (float64, error) {
	var buf []webgraph.PageID
	var edges int64
	start := time.Now()
	for trial, p := 0, 0; trial < table2Trials; trial++ {
		var err error
		buf, err = s.Out(webgraph.PageID(p), buf[:0])
		if err != nil {
			return 0, err
		}
		edges += int64(len(buf))
		p++
		if p == n {
			p = 0
		}
	}
	return nsPerEdge(time.Since(start), edges), nil
}

func measureRandom(s store.LinkStore, n int, seed uint64) (float64, time.Duration, int64, error) {
	rng := randutil.NewRNG(seed ^ 0xACCE55)
	ids := make([]webgraph.PageID, table2Trials)
	for i := range ids {
		ids[i] = webgraph.PageID(rng.Intn(n))
	}
	var buf []webgraph.PageID
	var edges int64
	start := time.Now()
	for _, p := range ids {
		var err error
		buf, err = s.Out(p, buf[:0])
		if err != nil {
			return 0, 0, 0, err
		}
		edges += int64(len(buf))
	}
	dur := time.Since(start)
	return nsPerEdge(dur, edges), dur, edges, nil
}

func nsPerEdge(d time.Duration, edges int64) float64 {
	if edges == 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(edges)
}

// RenderAccess prints Table 2.
func RenderAccess(cfg Config, rows []Table2Row) {
	w := cfg.out()
	fmt.Fprintf(w, "Table 2: in-memory access times (%d-page data set, %d trials)\n",
		cfg.Sizes[0], table2Trials)
	fmt.Fprintf(w, "%-28s %20s %20s %22s\n",
		"representation", "seq (ns/edge)", "random (ns/edge)", "random (ns/decoded)")
	name := map[string]string{
		"huffman": "Plain Huffman",
		"link3":   "Connectivity Server (Link3)",
		"snode":   "S-Node",
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %20.0f %20.0f %22.0f\n",
			name[r.Scheme], r.SeqNsEdge, r.RandNsEdge, r.RandNsDecoded)
	}
	fmt.Fprintln(w, "(paper: Huffman 112/198, Link3 309/689, S-Node 298/702 ns/edge)")
	fmt.Fprintln(w)
}
