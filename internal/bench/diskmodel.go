package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"snode/internal/flatfile"
	"snode/internal/iosim"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

// DiskModelRow is one storage generation in the disk-model sweep.
type DiskModelRow struct {
	Name         string
	Model        iosim.Model
	SNode, Files time.Duration // modeled navigation time, Q1-style scan
	Speedup      float64       // files / snode
}

// DiskModelSweep re-runs a Query-1-style navigation (Stanford
// mobile-networking pages → .edu targets) under storage models from
// the paper's 2002 disk to modern flash — an analysis the paper could
// not run in 2003. It isolates WHERE the S-Node query win comes from:
// on seek-bound disks it is a seek-count win; on transfer-bound flash
// it persists (and can grow) as a bytes-transferred win, because the
// filtered two-level layout reads a small fraction of the data a flat
// store must.
func DiskModelSweep(cfg Config) ([]DiskModelRow, error) {
	n := cfg.Sizes[0]
	if len(cfg.Sizes) > 1 {
		n = cfg.Sizes[1]
	}
	crawl, err := cfg.Crawl(n)
	if err != nil {
		return nil, err
	}
	c := crawl.Corpus
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	snDir := filepath.Join(ws, "dm-sn")
	if err := os.MkdirAll(snDir, 0o755); err != nil {
		return nil, err
	}
	if _, err := snode.Build(c, snode.DefaultConfig(), snDir); err != nil {
		return nil, err
	}
	ffDir := filepath.Join(ws, "dm-ff")
	if err := os.MkdirAll(ffDir, 0o755); err != nil {
		return nil, err
	}
	if err := flatfile.Build(c, ffDir, crawl.Order); err != nil {
		return nil, err
	}

	// The Q1 navigation inputs, resolved once.
	var sources []webgraph.PageID
	eduSet := map[string]bool{}
	for pid, pm := range c.Pages {
		if pm.Domain == "stanford.edu" {
			has := false
			for _, t := range pm.Terms {
				if t == synth.PhraseMobileNetworking {
					has = true
					break
				}
			}
			if has {
				sources = append(sources, webgraph.PageID(pid))
			}
		}
		if pm.Domain != "stanford.edu" && len(pm.Domain) > 4 &&
			pm.Domain[len(pm.Domain)-4:] == ".edu" {
			eduSet[pm.Domain] = true
		}
	}
	filter := &store.Filter{Domains: eduSet}

	models := []struct {
		name string
		m    iosim.Model
	}{
		{"2002 disk (9ms seek, 25MB/s)", iosim.Model2002()},
		{"2010 disk (4ms seek, 120MB/s)", iosim.Model{Seek: 4 * time.Millisecond, BytesPerSecond: 120e6, SkipFree: 512 << 10}},
		{"SATA SSD (80us seek, 500MB/s)", iosim.Model{Seek: 80 * time.Microsecond, BytesPerSecond: 500e6, SkipFree: 1 << 20}},
		{"NVMe (10us seek, 3GB/s)", iosim.Model{Seek: 10 * time.Microsecond, BytesPerSecond: 3e9, SkipFree: 1 << 20}},
	}
	nav := func(s store.LinkStore, m iosim.Model) (time.Duration, error) {
		var buf []webgraph.PageID
		for _, p := range sources {
			var err error
			buf, err = s.OutFiltered(p, filter, buf[:0])
			if err != nil {
				return 0, err
			}
		}
		return s.Stats().IO.ModeledTime(m), nil
	}
	var rows []DiskModelRow
	for _, mc := range models {
		sn, err := snode.Open(snDir, cfg.QueryBudget, mc.m)
		if err != nil {
			return nil, err
		}
		ff, err := flatfile.Open(c, ffDir, crawl.Order, cfg.QueryBudget, mc.m)
		if err != nil {
			sn.Close()
			return nil, err
		}
		snT, err := nav(sn, mc.m)
		if err != nil {
			return nil, err
		}
		ffT, err := nav(ff, mc.m)
		if err != nil {
			return nil, err
		}
		sn.Close()
		ff.Close()
		row := DiskModelRow{Name: mc.name, Model: mc.m, SNode: snT, Files: ffT}
		if snT > 0 {
			row.Speedup = float64(ffT) / float64(snT)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderDiskModelSweep prints the sweep.
func RenderDiskModelSweep(cfg Config, rows []DiskModelRow) {
	w := cfg.out()
	fmt.Fprintln(w, "Disk-model sweep: Query-1 navigation, S-Node vs uncompressed files")
	fmt.Fprintf(w, "%-32s %14s %14s %10s\n", "storage", "snode", "files", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s %14v %14v %9.1fx\n",
			r.Name, r.SNode.Round(time.Microsecond), r.Files.Round(time.Microsecond), r.Speedup)
	}
	fmt.Fprintln(w, "(seek-bound storage: a seek-count win; transfer-bound storage: a bytes win)")
	fmt.Fprintln(w)
}
