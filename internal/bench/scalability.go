package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"snode/internal/partition"
	"snode/internal/snode"
)

// Fig9Row is one point of Figures 9(a), 9(b), and 10: the supernode
// graph's growth with repository size, measured over crawl prefixes of
// one synthetic crawl (the paper's subset methodology).
type Fig9Row struct {
	Pages               int
	Supernodes          int
	Superedges          int64
	SupernodeGraphBytes int64 // Figure 10: Huffman bits + 4-byte pointers
	BitsPerEdge         float64
}

// Scalability runs the Figure 9/10 experiment: refine a partition and
// build the S-Node representation for each prefix size.
func Scalability(cfg Config) ([]Fig9Row, error) {
	maxN := cfg.Sizes[len(cfg.Sizes)-1]
	crawl, err := cfg.Crawl(maxN)
	if err != nil {
		return nil, err
	}
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var rows []Fig9Row
	for _, n := range cfg.Sizes {
		c := crawl.Prefix(n).Corpus
		dir := filepath.Join(ws, fmt.Sprintf("fig9-%d", n))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		p, err := partition.Refine(c, partition.DefaultConfig())
		if err != nil {
			return nil, err
		}
		st, err := snode.BuildFromPartition(c, p, snode.DefaultConfig(), dir, time.Now())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{
			Pages:               n,
			Supernodes:          st.Supernodes,
			Superedges:          st.Superedges,
			SupernodeGraphBytes: st.SupernodeGraphBytes,
			BitsPerEdge:         float64(st.SizeBytes()*8) / float64(c.Graph.NumEdges()),
		})
		os.RemoveAll(dir)
	}
	return rows, nil
}

// RenderScalability prints the Figure 9/10 series.
func RenderScalability(cfg Config, rows []Fig9Row) {
	w := cfg.out()
	fmt.Fprintln(w, "Figure 9(a)/9(b): supernode graph growth vs repository size")
	fmt.Fprintln(w, "Figure 10: Huffman-encoded supernode graph size (incl. 4-byte pointers)")
	fmt.Fprintf(w, "%10s %12s %12s %16s %12s\n",
		"pages", "supernodes", "superedges", "supergraph(MB)", "bits/edge")
	var prev Fig9Row
	for i, r := range rows {
		growth := ""
		if i > 0 {
			growth = fmt.Sprintf("  [pages +%.0f%%, supernodes +%.0f%%, superedges +%.0f%%]",
				100*float64(r.Pages-prev.Pages)/float64(prev.Pages),
				100*float64(r.Supernodes-prev.Supernodes)/float64(prev.Supernodes),
				100*float64(r.Superedges-prev.Superedges)/float64(prev.Superedges))
		}
		fmt.Fprintf(w, "%10d %12d %12d %16s %12.2f%s\n",
			r.Pages, r.Supernodes, r.Superedges,
			megabytes(r.SupernodeGraphBytes), r.BitsPerEdge, growth)
		prev = r
	}
	first, last := rows[0], rows[len(rows)-1]
	fmt.Fprintf(w, "overall: %.1fx pages -> %.1fx supernodes, %.1fx superedges (paper: 20x -> <3x)\n\n",
		float64(last.Pages)/float64(first.Pages),
		float64(last.Supernodes)/float64(first.Supernodes),
		float64(last.Superedges)/float64(first.Superedges))
}
