package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/store"
)

// Fig11Cell is one bar of Figure 11: a (query, scheme) navigation time.
type Fig11Cell struct {
	Query  query.ID
	Scheme string
	Nav    time.Duration // CPU + modeled disk
	CPU    time.Duration
	IO     time.Duration
	Loads  int64
}

// Fig11Result holds the chart plus the paper's percentage-reduction
// table (S-Node vs the next best scheme per query).
type Fig11Result struct {
	Cells     []Fig11Cell
	Reduction map[query.ID]float64
}

// fig11Schemes is the paper's Figure 11 set, display order.
func fig11Schemes() []string {
	return []string{repo.SchemeFiles, repo.SchemeDB, repo.SchemeLink3, repo.SchemeSNode}
}

// buildQueryRepo constructs the shared repository for Figures 11/12.
func buildQueryRepo(cfg Config, ws string) (*repo.Repository, error) {
	crawl, err := cfg.Crawl(cfg.QuerySize)
	if err != nil {
		return nil, err
	}
	opt := repo.DefaultOptions(filepath.Join(ws, "queryrepo"))
	opt.Schemes = fig11Schemes()
	opt.CacheBudget = cfg.QueryBudget
	opt.Model = cfg.Model
	opt.Layout = crawl.Order
	return repo.Build(crawl.Corpus, opt)
}

// runQueryCold resets the scheme's caches to budget and executes the
// query, averaging CPU over cfg.Trials runs from cold each time (the
// modeled disk time is deterministic and identical across trials).
func runQueryCold(cfg Config, r *repo.Repository, scheme string, q query.ID, budget int64) (*query.Result, error) {
	e, err := query.New(r, scheme)
	if err != nil {
		return nil, err
	}
	if cfg.Tracer != nil {
		e.SetTracer(cfg.Tracer)
	}
	trials := cfg.Trials
	if trials < 1 {
		trials = 1
	}
	var last *query.Result
	var cpu time.Duration
	for t := 0; t < trials; t++ {
		for _, s := range []store.LinkStore{r.Fwd[scheme], r.Rev[scheme]} {
			if cr, ok := s.(store.CacheResetter); ok {
				cr.ResetCache(budget)
			}
		}
		res, err := e.Run(context.Background(), q)
		if err != nil {
			return nil, err
		}
		cpu += res.Nav.CPU
		last = res
	}
	last.Nav.CPU = cpu / time.Duration(trials)
	return last, nil
}

// Queries runs the Figure 11 experiment.
func Queries(cfg Config) (*Fig11Result, error) {
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	r, err := buildQueryRepo(cfg, ws)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	out := &Fig11Result{Reduction: map[query.ID]float64{}}
	best := map[query.ID]time.Duration{}   // best non-snode
	snTime := map[query.ID]time.Duration{} // snode
	for _, scheme := range fig11Schemes() {
		for _, q := range query.All() {
			res, err := runQueryCold(cfg, r, scheme, q, cfg.QueryBudget)
			if err != nil {
				return nil, fmt.Errorf("bench: %s query %d: %w", scheme, q, err)
			}
			nav := res.Nav.Total()
			out.Cells = append(out.Cells, Fig11Cell{
				Query:  q,
				Scheme: scheme,
				Nav:    nav,
				CPU:    res.Nav.CPU,
				IO:     res.Nav.IO,
				Loads:  res.Nav.GraphsLoaded,
			})
			if scheme == repo.SchemeSNode {
				snTime[q] = nav
			} else if cur, ok := best[q]; !ok || nav < cur {
				best[q] = nav
			}
		}
	}
	for _, q := range query.All() {
		if best[q] > 0 {
			out.Reduction[q] = 100 * (1 - float64(snTime[q])/float64(best[q]))
		}
	}
	return out, nil
}

// RenderQueries prints Figure 11 and its reduction table.
func RenderQueries(cfg Config, res *Fig11Result) {
	w := cfg.out()
	fmt.Fprintf(w, "Figure 11: navigation time per query (%d pages, %d KB buffer, cold caches)\n",
		cfg.QuerySize, cfg.QueryBudget>>10)
	fmt.Fprintf(w, "%-6s", "query")
	for _, s := range fig11Schemes() {
		fmt.Fprintf(w, " %14s", s)
	}
	fmt.Fprintln(w)
	byQS := map[query.ID]map[string]Fig11Cell{}
	for _, c := range res.Cells {
		if byQS[c.Query] == nil {
			byQS[c.Query] = map[string]Fig11Cell{}
		}
		byQS[c.Query][c.Scheme] = c
	}
	for _, q := range query.All() {
		fmt.Fprintf(w, "Q%-5d", q)
		for _, s := range fig11Schemes() {
			fmt.Fprintf(w, " %14v", byQS[q][s].Nav.Round(10*time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nreduction in navigation time using S-Node vs next best scheme")
	fmt.Fprintln(w, "(paper: 73.5% / 76.9% / 77.7% / 82.2% / 79.2% / 89.2%)")
	for _, q := range query.All() {
		fmt.Fprintf(w, "Q%d: %.1f%%\n", q, res.Reduction[q])
	}
	fmt.Fprintln(w)
}

// Fig12Row is one buffer size of Figure 12: per-query navigation time
// for queries 1, 5 and 6 under the S-Node scheme.
type Fig12Row struct {
	BudgetKB int64
	Nav      map[query.ID]time.Duration
}

// fig12Queries matches the paper's Figure 12 selection.
func fig12Queries() []query.ID { return []query.ID{query.Q1, query.Q5, query.Q6} }

// BufferSweep runs the Figure 12 experiment: navigation time against
// the S-Node buffer budget.
func BufferSweep(cfg Config) ([]Fig12Row, error) {
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	crawl, err := cfg.Crawl(cfg.QuerySize)
	if err != nil {
		return nil, err
	}
	opt := repo.DefaultOptions(filepath.Join(ws, "fig12repo"))
	opt.Schemes = []string{repo.SchemeSNode}
	opt.CacheBudget = cfg.QueryBudget
	opt.Model = cfg.Model
	opt.Layout = crawl.Order
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	budgets := []int64{
		cfg.QueryBudget / 128, cfg.QueryBudget / 64, cfg.QueryBudget / 32,
		cfg.QueryBudget / 16, cfg.QueryBudget / 8, cfg.QueryBudget / 4,
		cfg.QueryBudget / 2, cfg.QueryBudget, cfg.QueryBudget * 2,
		cfg.QueryBudget * 4,
	}
	var rows []Fig12Row
	for _, b := range budgets {
		if b < 4<<10 {
			continue
		}
		row := Fig12Row{BudgetKB: b >> 10, Nav: map[query.ID]time.Duration{}}
		for _, q := range fig12Queries() {
			res, err := runQueryCold(cfg, r, repo.SchemeSNode, q, b)
			if err != nil {
				return nil, err
			}
			row.Nav[q] = res.Nav.Total()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderBufferSweep prints Figure 12.
func RenderBufferSweep(cfg Config, rows []Fig12Row) {
	w := cfg.out()
	fmt.Fprintln(w, "Figure 12: S-Node navigation time vs memory buffer size")
	fmt.Fprintf(w, "%12s", "buffer(KB)")
	for _, q := range fig12Queries() {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("Q%d", q))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%12d", r.BudgetKB)
		for _, q := range fig12Queries() {
			fmt.Fprintf(w, " %14v", r.Nav[q].Round(10*time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(paper: after an initial drop, curves stay flat once the working set fits)")
	fmt.Fprintln(w)
}
