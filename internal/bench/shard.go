package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"snode/internal/metrics"
	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/router"
	"snode/internal/serve"
	"snode/internal/shard"
	"snode/internal/slo"
	"snode/internal/store"
)

// The shard experiment measures what the distributed serving tier buys:
// the same closed-loop mixed workload (92% navigation, 8% mining —
// loadNavShare) is driven against a single-node server and against a
// scatter-gather router fronting K ∈ {1, 2, 4} shard replicas, all
// over real HTTP on loopback with paced I/O. Each shard holds an
// S-Node store over its intra-shard edges only, so navigation requests
// — the overwhelming share — touch ONE shard and scale with K, while
// mining queries scatter to every shard as owned-restricted partials
// and merge at the router. K=1 through the router isolates the
// router's own overhead from the scaling.

// shardKs is the shard-count series.
func shardKs() []int { return []int{1, 2, 4} }

// shardWorkersPerSlot sizes the closed loop: enough concurrent clients
// per admission slot in the tier to keep every shard busy without
// drowning the queues.
const shardWorkersPerSlot = 2

// ShardRow is one serving tier's measurement.
type ShardRow struct {
	Tier     string        `json:"tier"` // "single" | "router"
	K        int           `json:"shards"`
	Workers  int           `json:"workers"`
	Duration time.Duration `json:"duration_ns"`
	Requests int64         `json:"requests"`
	OK       int64         `json:"ok"`
	Shed     int64         `json:"shed"`
	Errors   int64         `json:"errors"`
	QPS      float64       `json:"qps"`
	// Per-class client-observed latency of 200 responses.
	NavP50MS    float64 `json:"nav_p50_ms"`
	NavP99MS    float64 `json:"nav_p99_ms"`
	MiningP50MS float64 `json:"mining_p50_ms"`
	MiningP99MS float64 `json:"mining_p99_ms"`
	// Speedup is QPS over the single-node row's.
	Speedup float64 `json:"speedup_vs_single"`
	// Partition shape (router rows only): how much of the edge set
	// stayed intra-shard.
	IntraEdgePct float64 `json:"intra_edge_pct,omitempty"`
	// SLO is the tier's scoreboard over this row's closed loop: the
	// single-node row is judged from its server's admission metrics,
	// router rows from the router's client-facing counters.
	SLO *slo.Report `json:"slo,omitempty"`
}

// ShardReport is the experiment's full result.
type ShardReport struct {
	Rows []ShardRow `json:"rows"`
}

// shardClosedLoop drives `workers` clients back to back against base
// for d and aggregates the outcome into a row.
func shardClosedLoop(base string, client *http.Client, seed uint64, pages, workers int, d time.Duration) ShardRow {
	h := &loadHarness{base: base, client: client}
	var requests, ok, shed, errs int64
	var mu sync.Mutex
	var navLat, miningLat []time.Duration
	stop := time.Now().Add(d)
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := newLoadWorkload(seed+uint64(g)*7919+1, pages)
			for time.Now().Before(stop) {
				a := w.draw(0)
				okReq, shedReq, lat, err := h.do(a)
				atomic.AddInt64(&requests, 1)
				switch {
				case err != nil:
					atomic.AddInt64(&errs, 1)
				case okReq:
					atomic.AddInt64(&ok, 1)
					mu.Lock()
					if a.nav {
						navLat = append(navLat, lat)
					} else {
						miningLat = append(miningLat, lat)
					}
					mu.Unlock()
				case shedReq:
					atomic.AddInt64(&shed, 1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	return ShardRow{
		Workers:     workers,
		Duration:    elapsed,
		Requests:    requests,
		OK:          ok,
		Shed:        shed,
		Errors:      errs,
		QPS:         float64(ok) / elapsed.Seconds(),
		NavP50MS:    percentileMS(navLat, 0.50),
		NavP99MS:    percentileMS(navLat, 0.99),
		MiningP50MS: percentileMS(miningLat, 0.50),
		MiningP99MS: percentileMS(miningLat, 0.99),
	}
}

// shardServe starts one serve.Server over HTTP and returns its base
// URL plus a shutdown func.
func shardServe(cfg serve.Config) (string, func(), error) {
	qs, err := serve.New(cfg)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: qs.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

// paceStores applies the experiment's I/O pacing to a repository's
// serving stores.
func paceStores(r *repo.Repository, pace float64) {
	for _, s := range []store.LinkStore{r.Fwd[repo.SchemeSNode], r.Rev[repo.SchemeSNode]} {
		if p, ok := s.(store.Pacer); ok {
			p.SetPace(pace)
		}
	}
}

// Shard runs the distributed-serving scaling experiment.
func Shard(cfg Config) (*ShardReport, error) {
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	crawl, err := cfg.Crawl(cfg.QuerySize)
	if err != nil {
		return nil, err
	}
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	dur := cfg.LoadDuration
	if dur <= 0 {
		dur = 2500 * time.Millisecond
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        1024,
		MaxIdleConnsPerHost: 1024,
		IdleConnTimeout:     30 * time.Second,
	}}
	rep := &ShardReport{}

	// Single-node baseline: one server, one S-Node repository.
	opt := repo.DefaultOptions(filepath.Join(ws, "shard-single"))
	opt.Schemes = []string{repo.SchemeSNode}
	opt.CacheBudget = cfg.QueryBudget
	opt.Model = cfg.Model
	opt.Layout = crawl.Order
	single, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		return nil, err
	}
	defer single.Close()
	eng, err := query.New(single, repo.SchemeSNode)
	if err != nil {
		return nil, err
	}
	paceStores(single, pace)
	sreg := metrics.NewRegistry()
	base, stopSingle, err := shardServe(serve.Config{
		Engine:        eng,
		MaxConcurrent: loadMaxConcurrent,
		MaxQueue:      loadMaxQueue,
		Registry:      sreg,
	})
	if err != nil {
		return nil, err
	}
	sboard := slo.New(slo.Config{Window: time.Hour, Objectives: serveObjectives()})
	sboard.Sample(time.Now(), sreg.Snapshot())
	workers := shardWorkersPerSlot * loadMaxConcurrent
	row := shardClosedLoop(base, client, cfg.Seed, cfg.QuerySize, workers, dur)
	sboard.Sample(time.Now(), sreg.Snapshot())
	srep := sboard.Report(time.Now())
	row.SLO = &srep
	stopSingle()
	paceStores(single, 0)
	row.Tier, row.K, row.Speedup = "single", 0, 1.0
	rep.Rows = append(rep.Rows, row)
	baseQPS := row.QPS

	// Router tiers: K shard replicas behind the scatter-gather front.
	for _, k := range shardKs() {
		root := filepath.Join(ws, fmt.Sprintf("shard-k%d", k))
		m, err := shard.Build(crawl, k, root, opt.SNode)
		if err != nil {
			return nil, fmt.Errorf("bench: shard build K=%d: %w", k, err)
		}
		var intra, total int64
		for _, e := range m.Shards {
			intra += e.IntraEdges
			total += e.IntraEdges + e.BoundaryFwdEdges
		}
		var stops []func()
		var replicas [][]string
		for s := 0; s < k; s++ {
			sh, err := shard.OpenServing(root, s, cfg.QueryBudget, cfg.Model)
			if err != nil {
				return nil, err
			}
			defer sh.Close()
			se, err := query.New(sh.Repo, repo.SchemeSNode)
			if err != nil {
				return nil, err
			}
			se.SetOwner(sh.Owns)
			nav, err := query.New(sh.NavRepo, repo.SchemeSNode)
			if err != nil {
				return nil, err
			}
			paceStores(sh.Repo, pace)
			u, stop, err := shardServe(serve.Config{
				Engine:        se,
				NavEngine:     nav,
				Shard:         &serve.ShardInfo{ID: s, Count: k, Version: m.Version},
				MaxConcurrent: loadMaxConcurrent,
				MaxQueue:      loadMaxQueue,
			})
			if err != nil {
				return nil, err
			}
			stops = append(stops, stop)
			replicas = append(replicas, []string{u})
		}
		bs, err := shard.LoadFwdBoundaries(root, m)
		if err != nil {
			return nil, err
		}
		rreg := metrics.NewRegistry()
		rt, err := router.New(router.Config{
			Manifest:      m,
			Boundaries:    bs,
			Replicas:      replicas,
			Client:        client,
			ProbeInterval: -1,
			Registry:      rreg,
			SLO: router.SLOConfig{
				Window:    time.Hour,
				NavP99:    loadNavDeadline,
				MiningP99: loadMiningDeadline,
			},
		})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: rt.Handler()}
		go hs.Serve(ln)

		// The tier has K x loadMaxConcurrent slots; scale the closed loop
		// with it so offered concurrency is not the bottleneck.
		workers := shardWorkersPerSlot * loadMaxConcurrent * k
		board := rt.Scoreboard()
		board.Sample(time.Now(), rreg.Snapshot())
		row := shardClosedLoop("http://"+ln.Addr().String(), client, cfg.Seed, cfg.QuerySize, workers, dur)
		board.Sample(time.Now(), rreg.Snapshot())
		rrep := board.Report(time.Now())
		row.SLO = &rrep
		hs.Close()
		rt.Close()
		for _, stop := range stops {
			stop()
		}
		row.Tier, row.K = "router", k
		row.IntraEdgePct = 100 * float64(intra) / float64(total)
		if baseQPS > 0 {
			row.Speedup = row.QPS / baseQPS
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// RenderShard prints the scaling table.
func RenderShard(cfg Config, rep *ShardReport) {
	w := cfg.out()
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	fmt.Fprintf(w, "Distributed serving: QPS vs shard count (%d pages, %d KB buffer/replica, paced disk x%.2f, %.0f%% nav)\n",
		cfg.QuerySize, cfg.QueryBudget>>10, pace, 100*loadNavShare)
	fmt.Fprintf(w, "%8s %3s %8s %9s %6s %5s %9s %8s | %9s %9s %11s %11s\n",
		"tier", "K", "workers", "ok", "shed", "err", "qps", "speedup",
		"nav p50", "nav p99", "mining p50", "mining p99")
	for _, r := range rep.Rows {
		k := "-"
		if r.K > 0 {
			k = fmt.Sprintf("%d", r.K)
		}
		fmt.Fprintf(w, "%8s %3s %8d %9d %6d %5d %9.1f %7.2fx | %8.1fms %8.1fms %10.1fms %10.1fms\n",
			r.Tier, k, r.Workers, r.OK, r.Shed, r.Errors, r.QPS, r.Speedup,
			r.NavP50MS, r.NavP99MS, r.MiningP50MS, r.MiningP99MS)
	}
	fmt.Fprintln(w, "(nav routes to one shard and scales with K; mining scatters to all shards and merges at the router)")
	for _, r := range rep.Rows {
		if r.SLO == nil {
			continue
		}
		tier := r.Tier
		if r.K > 0 {
			tier = fmt.Sprintf("%s K=%d", r.Tier, r.K)
		}
		for _, c := range r.SLO.Classes {
			status := "OK"
			if !c.AvailabilityMet || !c.P99Met {
				status = "BURNING"
			}
			fmt.Fprintf(w, "slo %-11s %-6s %-7s avail %.4f (burn %.2fx) p99 %.1fms/%.0fms over %d reqs\n",
				tier, c.Class, status, c.Availability, c.AvailabilityBurn, c.P99MS, c.P99TargetMS, c.Requests)
		}
	}
	fmt.Fprintln(w)
}

// ShardJSON writes the report (plus scale parameters and run
// provenance) as the committed benchmark artifact.
func ShardJSON(path string, cfg Config, rep *ShardReport) error {
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	doc := struct {
		Experiment  string     `json:"experiment"`
		Provenance  Provenance `json:"provenance"`
		Pages       int        `json:"pages"`
		BudgetBytes int64      `json:"budget_bytes"`
		Pace        float64    `json:"pace"`
		NavShare    float64    `json:"nav_share"`
		Rows        []ShardRow `json:"rows"`
	}{
		Experiment:  "shard",
		Provenance:  NewProvenance(),
		Pages:       cfg.QuerySize,
		BudgetBytes: cfg.QueryBudget,
		Pace:        pace,
		NavShare:    loadNavShare,
		Rows:        rep.Rows,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
