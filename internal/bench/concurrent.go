package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"snode/internal/query"
	"snode/internal/repo"
	"snode/internal/snode"
	"snode/internal/store"
)

// The concurrent-serving experiment: the S-Node read path is safe for
// concurrent use (sharded buffer manager, singleflight decodes), so a
// query front end can serve request streams from many goroutines over
// one shared representation. This experiment measures throughput
// (queries/second) for a fixed mixed Query 1-6 workload at increasing
// goroutine counts, with iosim pacing turned on so every stream really
// waits out its modeled disk time — concurrency then buys back the
// overlap, like queue depth on a real device.

// ThroughputRow is one concurrency level of the serving experiment.
type ThroughputRow struct {
	Goroutines int
	Queries    int
	Elapsed    time.Duration
	QPS        float64
	// Speedup is this row's throughput over the 1-goroutine row.
	Speedup float64
	// Coalesced counts decodes deduplicated by the buffer manager's
	// singleflight layer during this level.
	Coalesced int64
}

// concurrencyLevels is the goroutine series the experiment reports.
func concurrencyLevels() []int { return []int{1, 4, 16} }

// servingRounds repeats the six-query mix per level, so each level
// serves servingRounds*6 queries.
const servingRounds = 4

// Concurrency runs the serving-throughput experiment over an S-Node
// repository built at cfg.QuerySize with cfg.QueryBudget of buffer.
func Concurrency(cfg Config) ([]ThroughputRow, error) {
	ws, cleanup, err := cfg.workspace()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	crawl, err := cfg.Crawl(cfg.QuerySize)
	if err != nil {
		return nil, err
	}
	opt := repo.DefaultOptions(filepath.Join(ws, "servingrepo"))
	opt.Schemes = []string{repo.SchemeSNode}
	opt.CacheBudget = cfg.QueryBudget
	opt.Model = cfg.Model
	opt.Layout = crawl.Order
	r, err := repo.Build(crawl.Corpus, opt)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	e, err := query.New(r, repo.SchemeSNode)
	if err != nil {
		return nil, err
	}

	stores := []store.LinkStore{r.Fwd[repo.SchemeSNode], r.Rev[repo.SchemeSNode]}
	if cfg.Tracer != nil {
		e.SetTracer(cfg.Tracer)
	}
	if cfg.Metrics != nil {
		e.SetMetrics(cfg.Metrics)
		for i, prefix := range []string{"snode_fwd", "snode_rev"} {
			if sn, ok := stores[i].(*snode.Representation); ok {
				sn.RegisterMetrics(cfg.Metrics, prefix)
			}
		}
	}
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	for _, s := range stores {
		if p, ok := s.(store.Pacer); ok {
			p.SetPace(pace)
		}
	}
	defer func() {
		for _, s := range stores {
			if p, ok := s.(store.Pacer); ok {
				p.SetPace(0)
			}
		}
	}()

	// The fixed workload: the six Table 3 queries, servingRounds times.
	var jobs []query.ID
	for i := 0; i < servingRounds; i++ {
		jobs = append(jobs, query.All()...)
	}

	var rows []ThroughputRow
	for _, g := range concurrencyLevels() {
		// Cold start per level, same budget: every level pays the same
		// disk traffic, so the rows differ only in overlap.
		for _, s := range stores {
			if cr, ok := s.(store.CacheResetter); ok {
				cr.ResetCache(cfg.QueryBudget)
			}
		}
		start := time.Now()
		if _, err := e.RunParallel(context.Background(), jobs, g); err != nil {
			return nil, fmt.Errorf("bench: concurrency level %d: %w", g, err)
		}
		elapsed := time.Since(start)
		var coalesced int64
		for _, s := range stores {
			if sn, ok := s.(*snode.Representation); ok {
				coalesced += sn.StatsExt().Cache.Coalesced
			}
		}
		row := ThroughputRow{
			Goroutines: g,
			Queries:    len(jobs),
			Elapsed:    elapsed,
			QPS:        float64(len(jobs)) / elapsed.Seconds(),
			Coalesced:  coalesced,
		}
		if len(rows) > 0 && rows[0].QPS > 0 {
			row.Speedup = row.QPS / rows[0].QPS
		} else {
			row.Speedup = 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderConcurrency prints the throughput table.
func RenderConcurrency(cfg Config, rows []ThroughputRow) {
	w := cfg.out()
	pace := cfg.Pace
	if pace <= 0 {
		pace = 1.0
	}
	fmt.Fprintf(w, "Concurrent serving: S-Node queries/sec (%d pages, %d KB buffer, paced disk x%.2f)\n",
		cfg.QuerySize, cfg.QueryBudget>>10, pace)
	fmt.Fprintf(w, "%11s %8s %12s %10s %9s %10s\n",
		"goroutines", "queries", "elapsed", "qps", "speedup", "coalesced")
	for _, r := range rows {
		fmt.Fprintf(w, "%11d %8d %12v %10.1f %8.2fx %10d\n",
			r.Goroutines, r.Queries, r.Elapsed.Round(time.Millisecond),
			r.QPS, r.Speedup, r.Coalesced)
	}
	fmt.Fprintln(w, "(concurrent streams overlap their modeled disk waits over one shared cache)")
	fmt.Fprintln(w)
}
