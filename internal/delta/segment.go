package delta

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"snode/internal/iosim"
	"snode/internal/webgraph"
)

// Delta segments are the immutable middle layers of the overlay: a
// sealed memtable sorted by (src, dst) and written to disk in a
// binary format built for point lookups —
//
//	magic   "SNDELTA1"                      8 bytes
//	numSrc  uint32 LE                       4 bytes
//	index   numSrc × {src int32, n int32,
//	         off int64}                     16 bytes each
//	data    per src, n × {dst int32,
//	         op uint8}                      5 bytes each
//
// The index is small (one entry per mutated source page) and loaded
// into memory when the segment opens, like the S-Node directory; data
// blocks are read on demand through an iosim.File, so every lookup's
// seek and transfer cost is charged to the overlay's accountant and
// shows up in the modeled navigation time of the update experiments.

const segMagic = "SNDELTA1"

const (
	segHeaderBytes   = 8 + 4
	segIndexEntrySize = 16
	segDataEntrySize  = 5
)

// segIndexEntry locates one source page's block in the data region.
type segIndexEntry struct {
	src webgraph.PageID
	n   int32
	off int64 // relative to the data region start
}

// segment is an opened, immutable delta segment.
type segment struct {
	path    string
	f       *iosim.File
	index   []segIndexEntry
	dataOff int64 // absolute file offset of the data region
	size    int64 // total file size
	entries int64 // total (src,dst) records
	seq     uint64
}

// writeSegmentFile serializes sorted page ops to path. Writes are not
// modeled (iosim charges reads only, as for every built representation)
// and the file is fsync-free: segments are rebuildable from the crawl.
func writeSegmentFile(path string, pos []pageOps) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("delta: %w", err)
	}
	w := bufio.NewWriter(f)
	var hdr [segHeaderBytes]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(pos)))
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	var idx [segIndexEntrySize]byte
	off := int64(0)
	for _, po := range pos {
		binary.LittleEndian.PutUint32(idx[0:], uint32(po.src))
		binary.LittleEndian.PutUint32(idx[4:], uint32(len(po.ops)))
		binary.LittleEndian.PutUint64(idx[8:], uint64(off))
		if _, err := w.Write(idx[:]); err != nil {
			f.Close()
			return err
		}
		off += int64(len(po.ops)) * segDataEntrySize
	}
	var rec [segDataEntrySize]byte
	for _, po := range pos {
		for _, e := range po.ops {
			binary.LittleEndian.PutUint32(rec[0:], uint32(e.dst))
			rec[4] = byte(e.op)
			if _, err := w.Write(rec[:]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openSegment opens path under the accountant and loads its index. The
// header+index read is charged as one sequential read.
func openSegment(path string, acc *iosim.Accountant, seq uint64) (*segment, error) {
	f, err := acc.Open(path)
	if err != nil {
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size < segHeaderBytes {
		f.Close()
		return nil, fmt.Errorf("delta: segment %s truncated (%d bytes)", path, size)
	}
	var hdr [segHeaderBytes]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("delta: segment %s header: %w", path, err)
	}
	if string(hdr[:8]) != segMagic {
		f.Close()
		return nil, fmt.Errorf("delta: segment %s has bad magic %q", path, hdr[:8])
	}
	numSrc := int64(binary.LittleEndian.Uint32(hdr[8:]))
	dataOff := segHeaderBytes + numSrc*segIndexEntrySize
	if dataOff > size {
		f.Close()
		return nil, fmt.Errorf("delta: segment %s index overruns file", path)
	}
	s := &segment{path: path, f: f, dataOff: dataOff, size: size, seq: seq}
	if numSrc > 0 {
		raw := make([]byte, numSrc*segIndexEntrySize)
		if _, err := f.ReadAt(raw, segHeaderBytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("delta: segment %s index: %w", path, err)
		}
		s.index = make([]segIndexEntry, numSrc)
		for i := range s.index {
			rec := raw[i*segIndexEntrySize:]
			s.index[i] = segIndexEntry{
				src: webgraph.PageID(binary.LittleEndian.Uint32(rec[0:])),
				n:   int32(binary.LittleEndian.Uint32(rec[4:])),
				off: int64(binary.LittleEndian.Uint64(rec[8:])),
			}
			if s.index[i].n < 0 || dataOff+s.index[i].off+int64(s.index[i].n)*segDataEntrySize > size {
				f.Close()
				return nil, fmt.Errorf("delta: segment %s entry %d overruns file", path, i)
			}
			s.entries += int64(s.index[i].n)
		}
	}
	return s, nil
}

// find locates src's index entry without I/O (presence probe for the
// pass-through fast path).
func (s *segment) find(src webgraph.PageID) (segIndexEntry, bool) {
	i := sort.Search(len(s.index), func(i int) bool { return s.index[i].src >= src })
	if i < len(s.index) && s.index[i].src == src {
		return s.index[i], true
	}
	return segIndexEntry{}, false
}

// opsInto reads src's block (charged through iosim) and merges it into
// dst, newest-wins relative to earlier layers by overwriting.
func (s *segment) opsInto(ctx context.Context, src webgraph.PageID, dst map[webgraph.PageID]Op) (read bool, err error) {
	e, ok := s.find(src)
	if !ok || e.n == 0 {
		return false, nil
	}
	buf := make([]byte, int(e.n)*segDataEntrySize)
	if _, err := s.f.ReadAtCtx(ctx, buf, s.dataOff+e.off); err != nil {
		return false, fmt.Errorf("delta: segment %s read src %d: %w", s.path, src, err)
	}
	for i := int32(0); i < e.n; i++ {
		rec := buf[i*segDataEntrySize:]
		dst[webgraph.PageID(binary.LittleEndian.Uint32(rec[0:]))] = Op(rec[4])
	}
	return true, nil
}

// all reads the whole data region in one charged sequential read and
// returns every page's ops in (src, dst) order — the compactor's merge
// input path.
func (s *segment) all(ctx context.Context) ([]pageOps, error) {
	out := make([]pageOps, 0, len(s.index))
	if len(s.index) == 0 {
		return out, nil
	}
	buf := make([]byte, s.size-s.dataOff)
	if len(buf) > 0 {
		if _, err := s.f.ReadAtCtx(ctx, buf, s.dataOff); err != nil {
			return nil, fmt.Errorf("delta: segment %s scan: %w", s.path, err)
		}
	}
	for _, e := range s.index {
		po := pageOps{src: e.src, ops: make([]dstOp, e.n)}
		for i := int32(0); i < e.n; i++ {
			rec := buf[e.off+int64(i)*segDataEntrySize:]
			po.ops[i] = dstOp{
				dst: webgraph.PageID(binary.LittleEndian.Uint32(rec[0:])),
				op:  Op(rec[4]),
			}
		}
		out = append(out, po)
	}
	return out, nil
}

// close releases the file handle (the file itself stays on disk; the
// overlay removes files it retires).
func (s *segment) close() error { return s.f.Close() }

// mergePageOps combines layer snapshots oldest..newest into one sorted
// latest-wins snapshot — the compactor's merge kernel, also used to
// seal a memtable together with whatever it superseded.
func mergePageOps(layers ...[]pageOps) []pageOps {
	merged := map[webgraph.PageID]map[webgraph.PageID]Op{}
	for _, layer := range layers {
		for _, po := range layer {
			ops := merged[po.src]
			if ops == nil {
				ops = map[webgraph.PageID]Op{}
				merged[po.src] = ops
			}
			for _, e := range po.ops {
				ops[e.dst] = e.op
			}
		}
	}
	out := make([]pageOps, 0, len(merged))
	for src, ops := range merged {
		po := pageOps{src: src, ops: make([]dstOp, 0, len(ops))}
		for d, op := range ops {
			po.ops = append(po.ops, dstOp{dst: d, op: op})
		}
		sort.Slice(po.ops, func(a, b int) bool { return po.ops[a].dst < po.ops[b].dst })
		out = append(out, po)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].src < out[b].src })
	return out
}

// opsEntryCount sums the records in a snapshot.
func opsEntryCount(pos []pageOps) int64 {
	var n int64
	for _, po := range pos {
		n += int64(len(po.ops))
	}
	return n
}
