package delta

import (
	"sort"
	"sync"
	"sync/atomic"

	"snode/internal/webgraph"
)

// memtableShards fixes the shard count. Sixteen shards keep writer
// contention negligible at the goroutine counts the serving experiments
// run, while a whole-table snapshot still only walks sixteen maps.
const memtableShards = 16

// memEntryBytes is the accounting cost of one (src, dst, op) entry —
// the rough in-memory footprint the delta_memtable_bytes gauge reports
// and the seal threshold compares against.
const memEntryBytes = 16

// memtable is the concurrent in-memory top layer of the overlay:
// per-source latest-wins op maps, sharded by source page with a mutex
// per shard. A memtable is either active (accepting Apply) or sealed
// (immutable, being written into a segment); the sealed flag plus a
// per-shard lock barrier makes the handoff race-free without a global
// write lock.
type memtable struct {
	shards  [memtableShards]memtableShard
	sealed  atomic.Bool
	entries atomic.Int64
}

type memtableShard struct {
	mu    sync.Mutex
	pages map[webgraph.PageID]map[webgraph.PageID]Op
}

func newMemtable() *memtable {
	mt := &memtable{}
	for i := range mt.shards {
		mt.shards[i].pages = map[webgraph.PageID]map[webgraph.PageID]Op{}
	}
	return mt
}

func shardOf(p webgraph.PageID) int {
	// Multiplicative hash: adjacent page IDs land on distinct shards,
	// so a writer stream walking a page range spreads out.
	return int((uint32(p) * 0x9E3779B1) >> 28)
}

// apply records one mutation. It reports false when the memtable was
// sealed before the shard lock was acquired — the caller must reload
// the active memtable and retry, so no mutation lands in a table that
// a concurrent seal already snapshotted.
func (mt *memtable) apply(m Mutation) bool {
	sh := &mt.shards[shardOf(m.Src)]
	sh.mu.Lock()
	if mt.sealed.Load() {
		sh.mu.Unlock()
		return false
	}
	ops := sh.pages[m.Src]
	if ops == nil {
		ops = map[webgraph.PageID]Op{}
		sh.pages[m.Src] = ops
	}
	if _, existed := ops[m.Dst]; !existed {
		mt.entries.Add(1)
	}
	ops[m.Dst] = m.Op
	sh.mu.Unlock()
	return true
}

// seal freezes the memtable: after it returns, every in-flight apply
// has either completed (and will be in the snapshot) or will observe
// the sealed flag and retry elsewhere. The flag is published first,
// then each shard lock is taken once as a barrier.
func (mt *memtable) seal() {
	mt.sealed.Store(true)
	for i := range mt.shards {
		mt.shards[i].mu.Lock()
		//lint:ignore SA2001 empty critical section: the acquire/release
		// pair is the barrier that waits out in-flight appliers.
		mt.shards[i].mu.Unlock()
	}
}

// hasPage reports whether any mutation touches src's adjacency.
func (mt *memtable) hasPage(src webgraph.PageID) bool {
	sh := &mt.shards[shardOf(src)]
	sh.mu.Lock()
	_, ok := sh.pages[src]
	sh.mu.Unlock()
	return ok
}

// opsInto merges src's ops into dst (latest-wins is the caller's
// concern: layers are visited oldest to newest, so overwriting is
// exactly the shadowing rule).
func (mt *memtable) opsInto(src webgraph.PageID, dst map[webgraph.PageID]Op) {
	sh := &mt.shards[shardOf(src)]
	sh.mu.Lock()
	for d, op := range sh.pages[src] {
		dst[d] = op
	}
	sh.mu.Unlock()
}

// len reports the entry count ((src,dst) pairs, latest op each).
func (mt *memtable) len() int64 { return mt.entries.Load() }

// bytes reports the accounted in-memory footprint.
func (mt *memtable) bytes() int64 { return mt.entries.Load() * memEntryBytes }

// pageOps is one source page's sorted mutation list, the unit the
// segment format stores.
type pageOps struct {
	src webgraph.PageID
	ops []dstOp
}

type dstOp struct {
	dst webgraph.PageID
	op  Op
}

// snapshot returns the memtable's contents sorted by (src, dst). Call
// only after seal (or on a table no writer can reach); shard locks are
// still taken, keeping the race detector's model exact.
func (mt *memtable) snapshot() []pageOps {
	var out []pageOps
	for i := range mt.shards {
		sh := &mt.shards[i]
		sh.mu.Lock()
		for src, ops := range sh.pages {
			po := pageOps{src: src, ops: make([]dstOp, 0, len(ops))}
			for d, op := range ops {
				po.ops = append(po.ops, dstOp{dst: d, op: op})
			}
			out = append(out, po)
		}
		sh.mu.Unlock()
	}
	for i := range out {
		sort.Slice(out[i].ops, func(a, b int) bool { return out[i].ops[a].dst < out[i].ops[b].dst })
	}
	sort.Slice(out, func(a, b int) bool { return out[a].src < out[b].src })
	return out
}
