package delta_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snode/internal/delta"
	"snode/internal/iosim"
	"snode/internal/randutil"
	"snode/internal/snode"
	"snode/internal/store"
	"snode/internal/synth"
	"snode/internal/webgraph"
)

// TestChaosReadersWritersCompactor is the delta race suite: concurrent
// mutators, readers, a page adder, and the background compactor (seal,
// size-tiered merge, and fold-back all firing) over a real S-Node base,
// designed to run under -race (make test-delta-race). Writers own
// disjoint source-page residue classes, so the final state is
// deterministic and checked against a sequential reference after the
// storm quiesces.
func TestChaosReadersWritersCompactor(t *testing.T) {
	const (
		pages      = 2000
		writers    = 4
		readers    = 4
		batches    = 60
		batchSize  = 16
		addedPages = 8
	)
	ctx := context.Background()
	crawl, err := synth.Generate(synth.DefaultConfig(pages))
	if err != nil {
		t.Fatal(err)
	}
	corpus := crawl.Corpus
	baseDir := t.TempDir()
	cfg := snode.DefaultConfig()
	if _, err := snode.Build(corpus, cfg, baseDir); err != nil {
		t.Fatal(err)
	}
	base, err := snode.Open(baseDir, 4<<20, iosim.Model2002())
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	o, err := delta.NewOverlay(base, delta.Config{
		Pages: corpus.Pages,
		Dir:   t.TempDir(),
		Model: iosim.Model2002(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	comp := delta.StartCompactor(ctx, o, delta.CompactorConfig{
		Interval:    time.Millisecond,
		SealBytes:   8 << 10,
		MaxSegments: 2,
		FoldEntries: 2200, // fires at least once mid-storm
		Fold: delta.FoldConfig{
			SNode:       cfg,
			Dir:         t.TempDir(),
			CacheBudget: 4 << 20,
			Model:       iosim.Model2002(),
		},
		OnError: func(err error) { t.Errorf("compactor: %v", err) },
	})

	domains := map[string]bool{}
	for _, p := range corpus.Pages {
		domains[p.Domain] = true
	}
	domainList := make([]string, 0, len(domains))
	for d := range domains {
		domainList = append(domainList, d)
	}

	var wgMut, wgRead sync.WaitGroup
	var writersDone atomic.Bool
	logs := make([][]delta.Mutation, writers)

	// Writers: each owns src pages p ≡ w (mod writers), so concurrent
	// logs never touch the same (src, dst) pair and the union of the
	// per-writer sequences is a deterministic final state.
	for w := 0; w < writers; w++ {
		wgMut.Add(1)
		go func(w int) {
			defer wgMut.Done()
			rng := randutil.NewRNG(uint64(1000 + w))
			for b := 0; b < batches; b++ {
				muts := make([]delta.Mutation, 0, batchSize)
				for i := 0; i < batchSize; i++ {
					src := webgraph.PageID(rng.Intn(pages/writers)*writers + w)
					m := delta.Mutation{
						Src: src,
						Dst: webgraph.PageID(rng.Intn(pages)),
						Op:  delta.OpAdd,
					}
					if rng.Intn(2) == 0 {
						m.Op = delta.OpRemove
					}
					muts = append(muts, m)
				}
				if err := o.Apply(ctx, muts); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				logs[w] = append(logs[w], muts...)
				// Pace the storm across compactor ticks so seals,
				// merges, and fold-backs all fire while it runs.
				time.Sleep(time.Millisecond)
			}
		}(w)
	}

	// Page adder: grows the page space concurrently with everything
	// else; links go out of the new pages only, so writer disjointness
	// is preserved.
	addLog := make([]delta.Mutation, 0, addedPages*4)
	var addIDs []webgraph.PageID
	wgMut.Add(1)
	go func() {
		defer wgMut.Done()
		rng := randutil.NewRNG(77)
		for i := 0; i < addedPages; i++ {
			id := o.AddPage(webgraph.PageMeta{
				URL:    "http://new.example/p" + string(rune('a'+i)),
				Domain: "new.example",
			})
			addIDs = append(addIDs, id)
			muts := make([]delta.Mutation, 0, 4)
			for j := 0; j < 4; j++ {
				muts = append(muts, delta.Mutation{
					Src: id,
					Dst: webgraph.PageID(rng.Intn(pages)),
					Op:  delta.OpAdd,
				})
			}
			if err := o.Apply(ctx, muts); err != nil {
				t.Errorf("adder: %v", err)
				return
			}
			addLog = append(addLog, muts...)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Readers: random filtered and unfiltered lookups; under churn the
	// exact answer is racy, but every returned list must be
	// duplicate-free and every filtered target must satisfy the filter.
	for r := 0; r < readers; r++ {
		wgRead.Add(1)
		go func(r int) {
			defer wgRead.Done()
			rng := randutil.NewRNG(uint64(5000 + r))
			var buf []webgraph.PageID
			for !writersDone.Load() {
				p := webgraph.PageID(rng.Intn(pages))
				var f *store.Filter
				if rng.Intn(2) == 0 {
					f = &store.Filter{Domains: map[string]bool{
						domainList[rng.Intn(len(domainList))]: true,
					}}
				}
				var err error
				buf, err = o.OutFiltered(p, f, buf[:0])
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				seen := map[webgraph.PageID]bool{}
				for _, tgt := range buf {
					if seen[tgt] {
						t.Errorf("reader %d: duplicate target %d for page %d", r, tgt, p)
						return
					}
					seen[tgt] = true
					if f != nil && !f.Domains[corpus.Pages[tgt].Domain] {
						t.Errorf("reader %d: target %d escapes filter", r, tgt)
						return
					}
				}
				_ = o.Stats()
				if rng.Intn(16) == 0 {
					_ = o.DeltaStatsNow()
					_ = o.SizeBytes()
					_ = o.Name()
				}
			}
		}(r)
	}

	// Run the storm: mutators finish, readers are released, then the
	// compactor stops.
	wgMut.Wait()
	writersDone.Store(true)
	wgRead.Wait()
	comp.Stop()
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced: verify the final state against a sequential reference.
	// Writer logs are disjoint by construction, so concatenation order
	// between writers is irrelevant; within a writer, order is applied.
	n := pages + len(addIDs)
	want := make([]map[webgraph.PageID]bool, n)
	for p := 0; p < n; p++ {
		want[p] = map[webgraph.PageID]bool{}
		if p < pages {
			for _, tgt := range corpus.Graph.Out(webgraph.PageID(p)) {
				want[p][tgt] = true
			}
		}
	}
	for _, log := range append(logs, addLog) {
		for _, m := range log {
			if m.Op == delta.OpAdd {
				want[m.Src][m.Dst] = true
			} else {
				delete(want[m.Src], m.Dst)
			}
		}
	}
	var buf []webgraph.PageID
	for p := 0; p < n; p++ {
		var err error
		buf, err = o.Out(webgraph.PageID(p), buf[:0])
		if err != nil {
			t.Fatalf("final Out(%d): %v", p, err)
		}
		if len(buf) != len(want[p]) {
			t.Fatalf("final Out(%d): %d targets, want %d", p, len(buf), len(want[p]))
		}
		for _, tgt := range buf {
			if !want[p][tgt] {
				t.Fatalf("final Out(%d): unexpected target %d", p, tgt)
			}
		}
	}
	ds := o.DeltaStatsNow()
	if ds.Seals == 0 {
		t.Error("storm produced no seals — compactor policy never fired")
	}
	if ds.Folds == 0 {
		t.Error("storm produced no fold-back — raise FoldEntries trigger coverage")
	}
	t.Logf("chaos: %+v", ds)
}
